#include "src/models/trainer.h"

#include <cmath>
#include <numeric>

#include "src/nn/batchnorm.h"
#include "src/nn/loss.h"
#include "src/nn/optimizer.h"
#include "src/tensor/ops.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace dx {
namespace {

Tensor TargetTensor(const Dataset& data, int i, const Shape& output_shape) {
  if (data.regression()) {
    Tensor t(output_shape);
    t[0] = data.Target(i);
    return t;
  }
  return OneHot(data.Label(i), output_shape[0]);
}

}  // namespace

void Trainer::CalibrateNormLayers(Model* model, const Dataset& data, int max_samples) {
  const int n = std::min(max_samples, data.size());
  if (n == 0) {
    return;
  }
  for (int l = 0; l < model->num_layers(); ++l) {
    auto* bn = dynamic_cast<BatchNorm*>(&model->layer(l));
    if (bn == nullptr) {
      continue;
    }
    const int features = bn->num_features();
    std::vector<double> sum(static_cast<size_t>(features), 0.0);
    std::vector<double> sum_sq(static_cast<size_t>(features), 0.0);
    int64_t count_per_feature = 0;
    for (int i = 0; i < n; ++i) {
      const ForwardTrace trace = model->Forward(data.inputs[static_cast<size_t>(i)]);
      const Tensor& input = trace.LayerInput(l);
      const int64_t plane = input.numel() / features;
      count_per_feature += plane;
      for (int c = 0; c < features; ++c) {
        const float* row = input.data() + static_cast<size_t>(c) * plane;
        for (int64_t k = 0; k < plane; ++k) {
          sum[static_cast<size_t>(c)] += row[k];
          sum_sq[static_cast<size_t>(c)] += static_cast<double>(row[k]) * row[k];
        }
      }
    }
    std::vector<float> mean(static_cast<size_t>(features));
    std::vector<float> variance(static_cast<size_t>(features));
    for (int c = 0; c < features; ++c) {
      const double m = sum[static_cast<size_t>(c)] / static_cast<double>(count_per_feature);
      const double v =
          sum_sq[static_cast<size_t>(c)] / static_cast<double>(count_per_feature) - m * m;
      mean[static_cast<size_t>(c)] = static_cast<float>(m);
      variance[static_cast<size_t>(c)] = static_cast<float>(std::max(v, 1e-6));
    }
    bn->SetStatistics(mean, variance);
  }
}

void Trainer::Fit(Model* model, const Dataset& train, const TrainConfig& config) {
  train.CheckConsistency();
  CalibrateNormLayers(model, train);

  const bool classification = !train.regression();
  SoftmaxCrossEntropy ce;
  MeanSquaredError mse;
  const Loss& loss = classification ? static_cast<const Loss&>(ce)
                                    : static_cast<const Loss&>(mse);

  Rng rng(config.seed);
  Adam opt(config.learning_rate);
  auto params = model->MutableParams();

  std::vector<int> order(static_cast<size_t>(train.size()));
  std::iota(order.begin(), order.end(), 0);

  // One gradient accumulator for the whole fit, zeroed in place per
  // minibatch — re-allocating every model-sized tensor each minibatch was
  // pure churn.
  std::vector<Tensor> grads = model->InitParamGrads();

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.shuffle) {
      rng.Shuffle(order);
    }
    double epoch_loss = 0.0;
    for (int start = 0; start < train.size(); start += config.batch_size) {
      const int end = std::min(train.size(), start + config.batch_size);
      for (Tensor& g : grads) {
        g.Fill(0.0f);
      }
      for (int bi = start; bi < end; ++bi) {
        const int i = order[static_cast<size_t>(bi)];
        const ForwardTrace trace =
            model->Forward(train.inputs[static_cast<size_t>(i)], /*training=*/true, &rng);
        const Tensor target = TargetTensor(train, i, model->output_shape());
        LossResult r = loss.Compute(*model, trace, target);
        epoch_loss += r.loss;
        model->BackwardParams(trace, r.seed_layer, std::move(r.grad), &grads);
      }
      const float scale = 1.0f / static_cast<float>(end - start);
      for (Tensor& g : grads) {
        g.Scale(scale);
      }
      opt.Step(params, grads);
    }
    if (config.verbose) {
      DX_LOG(Info) << model->name() << " epoch " << (epoch + 1) << "/" << config.epochs
                   << " avg loss " << epoch_loss / train.size();
    }
  }
}

float Trainer::Accuracy(const Model& model, const Dataset& data) {
  if (data.regression()) {
    throw std::invalid_argument("Trainer::Accuracy on regression dataset");
  }
  int correct = 0;
  for (int i = 0; i < data.size(); ++i) {
    if (model.PredictClass(data.inputs[static_cast<size_t>(i)]) == data.Label(i)) {
      ++correct;
    }
  }
  return data.size() > 0 ? static_cast<float>(correct) / static_cast<float>(data.size())
                         : 0.0f;
}

float Trainer::MseOf(const Model& model, const Dataset& data) {
  double sum = 0.0;
  for (int i = 0; i < data.size(); ++i) {
    const float diff =
        model.PredictScalar(data.inputs[static_cast<size_t>(i)]) - data.Target(i);
    sum += static_cast<double>(diff) * diff;
  }
  return data.size() > 0 ? static_cast<float>(sum / data.size()) : 0.0f;
}

float Trainer::PaperAccuracy(const Model& model, const Dataset& data) {
  return data.regression() ? 1.0f - MseOf(model, data) : Accuracy(model, data);
}

}  // namespace dx

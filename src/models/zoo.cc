#include "src/models/zoo.h"

#include <array>
#include <list>
#include <map>
#include <mutex>
#include <stdexcept>

#include "src/constraints/image_constraints.h"
#include "src/constraints/malware_constraints.h"
#include "src/core/domain.h"
#include "src/data/drebin.h"
#include "src/data/pdf.h"
#include "src/data/road.h"
#include "src/data/synthetic_digits.h"
#include "src/data/tiny_images.h"
#include "src/models/trainer.h"
#include "src/nn/batchnorm.h"
#include "src/nn/conv2d.h"
#include "src/nn/dense.h"
#include "src/nn/dropout.h"
#include "src/nn/flatten.h"
#include "src/nn/pool2d.h"
#include "src/nn/residual.h"
#include "src/nn/softmax_layer.h"
#include "src/util/cache.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace dx {
namespace {

// Bump to invalidate stale cache entries when architectures change.
constexpr const char* kZooVersion = "v5";

// ---- Architecture builders ---------------------------------------------------------------

Model BuildLenet(const std::string& name, int variant, uint64_t seed) {
  Rng rng(seed);
  Model m(name, {1, kDigitImageSize, kDigitImageSize});
  if (variant == 1) {
    m.Emplace<Conv2D>(1, 4, 5, 5, 1, 0, Activation::kTanh).InitParams(rng);
    m.Emplace<Pool2D>(PoolMode::kAvg, 2);
    m.Emplace<Conv2D>(4, 12, 5, 5, 1, 0, Activation::kTanh).InitParams(rng);
    m.Emplace<Pool2D>(PoolMode::kAvg, 2);
    m.Emplace<Flatten>();
    m.Emplace<Dense>(12 * 4 * 4, 10).InitParams(rng);
  } else {
    m.Emplace<Conv2D>(1, 6, 5, 5, 1, 0, Activation::kRelu).InitParams(rng);
    m.Emplace<Pool2D>(PoolMode::kMax, 2);
    m.Emplace<Conv2D>(6, 16, 5, 5, 1, 0, Activation::kRelu).InitParams(rng);
    m.Emplace<Pool2D>(PoolMode::kMax, 2);
    m.Emplace<Flatten>();
    m.Emplace<Dense>(16 * 4 * 4, 120, Activation::kRelu).InitParams(rng);
    if (variant == 5) {
      m.Emplace<Dense>(120, 84, Activation::kRelu).InitParams(rng);
      m.Emplace<Dense>(84, 10).InitParams(rng);
    } else {
      m.Emplace<Dense>(120, 10).InitParams(rng);
    }
  }
  m.Emplace<SoftmaxLayer>();
  return m;
}

Model BuildMiniVgg(const std::string& name, int convs_in_last_block, uint64_t seed) {
  Rng rng(seed);
  // He-normal init: deep ReLU stacks are collapse-prone under Glorot uniform
  // at this width (4-16 channels).
  const WeightInit init = WeightInit::kHeNormal;
  Model m(name, {3, kTinyImageSize, kTinyImageSize});
  // Block 1 (32x32, 4 channels).
  m.Emplace<Conv2D>(3, 4, 3, 3, 1, 1, Activation::kRelu).InitParams(rng, init);
  m.Emplace<Conv2D>(4, 4, 3, 3, 1, 1, Activation::kRelu).InitParams(rng, init);
  m.Emplace<Pool2D>(PoolMode::kMax, 2);
  // Block 2 (16x16, 8 channels).
  m.Emplace<Conv2D>(4, 8, 3, 3, 1, 1, Activation::kRelu).InitParams(rng, init);
  m.Emplace<Conv2D>(8, 8, 3, 3, 1, 1, Activation::kRelu).InitParams(rng, init);
  m.Emplace<Pool2D>(PoolMode::kMax, 2);
  // Block 3 (8x8, 16 channels); VGG19 variant is one conv deeper.
  m.Emplace<Conv2D>(8, 16, 3, 3, 1, 1, Activation::kRelu).InitParams(rng, init);
  for (int i = 1; i < convs_in_last_block; ++i) {
    m.Emplace<Conv2D>(16, 16, 3, 3, 1, 1, Activation::kRelu).InitParams(rng, init);
  }
  m.Emplace<Pool2D>(PoolMode::kMax, 2);
  // Head (4x4x16 = 256).
  m.Emplace<Flatten>();
  m.Emplace<Dense>(256, 64, Activation::kRelu).InitParams(rng, init);
  m.Emplace<Dense>(64, kTinyImageClasses).InitParams(rng, init);
  m.Emplace<SoftmaxLayer>();
  return m;
}

Model BuildMiniResnet(const std::string& name, uint64_t seed) {
  Rng rng(seed);
  Model m(name, {3, kTinyImageSize, kTinyImageSize});
  m.Emplace<Conv2D>(3, 8, 3, 3, 1, 1, Activation::kRelu).InitParams(rng);
  m.Emplace<ResidualBlock>(8, 16, 2).InitParams(rng);   // 16x16
  m.Emplace<ResidualBlock>(16, 16, 1).InitParams(rng);
  m.Emplace<ResidualBlock>(16, 32, 2).InitParams(rng);  // 8x8
  m.Emplace<ResidualBlock>(32, 32, 1).InitParams(rng);
  m.Emplace<Pool2D>(PoolMode::kAvg, 8);  // Global average pool -> 32x1x1.
  m.Emplace<Flatten>();
  m.Emplace<Dense>(32, kTinyImageClasses).InitParams(rng);
  m.Emplace<SoftmaxLayer>();
  return m;
}

Model BuildDave(const std::string& name, int variant, uint64_t seed) {
  Rng rng(seed);
  const WeightInit init =
      variant == 2 ? WeightInit::kNormalized : WeightInit::kGlorotUniform;
  Model m(name, {3, kRoadImageHeight, kRoadImageWidth});
  if (variant == 1) {
    // DAVE-orig fully replicates the Nvidia architecture, including the
    // leading normalization layer.
    m.Emplace<BatchNorm>(3);
  }
  m.Emplace<Conv2D>(3, 12, 5, 5, 2, 0, Activation::kRelu).InitParams(rng, init);
  m.Emplace<Conv2D>(12, 16, 5, 5, 2, 0, Activation::kRelu).InitParams(rng, init);
  if (variant != 3) {
    // DAVE-dropout cuts down the convolutional stack.
    m.Emplace<Conv2D>(16, 20, 3, 3, 1, 0, Activation::kRelu).InitParams(rng, init);
    m.Emplace<Flatten>();
    m.Emplace<Dense>(20 * 3 * 11, 64, Activation::kRelu).InitParams(rng, init);
  } else {
    m.Emplace<Flatten>();
    m.Emplace<Dense>(16 * 5 * 13, 64, Activation::kRelu).InitParams(rng, init);
    m.Emplace<Dropout>(0.25f);
  }
  m.Emplace<Dense>(64, 16, Activation::kRelu).InitParams(rng, init);
  if (variant == 3) {
    m.Emplace<Dropout>(0.25f);
  }
  m.Emplace<Dense>(16, 1, Activation::kTanh).InitParams(rng, init);
  return m;
}

Model BuildMlp(const std::string& name, int input_dim, const std::vector<int>& hidden,
               int classes, uint64_t seed) {
  Rng rng(seed);
  Model m(name, {input_dim});
  int in = input_dim;
  for (const int h : hidden) {
    m.Emplace<Dense>(in, h, Activation::kRelu).InitParams(rng);
    in = h;
  }
  m.Emplace<Dense>(in, classes).InitParams(rng);
  m.Emplace<SoftmaxLayer>();
  return m;
}

uint64_t SeedFor(const std::string& name) { return Fnv1a64("seed:" + name); }

// §6.2's image constraint set, shared by the three vision domains.
std::vector<DomainConstraintSpec> VisionConstraints() {
  return {
      {"light", [] { return std::make_unique<LightingConstraint>(); }},
      {"occl", [] { return std::make_unique<OcclusionConstraint>(10, 10); }},
      {"blackout", [] { return std::make_unique<BlackRectsConstraint>(6, 3); }},
      {"none", [] { return std::make_unique<UnconstrainedImage>(); }},
  };
}

// Looks up (domain spec, model spec) for a zoo model name.
struct ModelLookup {
  std::shared_ptr<const DomainSpec> domain;
  const DomainModelSpec* model = nullptr;
};

ModelLookup FindModelSpec(const std::string& name) {
  for (const std::string& key : DomainKeys()) {
    std::shared_ptr<const DomainSpec> spec = FindDomain(key);
    for (const DomainModelSpec& m : spec->models) {
      if (m.name == name) {
        return {std::move(spec), &m};
      }
    }
  }
  throw std::out_of_range("unknown zoo model: " + name);
}

}  // namespace

namespace domains {

// The five paper domains of Table 1/2 as built-in DomainSpecs (anchored from
// src/core/domain.cc's lazy initializer).
void RegisterPaperDomains() {
  {
    DomainSpec spec;
    spec.key = "mnist";
    spec.display_name = "MNIST";
    spec.description = "handwritten digits (synthetic substitute); LeNet family";
    spec.make_dataset = [](int n, uint64_t seed) { return MakeSyntheticDigits(n, seed); };
    spec.training = {1500, 500, 8, 3e-3f, 101, /*fast_train=*/4, /*fast_test=*/4};
    spec.models = {
        {"MNI_C1", "LeNet-1", "LeNet-1, LeCun et al.",
         [](uint64_t s) { return BuildLenet("MNI_C1", 1, s); }},
        {"MNI_C2", "LeNet-4", "LeNet-4, LeCun et al.",
         [](uint64_t s) { return BuildLenet("MNI_C2", 4, s); }},
        {"MNI_C3", "LeNet-5", "LeNet-5, LeCun et al.",
         [](uint64_t s) { return BuildLenet("MNI_C3", 5, s); }},
    };
    spec.constraints = VisionConstraints();
    spec.default_constraint = "light";
    spec.engine_defaults.coverage.scale_per_layer = false;
    spec.engine_defaults.lambda1 = 2.0f;
    spec.engine_defaults.step = 10.0f / 255.0f;
    RegisterDomain(std::move(spec));
  }
  {
    DomainSpec spec;
    spec.key = "imagenet";
    spec.display_name = "ImageNet";
    spec.description = "32x32 texture/shape classes (ImageNet stand-in); VGG/ResNet trio";
    spec.make_dataset = [](int n, uint64_t seed) {
      return MakeSyntheticTinyImages(n, seed);
    };
    // The ImageNet stand-in needs more data per class to train its deeper
    // models even in fast mode, hence the gentler fast-mode train divisor.
    spec.training = {1200, 400, 8, 3e-3f, 202, /*fast_train=*/2, /*fast_test=*/4};
    spec.models = {
        {"IMG_C1", "MiniVGG-16", "VGG-16, Simonyan et al.",
         [](uint64_t s) { return BuildMiniVgg("IMG_C1", 2, s); }},
        // The deeper VGG variant needs a gentler rate to train stably at this
        // width (per-model tuning, as the paper does for its pretrained nets).
        {"IMG_C2", "MiniVGG-19", "VGG-19, Simonyan et al.",
         [](uint64_t s) { return BuildMiniVgg("IMG_C2", 3, s); }, 1.5e-3f},
        {"IMG_C3", "MiniResNet", "ResNet50, He et al.",
         [](uint64_t s) { return BuildMiniResnet("IMG_C3", s); }},
    };
    spec.constraints = VisionConstraints();
    spec.default_constraint = "light";
    spec.engine_defaults.coverage.scale_per_layer = false;
    spec.engine_defaults.lambda1 = 1.0f;
    spec.engine_defaults.step = 10.0f / 255.0f;
    RegisterDomain(std::move(spec));
  }
  {
    DomainSpec spec;
    spec.key = "driving";
    spec.display_name = "Driving";
    spec.description = "dashcam steering regression (Udacity stand-in); DAVE variants";
    spec.make_dataset = [](int n, uint64_t seed) { return MakeSyntheticRoad(n, seed); };
    spec.training = {1500, 400, 5, 3e-3f, 303, /*fast_train=*/4, /*fast_test=*/4};
    spec.models = {
        {"DRV_C1", "Dave-orig", "Dave-orig, Bojarski et al.",
         [](uint64_t s) { return BuildDave("DRV_C1", 1, s); }},
        {"DRV_C2", "Dave-norminit", "Dave-norminit",
         [](uint64_t s) { return BuildDave("DRV_C2", 2, s); }},
        {"DRV_C3", "Dave-dropout", "Dave-dropout",
         [](uint64_t s) { return BuildDave("DRV_C3", 3, s); }},
    };
    spec.constraints = VisionConstraints();
    spec.default_constraint = "light";
    spec.engine_defaults.coverage.scale_per_layer = false;
    spec.engine_defaults.lambda1 = 1.0f;
    spec.engine_defaults.step = 10.0f / 255.0f;
    RegisterDomain(std::move(spec));
  }
  {
    DomainSpec spec;
    spec.key = "pdf";
    spec.display_name = "VirusTotal";
    spec.description = "PDF malware static features (Contagio stand-in); MLP trio";
    spec.make_dataset = [](int n, uint64_t seed) { return MakeSyntheticPdf(n, seed); };
    spec.training = {2500, 800, 8, 1e-3f, 404, /*fast_train=*/4, /*fast_test=*/4};
    spec.models = {
        {"PDF_C1", "<200, 200>", "<200, 200>",
         [](uint64_t s) { return BuildMlp("PDF_C1", kPdfFeatureCount, {200, 200}, 2, s); }},
        {"PDF_C2", "<200, 200, 200>", "<200, 200, 200>",
         [](uint64_t s) {
           return BuildMlp("PDF_C2", kPdfFeatureCount, {200, 200, 200}, 2, s);
         }},
        {"PDF_C3", "<200, 200, 200, 200>", "<200, 200, 200, 200>",
         [](uint64_t s) {
           return BuildMlp("PDF_C3", kPdfFeatureCount, {200, 200, 200, 200}, 2, s);
         }},
    };
    spec.constraints = {
        {"pdf", [] { return std::make_unique<PdfConstraint>(); }},
        {"none", [] { return std::make_unique<UnconstrainedImage>(); }},
    };
    spec.default_constraint = "pdf";
    spec.engine_defaults.coverage.scale_per_layer = false;
    spec.engine_defaults.lambda1 = 2.0f;
    spec.engine_defaults.step = 0.1f;
    RegisterDomain(std::move(spec));
  }
  {
    DomainSpec spec;
    spec.key = "drebin";
    spec.display_name = "Drebin";
    spec.description = "Android-app binary features (Drebin stand-in); MLP trio";
    spec.make_dataset = [](int n, uint64_t seed) { return MakeSyntheticDrebin(n, seed); };
    spec.training = {2500, 800, 8, 1e-3f, 505, /*fast_train=*/4, /*fast_test=*/4};
    spec.models = {
        {"APP_C1", "<200, 200>", "<200, 200>, Grosse et al.",
         [](uint64_t s) {
           return BuildMlp("APP_C1", kDrebinFeatureCount, {200, 200}, 2, s);
         }},
        {"APP_C2", "<50, 50>", "<50, 50>, Grosse et al.",
         [](uint64_t s) { return BuildMlp("APP_C2", kDrebinFeatureCount, {50, 50}, 2, s); }},
        {"APP_C3", "<200, 10>", "<200, 10>, Grosse et al.",
         [](uint64_t s) {
           return BuildMlp("APP_C3", kDrebinFeatureCount, {200, 10}, 2, s);
         }},
    };
    spec.constraints = {
        {"drebin", [] { return std::make_unique<DrebinConstraint>(); }},
        {"none", [] { return std::make_unique<UnconstrainedImage>(); }},
    };
    spec.default_constraint = "drebin";
    spec.engine_defaults.coverage.scale_per_layer = false;
    spec.engine_defaults.lambda1 = 1.0f;
    spec.engine_defaults.lambda2 = 0.5f;
    spec.engine_defaults.step = 1.0f;  // Discrete feature flips (Table 2: s = N/A).
    RegisterDomain(std::move(spec));
  }
}

}  // namespace domains

const std::string& DomainKey(Domain domain) {
  static const std::array<std::string, kNumDomains> keys = {"mnist", "imagenet", "driving",
                                                            "pdf", "drebin"};
  return keys[static_cast<size_t>(domain)];
}

const std::string& DomainName(Domain domain) { return DomainName(DomainKey(domain)); }

const std::string& DomainName(const std::string& domain_key) {
  return GetDomain(domain_key).display_name;
}

std::vector<Domain> AllDomains() {
  return {Domain::kMnist, Domain::kImageNet, Domain::kDriving, Domain::kPdf,
          Domain::kDrebin};
}

std::vector<ModelInfo> ZooModels() {
  std::vector<ModelInfo> models;
  for (const std::string& key : DomainKeys()) {
    const DomainSpec& spec = GetDomain(key);
    for (const DomainModelSpec& m : spec.models) {
      models.push_back({m.name, spec.key, m.arch, m.paper_arch});
    }
  }
  return models;
}

std::vector<std::string> DomainModelNames(const std::string& domain_key) {
  std::vector<std::string> names;
  for (const DomainModelSpec& m : GetDomain(domain_key).models) {
    names.push_back(m.name);
  }
  return names;
}

std::vector<std::string> DomainModelNames(Domain domain) {
  return DomainModelNames(DomainKey(domain));
}

ModelInfo FindModel(const std::string& name) {
  const ModelLookup found = FindModelSpec(name);
  return {found.model->name, found.domain->key, found.model->arch,
          found.model->paper_arch};
}

namespace {

// Per-process dataset cache. Entries remember which spec instance generated
// them: re-registering a domain (RegisterDomain replaces by key, retiring —
// not freeing — the old spec) must not serve the retired spec's data.
struct CachedDataset {
  const DomainSpec* spec = nullptr;
  Dataset data;
};

const Dataset& CachedDomainSet(const std::string& domain_key, uint64_t seed_offset,
                               int DomainTraining::*samples) {
  // A std::list owns the datasets so handed-out references survive a slot
  // being superseded (stale entries are retired in place, never destroyed).
  static std::list<CachedDataset>* entries = new std::list<CachedDataset>();
  static std::map<std::string, CachedDataset*>* cache =
      new std::map<std::string, CachedDataset*>();
  static std::mutex mutex;
  const DomainSpec& spec = GetDomain(domain_key);
  const std::string slot = spec.key + (seed_offset == 0 ? "/train" : "/test");
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache->find(slot);
  if (it != cache->end() && it->second->spec == &spec) {
    return it->second->data;
  }
  const DomainTraining cfg = EffectiveTraining(spec);
  CachedDataset& entry = entries->emplace_back();
  entry.spec = &spec;
  entry.data = spec.make_dataset(cfg.*samples, cfg.data_seed + seed_offset);
  (*cache)[slot] = &entry;
  return entry.data;
}

}  // namespace

const Dataset& ModelZoo::TrainSet(const std::string& domain_key) {
  return CachedDomainSet(domain_key, 0, &DomainTraining::train_samples);
}

const Dataset& ModelZoo::TestSet(const std::string& domain_key) {
  // Disjoint from the train set via a distinct seed stream (data_seed + 1).
  return CachedDomainSet(domain_key, 1, &DomainTraining::test_samples);
}

const Dataset& ModelZoo::TrainSet(Domain domain) { return TrainSet(DomainKey(domain)); }
const Dataset& ModelZoo::TestSet(Domain domain) { return TestSet(DomainKey(domain)); }

Model ModelZoo::Build(const std::string& name, uint64_t seed) {
  return FindModelSpec(name).model->build(seed);
}

Model ModelZoo::Trained(const std::string& name) {
  const ModelLookup found = FindModelSpec(name);
  const DomainSpec& spec = *found.domain;
  const DomainTraining cfg = EffectiveTraining(spec);
  const std::string key = std::string("zoo/") + kZooVersion + "/" + name + "/" +
                          std::to_string(cfg.train_samples) + "/" +
                          std::to_string(cfg.epochs) + "/" + std::to_string(cfg.data_seed);
  if (const auto blob = FileCache::Global().Get(key)) {
    return Model::Deserialize(*blob);
  }
  Model model = found.model->build(SeedFor(name));
  TrainConfig train_cfg;
  train_cfg.epochs = cfg.epochs;
  train_cfg.learning_rate = found.model->learning_rate > 0.0f
                                ? found.model->learning_rate
                                : cfg.learning_rate;
  train_cfg.seed = SeedFor(name) ^ 0xabcdef;
  Timer timer;
  Trainer::Fit(&model, TrainSet(spec.key), train_cfg);
  DX_LOG(Info) << "trained " << name << " in " << timer.ElapsedSeconds() << "s, paper-acc "
               << Trainer::PaperAccuracy(model, TestSet(spec.key));
  FileCache::Global().Put(key, model.Serialize());
  return model;
}

std::vector<Model> ModelZoo::TrainedDomain(const std::string& domain_key) {
  std::vector<Model> models;
  for (const DomainModelSpec& m : GetDomain(domain_key).models) {
    models.push_back(Trained(m.name));
  }
  return models;
}

std::vector<Model> ModelZoo::TrainedDomain(Domain domain) {
  return TrainedDomain(DomainKey(domain));
}

Model ModelZoo::BuildCustomLenet1(int conv1_filters, int conv2_filters, uint64_t seed) {
  Rng rng(seed);
  Model m("lenet1_custom", {1, kDigitImageSize, kDigitImageSize});
  m.Emplace<Conv2D>(1, conv1_filters, 5, 5, 1, 0, Activation::kTanh).InitParams(rng);
  m.Emplace<Pool2D>(PoolMode::kAvg, 2);
  m.Emplace<Conv2D>(conv1_filters, conv2_filters, 5, 5, 1, 0, Activation::kTanh)
      .InitParams(rng);
  m.Emplace<Pool2D>(PoolMode::kAvg, 2);
  m.Emplace<Flatten>();
  m.Emplace<Dense>(conv2_filters * 4 * 4, 10).InitParams(rng);
  m.Emplace<SoftmaxLayer>();
  return m;
}

}  // namespace dx

#include "src/models/zoo.h"

#include <array>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>

#include "src/data/drebin.h"
#include "src/data/pdf.h"
#include "src/data/road.h"
#include "src/data/synthetic_digits.h"
#include "src/data/tiny_images.h"
#include "src/models/trainer.h"
#include "src/nn/batchnorm.h"
#include "src/nn/conv2d.h"
#include "src/nn/dense.h"
#include "src/nn/dropout.h"
#include "src/nn/flatten.h"
#include "src/nn/pool2d.h"
#include "src/nn/residual.h"
#include "src/nn/softmax_layer.h"
#include "src/util/cache.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace dx {
namespace {

// Bump to invalidate stale cache entries when architectures change.
constexpr const char* kZooVersion = "v5";

bool FastMode() {
  const char* env = std::getenv("DEEPXPLORE_FAST");
  return env != nullptr && env[0] == '1';
}

struct DomainConfig {
  int train_samples;
  int test_samples;
  int epochs;
  float learning_rate;
  uint64_t data_seed;
};

DomainConfig ConfigFor(Domain domain) {
  const int divisor = FastMode() ? 4 : 1;
  // The ImageNet stand-in needs more data per class to train its deeper
  // models even in fast mode.
  const int img_divisor = FastMode() ? 2 : 1;
  switch (domain) {
    case Domain::kMnist:
      return {1500 / divisor, 500 / divisor, 8, 3e-3f, 101};
    case Domain::kImageNet:
      return {1200 / img_divisor, 400 / divisor, 8, 3e-3f, 202};
    case Domain::kDriving:
      return {1500 / divisor, 400 / divisor, 5, 3e-3f, 303};
    case Domain::kPdf:
      return {2500 / divisor, 800 / divisor, 8, 1e-3f, 404};
    case Domain::kDrebin:
      return {2500 / divisor, 800 / divisor, 8, 1e-3f, 505};
  }
  throw std::invalid_argument("unknown domain");
}

// ---- Architecture builders ---------------------------------------------------------------

Model BuildLenet(const std::string& name, int variant, uint64_t seed) {
  Rng rng(seed);
  Model m(name, {1, kDigitImageSize, kDigitImageSize});
  if (variant == 1) {
    m.Emplace<Conv2D>(1, 4, 5, 5, 1, 0, Activation::kTanh).InitParams(rng);
    m.Emplace<Pool2D>(PoolMode::kAvg, 2);
    m.Emplace<Conv2D>(4, 12, 5, 5, 1, 0, Activation::kTanh).InitParams(rng);
    m.Emplace<Pool2D>(PoolMode::kAvg, 2);
    m.Emplace<Flatten>();
    m.Emplace<Dense>(12 * 4 * 4, 10).InitParams(rng);
  } else {
    m.Emplace<Conv2D>(1, 6, 5, 5, 1, 0, Activation::kRelu).InitParams(rng);
    m.Emplace<Pool2D>(PoolMode::kMax, 2);
    m.Emplace<Conv2D>(6, 16, 5, 5, 1, 0, Activation::kRelu).InitParams(rng);
    m.Emplace<Pool2D>(PoolMode::kMax, 2);
    m.Emplace<Flatten>();
    m.Emplace<Dense>(16 * 4 * 4, 120, Activation::kRelu).InitParams(rng);
    if (variant == 5) {
      m.Emplace<Dense>(120, 84, Activation::kRelu).InitParams(rng);
      m.Emplace<Dense>(84, 10).InitParams(rng);
    } else {
      m.Emplace<Dense>(120, 10).InitParams(rng);
    }
  }
  m.Emplace<SoftmaxLayer>();
  return m;
}

Model BuildMiniVgg(const std::string& name, int convs_in_last_block, uint64_t seed) {
  Rng rng(seed);
  // He-normal init: deep ReLU stacks are collapse-prone under Glorot uniform
  // at this width (4-16 channels).
  const WeightInit init = WeightInit::kHeNormal;
  Model m(name, {3, kTinyImageSize, kTinyImageSize});
  // Block 1 (32x32, 4 channels).
  m.Emplace<Conv2D>(3, 4, 3, 3, 1, 1, Activation::kRelu).InitParams(rng, init);
  m.Emplace<Conv2D>(4, 4, 3, 3, 1, 1, Activation::kRelu).InitParams(rng, init);
  m.Emplace<Pool2D>(PoolMode::kMax, 2);
  // Block 2 (16x16, 8 channels).
  m.Emplace<Conv2D>(4, 8, 3, 3, 1, 1, Activation::kRelu).InitParams(rng, init);
  m.Emplace<Conv2D>(8, 8, 3, 3, 1, 1, Activation::kRelu).InitParams(rng, init);
  m.Emplace<Pool2D>(PoolMode::kMax, 2);
  // Block 3 (8x8, 16 channels); VGG19 variant is one conv deeper.
  m.Emplace<Conv2D>(8, 16, 3, 3, 1, 1, Activation::kRelu).InitParams(rng, init);
  for (int i = 1; i < convs_in_last_block; ++i) {
    m.Emplace<Conv2D>(16, 16, 3, 3, 1, 1, Activation::kRelu).InitParams(rng, init);
  }
  m.Emplace<Pool2D>(PoolMode::kMax, 2);
  // Head (4x4x16 = 256).
  m.Emplace<Flatten>();
  m.Emplace<Dense>(256, 64, Activation::kRelu).InitParams(rng, init);
  m.Emplace<Dense>(64, kTinyImageClasses).InitParams(rng, init);
  m.Emplace<SoftmaxLayer>();
  return m;
}

Model BuildMiniResnet(const std::string& name, uint64_t seed) {
  Rng rng(seed);
  Model m(name, {3, kTinyImageSize, kTinyImageSize});
  m.Emplace<Conv2D>(3, 8, 3, 3, 1, 1, Activation::kRelu).InitParams(rng);
  m.Emplace<ResidualBlock>(8, 16, 2).InitParams(rng);   // 16x16
  m.Emplace<ResidualBlock>(16, 16, 1).InitParams(rng);
  m.Emplace<ResidualBlock>(16, 32, 2).InitParams(rng);  // 8x8
  m.Emplace<ResidualBlock>(32, 32, 1).InitParams(rng);
  m.Emplace<Pool2D>(PoolMode::kAvg, 8);  // Global average pool -> 32x1x1.
  m.Emplace<Flatten>();
  m.Emplace<Dense>(32, kTinyImageClasses).InitParams(rng);
  m.Emplace<SoftmaxLayer>();
  return m;
}

Model BuildDave(const std::string& name, int variant, uint64_t seed) {
  Rng rng(seed);
  const WeightInit init =
      variant == 2 ? WeightInit::kNormalized : WeightInit::kGlorotUniform;
  Model m(name, {3, kRoadImageHeight, kRoadImageWidth});
  if (variant == 1) {
    // DAVE-orig fully replicates the Nvidia architecture, including the
    // leading normalization layer.
    m.Emplace<BatchNorm>(3);
  }
  m.Emplace<Conv2D>(3, 12, 5, 5, 2, 0, Activation::kRelu).InitParams(rng, init);
  m.Emplace<Conv2D>(12, 16, 5, 5, 2, 0, Activation::kRelu).InitParams(rng, init);
  if (variant != 3) {
    // DAVE-dropout cuts down the convolutional stack.
    m.Emplace<Conv2D>(16, 20, 3, 3, 1, 0, Activation::kRelu).InitParams(rng, init);
    m.Emplace<Flatten>();
    m.Emplace<Dense>(20 * 3 * 11, 64, Activation::kRelu).InitParams(rng, init);
  } else {
    m.Emplace<Flatten>();
    m.Emplace<Dense>(16 * 5 * 13, 64, Activation::kRelu).InitParams(rng, init);
    m.Emplace<Dropout>(0.25f);
  }
  m.Emplace<Dense>(64, 16, Activation::kRelu).InitParams(rng, init);
  if (variant == 3) {
    m.Emplace<Dropout>(0.25f);
  }
  m.Emplace<Dense>(16, 1, Activation::kTanh).InitParams(rng, init);
  return m;
}

Model BuildMlp(const std::string& name, int input_dim, const std::vector<int>& hidden,
               int classes, uint64_t seed) {
  Rng rng(seed);
  Model m(name, {input_dim});
  int in = input_dim;
  for (const int h : hidden) {
    m.Emplace<Dense>(in, h, Activation::kRelu).InitParams(rng);
    in = h;
  }
  m.Emplace<Dense>(in, classes).InitParams(rng);
  m.Emplace<SoftmaxLayer>();
  return m;
}

uint64_t SeedFor(const std::string& name) { return Fnv1a64("seed:" + name); }

}  // namespace

const std::string& DomainName(Domain domain) {
  static const std::array<std::string, kNumDomains> names = {"MNIST", "ImageNet", "Driving",
                                                             "VirusTotal", "Drebin"};
  return names[static_cast<size_t>(domain)];
}

std::vector<Domain> AllDomains() {
  return {Domain::kMnist, Domain::kImageNet, Domain::kDriving, Domain::kPdf,
          Domain::kDrebin};
}

const std::vector<ModelInfo>& ZooModels() {
  static const std::vector<ModelInfo> models = {
      {"MNI_C1", Domain::kMnist, "LeNet-1", "LeNet-1, LeCun et al."},
      {"MNI_C2", Domain::kMnist, "LeNet-4", "LeNet-4, LeCun et al."},
      {"MNI_C3", Domain::kMnist, "LeNet-5", "LeNet-5, LeCun et al."},
      {"IMG_C1", Domain::kImageNet, "MiniVGG-16", "VGG-16, Simonyan et al."},
      {"IMG_C2", Domain::kImageNet, "MiniVGG-19", "VGG-19, Simonyan et al."},
      {"IMG_C3", Domain::kImageNet, "MiniResNet", "ResNet50, He et al."},
      {"DRV_C1", Domain::kDriving, "Dave-orig", "Dave-orig, Bojarski et al."},
      {"DRV_C2", Domain::kDriving, "Dave-norminit", "Dave-norminit"},
      {"DRV_C3", Domain::kDriving, "Dave-dropout", "Dave-dropout"},
      {"PDF_C1", Domain::kPdf, "<200, 200>", "<200, 200>"},
      {"PDF_C2", Domain::kPdf, "<200, 200, 200>", "<200, 200, 200>"},
      {"PDF_C3", Domain::kPdf, "<200, 200, 200, 200>", "<200, 200, 200, 200>"},
      {"APP_C1", Domain::kDrebin, "<200, 200>", "<200, 200>, Grosse et al."},
      {"APP_C2", Domain::kDrebin, "<50, 50>", "<50, 50>, Grosse et al."},
      {"APP_C3", Domain::kDrebin, "<200, 10>", "<200, 10>, Grosse et al."},
  };
  return models;
}

std::vector<std::string> DomainModelNames(Domain domain) {
  std::vector<std::string> names;
  for (const ModelInfo& info : ZooModels()) {
    if (info.domain == domain) {
      names.push_back(info.name);
    }
  }
  return names;
}

const ModelInfo& FindModel(const std::string& name) {
  for (const ModelInfo& info : ZooModels()) {
    if (info.name == name) {
      return info;
    }
  }
  throw std::out_of_range("unknown zoo model: " + name);
}

const Dataset& ModelZoo::TrainSet(Domain domain) {
  static std::map<Domain, Dataset> cache;
  static std::mutex mutex;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(domain);
  if (it != cache.end()) {
    return it->second;
  }
  const DomainConfig cfg = ConfigFor(domain);
  Dataset ds;
  switch (domain) {
    case Domain::kMnist:
      ds = MakeSyntheticDigits(cfg.train_samples, cfg.data_seed);
      break;
    case Domain::kImageNet:
      ds = MakeSyntheticTinyImages(cfg.train_samples, cfg.data_seed);
      break;
    case Domain::kDriving:
      ds = MakeSyntheticRoad(cfg.train_samples, cfg.data_seed);
      break;
    case Domain::kPdf:
      ds = MakeSyntheticPdf(cfg.train_samples, cfg.data_seed);
      break;
    case Domain::kDrebin:
      ds = MakeSyntheticDrebin(cfg.train_samples, cfg.data_seed);
      break;
  }
  return cache.emplace(domain, std::move(ds)).first->second;
}

const Dataset& ModelZoo::TestSet(Domain domain) {
  static std::map<Domain, Dataset> cache;
  static std::mutex mutex;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(domain);
  if (it != cache.end()) {
    return it->second;
  }
  const DomainConfig cfg = ConfigFor(domain);
  // Disjoint from the train set via a distinct seed stream.
  Dataset ds;
  switch (domain) {
    case Domain::kMnist:
      ds = MakeSyntheticDigits(cfg.test_samples, cfg.data_seed + 1);
      break;
    case Domain::kImageNet:
      ds = MakeSyntheticTinyImages(cfg.test_samples, cfg.data_seed + 1);
      break;
    case Domain::kDriving:
      ds = MakeSyntheticRoad(cfg.test_samples, cfg.data_seed + 1);
      break;
    case Domain::kPdf:
      ds = MakeSyntheticPdf(cfg.test_samples, cfg.data_seed + 1);
      break;
    case Domain::kDrebin:
      ds = MakeSyntheticDrebin(cfg.test_samples, cfg.data_seed + 1);
      break;
  }
  return cache.emplace(domain, std::move(ds)).first->second;
}

Model ModelZoo::Build(const std::string& name, uint64_t seed) {
  if (name == "MNI_C1") return BuildLenet(name, 1, seed);
  if (name == "MNI_C2") return BuildLenet(name, 4, seed);
  if (name == "MNI_C3") return BuildLenet(name, 5, seed);
  if (name == "IMG_C1") return BuildMiniVgg(name, 2, seed);
  if (name == "IMG_C2") return BuildMiniVgg(name, 3, seed);
  if (name == "IMG_C3") return BuildMiniResnet(name, seed);
  if (name == "DRV_C1") return BuildDave(name, 1, seed);
  if (name == "DRV_C2") return BuildDave(name, 2, seed);
  if (name == "DRV_C3") return BuildDave(name, 3, seed);
  if (name == "PDF_C1") return BuildMlp(name, kPdfFeatureCount, {200, 200}, 2, seed);
  if (name == "PDF_C2") return BuildMlp(name, kPdfFeatureCount, {200, 200, 200}, 2, seed);
  if (name == "PDF_C3") {
    return BuildMlp(name, kPdfFeatureCount, {200, 200, 200, 200}, 2, seed);
  }
  if (name == "APP_C1") return BuildMlp(name, kDrebinFeatureCount, {200, 200}, 2, seed);
  if (name == "APP_C2") return BuildMlp(name, kDrebinFeatureCount, {50, 50}, 2, seed);
  if (name == "APP_C3") return BuildMlp(name, kDrebinFeatureCount, {200, 10}, 2, seed);
  throw std::out_of_range("unknown zoo model: " + name);
}

Model ModelZoo::Trained(const std::string& name) {
  const ModelInfo& info = FindModel(name);
  const DomainConfig cfg = ConfigFor(info.domain);
  const std::string key = std::string("zoo/") + kZooVersion + "/" + name + "/" +
                          std::to_string(cfg.train_samples) + "/" +
                          std::to_string(cfg.epochs) + "/" + std::to_string(cfg.data_seed);
  if (const auto blob = FileCache::Global().Get(key)) {
    return Model::Deserialize(*blob);
  }
  Model model = Build(name, SeedFor(name));
  TrainConfig train_cfg;
  train_cfg.epochs = cfg.epochs;
  train_cfg.learning_rate = cfg.learning_rate;
  if (name == "IMG_C2") {
    // The deeper VGG variant needs a gentler rate to train stably at this
    // width (per-model tuning, as the paper does for its pretrained nets).
    train_cfg.learning_rate = 1.5e-3f;
  }
  train_cfg.seed = SeedFor(name) ^ 0xabcdef;
  Timer timer;
  Trainer::Fit(&model, TrainSet(info.domain), train_cfg);
  DX_LOG(Info) << "trained " << name << " in " << timer.ElapsedSeconds() << "s, paper-acc "
               << Trainer::PaperAccuracy(model, TestSet(info.domain));
  FileCache::Global().Put(key, model.Serialize());
  return model;
}

std::vector<Model> ModelZoo::TrainedDomain(Domain domain) {
  std::vector<Model> models;
  for (const std::string& name : DomainModelNames(domain)) {
    models.push_back(Trained(name));
  }
  return models;
}

Model ModelZoo::BuildCustomLenet1(int conv1_filters, int conv2_filters, uint64_t seed) {
  Rng rng(seed);
  Model m("lenet1_custom", {1, kDigitImageSize, kDigitImageSize});
  m.Emplace<Conv2D>(1, conv1_filters, 5, 5, 1, 0, Activation::kTanh).InitParams(rng);
  m.Emplace<Pool2D>(PoolMode::kAvg, 2);
  m.Emplace<Conv2D>(conv1_filters, conv2_filters, 5, 5, 1, 0, Activation::kTanh)
      .InitParams(rng);
  m.Emplace<Pool2D>(PoolMode::kAvg, 2);
  m.Emplace<Flatten>();
  m.Emplace<Dense>(conv2_filters * 4 * 4, 10).InitParams(rng);
  m.Emplace<SoftmaxLayer>();
  return m;
}

}  // namespace dx

// Minibatch trainer for sequential models on in-memory datasets.
//
// Classification datasets train with fused softmax cross-entropy; regression
// datasets with MSE against a 1-element target. Training is deterministic
// given the config seed.
#ifndef DX_SRC_MODELS_TRAINER_H_
#define DX_SRC_MODELS_TRAINER_H_

#include <cstdint>

#include "src/data/dataset.h"
#include "src/nn/model.h"

namespace dx {

struct TrainConfig {
  int epochs = 4;
  int batch_size = 32;
  float learning_rate = 1e-3f;  // Adam.
  uint64_t seed = 1;
  // Shuffle the sample order each epoch. Disable for controlled-similarity
  // experiments (Table 12): with sequential batches, removing d trailing
  // samples perturbs only the tail of each epoch, so model divergence grows
  // smoothly with d instead of jumping with the reshuffled permutation.
  bool shuffle = true;
  bool verbose = false;
};

class Trainer {
 public:
  // Calibrates BatchNorm statistics (if any), then runs minibatch Adam.
  static void Fit(Model* model, const Dataset& train, const TrainConfig& config);

  // Fraction of correctly classified samples.
  static float Accuracy(const Model& model, const Dataset& data);
  // Mean squared error of the scalar output (regression models).
  static float MseOf(const Model& model, const Dataset& data);
  // The paper's Table 1 accuracy figure: accuracy for classifiers,
  // 1 - MSE for the driving regressors.
  static float PaperAccuracy(const Model& model, const Dataset& data);

  // Sets every BatchNorm layer's mu/var from per-channel statistics of its
  // input over (at most max_samples of) `data`.
  static void CalibrateNormLayers(Model* model, const Dataset& data, int max_samples = 256);
};

}  // namespace dx

#endif  // DX_SRC_MODELS_TRAINER_H_

// The model zoo: trained models and shared datasets for every registered
// domain (src/core/domain.h), with a per-machine disk cache.
//
// The five paper domains of Table 1 are built-in DomainSpecs (registered by
// this translation unit):
//
//   mnist      MNI_C1..C3  LeNet-1 / LeNet-4 / LeNet-5
//   imagenet   IMG_C1..C3  MiniVGG16 / MiniVGG19 / MiniResNet (scaled-down)
//   driving    DRV_C1..C3  DAVE-orig / DAVE-norminit / DAVE-dropout
//   pdf        PDF_C1..C3  <200,200> / <200,200,200> / <200,200,200,200>
//   drebin     APP_C1..C3  <200,200> / <50,50> / <200,10>
//
// Out-of-paper domains (src/domains/) and out-of-tree RegisterDomain calls
// appear here automatically: ModelZoo is a thin cache keyed by DomainSpec —
// it never enumerates domains itself.
//
// Trained models are cached on disk (see util/cache.h) keyed by architecture,
// dataset configuration, and seed, so the zoo trains once per machine.
// DEEPXPLORE_FAST=1 shrinks dataset sizes for quick test runs.
#ifndef DX_SRC_MODELS_ZOO_H_
#define DX_SRC_MODELS_ZOO_H_

#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/nn/model.h"

namespace dx {

// DEPRECATED alias layer: the closed enum the registry replaced. It still
// names the five paper domains so pre-registry call sites (examples/,
// bench/table*.cc) compile unchanged; new code should use registry keys
// ("mnist", ...) and src/core/domain.h directly.
enum class Domain : int { kMnist = 0, kImageNet = 1, kDriving = 2, kPdf = 3, kDrebin = 4 };

// The paper domains only — the registry may hold more (DomainKeys()).
inline constexpr int kNumDomains = 5;

// Registry key of a legacy enum value ("mnist", "imagenet", "driving",
// "pdf", "drebin").
const std::string& DomainKey(Domain domain);

// Paper-style dataset label: "MNIST", "ImageNet", "Driving", "VirusTotal",
// "Drebin" for the enum; any registered domain's display name by key.
const std::string& DomainName(Domain domain);
const std::string& DomainName(const std::string& domain_key);

// The five paper domains, Table 1 order (deprecated; registry holds more).
std::vector<Domain> AllDomains();

struct ModelInfo {
  std::string name;        // e.g. "MNI_C1"
  std::string domain;      // registry key, e.g. "mnist"
  std::string arch;        // e.g. "LeNet-1"
  std::string paper_arch;  // what the paper used, e.g. "LeNet-1, LeCun et al."
};

// Every registered domain's zoo entries (registry key order; the paper's 15
// models plus any registered out-of-paper domains).
std::vector<ModelInfo> ZooModels();
// The model names of one domain.
std::vector<std::string> DomainModelNames(const std::string& domain_key);
std::vector<std::string> DomainModelNames(Domain domain);
// Info lookup across all registered domains; throws std::out_of_range for
// unknown names.
ModelInfo FindModel(const std::string& name);

class ModelZoo {
 public:
  // Deterministic shared datasets (generated once per process per domain).
  static const Dataset& TrainSet(const std::string& domain_key);
  static const Dataset& TestSet(const std::string& domain_key);
  static const Dataset& TrainSet(Domain domain);
  static const Dataset& TestSet(Domain domain);

  // Freshly initialized (untrained) model by zoo name.
  static Model Build(const std::string& name, uint64_t seed);

  // Trained model, from the disk cache when available.
  static Model Trained(const std::string& name);

  // All trained models of a domain.
  static std::vector<Model> TrainedDomain(const std::string& domain_key);
  static std::vector<Model> TrainedDomain(Domain domain);

  // LeNet-1 with custom conv filter counts / training-set size / epochs —
  // used by the Table 12 model-similarity experiment.
  static Model BuildCustomLenet1(int conv1_filters, int conv2_filters, uint64_t seed);
};

}  // namespace dx

#endif  // DX_SRC_MODELS_ZOO_H_

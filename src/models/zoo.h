// The 15-model zoo of Table 1: three independently trained DNNs per domain.
//
//   MNIST      MNI_C1..C3  LeNet-1 / LeNet-4 / LeNet-5
//   ImageNet   IMG_C1..C3  MiniVGG16 / MiniVGG19 / MiniResNet (scaled-down)
//   Driving    DRV_C1..C3  DAVE-orig / DAVE-norminit / DAVE-dropout
//   VirusTotal PDF_C1..C3  <200,200> / <200,200,200> / <200,200,200,200>
//   Drebin     APP_C1..C3  <200,200> / <50,50> / <200,10>
//
// Trained models are cached on disk (see util/cache.h) keyed by architecture,
// dataset configuration, and seed, so the zoo trains once per machine.
// DEEPXPLORE_FAST=1 shrinks dataset sizes and epochs for quick test runs.
#ifndef DX_SRC_MODELS_ZOO_H_
#define DX_SRC_MODELS_ZOO_H_

#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/nn/model.h"

namespace dx {

enum class Domain : int { kMnist = 0, kImageNet = 1, kDriving = 2, kPdf = 3, kDrebin = 4 };

inline constexpr int kNumDomains = 5;

// Paper-style dataset label ("MNIST", "ImageNet", "Driving", "VirusTotal",
// "Drebin").
const std::string& DomainName(Domain domain);
std::vector<Domain> AllDomains();

struct ModelInfo {
  std::string name;        // e.g. "MNI_C1"
  Domain domain;
  std::string arch;        // e.g. "LeNet-1"
  std::string paper_arch;  // what the paper used, e.g. "LeNet-1, LeCun et al."
};

// All 15 zoo entries in Table 1 order.
const std::vector<ModelInfo>& ZooModels();
// The three model names of one domain.
std::vector<std::string> DomainModelNames(Domain domain);
// Info lookup; throws std::out_of_range for unknown names.
const ModelInfo& FindModel(const std::string& name);

class ModelZoo {
 public:
  // Deterministic shared datasets (generated once per process).
  static const Dataset& TrainSet(Domain domain);
  static const Dataset& TestSet(Domain domain);

  // Freshly initialized (untrained) model by zoo name.
  static Model Build(const std::string& name, uint64_t seed);

  // Trained model, from the disk cache when available.
  static Model Trained(const std::string& name);

  // All three trained models of a domain.
  static std::vector<Model> TrainedDomain(Domain domain);

  // LeNet-1 with custom conv filter counts / training-set size / epochs —
  // used by the Table 12 model-similarity experiment.
  static Model BuildCustomLenet1(int conv1_filters, int conv2_filters, uint64_t seed);
};

}  // namespace dx

#endif  // DX_SRC_MODELS_ZOO_H_

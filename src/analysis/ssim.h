// Structural similarity index (Wang et al. 2004), used by the §7.3
// pollution-detection experiment to match generated error-inducing inputs
// back to training samples.
#ifndef DX_SRC_ANALYSIS_SSIM_H_
#define DX_SRC_ANALYSIS_SSIM_H_

#include "src/tensor/tensor.h"

namespace dx {

// Mean SSIM over sliding 8x8 windows of two same-shape images in [0, 1]
// (multi-channel inputs are averaged to luminance first). Returns a value in
// [-1, 1]; 1 means identical structure.
float Ssim(const Tensor& a, const Tensor& b);

}  // namespace dx

#endif  // DX_SRC_ANALYSIS_SSIM_H_

#include "src/analysis/pollution.h"

#include <algorithm>
#include <set>

#include "src/analysis/ssim.h"

namespace dx {

PollutionDetectionResult DetectPollutedSamples(const Dataset& train, int polluted_label,
                                               const std::vector<Tensor>& difference_inputs,
                                               const std::vector<int>& truly_polluted,
                                               int neighbors_per_test) {
  // Candidate pool: training samples currently carrying the polluted label.
  std::vector<int> candidates;
  for (int i = 0; i < train.size(); ++i) {
    if (train.Label(i) == polluted_label) {
      candidates.push_back(i);
    }
  }

  std::set<int> flagged_set;
  for (const Tensor& input : difference_inputs) {
    std::vector<std::pair<float, int>> scored;
    scored.reserve(candidates.size());
    for (const int i : candidates) {
      scored.emplace_back(Ssim(input, train.inputs[static_cast<size_t>(i)]), i);
    }
    const int take = std::min<int>(neighbors_per_test, static_cast<int>(scored.size()));
    std::partial_sort(scored.begin(), scored.begin() + take, scored.end(),
                      [](const auto& a, const auto& b) { return a.first > b.first; });
    for (int k = 0; k < take; ++k) {
      flagged_set.insert(scored[static_cast<size_t>(k)].second);
    }
  }

  const std::set<int> truth(truly_polluted.begin(), truly_polluted.end());
  PollutionDetectionResult result;
  result.flagged.assign(flagged_set.begin(), flagged_set.end());
  int hits = 0;
  for (const int i : result.flagged) {
    if (truth.count(i) > 0) {
      ++hits;
    }
  }
  result.precision = result.flagged.empty()
                         ? 0.0f
                         : static_cast<float>(hits) / static_cast<float>(result.flagged.size());
  result.recall =
      truth.empty() ? 0.0f : static_cast<float>(hits) / static_cast<float>(truth.size());
  return result;
}

}  // namespace dx

#include "src/analysis/diversity.h"

#include <stdexcept>

#include "src/tensor/ops.h"

namespace dx {

float AverageSeedL1Diversity(const std::vector<GeneratedTest>& tests,
                             const std::vector<Tensor>& seeds) {
  if (tests.empty()) {
    return 0.0f;
  }
  double sum = 0.0;
  for (const GeneratedTest& t : tests) {
    if (t.seed_index < 0 || t.seed_index >= static_cast<int>(seeds.size())) {
      throw std::out_of_range("AverageSeedL1Diversity: bad seed index");
    }
    sum += L1Distance(t.input, seeds[static_cast<size_t>(t.seed_index)]);
  }
  return static_cast<float>(sum / static_cast<double>(tests.size()));
}

}  // namespace dx

#include "src/analysis/ssim.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace dx {
namespace {

constexpr int kWindow = 8;
constexpr float kC1 = 0.01f * 0.01f;  // (K1 * L)^2 with L = 1.
constexpr float kC2 = 0.03f * 0.03f;

// Channel-averaged luminance plane.
std::vector<float> Luminance(const Tensor& t, int* height, int* width) {
  if (t.ndim() == 2) {
    *height = t.dim(0);
    *width = t.dim(1);
    return t.values();
  }
  if (t.ndim() != 3) {
    throw std::invalid_argument("Ssim: expected HW or CHW image");
  }
  const int c = t.dim(0);
  *height = t.dim(1);
  *width = t.dim(2);
  std::vector<float> lum(static_cast<size_t>(*height) * *width, 0.0f);
  for (int ch = 0; ch < c; ++ch) {
    for (size_t i = 0; i < lum.size(); ++i) {
      lum[i] += t[static_cast<int64_t>(ch) * (*height) * (*width) + static_cast<int64_t>(i)];
    }
  }
  for (auto& v : lum) {
    v /= static_cast<float>(c);
  }
  return lum;
}

}  // namespace

float Ssim(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("Ssim: shape mismatch");
  }
  int h = 0;
  int w = 0;
  const std::vector<float> la = Luminance(a, &h, &w);
  int h2 = 0;
  int w2 = 0;
  const std::vector<float> lb = Luminance(b, &h2, &w2);
  if (h < kWindow || w < kWindow) {
    throw std::invalid_argument("Ssim: image smaller than 8x8 window");
  }

  double total = 0.0;
  int windows = 0;
  const int step = kWindow / 2;  // 50% overlap.
  for (int y0 = 0; y0 + kWindow <= h; y0 += step) {
    for (int x0 = 0; x0 + kWindow <= w; x0 += step) {
      double mu_a = 0.0;
      double mu_b = 0.0;
      for (int y = y0; y < y0 + kWindow; ++y) {
        for (int x = x0; x < x0 + kWindow; ++x) {
          mu_a += la[static_cast<size_t>(y) * w + x];
          mu_b += lb[static_cast<size_t>(y) * w + x];
        }
      }
      const double n = kWindow * kWindow;
      mu_a /= n;
      mu_b /= n;
      double var_a = 0.0;
      double var_b = 0.0;
      double cov = 0.0;
      for (int y = y0; y < y0 + kWindow; ++y) {
        for (int x = x0; x < x0 + kWindow; ++x) {
          const double da = la[static_cast<size_t>(y) * w + x] - mu_a;
          const double db = lb[static_cast<size_t>(y) * w + x] - mu_b;
          var_a += da * da;
          var_b += db * db;
          cov += da * db;
        }
      }
      var_a /= n - 1;
      var_b /= n - 1;
      cov /= n - 1;
      const double ssim = ((2 * mu_a * mu_b + kC1) * (2 * cov + kC2)) /
                          ((mu_a * mu_a + mu_b * mu_b + kC1) * (var_a + var_b + kC2));
      total += ssim;
      ++windows;
    }
  }
  return static_cast<float>(total / windows);
}

}  // namespace dx

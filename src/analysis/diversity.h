// Test-diversity metric of Table 5: average L1 distance between generated
// difference-inducing inputs and their seeds.
#ifndef DX_SRC_ANALYSIS_DIVERSITY_H_
#define DX_SRC_ANALYSIS_DIVERSITY_H_

#include <vector>

#include "src/core/deepxplore.h"
#include "src/tensor/tensor.h"

namespace dx {

// Mean over tests of L1(test.input, seeds[test.seed_index]).
float AverageSeedL1Diversity(const std::vector<GeneratedTest>& tests,
                             const std::vector<Tensor>& seeds);

}  // namespace dx

#endif  // DX_SRC_ANALYSIS_DIVERSITY_H_

// §7.3 "Augmenting training data to improve accuracy".
//
// Generated difference-inducing inputs are auto-labeled by majority vote over
// the model ensemble (no manual labeling — the paper's key advantage over
// adversarial augmentation) and appended to the training set; the model is
// then retrained for a few epochs and its test accuracy tracked per epoch.
#ifndef DX_SRC_ANALYSIS_RETRAINING_H_
#define DX_SRC_ANALYSIS_RETRAINING_H_

#include <vector>

#include "src/data/dataset.h"
#include "src/nn/model.h"

namespace dx {

class Rng;

// Majority-vote label across models; ties break toward the lowest label.
int MajorityVoteLabel(const std::vector<Model*>& voters, const Tensor& input);

// Appends `extra_inputs` (labeled by majority vote over `voters`) to a copy
// of `train`.
Dataset AugmentWithVotedLabels(const Dataset& train, const std::vector<Tensor>& extra_inputs,
                               const std::vector<Model*>& voters);

// Retrains `model` on `augmented` for `epochs`, recording test accuracy
// before retraining (index 0) and after each epoch (indices 1..epochs).
std::vector<float> RetrainAccuracyCurve(Model* model, const Dataset& augmented,
                                        const Dataset& test, int epochs, uint64_t seed,
                                        float learning_rate = 5e-4f);

}  // namespace dx

#endif  // DX_SRC_ANALYSIS_RETRAINING_H_

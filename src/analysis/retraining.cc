#include "src/analysis/retraining.h"

#include <map>
#include <stdexcept>

#include "src/models/trainer.h"

namespace dx {

int MajorityVoteLabel(const std::vector<Model*>& voters, const Tensor& input) {
  if (voters.empty()) {
    throw std::invalid_argument("MajorityVoteLabel: no voters");
  }
  std::map<int, int> votes;
  for (const Model* m : voters) {
    ++votes[m->PredictClass(input)];
  }
  int best_label = votes.begin()->first;
  int best_count = 0;
  for (const auto& [label, count] : votes) {
    if (count > best_count) {
      best_count = count;
      best_label = label;
    }
  }
  return best_label;
}

Dataset AugmentWithVotedLabels(const Dataset& train, const std::vector<Tensor>& extra_inputs,
                               const std::vector<Model*>& voters) {
  if (train.regression()) {
    throw std::invalid_argument("AugmentWithVotedLabels: classification only");
  }
  Dataset augmented = train;
  augmented.name = train.name + "/augmented";
  for (const Tensor& input : extra_inputs) {
    augmented.Add(input, static_cast<float>(MajorityVoteLabel(voters, input)));
  }
  return augmented;
}

std::vector<float> RetrainAccuracyCurve(Model* model, const Dataset& augmented,
                                        const Dataset& test, int epochs, uint64_t seed,
                                        float learning_rate) {
  std::vector<float> curve;
  curve.push_back(Trainer::Accuracy(*model, test));
  for (int e = 0; e < epochs; ++e) {
    TrainConfig cfg;
    cfg.epochs = 1;
    cfg.learning_rate = learning_rate;
    cfg.seed = seed + static_cast<uint64_t>(e);
    Trainer::Fit(model, augmented, cfg);
    curve.push_back(Trainer::Accuracy(*model, test));
  }
  return curve;
}

}  // namespace dx

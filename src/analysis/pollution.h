// §7.3 "Detecting training data pollution attack".
//
// Two LeNet-5 models are trained on clean vs. label-polluted data; DeepXplore
// generates inputs the two models disagree on, and the training samples most
// structurally similar (SSIM) to those inputs are flagged as likely polluted.
#ifndef DX_SRC_ANALYSIS_POLLUTION_H_
#define DX_SRC_ANALYSIS_POLLUTION_H_

#include <vector>

#include "src/data/dataset.h"
#include "src/tensor/tensor.h"

namespace dx {

struct PollutionDetectionResult {
  std::vector<int> flagged;  // Indices into the training set.
  float precision = 0.0f;    // Fraction of flagged that are truly polluted.
  float recall = 0.0f;       // Fraction of polluted that were flagged.
};

// Flags, for each difference-inducing input, its `neighbors_per_test` most
// SSIM-similar training samples restricted to samples labeled
// `polluted_label`, then scores against the ground-truth polluted indices.
PollutionDetectionResult DetectPollutedSamples(
    const Dataset& train, int polluted_label, const std::vector<Tensor>& difference_inputs,
    const std::vector<int>& truly_polluted, int neighbors_per_test = 3);

}  // namespace dx

#endif  // DX_SRC_ANALYSIS_POLLUTION_H_

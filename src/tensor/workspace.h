// Workspace: a bump-style arena of reusable float buffers (wrapped as
// Tensors) for zero-allocation hot paths.
//
// Acquire() hands out the next slot, reshaped in place to the requested
// shape; Rewind() returns every slot to the pool in O(1) without freeing.
// Slot storage only ever grows, so once a loop's acquisition sequence has
// been seen (the "warm-up" iteration), every subsequent identical sequence
// is allocation-free. Callers that acquire in a deterministic order — layer
// kernels, execution plans — therefore reach a steady state with zero heap
// traffic per iteration.
//
// Acquired tensor contents are UNSPECIFIED (stale data from earlier uses);
// kernels must fully overwrite what they read back. Pointers returned by
// Acquire stay valid until the Workspace is destroyed (slots are held by
// unique_ptr), but a slot's *data* is logically reclaimed at the next
// Rewind.
//
// Not thread-safe: one Workspace per execution context.
#ifndef DX_SRC_TENSOR_WORKSPACE_H_
#define DX_SRC_TENSOR_WORKSPACE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/tensor/tensor.h"

namespace dx {

class Workspace {
 public:
  Workspace() = default;
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;

  // Borrows a tensor of `shape` from the arena. When the slot already holds
  // exactly this shape (the steady state of a deterministic acquisition
  // sequence) nothing is copied or resized — zero heap traffic.
  Tensor* Acquire(const Shape& shape);

  // Borrows a flat [n]-element slot for raw scratch whose shape is never
  // inspected (e.g. the dense kernel's transpose buffer). Reshapes only when
  // the element count changes, so no Shape object is constructed when warm.
  Tensor* AcquireFlat(int64_t n);

  // Returns all borrowed tensors to the pool (storage is kept).
  void Rewind() { cursor_ = 0; }

  // Number of slots ever created (stable once warm).
  size_t slots() const { return slots_.size(); }
  // Total float capacity across slots — the arena's memory footprint.
  int64_t CapacityElements() const;

 private:
  std::vector<std::unique_ptr<Tensor>> slots_;
  size_t cursor_ = 0;
};

}  // namespace dx

#endif  // DX_SRC_TENSOR_WORKSPACE_H_

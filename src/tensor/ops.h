// Free-function tensor operations: elementwise arithmetic, matrix products,
// row softmax, and one-hot encoding. Matrix products come in the transpose
// variants needed by dense-layer backprop so no explicit transpose copies are
// made in the hot path.
#ifndef DX_SRC_TENSOR_OPS_H_
#define DX_SRC_TENSOR_OPS_H_

#include "src/tensor/tensor.h"

namespace dx {

// Elementwise; shapes must match.
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);

// C[m,n] = A[m,k] * B[k,n].
Tensor MatMul(const Tensor& a, const Tensor& b);
// C[m,n] = A^T[m,k] * B[k,n] where A is stored as [k,m].
Tensor MatMulTransposeA(const Tensor& a, const Tensor& b);
// C[m,n] = A[m,k] * B^T[k,n] where B is stored as [n,k].
Tensor MatMulTransposeB(const Tensor& a, const Tensor& b);

// Numerically stable softmax over the last axis of a 1-D or 2-D tensor.
Tensor Softmax(const Tensor& logits);
// In-place building block of Softmax: stable row-wise softmax over a raw
// [rows, cols] buffer (same operation order, so results are bit-identical).
void SoftmaxRowsInPlace(float* p, int rows, int cols);

// One-hot row vector of length `num_classes`.
Tensor OneHot(int index, int num_classes);

// Sum of |a[i] - b[i]| (the paper's L1 diversity measure, Table 5).
float L1Distance(const Tensor& a, const Tensor& b);

// ---- Batch layout helpers ----------------------------------------------------------------
//
// A "batched" tensor prepends a leading batch dimension B to a per-sample
// shape: [B, ...sample]. Samples are stored contiguously, so sample b is the
// flat range [b * numel(sample), (b + 1) * numel(sample)).

// [batch, ...sample]; batch must be >= 1.
Shape BatchedShape(int batch, const Shape& sample);
// Drops the leading batch dimension; throws on a 0-dim tensor shape.
Shape SampleShape(const Shape& batched);

// Copies sample `index` out of a batched tensor.
Tensor SliceSample(const Tensor& batched, int index);
// Copies `sample` into slot `index` of a batched tensor (shapes must agree).
void CopySampleInto(Tensor* batched, int index, const Tensor& sample);
// Stacks equal-shaped samples into one [N, ...sample] tensor.
Tensor StackSamples(const std::vector<const Tensor*>& samples);

}  // namespace dx

#endif  // DX_SRC_TENSOR_OPS_H_

#include "src/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "src/util/rng.h"

namespace dx {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (const int d : shape) {
    if (d < 0) {
      throw std::invalid_argument("negative dimension in shape " + ShapeToString(shape));
    }
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) {
      out << ", ";
    }
    out << shape[i];
  }
  out << "]";
  return out.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<size_t>(NumElements(shape_)), 0.0f);
}

Tensor::Tensor(Shape shape, float fill_value) : shape_(std::move(shape)) {
  data_.assign(static_cast<size_t>(NumElements(shape_)), fill_value);
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  if (static_cast<int64_t>(data_.size()) != NumElements(shape_)) {
    throw std::invalid_argument("value count " + std::to_string(data_.size()) +
                                " does not match shape " + ShapeToString(shape_));
  }
}

Tensor Tensor::Randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::RandUniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::FromList(std::initializer_list<float> values) {
  return Tensor({static_cast<int>(values.size())}, std::vector<float>(values));
}

int Tensor::dim(int axis) const {
  if (axis < 0 || axis >= ndim()) {
    throw std::out_of_range("axis " + std::to_string(axis) + " out of range for shape " +
                            ShapeToString(shape_));
  }
  return shape_[static_cast<size_t>(axis)];
}

float& Tensor::at(int64_t flat_index) {
  if (flat_index < 0 || flat_index >= numel()) {
    throw std::out_of_range("flat index " + std::to_string(flat_index) + " out of range");
  }
  return data_[static_cast<size_t>(flat_index)];
}

float Tensor::at(int64_t flat_index) const {
  return const_cast<Tensor*>(this)->at(flat_index);
}

float& Tensor::at(const std::vector<int>& indices) {
  if (static_cast<int>(indices.size()) != ndim()) {
    throw std::invalid_argument("index rank mismatch");
  }
  int64_t flat = 0;
  for (size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] < 0 || indices[i] >= shape_[i]) {
      throw std::out_of_range("index out of range at axis " + std::to_string(i));
    }
    flat = flat * shape_[i] + indices[i];
  }
  return data_[static_cast<size_t>(flat)];
}

float Tensor::at(const std::vector<int>& indices) const {
  return const_cast<Tensor*>(this)->at(indices);
}

namespace {

// Resolves an at-most-one -1 dimension against `numel` and validates the
// element count; shared by both Reshape overloads.
Shape ResolveReshape(Shape new_shape, const Shape& old_shape, int64_t numel) {
  int64_t known = 1;
  int infer_axis = -1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      if (infer_axis != -1) {
        throw std::invalid_argument("at most one -1 dimension allowed in Reshape");
      }
      infer_axis = static_cast<int>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (infer_axis >= 0) {
    if (known == 0 || numel % known != 0) {
      throw std::invalid_argument("cannot infer dimension in Reshape");
    }
    new_shape[static_cast<size_t>(infer_axis)] = static_cast<int>(numel / known);
  }
  if (NumElements(new_shape) != numel) {
    throw std::invalid_argument("Reshape from " + ShapeToString(old_shape) + " to " +
                                ShapeToString(new_shape) + " changes element count");
  }
  return new_shape;
}

}  // namespace

Tensor Tensor::Reshape(Shape new_shape) const& {
  return Tensor(ResolveReshape(std::move(new_shape), shape_, numel()), data_);
}

Tensor Tensor::Reshape(Shape new_shape) && {
  // Resolve BEFORE moving the data out (argument evaluation order is
  // unspecified, and ResolveReshape reads numel()).
  Shape resolved = ResolveReshape(std::move(new_shape), shape_, numel());
  return Tensor(std::move(resolved), std::move(data_));
}

void Tensor::ResizeInPlace(Shape new_shape) {
  const int64_t n = NumElements(new_shape);
  shape_ = std::move(new_shape);
  data_.resize(static_cast<size_t>(n));
}

void Tensor::SetBatchDim(int batch) {
  if (shape_.empty()) {
    throw std::logic_error("SetBatchDim: tensor has no batch dimension");
  }
  if (batch < 0) {
    throw std::invalid_argument("SetBatchDim: negative batch");
  }
  int64_t stride = 1;
  for (size_t i = 1; i < shape_.size(); ++i) {
    stride *= shape_[i];
  }
  shape_[0] = batch;
  data_.resize(static_cast<size_t>(stride * batch));
}

Tensor& Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
  return *this;
}

void Tensor::CheckSameShape(const Tensor& other, const char* op) const {
  if (shape_ != other.shape_) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                ShapeToString(shape_) + " vs " + ShapeToString(other.shape_));
  }
}

Tensor& Tensor::AddInPlace(const Tensor& other) {
  CheckSameShape(other, "AddInPlace");
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
  return *this;
}

Tensor& Tensor::SubInPlace(const Tensor& other) {
  CheckSameShape(other, "SubInPlace");
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] -= other.data_[i];
  }
  return *this;
}

Tensor& Tensor::MulInPlace(const Tensor& other) {
  CheckSameShape(other, "MulInPlace");
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] *= other.data_[i];
  }
  return *this;
}

Tensor& Tensor::Scale(float factor) {
  for (auto& v : data_) {
    v *= factor;
  }
  return *this;
}

Tensor& Tensor::AddScalar(float value) {
  for (auto& v : data_) {
    v += value;
  }
  return *this;
}

Tensor& Tensor::ClampInPlace(float lo, float hi) {
  for (auto& v : data_) {
    v = std::clamp(v, lo, hi);
  }
  return *this;
}

Tensor& Tensor::Axpy(float factor, const Tensor& other) {
  CheckSameShape(other, "Axpy");
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += factor * other.data_[i];
  }
  return *this;
}

float Tensor::Sum() const {
  // Accumulate in double: reductions feed coverage statistics where drift matters.
  double sum = 0.0;
  for (const float v : data_) {
    sum += v;
  }
  return static_cast<float>(sum);
}

float Tensor::Mean() const {
  if (data_.empty()) {
    throw std::invalid_argument("Mean of empty tensor");
  }
  return Sum() / static_cast<float>(data_.size());
}

float Tensor::Min() const {
  if (data_.empty()) {
    throw std::invalid_argument("Min of empty tensor");
  }
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::Max() const {
  if (data_.empty()) {
    throw std::invalid_argument("Max of empty tensor");
  }
  return *std::max_element(data_.begin(), data_.end());
}

int64_t Tensor::Argmax() const {
  if (data_.empty()) {
    throw std::invalid_argument("Argmax of empty tensor");
  }
  return std::distance(data_.begin(), std::max_element(data_.begin(), data_.end()));
}

float Tensor::L1Norm() const {
  double sum = 0.0;
  for (const float v : data_) {
    sum += std::abs(v);
  }
  return static_cast<float>(sum);
}

float Tensor::L2Norm() const {
  double sum = 0.0;
  for (const float v : data_) {
    sum += static_cast<double>(v) * v;
  }
  return static_cast<float>(std::sqrt(sum));
}

int64_t ConstTensorView::Argmax() const {
  if (numel_ == 0) {
    throw std::invalid_argument("Argmax of empty view");
  }
  return std::distance(data_, std::max_element(data_, data_ + numel_));
}

float ConstTensorView::Sum() const {
  double sum = 0.0;
  for (int64_t i = 0; i < numel_; ++i) {
    sum += data_[static_cast<size_t>(i)];
  }
  return static_cast<float>(sum);
}

void TensorView::Fill(float value) const {
  std::fill(data_, data_ + numel_, value);
}

std::string Tensor::ToString(int max_elements) const {
  std::ostringstream out;
  out << "Tensor" << ShapeToString(shape_) << " {";
  const int64_t n = std::min<int64_t>(numel(), max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) {
      out << ", ";
    }
    out << data_[static_cast<size_t>(i)];
  }
  if (numel() > n) {
    out << ", ...";
  }
  out << "}";
  return out.str();
}

}  // namespace dx

#include "src/tensor/workspace.h"

namespace dx {

Tensor* Workspace::Acquire(const Shape& shape) {
  if (cursor_ == slots_.size()) {
    slots_.push_back(std::make_unique<Tensor>());
  }
  Tensor* slot = slots_[cursor_++].get();
  if (slot->shape() != shape) {  // Warm slots skip the Shape copy entirely.
    slot->ResizeInPlace(shape);
  }
  return slot;
}

Tensor* Workspace::AcquireFlat(int64_t n) {
  if (cursor_ == slots_.size()) {
    slots_.push_back(std::make_unique<Tensor>());
  }
  Tensor* slot = slots_[cursor_++].get();
  if (slot->numel() != n || slot->ndim() != 1) {
    slot->ResizeInPlace({static_cast<int>(n)});
  }
  return slot;
}

int64_t Workspace::CapacityElements() const {
  int64_t total = 0;
  for (const auto& slot : slots_) {
    total += slot->Capacity();
  }
  return total;
}

}  // namespace dx

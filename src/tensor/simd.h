// Width-abstracted SIMD primitives for the float32 kernel layer.
//
// Exactly one backend is selected at compile time:
//
//   - AVX2 + FMA  (x86-64, 8 lanes)   when __AVX2__ && __FMA__
//   - NEON        (AArch64, 4 lanes)  when __ARM_NEON
//   - scalar      (1 lane)            otherwise, or when DX_SIMD_DISABLE is
//                                     defined (cmake -DDX_SIMD=OFF)
//
// The abstraction deliberately exposes only lane-parallel operations plus a
// fused multiply-add. Kernels built on it (src/nn/gemm.cc) accumulate each
// output element over a fixed index order with Fma, which is fused (single
// rounding) at every width — _mm256_fmadd_ps, vfmaq_f32, and std::fma are all
// correctly-rounded — so kernel results are BIT-IDENTICAL across backends.
// Widening or disabling SIMD changes speed, never bits. Tolerances in tests
// exist for comparing the GEMM path against the by-value scalar oracle
// (different accumulation order), not for comparing backends.
//
// The elementwise ops (Add/Sub/Mul, Relu, ReluGrad) carry the same guarantee
// trivially: they are single correctly-rounded IEEE operations per lane, so
// a loop written with them produces the exact bits of the equivalent scalar
// loop. This is what lets the activation-gradient glue (src/nn/activation.cc)
// vectorize WITHOUT forking the numerics between the by-value oracle and the
// plan path — both call the same vectorized helpers.
//
// The active backend is reported at runtime by SimdBackendName()/SimdLanes()
// (defined in simd.cc so the whole program reports what dxcore's kernels were
// actually compiled with), surfaced via `dxplore --version` and the daemon's
// /metrics endpoint.
#ifndef DX_SRC_TENSOR_SIMD_H_
#define DX_SRC_TENSOR_SIMD_H_

#include <cmath>

#if !defined(DX_SIMD_DISABLE) && defined(__AVX2__) && defined(__FMA__)
#define DX_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(DX_SIMD_DISABLE) && defined(__ARM_NEON)
#define DX_SIMD_NEON 1
#include <arm_neon.h>
#else
#define DX_SIMD_SCALAR 1
#endif

namespace dx {
namespace simd {

#if defined(DX_SIMD_AVX2)

inline constexpr int kLanes = 8;
inline constexpr char kBackend[] = "avx2";

// One register of kLanes floats. Loads/stores are unaligned: Tensor storage
// is std::vector<float>, which guarantees only alignof(float).
struct VecF {
  __m256 v;

  static VecF Load(const float* p) { return {_mm256_loadu_ps(p)}; }
  static VecF Broadcast(float x) { return {_mm256_set1_ps(x)}; }
  static VecF Zero() { return {_mm256_setzero_ps()}; }
  // a * b + c with a single rounding.
  static VecF Fma(VecF a, VecF b, VecF c) {
    return {_mm256_fmadd_ps(a.v, b.v, c.v)};
  }
  static VecF Add(VecF a, VecF b) { return {_mm256_add_ps(a.v, b.v)}; }
  static VecF Sub(VecF a, VecF b) { return {_mm256_sub_ps(a.v, b.v)}; }
  static VecF Mul(VecF a, VecF b) { return {_mm256_mul_ps(a.v, b.v)}; }
  // max(x, 0) with the scalar kernel's NaN convention: x > 0 ? x : 0, so a
  // NaN lane becomes 0 (ordered compare is false on NaN).
  static VecF Relu(VecF x) {
    return {_mm256_and_ps(_mm256_cmp_ps(x.v, _mm256_setzero_ps(), _CMP_GT_OQ), x.v)};
  }
  // The ReLU backward mask: g where !(y <= 0), else 0. A NaN y KEEPS g —
  // exactly the scalar `if (y <= 0) g = 0`, whose ordered compare is false
  // on NaN (note the deliberate asymmetry with Relu above).
  static VecF ReluGrad(VecF y, VecF g) {
    return {_mm256_andnot_ps(_mm256_cmp_ps(y.v, _mm256_setzero_ps(), _CMP_LE_OQ), g.v)};
  }
  void Store(float* p) const { _mm256_storeu_ps(p, v); }
};

#elif defined(DX_SIMD_NEON)

inline constexpr int kLanes = 4;
inline constexpr char kBackend[] = "neon";

struct VecF {
  float32x4_t v;

  static VecF Load(const float* p) { return {vld1q_f32(p)}; }
  static VecF Broadcast(float x) { return {vdupq_n_f32(x)}; }
  static VecF Zero() { return {vdupq_n_f32(0.0f)}; }
  static VecF Fma(VecF a, VecF b, VecF c) {
    return {vfmaq_f32(c.v, a.v, b.v)};
  }
  static VecF Add(VecF a, VecF b) { return {vaddq_f32(a.v, b.v)}; }
  static VecF Sub(VecF a, VecF b) { return {vsubq_f32(a.v, b.v)}; }
  static VecF Mul(VecF a, VecF b) { return {vmulq_f32(a.v, b.v)}; }
  // x > 0 ? x : 0 (NaN lanes become 0; vcgtq is false on NaN).
  static VecF Relu(VecF x) {
    const uint32x4_t gt = vcgtq_f32(x.v, vdupq_n_f32(0.0f));
    return {vreinterpretq_f32_u32(
        vandq_u32(gt, vreinterpretq_u32_f32(x.v)))};
  }
  // g where !(y <= 0), else 0 (NaN y keeps g; vcleq is false on NaN).
  static VecF ReluGrad(VecF y, VecF g) {
    const uint32x4_t le = vcleq_f32(y.v, vdupq_n_f32(0.0f));
    return {vreinterpretq_f32_u32(
        vbicq_u32(vreinterpretq_u32_f32(g.v), le))};
  }
  void Store(float* p) const { vst1q_f32(p, v); }
};

#else  // DX_SIMD_SCALAR

inline constexpr int kLanes = 1;
inline constexpr char kBackend[] = "scalar";

struct VecF {
  float v;

  static VecF Load(const float* p) { return {*p}; }
  static VecF Broadcast(float x) { return {x}; }
  static VecF Zero() { return {0.0f}; }
  // std::fma is correctly rounded, matching the hardware FMA backends bit
  // for bit (glibc dispatches to the FMA instruction when the CPU has one).
  static VecF Fma(VecF a, VecF b, VecF c) {
    return {std::fma(a.v, b.v, c.v)};
  }
  static VecF Add(VecF a, VecF b) { return {a.v + b.v}; }
  static VecF Sub(VecF a, VecF b) { return {a.v - b.v}; }
  static VecF Mul(VecF a, VecF b) { return {a.v * b.v}; }
  static VecF Relu(VecF x) { return {x.v > 0.0f ? x.v : 0.0f}; }
  static VecF ReluGrad(VecF y, VecF g) { return {y.v <= 0.0f ? 0.0f : g.v}; }
  void Store(float* p) const { *p = v; }
};

#endif

}  // namespace simd

// Runtime-queryable identity of the backend dxcore's kernels were compiled
// with (defined in simd.cc). Prefer these over simd::kBackend outside the
// kernel layer: a translation unit compiled with different flags would see a
// different header-level constant, but the kernels live in dxcore.
const char* SimdBackendName();
int SimdLanes();

}  // namespace dx

#endif  // DX_SRC_TENSOR_SIMD_H_

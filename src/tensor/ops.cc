#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dx {
namespace {

void CheckMatrix(const Tensor& t, const char* name) {
  if (t.ndim() != 2) {
    throw std::invalid_argument(std::string(name) + " must be 2-D, got " +
                                ShapeToString(t.shape()));
  }
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.AddInPlace(b);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.SubInPlace(b);
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.MulInPlace(b);
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  CheckMatrix(a, "MatMul lhs");
  CheckMatrix(b, "MatMul rhs");
  const int m = a.dim(0);
  const int k = a.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("MatMul inner dimension mismatch: " +
                                ShapeToString(a.shape()) + " x " + ShapeToString(b.shape()));
  }
  const int n = b.dim(1);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // i-k-j loop order: unit-stride inner loop over both B and C rows.
  for (int i = 0; i < m; ++i) {
    for (int kk = 0; kk < k; ++kk) {
      const float aik = pa[static_cast<size_t>(i) * k + kk];
      if (aik == 0.0f) {
        continue;
      }
      const float* b_row = pb + static_cast<size_t>(kk) * n;
      float* c_row = pc + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        c_row[j] += aik * b_row[j];
      }
    }
  }
  return c;
}

Tensor MatMulTransposeA(const Tensor& a, const Tensor& b) {
  CheckMatrix(a, "MatMulTransposeA lhs");
  CheckMatrix(b, "MatMulTransposeA rhs");
  const int k = a.dim(0);
  const int m = a.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("MatMulTransposeA inner dimension mismatch");
  }
  const int n = b.dim(1);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int kk = 0; kk < k; ++kk) {
    const float* a_row = pa + static_cast<size_t>(kk) * m;
    const float* b_row = pb + static_cast<size_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float aki = a_row[i];
      if (aki == 0.0f) {
        continue;
      }
      float* c_row = pc + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        c_row[j] += aki * b_row[j];
      }
    }
  }
  return c;
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  CheckMatrix(a, "MatMulTransposeB lhs");
  CheckMatrix(b, "MatMulTransposeB rhs");
  const int m = a.dim(0);
  const int k = a.dim(1);
  if (b.dim(1) != k) {
    throw std::invalid_argument("MatMulTransposeB inner dimension mismatch");
  }
  const int n = b.dim(0);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int i = 0; i < m; ++i) {
    const float* a_row = pa + static_cast<size_t>(i) * k;
    float* c_row = pc + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* b_row = pb + static_cast<size_t>(j) * k;
      double dot = 0.0;
      for (int kk = 0; kk < k; ++kk) {
        dot += static_cast<double>(a_row[kk]) * b_row[kk];
      }
      c_row[j] = static_cast<float>(dot);
    }
  }
  return c;
}

void SoftmaxRowsInPlace(float* p, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    float* row = p + static_cast<size_t>(r) * cols;
    float max_v = row[0];
    for (int c = 1; c < cols; ++c) {
      max_v = std::max(max_v, row[c]);
    }
    double sum = 0.0;
    for (int c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - max_v);
      sum += row[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int c = 0; c < cols; ++c) {
      row[c] *= inv;
    }
  }
}

Tensor Softmax(const Tensor& logits) {
  if (logits.ndim() != 1 && logits.ndim() != 2) {
    throw std::invalid_argument("Softmax expects 1-D or 2-D input, got " +
                                ShapeToString(logits.shape()));
  }
  const int rows = logits.ndim() == 2 ? logits.dim(0) : 1;
  const int cols = logits.ndim() == 2 ? logits.dim(1) : logits.dim(0);
  Tensor out = logits;
  SoftmaxRowsInPlace(out.data(), rows, cols);
  return out;
}

Tensor OneHot(int index, int num_classes) {
  if (index < 0 || index >= num_classes) {
    throw std::out_of_range("OneHot index out of range");
  }
  Tensor t({num_classes});
  t[index] = 1.0f;
  return t;
}

Shape BatchedShape(int batch, const Shape& sample) {
  if (batch < 1) {
    throw std::invalid_argument("BatchedShape: batch must be >= 1");
  }
  Shape shape;
  shape.reserve(sample.size() + 1);
  shape.push_back(batch);
  shape.insert(shape.end(), sample.begin(), sample.end());
  return shape;
}

Shape SampleShape(const Shape& batched) {
  if (batched.empty()) {
    throw std::invalid_argument("SampleShape: tensor has no batch dimension");
  }
  return Shape(batched.begin() + 1, batched.end());
}

Tensor SliceSample(const Tensor& batched, int index) {
  const Shape sample_shape = SampleShape(batched.shape());
  const int64_t stride = NumElements(sample_shape);
  if (index < 0 || index >= batched.dim(0)) {
    throw std::out_of_range("SliceSample: index out of range");
  }
  const float* src = batched.data() + static_cast<size_t>(index) * stride;
  return Tensor(sample_shape, std::vector<float>(src, src + stride));
}

void CopySampleInto(Tensor* batched, int index, const Tensor& sample) {
  const Shape sample_shape = SampleShape(batched->shape());
  if (sample.shape() != sample_shape) {
    throw std::invalid_argument("CopySampleInto: sample shape " +
                                ShapeToString(sample.shape()) + " != slot shape " +
                                ShapeToString(sample_shape));
  }
  if (index < 0 || index >= batched->dim(0)) {
    throw std::out_of_range("CopySampleInto: index out of range");
  }
  const int64_t stride = sample.numel();
  std::copy(sample.data(), sample.data() + stride,
            batched->data() + static_cast<size_t>(index) * stride);
}

Tensor StackSamples(const std::vector<const Tensor*>& samples) {
  if (samples.empty()) {
    throw std::invalid_argument("StackSamples: need at least one sample");
  }
  Tensor out(BatchedShape(static_cast<int>(samples.size()), samples[0]->shape()));
  for (size_t i = 0; i < samples.size(); ++i) {
    CopySampleInto(&out, static_cast<int>(i), *samples[i]);
  }
  return out;
}

float L1Distance(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("L1Distance shape mismatch");
  }
  double sum = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    sum += std::abs(static_cast<double>(a[i]) - b[i]);
  }
  return static_cast<float>(sum);
}

}  // namespace dx

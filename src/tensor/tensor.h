// A dense, row-major, float32 N-dimensional tensor with value semantics.
//
// This is the numeric substrate for the neural-network library. Shapes use
// `int` extents (all tensors in this project are far below 2^31 elements per
// dimension); total element counts use int64_t. Dimension-mismatch and
// out-of-range errors throw std::invalid_argument / std::out_of_range.
#ifndef DX_SRC_TENSOR_TENSOR_H_
#define DX_SRC_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace dx {

class Rng;

using Shape = std::vector<int>;

// Number of elements implied by a shape (1 for the empty shape).
int64_t NumElements(const Shape& shape);
// Human-readable "[2, 3, 4]".
std::string ShapeToString(const Shape& shape);

class Tensor {
 public:
  // An empty (0-dim, 1-element is NOT the same; this has no elements) tensor.
  Tensor() = default;

  // Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill_value);
  // Takes ownership of `values`; values.size() must equal NumElements(shape).
  Tensor(Shape shape, std::vector<float> values);

  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor Full(Shape shape, float value) { return Tensor(std::move(shape), value); }
  // I.i.d. N(0, stddev^2) entries.
  static Tensor Randn(Shape shape, Rng& rng, float stddev = 1.0f);
  // I.i.d. Uniform[lo, hi) entries.
  static Tensor RandUniform(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);
  // 1-D tensor from a list: Tensor::FromList({1, 2, 3}).
  static Tensor FromList(std::initializer_list<float> values);

  const Shape& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int dim(int axis) const;
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& values() { return data_; }
  const std::vector<float>& values() const { return data_; }

  // Flat element access with bounds checking.
  float& at(int64_t flat_index);
  float at(int64_t flat_index) const;
  // Unchecked flat access for hot loops.
  float& operator[](int64_t flat_index) { return data_[static_cast<size_t>(flat_index)]; }
  float operator[](int64_t flat_index) const { return data_[static_cast<size_t>(flat_index)]; }

  // Multi-dimensional access (checked).
  float& at(const std::vector<int>& indices);
  float at(const std::vector<int>& indices) const;

  // Returns a tensor with the same data and a new shape; element counts must
  // match. A dimension of -1 is inferred (at most one). The rvalue overload
  // moves the data vector instead of deep-copying it, so chains like
  // `std::move(t).Reshape(...)` (e.g. flattening a freshly built batch) are
  // allocation-free.
  Tensor Reshape(Shape new_shape) const&;
  Tensor Reshape(Shape new_shape) &&;

  // Pre-allocates capacity for at least `n` elements without changing the
  // shape or contents (used by execution plans to make later ResizeInPlace
  // calls allocation-free).
  void Reserve(int64_t n) { data_.reserve(static_cast<size_t>(n)); }
  // Re-shapes this tensor in place, reusing its storage. Growing beyond the
  // current size zero-fills the new elements; within the reserved capacity
  // no heap allocation happens. Existing elements keep their values.
  void ResizeInPlace(Shape new_shape);
  // Changes only the leading (batch) dimension in place — unlike
  // ResizeInPlace this never constructs a Shape, so it is allocation-free
  // even when the extent changes (the execution plan's width-adjust path).
  // Requires ndim() >= 1.
  void SetBatchDim(int batch);
  // Current element capacity of the underlying storage.
  int64_t Capacity() const { return static_cast<int64_t>(data_.capacity()); }

  // In-place mutators (return *this for chaining).
  Tensor& Fill(float value);
  Tensor& AddInPlace(const Tensor& other);
  Tensor& SubInPlace(const Tensor& other);
  Tensor& MulInPlace(const Tensor& other);
  Tensor& Scale(float factor);
  Tensor& AddScalar(float value);
  Tensor& ClampInPlace(float lo, float hi);
  // this += factor * other (axpy).
  Tensor& Axpy(float factor, const Tensor& other);

  // Reductions.
  float Sum() const;
  float Mean() const;
  float Min() const;
  float Max() const;
  int64_t Argmax() const;
  // L1 and L2 norms of the flattened tensor.
  float L1Norm() const;
  float L2Norm() const;

  std::string ToString(int max_elements = 16) const;

 private:
  void CheckSameShape(const Tensor& other, const char* op) const;

  Shape shape_;
  std::vector<float> data_;
};

// ---- Non-owning views --------------------------------------------------------------------
//
// A view is a raw data pointer plus a *borrowed* shape: trivially copyable,
// never allocating — the currency of zero-allocation hot paths (the batched
// executor reads per-sample slices of trace slabs through views instead of
// copying them out as Tensors). Both the viewed data and the Shape object
// must outlive the view; views of a Tensor are invalidated by anything that
// reallocates or reshapes it.

class ConstTensorView {
 public:
  ConstTensorView() = default;
  // Views `numel` contiguous floats at `data`, described by `shape` (which
  // must stay alive; `numel` must equal NumElements(*shape)).
  ConstTensorView(const float* data, const Shape* shape, int64_t numel)
      : data_(data), shape_(shape), numel_(numel) {}
  // View of a whole tensor.
  explicit ConstTensorView(const Tensor& t)
      : data_(t.data()), shape_(&t.shape()), numel_(t.numel()) {}

  const Shape& shape() const { return *shape_; }
  int ndim() const { return static_cast<int>(shape_->size()); }
  int64_t numel() const { return numel_; }
  bool empty() const { return numel_ == 0; }
  const float* data() const { return data_; }
  const float* begin() const { return data_; }
  const float* end() const { return data_ + numel_; }

  float operator[](int64_t flat_index) const {
    return data_[static_cast<size_t>(flat_index)];
  }

  // Index of the largest element (first on ties), matching Tensor::Argmax.
  int64_t Argmax() const;
  float Sum() const;  // Double-accumulated, matching Tensor::Sum.

 private:
  const float* data_ = nullptr;
  const Shape* shape_ = nullptr;
  int64_t numel_ = 0;
};

class TensorView {
 public:
  TensorView() = default;
  TensorView(float* data, const Shape* shape, int64_t numel)
      : data_(data), shape_(shape), numel_(numel) {}
  explicit TensorView(Tensor& t) : data_(t.data()), shape_(&t.shape()), numel_(t.numel()) {}

  const Shape& shape() const { return *shape_; }
  int ndim() const { return static_cast<int>(shape_->size()); }
  int64_t numel() const { return numel_; }
  bool empty() const { return numel_ == 0; }
  float* data() const { return data_; }

  float& operator[](int64_t flat_index) const {
    return data_[static_cast<size_t>(flat_index)];
  }

  void Fill(float value) const;

  operator ConstTensorView() const { return {data_, shape_, numel_}; }

 private:
  float* data_ = nullptr;
  const Shape* shape_ = nullptr;
  int64_t numel_ = 0;
};

}  // namespace dx

#endif  // DX_SRC_TENSOR_TENSOR_H_

// A dense, row-major, float32 N-dimensional tensor with value semantics.
//
// This is the numeric substrate for the neural-network library. Shapes use
// `int` extents (all tensors in this project are far below 2^31 elements per
// dimension); total element counts use int64_t. Dimension-mismatch and
// out-of-range errors throw std::invalid_argument / std::out_of_range.
#ifndef DX_SRC_TENSOR_TENSOR_H_
#define DX_SRC_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace dx {

class Rng;

using Shape = std::vector<int>;

// Number of elements implied by a shape (1 for the empty shape).
int64_t NumElements(const Shape& shape);
// Human-readable "[2, 3, 4]".
std::string ShapeToString(const Shape& shape);

class Tensor {
 public:
  // An empty (0-dim, 1-element is NOT the same; this has no elements) tensor.
  Tensor() = default;

  // Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill_value);
  // Takes ownership of `values`; values.size() must equal NumElements(shape).
  Tensor(Shape shape, std::vector<float> values);

  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor Full(Shape shape, float value) { return Tensor(std::move(shape), value); }
  // I.i.d. N(0, stddev^2) entries.
  static Tensor Randn(Shape shape, Rng& rng, float stddev = 1.0f);
  // I.i.d. Uniform[lo, hi) entries.
  static Tensor RandUniform(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);
  // 1-D tensor from a list: Tensor::FromList({1, 2, 3}).
  static Tensor FromList(std::initializer_list<float> values);

  const Shape& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int dim(int axis) const;
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& values() { return data_; }
  const std::vector<float>& values() const { return data_; }

  // Flat element access with bounds checking.
  float& at(int64_t flat_index);
  float at(int64_t flat_index) const;
  // Unchecked flat access for hot loops.
  float& operator[](int64_t flat_index) { return data_[static_cast<size_t>(flat_index)]; }
  float operator[](int64_t flat_index) const { return data_[static_cast<size_t>(flat_index)]; }

  // Multi-dimensional access (checked).
  float& at(const std::vector<int>& indices);
  float at(const std::vector<int>& indices) const;

  // Returns a tensor with the same data and a new shape; element counts must
  // match. A dimension of -1 is inferred (at most one).
  Tensor Reshape(Shape new_shape) const;

  // In-place mutators (return *this for chaining).
  Tensor& Fill(float value);
  Tensor& AddInPlace(const Tensor& other);
  Tensor& SubInPlace(const Tensor& other);
  Tensor& MulInPlace(const Tensor& other);
  Tensor& Scale(float factor);
  Tensor& AddScalar(float value);
  Tensor& ClampInPlace(float lo, float hi);
  // this += factor * other (axpy).
  Tensor& Axpy(float factor, const Tensor& other);

  // Reductions.
  float Sum() const;
  float Mean() const;
  float Min() const;
  float Max() const;
  int64_t Argmax() const;
  // L1 and L2 norms of the flattened tensor.
  float L1Norm() const;
  float L2Norm() const;

  std::string ToString(int max_elements = 16) const;

 private:
  void CheckSameShape(const Tensor& other, const char* op) const;

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace dx

#endif  // DX_SRC_TENSOR_TENSOR_H_

#include "src/tensor/simd.h"

namespace dx {

const char* SimdBackendName() { return simd::kBackend; }

int SimdLanes() { return simd::kLanes; }

}  // namespace dx

// Random-testing baselines, in two forms:
//
//   - RandomInputs: k inputs drawn uniformly (without replacement) from the
//     original test set — the paper's "random" comparator.
//   - RandomPerturbationObjective: gradient-free random-walk search expressed
//     as a Session Objective plug-in, so the random baseline runs through the
//     same engine loop (constraints, difference checks, coverage) as the
//     joint optimization.
#ifndef DX_SRC_BASELINES_RANDOM_TESTING_H_
#define DX_SRC_BASELINES_RANDOM_TESTING_H_

#include <string>
#include <vector>

#include "src/core/objective.h"
#include "src/data/dataset.h"
#include "src/tensor/tensor.h"

namespace dx {

class Rng;

std::vector<Tensor> RandomInputs(const Dataset& data, int k, Rng& rng);

// Emits one uniform random direction in [-1, 1]^d per iteration (for model
// k = 0 only, so the direction is independent of the model count). The
// engine's step/constraint machinery turns it into a random walk over the
// valid input domain.
class RandomPerturbationObjective : public Objective {
 public:
  std::string name() const override { return "random"; }
  void Accumulate(const ObjectiveContext& ctx, int k, const ForwardTrace& trace,
                  Tensor* grad) const override;
  bool NeedsTrace(const ObjectiveContext& ctx, int k) const override {
    (void)ctx;
    (void)k;
    return false;  // Gradient-free: the random direction ignores the models.
  }
};

}  // namespace dx

#endif  // DX_SRC_BASELINES_RANDOM_TESTING_H_

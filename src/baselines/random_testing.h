// Random-selection baseline: k inputs drawn uniformly (without replacement)
// from the original test set — the paper's "random" comparator.
#ifndef DX_SRC_BASELINES_RANDOM_TESTING_H_
#define DX_SRC_BASELINES_RANDOM_TESTING_H_

#include <vector>

#include "src/data/dataset.h"
#include "src/tensor/tensor.h"

namespace dx {

class Rng;

std::vector<Tensor> RandomInputs(const Dataset& data, int k, Rng& rng);

}  // namespace dx

#endif  // DX_SRC_BASELINES_RANDOM_TESTING_H_

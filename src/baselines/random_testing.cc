#include "src/baselines/random_testing.h"

#include <stdexcept>

#include "src/util/rng.h"

namespace dx {

std::vector<Tensor> RandomInputs(const Dataset& data, int k, Rng& rng) {
  if (k > data.size()) {
    throw std::invalid_argument("RandomInputs: k exceeds dataset size");
  }
  const std::vector<int> picks = rng.SampleWithoutReplacement(data.size(), k);
  std::vector<Tensor> out;
  out.reserve(static_cast<size_t>(k));
  for (const int i : picks) {
    out.push_back(data.inputs[static_cast<size_t>(i)]);
  }
  return out;
}

void RandomPerturbationObjective::Accumulate(const ObjectiveContext& ctx, int k,
                                             const ForwardTrace& trace,
                                             Tensor* grad) const {
  if (k != 0) {
    return;  // One direction per iteration, whatever the model count.
  }
  (void)trace;
  for (int64_t i = 0; i < grad->numel(); ++i) {
    (*grad)[i] += static_cast<float>(ctx.rng->Uniform(-1.0, 1.0));
  }
}

}  // namespace dx

// Adversarial-testing baseline: FGSM (Goodfellow et al., ICLR'15), the
// adversarial input generator the paper compares against in Figure 9 and
// Figure 10.
#ifndef DX_SRC_BASELINES_ADVERSARIAL_H_
#define DX_SRC_BASELINES_ADVERSARIAL_H_

#include <vector>

#include "src/data/dataset.h"
#include "src/nn/model.h"

namespace dx {

class Rng;

// One FGSM step: x' = clamp(x + eps * sign(∇_x loss(F(x), label)), 0, 1).
// For classifiers `label` is the true class; for regressors the loss is MSE
// against `target` (pass the ground-truth steering angle via `target`).
Tensor Fgsm(const Model& model, const Tensor& x, int label, float target, float eps);

// Generates k adversarial inputs from random dataset samples against `model`.
std::vector<Tensor> AdversarialInputs(const Model& model, const Dataset& data, int k,
                                      float eps, Rng& rng);

}  // namespace dx

#endif  // DX_SRC_BASELINES_ADVERSARIAL_H_

// Adversarial-testing baseline: FGSM (Goodfellow et al., ICLR'15), the
// adversarial input generator the paper compares against in Figure 9 and
// Figure 10. Two forms:
//
//   - The classic standalone generator (Fgsm / AdversarialInputs), matching
//     the paper's comparison setup exactly.
//   - FgsmObjective, the same attack expressed as a Session Objective
//     plug-in: single-model loss ascent running through the engine loop
//     (constraints, schedulers, and coverage measurement included).
#ifndef DX_SRC_BASELINES_ADVERSARIAL_H_
#define DX_SRC_BASELINES_ADVERSARIAL_H_

#include <string>
#include <vector>

#include "src/core/objective.h"
#include "src/data/dataset.h"
#include "src/nn/model.h"

namespace dx {

class Rng;

// One FGSM step: x' = clamp(x + eps * sign(∇_x loss(F(x), label)), 0, 1).
// For classifiers `label` is the true class; for regressors the loss is MSE
// against `target` (pass the ground-truth steering angle via `target`).
Tensor Fgsm(const Model& model, const Tensor& x, int label, float target, float eps);

// Generates k adversarial inputs from random dataset samples against `model`.
std::vector<Tensor> AdversarialInputs(const Model& model, const Dataset& data, int k,
                                      float eps, Rng& rng);

// FGSM as an engine strategy: ascends the target model's loss against the
// seed-time consensus (classification: pushes down F_j(x)[c]; regression:
// pushes the output away from its seed value). The other models contribute
// nothing — a single-model attack, unlike the differential objective.
class FgsmObjective : public Objective {
 public:
  std::string name() const override { return "fgsm"; }
  void Accumulate(const ObjectiveContext& ctx, int k, const ForwardTrace& trace,
                  Tensor* grad) const override;
  void AccumulatePlanned(const ObjectiveContext& ctx, int k, ExecutionPlan& plan, int pos,
                         Tensor* grad) const override;
  bool NeedsTrace(const ObjectiveContext& ctx, int k) const override {
    return k == ctx.target_model;
  }
};

}  // namespace dx

#endif  // DX_SRC_BASELINES_ADVERSARIAL_H_

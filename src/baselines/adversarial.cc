#include "src/baselines/adversarial.h"

#include <cmath>
#include <stdexcept>

#include "src/nn/execution_plan.h"
#include "src/nn/loss.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace dx {

Tensor Fgsm(const Model& model, const Tensor& x, int label, float target, float eps) {
  const ForwardTrace trace = model.Forward(x);
  const bool regression = NumElements(model.output_shape()) == 1 &&
                          model.layer(model.num_layers() - 1).Kind() != "softmax";
  LossResult loss_result;
  if (regression) {
    MeanSquaredError mse;
    Tensor t(model.output_shape());
    t[0] = target;
    loss_result = mse.Compute(model, trace, t);
  } else {
    SoftmaxCrossEntropy ce;
    loss_result = ce.Compute(model, trace, OneHot(label, model.output_shape()[0]));
  }
  const Tensor grad =
      model.BackwardInput(trace, loss_result.seed_layer, std::move(loss_result.grad));
  Tensor adv = x;
  for (int64_t i = 0; i < adv.numel(); ++i) {
    adv[i] += eps * (grad[i] > 0.0f ? 1.0f : (grad[i] < 0.0f ? -1.0f : 0.0f));
  }
  adv.ClampInPlace(0.0f, 1.0f);
  return adv;
}

std::vector<Tensor> AdversarialInputs(const Model& model, const Dataset& data, int k,
                                      float eps, Rng& rng) {
  if (k > data.size()) {
    throw std::invalid_argument("AdversarialInputs: k exceeds dataset size");
  }
  const std::vector<int> picks = rng.SampleWithoutReplacement(data.size(), k);
  std::vector<Tensor> out;
  out.reserve(static_cast<size_t>(k));
  for (const int i : picks) {
    const int label = data.regression() ? 0 : data.Label(i);
    const float target = data.regression() ? data.Target(i) : 0.0f;
    out.push_back(Fgsm(model, data.inputs[static_cast<size_t>(i)], label, target, eps));
  }
  return out;
}

void FgsmObjective::Accumulate(const ObjectiveContext& ctx, int k,
                               const ForwardTrace& trace, Tensor* grad) const {
  if (k != ctx.target_model) {
    return;
  }
  const Model& model = *(*ctx.models)[static_cast<size_t>(k)];
  const int last = model.num_layers() - 1;
  Tensor seed(trace.outputs[static_cast<size_t>(last)].shape());
  if (ctx.regression) {
    // Push the output up; the engine's difference predicate fires as soon as
    // the target drifts steering_eps away from the (unmoved) other models.
    seed[0] = 1.0f;
  } else {
    // Ascend the loss on the consensus class == descend its confidence.
    seed[ctx.consensus] = -1.0f;
  }
  grad->AddInPlace(model.BackwardInput(trace, last, std::move(seed)));
}

void FgsmObjective::AccumulatePlanned(const ObjectiveContext& ctx, int k,
                                      ExecutionPlan& plan, int pos, Tensor* grad) const {
  if (k != ctx.target_model) {
    return;
  }
  const Model& model = plan.model();
  const int last = model.num_layers() - 1;
  Tensor& seed = plan.AcquireSeed(last);
  if (ctx.regression) {
    seed[0] = 1.0f;
  } else {
    seed[ctx.consensus] = -1.0f;
  }
  grad->AddInPlace(plan.BackwardSample(pos, last, seed));
}

}  // namespace dx

#include "src/core/domain.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "src/util/registry.h"

namespace dx {
namespace domains {

// Linker anchors for the built-in domain packs (see the header's
// registration-idiom note): each pack lives with its content and registers
// its specs through the public RegisterDomain; referencing one named symbol
// per pack here is what forces the archive member to link. Packs must not
// perform registry *lookups* during registration (EnsureBuiltins holds the
// once-flag).
void RegisterPaperDomains();   // src/models/zoo.cc — the five Table-1 domains.
void RegisterSpeechDomain();   // src/domains/speech_domain.cc
void RegisterTabularDomain();  // src/domains/tabular_domain.cc

}  // namespace domains

namespace {

using SpecPtr = std::shared_ptr<const DomainSpec>;

NamedRegistry<SpecPtr>& RawRegistry() {
  static NamedRegistry<SpecPtr> registry({});
  return registry;
}

// True on the thread currently running the built-in pack registrations, so
// their RegisterDomain calls don't re-enter the call_once below.
thread_local bool g_registering_builtins = false;

void EnsureBuiltins() {
  static std::once_flag once;
  std::call_once(once, [] {
    g_registering_builtins = true;
    domains::RegisterPaperDomains();
    domains::RegisterSpeechDomain();
    domains::RegisterTabularDomain();
    g_registering_builtins = false;
  });
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    out += (out.empty() ? "" : " | ") + name;
  }
  return out;
}

const DomainConstraintSpec* FindConstraintSpec(const DomainSpec& spec,
                                               const std::string& name) {
  const std::string& wanted =
      (name.empty() || name == "default") ? spec.default_constraint : name;
  for (const DomainConstraintSpec& c : spec.constraints) {
    if (c.name == wanted) {
      return &c;
    }
  }
  return nullptr;
}

[[noreturn]] void ThrowUnknownConstraint(const DomainSpec& spec, const std::string& name) {
  std::vector<std::string> valid = {"default"};
  for (const DomainConstraintSpec& c : spec.constraints) {
    valid.push_back(c.name);
  }
  throw std::invalid_argument("unknown constraint '" + name + "' for domain '" +
                              spec.key + "'; valid: " + JoinNames(valid));
}

}  // namespace

void RegisterDomain(DomainSpec spec) {
  // Built-ins register first, so an out-of-tree spec registered under a
  // built-in key before any lookup replaces the built-in — not the reverse.
  if (!g_registering_builtins) {
    EnsureBuiltins();
  }
  if (spec.key.empty()) {
    throw std::invalid_argument("DomainSpec: empty key");
  }
  if (!spec.make_dataset) {
    throw std::invalid_argument("DomainSpec '" + spec.key + "': no dataset builder");
  }
  if (spec.models.size() < 2) {
    throw std::invalid_argument("DomainSpec '" + spec.key +
                                "': differential testing needs >= 2 models");
  }
  for (size_t i = 0; i < spec.models.size(); ++i) {
    const DomainModelSpec& m = spec.models[i];
    if (m.name.empty() || !m.build) {
      throw std::invalid_argument("DomainSpec '" + spec.key +
                                  "': every model needs a name and a builder");
    }
    for (size_t j = 0; j < i; ++j) {
      if (spec.models[j].name == m.name) {
        throw std::invalid_argument("DomainSpec '" + spec.key + "': duplicate model name '" +
                                    m.name + "'");
      }
    }
  }
  // Model names resolve across domains (FindModel, ModelZoo::Build/Trained
  // and its disk-cache keys), so they must be globally unique. Skip the
  // same-key spec: re-registering a domain replaces its models wholesale.
  for (const std::string& other_key : RawRegistry().Names()) {
    if (other_key == spec.key) {
      continue;
    }
    const SpecPtr other = RawRegistry().Get(other_key, "domain");
    for (const DomainModelSpec& theirs : other->models) {
      for (const DomainModelSpec& ours : spec.models) {
        if (ours.name == theirs.name) {
          throw std::invalid_argument("DomainSpec '" + spec.key + "': model name '" +
                                      ours.name + "' is already registered by domain '" +
                                      other_key + "'");
        }
      }
    }
  }
  if (FindConstraintSpec(spec, "default") == nullptr) {
    throw std::invalid_argument("DomainSpec '" + spec.key + "': default constraint '" +
                                spec.default_constraint +
                                "' is not among its constraint variants");
  }
  if (spec.display_name.empty()) {
    spec.display_name = spec.key;
  }
  // Retired specs are kept alive forever: a reference handed out by
  // GetDomain must not dangle when a domain is re-registered (tests and
  // long-lived sessions hold them across registry churn).
  static std::vector<SpecPtr>* retired = new std::vector<SpecPtr>();
  static std::mutex retired_mutex;
  auto ptr = std::make_shared<const DomainSpec>(std::move(spec));
  {
    std::lock_guard<std::mutex> lock(retired_mutex);
    retired->push_back(ptr);
  }
  // Read the key before the argument list can move `ptr` away (argument
  // evaluation order is unspecified).
  const std::string key = ptr->key;
  RawRegistry().Register(key, std::move(ptr));
}

bool DomainRegistered(const std::string& key) {
  EnsureBuiltins();
  return RawRegistry().Contains(key);
}

std::shared_ptr<const DomainSpec> FindDomain(const std::string& key) {
  EnsureBuiltins();
  if (!RawRegistry().Contains(key)) {
    return nullptr;
  }
  return RawRegistry().Get(key, "domain");
}

const DomainSpec& GetDomain(const std::string& key) {
  EnsureBuiltins();
  if (!RawRegistry().Contains(key)) {
    throw std::invalid_argument("unknown domain '" + key +
                                "'; registered: " + JoinNames(RawRegistry().Names()));
  }
  return *RawRegistry().Get(key, "domain");
}

std::vector<std::string> DomainKeys() {
  EnsureBuiltins();
  return RawRegistry().Names();
}

std::vector<std::string> DomainConstraintNames(const DomainSpec& spec) {
  std::vector<std::string> names;
  names.reserve(spec.constraints.size());
  for (const DomainConstraintSpec& c : spec.constraints) {
    names.push_back(c.name);
  }
  return names;
}

std::unique_ptr<Constraint> MakeDomainConstraint(const DomainSpec& spec,
                                                 const std::string& name) {
  const DomainConstraintSpec* c = FindConstraintSpec(spec, name);
  if (c == nullptr) {
    ThrowUnknownConstraint(spec, name);
  }
  return c->make();
}

const std::string& ResolveDomainConstraint(const DomainSpec& spec,
                                           const std::string& name) {
  const DomainConstraintSpec* c = FindConstraintSpec(spec, name);
  if (c == nullptr) {
    ThrowUnknownConstraint(spec, name);
  }
  return c->name;
}

DomainTraining EffectiveTraining(const DomainSpec& spec) {
  DomainTraining t = spec.training;
  const char* env = std::getenv("DEEPXPLORE_FAST");
  if (env != nullptr && env[0] == '1') {
    t.train_samples /= std::max(1, t.fast_train_divisor);
    t.test_samples /= std::max(1, t.fast_test_divisor);
  }
  return t;
}

}  // namespace dx

#include "src/core/session.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "src/core/executor.h"
#include "src/corpus/corpus.h"
#include "src/corpus/maintenance.h"
#include "src/tensor/ops.h"
#include "src/util/serialize.h"
#include "src/util/timer.h"

namespace dx {

namespace {

// SplitMix64 finalizer over (base seed, task index): decorrelated per-task
// RNG streams that depend only on the global task counter, never on which
// worker runs the task.
uint64_t TaskSeed(uint64_t base, uint64_t task) {
  uint64_t z = base + 0x9e3779b97f4a7c15ULL * (task + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Session::Session(std::vector<Model*> models, const Constraint* constraint,
                 SessionConfig config)
    : models_(std::move(models)),
      constraint_(constraint),
      config_(std::move(config)),
      regression_(false),
      rng_(config_.engine.rng_seed) {
  if (models_.size() < 2) {
    throw std::invalid_argument("Session: differential testing needs >= 2 models");
  }
  if (constraint_ == nullptr) {
    throw std::invalid_argument("Session: constraint must not be null");
  }
  const Shape& input_shape = models_[0]->input_shape();
  const Shape& output_shape = models_[0]->output_shape();
  for (Model* m : models_) {
    if (m->input_shape() != input_shape) {
      throw std::invalid_argument("Session: models disagree on input shape");
    }
    if (m->output_shape() != output_shape) {
      throw std::invalid_argument("Session: models disagree on output shape");
    }
  }
  regression_ = NumElements(output_shape) == 1 &&
                models_[0]->layer(models_[0]->num_layers() - 1).Kind() != "softmax";
  metrics_.reserve(models_.size());
  for (Model* m : models_) {
    metrics_.push_back(MakeCoverageMetric(config_.metric, *m, config_.engine.coverage));
  }
  if (config_.sync_interval <= 0 && config_.workers != 1) {
    throw std::invalid_argument(
        "Session: legacy serial mode (sync_interval = 0) requires workers == 1");
  }
  if (config_.batch_size < 1) {
    throw std::invalid_argument("Session: batch_size must be >= 1");
  }
  objective_ = MakeObjective(config_.objective);
  scheduler_ = MakeSeedScheduler(config_.scheduler);
  executor_ = std::make_unique<Executor>(models_, constraint_, regression_,
                                         &config_.engine);
  executor_->EnableProfiling(config_.profile_phases);
}

Session::~Session() = default;

void Session::SetObjective(std::unique_ptr<Objective> objective) {
  if (objective == nullptr) {
    throw std::invalid_argument("Session: objective must not be null");
  }
  objective_ = std::move(objective);
}

void Session::SetScheduler(std::unique_ptr<SeedScheduler> scheduler) {
  if (scheduler == nullptr) {
    throw std::invalid_argument("Session: scheduler must not be null");
  }
  scheduler_ = std::move(scheduler);
}

std::vector<int> Session::PredictLabels(const Tensor& x) const {
  std::vector<int> labels;
  labels.reserve(models_.size());
  for (const Model* m : models_) {
    labels.push_back(m->PredictClass(x));
  }
  return labels;
}

std::vector<float> Session::PredictScalars(const Tensor& x) const {
  std::vector<float> outputs;
  outputs.reserve(models_.size());
  for (const Model* m : models_) {
    outputs.push_back(m->PredictScalar(x));
  }
  return outputs;
}

bool Session::IsDifference(const Tensor& x) const {
  if (regression_) {
    const std::vector<float> outs = PredictScalars(x);
    const auto [lo, hi] = std::minmax_element(outs.begin(), outs.end());
    return *hi - *lo > config_.engine.steering_eps;
  }
  const std::vector<int> labels = PredictLabels(x);
  return std::any_of(labels.begin(), labels.end(),
                     [&](int l) { return l != labels[0]; });
}

Tensor Session::ObjectiveGradient(
    const Tensor& x, int target_model, int consensus, Rng& rng,
    const std::vector<std::unique_ptr<CoverageMetric>>& metrics) const {
  Tensor grad(x.shape());
  ObjectiveContext ctx;
  ctx.models = &models_;
  ctx.metrics = &metrics;
  ctx.target_model = target_model;
  ctx.consensus = consensus;
  ctx.regression = regression_;
  ctx.lambda1 = config_.engine.lambda1;
  ctx.lambda2 = config_.engine.lambda2;
  ctx.rng = &rng;
  const ForwardTrace no_trace;
  for (int k = 0; k < num_models(); ++k) {
    if (objective_->NeedsTrace(ctx, k)) {
      const ForwardTrace trace = models_[static_cast<size_t>(k)]->Forward(x);
      objective_->Accumulate(ctx, k, trace, &grad);
    } else {
      objective_->Accumulate(ctx, k, no_trace, &grad);
    }
  }
  return grad;
}

Tensor Session::ObjectiveGradient(const Tensor& x, int target_model, int consensus) {
  return ObjectiveGradient(x, target_model, consensus, rng_, metrics_);
}

std::optional<GeneratedTest> Session::GenerateFromSeed(
    const Tensor& seed, int seed_index, Rng& rng,
    std::vector<std::unique_ptr<CoverageMetric>>& metrics) {
  // A single-seed chunk of the batched executor: same values, same RNG
  // stream, but one forward per (model, iteration) instead of two or three.
  Executor::SeedTask task;
  task.seed = &seed;
  task.seed_index = seed_index;
  task.rng = &rng;
  task.metrics = &metrics;
  return executor_->Run({task}, *objective_)[0];
}

std::optional<GeneratedTest> Session::GenerateFromSeed(const Tensor& seed,
                                                       int seed_index) {
  return GenerateFromSeed(seed, seed_index, rng_, metrics_);
}

std::vector<std::unique_ptr<CoverageMetric>> Session::CloneMetrics() const {
  std::vector<std::unique_ptr<CoverageMetric>> clones;
  clones.reserve(metrics_.size());
  for (const auto& metric : metrics_) {
    clones.push_back(metric->Clone());
  }
  return clones;
}

int Session::EffectiveWorkers() const {
  if (config_.workers > 0) {
    return config_.workers;
  }
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return std::max(1, hw);
}

void Session::ProfileSeeds(const std::vector<Tensor>& seeds) {
  const size_t width = static_cast<size_t>(std::max(1, config_.batch_size));
  for (int k = 0; k < num_models(); ++k) {
    CoverageMetric& metric = *metrics_[static_cast<size_t>(k)];
    if (!metric.WantsSeedProfile()) {
      continue;
    }
    const Model& model = *models_[static_cast<size_t>(k)];
    for (size_t begin = 0; begin < seeds.size(); begin += width) {
      const size_t end = std::min(seeds.size(), begin + width);
      std::vector<const Tensor*> chunk;
      chunk.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        chunk.push_back(&seeds[i]);
      }
      const BatchTrace trace = model.ForwardBatch(StackSamples(chunk));
      for (int b = 0; b < trace.batch; ++b) {
        metric.ProfileSeed(model, trace.Sample(b));
      }
    }
  }
  profiled_ = true;
}

// Compares one regenerated test against the corpus entry at `index`,
// recording a description of the first divergence.
struct Session::ReplayCursor {
  const Corpus* corpus = nullptr;
  bool ok = true;
  std::string mismatch;

  bool Check(const GeneratedTest& test, size_t index) {
    const auto fail = [&](const std::string& what) {
      ok = false;
      mismatch = "entry " + std::to_string(index) + ": " + what;
      return false;
    };
    const std::vector<GeneratedTest>& entries = corpus->entries();
    if (index >= entries.size()) {
      return fail("replay produced more tests than the corpus records (" +
                  std::to_string(entries.size()) + ")");
    }
    const GeneratedTest& want = entries[index];
    if (test.seed_index != want.seed_index) {
      return fail("seed_index " + std::to_string(test.seed_index) + " != recorded " +
                  std::to_string(want.seed_index));
    }
    if (test.task_ordinal != want.task_ordinal) {
      return fail("task_ordinal " + std::to_string(test.task_ordinal) + " != recorded " +
                  std::to_string(want.task_ordinal));
    }
    if (test.iterations != want.iterations) {
      return fail("iterations " + std::to_string(test.iterations) + " != recorded " +
                  std::to_string(want.iterations));
    }
    if (test.deviating_model != want.deviating_model) {
      return fail("deviating_model " + std::to_string(test.deviating_model) +
                  " != recorded " + std::to_string(want.deviating_model));
    }
    if (test.labels != want.labels) {
      return fail("per-model labels diverge from the recorded predictions");
    }
    if (test.outputs != want.outputs) {
      return fail("per-model outputs diverge from the recorded predictions");
    }
    if (test.input.shape() != want.input.shape() ||
        test.input.values() != want.input.values()) {
      return fail("generated input is not bit-identical to the recorded one");
    }
    return true;
  }
};

RunStats Session::Run(const std::vector<Tensor>& seeds, const RunOptions& options) {
  return RunImpl(seeds, options, nullptr, nullptr);
}

RunStats Session::Run(const std::vector<Tensor>& seeds, const RunOptions& options,
                      Corpus* corpus) {
  return RunImpl(seeds, options, corpus, nullptr);
}

ReplayResult Session::Replay(const Corpus& corpus) {
  if (!corpus.initialized() || !corpus.has_checkpoint()) {
    throw std::invalid_argument("Session::Replay: corpus has no recorded campaign");
  }
  if (corpus.meta().FindMetadata("transform") != nullptr) {
    // A maintenance artifact (distilled/deduped/minimized) has no journal to
    // re-execute; it verifies by re-predicting every retained entry and
    // re-deriving the checkpointed coverage state from scratch.
    return VerifyDerivedCorpus(*this, corpus);
  }
  const CorpusMeta& meta = corpus.meta();
  RunOptions options;
  options.max_tests = meta.max_tests;
  options.max_seed_passes = meta.max_seed_passes;
  options.coverage_goal = meta.coverage_goal;
  // Stop exactly where the recorded campaign stopped, complete or not.
  options.max_sync_batches = static_cast<int64_t>(corpus.journal().size());
  ValidateCorpus(corpus, meta.seeds, options);
  ResetRunState();

  ReplayResult result;
  ReplayCursor cursor;
  cursor.corpus = &corpus;
  result.stats = RunImpl(meta.seeds, options, nullptr, &cursor);
  result.ok = cursor.ok;
  result.mismatch = std::move(cursor.mismatch);
  if (!result.ok) {
    return result;
  }
  const auto fail = [&](const std::string& what) {
    result.ok = false;
    result.mismatch = what;
  };
  const CorpusCheckpoint& cp = corpus.checkpoint();
  if (result.stats.tests.size() != cp.num_tests) {
    fail("replay found " + std::to_string(result.stats.tests.size()) +
         " difference-inducing inputs, corpus records " + std::to_string(cp.num_tests));
  } else if (result.stats.seeds_tried != cp.seeds_tried ||
             result.stats.seeds_skipped != cp.seeds_skipped ||
             result.stats.total_iterations != cp.total_iterations) {
    fail("replay counters (tried/skipped/iterations) diverge from the checkpoint");
  } else if (result.stats.forward_passes != cp.forward_passes) {
    fail("replay forward passes " + std::to_string(result.stats.forward_passes) +
         " != recorded " + std::to_string(cp.forward_passes));
  } else if (cp.metric_blobs.size() != metrics_.size()) {
    fail("checkpoint holds " + std::to_string(cp.metric_blobs.size()) +
         " coverage snapshots for " + std::to_string(metrics_.size()) + " models");
  } else {
    // Coverage state must match bit for bit, not just as a percentage.
    for (size_t k = 0; k < metrics_.size() && result.ok; ++k) {
      std::ostringstream blob;
      BinaryWriter writer(blob);
      metrics_[k]->Serialize(writer);
      if (blob.str() != cp.metric_blobs[k]) {
        fail("model " + models_[k]->name() +
             ": replayed coverage state differs from the checkpoint snapshot");
      }
    }
    // Stored inputs must still elicit the recorded predictions.
    for (size_t i = 0; i < corpus.entries().size() && result.ok; ++i) {
      const GeneratedTest& entry = corpus.entries()[i];
      if (regression_ ? PredictScalars(entry.input) != entry.outputs
                      : PredictLabels(entry.input) != entry.labels) {
        fail("entry " + std::to_string(i) +
             ": stored input no longer reproduces the recorded predictions");
      }
    }
  }
  return result;
}

void Session::ValidateCorpus(const Corpus& corpus, const std::vector<Tensor>& seeds,
                             const RunOptions& options) const {
  const CorpusMeta& meta = corpus.meta();
  const auto fail = [&](const std::string& what) {
    throw std::invalid_argument("Session: corpus " + corpus.dir() +
                                " does not match this session: " + what);
  };
  if (const std::string* transform = meta.FindMetadata("transform")) {
    fail("corpus is a derived maintenance artifact (transform=" + *transform +
         ") — derived corpora replay for verification but never resume");
  }
  if (meta.metric != config_.metric || meta.objective != config_.objective ||
      meta.scheduler != config_.scheduler) {
    fail("metric/objective/scheduler wiring differs");
  }
  if (meta.constraint != constraint_->name()) {
    fail("constraint is " + constraint_->name() + ", corpus recorded " + meta.constraint);
  }
  const EngineConfig& a = meta.engine;
  const EngineConfig& b = config_.engine;
  if (a.lambda1 != b.lambda1 || a.lambda2 != b.lambda2 || a.step != b.step ||
      a.max_iterations_per_seed != b.max_iterations_per_seed ||
      a.steering_eps != b.steering_eps || a.normalize_gradient != b.normalize_gradient ||
      a.forced_target_model != b.forced_target_model || a.rng_seed != b.rng_seed) {
    fail("engine hyperparameters differ");
  }
  if (a.coverage.threshold != b.coverage.threshold ||
      a.coverage.scale_per_layer != b.coverage.scale_per_layer ||
      a.coverage.exclude_dense != b.coverage.exclude_dense ||
      a.coverage.exclude_output_layer != b.coverage.exclude_output_layer ||
      a.coverage.kmc_sections != b.coverage.kmc_sections ||
      a.coverage.top_k != b.coverage.top_k) {
    fail("coverage options differ");
  }
  if (meta.sync_interval != config_.sync_interval ||
      meta.profile_from_seeds != config_.profile_from_seeds) {
    fail("sync_interval/profile_from_seeds differ");
  }
  if (meta.max_tests != options.max_tests ||
      meta.max_seed_passes != options.max_seed_passes ||
      meta.coverage_goal != options.coverage_goal) {
    fail("campaign bounds (max_tests/max_seed_passes/coverage_goal) differ");
  }
  if (meta.model_names.size() != models_.size()) {
    fail("model count differs");
  }
  for (size_t k = 0; k < models_.size(); ++k) {
    if (meta.model_names[k] != models_[k]->name()) {
      fail("model " + std::to_string(k) + " is " + models_[k]->name() +
           ", corpus recorded " + meta.model_names[k]);
    }
  }
  if (meta.seeds.size() != seeds.size()) {
    fail("seed pool size differs");
  }
  for (size_t i = 0; i < seeds.size(); ++i) {
    if (meta.seeds[i].shape() != seeds[i].shape() ||
        meta.seeds[i].values() != seeds[i].values()) {
      fail("seed " + std::to_string(i) + " is not bit-identical to the recorded pool");
    }
  }
}

void Session::RestoreFromCheckpoint(const Corpus& corpus, const std::vector<Tensor>& seeds,
                                    const RunOptions& options, RunStats* stats) {
  const CorpusCheckpoint& cp = corpus.checkpoint();
  if (cp.metric_blobs.size() != metrics_.size()) {
    throw std::runtime_error("Session: checkpoint has " +
                             std::to_string(cp.metric_blobs.size()) +
                             " coverage snapshots for " + std::to_string(metrics_.size()) +
                             " models");
  }
  for (size_t k = 0; k < metrics_.size(); ++k) {
    std::istringstream blob(cp.metric_blobs[k]);
    BinaryReader reader(blob);
    metrics_[k]->Deserialize(reader);
  }
  // Profiling state (k-multisection ranges) is part of the snapshot; a
  // resumed run must not re-profile, or forward_passes would double-count.
  profiled_ = true;

  scheduler_->Reset(static_cast<int>(seeds.size()), options.max_seed_passes);
  if (!cp.scheduler_blob.empty() && scheduler_->SupportsSnapshot()) {
    // The checkpoint carries the scheduler's serialized decision state:
    // restore it directly — O(1) in history length, bit-equivalent to the
    // journal replay below (pinned by the corpus tests).
    std::istringstream blob(cp.scheduler_blob);
    BinaryReader reader(blob);
    scheduler_->LoadState(reader);
    stats->tests = corpus.entries();
    stats->seeds_tried = cp.seeds_tried;
    stats->seeds_skipped = cp.seeds_skipped;
    stats->total_iterations = cp.total_iterations;
    return;
  }

  // The journal replays the exact Next()/Report() stream the scheduler saw,
  // reconstructing its state without requiring schedulers to serialize.
  for (const auto& batch : corpus.journal()) {
    for (const auto& record : batch) {
      const int index = scheduler_->Next();
      if (index != record.seed_index) {
        throw std::runtime_error(
            "Session: corpus journal does not replay through scheduler '" +
            scheduler_->name() + "' (got seed " + std::to_string(index) + ", recorded " +
            std::to_string(record.seed_index) + ") — corpus/config mismatch?");
      }
    }
    for (const auto& record : batch) {
      scheduler_->Report(record.seed_index, record.found, record.gain);
    }
  }

  stats->tests = corpus.entries();
  stats->seeds_tried = cp.seeds_tried;
  stats->seeds_skipped = cp.seeds_skipped;
  stats->total_iterations = cp.total_iterations;
}

void Session::ResetRunState() {
  for (size_t k = 0; k < models_.size(); ++k) {
    metrics_[k] = MakeCoverageMetric(config_.metric, *models_[k], config_.engine.coverage);
  }
  profiled_ = false;
}

RunStats Session::RunImpl(const std::vector<Tensor>& seeds, const RunOptions& options,
                          Corpus* corpus, ReplayCursor* replay) {
  if (corpus != nullptr && config_.sync_interval <= 0) {
    throw std::invalid_argument(
        "Session: corpus recording requires sync batches (sync_interval > 0)");
  }
  if (config_.sync_interval > 0) {
    // The batched path: all run state lives in a SessionRun, and this loop
    // (like any other SessionRun driver) just applies the per-leg bounds.
    SessionRun run(this, &seeds, options, corpus, replay);
    int64_t leg_batches = 0;
    while (!run.done() && run.active_seconds() <= options.max_seconds &&
           leg_batches < options.max_sync_batches && run.Step()) {
      ++leg_batches;
    }
    return run.Snapshot();
  }

  RunStats stats;
  Timer timer;
  int64_t forward_base = 0;
  for (const Model* m : models_) {
    forward_base += m->forward_passes();
  }

  if (config_.profile_from_seeds && !profiled_) {
    ProfileSeeds(seeds);
  }
  scheduler_->Reset(static_cast<int>(seeds.size()), options.max_seed_passes);

  {
    // Legacy serial mode: the session RNG is threaded through the whole seed
    // stream and the global trackers are updated in place — the exact
    // pre-Session DeepXplore behavior, preserved for the facade.
    for (;;) {
      if (static_cast<int>(stats.tests.size()) >= options.max_tests ||
          timer.ElapsedSeconds() > options.max_seconds) {
        break;
      }
      const int index = scheduler_->Next();
      if (index < 0) {
        break;
      }
      ++stats.seeds_tried;
      const float before = MeanCoverage();
      auto test = GenerateFromSeed(seeds[static_cast<size_t>(index)], index);
      if (!test.has_value()) {
        ++stats.seeds_skipped;
        scheduler_->Report(index, false, 0.0f);
        continue;
      }
      scheduler_->Report(index, true, MeanCoverage() - before);
      stats.total_iterations += test->iterations;
      stats.tests.push_back(std::move(*test));
      if (options.coverage_goal <= 1.0f) {
        bool all_reached = true;
        for (const auto& metric : metrics_) {
          all_reached = all_reached && metric->Coverage() >= options.coverage_goal;
        }
        if (all_reached) {
          break;
        }
      }
    }
    stats.seconds = timer.ElapsedSeconds();
    stats.mean_coverage = MeanCoverage();
    for (const Model* m : models_) {
      stats.forward_passes += m->forward_passes();
    }
    stats.forward_passes -= forward_base;
    return stats;
  }

}

std::unique_ptr<SessionRun> Session::BeginRun(const std::vector<Tensor>& seeds,
                                              const RunOptions& options,
                                              Corpus* corpus) {
  return std::unique_ptr<SessionRun>(
      new SessionRun(this, &seeds, options, corpus, nullptr));
}

SessionRun::SessionRun(Session* session, const std::vector<Tensor>* seeds,
                       RunOptions options, Corpus* corpus,
                       Session::ReplayCursor* replay)
    : session_(session),
      seeds_(seeds),
      options_(std::move(options)),
      corpus_(corpus),
      replay_(replay) {
  Session& s = *session_;
  if (s.config_.sync_interval <= 0) {
    throw std::invalid_argument(
        "SessionRun: stepping requires sync batches (sync_interval > 0)");
  }
  Timer timer;
  for (const Model* m : s.models_) {
    forward_base_ += m->forward_passes();
  }

  bool resumed = false;
  if (corpus_ != nullptr) {
    if (corpus_->initialized()) {
      s.ValidateCorpus(*corpus_, *seeds_, options_);
    } else {
      CorpusMeta meta;
      meta.metric = s.config_.metric;
      meta.objective = s.config_.objective;
      meta.scheduler = s.config_.scheduler;
      meta.constraint = s.constraint_->name();
      meta.engine = s.config_.engine;
      meta.sync_interval = s.config_.sync_interval;
      meta.profile_from_seeds = s.config_.profile_from_seeds;
      meta.max_tests = options_.max_tests;
      meta.max_seed_passes = options_.max_seed_passes;
      meta.coverage_goal = options_.coverage_goal;
      for (const Model* m : s.models_) {
        meta.model_names.push_back(m->name());
      }
      meta.seeds = *seeds_;
      corpus_->Initialize(std::move(meta));
    }
    if (corpus_->has_checkpoint()) {
      s.RestoreFromCheckpoint(*corpus_, *seeds_, options_, &stats_);
      const CorpusCheckpoint& cp = corpus_->checkpoint();
      task_counter_ = cp.task_counter;
      forward_offset_ = cp.forward_passes;
      batches_ = corpus_->journal().size();
      resumed = true;
      if (cp.complete) {
        // Nothing left to run: the recorded campaign is reported as-is.
        done_ = true;
      }
    }
  }

  if (!resumed) {
    if (s.config_.profile_from_seeds && !s.profiled_) {
      s.ProfileSeeds(*seeds_);
    }
    s.scheduler_->Reset(static_cast<int>(seeds_->size()), options_.max_seed_passes);
  }
  active_seconds_ += timer.ElapsedSeconds();
}

SessionRun::~SessionRun() {
  if (corpus_ != nullptr) {
    try {
      // Make the leg's final checkpoint durable as a full snapshot so a
      // clean shutdown (drain, leg bound, cancel) never loses batches to
      // the segmented chain's delta window.
      corpus_->Sync();
    } catch (...) {
      // Destructors must not throw; the chain still holds its previous
      // snapshot, so a resume just re-executes a few more batches.
    }
  }
}

bool SessionRun::Step() {
  if (done_) {
    return false;
  }
  Session& s = *session_;
  const std::vector<Tensor>& seeds = *seeds_;
  Timer timer;

  ThreadPool* pool = s.external_pool_;
  int workers;
  if (pool != nullptr) {
    // Shared-pool mode: the pool's size, not config().workers, is the
    // parallelism (ParallelFor adds the calling thread as one worker).
    workers = pool->num_threads() + 1;
  } else {
    workers = s.EffectiveWorkers();
    if (workers > 1 &&
        (s.pool_ == nullptr || s.pool_->num_threads() != workers - 1)) {
      // ParallelFor runs on the pool's threads plus the calling thread, so a
      // session with W workers owns W-1 pool threads.
      s.pool_ = std::make_unique<ThreadPool>(workers - 1);
    }
    pool = s.pool_.get();
  }
  const int batch_size = std::max(1, s.config_.sync_interval);

  std::vector<int> batch;
  batch.reserve(static_cast<size_t>(batch_size));
  while (static_cast<int>(batch.size()) < batch_size) {
    const int index = s.scheduler_->Next();
    if (index < 0) {
      break;
    }
    batch.push_back(index);
    // Sync at pass boundaries so the scheduler has every outcome of the
    // finished pass reported before it orders the next one. The cut
    // depends only on counts, so worker-count invariance is preserved.
    if ((task_counter_ + batch.size()) % seeds.size() == 0) {
      break;
    }
  }
  if (batch.empty()) {
    // Scheduler ran dry: the campaign is complete — re-stamp the last
    // checkpoint so a later resume is a no-op instead of spinning the
    // scheduler again.
    done_ = true;
    if (corpus_ != nullptr && corpus_->has_checkpoint() &&
        !corpus_->checkpoint().complete) {
      CorpusCheckpoint cp = corpus_->checkpoint();
      cp.complete = true;
      corpus_->WriteCheckpoint(cp);
    }
    active_seconds_ += timer.ElapsedSeconds();
    // Final notification: every run's last on_batch reports done == true,
    // whichever way the campaign terminated.
    if (options_.on_batch) {
      options_.on_batch(Progress());
    }
    return false;
  }

  struct TaskResult {
    std::optional<GeneratedTest> test;
    std::vector<std::unique_ptr<CoverageMetric>> metrics;
  };

  // Every task keeps its own RNG stream and tracker clones (exactly as in
  // the per-seed path), then contiguous runs of `batch_size` tasks ascend
  // in lockstep on the executor. Chunk boundaries depend only on
  // batch_size — never on the worker count — and chunk composition cannot
  // change any task's values, so results stay invariant to both knobs.
  std::vector<TaskResult> results(batch.size());
  std::vector<Rng> task_rngs;
  task_rngs.reserve(batch.size());
  for (size_t t = 0; t < batch.size(); ++t) {
    task_rngs.emplace_back(TaskSeed(s.config_.engine.rng_seed,
                                    task_counter_ + static_cast<uint64_t>(t)));
    results[t].metrics = s.CloneMetrics();
  }
  const size_t chunk_width = static_cast<size_t>(std::max(1, s.config_.batch_size));
  const int64_t num_chunks =
      static_cast<int64_t>((batch.size() + chunk_width - 1) / chunk_width);
  const auto run_chunk = [&](int64_t c) {
    const size_t begin = static_cast<size_t>(c) * chunk_width;
    const size_t end = std::min(batch.size(), begin + chunk_width);
    std::vector<Executor::SeedTask> tasks;
    tasks.reserve(end - begin);
    for (size_t t = begin; t < end; ++t) {
      Executor::SeedTask task;
      task.seed = &seeds[static_cast<size_t>(batch[t])];
      task.seed_index = batch[t];
      task.ordinal = task_counter_ + static_cast<uint64_t>(t);
      task.rng = &task_rngs[t];
      task.metrics = &results[t].metrics;
      tasks.push_back(task);
    }
    auto outcomes = s.executor_->Run(tasks, *s.objective_);
    for (size_t t = begin; t < end; ++t) {
      results[t].test = std::move(outcomes[t - begin]);
    }
  };
  if (workers > 1 && num_chunks > 1) {
    pool->ParallelFor(num_chunks, run_chunk);
  } else {
    for (int64_t c = 0; c < num_chunks; ++c) {
      run_chunk(c);
    }
  }
  task_counter_ += batch.size();

  // Merge + report in schedule order: deterministic for any worker count.
  // The journal mirrors the Report stream so a resumed (or replayed)
  // campaign can reconstruct the scheduler exactly.
  std::vector<CorpusCheckpoint::JournalRecord> journal_batch;
  journal_batch.reserve(batch.size());
  const size_t tests_before = stats_.tests.size();
  for (size_t t = 0; t < batch.size() && !done_; ++t) {
    TaskResult& result = results[t];
    ++stats_.seeds_tried;
    if (!result.test.has_value()) {
      ++stats_.seeds_skipped;
      s.scheduler_->Report(batch[t], false, 0.0f);
      journal_batch.push_back({batch[t], false, 0.0f});
      continue;
    }
    if (replay_ != nullptr && !replay_->Check(*result.test, stats_.tests.size())) {
      --stats_.seeds_tried;  // Divergence: abort before counting this task.
      done_ = true;
      break;
    }
    const float before = s.MeanCoverage();
    for (int k = 0; k < s.num_models(); ++k) {
      s.metrics_[static_cast<size_t>(k)]->Merge(
          *result.metrics[static_cast<size_t>(k)]);
    }
    const float gain = s.MeanCoverage() - before;
    s.scheduler_->Report(batch[t], true, gain);
    journal_batch.push_back({batch[t], true, gain});
    stats_.total_iterations += result.test->iterations;
    stats_.tests.push_back(std::move(*result.test));
    if (static_cast<int>(stats_.tests.size()) >= options_.max_tests) {
      done_ = true;
      break;
    }
    if (options_.coverage_goal <= 1.0f) {
      bool all_reached = true;
      for (const auto& metric : s.metrics_) {
        all_reached = all_reached && metric->Coverage() >= options_.coverage_goal;
      }
      if (all_reached) {
        done_ = true;
      }
    }
  }
  ++batches_;

  if (corpus_ != nullptr) {
    for (size_t i = tests_before; i < stats_.tests.size(); ++i) {
      corpus_->AppendEntry(stats_.tests[i]);
    }
    corpus_->AppendJournalBatch(journal_batch);
    CorpusCheckpoint cp;
    cp.complete = done_;
    cp.task_counter = task_counter_;
    cp.seeds_tried = stats_.seeds_tried;
    cp.seeds_skipped = stats_.seeds_skipped;
    cp.total_iterations = stats_.total_iterations;
    cp.forward_passes = CumulativeForwardPasses();
    cp.num_tests = stats_.tests.size();
    cp.num_batches = corpus_->journal().size();
    cp.mean_coverage = s.MeanCoverage();
    for (const auto& metric : s.metrics_) {
      std::ostringstream blob;
      BinaryWriter writer(blob);
      metric->Serialize(writer);
      cp.metric_blobs.push_back(blob.str());
    }
    if (s.scheduler_->SupportsSnapshot()) {
      std::ostringstream blob;
      BinaryWriter writer(blob);
      s.scheduler_->SaveState(writer);
      cp.scheduler_blob = blob.str();
    }
    corpus_->WriteCheckpoint(cp);
  }

  active_seconds_ += timer.ElapsedSeconds();
  if (options_.on_batch) {
    options_.on_batch(Progress());
  }
  return true;
}

int64_t SessionRun::CumulativeForwardPasses() const {
  int64_t forwards = forward_offset_ - forward_base_;
  for (const Model* m : session_->models_) {
    forwards += m->forward_passes();
  }
  return forwards;
}

RunStats SessionRun::Snapshot() const {
  RunStats stats = stats_;
  stats.seconds = active_seconds_;
  stats.mean_coverage = session_->MeanCoverage();
  stats.forward_passes = CumulativeForwardPasses();
  return stats;
}

RunProgress SessionRun::Progress() const {
  RunProgress progress;
  progress.batches = batches_;
  progress.seeds_tried = stats_.seeds_tried;
  progress.seeds_skipped = stats_.seeds_skipped;
  progress.tests_found = static_cast<int>(stats_.tests.size());
  progress.total_iterations = stats_.total_iterations;
  progress.forward_passes = CumulativeForwardPasses();
  progress.mean_coverage = session_->MeanCoverage();
  progress.seconds = active_seconds_;
  progress.done = done_;
  return progress;
}

ExecutorProfile Session::ExecutorPhases() const { return executor_->profile(); }

float Session::MeanCoverage() const {
  double sum = 0.0;
  for (const auto& metric : metrics_) {
    sum += metric->Coverage();
  }
  return static_cast<float>(sum / static_cast<double>(metrics_.size()));
}

}  // namespace dx

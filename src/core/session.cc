#include "src/core/session.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "src/core/executor.h"
#include "src/tensor/ops.h"
#include "src/util/timer.h"

namespace dx {

namespace {

// SplitMix64 finalizer over (base seed, task index): decorrelated per-task
// RNG streams that depend only on the global task counter, never on which
// worker runs the task.
uint64_t TaskSeed(uint64_t base, uint64_t task) {
  uint64_t z = base + 0x9e3779b97f4a7c15ULL * (task + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Session::Session(std::vector<Model*> models, const Constraint* constraint,
                 SessionConfig config)
    : models_(std::move(models)),
      constraint_(constraint),
      config_(std::move(config)),
      regression_(false),
      rng_(config_.engine.rng_seed) {
  if (models_.size() < 2) {
    throw std::invalid_argument("Session: differential testing needs >= 2 models");
  }
  if (constraint_ == nullptr) {
    throw std::invalid_argument("Session: constraint must not be null");
  }
  const Shape& input_shape = models_[0]->input_shape();
  const Shape& output_shape = models_[0]->output_shape();
  for (Model* m : models_) {
    if (m->input_shape() != input_shape) {
      throw std::invalid_argument("Session: models disagree on input shape");
    }
    if (m->output_shape() != output_shape) {
      throw std::invalid_argument("Session: models disagree on output shape");
    }
  }
  regression_ = NumElements(output_shape) == 1 &&
                models_[0]->layer(models_[0]->num_layers() - 1).Kind() != "softmax";
  metrics_.reserve(models_.size());
  for (Model* m : models_) {
    metrics_.push_back(MakeCoverageMetric(config_.metric, *m, config_.engine.coverage));
  }
  if (config_.sync_interval <= 0 && config_.workers != 1) {
    throw std::invalid_argument(
        "Session: legacy serial mode (sync_interval = 0) requires workers == 1");
  }
  if (config_.batch_size < 1) {
    throw std::invalid_argument("Session: batch_size must be >= 1");
  }
  objective_ = MakeObjective(config_.objective);
  scheduler_ = MakeSeedScheduler(config_.scheduler);
  executor_ = std::make_unique<Executor>(models_, constraint_, regression_,
                                         &config_.engine);
}

Session::~Session() = default;

void Session::SetObjective(std::unique_ptr<Objective> objective) {
  if (objective == nullptr) {
    throw std::invalid_argument("Session: objective must not be null");
  }
  objective_ = std::move(objective);
}

void Session::SetScheduler(std::unique_ptr<SeedScheduler> scheduler) {
  if (scheduler == nullptr) {
    throw std::invalid_argument("Session: scheduler must not be null");
  }
  scheduler_ = std::move(scheduler);
}

std::vector<int> Session::PredictLabels(const Tensor& x) const {
  std::vector<int> labels;
  labels.reserve(models_.size());
  for (const Model* m : models_) {
    labels.push_back(m->PredictClass(x));
  }
  return labels;
}

std::vector<float> Session::PredictScalars(const Tensor& x) const {
  std::vector<float> outputs;
  outputs.reserve(models_.size());
  for (const Model* m : models_) {
    outputs.push_back(m->PredictScalar(x));
  }
  return outputs;
}

bool Session::IsDifference(const Tensor& x) const {
  if (regression_) {
    const std::vector<float> outs = PredictScalars(x);
    const auto [lo, hi] = std::minmax_element(outs.begin(), outs.end());
    return *hi - *lo > config_.engine.steering_eps;
  }
  const std::vector<int> labels = PredictLabels(x);
  return std::any_of(labels.begin(), labels.end(),
                     [&](int l) { return l != labels[0]; });
}

Tensor Session::ObjectiveGradient(
    const Tensor& x, int target_model, int consensus, Rng& rng,
    const std::vector<std::unique_ptr<CoverageMetric>>& metrics) const {
  Tensor grad(x.shape());
  ObjectiveContext ctx;
  ctx.models = &models_;
  ctx.metrics = &metrics;
  ctx.target_model = target_model;
  ctx.consensus = consensus;
  ctx.regression = regression_;
  ctx.lambda1 = config_.engine.lambda1;
  ctx.lambda2 = config_.engine.lambda2;
  ctx.rng = &rng;
  const ForwardTrace no_trace;
  for (int k = 0; k < num_models(); ++k) {
    if (objective_->NeedsTrace(ctx, k)) {
      const ForwardTrace trace = models_[static_cast<size_t>(k)]->Forward(x);
      objective_->Accumulate(ctx, k, trace, &grad);
    } else {
      objective_->Accumulate(ctx, k, no_trace, &grad);
    }
  }
  return grad;
}

Tensor Session::ObjectiveGradient(const Tensor& x, int target_model, int consensus) {
  return ObjectiveGradient(x, target_model, consensus, rng_, metrics_);
}

std::optional<GeneratedTest> Session::GenerateFromSeed(
    const Tensor& seed, int seed_index, Rng& rng,
    std::vector<std::unique_ptr<CoverageMetric>>& metrics) {
  // A single-seed chunk of the batched executor: same values, same RNG
  // stream, but one forward per (model, iteration) instead of two or three.
  Executor::SeedTask task;
  task.seed = &seed;
  task.seed_index = seed_index;
  task.rng = &rng;
  task.metrics = &metrics;
  return executor_->Run({task}, *objective_)[0];
}

std::optional<GeneratedTest> Session::GenerateFromSeed(const Tensor& seed,
                                                       int seed_index) {
  return GenerateFromSeed(seed, seed_index, rng_, metrics_);
}

std::vector<std::unique_ptr<CoverageMetric>> Session::CloneMetrics() const {
  std::vector<std::unique_ptr<CoverageMetric>> clones;
  clones.reserve(metrics_.size());
  for (const auto& metric : metrics_) {
    clones.push_back(metric->Clone());
  }
  return clones;
}

int Session::EffectiveWorkers() const {
  if (config_.workers > 0) {
    return config_.workers;
  }
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return std::max(1, hw);
}

void Session::ProfileSeeds(const std::vector<Tensor>& seeds) {
  const size_t width = static_cast<size_t>(std::max(1, config_.batch_size));
  for (int k = 0; k < num_models(); ++k) {
    CoverageMetric& metric = *metrics_[static_cast<size_t>(k)];
    if (!metric.WantsSeedProfile()) {
      continue;
    }
    const Model& model = *models_[static_cast<size_t>(k)];
    for (size_t begin = 0; begin < seeds.size(); begin += width) {
      const size_t end = std::min(seeds.size(), begin + width);
      std::vector<const Tensor*> chunk;
      chunk.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        chunk.push_back(&seeds[i]);
      }
      const BatchTrace trace = model.ForwardBatch(StackSamples(chunk));
      for (int b = 0; b < trace.batch; ++b) {
        metric.ProfileSeed(model, trace.Sample(b));
      }
    }
  }
  profiled_ = true;
}

RunStats Session::Run(const std::vector<Tensor>& seeds, const RunOptions& options) {
  RunStats stats;
  Timer timer;
  int64_t forward_base = 0;
  for (const Model* m : models_) {
    forward_base += m->forward_passes();
  }
  if (config_.profile_from_seeds && !profiled_) {
    ProfileSeeds(seeds);
  }
  scheduler_->Reset(static_cast<int>(seeds.size()), options.max_seed_passes);

  if (config_.sync_interval <= 0) {
    // Legacy serial mode: the session RNG is threaded through the whole seed
    // stream and the global trackers are updated in place — the exact
    // pre-Session DeepXplore behavior, preserved for the facade.
    for (;;) {
      if (static_cast<int>(stats.tests.size()) >= options.max_tests ||
          timer.ElapsedSeconds() > options.max_seconds) {
        break;
      }
      const int index = scheduler_->Next();
      if (index < 0) {
        break;
      }
      ++stats.seeds_tried;
      const float before = MeanCoverage();
      auto test = GenerateFromSeed(seeds[static_cast<size_t>(index)], index);
      if (!test.has_value()) {
        ++stats.seeds_skipped;
        scheduler_->Report(index, false, 0.0f);
        continue;
      }
      scheduler_->Report(index, true, MeanCoverage() - before);
      stats.total_iterations += test->iterations;
      stats.tests.push_back(std::move(*test));
      if (options.coverage_goal <= 1.0f) {
        bool all_reached = true;
        for (const auto& metric : metrics_) {
          all_reached = all_reached && metric->Coverage() >= options.coverage_goal;
        }
        if (all_reached) {
          break;
        }
      }
    }
    stats.seconds = timer.ElapsedSeconds();
    stats.mean_coverage = MeanCoverage();
    for (const Model* m : models_) {
      stats.forward_passes += m->forward_passes();
    }
    stats.forward_passes -= forward_base;
    return stats;
  }

  const int workers = EffectiveWorkers();
  if (workers > 1 && (pool_ == nullptr || pool_->num_threads() != workers - 1)) {
    // ParallelFor runs on the pool's threads plus the calling thread, so a
    // session with W workers owns W-1 pool threads.
    pool_ = std::make_unique<ThreadPool>(workers - 1);
  }
  const int batch_size = std::max(1, config_.sync_interval);

  struct TaskResult {
    std::optional<GeneratedTest> test;
    std::vector<std::unique_ptr<CoverageMetric>> metrics;
  };

  uint64_t task_counter = 0;
  bool done = false;
  while (!done && timer.ElapsedSeconds() <= options.max_seconds) {
    std::vector<int> batch;
    batch.reserve(static_cast<size_t>(batch_size));
    while (static_cast<int>(batch.size()) < batch_size) {
      const int index = scheduler_->Next();
      if (index < 0) {
        break;
      }
      batch.push_back(index);
      // Sync at pass boundaries so the scheduler has every outcome of the
      // finished pass reported before it orders the next one. The cut
      // depends only on counts, so worker-count invariance is preserved.
      if ((task_counter + batch.size()) % seeds.size() == 0) {
        break;
      }
    }
    if (batch.empty()) {
      break;
    }

    // Every task keeps its own RNG stream and tracker clones (exactly as in
    // the per-seed path), then contiguous runs of `batch_size` tasks ascend
    // in lockstep on the executor. Chunk boundaries depend only on
    // batch_size — never on the worker count — and chunk composition cannot
    // change any task's values, so results stay invariant to both knobs.
    std::vector<TaskResult> results(batch.size());
    std::vector<Rng> task_rngs;
    task_rngs.reserve(batch.size());
    for (size_t t = 0; t < batch.size(); ++t) {
      task_rngs.emplace_back(TaskSeed(config_.engine.rng_seed,
                                      task_counter + static_cast<uint64_t>(t)));
      results[t].metrics = CloneMetrics();
    }
    const size_t chunk_width = static_cast<size_t>(std::max(1, config_.batch_size));
    const int64_t num_chunks =
        static_cast<int64_t>((batch.size() + chunk_width - 1) / chunk_width);
    const auto run_chunk = [&](int64_t c) {
      const size_t begin = static_cast<size_t>(c) * chunk_width;
      const size_t end = std::min(batch.size(), begin + chunk_width);
      std::vector<Executor::SeedTask> tasks;
      tasks.reserve(end - begin);
      for (size_t t = begin; t < end; ++t) {
        Executor::SeedTask task;
        task.seed = &seeds[static_cast<size_t>(batch[t])];
        task.seed_index = batch[t];
        task.rng = &task_rngs[t];
        task.metrics = &results[t].metrics;
        tasks.push_back(task);
      }
      auto outcomes = executor_->Run(tasks, *objective_);
      for (size_t t = begin; t < end; ++t) {
        results[t].test = std::move(outcomes[t - begin]);
      }
    };
    if (workers > 1 && num_chunks > 1) {
      pool_->ParallelFor(num_chunks, run_chunk);
    } else {
      for (int64_t c = 0; c < num_chunks; ++c) {
        run_chunk(c);
      }
    }
    task_counter += batch.size();

    // Merge + report in schedule order: deterministic for any worker count.
    for (size_t t = 0; t < batch.size() && !done; ++t) {
      TaskResult& result = results[t];
      ++stats.seeds_tried;
      if (!result.test.has_value()) {
        ++stats.seeds_skipped;
        scheduler_->Report(batch[t], false, 0.0f);
        continue;
      }
      const float before = MeanCoverage();
      for (int k = 0; k < num_models(); ++k) {
        metrics_[static_cast<size_t>(k)]->Merge(*result.metrics[static_cast<size_t>(k)]);
      }
      scheduler_->Report(batch[t], true, MeanCoverage() - before);
      stats.total_iterations += result.test->iterations;
      stats.tests.push_back(std::move(*result.test));
      if (static_cast<int>(stats.tests.size()) >= options.max_tests) {
        done = true;
        break;
      }
      if (options.coverage_goal <= 1.0f) {
        bool all_reached = true;
        for (const auto& metric : metrics_) {
          all_reached = all_reached && metric->Coverage() >= options.coverage_goal;
        }
        if (all_reached) {
          done = true;
        }
      }
    }
  }
  stats.seconds = timer.ElapsedSeconds();
  stats.mean_coverage = MeanCoverage();
  for (const Model* m : models_) {
    stats.forward_passes += m->forward_passes();
  }
  stats.forward_passes -= forward_base;
  return stats;
}

float Session::MeanCoverage() const {
  double sum = 0.0;
  for (const auto& metric : metrics_) {
    sum += metric->Coverage();
  }
  return static_cast<float>(sum / static_cast<double>(metrics_.size()));
}

}  // namespace dx

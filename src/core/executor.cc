#include "src/core/executor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/nn/execution_plan.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace dx {

ExecutorProfile& ExecutorProfile::operator+=(const ExecutorProfile& other) {
  stack_seconds += other.stack_seconds;
  forward_seconds += other.forward_seconds;
  backward_layers_seconds += other.backward_layers_seconds;
  objective_accumulate_seconds += other.objective_accumulate_seconds;
  constraint_seconds += other.constraint_seconds;
  coverage_seconds += other.coverage_seconds;
  iterations += other.iterations;
  return *this;
}

namespace {

bool ScalarsDiffer(const std::vector<float>& outs, float eps) {
  const auto [lo, hi] = std::minmax_element(outs.begin(), outs.end());
  return *hi - *lo > eps;
}

bool LabelsDiffer(const std::vector<int>& labels) {
  return std::any_of(labels.begin(), labels.end(),
                     [&](int l) { return l != labels[0]; });
}

// The model farthest from the ensemble mean is the deviator (regression).
int DeviatorFromScalars(const std::vector<float>& outs) {
  double mean = 0.0;
  for (const float v : outs) {
    mean += v;
  }
  mean /= static_cast<double>(outs.size());
  int deviator = 0;
  float worst = -1.0f;
  for (size_t k = 0; k < outs.size(); ++k) {
    const float dev = std::abs(outs[k] - static_cast<float>(mean));
    if (dev > worst) {
      worst = dev;
      deviator = static_cast<int>(k);
    }
  }
  return deviator;
}

// The minority label's model is the deviator (classification).
int DeviatorFromLabels(const std::vector<int>& labels) {
  for (size_t k = 0; k < labels.size(); ++k) {
    int agreement = 0;
    for (size_t other = 0; other < labels.size(); ++other) {
      if (labels[other] == labels[k]) {
        ++agreement;
      }
    }
    if (agreement == 1) {
      return static_cast<int>(k);
    }
  }
  return 0;
}

}  // namespace

// Pooled per-chunk execution buffers: one compiled plan per model plus every
// tensor the lockstep loop writes. A state is borrowed by exactly one Run at
// a time; after the first Run at a given width all of this storage is warm
// and iterations allocate nothing.
struct Executor::ChunkState {
  struct TaskState {
    Tensor x;           // Current input of the ascent (storage reused).
    int consensus = 0;  // Seed-time consensus class (classification).
    int target = 0;     // j: the model pushed away from the consensus.
    int pos = 0;        // This task's sample index within the plan traces.
  };

  int capacity = 0;
  std::vector<ExecutionPlan> plans;  // One per model.
  Tensor stacked;                    // [width, ...input_shape] batch buffer.
  std::vector<Tensor> grads;         // Per task: objective gradient.
  Tensor direction;                  // Constraint output (reused across tasks).
  std::vector<TaskState> states;
  std::vector<int> active;
  std::vector<int> still_active;
  std::vector<int> labels;           // Per model, current sample.
  std::vector<float> scalars;        // Per model, current sample.
  std::vector<Shape> out_shapes;     // Per model output sample shape (for views).
};

Executor::Executor(std::vector<Model*> models, const Constraint* constraint,
                   bool regression, const EngineConfig* engine)
    : models_(std::move(models)),
      constraint_(constraint),
      regression_(regression),
      engine_(engine) {
  if (models_.empty() || constraint_ == nullptr || engine_ == nullptr) {
    throw std::invalid_argument("Executor: models/constraint/engine must be set");
  }
}

Executor::~Executor() = default;

std::vector<BatchTrace> Executor::ForwardAll(const Tensor& batch_input) const {
  std::vector<BatchTrace> traces;
  traces.reserve(models_.size());
  for (const Model* m : models_) {
    traces.push_back(m->ForwardBatch(batch_input));
  }
  return traces;
}

std::unique_ptr<Executor::ChunkState> Executor::AcquireState(int width) const {
  std::unique_ptr<ChunkState> state;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (!state_pool_.empty()) {
      state = std::move(state_pool_.back());
      state_pool_.pop_back();
    }
  }
  if (state == nullptr) {
    state = std::make_unique<ChunkState>();
  }
  if (state->capacity < width) {
    // First chunk this wide for this state: (re)compile the plans and size
    // every buffer. This is the warm-up allocation site; the pool stabilizes
    // once every concurrent caller has seen its maximum chunk width.
    state->plans.clear();
    state->plans.reserve(models_.size());
    state->out_shapes.clear();
    state->out_shapes.reserve(models_.size());
    for (const Model* m : models_) {
      state->plans.push_back(m->Compile(width));
      state->out_shapes.push_back(m->output_shape());
    }
    const Shape& in_shape = models_[0]->input_shape();
    state->stacked = Tensor(BatchedShape(width, in_shape));
    state->grads.assign(static_cast<size_t>(width), Tensor(in_shape));
    state->direction = Tensor(in_shape);
    state->states.resize(static_cast<size_t>(width));
    state->labels.resize(models_.size());
    state->scalars.resize(models_.size());
    state->capacity = width;
  }
  return state;
}

void Executor::ReleaseState(std::unique_ptr<ChunkState> state) const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  state_pool_.push_back(std::move(state));
}

ExecutorProfile Executor::profile() const {
  std::lock_guard<std::mutex> lock(profile_mu_);
  return profile_;
}

void Executor::ResetProfile() {
  std::lock_guard<std::mutex> lock(profile_mu_);
  profile_ = ExecutorProfile{};
}

std::vector<std::optional<GeneratedTest>> Executor::Run(
    const std::vector<SeedTask>& tasks, const Objective& objective) const {
  const int n = static_cast<int>(tasks.size());
  std::vector<std::optional<GeneratedTest>> results(static_cast<size_t>(n));
  if (n == 0) {
    return results;
  }
  Timer timer;
  const int num_k = num_models();
  const bool profiling = profiling_;
  ExecutorProfile prof;
  Timer phase;

  std::unique_ptr<ChunkState> holder = AcquireState(n);
  // Scope guard: the warm state (compiled plans, slabs, arenas) goes back to
  // the pool even when a task throws mid-run — destroying it would force a
  // full recompile/warm-up on every subsequent chunk.
  struct StateReturner {
    const Executor* executor;
    std::unique_ptr<ChunkState>* holder;
    ~StateReturner() {
      if (*holder != nullptr) {
        executor->ReleaseState(std::move(*holder));
      }
    }
  } state_returner{this, &holder};
  ChunkState& cs = *holder;
  // Plans are pooled across runs; (re)arm their backward timers to this
  // run's profiling mode and drain any counter a previous run left behind.
  for (ExecutionPlan& plan : cs.plans) {
    plan.set_profiling(profiling);
    plan.ConsumeBackwardSeconds();
  }
  const Shape& in_shape = models_[0]->input_shape();
  const int64_t in_stride = NumElements(in_shape);

  // Stacks the current inputs of `width` tasks into the reused batch buffer.
  const auto stack_into = [&](int width, const auto& input_of) {
    cs.stacked.SetBatchDim(width);
    float* dst = cs.stacked.data();
    for (int i = 0; i < width; ++i) {
      const Tensor& x = input_of(i);
      std::copy(x.data(), x.data() + in_stride, dst + static_cast<int64_t>(i) * in_stride);
    }
  };
  // One batched forward per model through the persistent plans. The per-model
  // forwards are independent (each writes only its own plan's slabs), so when
  // cores are idle — a single-worker Session on a multicore host — they fan
  // out over the global pool. Inside a multi-worker Session the chunk already
  // runs on a pool thread, so IntraOpParallelismAvailable() is false and the
  // loop stays serial instead of oversubscribing; either way each model's
  // forward is the same operation sequence, so results don't depend on the
  // choice. Layer kernels apply the same gate one level down (GEMM row
  // blocks, conv batch samples) via the re-entrancy-safe ParallelFor.
  const auto forward_all = [&](int width) {
    if (num_k > 1 && IntraOpParallelismAvailable()) {
      ParallelFor(num_k, [&](int64_t k) { cs.plans[k].ForwardBatch(cs.stacked, width); });
    } else {
      for (int k = 0; k < num_k; ++k) {
        cs.plans[k].ForwardBatch(cs.stacked, width);
      }
    }
  };
  // Final-layer outputs of sample `pos`, read through non-owning views of
  // the plan traces (no per-sample tensor copies).
  const auto read_labels = [&](int pos) {
    for (int k = 0; k < num_k; ++k) {
      const BatchTrace& trace = cs.plans[k].trace();
      const Tensor& out = trace.outputs.back();
      const int64_t cols = out.numel() / trace.batch;
      const ConstTensorView row(out.data() + static_cast<int64_t>(pos) * cols,
                                &cs.out_shapes[static_cast<size_t>(k)], cols);
      cs.labels[static_cast<size_t>(k)] = static_cast<int>(row.Argmax());
    }
  };
  const auto read_scalars = [&](int pos) {
    for (int k = 0; k < num_k; ++k) {
      const BatchTrace& trace = cs.plans[k].trace();
      const Tensor& out = trace.outputs.back();
      const int64_t cols = out.numel() / trace.batch;
      cs.scalars[static_cast<size_t>(k)] = out.data()[static_cast<int64_t>(pos) * cols];
    }
  };

  // Forward pass #0 over the stacked seeds: consensus check now, iteration
  // 1's objective gradient next — one pass, two consumers.
  if (profiling) phase.Reset();
  for (int t = 0; t < n; ++t) {
    if (tasks[static_cast<size_t>(t)].seed->shape() != in_shape) {
      throw std::invalid_argument("Executor::Run: seed shape mismatch");
    }
  }
  stack_into(n, [&](int i) -> const Tensor& { return *tasks[static_cast<size_t>(i)].seed; });
  if (profiling) prof.stack_seconds += phase.ElapsedSeconds();
  if (profiling) phase.Reset();
  forward_all(n);
  if (profiling) prof.forward_seconds += phase.ElapsedSeconds();

  cs.active.clear();
  for (int t = 0; t < n; ++t) {
    ChunkState::TaskState& state = cs.states[static_cast<size_t>(t)];
    if (regression_) {
      // Seed must not already be a difference (Algorithm 1 line 4).
      read_scalars(t);
      if (ScalarsDiffer(cs.scalars, engine_->steering_eps)) {
        continue;  // results[t] stays nullopt.
      }
    } else {
      // All models must agree on the seed's class.
      read_labels(t);
      if (LabelsDiffer(cs.labels)) {
        continue;
      }
      state.consensus = cs.labels[0];
    }
    state.x = *tasks[static_cast<size_t>(t)].seed;  // Reuses the slot's storage.
    state.target = engine_->forced_target_model >= 0 &&
                           engine_->forced_target_model < num_k
                       ? engine_->forced_target_model
                       : static_cast<int>(
                             tasks[static_cast<size_t>(t)].rng->UniformInt(0, num_k - 1));
    state.pos = t;
    cs.active.push_back(t);
  }

  const ForwardTrace no_trace;
  for (int iter = 1; iter <= engine_->max_iterations_per_seed && !cs.active.empty();
       ++iter) {
    // 1. Objective gradients against the shared plan traces — backward only,
    //    no re-forward — then the constrained ascent step (Algorithm 1
    //    l. 8-16). Everything writes into reused buffers.
    for (const int t : cs.active) {
      const SeedTask& task = tasks[static_cast<size_t>(t)];
      ChunkState::TaskState& state = cs.states[static_cast<size_t>(t)];
      if (profiling) phase.Reset();
      Tensor& grad = cs.grads[static_cast<size_t>(t)];
      grad.Fill(0.0f);
      ObjectiveContext ctx;
      ctx.models = &models_;
      ctx.metrics = task.metrics;
      ctx.target_model = state.target;
      ctx.consensus = state.consensus;
      ctx.regression = regression_;
      ctx.lambda1 = engine_->lambda1;
      ctx.lambda2 = engine_->lambda2;
      ctx.rng = task.rng;
      for (int k = 0; k < num_k; ++k) {
        if (objective.NeedsTrace(ctx, k)) {
          objective.AccumulatePlanned(ctx, k, cs.plans[static_cast<size_t>(k)], state.pos,
                                      &grad);
        } else {
          objective.Accumulate(ctx, k, no_trace, &grad);
        }
      }
      if (engine_->normalize_gradient) {
        // RMS-normalize (as in the reference implementation) so the step
        // size s is meaningful regardless of softmax saturation.
        const float rms = grad.L2Norm() /
                          std::sqrt(static_cast<float>(std::max<int64_t>(1, grad.numel())));
        grad.Scale(1.0f / (rms + 1e-5f));
      }
      if (profiling) {
        // The plans timed their backward layer chains from the inside; what
        // remains of the phase is the objective's own work (seed setup,
        // gradient accumulation, RMS normalization).
        const double elapsed = phase.ElapsedSeconds();
        double backward = 0.0;
        for (int k = 0; k < num_k; ++k) {
          backward += cs.plans[static_cast<size_t>(k)].ConsumeBackwardSeconds();
        }
        prof.backward_layers_seconds += backward;
        prof.objective_accumulate_seconds += std::max(0.0, elapsed - backward);
      }
      if (profiling) phase.Reset();
      constraint_->ApplyInto(grad, state.x, *task.rng, &cs.direction);
      state.x.Axpy(engine_->step, cs.direction);
      constraint_->ProjectInput(&state.x);
      if (profiling) prof.constraint_seconds += phase.ElapsedSeconds();
    }

    // 2. The iteration's single shared forward pass at the stepped inputs.
    const int width = static_cast<int>(cs.active.size());
    if (profiling) phase.Reset();
    stack_into(width, [&](int i) -> const Tensor& {
      return cs.states[static_cast<size_t>(cs.active[static_cast<size_t>(i)])].x;
    });
    if (profiling) prof.stack_seconds += phase.ElapsedSeconds();
    if (profiling) phase.Reset();
    forward_all(width);
    if (profiling) prof.forward_seconds += phase.ElapsedSeconds();
    for (int i = 0; i < width; ++i) {
      cs.states[static_cast<size_t>(cs.active[static_cast<size_t>(i)])].pos = i;
    }

    // 3. Difference check from the same traces; finishers also reuse them
    //    for their labels and coverage update (Algorithm 1 line 18).
    if (profiling) phase.Reset();
    cs.still_active.clear();
    for (const int t : cs.active) {
      const SeedTask& task = tasks[static_cast<size_t>(t)];
      ChunkState::TaskState& state = cs.states[static_cast<size_t>(t)];
      GeneratedTest test;
      bool found = false;
      if (regression_) {
        read_scalars(state.pos);
        if (ScalarsDiffer(cs.scalars, engine_->steering_eps)) {
          found = true;
          test.deviating_model = DeviatorFromScalars(cs.scalars);
          test.outputs = cs.scalars;
        }
      } else {
        read_labels(state.pos);
        if (LabelsDiffer(cs.labels)) {
          found = true;
          test.deviating_model = DeviatorFromLabels(cs.labels);
          test.labels = cs.labels;
        }
      }
      if (!found) {
        cs.still_active.push_back(t);  // Budget exhaustion leaves nullopt.
        continue;
      }
      test.input = state.x;
      test.seed_index = task.seed_index;
      test.task_ordinal = task.ordinal;
      test.iterations = iter;
      test.seconds = timer.ElapsedSeconds();
      // Route through the metric's batch entry point via the plan's reused
      // width-1 sample trace (same bits as the old one-sample Select copy,
      // without the allocations) so metrics that override UpdateBatch see
      // the batched trace format.
      for (int k = 0; k < num_k; ++k) {
        (*task.metrics)[static_cast<size_t>(k)]->UpdateBatch(
            *models_[static_cast<size_t>(k)],
            cs.plans[static_cast<size_t>(k)].SampleTrace(state.pos));
      }
      results[static_cast<size_t>(t)] = std::move(test);
    }
    std::swap(cs.active, cs.still_active);
    if (profiling) prof.coverage_seconds += phase.ElapsedSeconds();
    ++prof.iterations;
  }

  if (profiling) {
    std::lock_guard<std::mutex> lock(profile_mu_);
    profile_ += prof;
  }
  return results;
}

}  // namespace dx

#include "src/core/executor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/tensor/ops.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace dx {
namespace {

// Per-model final scalar outputs of sample `pos` (regression models).
std::vector<float> SampleScalars(const std::vector<BatchTrace>& traces, int pos) {
  std::vector<float> outs(traces.size());
  for (size_t k = 0; k < traces.size(); ++k) {
    outs[k] =
        traces[k].SampleOutput(static_cast<int>(traces[k].outputs.size()) - 1, pos)[0];
  }
  return outs;
}

// Per-model argmax labels of sample `pos` (classification models).
std::vector<int> SampleLabels(const std::vector<BatchTrace>& traces, int pos) {
  std::vector<int> labels(traces.size());
  for (size_t k = 0; k < traces.size(); ++k) {
    labels[k] = static_cast<int>(
        traces[k]
            .SampleOutput(static_cast<int>(traces[k].outputs.size()) - 1, pos)
            .Argmax());
  }
  return labels;
}

bool ScalarsDiffer(const std::vector<float>& outs, float eps) {
  const auto [lo, hi] = std::minmax_element(outs.begin(), outs.end());
  return *hi - *lo > eps;
}

bool LabelsDiffer(const std::vector<int>& labels) {
  return std::any_of(labels.begin(), labels.end(),
                     [&](int l) { return l != labels[0]; });
}

// The model farthest from the ensemble mean is the deviator (regression).
int DeviatorFromScalars(const std::vector<float>& outs) {
  double mean = 0.0;
  for (const float v : outs) {
    mean += v;
  }
  mean /= static_cast<double>(outs.size());
  int deviator = 0;
  float worst = -1.0f;
  for (size_t k = 0; k < outs.size(); ++k) {
    const float dev = std::abs(outs[k] - static_cast<float>(mean));
    if (dev > worst) {
      worst = dev;
      deviator = static_cast<int>(k);
    }
  }
  return deviator;
}

// The minority label's model is the deviator (classification).
int DeviatorFromLabels(const std::vector<int>& labels) {
  for (size_t k = 0; k < labels.size(); ++k) {
    int agreement = 0;
    for (size_t other = 0; other < labels.size(); ++other) {
      if (labels[other] == labels[k]) {
        ++agreement;
      }
    }
    if (agreement == 1) {
      return static_cast<int>(k);
    }
  }
  return 0;
}

}  // namespace

Executor::Executor(std::vector<Model*> models, const Constraint* constraint,
                   bool regression, const EngineConfig* engine)
    : models_(std::move(models)),
      constraint_(constraint),
      regression_(regression),
      engine_(engine) {
  if (models_.empty() || constraint_ == nullptr || engine_ == nullptr) {
    throw std::invalid_argument("Executor: models/constraint/engine must be set");
  }
}

std::vector<BatchTrace> Executor::ForwardAll(const Tensor& batch_input) const {
  std::vector<BatchTrace> traces;
  traces.reserve(models_.size());
  for (const Model* m : models_) {
    traces.push_back(m->ForwardBatch(batch_input));
  }
  return traces;
}

std::vector<std::optional<GeneratedTest>> Executor::Run(
    const std::vector<SeedTask>& tasks, const Objective& objective) const {
  const int n = static_cast<int>(tasks.size());
  std::vector<std::optional<GeneratedTest>> results(static_cast<size_t>(n));
  if (n == 0) {
    return results;
  }
  Timer timer;
  const int num_k = num_models();

  // Forward pass #0 over the stacked seeds: consensus check now, iteration
  // 1's objective gradient next — one pass, two consumers.
  std::vector<const Tensor*> stacked;
  stacked.reserve(static_cast<size_t>(n));
  for (const SeedTask& task : tasks) {
    stacked.push_back(task.seed);
  }
  std::vector<BatchTrace> traces = ForwardAll(StackSamples(stacked));

  struct TaskState {
    Tensor x;           // Current input of the ascent.
    int consensus = 0;  // Seed-time consensus class (classification).
    int target = 0;     // j: the model pushed away from the consensus.
    int pos = 0;        // This task's sample index within `traces`.
  };
  std::vector<TaskState> states(static_cast<size_t>(n));
  std::vector<int> active;  // Task ids still ascending, in task order.
  active.reserve(static_cast<size_t>(n));

  for (int t = 0; t < n; ++t) {
    TaskState& state = states[static_cast<size_t>(t)];
    if (regression_) {
      // Seed must not already be a difference (Algorithm 1 line 4).
      if (ScalarsDiffer(SampleScalars(traces, t), engine_->steering_eps)) {
        continue;  // results[t] stays nullopt.
      }
    } else {
      // All models must agree on the seed's class.
      const std::vector<int> labels = SampleLabels(traces, t);
      if (LabelsDiffer(labels)) {
        continue;
      }
      state.consensus = labels[0];
    }
    state.x = *tasks[static_cast<size_t>(t)].seed;
    state.target = engine_->forced_target_model >= 0 &&
                           engine_->forced_target_model < num_k
                       ? engine_->forced_target_model
                       : static_cast<int>(
                             tasks[static_cast<size_t>(t)].rng->UniformInt(0, num_k - 1));
    state.pos = t;
    active.push_back(t);
  }

  const ForwardTrace no_trace;
  for (int iter = 1; iter <= engine_->max_iterations_per_seed && !active.empty(); ++iter) {
    // 1. Objective gradients against the shared traces — backward only, no
    //    re-forward — then the constrained ascent step (Algorithm 1 l. 8-16).
    for (const int t : active) {
      const SeedTask& task = tasks[static_cast<size_t>(t)];
      TaskState& state = states[static_cast<size_t>(t)];
      Tensor grad(state.x.shape());
      ObjectiveContext ctx;
      ctx.models = &models_;
      ctx.metrics = task.metrics;
      ctx.target_model = state.target;
      ctx.consensus = state.consensus;
      ctx.regression = regression_;
      ctx.lambda1 = engine_->lambda1;
      ctx.lambda2 = engine_->lambda2;
      ctx.rng = task.rng;
      for (int k = 0; k < num_k; ++k) {
        if (objective.NeedsTrace(ctx, k)) {
          const ForwardTrace sample = traces[static_cast<size_t>(k)].Sample(state.pos);
          objective.Accumulate(ctx, k, sample, &grad);
        } else {
          objective.Accumulate(ctx, k, no_trace, &grad);
        }
      }
      if (engine_->normalize_gradient) {
        // RMS-normalize (as in the reference implementation) so the step
        // size s is meaningful regardless of softmax saturation.
        const float rms = grad.L2Norm() /
                          std::sqrt(static_cast<float>(std::max<int64_t>(1, grad.numel())));
        grad.Scale(1.0f / (rms + 1e-5f));
      }
      const Tensor direction = constraint_->Apply(grad, state.x, *task.rng);
      state.x.Axpy(engine_->step, direction);
      constraint_->ProjectInput(&state.x);
    }

    // 2. The iteration's single shared forward pass at the stepped inputs.
    std::vector<const Tensor*> xs;
    xs.reserve(active.size());
    for (const int t : active) {
      xs.push_back(&states[static_cast<size_t>(t)].x);
    }
    traces = ForwardAll(StackSamples(xs));
    for (size_t i = 0; i < active.size(); ++i) {
      states[static_cast<size_t>(active[i])].pos = static_cast<int>(i);
    }

    // 3. Difference check from the same traces; finishers also reuse them
    //    for their labels and coverage update (Algorithm 1 line 18).
    std::vector<int> still_active;
    still_active.reserve(active.size());
    for (const int t : active) {
      const SeedTask& task = tasks[static_cast<size_t>(t)];
      TaskState& state = states[static_cast<size_t>(t)];
      GeneratedTest test;
      bool found = false;
      if (regression_) {
        std::vector<float> outs = SampleScalars(traces, state.pos);
        if (ScalarsDiffer(outs, engine_->steering_eps)) {
          found = true;
          test.deviating_model = DeviatorFromScalars(outs);
          test.outputs = std::move(outs);
        }
      } else {
        std::vector<int> labels = SampleLabels(traces, state.pos);
        if (LabelsDiffer(labels)) {
          found = true;
          test.deviating_model = DeviatorFromLabels(labels);
          test.labels = std::move(labels);
        }
      }
      if (!found) {
        still_active.push_back(t);  // Budget exhaustion leaves nullopt.
        continue;
      }
      test.input = state.x;
      test.seed_index = task.seed_index;
      test.task_ordinal = task.ordinal;
      test.iterations = iter;
      test.seconds = timer.ElapsedSeconds();
      // Route through the metric's batch entry point (a 1-sample Select
      // copy, paid once per found test) so metrics that override
      // UpdateBatch see the batched trace format.
      for (int k = 0; k < num_k; ++k) {
        (*task.metrics)[static_cast<size_t>(k)]->UpdateBatch(
            *models_[static_cast<size_t>(k)],
            traces[static_cast<size_t>(k)].Select({state.pos}));
      }
      results[static_cast<size_t>(t)] = std::move(test);
    }
    active = std::move(still_active);
  }
  return results;
}

}  // namespace dx

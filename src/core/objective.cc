#include "src/core/objective.h"

#include <stdexcept>
#include <utility>

#include "src/baselines/adversarial.h"
#include "src/baselines/random_testing.h"
#include "src/nn/execution_plan.h"
#include "src/util/registry.h"
#include "src/util/rng.h"

namespace dx {

void Objective::AccumulatePlanned(const ObjectiveContext& ctx, int k, ExecutionPlan& plan,
                                  int pos, Tensor* grad) const {
  // Compatibility adapter: materialize the sample as a ForwardTrace and run
  // the by-value path. Allocating, but correct for any objective.
  const ForwardTrace trace = plan.trace().Sample(pos);
  Accumulate(ctx, k, trace, grad);
}

void DifferentialObjective::Accumulate(const ObjectiveContext& ctx, int k,
                                       const ForwardTrace& trace, Tensor* grad) const {
  const Model& model = *(*ctx.models)[static_cast<size_t>(k)];
  const float weight = k == ctx.target_model ? -ctx.lambda1 : 1.0f;
  const int last = model.num_layers() - 1;
  Tensor seed(trace.outputs[static_cast<size_t>(last)].shape());
  if (ctx.regression) {
    seed[0] = weight;
  } else {
    seed[ctx.consensus] = weight;
  }
  grad->AddInPlace(model.BackwardInput(trace, last, std::move(seed)));
}

void DifferentialObjective::AccumulatePlanned(const ObjectiveContext& ctx, int k,
                                              ExecutionPlan& plan, int pos,
                                              Tensor* grad) const {
  const Model& model = plan.model();
  const float weight = k == ctx.target_model ? -ctx.lambda1 : 1.0f;
  const int last = model.num_layers() - 1;
  Tensor& seed = plan.AcquireSeed(last);
  if (ctx.regression) {
    seed[0] = weight;
  } else {
    seed[ctx.consensus] = weight;
  }
  grad->AddInPlace(plan.BackwardSample(pos, last, seed));
}

void CoverageObjective::Accumulate(const ObjectiveContext& ctx, int k,
                                   const ForwardTrace& trace, Tensor* grad) const {
  if (ctx.lambda2 == 0.0f) {
    return;  // Disabled: no gradient and, crucially, no rng draw.
  }
  const Model& model = *(*ctx.models)[static_cast<size_t>(k)];
  const CoverageMetric& metric = *(*ctx.metrics)[static_cast<size_t>(k)];
  NeuronId id;
  if (!metric.PickUncovered(*ctx.rng, &id)) {
    return;  // Everything covered: nothing to add (Algorithm 1 line 33).
  }
  Tensor seed(trace.outputs[static_cast<size_t>(id.layer)].shape());
  model.layer(id.layer).AddNeuronSeed(&seed, id.index, ctx.lambda2);
  grad->AddInPlace(model.BackwardInput(trace, id.layer, std::move(seed)));
}

void CoverageObjective::AccumulatePlanned(const ObjectiveContext& ctx, int k,
                                          ExecutionPlan& plan, int pos,
                                          Tensor* grad) const {
  if (ctx.lambda2 == 0.0f) {
    return;
  }
  const Model& model = plan.model();
  const CoverageMetric& metric = *(*ctx.metrics)[static_cast<size_t>(k)];
  NeuronId id;
  if (!metric.PickUncovered(*ctx.rng, &id)) {
    return;
  }
  Tensor& seed = plan.AcquireSeed(id.layer);
  model.layer(id.layer).AddNeuronSeed(&seed, id.index, ctx.lambda2);
  grad->AddInPlace(plan.BackwardSample(pos, id.layer, seed));
}

CompositeObjective::CompositeObjective(std::string name,
                                       std::vector<std::unique_ptr<Objective>> parts)
    : name_(std::move(name)), parts_(std::move(parts)) {}

void CompositeObjective::Accumulate(const ObjectiveContext& ctx, int k,
                                    const ForwardTrace& trace, Tensor* grad) const {
  for (const auto& part : parts_) {
    part->Accumulate(ctx, k, trace, grad);
  }
}

bool CompositeObjective::NeedsTrace(const ObjectiveContext& ctx, int k) const {
  for (const auto& part : parts_) {
    if (part->NeedsTrace(ctx, k)) {
      return true;
    }
  }
  return false;
}

void CompositeObjective::AccumulatePlanned(const ObjectiveContext& ctx, int k,
                                           ExecutionPlan& plan, int pos,
                                           Tensor* grad) const {
  for (const auto& part : parts_) {
    part->AccumulatePlanned(ctx, k, plan, pos, grad);
  }
}

std::unique_ptr<Objective> MakeJointObjective() {
  std::vector<std::unique_ptr<Objective>> parts;
  parts.push_back(std::make_unique<DifferentialObjective>());
  parts.push_back(std::make_unique<CoverageObjective>());
  return std::make_unique<CompositeObjective>("joint", std::move(parts));
}

namespace {

NamedRegistry<ObjectiveFactory>& ObjectiveRegistry() {
  static auto* registry = new NamedRegistry<ObjectiveFactory>({
      {"joint", [] { return MakeJointObjective(); }},
      {"differential",
       []() -> std::unique_ptr<Objective> { return std::make_unique<DifferentialObjective>(); }},
      {"fgsm", []() -> std::unique_ptr<Objective> { return std::make_unique<FgsmObjective>(); }},
      {"random",
       []() -> std::unique_ptr<Objective> {
         return std::make_unique<RandomPerturbationObjective>();
       }},
  });
  return *registry;
}

}  // namespace

void RegisterObjective(const std::string& name, ObjectiveFactory factory) {
  ObjectiveRegistry().Register(name, std::move(factory));
}

std::unique_ptr<Objective> MakeObjective(const std::string& name) {
  return ObjectiveRegistry().Get(name, "objective")();
}

std::vector<std::string> ObjectiveNames() { return ObjectiveRegistry().Names(); }

}  // namespace dx

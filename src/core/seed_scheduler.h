// SeedScheduler: the pluggable seed ordering/recycling policy of the engine.
//
// The session asks the scheduler which seed to try next and reports back the
// outcome (difference found? how much coverage was gained?) at every sync
// point, in schedule order — so a scheduler sees a deterministic feedback
// stream regardless of how many workers processed the seeds in parallel.
//
// Built-ins, selected by name through MakeSeedScheduler:
//   "roundrobin"     Algorithm 1's policy: cycle the seed list in order for
//                    up to max_passes passes.
//   "coverage-gain"  First pass in order, then each later pass replays seeds
//                    in descending order of accumulated coverage gain (plus
//                    a bonus for having produced a difference), recycling
//                    productive seeds first.
#ifndef DX_SRC_CORE_SEED_SCHEDULER_H_
#define DX_SRC_CORE_SEED_SCHEDULER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace dx {

class BinaryReader;
class BinaryWriter;

class SeedScheduler {
 public:
  virtual ~SeedScheduler() = default;

  virtual std::string name() const = 0;

  // Called once at the start of a run.
  virtual void Reset(int num_seeds, int max_passes) = 0;

  // Index of the next seed to schedule, or -1 when the run is exhausted.
  // Called serially by the session coordinator (never concurrently).
  virtual int Next() = 0;

  // Outcome feedback for a scheduled seed, reported in schedule order.
  virtual void Report(int seed_index, bool found_test, float coverage_gain);

  // ---- Optional state snapshots (O(delta) resume) --------------------------
  //
  // A scheduler that can serialize its full decision state lets a resumed
  // session restore it directly from the corpus checkpoint instead of
  // replaying the whole journal through Next()/Report() — O(1) in history
  // length. The contract: LoadState(SaveState()) after Reset(n, p) with the
  // same (n, p) must leave the scheduler emitting the exact Next() stream the
  // original would have. Plug-ins that don't override these keep the
  // journal-replay fallback (SaveState/LoadState then throw std::logic_error).
  virtual bool SupportsSnapshot() const { return false; }
  virtual void SaveState(BinaryWriter& writer) const;
  virtual void LoadState(BinaryReader& reader);
};

// Algorithm 1: cycle seeds 0..n-1, up to max_passes times.
class RoundRobinScheduler : public SeedScheduler {
 public:
  std::string name() const override { return "roundrobin"; }
  void Reset(int num_seeds, int max_passes) override;
  int Next() override;
  bool SupportsSnapshot() const override { return true; }
  void SaveState(BinaryWriter& writer) const override;
  void LoadState(BinaryReader& reader) override;

 private:
  int num_seeds_ = 0;
  int max_passes_ = 0;
  int pass_ = 0;
  int cursor_ = 0;
};

// Pass 1 in order; later passes sorted by accumulated coverage gain.
class CoverageGainScheduler : public SeedScheduler {
 public:
  // `found_bonus` is added to a seed's score each time it yields a
  // difference-inducing input (keeps productive seeds hot even when coverage
  // has plateaued).
  explicit CoverageGainScheduler(float found_bonus = 1e-4f);

  std::string name() const override { return "coverage-gain"; }
  void Reset(int num_seeds, int max_passes) override;
  int Next() override;
  void Report(int seed_index, bool found_test, float coverage_gain) override;
  bool SupportsSnapshot() const override { return true; }
  void SaveState(BinaryWriter& writer) const override;
  void LoadState(BinaryReader& reader) override;

 private:
  float found_bonus_;
  int num_seeds_ = 0;
  int max_passes_ = 0;
  int pass_ = 0;
  int cursor_ = 0;
  bool need_sort_ = false;
  std::vector<double> score_;
  std::vector<int> order_;
};

// ---- Factory -----------------------------------------------------------------------------

using SeedSchedulerFactory = std::function<std::unique_ptr<SeedScheduler>()>;

// Registers (or replaces) a scheduler under `name` for MakeSeedScheduler,
// so plug-ins are selectable by string key from the CLI and SessionConfig.
void RegisterSeedScheduler(const std::string& name, SeedSchedulerFactory factory);

// Builds the scheduler registered under `name` ("roundrobin",
// "coverage-gain"; the aliases "round-robin" and "gain" are accepted);
// throws std::invalid_argument for unknown names.
std::unique_ptr<SeedScheduler> MakeSeedScheduler(const std::string& name);

// Registered scheduler names, sorted (for --list-schedulers and validation).
std::vector<std::string> SeedSchedulerNames();

}  // namespace dx

#endif  // DX_SRC_CORE_SEED_SCHEDULER_H_

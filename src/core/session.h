// Session: the engine's entry point, wiring models + constraint +
// CoverageMetric + Objective + SeedScheduler into one run loop, with
// optional seed-level parallelism.
//
// A session runs Algorithm 1's outer loop over the seed stream the scheduler
// emits. Seeds execute on the batched Executor (src/core/executor.h):
// chunks of `batch_size` seeds ascend in lockstep, so each iteration is one
// batched forward pass per model whose activations are shared by the
// objective gradient, the difference check, and the coverage update —
// exactly one forward per (seed, model, iteration). Results are
// bit-identical for any batch size.
//
// With `workers` > 1, seeds are processed in fixed-size batches
// (`sync_interval`) on a thread pool: every task in a batch runs against
// Clone()d coverage trackers frozen at the batch start and its own RNG
// derived from (rng_seed, global task index); after the batch barrier the
// task-local trackers are Merge()d into the session trackers and outcomes
// are reported to the scheduler — all in schedule order. Because neither the
// batch composition, the per-task RNG streams, nor the merge order depend on
// the worker count, a run's results (tests found, coverage, scheduler
// feedback) are identical for any `workers` value given a fixed rng_seed.
//
// The legacy DeepXplore class (deepxplore.h) is a thin facade over Session
// with the paper's fixed wiring (neuron coverage + joint objective +
// round-robin scheduling, serial).
#ifndef DX_SRC_CORE_SESSION_H_
#define DX_SRC_CORE_SESSION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/constraints/constraint.h"
#include "src/core/objective.h"
#include "src/core/seed_scheduler.h"
#include "src/coverage/coverage_metric.h"
#include "src/nn/model.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace dx {

class Corpus;
class Executor;
struct ExecutorProfile;

// The paper's per-run hyperparameters (Algorithm 1 / Table 2). Kept under
// its historical name via the DeepXploreConfig alias below.
struct EngineConfig {
  // λ1: how hard model j's consensus confidence is pushed down relative to
  // keeping the other models up (Equation 2).
  float lambda1 = 1.0f;
  // λ2: weight of the neuron-coverage objective (Equation 3). 0 disables it.
  float lambda2 = 0.1f;
  // s: gradient-ascent step size.
  float step = 10.0f;
  // t and scaling used by the coverage trackers (plus the per-metric knobs).
  CoverageOptions coverage;
  // Gradient-ascent iteration budget per seed.
  int max_iterations_per_seed = 50;
  // Regression difference predicate: |angle_i − angle_j| > steering_eps.
  float steering_eps = 0.2f;
  // RMS-normalize the joint gradient before stepping (the reference
  // implementation's behavior). Disable only for the ablation study — raw
  // gradients vanish once softmax outputs saturate, making s meaningless.
  bool normalize_gradient = true;
  // Fix j (the model pushed away from the consensus) instead of picking one
  // uniformly per seed; -1 keeps Algorithm 1's random choice. Table 2 reports
  // per-DNN difference counts, which targets each model in turn.
  int forced_target_model = -1;
  uint64_t rng_seed = 1234;
};

using DeepXploreConfig = EngineConfig;

// Full session wiring: engine hyperparameters plus the pluggable components
// (by factory name) and the parallelism knobs.
struct SessionConfig {
  EngineConfig engine;
  // CoverageMetric factory key: "neuron", "kmultisection", "topk", ...
  std::string metric = "neuron";
  // Objective factory key: "joint", "differential", "fgsm", "random".
  std::string objective = "joint";
  // SeedScheduler factory key: "roundrobin", "coverage-gain".
  std::string scheduler = "roundrobin";
  // Parallel seed workers; 1 = serial, 0 = hardware concurrency.
  int workers = 1;
  // Seeds per lockstep executor chunk: the width of the batched forward
  // passes (src/core/executor.h). Results are bit-identical for ANY value
  // (batched kernels never reorder a per-sample reduction; asserted by
  // tests), so this is purely a throughput knob. Parallel runs split each
  // sync batch into ceil(sync_interval / batch_size) chunks — keep
  // sync_interval >= workers * batch_size to saturate the workers.
  int batch_size = 8;
  // Seeds per batch between coverage sync points. Fixed (never derived from
  // `workers`) so results are invariant to the worker count; sized to hold
  // sync_interval / batch_size executor chunks, which is the parallel
  // granularity — the default supports 8 workers at the default batch_size.
  // Smaller values tighten scheduler/coverage feedback, larger values expose
  // more parallelism. 0 selects the legacy serial mode: one session RNG
  // threaded through the seed stream and trackers updated in place (the
  // pre-Session DeepXplore semantics, bit-for-bit); requires workers == 1.
  int sync_interval = 64;
  // Run the metric's ProfileSeed pass over the seed pool at the start of
  // Run (k-multisection range profiling); no-op for metrics that don't ask.
  bool profile_from_seeds = true;
  // Collect per-phase wall-time in the batched executor (stack / forward /
  // backward layers / objective accumulate / constraint / coverage — see
  // ExecutorProfile and the CLI's --profile flag). Purely observational:
  // never affects results and is not part of the corpus manifest.
  bool profile_phases = false;
};

struct GeneratedTest {
  Tensor input;                // The difference-inducing input.
  int seed_index = 0;          // Which seed it grew from.
  int iterations = 0;          // Gradient steps taken.
  int deviating_model = 0;     // Index of the model that left the consensus.
  std::vector<int> labels;     // Per-model predicted class (classification).
  std::vector<float> outputs;  // Per-model scalar output (regression).
  // Global schedule position of the task that produced this test. Together
  // with the engine rng_seed it pins the task's RNG stream — the provenance
  // a corpus needs to replay the test deterministically (src/corpus/).
  uint64_t task_ordinal = 0;
  // Wall time from the start of this seed's executor chunk until the test
  // was found. Under batching (batch_size > 1) the chunk ascends several
  // seeds in lockstep, so this includes the co-scheduled seeds' compute —
  // comparable across runs at a fixed batch_size, not across batch sizes.
  double seconds = 0.0;
};

// Progress snapshot handed to RunOptions::on_batch after every completed
// sync batch (checkpoint boundary). Counters are campaign-cumulative: a
// resumed run reports the totals an uninterrupted run would, so consumers
// (daemon status endpoints, the CLI --progress line) never need to poll the
// corpus.
struct RunProgress {
  uint64_t batches = 0;  // Sync batches completed, including restored legs.
  int seeds_tried = 0;
  int seeds_skipped = 0;
  int tests_found = 0;
  int64_t total_iterations = 0;
  int64_t forward_passes = 0;
  float mean_coverage = 0.0f;
  // Active stepping wall time (excludes time a paused campaign sat idle).
  double seconds = 0.0;
  bool done = false;  // A terminal condition (not a leg bound) was hit.
};

struct RunOptions {
  int max_tests = 1 << 30;
  // How many times to cycle through the seed list (Algorithm 1 cycles
  // indefinitely; benches bound it).
  int max_seed_passes = 1;
  double max_seconds = 1e18;
  // Stop when every model's tracker reaches this coverage (> 1 disables).
  float coverage_goal = 1.1f;
  // Stop after this many sync batches (checkpoint boundaries). Unlike the
  // bounds above this leaves the campaign *incomplete*: a corpus-recorded
  // run cut here resumes exactly where it stopped, which is how interrupted
  // or sharded campaign legs are modeled. Per-leg, not stored in the corpus.
  int64_t max_sync_batches = int64_t{1} << 60;
  // Called after every completed sync batch with a progress snapshot. Purely
  // observational — never affects results and is not part of the corpus
  // manifest (requires sync_interval > 0; the legacy serial mode has no
  // batch boundaries to report).
  std::function<void(const RunProgress&)> on_batch;
};

struct RunStats {
  std::vector<GeneratedTest> tests;
  int seeds_tried = 0;
  int seeds_skipped = 0;  // No seed-time consensus, or iteration budget exhausted.
  int64_t total_iterations = 0;
  double seconds = 0.0;
  // Mean coverage across models at the end of the run.
  float mean_coverage = 0.0f;
  // Per-sample model forward passes spent during the run, summed over all
  // models (includes seed profiling). With the batched executor this is
  // exactly one pass per (seed, model, iteration) plus one consensus pass
  // per (seed, model); deterministic for any worker count or batch size.
  // Resumed runs report the cumulative campaign total (checkpointed passes
  // plus this leg's), so the number matches an uninterrupted run.
  int64_t forward_passes = 0;
};

// Outcome of Session::Replay: a deterministic re-run of a recorded campaign
// checked entry-by-entry against the corpus.
struct ReplayResult {
  bool ok = true;
  // Human-readable description of the first divergence (empty when ok).
  std::string mismatch;
  // Stats of the verification re-run (bit-identical to the recorded
  // campaign when ok).
  RunStats stats;
};

class SessionRun;

class Session {
 public:
  // `models` must outlive the session; all must share input/output shapes.
  // Classification models must end in softmax; a 1-element output without
  // softmax is treated as regression. Metric/objective/scheduler are built
  // from the factory names in `config`; throws std::invalid_argument on
  // unknown names or invalid model sets.
  Session(std::vector<Model*> models, const Constraint* constraint, SessionConfig config);
  ~Session();  // Out of line: Executor is an incomplete type here.

  // Replaces the factory-built plug-ins (extension point for custom
  // strategies; call before Run).
  void SetObjective(std::unique_ptr<Objective> objective);
  void SetScheduler(std::unique_ptr<SeedScheduler> scheduler);

  bool regression() const { return regression_; }
  int num_models() const { return static_cast<int>(models_.size()); }
  const Model& model(int k) const { return *models_[static_cast<size_t>(k)]; }
  const SessionConfig& config() const { return config_; }
  const Objective& objective() const { return *objective_; }
  const SeedScheduler& scheduler() const { return *scheduler_; }

  // The session-global coverage tracker of one model.
  CoverageMetric& metric(int model_index) {
    return *metrics_[static_cast<size_t>(model_index)];
  }
  const CoverageMetric& metric(int model_index) const {
    return *metrics_[static_cast<size_t>(model_index)];
  }
  const std::vector<std::unique_ptr<CoverageMetric>>& metrics() const { return metrics_; }

  // Per-model predictions for an input (argmax labels or scalar outputs).
  std::vector<int> PredictLabels(const Tensor& x) const;
  std::vector<float> PredictScalars(const Tensor& x) const;

  // True when the models disagree on x.
  bool IsDifference(const Tensor& x) const;

  // One gradient of the configured objective at x, drawing stochastic
  // choices from `rng` and reading coverage state from `metrics` (pass
  // session metrics() for the serial path, worker-local clones otherwise).
  Tensor ObjectiveGradient(const Tensor& x, int target_model, int consensus, Rng& rng,
                           const std::vector<std::unique_ptr<CoverageMetric>>& metrics) const;
  // Serial convenience: session RNG + session-global trackers.
  Tensor ObjectiveGradient(const Tensor& x, int target_model, int consensus);

  // Algorithm 1's inner loop for one seed against explicit trackers + RNG,
  // executed as a single-seed chunk of the batched Executor (one forward
  // per model per iteration, shared by objective, difference check, and
  // coverage update). Returns nullopt when the seed has no consensus or the
  // iteration budget runs out. On success `metrics` is updated with the
  // generated input's activations.
  std::optional<GeneratedTest> GenerateFromSeed(
      const Tensor& seed, int seed_index, Rng& rng,
      std::vector<std::unique_ptr<CoverageMetric>>& metrics);
  // Serial convenience: session RNG + session-global trackers.
  std::optional<GeneratedTest> GenerateFromSeed(const Tensor& seed, int seed_index);

  // Runs the scheduler's seed stream (in parallel for workers > 1) until an
  // option bound is hit. Results are identical for any worker count.
  RunStats Run(const std::vector<Tensor>& seeds, const RunOptions& options);

  // Durable variant: records every difference-inducing input (with
  // provenance), the scheduler journal, and per-batch coverage checkpoints
  // into `corpus` (src/corpus/corpus.h). An uninitialized corpus starts a
  // new campaign (the manifest captures config + options + seeds); a corpus
  // with a checkpoint RESUMES it — coverage state, scheduler position, and
  // counters are restored and the run continues at the next sync batch,
  // producing results bit-identical to an uninterrupted run (forward_passes
  // and coverage are cumulative, never double-counted). The session should
  // be freshly constructed when recording or resuming; config and seeds
  // must match the manifest (std::invalid_argument otherwise). Requires
  // sync_interval > 0. batch_size and workers may differ freely between
  // legs — results are invariant to both.
  RunStats Run(const std::vector<Tensor>& seeds, const RunOptions& options,
               Corpus* corpus);

  // Opens an incrementally steppable run (see SessionRun below): the same
  // semantics as Run(seeds, options, corpus) but the caller drives the sync
  // batches one Step() at a time and may pause indefinitely between them.
  // `seeds` must outlive the returned run. Requires sync_interval > 0 (the
  // legacy serial mode has no batch boundaries to step at); throws
  // std::invalid_argument otherwise, or on a corpus/config mismatch.
  std::unique_ptr<SessionRun> BeginRun(const std::vector<Tensor>& seeds,
                                       const RunOptions& options, Corpus* corpus);

  // Borrows an external thread pool for parallel sync batches instead of the
  // session-owned pool sized from config().workers — how a service
  // multiplexes many concurrent sessions over one shared pool. Non-owning;
  // pass nullptr to return to the config-sized pool. Never affects results
  // (they are worker-count invariant), only where the work runs.
  void SetWorkerPool(ThreadPool* pool) { external_pool_ = pool; }

  // Deterministic replay: re-executes the recorded campaign from scratch
  // (corpus-stored seeds, options, and leg boundary) through the batched
  // Executor and verifies bit-identical results — every generated test is
  // compared field-by-field (input bits, labels/outputs, iterations, RNG
  // provenance) against the stored entries, stored inputs are re-predicted,
  // and the final coverage state, difference counts, and forward-pass
  // counters are compared against the checkpoint. Resets this session's
  // coverage state. The session must be constructed with the corpus' config
  // (std::invalid_argument otherwise; batch_size/workers free).
  ReplayResult Replay(const Corpus& corpus);

  // Feeds every seed's trace to the metrics' ProfileSeed (k-multisection
  // range calibration). Run() calls this automatically once when the metric
  // asks for it and config().profile_from_seeds is set.
  void ProfileSeeds(const std::vector<Tensor>& seeds);

  // Mean coverage across the per-model trackers.
  float MeanCoverage() const;

  // Per-phase executor wall-time accumulated so far (meaningful when
  // config().profile_phases is set; zeros otherwise).
  ExecutorProfile ExecutorPhases() const;

  // Rebuilds fresh (empty, unprofiled) coverage trackers. Replay and the
  // corpus maintenance passes (src/corpus/maintenance.h) call this before
  // re-deriving coverage state from scratch.
  void ResetRunState();

 private:
  friend class SessionRun;  // The lifted run state drives the private parts.

  struct ReplayCursor;  // Entry-by-entry verifier state (session.cc).

  std::vector<std::unique_ptr<CoverageMetric>> CloneMetrics() const;
  int EffectiveWorkers() const;
  // The one run loop behind Run/Replay: `corpus` (optional) receives
  // entries/journal/checkpoints, `replay` (optional) verifies generated
  // tests against a recorded corpus as they appear.
  RunStats RunImpl(const std::vector<Tensor>& seeds, const RunOptions& options,
                   Corpus* corpus, ReplayCursor* replay);
  // Throws std::invalid_argument unless the corpus manifest matches this
  // session's result-affecting config, the campaign bounds, and the seeds.
  void ValidateCorpus(const Corpus& corpus, const std::vector<Tensor>& seeds,
                      const RunOptions& options) const;
  // Restores coverage state + scheduler position + counters from the corpus
  // checkpoint (a scheduler snapshot blob restores the scheduler in O(1);
  // otherwise journal replay reconstructs it exactly).
  void RestoreFromCheckpoint(const Corpus& corpus, const std::vector<Tensor>& seeds,
                             const RunOptions& options, RunStats* stats);

  std::vector<Model*> models_;
  const Constraint* constraint_;
  SessionConfig config_;
  bool regression_;
  std::vector<std::unique_ptr<CoverageMetric>> metrics_;
  std::unique_ptr<Objective> objective_;
  std::unique_ptr<SeedScheduler> scheduler_;
  std::unique_ptr<Executor> executor_;  // Batched execution engine (default path).
  Rng rng_;  // Serial-path RNG (facade compatibility).
  std::unique_ptr<ThreadPool> pool_;
  ThreadPool* external_pool_ = nullptr;  // Borrowed via SetWorkerPool.
  bool profiled_ = false;
};

// The state of one in-flight Session run, lifted out of the run loop's stack
// frame into an addressable object: scheduler position (held by the session's
// scheduler), global task counter, cumulative RunStats, forward-pass
// accounting, and the corpus/replay cursors. Session::Run is now a loop over
// Step(); a service holds one SessionRun per campaign and interleaves Step()
// calls from a shared worker pool. Step boundaries are exactly the sync-batch
// boundaries results are already deterministic at, so a run paused between
// steps — for seconds or across a daemon restart via its corpus checkpoint —
// finishes bit-identical to an uninterrupted Session::Run at any worker
// count.
//
// Not thread-safe: Step/Snapshot/stats must be externally serialized (they
// may run from different threads over time — a mutex or queue handoff
// provides the needed ordering). Progress() is safe to call concurrently
// with nothing; callers wanting lock-free status should cache the snapshots
// on_batch hands out. The Session, seed vector, and corpus must outlive the
// run, and at most one SessionRun per Session may be live.
class SessionRun {
 public:
  ~SessionRun();
  SessionRun(const SessionRun&) = delete;
  SessionRun& operator=(const SessionRun&) = delete;

  // Executes one sync batch (scheduling, lockstep chunks, merge/report,
  // corpus append + checkpoint, on_batch callback). Returns true when the
  // batch ran, false when the campaign is complete (scheduler exhausted or a
  // terminal bound was already hit) — after false, done() is true and the
  // corpus checkpoint (if any) is stamped complete.
  bool Step();

  // True once a terminal condition was hit: max_tests, coverage goal,
  // scheduler exhausted, or replay divergence. Leg bounds (max_sync_batches,
  // max_seconds) never set this — they are the caller's loop conditions.
  bool done() const { return done_; }

  // Live view of the accumulated stats (seconds/mean_coverage/forward_passes
  // are only stamped by Snapshot).
  const RunStats& stats() const { return stats_; }

  // The stats a completed Run call would return right now: counters plus the
  // freshly stamped seconds, mean coverage, and cumulative forward passes.
  RunStats Snapshot() const;

  // Lightweight counters-only snapshot (what on_batch receives).
  RunProgress Progress() const;

  // Active stepping wall time so far (the max_seconds bound is enforced
  // against this, so paused time never counts against a campaign).
  double active_seconds() const { return active_seconds_; }

 private:
  friend class Session;

  SessionRun(Session* session, const std::vector<Tensor>* seeds, RunOptions options,
             Corpus* corpus, Session::ReplayCursor* replay);

  // forward_offset_ - forward_base_ + live model counters: the campaign-total
  // forward pass count across resume legs.
  int64_t CumulativeForwardPasses() const;

  Session* session_;
  const std::vector<Tensor>* seeds_;
  RunOptions options_;
  Corpus* corpus_;
  Session::ReplayCursor* replay_;
  RunStats stats_;
  uint64_t task_counter_ = 0;
  uint64_t batches_ = 0;        // Campaign-total sync batches (incl. restored).
  int64_t forward_base_ = 0;    // Model counters at construction.
  int64_t forward_offset_ = 0;  // Passes accumulated by earlier legs.
  double active_seconds_ = 0.0;
  bool done_ = false;
};

}  // namespace dx

#endif  // DX_SRC_CORE_SESSION_H_

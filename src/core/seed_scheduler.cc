#include "src/core/seed_scheduler.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "src/util/registry.h"

namespace dx {

void SeedScheduler::Report(int seed_index, bool found_test, float coverage_gain) {
  (void)seed_index;
  (void)found_test;
  (void)coverage_gain;
}

void RoundRobinScheduler::Reset(int num_seeds, int max_passes) {
  num_seeds_ = num_seeds;
  max_passes_ = max_passes;
  pass_ = 0;
  cursor_ = 0;
}

int RoundRobinScheduler::Next() {
  if (num_seeds_ <= 0 || pass_ >= max_passes_) {
    return -1;
  }
  const int index = cursor_;
  if (++cursor_ >= num_seeds_) {
    cursor_ = 0;
    ++pass_;
  }
  return index;
}

CoverageGainScheduler::CoverageGainScheduler(float found_bonus)
    : found_bonus_(found_bonus) {}

void CoverageGainScheduler::Reset(int num_seeds, int max_passes) {
  num_seeds_ = num_seeds;
  max_passes_ = max_passes;
  pass_ = 0;
  cursor_ = 0;
  need_sort_ = false;
  score_.assign(static_cast<size_t>(num_seeds), 0.0);
  order_.resize(static_cast<size_t>(num_seeds));
  std::iota(order_.begin(), order_.end(), 0);
}

int CoverageGainScheduler::Next() {
  if (num_seeds_ <= 0 || pass_ >= max_passes_) {
    return -1;
  }
  if (need_sort_) {
    // Replay the most productive seeds first this pass. Sorting lazily here
    // — not at the wrap — lets the previous pass's final batch Report its
    // outcomes first (the session syncs at pass boundaries). stable_sort
    // keeps the previous order among ties, so the schedule is deterministic.
    std::stable_sort(order_.begin(), order_.end(), [this](int a, int b) {
      return score_[static_cast<size_t>(a)] > score_[static_cast<size_t>(b)];
    });
    need_sort_ = false;
  }
  const int index = order_[static_cast<size_t>(cursor_)];
  if (++cursor_ >= num_seeds_) {
    cursor_ = 0;
    ++pass_;
    need_sort_ = true;
  }
  return index;
}

void CoverageGainScheduler::Report(int seed_index, bool found_test, float coverage_gain) {
  if (seed_index < 0 || seed_index >= num_seeds_) {
    return;
  }
  score_[static_cast<size_t>(seed_index)] +=
      static_cast<double>(coverage_gain) + (found_test ? found_bonus_ : 0.0);
}

namespace {

NamedRegistry<SeedSchedulerFactory>& SchedulerRegistry() {
  static auto* registry = new NamedRegistry<SeedSchedulerFactory>({
      {"roundrobin",
       []() -> std::unique_ptr<SeedScheduler> {
         return std::make_unique<RoundRobinScheduler>();
       }},
      {"coverage-gain",
       []() -> std::unique_ptr<SeedScheduler> {
         return std::make_unique<CoverageGainScheduler>();
       }},
  });
  return *registry;
}

}  // namespace

void RegisterSeedScheduler(const std::string& name, SeedSchedulerFactory factory) {
  SchedulerRegistry().Register(name, std::move(factory));
}

std::unique_ptr<SeedScheduler> MakeSeedScheduler(const std::string& name) {
  // Historical aliases, kept out of the registry so listings stay canonical.
  // A plug-in registered under the literal alias name takes precedence.
  std::string key = name;
  if (!SchedulerRegistry().Contains(key)) {
    key = name == "round-robin" ? "roundrobin" : (name == "gain" ? "coverage-gain" : name);
  }
  return SchedulerRegistry().Get(key, "seed scheduler")();
}

std::vector<std::string> SeedSchedulerNames() { return SchedulerRegistry().Names(); }

}  // namespace dx

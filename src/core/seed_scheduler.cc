#include "src/core/seed_scheduler.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "src/util/registry.h"
#include "src/util/serialize.h"

namespace dx {

void SeedScheduler::Report(int seed_index, bool found_test, float coverage_gain) {
  (void)seed_index;
  (void)found_test;
  (void)coverage_gain;
}

void SeedScheduler::SaveState(BinaryWriter& writer) const {
  (void)writer;
  throw std::logic_error("SeedScheduler '" + name() + "' does not support snapshots");
}

void SeedScheduler::LoadState(BinaryReader& reader) {
  (void)reader;
  throw std::logic_error("SeedScheduler '" + name() + "' does not support snapshots");
}

void RoundRobinScheduler::Reset(int num_seeds, int max_passes) {
  num_seeds_ = num_seeds;
  max_passes_ = max_passes;
  pass_ = 0;
  cursor_ = 0;
}

int RoundRobinScheduler::Next() {
  if (num_seeds_ <= 0 || pass_ >= max_passes_) {
    return -1;
  }
  const int index = cursor_;
  if (++cursor_ >= num_seeds_) {
    cursor_ = 0;
    ++pass_;
  }
  return index;
}

void RoundRobinScheduler::SaveState(BinaryWriter& writer) const {
  writer.WriteI64(num_seeds_);
  writer.WriteI64(max_passes_);
  writer.WriteI64(pass_);
  writer.WriteI64(cursor_);
}

void RoundRobinScheduler::LoadState(BinaryReader& reader) {
  const int64_t num_seeds = reader.ReadI64();
  const int64_t max_passes = reader.ReadI64();
  if (num_seeds != num_seeds_ || max_passes != max_passes_) {
    throw std::runtime_error("RoundRobinScheduler::LoadState: snapshot was taken for a different run shape");
  }
  pass_ = static_cast<int>(reader.ReadI64());
  cursor_ = static_cast<int>(reader.ReadI64());
}

CoverageGainScheduler::CoverageGainScheduler(float found_bonus)
    : found_bonus_(found_bonus) {}

void CoverageGainScheduler::Reset(int num_seeds, int max_passes) {
  num_seeds_ = num_seeds;
  max_passes_ = max_passes;
  pass_ = 0;
  cursor_ = 0;
  need_sort_ = false;
  score_.assign(static_cast<size_t>(num_seeds), 0.0);
  order_.resize(static_cast<size_t>(num_seeds));
  std::iota(order_.begin(), order_.end(), 0);
}

int CoverageGainScheduler::Next() {
  if (num_seeds_ <= 0 || pass_ >= max_passes_) {
    return -1;
  }
  if (need_sort_) {
    // Replay the most productive seeds first this pass. Sorting lazily here
    // — not at the wrap — lets the previous pass's final batch Report its
    // outcomes first (the session syncs at pass boundaries). stable_sort
    // keeps the previous order among ties, so the schedule is deterministic.
    std::stable_sort(order_.begin(), order_.end(), [this](int a, int b) {
      return score_[static_cast<size_t>(a)] > score_[static_cast<size_t>(b)];
    });
    need_sort_ = false;
  }
  const int index = order_[static_cast<size_t>(cursor_)];
  if (++cursor_ >= num_seeds_) {
    cursor_ = 0;
    ++pass_;
    need_sort_ = true;
  }
  return index;
}

void CoverageGainScheduler::Report(int seed_index, bool found_test, float coverage_gain) {
  if (seed_index < 0 || seed_index >= num_seeds_) {
    return;
  }
  score_[static_cast<size_t>(seed_index)] +=
      static_cast<double>(coverage_gain) + (found_test ? found_bonus_ : 0.0);
}

void CoverageGainScheduler::SaveState(BinaryWriter& writer) const {
  // Serializing the pre-sort state (need_sort_ + raw scores + current order)
  // is exactly equivalent to journal replay: the sort is lazy in Next(), so a
  // restored scheduler re-runs it from identical inputs on its first Next().
  writer.WriteI64(num_seeds_);
  writer.WriteI64(max_passes_);
  writer.WriteI64(pass_);
  writer.WriteI64(cursor_);
  writer.WriteU32(need_sort_ ? 1 : 0);
  writer.WriteU64(score_.size());
  for (double s : score_) {
    writer.WriteF64(s);
  }
  writer.WriteInts(order_);
}

void CoverageGainScheduler::LoadState(BinaryReader& reader) {
  const int64_t num_seeds = reader.ReadI64();
  const int64_t max_passes = reader.ReadI64();
  if (num_seeds != num_seeds_ || max_passes != max_passes_) {
    throw std::runtime_error("CoverageGainScheduler::LoadState: snapshot was taken for a different run shape");
  }
  pass_ = static_cast<int>(reader.ReadI64());
  cursor_ = static_cast<int>(reader.ReadI64());
  need_sort_ = reader.ReadU32() != 0;
  const uint64_t n = reader.ReadU64();
  if (n != static_cast<uint64_t>(num_seeds_)) {
    throw std::runtime_error("CoverageGainScheduler::LoadState: score table size mismatch");
  }
  score_.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    score_[i] = reader.ReadF64();
  }
  order_ = reader.ReadInts();
  if (order_.size() != static_cast<size_t>(num_seeds_)) {
    throw std::runtime_error("CoverageGainScheduler::LoadState: order table size mismatch");
  }
}

namespace {

NamedRegistry<SeedSchedulerFactory>& SchedulerRegistry() {
  static auto* registry = new NamedRegistry<SeedSchedulerFactory>({
      {"roundrobin",
       []() -> std::unique_ptr<SeedScheduler> {
         return std::make_unique<RoundRobinScheduler>();
       }},
      {"coverage-gain",
       []() -> std::unique_ptr<SeedScheduler> {
         return std::make_unique<CoverageGainScheduler>();
       }},
  });
  return *registry;
}

}  // namespace

void RegisterSeedScheduler(const std::string& name, SeedSchedulerFactory factory) {
  SchedulerRegistry().Register(name, std::move(factory));
}

std::unique_ptr<SeedScheduler> MakeSeedScheduler(const std::string& name) {
  // Historical aliases, kept out of the registry so listings stay canonical.
  // A plug-in registered under the literal alias name takes precedence.
  std::string key = name;
  if (!SchedulerRegistry().Contains(key)) {
    key = name == "round-robin" ? "roundrobin" : (name == "gain" ? "coverage-gain" : name);
  }
  return SchedulerRegistry().Get(key, "seed scheduler")();
}

std::vector<std::string> SeedSchedulerNames() { return SchedulerRegistry().Names(); }

}  // namespace dx

// DeepXplore: the paper-shaped facade over the pluggable Session engine.
//
// Historically this class WAS the engine: one monolithic joint-optimization
// loop (paper §4.2, Algorithm 1) hard-wired to threshold neuron coverage and
// serial seed processing. The engine now lives in src/core/session.h behind
// three interfaces — CoverageMetric (src/coverage/coverage_metric.h),
// Objective (src/core/objective.h), and SeedScheduler
// (src/core/seed_scheduler.h) — plus a parallel multi-worker runner.
//
// DeepXplore remains as the backward-compatible entry point with the paper's
// fixed wiring: threshold neuron coverage ("neuron"), the joint objective
// (Equation 4: differential + coverage terms), round-robin seed scheduling,
// and a single worker. Every method below delegates to the underlying
// Session, which is exposed via session() for code that wants to mix the old
// construction API with new capabilities. New code should construct a
// Session directly and pick metric/objective/scheduler/workers explicitly.
//
// The semantics of the joint optimization are unchanged: gradient ascent on
//
//   obj(x) = (Σ_{k≠j} F_k(x)[c] − λ1 · F_j(x)[c]) + λ2 · f_n(x)
//
// where c is the seed-time consensus class (the raw output for regression
// models), j is a randomly chosen model to push away from the consensus, and
// f_n is the output of a currently-uncovered neuron (one per model per
// iteration). The constraint rewrites the gradient before each step and
// projects the input back onto the valid domain after it. A
// difference-inducing input is found when the models' predictions disagree:
// different argmax classes for classifiers, steering angles more than
// `steering_eps` apart for regressors.
#ifndef DX_SRC_CORE_DEEPXPLORE_H_
#define DX_SRC_CORE_DEEPXPLORE_H_

#include <optional>
#include <vector>

#include "src/constraints/constraint.h"
#include "src/core/session.h"
#include "src/coverage/neuron_coverage.h"
#include "src/nn/model.h"

namespace dx {

// DeepXploreConfig is an alias of EngineConfig (src/core/session.h), and
// GeneratedTest / RunOptions / RunStats are shared with Session.

class DeepXplore {
 public:
  // `models` must outlive the engine; all must share the input shape.
  // Classification models must end in softmax; a 1-element output without
  // softmax is treated as regression.
  DeepXplore(std::vector<Model*> models, const Constraint* constraint,
             DeepXploreConfig config);

  bool regression() const { return session_.regression(); }
  int num_models() const { return session_.num_models(); }
  NeuronCoverageTracker& tracker(int model_index) {
    // The facade always wires the "neuron" metric, so the downcast is safe.
    return static_cast<NeuronCoverageTracker&>(session_.metric(model_index));
  }
  const DeepXploreConfig& config() const { return session_.config().engine; }

  // The pluggable engine underneath (metric/objective/scheduler injection,
  // parallel runs).
  Session& session() { return session_; }
  const Session& session() const { return session_; }

  // Per-model predictions for an input (argmax labels or scalar outputs).
  std::vector<int> PredictLabels(const Tensor& x) const {
    return session_.PredictLabels(x);
  }
  std::vector<float> PredictScalars(const Tensor& x) const {
    return session_.PredictScalars(x);
  }

  // True when the models disagree on x.
  bool IsDifference(const Tensor& x) const { return session_.IsDifference(x); }

  // One gradient of the joint objective at x (exposed for tests/ablations).
  // `target_model` is j; `consensus` is c (ignored for regression).
  Tensor JointGradient(const Tensor& x, int target_model, int consensus) {
    return session_.ObjectiveGradient(x, target_model, consensus);
  }

  // Algorithm 1's inner loop for one seed. Returns nullopt when the seed has
  // no consensus or the iteration budget runs out. On success the coverage
  // trackers are updated with the generated input's activations.
  std::optional<GeneratedTest> GenerateFromSeed(const Tensor& seed, int seed_index) {
    return session_.GenerateFromSeed(seed, seed_index);
  }

  // Cycles through `seeds` generating tests until an option bound is hit.
  RunStats Run(const std::vector<Tensor>& seeds, const RunOptions& options) {
    return session_.Run(seeds, options);
  }

  // Mean coverage across the per-model trackers.
  float MeanCoverage() const { return session_.MeanCoverage(); }

 private:
  Session session_;
};

}  // namespace dx

#endif  // DX_SRC_CORE_DEEPXPLORE_H_

// DeepXplore: joint-optimization test generation (paper §4.2, Algorithm 1).
//
// Given n >= 2 models with the same input domain, a domain constraint, and a
// stream of seed inputs, the engine runs gradient ascent on
//
//   obj(x) = (Σ_{k≠j} F_k(x)[c] − λ1 · F_j(x)[c]) + λ2 · f_n(x)
//
// where c is the seed-time consensus class (the raw output for regression
// models), j is a randomly chosen model to push away from the consensus, and
// f_n is the output of a currently-uncovered neuron (one per model per
// iteration). The constraint rewrites the gradient before each step and
// projects the input back onto the valid domain after it.
//
// A difference-inducing input is found when the models' predictions disagree:
// different argmax classes for classifiers, steering angles more than
// `steering_eps` apart for regressors.
#ifndef DX_SRC_CORE_DEEPXPLORE_H_
#define DX_SRC_CORE_DEEPXPLORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/constraints/constraint.h"
#include "src/coverage/neuron_coverage.h"
#include "src/nn/model.h"
#include "src/util/rng.h"

namespace dx {

struct DeepXploreConfig {
  // λ1: how hard model j's consensus confidence is pushed down relative to
  // keeping the other models up (Equation 2).
  float lambda1 = 1.0f;
  // λ2: weight of the neuron-coverage objective (Equation 3). 0 disables it.
  float lambda2 = 0.1f;
  // s: gradient-ascent step size.
  float step = 10.0f;
  // t and scaling used for the coverage trackers.
  CoverageOptions coverage;
  // Gradient-ascent iteration budget per seed.
  int max_iterations_per_seed = 50;
  // Regression difference predicate: |angle_i − angle_j| > steering_eps.
  float steering_eps = 0.2f;
  // RMS-normalize the joint gradient before stepping (the reference
  // implementation's behavior). Disable only for the ablation study — raw
  // gradients vanish once softmax outputs saturate, making s meaningless.
  bool normalize_gradient = true;
  // Fix j (the model pushed away from the consensus) instead of picking one
  // uniformly per seed; -1 keeps Algorithm 1's random choice. Table 2 reports
  // per-DNN difference counts, which targets each model in turn.
  int forced_target_model = -1;
  uint64_t rng_seed = 1234;
};

struct GeneratedTest {
  Tensor input;                // The difference-inducing input.
  int seed_index = 0;          // Which seed it grew from.
  int iterations = 0;          // Gradient steps taken.
  int deviating_model = 0;     // Index of the model that left the consensus.
  std::vector<int> labels;     // Per-model predicted class (classification).
  std::vector<float> outputs;  // Per-model scalar output (regression).
  double seconds = 0.0;        // Wall time to find this test.
};

struct RunOptions {
  int max_tests = 1 << 30;
  // How many times to cycle through the seed list (Algorithm 1 cycles
  // indefinitely; benches bound it).
  int max_seed_passes = 1;
  double max_seconds = 1e18;
  // Stop when every model's tracker reaches this coverage (> 1 disables).
  float coverage_goal = 1.1f;
};

struct RunStats {
  std::vector<GeneratedTest> tests;
  int seeds_tried = 0;
  int seeds_skipped = 0;  // No seed-time consensus, or iteration budget exhausted.
  int64_t total_iterations = 0;
  double seconds = 0.0;
  // Mean coverage across models at the end of the run.
  float mean_coverage = 0.0f;
};

class DeepXplore {
 public:
  // `models` must outlive the engine; all must share the input shape.
  // Classification models must end in softmax; a 1-element output without
  // softmax is treated as regression.
  DeepXplore(std::vector<Model*> models, const Constraint* constraint,
             DeepXploreConfig config);

  bool regression() const { return regression_; }
  int num_models() const { return static_cast<int>(models_.size()); }
  NeuronCoverageTracker& tracker(int model_index) {
    return trackers_[static_cast<size_t>(model_index)];
  }
  const DeepXploreConfig& config() const { return config_; }

  // Per-model predictions for an input (argmax labels or scalar outputs).
  std::vector<int> PredictLabels(const Tensor& x) const;
  std::vector<float> PredictScalars(const Tensor& x) const;

  // True when the models disagree on x.
  bool IsDifference(const Tensor& x) const;

  // One gradient of the joint objective at x (exposed for tests/ablations).
  // `target_model` is j; `consensus` is c (ignored for regression).
  Tensor JointGradient(const Tensor& x, int target_model, int consensus);

  // Algorithm 1's inner loop for one seed. Returns nullopt when the seed has
  // no consensus or the iteration budget runs out. On success the coverage
  // trackers are updated with the generated input's activations.
  std::optional<GeneratedTest> GenerateFromSeed(const Tensor& seed, int seed_index);

  // Cycles through `seeds` generating tests until an option bound is hit.
  RunStats Run(const std::vector<Tensor>& seeds, const RunOptions& options);

  // Mean coverage across the per-model trackers.
  float MeanCoverage() const;

 private:
  // Adds w * d(output[c])/dx (or w * d(output[0])/dx for regression).
  void AccumulateOutputGradient(const Model& model, const ForwardTrace& trace, int consensus,
                                float weight, Tensor* grad) const;
  // Adds λ2 * d(neuron)/dx for one uncovered neuron of `model`.
  void AccumulateNeuronGradient(const Model& model, const NeuronCoverageTracker& tracker,
                                const ForwardTrace& trace, Tensor* grad);

  std::vector<Model*> models_;
  const Constraint* constraint_;
  DeepXploreConfig config_;
  bool regression_;
  std::vector<NeuronCoverageTracker> trackers_;
  Rng rng_;
};

}  // namespace dx

#endif  // DX_SRC_CORE_DEEPXPLORE_H_

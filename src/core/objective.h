// Objective: the pluggable per-iteration gradient contribution of the engine.
//
// Each gradient-ascent step the session forwards the current input through
// every model and asks the objective to accumulate d(objective)/d(input) into
// the joint gradient, one model at a time. The paper's joint objective
// (Equation 4) is the composition of two plug-ins:
//
//   DifferentialObjective   Σ_{k≠j} F_k(x)[c] − λ1 · F_j(x)[c]   (Equation 2)
//   CoverageObjective       λ2 · f_n(x), one uncovered neuron     (Equation 3)
//
// Baseline strategies (FGSM adversarial search, random perturbation search)
// implement the same interface — see src/baselines/ — so every strategy runs
// through the one Session loop instead of forked code paths. Objectives are
// selected by name through MakeObjective ("joint", "differential", "fgsm",
// "random") or injected directly via Session::SetObjective.
//
// Objectives must be stateless across calls (all mutable inputs arrive via
// ObjectiveContext): one instance is shared by all parallel workers.
#ifndef DX_SRC_CORE_OBJECTIVE_H_
#define DX_SRC_CORE_OBJECTIVE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/coverage/coverage_metric.h"
#include "src/nn/model.h"

namespace dx {

class ExecutionPlan;
class Rng;

// Everything an objective may read for one gradient evaluation. Pointers are
// non-owning and valid only for the duration of the Accumulate call.
struct ObjectiveContext {
  const std::vector<Model*>* models = nullptr;
  // Per-model coverage trackers, aligned with `models` (the worker-local
  // clones under a parallel run).
  const std::vector<std::unique_ptr<CoverageMetric>>* metrics = nullptr;
  int target_model = 0;  // j: the model pushed away from the consensus.
  int consensus = 0;     // c: the seed-time consensus class (classification).
  bool regression = false;
  float lambda1 = 1.0f;
  float lambda2 = 0.1f;
  Rng* rng = nullptr;
};

class Objective {
 public:
  virtual ~Objective() = default;

  virtual std::string name() const = 0;

  // Adds this objective's gradient contribution for model `k`, evaluated at
  // `trace` (model k's forward pass of the current input), into `grad`
  // (shaped like the model input).
  virtual void Accumulate(const ObjectiveContext& ctx, int k, const ForwardTrace& trace,
                          Tensor* grad) const = 0;

  // True when Accumulate(ctx, k, ...) reads model k's forward trace. The
  // session skips the forward pass (and passes an empty trace) when no part
  // of the objective needs it — e.g. FGSM only traces the target model.
  virtual bool NeedsTrace(const ObjectiveContext& ctx, int k) const {
    (void)ctx;
    (void)k;
    return true;
  }

  // Plan-aware variant used by the zero-allocation executor: contributes the
  // same gradient as Accumulate, evaluated at sample `pos` of model k's
  // current plan trace, with backprop running through the plan's reused
  // buffers (ExecutionPlan::AcquireSeed / BackwardSample). The default
  // adapter copies the sample out as a ForwardTrace and calls Accumulate —
  // correct for any out-of-tree objective, but allocating; built-in
  // objectives override it allocation-free. Results must be bit-identical to
  // Accumulate. `grad` is per-sample input-shaped, as in Accumulate.
  virtual void AccumulatePlanned(const ObjectiveContext& ctx, int k, ExecutionPlan& plan,
                                 int pos, Tensor* grad) const;
};

// Equation 2: push every model's consensus confidence up except model j's,
// which is pushed down with weight λ1. For regression models the raw output
// takes the place of the consensus-class confidence.
class DifferentialObjective : public Objective {
 public:
  std::string name() const override { return "differential"; }
  void Accumulate(const ObjectiveContext& ctx, int k, const ForwardTrace& trace,
                  Tensor* grad) const override;
  void AccumulatePlanned(const ObjectiveContext& ctx, int k, ExecutionPlan& plan, int pos,
                         Tensor* grad) const override;
};

// Equation 3: λ2 · d(neuron)/d(input) for one currently-uncovered neuron of
// model k, nominated by the model's coverage metric. No-op when λ2 = 0 or
// the metric is saturated.
class CoverageObjective : public Objective {
 public:
  std::string name() const override { return "coverage"; }
  void Accumulate(const ObjectiveContext& ctx, int k, const ForwardTrace& trace,
                  Tensor* grad) const override;
  void AccumulatePlanned(const ObjectiveContext& ctx, int k, ExecutionPlan& plan, int pos,
                         Tensor* grad) const override;
};

// Sum of sub-objectives (the λ weights live inside the parts, via ctx).
class CompositeObjective : public Objective {
 public:
  CompositeObjective(std::string name, std::vector<std::unique_ptr<Objective>> parts);

  std::string name() const override { return name_; }
  void Accumulate(const ObjectiveContext& ctx, int k, const ForwardTrace& trace,
                  Tensor* grad) const override;
  bool NeedsTrace(const ObjectiveContext& ctx, int k) const override;
  void AccumulatePlanned(const ObjectiveContext& ctx, int k, ExecutionPlan& plan, int pos,
                         Tensor* grad) const override;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Objective>> parts_;
};

// The paper's joint objective: DifferentialObjective + CoverageObjective.
std::unique_ptr<Objective> MakeJointObjective();

// ---- Factory -----------------------------------------------------------------------------

using ObjectiveFactory = std::function<std::unique_ptr<Objective>()>;

// Registers (or replaces) an objective under `name` for MakeObjective, so
// plug-ins are selectable by string key from the CLI and SessionConfig.
void RegisterObjective(const std::string& name, ObjectiveFactory factory);

// Builds the objective registered under `name`. Built-ins: "joint",
// "differential", "fgsm" (adversarial baseline), "random"
// (random-perturbation baseline). Throws std::invalid_argument for unknown
// names.
std::unique_ptr<Objective> MakeObjective(const std::string& name);

// Registered objective names, sorted (for --list-objectives and validation).
std::vector<std::string> ObjectiveNames();

}  // namespace dx

#endif  // DX_SRC_CORE_OBJECTIVE_H_

// Executor: the batched execution engine underneath Session.
//
// Runs Algorithm 1's gradient-ascent inner loop for a *chunk* of seeds in
// lockstep. Each iteration stacks the chunk's current inputs into one
// [B, ...] tensor, pushes it through all K models (one pass per model), and
// shares the resulting traces between the three consumers that historically
// each re-forwarded the same input:
//
//   1. the objective gradient (AccumulatePlanned reads a sample of the trace),
//   2. the difference check (per-model argmax / scalar outputs), and
//   3. the coverage update of a finished seed (CoverageMetric::UpdateBatch).
//
// Consequently every (seed, model, iteration) is forwarded exactly once —
// the trace computed after stepping input x serves both iteration i's
// difference check and iteration i+1's objective gradient. Model counts
// this via Model::forward_passes(), and tests assert it.
//
// Zero-allocation steady state: all per-chunk storage — one compiled
// ExecutionPlan per model (src/nn/execution_plan.h), the stacked-input
// buffer, per-task gradient and direction buffers — lives in a pooled
// ChunkState that Run borrows and returns. After warm-up (first Run at a
// given chunk width per concurrent caller), an iteration that finds no test
// performs no heap allocation at all: layer kernels write into plan slabs,
// objective backprop reuses plan scratch, the constraint writes into a
// reused direction buffer, and the difference check reads trace samples
// through non-owning views (tests/alloc_test.cc enforces this).
//
// Batch invariance: per-task state (RNG stream, coverage trackers) stays
// isolated exactly as in the per-seed path, and every batched layer kernel
// is bit-identical to its scalar counterpart, so results are independent of
// the chunk composition — any batch size reproduces the per-sample path's
// output bit for bit.
#ifndef DX_SRC_CORE_EXECUTOR_H_
#define DX_SRC_CORE_EXECUTOR_H_

#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "src/constraints/constraint.h"
#include "src/core/objective.h"
#include "src/core/session.h"
#include "src/coverage/coverage_metric.h"
#include "src/nn/model.h"

namespace dx {

// Wall time spent in each phase of Executor::Run, summed over chunks and
// threads (collected only while profiling is enabled — see
// Executor::EnableProfiling and the CLI's --profile report).
struct ExecutorProfile {
  double stack_seconds = 0.0;     // Stacking inputs into the batch buffer.
  double forward_seconds = 0.0;   // Batched forward passes (all models).
  // The old `gradient` phase, split so kernel-level backward optimizations
  // are visible: time inside the plans' backward layer chains vs everything
  // else in the objective step (seed construction, neuron bookkeeping,
  // gradient accumulation, RMS normalization).
  double backward_layers_seconds = 0.0;
  double objective_accumulate_seconds = 0.0;
  double constraint_seconds = 0.0;  // Constraint apply + step + projection.
  double coverage_seconds = 0.0;    // Difference checks + coverage updates.
  int64_t iterations = 0;           // Batched lockstep iterations measured.

  ExecutorProfile& operator+=(const ExecutorProfile& other);
  double TotalSeconds() const {
    return stack_seconds + forward_seconds + backward_layers_seconds +
           objective_accumulate_seconds + constraint_seconds + coverage_seconds;
  }
};

class Executor {
 public:
  // One seed's unit of work. All pointers are non-owning and must outlive
  // the Run call; `rng` and `metrics` are task-private (clones under a
  // parallel run, the session's own state on the serial path).
  struct SeedTask {
    const Tensor* seed = nullptr;
    int seed_index = 0;
    // Global schedule position; stamped into GeneratedTest::task_ordinal as
    // RNG-stream provenance for corpus replay.
    uint64_t ordinal = 0;
    Rng* rng = nullptr;
    std::vector<std::unique_ptr<CoverageMetric>>* metrics = nullptr;
  };

  // `engine` is borrowed (it lives in the session's config) and read on
  // every Run call, so config edits between runs take effect.
  Executor(std::vector<Model*> models, const Constraint* constraint, bool regression,
           const EngineConfig* engine);
  ~Executor();  // Out of line: ChunkState is an incomplete type here.

  // Lockstep gradient ascent over the chunk. result[i] corresponds to
  // tasks[i] and matches the per-seed GenerateFromSeed semantics: nullopt
  // when the seed has no consensus or the iteration budget runs out; on
  // success tasks[i].metrics has been updated with the generated input's
  // activations. Thread-safe: concurrent Run calls each borrow their own
  // pooled ChunkState.
  std::vector<std::optional<GeneratedTest>> Run(const std::vector<SeedTask>& tasks,
                                                const Objective& objective) const;

  // Forwards every model over one stacked [B, ...] input batch (the
  // allocating by-value building block, kept for profiling and benches; Run
  // itself goes through pooled ExecutionPlans).
  std::vector<BatchTrace> ForwardAll(const Tensor& batch_input) const;

  // Per-phase wall-time collection (off by default; ~no overhead when off).
  void EnableProfiling(bool enabled) { profiling_ = enabled; }
  bool profiling_enabled() const { return profiling_; }
  ExecutorProfile profile() const;
  void ResetProfile();

 private:
  struct ChunkState;  // Pooled per-chunk buffers + plans (executor.cc).

  int num_models() const { return static_cast<int>(models_.size()); }
  // Borrows a ChunkState able to run `width`-wide chunks (recompiling its
  // plans only when it has never seen a chunk this wide).
  std::unique_ptr<ChunkState> AcquireState(int width) const;
  void ReleaseState(std::unique_ptr<ChunkState> state) const;

  std::vector<Model*> models_;
  const Constraint* constraint_;
  bool regression_;
  const EngineConfig* engine_;

  mutable std::mutex pool_mu_;
  mutable std::vector<std::unique_ptr<ChunkState>> state_pool_;

  bool profiling_ = false;
  mutable std::mutex profile_mu_;
  mutable ExecutorProfile profile_;
};

}  // namespace dx

#endif  // DX_SRC_CORE_EXECUTOR_H_

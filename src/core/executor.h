// Executor: the batched execution engine underneath Session.
//
// Runs Algorithm 1's gradient-ascent inner loop for a *chunk* of seeds in
// lockstep. Each iteration stacks the chunk's current inputs into one
// [B, ...] tensor, pushes it through all K models with Model::ForwardBatch
// (one pass per model), and shares the resulting BatchTraces between the
// three consumers that historically each re-forwarded the same input:
//
//   1. the objective gradient (Accumulate reads a sample view of the trace),
//   2. the difference check (per-model argmax / scalar outputs), and
//   3. the coverage update of a finished seed (CoverageMetric::UpdateBatch).
//
// Consequently every (seed, model, iteration) is forwarded exactly once —
// the trace computed after stepping input x serves both iteration i's
// difference check and iteration i+1's objective gradient. Model counts
// this via Model::forward_passes(), and tests assert it.
//
// Batch invariance: per-task state (RNG stream, coverage trackers) stays
// isolated exactly as in the per-seed path, and every batched layer kernel
// is bit-identical to its scalar counterpart, so results are independent of
// the chunk composition — any batch size reproduces the per-sample path's
// output bit for bit.
#ifndef DX_SRC_CORE_EXECUTOR_H_
#define DX_SRC_CORE_EXECUTOR_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/constraints/constraint.h"
#include "src/core/objective.h"
#include "src/core/session.h"
#include "src/coverage/coverage_metric.h"
#include "src/nn/model.h"

namespace dx {

class Executor {
 public:
  // One seed's unit of work. All pointers are non-owning and must outlive
  // the Run call; `rng` and `metrics` are task-private (clones under a
  // parallel run, the session's own state on the serial path).
  struct SeedTask {
    const Tensor* seed = nullptr;
    int seed_index = 0;
    // Global schedule position; stamped into GeneratedTest::task_ordinal as
    // RNG-stream provenance for corpus replay.
    uint64_t ordinal = 0;
    Rng* rng = nullptr;
    std::vector<std::unique_ptr<CoverageMetric>>* metrics = nullptr;
  };

  // `engine` is borrowed (it lives in the session's config) and read on
  // every Run call, so config edits between runs take effect.
  Executor(std::vector<Model*> models, const Constraint* constraint, bool regression,
           const EngineConfig* engine);

  // Lockstep gradient ascent over the chunk. result[i] corresponds to
  // tasks[i] and matches the per-seed GenerateFromSeed semantics: nullopt
  // when the seed has no consensus or the iteration budget runs out; on
  // success tasks[i].metrics has been updated with the generated input's
  // activations.
  std::vector<std::optional<GeneratedTest>> Run(const std::vector<SeedTask>& tasks,
                                                const Objective& objective) const;

  // Forwards every model over one stacked [B, ...] input batch (the
  // building block of Run, exposed for profiling and benches).
  std::vector<BatchTrace> ForwardAll(const Tensor& batch_input) const;

 private:
  int num_models() const { return static_cast<int>(models_.size()); }

  std::vector<Model*> models_;
  const Constraint* constraint_;
  bool regression_;
  const EngineConfig* engine_;
};

}  // namespace dx

#endif  // DX_SRC_CORE_EXECUTOR_H_

// DomainSpec: the fourth string-keyed plug-in axis of the engine.
//
// DeepXplore's premise is cross-domain generality: a "domain" bundles a
// dataset, a trio (or more) of independently trained DNN architectures, the
// domain's input constraints, and the Table-2 hyperparameter defaults. The
// paper ships five such bundles (MNIST, ImageNet, Driving, VirusTotal,
// Drebin); this registry makes the bundle itself pluggable, exactly like
// coverage metrics / objectives / seed schedulers: new workloads register a
// DomainSpec and the engine, CLI, corpus, and test harnesses pick them up by
// key — the engine never enumerates domains.
//
// Registration idiom (S2E-style: the workload declares itself):
//
//   void RegisterMyDomain() {          // or any code run before first lookup
//     DomainSpec spec;
//     spec.key = "mydomain";
//     ...
//     RegisterDomain(std::move(spec));
//   }
//
// Built-in domains live with their content (the five paper domains in
// src/models/zoo.cc, the out-of-paper domains in src/domains/) and are
// anchored from domain.cc's lazy initializer — a static archive drops
// registration-only object files whose symbols nobody references, so each
// linked-in domain pack needs exactly one named anchor there. Out-of-tree
// code just calls RegisterDomain before its first lookup.
//
// tests/domain_conformance_test.cc runs a certification suite over every
// registered domain (dataset determinism, model forward/backward, constraint
// idempotence, plan bit-identity) — a new domain that passes it inherits the
// batched executor, ExecutionPlan, corpus/replay, and the golden scenario
// matrix for free.
#ifndef DX_SRC_CORE_DOMAIN_H_
#define DX_SRC_CORE_DOMAIN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/constraints/constraint.h"
#include "src/core/session.h"
#include "src/data/dataset.h"
#include "src/nn/model.h"

namespace dx {

// One zoo architecture of a domain (a row of the paper's Table 1).
struct DomainModelSpec {
  std::string name;        // Zoo key, e.g. "MNI_C1"; globally unique.
  std::string arch;        // Human label, e.g. "LeNet-1".
  std::string paper_arch;  // Provenance, e.g. "LeNet-1, LeCun et al.".
  // Freshly initialized (untrained) model from a weight seed.
  std::function<Model(uint64_t seed)> build;
  // Per-model learning-rate override; 0 uses DomainTraining::learning_rate.
  float learning_rate = 0.0f;
};

// How ModelZoo trains and caches this domain's models. The sample counts are
// full-scale; DEEPXPLORE_FAST=1 divides them by the fast divisors at query
// time (EffectiveTraining), so fast mode stays a runtime decision.
struct DomainTraining {
  int train_samples = 1000;
  int test_samples = 400;
  int epochs = 5;
  float learning_rate = 3e-3f;
  // Dataset generator seed; the test set uses data_seed + 1 (disjoint draw).
  uint64_t data_seed = 1;
  int fast_train_divisor = 4;
  int fast_test_divisor = 4;
};

// One named constraint variant of a domain (CLI --constraint values).
struct DomainConstraintSpec {
  std::string name;  // e.g. "light", "occl", "box"; "default" is reserved.
  std::function<std::unique_ptr<Constraint>()> make;
};

struct DomainSpec {
  std::string key;           // Registry key and CLI --domain value, e.g. "mnist".
  std::string display_name;  // Paper-style label, e.g. "MNIST"; also names goldens.
  std::string description;   // One line for --list-domains.
  // Deterministic sample generator: (n, seed) -> n labeled samples. Train and
  // test sets are drawn from it via DomainTraining's counts and seeds.
  std::function<Dataset(int n, uint64_t seed)> make_dataset;
  DomainTraining training;
  std::vector<DomainModelSpec> models;  // >= 2 (differential testing needs a vote).
  std::vector<DomainConstraintSpec> constraints;
  std::string default_constraint;  // Must name an entry of `constraints`.
  // Table-2 row: the domain's λ1 / λ2 / s / coverage defaults.
  EngineConfig engine_defaults;
};

// Registers (or replaces) a domain under spec.key. Validates the spec (key,
// dataset builder, >= 2 models with builders, default constraint resolvable);
// throws std::invalid_argument on a malformed spec.
void RegisterDomain(DomainSpec spec);

// True when `key` is registered.
bool DomainRegistered(const std::string& key);

// Spec registered under `key`, or nullptr. The pointer stays valid for the
// process lifetime (re-registration retires the old spec without freeing it).
std::shared_ptr<const DomainSpec> FindDomain(const std::string& key);

// Like FindDomain but throws std::invalid_argument
// ("unknown domain 'X'; registered: a | b | ...") for unknown keys — the
// message every lookup path (CLI flags, corpus manifests) surfaces verbatim.
const DomainSpec& GetDomain(const std::string& key);

// Registered domain keys, sorted.
std::vector<std::string> DomainKeys();

// The spec's constraint variant names, in registration order.
std::vector<std::string> DomainConstraintNames(const DomainSpec& spec);

// Builds the named constraint variant; "default" (or "") resolves to
// spec.default_constraint. Throws std::invalid_argument
// ("unknown constraint 'X' for domain 'Y'; valid: default | ...") otherwise.
std::unique_ptr<Constraint> MakeDomainConstraint(const DomainSpec& spec,
                                                 const std::string& name);

// Canonical registry key of a constraint name ("default"/"" resolve to
// spec.default_constraint); throws like MakeDomainConstraint. This is what
// corpus manifests should record, so replay never depends on CLI aliases.
const std::string& ResolveDomainConstraint(const DomainSpec& spec,
                                           const std::string& name);

// spec.training with DEEPXPLORE_FAST=1 divisors applied (read at call time).
DomainTraining EffectiveTraining(const DomainSpec& spec);

}  // namespace dx

#endif  // DX_SRC_CORE_DOMAIN_H_

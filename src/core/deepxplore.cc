#include "src/core/deepxplore.h"

namespace dx {

namespace {

SessionConfig FacadeConfig(DeepXploreConfig config) {
  SessionConfig session_config;
  session_config.engine = config;
  // The paper's fixed wiring: threshold neuron coverage, the joint
  // objective, round-robin seed recycling, serial execution.
  session_config.metric = "neuron";
  session_config.objective = "joint";
  session_config.scheduler = "roundrobin";
  session_config.workers = 1;
  // Legacy serial semantics: one RNG threaded through the seed stream, so
  // pre-Session runs reproduce bit-for-bit.
  session_config.sync_interval = 0;
  return session_config;
}

}  // namespace

DeepXplore::DeepXplore(std::vector<Model*> models, const Constraint* constraint,
                       DeepXploreConfig config)
    : session_(std::move(models), constraint, FacadeConfig(config)) {}

}  // namespace dx

#include "src/core/deepxplore.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/util/timer.h"

namespace dx {

DeepXplore::DeepXplore(std::vector<Model*> models, const Constraint* constraint,
                       DeepXploreConfig config)
    : models_(std::move(models)),
      constraint_(constraint),
      config_(config),
      regression_(false),
      rng_(config.rng_seed) {
  if (models_.size() < 2) {
    throw std::invalid_argument("DeepXplore: differential testing needs >= 2 models");
  }
  if (constraint_ == nullptr) {
    throw std::invalid_argument("DeepXplore: constraint must not be null");
  }
  const Shape& input_shape = models_[0]->input_shape();
  const Shape& output_shape = models_[0]->output_shape();
  for (Model* m : models_) {
    if (m->input_shape() != input_shape) {
      throw std::invalid_argument("DeepXplore: models disagree on input shape");
    }
    if (m->output_shape() != output_shape) {
      throw std::invalid_argument("DeepXplore: models disagree on output shape");
    }
  }
  regression_ = NumElements(output_shape) == 1 &&
                models_[0]->layer(models_[0]->num_layers() - 1).Kind() != "softmax";
  trackers_.reserve(models_.size());
  for (Model* m : models_) {
    trackers_.emplace_back(*m, config_.coverage);
  }
}

std::vector<int> DeepXplore::PredictLabels(const Tensor& x) const {
  std::vector<int> labels;
  labels.reserve(models_.size());
  for (const Model* m : models_) {
    labels.push_back(m->PredictClass(x));
  }
  return labels;
}

std::vector<float> DeepXplore::PredictScalars(const Tensor& x) const {
  std::vector<float> outputs;
  outputs.reserve(models_.size());
  for (const Model* m : models_) {
    outputs.push_back(m->PredictScalar(x));
  }
  return outputs;
}

bool DeepXplore::IsDifference(const Tensor& x) const {
  if (regression_) {
    const std::vector<float> outs = PredictScalars(x);
    const auto [lo, hi] = std::minmax_element(outs.begin(), outs.end());
    return *hi - *lo > config_.steering_eps;
  }
  const std::vector<int> labels = PredictLabels(x);
  return std::any_of(labels.begin(), labels.end(),
                     [&](int l) { return l != labels[0]; });
}

void DeepXplore::AccumulateOutputGradient(const Model& model, const ForwardTrace& trace,
                                          int consensus, float weight, Tensor* grad) const {
  const int last = model.num_layers() - 1;
  Tensor seed(trace.outputs[static_cast<size_t>(last)].shape());
  if (regression_) {
    seed[0] = weight;
  } else {
    seed[consensus] = weight;
  }
  grad->AddInPlace(model.BackwardInput(trace, last, std::move(seed)));
}

void DeepXplore::AccumulateNeuronGradient(const Model& model,
                                          const NeuronCoverageTracker& tracker,
                                          const ForwardTrace& trace, Tensor* grad) {
  NeuronId id;
  if (!tracker.PickUncovered(rng_, &id)) {
    return;  // Everything covered: nothing to add (Algorithm 1 line 33).
  }
  Tensor seed(trace.outputs[static_cast<size_t>(id.layer)].shape());
  model.layer(id.layer).AddNeuronSeed(&seed, id.index, config_.lambda2);
  grad->AddInPlace(model.BackwardInput(trace, id.layer, std::move(seed)));
}

Tensor DeepXplore::JointGradient(const Tensor& x, int target_model, int consensus) {
  Tensor grad(x.shape());
  for (int k = 0; k < num_models(); ++k) {
    const ForwardTrace trace = models_[static_cast<size_t>(k)]->Forward(x);
    const float weight = k == target_model ? -config_.lambda1 : 1.0f;
    AccumulateOutputGradient(*models_[static_cast<size_t>(k)], trace, consensus, weight,
                             &grad);
    if (config_.lambda2 != 0.0f) {
      AccumulateNeuronGradient(*models_[static_cast<size_t>(k)],
                               trackers_[static_cast<size_t>(k)], trace, &grad);
    }
  }
  return grad;
}

std::optional<GeneratedTest> DeepXplore::GenerateFromSeed(const Tensor& seed,
                                                          int seed_index) {
  Timer timer;
  int consensus = 0;
  if (regression_) {
    // Seed must not already be a difference.
    if (IsDifference(seed)) {
      return std::nullopt;
    }
  } else {
    const std::vector<int> labels = PredictLabels(seed);
    if (std::any_of(labels.begin(), labels.end(),
                    [&](int l) { return l != labels[0]; })) {
      return std::nullopt;  // No seed-time consensus (Algorithm 1 line 4).
    }
    consensus = labels[0];
  }
  const int target_model =
      config_.forced_target_model >= 0 && config_.forced_target_model < num_models()
          ? config_.forced_target_model
          : static_cast<int>(rng_.UniformInt(0, num_models() - 1));

  Tensor x = seed;
  for (int iter = 1; iter <= config_.max_iterations_per_seed; ++iter) {
    Tensor grad = JointGradient(x, target_model, consensus);
    if (config_.normalize_gradient) {
      // RMS-normalize (as in the reference implementation) so the step size s
      // is meaningful regardless of how saturated the softmax outputs are.
      const float rms = grad.L2Norm() /
                        std::sqrt(static_cast<float>(std::max<int64_t>(1, grad.numel())));
      grad.Scale(1.0f / (rms + 1e-5f));
    }
    const Tensor direction = constraint_->Apply(grad, x, rng_);
    x.Axpy(config_.step, direction);
    constraint_->ProjectInput(&x);

    if (!IsDifference(x)) {
      continue;
    }
    GeneratedTest test;
    test.input = x;
    test.seed_index = seed_index;
    test.iterations = iter;
    test.seconds = timer.ElapsedSeconds();
    if (regression_) {
      test.outputs = PredictScalars(x);
      // The model farthest from the ensemble mean is the deviator.
      double mean = 0.0;
      for (const float v : test.outputs) {
        mean += v;
      }
      mean /= static_cast<double>(test.outputs.size());
      float worst = -1.0f;
      for (int k = 0; k < num_models(); ++k) {
        const float dev = std::abs(test.outputs[static_cast<size_t>(k)] -
                                   static_cast<float>(mean));
        if (dev > worst) {
          worst = dev;
          test.deviating_model = k;
        }
      }
    } else {
      test.labels = PredictLabels(x);
      // The minority label's model is the deviator.
      for (int k = 0; k < num_models(); ++k) {
        int agreement = 0;
        for (int other = 0; other < num_models(); ++other) {
          if (test.labels[static_cast<size_t>(other)] ==
              test.labels[static_cast<size_t>(k)]) {
            ++agreement;
          }
        }
        if (agreement == 1) {
          test.deviating_model = k;
          break;
        }
      }
    }
    // Update coverage with the generated input (Algorithm 1 line 18).
    for (int k = 0; k < num_models(); ++k) {
      trackers_[static_cast<size_t>(k)].Update(*models_[static_cast<size_t>(k)],
                                               models_[static_cast<size_t>(k)]->Forward(x));
    }
    return test;
  }
  return std::nullopt;
}

RunStats DeepXplore::Run(const std::vector<Tensor>& seeds, const RunOptions& options) {
  RunStats stats;
  Timer timer;
  bool done = false;
  for (int pass = 0; pass < options.max_seed_passes && !done; ++pass) {
    for (size_t i = 0; i < seeds.size(); ++i) {
      if (static_cast<int>(stats.tests.size()) >= options.max_tests ||
          timer.ElapsedSeconds() > options.max_seconds) {
        done = true;
        break;
      }
      ++stats.seeds_tried;
      auto test = GenerateFromSeed(seeds[i], static_cast<int>(i));
      if (!test.has_value()) {
        ++stats.seeds_skipped;
        continue;
      }
      stats.total_iterations += test->iterations;
      stats.tests.push_back(std::move(*test));
      if (options.coverage_goal <= 1.0f) {
        bool all_reached = true;
        for (const auto& tracker : trackers_) {
          all_reached = all_reached && tracker.Coverage() >= options.coverage_goal;
        }
        if (all_reached) {
          done = true;
          break;
        }
      }
    }
  }
  stats.seconds = timer.ElapsedSeconds();
  stats.mean_coverage = MeanCoverage();
  return stats;
}

float DeepXplore::MeanCoverage() const {
  double sum = 0.0;
  for (const auto& tracker : trackers_) {
    sum += tracker.Coverage();
  }
  return static_cast<float>(sum / static_cast<double>(trackers_.size()));
}

}  // namespace dx

#include "src/constraints/constraint.h"

#include <algorithm>

#include "src/util/rng.h"

namespace dx {

void Constraint::ApplyInto(const Tensor& grad, const Tensor& x, Rng& rng,
                           Tensor* direction) const {
  // Compatibility adapter: by-value Apply, result moved into the caller's
  // buffer (allocating — built-in constraints override this).
  *direction = Apply(grad, x, rng);
}

void Constraint::ProjectInput(Tensor* x) const { x->ClampInPlace(0.0f, 1.0f); }

Tensor UnconstrainedImage::Apply(const Tensor& grad, const Tensor& /*x*/,
                                 Rng& /*rng*/) const {
  return grad;
}

void UnconstrainedImage::ApplyInto(const Tensor& grad, const Tensor& /*x*/, Rng& /*rng*/,
                                   Tensor* direction) const {
  std::copy(grad.data(), grad.data() + grad.numel(), direction->data());
}

}  // namespace dx

#include "src/constraints/constraint.h"

#include "src/util/rng.h"

namespace dx {

void Constraint::ProjectInput(Tensor* x) const { x->ClampInPlace(0.0f, 1.0f); }

Tensor UnconstrainedImage::Apply(const Tensor& grad, const Tensor& /*x*/,
                                 Rng& /*rng*/) const {
  return grad;
}

}  // namespace dx

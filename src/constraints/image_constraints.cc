#include "src/constraints/image_constraints.h"

#include <cmath>
#include <stdexcept>

#include "src/util/rng.h"

namespace dx {
namespace {

void CheckChw(const Tensor& t, const char* who) {
  if (t.ndim() != 3) {
    throw std::invalid_argument(std::string(who) + ": expected CHW image, got " +
                                ShapeToString(t.shape()));
  }
}

}  // namespace

Tensor LightingConstraint::Apply(const Tensor& grad, const Tensor& x, Rng& rng) const {
  Tensor out(grad.shape());
  ApplyInto(grad, x, rng, &out);
  return out;
}

void LightingConstraint::ApplyInto(const Tensor& grad, const Tensor& /*x*/, Rng& /*rng*/,
                                   Tensor* direction) const {
  direction->Fill(grad.Mean() >= 0.0f ? 1.0f : -1.0f);
}

OcclusionConstraint::OcclusionConstraint(int height, int width, Placement placement)
    : rect_h_(height), rect_w_(width), placement_(placement) {
  if (height <= 0 || width <= 0) {
    throw std::invalid_argument("OcclusionConstraint: rectangle must be non-empty");
  }
}

Tensor OcclusionConstraint::Apply(const Tensor& grad, const Tensor& x, Rng& rng) const {
  Tensor out(grad.shape());
  ApplyInto(grad, x, rng, &out);
  return out;
}

void OcclusionConstraint::ApplyInto(const Tensor& grad, const Tensor& /*x*/, Rng& rng,
                                    Tensor* direction) const {
  CheckChw(grad, "OcclusionConstraint");
  const int channels = grad.dim(0);
  const int h = grad.dim(1);
  const int w = grad.dim(2);
  if (rect_h_ > h || rect_w_ > w) {
    throw std::invalid_argument("OcclusionConstraint: rectangle larger than image");
  }
  Tensor& out = *direction;
  if (placement_ == Placement::kRandom) {
    const int y0 = static_cast<int>(rng.UniformInt(0, h - rect_h_));
    const int x0 = static_cast<int>(rng.UniformInt(0, w - rect_w_));
    out.Fill(0.0f);
    for (int c = 0; c < channels; ++c) {
      for (int y = y0; y < y0 + rect_h_; ++y) {
        for (int xx = x0; xx < x0 + rect_w_; ++xx) {
          const int64_t idx = (static_cast<int64_t>(c) * h + y) * w + xx;
          out[idx] = grad[idx];
        }
      }
    }
    return;
  }
  // Place the rectangle where the gradient has the largest L1 mass: the
  // position DeepXplore is "free to choose" that maximizes progress.
  // Column-prefix sums of per-pixel |grad| summed over channels. The scratch
  // is thread-local (constraints are shared, const, across workers) and
  // reused across iterations, so the steady state stays allocation-free.
  static thread_local std::vector<double> mass;
  static thread_local std::vector<double> prefix;
  mass.assign(static_cast<size_t>(h) * w, 0.0);
  for (int c = 0; c < channels; ++c) {
    for (int y = 0; y < h; ++y) {
      for (int xx = 0; xx < w; ++xx) {
        mass[static_cast<size_t>(y) * w + xx] +=
            std::abs(grad[(static_cast<int64_t>(c) * h + y) * w + xx]);
      }
    }
  }
  // 2-D prefix sums for O(1) window queries.
  prefix.assign(static_cast<size_t>(h + 1) * (w + 1), 0.0);
  for (int y = 0; y < h; ++y) {
    for (int xx = 0; xx < w; ++xx) {
      prefix[static_cast<size_t>(y + 1) * (w + 1) + (xx + 1)] =
          mass[static_cast<size_t>(y) * w + xx] +
          prefix[static_cast<size_t>(y) * (w + 1) + (xx + 1)] +
          prefix[static_cast<size_t>(y + 1) * (w + 1) + xx] -
          prefix[static_cast<size_t>(y) * (w + 1) + xx];
    }
  }
  int best_y = 0;
  int best_x = 0;
  double best = -1.0;
  for (int y = 0; y + rect_h_ <= h; ++y) {
    for (int xx = 0; xx + rect_w_ <= w; ++xx) {
      const double window =
          prefix[static_cast<size_t>(y + rect_h_) * (w + 1) + (xx + rect_w_)] -
          prefix[static_cast<size_t>(y) * (w + 1) + (xx + rect_w_)] -
          prefix[static_cast<size_t>(y + rect_h_) * (w + 1) + xx] +
          prefix[static_cast<size_t>(y) * (w + 1) + xx];
      if (window > best) {
        best = window;
        best_y = y;
        best_x = xx;
      }
    }
  }
  out.Fill(0.0f);
  for (int c = 0; c < channels; ++c) {
    for (int y = best_y; y < best_y + rect_h_; ++y) {
      for (int xx = best_x; xx < best_x + rect_w_; ++xx) {
        const int64_t idx = (static_cast<int64_t>(c) * h + y) * w + xx;
        out[idx] = grad[idx];
      }
    }
  }
}

BlackRectsConstraint::BlackRectsConstraint(int count, int size)
    : count_(count), size_(size) {
  if (count <= 0 || size <= 0) {
    throw std::invalid_argument("BlackRectsConstraint: bad count/size");
  }
}

Tensor BlackRectsConstraint::Apply(const Tensor& grad, const Tensor& x, Rng& rng) const {
  Tensor out(grad.shape());
  ApplyInto(grad, x, rng, &out);
  return out;
}

void BlackRectsConstraint::ApplyInto(const Tensor& grad, const Tensor& /*x*/, Rng& rng,
                                     Tensor* direction) const {
  CheckChw(grad, "BlackRectsConstraint");
  const int channels = grad.dim(0);
  const int h = grad.dim(1);
  const int w = grad.dim(2);
  if (size_ > h || size_ > w) {
    throw std::invalid_argument("BlackRectsConstraint: patch larger than image");
  }
  Tensor& out = *direction;
  out.Fill(0.0f);
  for (int k = 0; k < count_; ++k) {
    const int y0 = static_cast<int>(rng.UniformInt(0, h - size_));
    const int x0 = static_cast<int>(rng.UniformInt(0, w - size_));
    // Mean gradient over the patch (all channels).
    double mean = 0.0;
    for (int c = 0; c < channels; ++c) {
      for (int y = y0; y < y0 + size_; ++y) {
        for (int xx = x0; xx < x0 + size_; ++xx) {
          mean += grad[(static_cast<int64_t>(c) * h + y) * w + xx];
        }
      }
    }
    // Pixel values may only decrease (dirt is dark): skip brightening patches.
    if (mean >= 0.0) {
      continue;
    }
    for (int c = 0; c < channels; ++c) {
      for (int y = y0; y < y0 + size_; ++y) {
        for (int xx = x0; xx < x0 + size_; ++xx) {
          const int64_t idx = (static_cast<int64_t>(c) * h + y) * w + xx;
          out[idx] = grad[idx];
        }
      }
    }
  }
}

}  // namespace dx

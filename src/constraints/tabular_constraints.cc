#include "src/constraints/tabular_constraints.h"

#include <algorithm>
#include <stdexcept>

namespace dx {

FeatureBoxConstraint::FeatureBoxConstraint(std::vector<FeatureBox> boxes, std::string name)
    : boxes_(std::move(boxes)), name_(std::move(name)) {
  if (boxes_.empty()) {
    throw std::invalid_argument("FeatureBoxConstraint: empty box list");
  }
  for (const FeatureBox& box : boxes_) {
    if (!(box.lo <= box.hi)) {
      throw std::invalid_argument("FeatureBoxConstraint: box with lo > hi");
    }
  }
}

Tensor FeatureBoxConstraint::Apply(const Tensor& grad, const Tensor& x, Rng& rng) const {
  Tensor out(grad.shape());
  ApplyInto(grad, x, rng, &out);
  return out;
}

void FeatureBoxConstraint::ApplyInto(const Tensor& grad, const Tensor& x, Rng& /*rng*/,
                                     Tensor* direction) const {
  if (grad.numel() != static_cast<int64_t>(boxes_.size())) {
    throw std::invalid_argument("FeatureBoxConstraint: wrong feature count");
  }
  Tensor& out = *direction;
  std::copy(grad.data(), grad.data() + grad.numel(), out.data());
  for (size_t f = 0; f < boxes_.size(); ++f) {
    const FeatureBox& box = boxes_[f];
    const int64_t i = static_cast<int64_t>(f);
    if (box.frozen) {
      out[i] = 0.0f;
      continue;
    }
    // A feature saturated at a box edge cannot move further outward.
    if ((out[i] > 0.0f && x[i] >= box.hi) || (out[i] < 0.0f && x[i] <= box.lo)) {
      out[i] = 0.0f;
    }
  }
}

void FeatureBoxConstraint::ProjectInput(Tensor* x) const {
  if (x->numel() != static_cast<int64_t>(boxes_.size())) {
    throw std::invalid_argument("FeatureBoxConstraint: wrong feature count");
  }
  for (size_t f = 0; f < boxes_.size(); ++f) {
    const int64_t i = static_cast<int64_t>(f);
    (*x)[i] = std::clamp((*x)[i], boxes_[f].lo, boxes_[f].hi);
  }
}

}  // namespace dx

// Domain-specific constraints (paper §4.2 / §6.2).
//
// A constraint rewrites the raw joint-optimization gradient into a valid
// update direction (Algorithm 1 line 13, DOMAIN_CONSTRNTS) and projects the
// input back onto the valid domain after each gradient-ascent step, so every
// intermediate x_i remains a realistic input.
#ifndef DX_SRC_CONSTRAINTS_CONSTRAINT_H_
#define DX_SRC_CONSTRAINTS_CONSTRAINT_H_

#include <memory>
#include <string>

#include "src/tensor/tensor.h"

namespace dx {

class Rng;

class Constraint {
 public:
  virtual ~Constraint() = default;

  virtual std::string name() const = 0;

  // Maps the raw gradient to a constrained update direction. `x` is the
  // current input; `rng` supports stochastic placement choices.
  virtual Tensor Apply(const Tensor& grad, const Tensor& x, Rng& rng) const = 0;

  // In-place variant for the zero-allocation executor: writes the direction
  // into `*direction`, which the caller has pre-shaped like `grad`; every
  // element is overwritten. Must be bit-identical to Apply (same float ops,
  // same rng draw order). The default adapter calls Apply and moves the
  // result in — correct for out-of-tree constraints, but allocating;
  // built-in constraints override it allocation-free.
  virtual void ApplyInto(const Tensor& grad, const Tensor& x, Rng& rng,
                         Tensor* direction) const;

  // Projects x onto the valid input domain after x += s * direction.
  // Default: clamp to [0, 1] (valid for all image domains).
  virtual void ProjectInput(Tensor* x) const;
};

// Identity constraint (clamps to [0,1] only); useful as a baseline.
class UnconstrainedImage : public Constraint {
 public:
  std::string name() const override { return "unconstrained"; }
  Tensor Apply(const Tensor& grad, const Tensor& x, Rng& rng) const override;
  void ApplyInto(const Tensor& grad, const Tensor& x, Rng& rng,
                 Tensor* direction) const override;
};

}  // namespace dx

#endif  // DX_SRC_CONSTRAINTS_CONSTRAINT_H_

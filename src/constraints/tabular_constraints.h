// Per-feature box constraints for flat feature-vector domains.
//
// Generalizes the malware-domain feature rules (§6.2) into a reusable
// constraint any tabular domain can parameterize: every feature carries a
// [lo, hi] box in normalized input space plus a frozen flag. Apply zeroes
// the gradient of frozen features and of features already saturated at the
// box edge in the gradient's direction; ProjectInput clamps each feature to
// its box. Both operations are idempotent (certified per domain by
// tests/domain_conformance_test.cc).
#ifndef DX_SRC_CONSTRAINTS_TABULAR_CONSTRAINTS_H_
#define DX_SRC_CONSTRAINTS_TABULAR_CONSTRAINTS_H_

#include <string>
#include <utility>
#include <vector>

#include "src/constraints/constraint.h"

namespace dx {

struct FeatureBox {
  float lo = 0.0f;      // Normalized-space lower bound.
  float hi = 1.0f;      // Normalized-space upper bound.
  bool frozen = false;  // Feature may not change at all.
};

class FeatureBoxConstraint : public Constraint {
 public:
  // One box per feature of the (flat) input; `name` is the Constraint::name.
  FeatureBoxConstraint(std::vector<FeatureBox> boxes, std::string name = "feature-box");

  std::string name() const override { return name_; }
  Tensor Apply(const Tensor& grad, const Tensor& x, Rng& rng) const override;
  void ApplyInto(const Tensor& grad, const Tensor& x, Rng& rng,
                 Tensor* direction) const override;
  // Clamps each feature to its box.
  void ProjectInput(Tensor* x) const override;

 private:
  std::vector<FeatureBox> boxes_;
  std::string name_;
};

}  // namespace dx

#endif  // DX_SRC_CONSTRAINTS_TABULAR_CONSTRAINTS_H_

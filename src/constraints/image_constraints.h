// The three image constraints of §6.2.
//
//  1. Lighting: every pixel moves by the same signed amount, direction given
//     by sign(mean(G)) — simulates uniform darkening/brightening.
//  2. Occlusion: the gradient is applied only inside a single m x n rectangle
//     R; DeepXplore is free to place R anywhere, so Apply picks the position
//     with the largest gradient mass (an effective instantiation of the
//     paper's "any arbitrary position").
//  3. BlackRects: several tiny m x m patches ("dirt on the lens"); within each
//     selected patch the gradient is kept only if its mean is negative, i.e.
//     pixel values may only decrease.
//
// All three inherit the [0, 1] pixel-range projection.
#ifndef DX_SRC_CONSTRAINTS_IMAGE_CONSTRAINTS_H_
#define DX_SRC_CONSTRAINTS_IMAGE_CONSTRAINTS_H_

#include <string>

#include "src/constraints/constraint.h"

namespace dx {

class LightingConstraint : public Constraint {
 public:
  std::string name() const override { return "light"; }
  Tensor Apply(const Tensor& grad, const Tensor& x, Rng& rng) const override;
  void ApplyInto(const Tensor& grad, const Tensor& x, Rng& rng,
                 Tensor* direction) const override;
};

class OcclusionConstraint : public Constraint {
 public:
  // How the rectangle position is chosen each iteration. The paper lets
  // DeepXplore place the rectangle anywhere; kMaxGradientMass realizes that
  // freedom greedily, kRandom re-samples a position per iteration (used by
  // the placement ablation bench).
  enum class Placement { kMaxGradientMass, kRandom };

  // Rectangle of height x width pixels (applied to CHW images).
  OcclusionConstraint(int height, int width,
                      Placement placement = Placement::kMaxGradientMass);
  std::string name() const override { return "occl"; }
  Tensor Apply(const Tensor& grad, const Tensor& x, Rng& rng) const override;
  // Allocation-free in steady state (the gradient-mass prefix sums live in
  // thread-local scratch that is reused across iterations).
  void ApplyInto(const Tensor& grad, const Tensor& x, Rng& rng,
                 Tensor* direction) const override;

 private:
  int rect_h_;
  int rect_w_;
  Placement placement_;
};

class BlackRectsConstraint : public Constraint {
 public:
  // `count` patches of `size` x `size` pixels, re-sampled each iteration.
  BlackRectsConstraint(int count, int size);
  std::string name() const override { return "blackout"; }
  Tensor Apply(const Tensor& grad, const Tensor& x, Rng& rng) const override;
  void ApplyInto(const Tensor& grad, const Tensor& x, Rng& rng,
                 Tensor* direction) const override;

 private:
  int count_;
  int size_;
};

}  // namespace dx

#endif  // DX_SRC_CONSTRAINTS_IMAGE_CONSTRAINTS_H_

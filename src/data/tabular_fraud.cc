#include "src/data/tabular_fraud.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "src/util/rng.h"

namespace dx {
namespace {

std::vector<TabularFeatureSpec> BuildSpecs() {
  std::vector<TabularFeatureSpec> specs;
  specs.reserve(kTabularFeatureCount);
  // Transaction descriptors: what / when / where — under attacker control.
  specs.push_back({"amount", 0.0f, 5000.0f, true});
  specs.push_back({"hour_of_day", 0.0f, 24.0f, true});
  specs.push_back({"merchant_risk", 0.0f, 1.0f, true});
  specs.push_back({"merchant_distance_km", 0.0f, 2000.0f, true});
  specs.push_back({"is_online", 0.0f, 1.0f, true});
  specs.push_back({"basket_items", 1.0f, 50.0f, true});
  specs.push_back({"currency_risk", 0.0f, 1.0f, true});
  // Short-horizon behavior counters — influenced by the attacker's activity.
  specs.push_back({"tx_last_1h", 0.0f, 20.0f, true});
  specs.push_back({"tx_last_24h", 0.0f, 60.0f, true});
  specs.push_back({"amount_last_24h", 0.0f, 10000.0f, true});
  specs.push_back({"declined_last_24h", 0.0f, 10.0f, true});
  specs.push_back({"new_device", 0.0f, 1.0f, true});
  // Account identity and history — frozen: no transaction changes these.
  specs.push_back({"account_age_days", 0.0f, 3650.0f, false});
  specs.push_back({"avg_monthly_spend", 0.0f, 8000.0f, false});
  specs.push_back({"home_merchant_affinity", 0.0f, 1.0f, false});
  specs.push_back({"credit_limit", 100.0f, 20000.0f, false});
  specs.push_back({"chargeback_history", 0.0f, 5.0f, false});
  // Generic behavioral aggregates fill out the 32-feature vector; every
  // third one is frozen (bank-side scores the attacker cannot touch).
  const std::array<const char*, 2> prefixes = {"spend_ratio_", "geo_score_"};
  int i = 0;
  while (static_cast<int>(specs.size()) < kTabularFeatureCount) {
    const char* prefix = prefixes[static_cast<size_t>(i % 2)];
    const bool modifiable = i % 3 != 2;
    specs.push_back({std::string(prefix) + std::to_string(i), 0.0f, 10.0f, modifiable});
    ++i;
  }
  return specs;
}

const TabularFeatureSpec& SpecAt(int feature) {
  const auto& specs = TabularFeatureSpecs();
  if (feature < 0 || feature >= kTabularFeatureCount) {
    throw std::out_of_range("tabular feature index out of range");
  }
  return specs[static_cast<size_t>(feature)];
}

// Truncated-normal raw draw for a feature.
float DrawRaw(Rng& rng, const TabularFeatureSpec& spec, float mean_frac, float stddev_frac) {
  const float span = spec.max_value - spec.min_value;
  float raw = spec.min_value + span * mean_frac +
              static_cast<float>(rng.Normal(0.0, stddev_frac)) * span;
  return std::clamp(raw, spec.min_value, spec.max_value);
}

}  // namespace

const std::vector<TabularFeatureSpec>& TabularFeatureSpecs() {
  static const std::vector<TabularFeatureSpec> specs = BuildSpecs();
  return specs;
}

float TabularNormalize(int feature, float raw) {
  const TabularFeatureSpec& spec = SpecAt(feature);
  return (raw - spec.min_value) / (spec.max_value - spec.min_value);
}

float TabularRawValue(int feature, float normalized) {
  const TabularFeatureSpec& spec = SpecAt(feature);
  const float raw = spec.min_value + normalized * (spec.max_value - spec.min_value);
  return std::clamp(raw, spec.min_value, spec.max_value);
}

Dataset MakeSyntheticTabular(int n, uint64_t seed, double fraud_fraction) {
  Rng rng(seed);
  const auto& specs = TabularFeatureSpecs();
  Dataset ds{"tabular", {kTabularFeatureCount}, 2, {}, {}};
  ds.inputs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const bool fraud = rng.NextDouble() < fraud_fraction;
    Tensor x({kTabularFeatureCount});
    for (int f = 0; f < kTabularFeatureCount; ++f) {
      const TabularFeatureSpec& spec = specs[static_cast<size_t>(f)];
      float mean_frac = 0.35f;
      float stddev_frac = 0.15f;
      // Class-separating features, mirroring card-fraud statistics: large
      // odd-hour transactions through risky distant merchants from fresh
      // devices on young accounts with thin history.
      if (spec.name == "amount" || spec.name == "merchant_risk" ||
          spec.name == "merchant_distance_km" || spec.name == "currency_risk") {
        mean_frac = fraud ? 0.65f : 0.15f;
      } else if (spec.name == "hour_of_day") {
        // Fraud clusters at night (early hours), legit mid-day.
        mean_frac = fraud ? 0.12f : 0.55f;
      } else if (spec.name == "tx_last_1h" || spec.name == "declined_last_24h" ||
                 spec.name == "new_device" || spec.name == "is_online") {
        mean_frac = fraud ? 0.60f : 0.10f;
        stddev_frac = 0.12f;
      } else if (spec.name == "account_age_days" || spec.name == "avg_monthly_spend" ||
                 spec.name == "home_merchant_affinity") {
        mean_frac = fraud ? 0.12f : 0.55f;
      }
      const float raw = DrawRaw(rng, spec, mean_frac, stddev_frac);
      x[f] = TabularNormalize(f, raw);
    }
    ds.Add(std::move(x), fraud ? static_cast<float>(kTabularFraudClass)
                               : static_cast<float>(kTabularLegitClass));
  }
  return ds;
}

}  // namespace dx

// Drebin substitute: sparse binary Android-app feature vectors.
//
// Feature layout mirrors Drebin's categories at reduced width: the first
// kDrebinManifestFeatures features come from the app manifest (permissions,
// intents, activities, providers, services) — the only ones DeepXplore is
// allowed to modify, and only 0 -> 1 — and the rest are code features
// (restricted API calls, network addresses). Malware is generated from
// planted "family" signatures over indicator features, so the MLPs of Grosse
// et al. separate the classes with high accuracy.
#ifndef DX_SRC_DATA_DREBIN_H_
#define DX_SRC_DATA_DREBIN_H_

#include <cstdint>
#include <string>

#include "src/data/dataset.h"

namespace dx {

inline constexpr int kDrebinFeatureCount = 512;
inline constexpr int kDrebinManifestFeatures = 256;
inline constexpr int kDrebinBenignClass = 0;
inline constexpr int kDrebinMalwareClass = 1;

// Human-readable name of a feature (e.g. "permission::CALL_PHONE").
const std::string& DrebinFeatureName(int feature);

// True when the feature lives in the manifest (modifiable by DeepXplore).
bool DrebinIsManifestFeature(int feature);

// n samples, inputs {512} in {0,1}, labels 0 = benign / 1 = malware
// (malware_fraction of the samples are malware).
Dataset MakeSyntheticDrebin(int n, uint64_t seed, double malware_fraction = 0.3);

}  // namespace dx

#endif  // DX_SRC_DATA_DREBIN_H_

#include "src/data/dataset.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "src/util/rng.h"

namespace dx {

int Dataset::Label(int i) const {
  if (regression()) {
    throw std::logic_error("Dataset::Label called on regression dataset " + name);
  }
  return static_cast<int>(std::lround(targets[static_cast<size_t>(i)]));
}

void Dataset::Add(Tensor input, float target) {
  if (input.shape() != input_shape) {
    throw std::invalid_argument("Dataset::Add: input shape mismatch");
  }
  inputs.push_back(std::move(input));
  targets.push_back(target);
}

std::pair<Dataset, Dataset> Dataset::Split(double train_fraction, Rng& rng) const {
  if (train_fraction < 0.0 || train_fraction > 1.0) {
    throw std::invalid_argument("Dataset::Split: fraction out of range");
  }
  std::vector<int> order(static_cast<size_t>(size()));
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  const int n_train = static_cast<int>(std::lround(train_fraction * size()));

  Dataset train{name + "/train", input_shape, num_classes, {}, {}};
  Dataset test{name + "/test", input_shape, num_classes, {}, {}};
  for (int i = 0; i < size(); ++i) {
    Dataset& dst = i < n_train ? train : test;
    const int src = order[static_cast<size_t>(i)];
    dst.inputs.push_back(inputs[static_cast<size_t>(src)]);
    dst.targets.push_back(targets[static_cast<size_t>(src)]);
  }
  return {std::move(train), std::move(test)};
}

Dataset Dataset::Sample(int k, Rng& rng) const {
  if (k > size()) {
    throw std::invalid_argument("Dataset::Sample: k exceeds dataset size");
  }
  const auto indices = rng.SampleWithoutReplacement(size(), k);
  Dataset out{name + "/sample", input_shape, num_classes, {}, {}};
  for (const int i : indices) {
    out.inputs.push_back(inputs[static_cast<size_t>(i)]);
    out.targets.push_back(targets[static_cast<size_t>(i)]);
  }
  return out;
}

void Dataset::CheckConsistency() const {
  if (inputs.size() != targets.size()) {
    throw std::logic_error("Dataset: inputs/targets size mismatch in " + name);
  }
  for (const Tensor& t : inputs) {
    if (t.shape() != input_shape) {
      throw std::logic_error("Dataset: inconsistent input shape in " + name);
    }
  }
  if (!regression()) {
    for (size_t i = 0; i < targets.size(); ++i) {
      const int label = static_cast<int>(std::lround(targets[i]));
      if (label < 0 || label >= num_classes) {
        throw std::logic_error("Dataset: label out of range in " + name);
      }
    }
  }
}

std::vector<int> PolluteLabels(Dataset* dataset, int from_class, int to_class,
                               double fraction, Rng& rng) {
  if (dataset->regression()) {
    throw std::invalid_argument("PolluteLabels: regression dataset");
  }
  std::vector<int> candidates;
  for (int i = 0; i < dataset->size(); ++i) {
    if (dataset->Label(i) == from_class) {
      candidates.push_back(i);
    }
  }
  rng.Shuffle(candidates);
  const int n = static_cast<int>(std::lround(fraction * static_cast<double>(candidates.size())));
  candidates.resize(static_cast<size_t>(n));
  for (const int i : candidates) {
    dataset->targets[static_cast<size_t>(i)] = static_cast<float>(to_class);
  }
  return candidates;
}

}  // namespace dx

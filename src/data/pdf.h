// Contagio/VirusTotal substitute: 135 PDFrate-style static document features.
//
// Features are count/size statistics (count_action, count_font, author_num,
// ...) with per-feature modification rules following Šrndic & Laskov's
// practical-evasion restrictions: some features cannot be changed at all
// (they would corrupt the file), most can only be *incremented* (content can
// be appended to a PDF but not safely removed), and all are integers within
// bounds. Inputs to the networks are normalized to [0, 1] per feature.
#ifndef DX_SRC_DATA_PDF_H_
#define DX_SRC_DATA_PDF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/data/dataset.h"

namespace dx {

inline constexpr int kPdfFeatureCount = 135;
inline constexpr int kPdfBenignClass = 0;
inline constexpr int kPdfMalwareClass = 1;

struct PdfFeatureSpec {
  std::string name;
  float min_value;      // Raw units.
  float max_value;      // Raw units.
  bool integer;         // Round raw values to integers.
  bool modifiable;      // May DeepXplore change this feature at all?
  bool increment_only;  // Only increases allowed (append-only semantics).
};

// The full 135-entry feature table (stable across calls).
const std::vector<PdfFeatureSpec>& PdfFeatureSpecs();

// Raw <-> normalized conversions for one feature.
float PdfNormalize(int feature, float raw);
float PdfRawValue(int feature, float normalized);

// n samples, inputs {135} normalized to [0, 1], labels 0 = benign /
// 1 = malicious.
Dataset MakeSyntheticPdf(int n, uint64_t seed, double malware_fraction = 0.5);

}  // namespace dx

#endif  // DX_SRC_DATA_PDF_H_

// Udacity driving substitute: procedural dashcam-style road scenes with a
// ground-truth steering angle (regression target in [-1, 1]).
//
// A scene is sky + grass + a perspective road whose centerline curves with a
// curvature parameter; steering is a deterministic function of curvature and
// lateral offset, plus small noise. The three DAVE variants are trained on
// this task exactly as the paper trains them on the Udacity dataset.
#ifndef DX_SRC_DATA_ROAD_H_
#define DX_SRC_DATA_ROAD_H_

#include <cstdint>

#include "src/data/dataset.h"

namespace dx {

inline constexpr int kRoadImageHeight = 32;
inline constexpr int kRoadImageWidth = 64;

// n regression samples, CHW inputs {3, 32, 64}, targets in [-1, 1].
Dataset MakeSyntheticRoad(int n, uint64_t seed);

// Renders one scene; *steering receives the ground-truth angle.
Tensor RenderRoadScene(Rng& rng, float* steering);

// The paper's differential-behavior predicate for driving: two steering
// angles "disagree" when they differ by more than this (normalized units).
inline constexpr float kSteeringDisagreement = 0.2f;

}  // namespace dx

#endif  // DX_SRC_DATA_ROAD_H_

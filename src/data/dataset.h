// In-memory labeled dataset container shared by all five synthetic domains.
//
// Classification datasets store the class index in targets[i]; regression
// datasets (driving) store the scalar target. All generators are fully
// deterministic given (n, seed).
#ifndef DX_SRC_DATA_DATASET_H_
#define DX_SRC_DATA_DATASET_H_

#include <string>
#include <utility>
#include <vector>

#include "src/tensor/tensor.h"

namespace dx {

class Rng;

struct Dataset {
  std::string name;
  Shape input_shape;
  int num_classes = 0;  // 0 => regression
  std::vector<Tensor> inputs;
  std::vector<float> targets;

  int size() const { return static_cast<int>(inputs.size()); }
  bool regression() const { return num_classes == 0; }
  // Class label of sample i (classification only).
  int Label(int i) const;
  // Regression target of sample i.
  float Target(int i) const { return targets[static_cast<size_t>(i)]; }

  // Appends one sample.
  void Add(Tensor input, float target);

  // Deterministically shuffles and splits off the first `fraction` as train.
  std::pair<Dataset, Dataset> Split(double train_fraction, Rng& rng) const;

  // Random subset of k samples (without replacement).
  Dataset Sample(int k, Rng& rng) const;

  // Validates internal consistency; throws std::logic_error on corruption.
  void CheckConsistency() const;
};

// Relabels `fraction` of samples whose label is `from_class` to `to_class`
// (the paper's §7.3 training-data pollution attack). Returns the indices of
// the polluted samples.
std::vector<int> PolluteLabels(Dataset* dataset, int from_class, int to_class,
                               double fraction, Rng& rng);

}  // namespace dx

#endif  // DX_SRC_DATA_DATASET_H_

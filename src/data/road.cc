#include "src/data/road.h"
#include <algorithm>

#include <cmath>

#include "src/util/rng.h"

namespace dx {
namespace {

constexpr int kH = kRoadImageHeight;
constexpr int kW = kRoadImageWidth;

}  // namespace

Tensor RenderRoadScene(Rng& rng, float* steering) {
  Tensor img({3, kH, kW});

  const float curvature = static_cast<float>(rng.Uniform(-1.0, 1.0));
  const float lateral = static_cast<float>(rng.Uniform(-0.25, 0.25));
  const int horizon = static_cast<int>(rng.UniformInt(kH / 4, kH / 2));
  const float road_halfwidth = static_cast<float>(rng.Uniform(0.28, 0.42));
  const float brightness = static_cast<float>(rng.Uniform(0.75, 1.05));
  const float noise = static_cast<float>(rng.Uniform(0.0, 0.03));

  // Sky / grass / asphalt base colors with mild variation.
  const float sky_r = 0.45f + 0.1f * rng.NextFloat();
  const float sky_g = 0.6f + 0.1f * rng.NextFloat();
  const float sky_b = 0.85f + 0.1f * rng.NextFloat();
  const float grass_g = 0.45f + 0.15f * rng.NextFloat();
  const float road_gray = 0.35f + 0.1f * rng.NextFloat();

  for (int y = 0; y < kH; ++y) {
    if (y < horizon) {
      // Sky with vertical gradient.
      const float t = static_cast<float>(y) / std::max(1, horizon);
      for (int x = 0; x < kW; ++x) {
        img.at({0, y, x}) = sky_r * (1.0f - 0.3f * t);
        img.at({1, y, x}) = sky_g * (1.0f - 0.2f * t);
        img.at({2, y, x}) = sky_b;
      }
      continue;
    }
    // Perspective depth: 0 at horizon, 1 at bottom.
    const float depth = static_cast<float>(y - horizon) / std::max(1, kH - 1 - horizon);
    // Road centerline bends with curvature as it approaches the horizon.
    const float center =
        0.5f + lateral * depth + curvature * 0.5f * (1.0f - depth) * (1.0f - depth);
    const float halfwidth = road_halfwidth * (0.15f + 0.85f * depth);
    const float left = center - halfwidth;
    const float right = center + halfwidth;
    const float lane_marking = center;

    for (int x = 0; x < kW; ++x) {
      const float u = (static_cast<float>(x) + 0.5f) / kW;
      float r;
      float g;
      float b;
      if (u >= left && u <= right) {
        r = g = b = road_gray * (0.8f + 0.2f * depth);
        // Dashed center lane marking.
        if (std::abs(u - lane_marking) < 0.012f && (y / 3) % 2 == 0) {
          r = g = b = 0.9f;
        }
        // Road edges.
        if (std::abs(u - left) < 0.015f || std::abs(u - right) < 0.015f) {
          r = g = b = 0.85f;
        }
      } else {
        r = 0.2f;
        g = grass_g * (0.7f + 0.3f * depth);
        b = 0.15f;
      }
      img.at({0, y, x}) = r;
      img.at({1, y, x}) = g;
      img.at({2, y, x}) = b;
    }
  }

  for (int64_t i = 0; i < img.numel(); ++i) {
    img[i] = std::clamp(img[i] * brightness + static_cast<float>(rng.Normal(0.0, noise)),
                        0.0f, 1.0f);
  }

  // Ground truth: steer into the curve, correct for lateral offset.
  const float angle = std::clamp(0.8f * curvature + 0.6f * lateral +
                                     static_cast<float>(rng.Normal(0.0, 0.02)),
                                 -1.0f, 1.0f);
  if (steering != nullptr) {
    *steering = angle;
  }
  return img;
}

Dataset MakeSyntheticRoad(int n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds{"driving", {3, kH, kW}, 0, {}, {}};
  ds.inputs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    float angle = 0.0f;
    Tensor img = RenderRoadScene(rng, &angle);
    ds.Add(std::move(img), angle);
  }
  return ds;
}

}  // namespace dx

// Tabular fraud-detection substitute: per-transaction feature vectors.
//
// An out-of-paper domain exercising the dense-stack path: each sample is a
// card-transaction record of kTabularFeatureCount numeric features (amount,
// time-of-day, merchant risk, velocity counters, account tenure, ...),
// normalized to [0, 1] per feature. Fraud and legitimate transactions are
// drawn from class-conditional distributions (fraud: high amounts at odd
// hours through risky merchants on young accounts), so small MLPs separate
// the classes with high accuracy.
//
// Each feature carries a box spec — [min, max] bounds plus a mutability
// flag — consumed by the domain's FeatureBoxConstraint: an attacker can
// change what they buy, where, and when, but not account identity/tenure.
#ifndef DX_SRC_DATA_TABULAR_FRAUD_H_
#define DX_SRC_DATA_TABULAR_FRAUD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/data/dataset.h"

namespace dx {

inline constexpr int kTabularFeatureCount = 32;
inline constexpr int kTabularLegitClass = 0;
inline constexpr int kTabularFraudClass = 1;

struct TabularFeatureSpec {
  std::string name;
  float min_value;  // Raw units.
  float max_value;  // Raw units.
  bool modifiable;  // May the generator change this feature at all?
};

// The full feature table (stable across calls).
const std::vector<TabularFeatureSpec>& TabularFeatureSpecs();

// Raw <-> normalized conversions for one feature.
float TabularNormalize(int feature, float raw);
float TabularRawValue(int feature, float normalized);

// n samples, inputs {32} normalized to [0, 1], labels 0 = legitimate /
// 1 = fraud.
Dataset MakeSyntheticTabular(int n, uint64_t seed, double fraud_fraction = 0.4);

}  // namespace dx

#endif  // DX_SRC_DATA_TABULAR_FRAUD_H_

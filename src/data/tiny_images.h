// ImageNet substitute: 32x32 RGB procedural texture/shape classes.
//
// Ten visually distinct classes (stripes at several orientations, checker,
// dots, disk, triangle, gradient, cross, blobs) with randomized colors,
// frequencies, phases, and noise. Serves as the shared task for the
// MiniVGG16 / MiniVGG19 / MiniResNet trio.
#ifndef DX_SRC_DATA_TINY_IMAGES_H_
#define DX_SRC_DATA_TINY_IMAGES_H_

#include <cstdint>
#include <string>

#include "src/data/dataset.h"

namespace dx {

inline constexpr int kTinyImageSize = 32;
inline constexpr int kTinyImageClasses = 10;

// Class names used in bench output (stand-ins for ImageNet synsets).
const std::string& TinyImageClassName(int label);

// n samples with balanced labels, CHW inputs {3, 32, 32} in [0, 1].
Dataset MakeSyntheticTinyImages(int n, uint64_t seed);

// Renders one image of the given class.
Tensor RenderTinyImage(int label, Rng& rng);

}  // namespace dx

#endif  // DX_SRC_DATA_TINY_IMAGES_H_

// MNIST substitute: procedurally rendered 28x28 grayscale digits.
//
// Each digit class is a fixed set of strokes (seven-segment layout plus
// digit-specific diagonals) rendered with a random affine transform
// (translation, rotation, scale), random stroke thickness and intensity, and
// additive pixel noise. The task has the same input shape and class count as
// MNIST and trains the LeNet family to high accuracy.
#ifndef DX_SRC_DATA_SYNTHETIC_DIGITS_H_
#define DX_SRC_DATA_SYNTHETIC_DIGITS_H_

#include <cstdint>

#include "src/data/dataset.h"

namespace dx {

inline constexpr int kDigitImageSize = 28;

// n samples with uniformly distributed labels 0..9, CHW inputs {1, 28, 28}.
Dataset MakeSyntheticDigits(int n, uint64_t seed);

// Renders a single digit (used by tests and the Figure 8 gallery).
Tensor RenderDigit(int digit, Rng& rng);

}  // namespace dx

#endif  // DX_SRC_DATA_SYNTHETIC_DIGITS_H_

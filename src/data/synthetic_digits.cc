#include "src/data/synthetic_digits.h"
#include <algorithm>
#include <stdexcept>

#include <array>
#include <cmath>

#include "src/util/rng.h"

namespace dx {
namespace {

struct Segment {
  float x1, y1, x2, y2;
};

// Seven-segment geometry in the unit square (x right, y down).
constexpr Segment kTop{0.25f, 0.15f, 0.75f, 0.15f};
constexpr Segment kTopLeft{0.25f, 0.15f, 0.25f, 0.5f};
constexpr Segment kTopRight{0.75f, 0.15f, 0.75f, 0.5f};
constexpr Segment kMiddle{0.25f, 0.5f, 0.75f, 0.5f};
constexpr Segment kBottomLeft{0.25f, 0.5f, 0.25f, 0.85f};
constexpr Segment kBottomRight{0.75f, 0.5f, 0.75f, 0.85f};
constexpr Segment kBottom{0.25f, 0.85f, 0.75f, 0.85f};

const std::array<std::vector<Segment>, 10>& DigitStrokes() {
  static const std::array<std::vector<Segment>, 10> strokes = {{
      /*0*/ {kTop, kTopLeft, kTopRight, kBottomLeft, kBottomRight, kBottom},
      /*1*/ {{0.55f, 0.2f, 0.45f, 0.3f}, {0.45f, 0.3f, 0.45f, 0.85f}},
      /*2*/ {kTop, kTopRight, kMiddle, kBottomLeft, kBottom},
      /*3*/ {kTop, kTopRight, kMiddle, kBottomRight, kBottom},
      /*4*/ {kTopLeft, kTopRight, kMiddle, kBottomRight},
      /*5*/ {kTop, kTopLeft, kMiddle, kBottomRight, kBottom},
      /*6*/ {kTop, kTopLeft, kMiddle, kBottomLeft, kBottomRight, kBottom},
      /*7*/ {kTop, {0.75f, 0.15f, 0.45f, 0.85f}},
      /*8*/ {kTop, kTopLeft, kTopRight, kMiddle, kBottomLeft, kBottomRight, kBottom},
      /*9*/ {kTop, kTopLeft, kTopRight, kMiddle, kBottomRight, kBottom},
  }};
  return strokes;
}

float DistanceToSegment(float px, float py, const Segment& s) {
  const float dx = s.x2 - s.x1;
  const float dy = s.y2 - s.y1;
  const float len_sq = dx * dx + dy * dy;
  float t = len_sq > 0.0f ? ((px - s.x1) * dx + (py - s.y1) * dy) / len_sq : 0.0f;
  t = std::clamp(t, 0.0f, 1.0f);
  const float cx = s.x1 + t * dx;
  const float cy = s.y1 + t * dy;
  return std::sqrt((px - cx) * (px - cx) + (py - cy) * (py - cy));
}

}  // namespace

Tensor RenderDigit(int digit, Rng& rng) {
  if (digit < 0 || digit > 9) {
    throw std::invalid_argument("RenderDigit: digit out of range");
  }
  const int size = kDigitImageSize;
  Tensor img({1, size, size});

  // Random affine jitter.
  const float angle = static_cast<float>(rng.Uniform(-0.22, 0.22));  // ~±12.5°
  const float scale = static_cast<float>(rng.Uniform(0.85, 1.1));
  const float tx = static_cast<float>(rng.Uniform(-0.08, 0.08));
  const float ty = static_cast<float>(rng.Uniform(-0.08, 0.08));
  const float thickness = static_cast<float>(rng.Uniform(0.035, 0.075));
  const float intensity = static_cast<float>(rng.Uniform(0.75, 1.0));
  const float noise = static_cast<float>(rng.Uniform(0.0, 0.06));
  const float cos_a = std::cos(angle);
  const float sin_a = std::sin(angle);

  const auto& strokes = DigitStrokes()[static_cast<size_t>(digit)];
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      // Map pixel center to unit square, then apply the inverse affine
      // transform around the center (0.5, 0.5).
      const float ux = (static_cast<float>(x) + 0.5f) / size;
      const float uy = (static_cast<float>(y) + 0.5f) / size;
      const float cx = (ux - 0.5f - tx) / scale;
      const float cy = (uy - 0.5f - ty) / scale;
      const float rx = cos_a * cx + sin_a * cy + 0.5f;
      const float ry = -sin_a * cx + cos_a * cy + 0.5f;

      float min_dist = 1e9f;
      for (const Segment& s : strokes) {
        min_dist = std::min(min_dist, DistanceToSegment(rx, ry, s));
      }
      // Smooth falloff for anti-aliasing.
      const float edge = thickness;
      float v = 0.0f;
      if (min_dist < edge) {
        v = intensity;
      } else if (min_dist < edge + 0.03f) {
        v = intensity * (1.0f - (min_dist - edge) / 0.03f);
      }
      v += static_cast<float>(rng.Normal(0.0, noise));
      img.at({0, y, x}) = std::clamp(v, 0.0f, 1.0f);
    }
  }
  return img;
}

Dataset MakeSyntheticDigits(int n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds{"digits", {1, kDigitImageSize, kDigitImageSize}, 10, {}, {}};
  ds.inputs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int digit = i % 10;  // Balanced classes.
    ds.Add(RenderDigit(digit, rng), static_cast<float>(digit));
  }
  return ds;
}

}  // namespace dx

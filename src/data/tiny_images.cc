#include "src/data/tiny_images.h"
#include <algorithm>
#include <stdexcept>

#include <array>
#include <cmath>
#include <numbers>

#include "src/util/rng.h"

namespace dx {
namespace {

constexpr int kSize = kTinyImageSize;

struct Rgb {
  float r, g, b;
};

Rgb RandomColor(Rng& rng, float min_brightness = 0.25f) {
  for (;;) {
    const Rgb c{rng.NextFloat(), rng.NextFloat(), rng.NextFloat()};
    if (c.r + c.g + c.b > 3.0f * min_brightness) {
      return c;
    }
  }
}

void SetPixel(Tensor* img, int y, int x, const Rgb& c, float alpha = 1.0f) {
  img->at({0, y, x}) = (1.0f - alpha) * img->at({0, y, x}) + alpha * c.r;
  img->at({1, y, x}) = (1.0f - alpha) * img->at({1, y, x}) + alpha * c.g;
  img->at({2, y, x}) = (1.0f - alpha) * img->at({2, y, x}) + alpha * c.b;
}

void FillBackground(Tensor* img, const Rgb& c) {
  for (int y = 0; y < kSize; ++y) {
    for (int x = 0; x < kSize; ++x) {
      SetPixel(img, y, x, c);
    }
  }
}

}  // namespace

const std::string& TinyImageClassName(int label) {
  static const std::array<std::string, kTinyImageClasses> names = {
      "h-stripes", "v-stripes", "d-stripes", "checker", "dots",
      "disk",      "triangle",  "gradient",  "cross",   "blobs"};
  if (label < 0 || label >= kTinyImageClasses) {
    throw std::out_of_range("TinyImageClassName: bad label");
  }
  return names[static_cast<size_t>(label)];
}

Tensor RenderTinyImage(int label, Rng& rng) {
  if (label < 0 || label >= kTinyImageClasses) {
    throw std::out_of_range("RenderTinyImage: bad label");
  }
  Tensor img({3, kSize, kSize});
  const Rgb bg = RandomColor(rng, 0.1f);
  const Rgb fg = RandomColor(rng, 0.35f);
  FillBackground(&img, bg);

  const float freq = static_cast<float>(rng.Uniform(2.5, 5.5));
  const float phase = static_cast<float>(rng.Uniform(0.0, 2.0 * std::numbers::pi));
  const auto wave = [&](float t) {
    return 0.5f + 0.5f * std::sin(freq * t * 2.0f * static_cast<float>(std::numbers::pi) /
                                      kSize +
                                  phase);
  };

  switch (label) {
    case 0:  // Horizontal stripes.
      for (int y = 0; y < kSize; ++y) {
        for (int x = 0; x < kSize; ++x) {
          SetPixel(&img, y, x, fg, wave(static_cast<float>(y)) > 0.5f ? 1.0f : 0.0f);
        }
      }
      break;
    case 1:  // Vertical stripes.
      for (int y = 0; y < kSize; ++y) {
        for (int x = 0; x < kSize; ++x) {
          SetPixel(&img, y, x, fg, wave(static_cast<float>(x)) > 0.5f ? 1.0f : 0.0f);
        }
      }
      break;
    case 2:  // Diagonal stripes.
      for (int y = 0; y < kSize; ++y) {
        for (int x = 0; x < kSize; ++x) {
          SetPixel(&img, y, x, fg,
                   wave(static_cast<float>(x + y) * 0.7071f) > 0.5f ? 1.0f : 0.0f);
        }
      }
      break;
    case 3: {  // Checkerboard.
      const int cell = static_cast<int>(rng.UniformInt(3, 6));
      for (int y = 0; y < kSize; ++y) {
        for (int x = 0; x < kSize; ++x) {
          if (((x / cell) + (y / cell)) % 2 == 0) {
            SetPixel(&img, y, x, fg);
          }
        }
      }
      break;
    }
    case 4: {  // Dot grid.
      const int step = static_cast<int>(rng.UniformInt(6, 9));
      const float radius = static_cast<float>(rng.Uniform(1.5, 2.6));
      for (int cy = step / 2; cy < kSize; cy += step) {
        for (int cx = step / 2; cx < kSize; cx += step) {
          for (int y = 0; y < kSize; ++y) {
            for (int x = 0; x < kSize; ++x) {
              const float d = std::hypot(static_cast<float>(y - cy), static_cast<float>(x - cx));
              if (d < radius) {
                SetPixel(&img, y, x, fg);
              }
            }
          }
        }
      }
      break;
    }
    case 5: {  // Single large disk.
      const float cy = static_cast<float>(rng.Uniform(10, 22));
      const float cx = static_cast<float>(rng.Uniform(10, 22));
      const float radius = static_cast<float>(rng.Uniform(7, 12));
      for (int y = 0; y < kSize; ++y) {
        for (int x = 0; x < kSize; ++x) {
          if (std::hypot(y - cy, x - cx) < radius) {
            SetPixel(&img, y, x, fg);
          }
        }
      }
      break;
    }
    case 6: {  // Upward triangle.
      const int apex_x = static_cast<int>(rng.UniformInt(12, 20));
      const int apex_y = static_cast<int>(rng.UniformInt(4, 8));
      const int base_y = static_cast<int>(rng.UniformInt(24, 29));
      const float half_width = static_cast<float>(rng.Uniform(8, 13));
      for (int y = apex_y; y <= base_y && y < kSize; ++y) {
        const float frac = static_cast<float>(y - apex_y) / std::max(1, base_y - apex_y);
        const int hw = static_cast<int>(frac * half_width);
        for (int x = std::max(0, apex_x - hw); x <= std::min(kSize - 1, apex_x + hw); ++x) {
          SetPixel(&img, y, x, fg);
        }
      }
      break;
    }
    case 7: {  // Smooth linear gradient between the two colors.
      const float angle = static_cast<float>(rng.Uniform(0.0, 2.0 * std::numbers::pi));
      const float dx = std::cos(angle);
      const float dy = std::sin(angle);
      for (int y = 0; y < kSize; ++y) {
        for (int x = 0; x < kSize; ++x) {
          const float t =
              std::clamp((dx * x + dy * y) / (kSize * 1.4f) + 0.5f, 0.0f, 1.0f);
          SetPixel(&img, y, x, fg, t);
        }
      }
      break;
    }
    case 8: {  // Cross / plus sign.
      const int cx = static_cast<int>(rng.UniformInt(13, 19));
      const int cy = static_cast<int>(rng.UniformInt(13, 19));
      const int arm = static_cast<int>(rng.UniformInt(10, 14));
      const int width = static_cast<int>(rng.UniformInt(2, 4));
      for (int y = 0; y < kSize; ++y) {
        for (int x = 0; x < kSize; ++x) {
          const bool in_v = std::abs(x - cx) <= width && std::abs(y - cy) <= arm;
          const bool in_h = std::abs(y - cy) <= width && std::abs(x - cx) <= arm;
          if (in_v || in_h) {
            SetPixel(&img, y, x, fg);
          }
        }
      }
      break;
    }
    case 9: {  // Random soft blobs.
      const int blobs = static_cast<int>(rng.UniformInt(3, 6));
      for (int b = 0; b < blobs; ++b) {
        const float cy = static_cast<float>(rng.Uniform(4, 28));
        const float cx = static_cast<float>(rng.Uniform(4, 28));
        const float radius = static_cast<float>(rng.Uniform(3, 7));
        const Rgb c = RandomColor(rng, 0.3f);
        for (int y = 0; y < kSize; ++y) {
          for (int x = 0; x < kSize; ++x) {
            const float d = std::hypot(y - cy, x - cx);
            if (d < radius) {
              SetPixel(&img, y, x, c, 1.0f - d / radius);
            }
          }
        }
      }
      break;
    }
    default:
      break;
  }

  // Global brightness jitter and pixel noise.
  const float gain = static_cast<float>(rng.Uniform(0.92, 1.06));
  const float noise = static_cast<float>(rng.Uniform(0.0, 0.04));
  for (int64_t i = 0; i < img.numel(); ++i) {
    img[i] = std::clamp(img[i] * gain + static_cast<float>(rng.Normal(0.0, noise)), 0.0f,
                        1.0f);
  }
  return img;
}

Dataset MakeSyntheticTinyImages(int n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds{"tinyimages", {3, kSize, kSize}, kTinyImageClasses, {}, {}};
  ds.inputs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int label = i % kTinyImageClasses;
    ds.Add(RenderTinyImage(label, rng), static_cast<float>(label));
  }
  return ds;
}

}  // namespace dx

#include "src/data/speech_commands.h"

#include <array>
#include <cmath>
#include <stdexcept>

#include "src/util/rng.h"

namespace dx {
namespace {

constexpr float kTau = 6.2831853071795864769f;

// Class recipes: fundamental frequency (cycles per window), partial ratio,
// partial mix, and envelope peak position (fraction of the window). Chosen
// so every pair of classes differs in at least two of the four dimensions —
// small conv nets separate them at high accuracy, yet the per-sample jitter
// keeps the task non-trivial.
struct KeywordRecipe {
  const char* word;
  float base_freq;
  float partial_ratio;
  float partial_mix;
  float envelope_peak;
};

const std::array<KeywordRecipe, kSpeechKeywords>& Recipes() {
  static const std::array<KeywordRecipe, kSpeechKeywords> recipes = {{
      {"yes", 3.0f, 2.0f, 0.30f, 0.25f},
      {"no", 4.5f, 3.0f, 0.55f, 0.50f},
      {"up", 6.0f, 2.0f, 0.20f, 0.75f},
      {"down", 7.5f, 1.5f, 0.65f, 0.30f},
      {"left", 9.0f, 3.0f, 0.35f, 0.60f},
      {"right", 10.5f, 2.5f, 0.50f, 0.40f},
      {"stop", 12.0f, 1.5f, 0.25f, 0.20f},
      {"go", 13.5f, 2.5f, 0.70f, 0.70f},
  }};
  return recipes;
}

}  // namespace

const std::string& SpeechKeywordName(int label) {
  static const std::array<std::string, kSpeechKeywords> names = [] {
    std::array<std::string, kSpeechKeywords> out;
    for (int k = 0; k < kSpeechKeywords; ++k) {
      out[static_cast<size_t>(k)] = Recipes()[static_cast<size_t>(k)].word;
    }
    return out;
  }();
  if (label < 0 || label >= kSpeechKeywords) {
    throw std::out_of_range("speech keyword label out of range");
  }
  return names[static_cast<size_t>(label)];
}

Tensor RenderSpeechWaveform(int label, Rng& rng) {
  if (label < 0 || label >= kSpeechKeywords) {
    throw std::out_of_range("speech keyword label out of range");
  }
  const KeywordRecipe& recipe = Recipes()[static_cast<size_t>(label)];
  const int t_len = kSpeechWaveformLength;

  // Per-utterance variation: phase, +-8% pitch jitter, gain, envelope width.
  const float phase = static_cast<float>(rng.Uniform(0.0, kTau));
  const float pitch = recipe.base_freq * (1.0f + 0.08f * static_cast<float>(rng.Uniform(-1.0, 1.0)));
  const float gain = 0.30f + 0.12f * static_cast<float>(rng.NextFloat());
  const float width = 0.18f + 0.06f * static_cast<float>(rng.NextFloat());
  const float peak = recipe.envelope_peak + 0.05f * static_cast<float>(rng.Uniform(-1.0, 1.0));

  Tensor x({1, 1, t_len});
  for (int t = 0; t < t_len; ++t) {
    const float u = static_cast<float>(t) / static_cast<float>(t_len - 1);
    // Gaussian amplitude envelope (attack/decay around the peak).
    const float d = (u - peak) / width;
    const float envelope = std::exp(-0.5f * d * d);
    const float angle = kTau * pitch * u + phase;
    const float wave = (1.0f - recipe.partial_mix) * std::sin(angle) +
                       recipe.partial_mix * std::sin(recipe.partial_ratio * angle);
    const float noise = 0.02f * static_cast<float>(rng.Uniform(-1.0, 1.0));
    // Map [-1, 1] audio to the engine's [0, 1] input range (0.5 = silence).
    x[t] = 0.5f + gain * envelope * wave + noise;
  }
  return x;
}

Dataset MakeSyntheticSpeech(int n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds{"speech", {1, 1, kSpeechWaveformLength}, kSpeechKeywords, {}, {}};
  ds.inputs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int label = i % kSpeechKeywords;  // Balanced classes.
    ds.Add(RenderSpeechWaveform(label, rng), static_cast<float>(label));
  }
  return ds;
}

}  // namespace dx

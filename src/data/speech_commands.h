// Keyword-spotting substitute: procedural 1-D audio-like waveforms.
//
// An out-of-paper domain (the paper's five are all images or static feature
// vectors): each of the eight keyword classes is a fixed "formant recipe" —
// two sinusoid partials with class-specific frequencies and mix, under a
// class-specific amplitude envelope — rendered with per-sample random phase,
// pitch jitter, gain, and additive noise. Samples are single-channel
// waveforms of kSpeechWaveformLength values in [0, 1] (0.5 = silence),
// shaped {1, 1, T} so the Conv2D/constraint machinery treats them as
// height-1 images and 1xk kernels act as true 1-D convolutions.
#ifndef DX_SRC_DATA_SPEECH_COMMANDS_H_
#define DX_SRC_DATA_SPEECH_COMMANDS_H_

#include <cstdint>
#include <string>

#include "src/data/dataset.h"

namespace dx {

class Rng;

inline constexpr int kSpeechWaveformLength = 128;
inline constexpr int kSpeechKeywords = 8;

// Keyword label of a class ("yes", "no", ...).
const std::string& SpeechKeywordName(int label);

// n samples with uniformly distributed labels, CHW inputs {1, 1, 128}.
Dataset MakeSyntheticSpeech(int n, uint64_t seed);

// Renders a single keyword utterance (used by tests and galleries).
Tensor RenderSpeechWaveform(int label, Rng& rng);

}  // namespace dx

#endif  // DX_SRC_DATA_SPEECH_COMMANDS_H_

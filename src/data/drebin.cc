#include "src/data/drebin.h"

#include <array>
#include <stdexcept>
#include <vector>

#include "src/util/rng.h"

namespace dx {
namespace {

// A handful of verbatim names from the paper's Table 3 plus generated ones.
std::vector<std::string> BuildFeatureNames() {
  std::vector<std::string> names(kDrebinFeatureCount);
  const std::array<std::string, 8> curated = {
      "feature::bluetooth",          "activity::.SmartAlertTerms",
      "service_receiver::.rrltpsi",  "provider::xclockprovider",
      "permission::CALL_PHONE",      "provider::contentprovider",
      "permission::INTERNET",        "intent::action.MAIN"};
  for (int i = 0; i < kDrebinFeatureCount; ++i) {
    if (i < static_cast<int>(curated.size())) {
      names[static_cast<size_t>(i)] = curated[static_cast<size_t>(i)];
      continue;
    }
    if (i < kDrebinManifestFeatures) {
      // Manifest categories.
      switch (i % 5) {
        case 0:
          names[static_cast<size_t>(i)] = "permission::PERM_" + std::to_string(i);
          break;
        case 1:
          names[static_cast<size_t>(i)] = "intent::ACTION_" + std::to_string(i);
          break;
        case 2:
          names[static_cast<size_t>(i)] = "activity::.Activity" + std::to_string(i);
          break;
        case 3:
          names[static_cast<size_t>(i)] = "provider::provider" + std::to_string(i);
          break;
        default:
          names[static_cast<size_t>(i)] = "service_receiver::.svc" + std::to_string(i);
          break;
      }
    } else {
      names[static_cast<size_t>(i)] = (i % 2 == 0 ? "api_call::" : "url::") +
                                      std::string("code_feat_") + std::to_string(i);
    }
  }
  return names;
}

// Indicator geometry (all deterministic):
//  - features [0, 32): "common benign" manifest features, frequent in benign
//    apps and rarer in malware — these give DeepXplore add-only mass to push a
//    malware sample across the benign boundary, as in the paper's Table 3.
//  - features [256, 304): code indicators used by malware family signatures.
constexpr int kCommonBenign = 32;
constexpr int kCodeIndicators = 48;
constexpr int kNumFamilies = 4;
constexpr int kFamilySize = 10;

std::vector<std::vector<int>> BuildFamilies() {
  std::vector<std::vector<int>> families(kNumFamilies);
  for (int f = 0; f < kNumFamilies; ++f) {
    for (int k = 0; k < kFamilySize; ++k) {
      // Overlapping but distinct code-indicator subsets.
      families[static_cast<size_t>(f)].push_back(kDrebinManifestFeatures +
                                                 (f * 9 + k) % kCodeIndicators);
    }
    // Each family also flips a couple of suspicious manifest features.
    families[static_cast<size_t>(f)].push_back(200 + f * 7);
    families[static_cast<size_t>(f)].push_back(220 + f * 5);
  }
  return families;
}

}  // namespace

const std::string& DrebinFeatureName(int feature) {
  static const std::vector<std::string> names = BuildFeatureNames();
  if (feature < 0 || feature >= kDrebinFeatureCount) {
    throw std::out_of_range("DrebinFeatureName: bad feature index");
  }
  return names[static_cast<size_t>(feature)];
}

bool DrebinIsManifestFeature(int feature) {
  if (feature < 0 || feature >= kDrebinFeatureCount) {
    throw std::out_of_range("DrebinIsManifestFeature: bad feature index");
  }
  return feature < kDrebinManifestFeatures;
}

Dataset MakeSyntheticDrebin(int n, uint64_t seed, double malware_fraction) {
  Rng rng(seed);
  static const std::vector<std::vector<int>> families = BuildFamilies();

  Dataset ds{"drebin", {kDrebinFeatureCount}, 2, {}, {}};
  ds.inputs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const bool malware = rng.NextDouble() < malware_fraction;
    Tensor x({kDrebinFeatureCount});
    // Base sparsity everywhere.
    for (int f = 0; f < kDrebinFeatureCount; ++f) {
      double p = 0.02;
      if (f < kCommonBenign) {
        p = malware ? 0.15 : 0.6;  // Benign apps request common permissions.
      }
      if (rng.Bernoulli(p)) {
        x[f] = 1.0f;
      }
    }
    if (malware) {
      const auto& family =
          families[static_cast<size_t>(rng.UniformInt(0, kNumFamilies - 1))];
      for (const int f : family) {
        if (rng.Bernoulli(0.9)) {
          x[f] = 1.0f;
        }
      }
    }
    ds.Add(std::move(x), malware ? static_cast<float>(kDrebinMalwareClass)
                                 : static_cast<float>(kDrebinBenignClass));
  }
  return ds;
}

}  // namespace dx

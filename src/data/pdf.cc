#include "src/data/pdf.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "src/util/rng.h"

namespace dx {
namespace {

std::vector<PdfFeatureSpec> BuildSpecs() {
  std::vector<PdfFeatureSpec> specs;
  specs.reserve(kPdfFeatureCount);
  // Curated PDFrate-style features, including those the paper's Table 4
  // reports DeepXplore modifying. {name, min, max, integer, modifiable,
  // increment_only}.
  specs.push_back({"size", 1.0f, 100.0f, true, true, true});  // In 10-KB units.
  specs.push_back({"count_action", 0.0f, 50.0f, true, true, true});
  specs.push_back({"count_endobj", 0.0f, 200.0f, true, true, true});
  specs.push_back({"count_font", 0.0f, 50.0f, true, true, true});
  specs.push_back({"author_num", 0.0f, 20.0f, true, true, false});
  specs.push_back({"count_javascript", 0.0f, 30.0f, true, false, false});
  specs.push_back({"count_js", 0.0f, 30.0f, true, false, false});
  specs.push_back({"count_page", 1.0f, 500.0f, true, true, true});
  specs.push_back({"count_obj", 1.0f, 500.0f, true, true, true});
  specs.push_back({"count_stream", 0.0f, 200.0f, true, true, true});
  specs.push_back({"count_trailer", 0.0f, 10.0f, true, true, true});
  specs.push_back({"count_xref", 0.0f, 10.0f, true, true, true});
  specs.push_back({"count_startxref", 0.0f, 10.0f, true, true, true});
  specs.push_back({"count_eof", 1.0f, 10.0f, true, false, false});
  specs.push_back({"count_image_small", 0.0f, 100.0f, true, true, true});
  specs.push_back({"count_image_large", 0.0f, 50.0f, true, true, true});
  specs.push_back({"count_embedded_file", 0.0f, 20.0f, true, false, false});
  specs.push_back({"count_openaction", 0.0f, 5.0f, true, false, false});
  specs.push_back({"count_launch", 0.0f, 5.0f, true, false, false});
  specs.push_back({"producer_len", 0.0f, 100.0f, true, true, true});
  specs.push_back({"creator_len", 0.0f, 100.0f, true, true, true});
  specs.push_back({"title_num", 0.0f, 30.0f, true, true, true});
  specs.push_back({"keywords_num", 0.0f, 30.0f, true, true, true});
  specs.push_back({"subject_len", 0.0f, 100.0f, true, true, true});
  specs.push_back({"count_annotation", 0.0f, 100.0f, true, true, true});
  specs.push_back({"count_acroform", 0.0f, 5.0f, true, true, true});
  specs.push_back({"pos_eof_max", 0.0f, 100.0f, true, false, false});
  specs.push_back({"len_stream_avg", 0.0f, 100.0f, true, true, true});
  specs.push_back({"count_filter", 0.0f, 50.0f, true, true, true});
  specs.push_back({"count_nestedfilter", 0.0f, 20.0f, true, true, true});
  // Generic structural counters fill out the 135-feature vector.
  const std::array<const char*, 3> prefixes = {"count_box_", "len_field_", "num_meta_"};
  int i = 0;
  while (static_cast<int>(specs.size()) < kPdfFeatureCount) {
    const char* prefix = prefixes[static_cast<size_t>(i % 3)];
    // Every third generated feature is frozen (non-modifiable) to mirror
    // Šrndic's mix of mutable and immutable features.
    const bool modifiable = i % 3 != 2;
    specs.push_back({std::string(prefix) + std::to_string(i), 0.0f, 60.0f, true, modifiable,
                     /*increment_only=*/true});
    ++i;
  }
  return specs;
}

const PdfFeatureSpec& SpecAt(int feature) {
  const auto& specs = PdfFeatureSpecs();
  if (feature < 0 || feature >= kPdfFeatureCount) {
    throw std::out_of_range("pdf feature index out of range");
  }
  return specs[static_cast<size_t>(feature)];
}

// Truncated-normal raw draw for a feature.
float DrawRaw(Rng& rng, const PdfFeatureSpec& spec, float mean_frac, float stddev_frac) {
  const float span = spec.max_value - spec.min_value;
  float raw = spec.min_value + span * mean_frac +
              static_cast<float>(rng.Normal(0.0, stddev_frac)) * span;
  raw = std::clamp(raw, spec.min_value, spec.max_value);
  if (spec.integer) {
    raw = std::round(raw);
  }
  return raw;
}

}  // namespace

const std::vector<PdfFeatureSpec>& PdfFeatureSpecs() {
  static const std::vector<PdfFeatureSpec> specs = BuildSpecs();
  return specs;
}

float PdfNormalize(int feature, float raw) {
  const PdfFeatureSpec& spec = SpecAt(feature);
  return (raw - spec.min_value) / (spec.max_value - spec.min_value);
}

float PdfRawValue(int feature, float normalized) {
  const PdfFeatureSpec& spec = SpecAt(feature);
  float raw = spec.min_value + normalized * (spec.max_value - spec.min_value);
  raw = std::clamp(raw, spec.min_value, spec.max_value);
  if (spec.integer) {
    raw = std::round(raw);
  }
  return raw;
}

Dataset MakeSyntheticPdf(int n, uint64_t seed, double malware_fraction) {
  Rng rng(seed);
  const auto& specs = PdfFeatureSpecs();
  Dataset ds{"pdf", {kPdfFeatureCount}, 2, {}, {}};
  ds.inputs.reserve(static_cast<size_t>(n));

  for (int i = 0; i < n; ++i) {
    const bool malware = rng.NextDouble() < malware_fraction;
    Tensor x({kPdfFeatureCount});
    for (int f = 0; f < kPdfFeatureCount; ++f) {
      const PdfFeatureSpec& spec = specs[static_cast<size_t>(f)];
      float mean_frac = 0.3f;
      float stddev_frac = 0.12f;
      // Class-separating features (mirroring real malicious-PDF statistics:
      // small files with scripts/actions and thin metadata vs. rich benign
      // documents).
      if (spec.name == "count_javascript" || spec.name == "count_js" ||
          spec.name == "count_openaction" || spec.name == "count_launch" ||
          spec.name == "count_embedded_file") {
        mean_frac = malware ? 0.55f : 0.02f;
      } else if (spec.name == "count_action") {
        mean_frac = malware ? 0.5f : 0.08f;
      } else if (spec.name == "size" || spec.name == "count_page" ||
                 spec.name == "count_font" || spec.name == "count_endobj" ||
                 spec.name == "count_obj" || spec.name == "count_stream") {
        mean_frac = malware ? 0.06f : 0.45f;
      } else if (spec.name == "author_num" || spec.name == "title_num" ||
                 spec.name == "keywords_num" || spec.name == "producer_len" ||
                 spec.name == "creator_len") {
        mean_frac = malware ? 0.08f : 0.5f;
        stddev_frac = 0.18f;
      }
      const float raw = DrawRaw(rng, spec, mean_frac, stddev_frac);
      x[f] = PdfNormalize(f, raw);
    }
    ds.Add(std::move(x), malware ? static_cast<float>(kPdfMalwareClass)
                                 : static_cast<float>(kPdfBenignClass));
  }
  return ds;
}

}  // namespace dx

#ifndef DX_SERVICE_CAMPAIGN_MANAGER_H_
#define DX_SERVICE_CAMPAIGN_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/corpus/maintenance.h"
#include "src/service/campaign.h"
#include "src/util/thread_pool.h"

namespace dx {

struct ManagerOptions {
  // Campaigns stepped concurrently (each gets one manager worker thread).
  int campaign_workers = 2;
  // Threads in the shared compute pool every campaign's executor chunks run
  // on (ParallelFor adds the calling worker, so parallelism is this + 1).
  // 0 sizes it to hardware concurrency - 1 (at least 1).
  int compute_threads = 0;
  // Sync batches per scheduling slice: a campaign steps this many batches,
  // then goes back to the queue so concurrent campaigns interleave fairly.
  int slice_batches = 1;
};

// What a `compact` ctl request carries: which maintenance passes to run over
// a campaign's recorded corpus and where the derived corpus lands.
struct CompactOptions {
  std::string out_dir;       // required; must not already hold a corpus
  bool distill = true;
  bool dedup = true;
  bool minimize = false;     // off by default: the most forward-heavy pass
  std::string deduper = "auto";
  float threshold = -1.0f;   // < 0: the deduper's default
};

struct CompactResult {
  std::vector<MaintenanceReport> reports;  // one per pass, chain order
  std::string out_dir;
  uint64_t entries_before = 0;
  uint64_t entries_after = 0;
  bool verified = false;  // Session::Replay passed on the final artifact
  bool resumed = false;   // the campaign was live and has been requeued
  double seconds = 0.0;
};

// Multiplexes many concurrent campaigns over one shared compute pool and one
// shared trained-model cache. Campaign workers pop ids off a queue, step the
// campaign one slice (slice_batches sync batches), publish a progress
// snapshot, and requeue it — so N campaigns share the machine at batch
// granularity while each one's results stay bit-identical to a standalone
// Session::Run (worker-count/batch-size invariance is the engine's core
// guarantee; the service only ever cuts at sync-batch boundaries).
class CampaignManager {
 public:
  explicit CampaignManager(ManagerOptions options = {});
  ~CampaignManager();  // Stop(): halts workers; campaigns keep their last checkpoint.
  CampaignManager(const CampaignManager&) = delete;
  CampaignManager& operator=(const CampaignManager&) = delete;

  // Validates the spec cheaply (domain registered, corpus dir not already
  // claimed / holds the right campaign) and queues the campaign. Model
  // loading and training happen on a worker at first pick-up. Throws
  // std::invalid_argument on a bad spec or when draining.
  uint64_t Submit(CampaignSpec spec);

  // Snapshot of one campaign; throws std::out_of_range for unknown ids.
  CampaignStatus Status(uint64_t id) const;
  // Snapshots of all campaigns, id order.
  std::vector<CampaignStatus> List() const;

  // Requests a pause at the next batch boundary. False if the campaign is
  // already terminal or paused.
  bool Pause(uint64_t id);
  // Requeues a paused campaign. False unless currently paused.
  bool Resume(uint64_t id);
  // Cancels at the next batch boundary (PENDING/PAUSED cancel immediately).
  // The corpus keeps its last checkpoint, so a cancelled durable campaign
  // can be resubmitted with resume=true. False if already terminal.
  bool Cancel(uint64_t id);

  // Full final stats of a DONE campaign (bit-identity tests compare these
  // against standalone Session::Run). Throws unless state == kDone.
  RunStats Results(uint64_t id) const;

  // Runs the corpus-maintenance chain (distill -> dedup -> minimize, per
  // `options`) over campaign `id`'s recorded corpus and verifies the result
  // with Session::Replay. A live campaign is paused at its next sync-batch
  // boundary first (the corpus is only ever read between batches) and
  // requeued afterwards; paused/terminal campaigns are compacted in place of
  // wherever they stopped. Blocks the caller for the duration. Throws
  // std::invalid_argument on bad options / ephemeral campaigns and
  // std::runtime_error when verification fails or the boundary never comes.
  CompactResult Compact(uint64_t id, const CompactOptions& options);

  // Compactions completed since the daemon started, and the last one's
  // result (false when none has run yet) — what /metrics serves.
  uint64_t compactions_total() const;
  bool LastCompaction(CompactResult* out) const;

  // Stops accepting submissions, pauses every live campaign at its next
  // batch boundary (PENDING ones pause before their first batch), and
  // returns once no worker is executing. Durable campaigns have a fresh
  // checkpoint; a restarted daemon resumes them bit-identically.
  void Drain();

  bool draining() const;
  // Process-wide counters for /metrics.
  uint64_t submitted_total() const;

 private:
  void WorkerLoop();
  // Executes one slice of campaign `id` on the calling worker thread.
  void RunSlice(uint64_t id);
  void InitializeLocked(Campaign& c);  // called without the mutex held (exec state)
  // Trained models of a domain via the shared blob cache (first call per
  // domain trains/loads under the zoo mutex; later calls deserialize copies).
  std::vector<Model> LoadModels(const std::string& domain_key);
  void Enqueue(uint64_t id);  // requires mu_ held

  ManagerOptions options_;
  std::unique_ptr<ThreadPool> compute_pool_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  // workers wait for ids
  std::condition_variable idle_cv_;   // Drain() waits for executing == 0
  std::deque<uint64_t> queue_;
  std::map<uint64_t, std::unique_ptr<Campaign>> campaigns_;
  uint64_t next_id_ = 1;
  uint64_t submitted_total_ = 0;
  uint64_t compactions_total_ = 0;
  bool has_compaction_ = false;
  CompactResult last_compaction_;
  int executing_count_ = 0;
  bool draining_ = false;
  bool stopping_ = false;

  // Shared trained-model cache: domain key -> serialized model blobs. Models
  // are move-only, so each campaign deserializes its own copies; ModelZoo's
  // disk cache is not thread-safe, so training happens under zoo_mu_.
  std::mutex zoo_mu_;
  std::map<std::string, std::vector<std::string>> zoo_blobs_;
};

}  // namespace dx

#endif  // DX_SERVICE_CAMPAIGN_MANAGER_H_

#ifndef DX_SERVICE_CAMPAIGN_H_
#define DX_SERVICE_CAMPAIGN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/constraints/constraint.h"
#include "src/core/executor.h"
#include "src/core/session.h"
#include "src/corpus/corpus.h"
#include "src/nn/model.h"

namespace dx {

// Campaign lifecycle. PENDING campaigns are queued but have never executed a
// batch; RUNNING covers both "a worker is stepping it now" and "between
// slices, waiting in the queue". PAUSED/DONE/FAILED/CANCELLED are reached
// only at sync-batch boundaries, which are the engine's checkpoint and
// determinism boundaries — that is what makes pause/resume bit-identical.
enum class CampaignState {
  kPending,
  kRunning,
  kPaused,
  kDone,
  kFailed,
  kCancelled,
};

const char* CampaignStateName(CampaignState state);

// Everything a `submit` carries. Mirrors the CLI's fresh-run flags; with
// `resume` set, all result-affecting fields are read from the corpus
// manifest instead (the same source of truth the CLI's --resume uses).
struct CampaignSpec {
  std::string domain;          // registry key, e.g. "mnist"
  std::string constraint;      // variant name; "" or "default" = spec default
  std::string metric = "neuron";
  std::string objective = "joint";
  std::string scheduler = "roundrobin";
  int seeds = 100;             // seed inputs drawn from the domain test set
  int max_tests = 1 << 30;
  int max_seed_passes = 1;
  float coverage_goal = 1.1f;
  int max_iterations_per_seed = 0;  // 0 keeps the domain default
  uint64_t rng_seed = 1234;
  int batch_size = 8;
  int sync_interval = 64;
  std::string corpus_dir;      // "" = ephemeral (in-memory only)
  bool resume = false;         // continue the campaign recorded in corpus_dir
};

// Lightweight control-plane snapshot (what `status`, `list`, and /metrics
// read). Never touches the heavyweight execution state.
struct CampaignStatus {
  uint64_t id = 0;
  CampaignState state = CampaignState::kPending;
  std::string domain;
  std::string constraint;
  std::string corpus_dir;
  std::string error;           // FAILED diagnostics
  RunProgress progress;        // campaign-cumulative counters
  ExecutorProfile profile;     // phase timings (observational)
  double tests_per_second = 0.0;
  // On-disk corpus summary, refreshed at every slice boundary for durable
  // campaigns (false for ephemeral ones or before the first slice).
  bool has_corpus_stats = false;
  CorpusStats corpus_stats;
};

// One addressable campaign: the run state that used to live in stack
// variables of a run-to-completion CLI process (seed pool, scheduler +
// coverage inside Session, corpus handle, progress counters), lifted into an
// object the manager can step, pause, and resume.
//
// Threading contract: `exec` members are touched only by the single worker
// currently executing the campaign (the manager's queue discipline
// guarantees an id is either queued or being executed, never both);
// control-plane members are guarded by the manager's mutex.
struct Campaign {
  uint64_t id = 0;
  CampaignSpec spec;

  // --- execution state (worker-only) ---
  std::vector<Model> models;
  std::unique_ptr<Constraint> constraint;
  std::unique_ptr<Session> session;
  std::unique_ptr<Corpus> corpus;
  std::vector<Tensor> seed_pool;
  std::unique_ptr<SessionRun> run;

  // --- control plane (manager mutex) ---
  CampaignState state = CampaignState::kPending;
  bool queued = false;         // id currently sitting in the worker queue
  bool executing = false;      // a worker is inside RunSlice for this id
  std::string error;
  RunProgress progress;
  ExecutorProfile profile;
  std::unique_ptr<RunStats> final_stats;  // set on kDone
  bool has_corpus_stats = false;          // corpus_stats below is meaningful
  CorpusStats corpus_stats;               // refreshed at slice boundaries

  // --- asynchronous requests (checked at batch boundaries) ---
  std::atomic<bool> pause_requested{false};
  std::atomic<bool> cancel_requested{false};
};

}  // namespace dx

#endif  // DX_SERVICE_CAMPAIGN_H_

#include "src/service/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace dx {
namespace {

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_in MakeAddr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("net: invalid IPv4 address \"" + host + "\"");
  }
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int Socket::Release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

Socket TcpListen(const std::string& host, int port, int* bound_port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    ThrowErrno("net: socket");
  }
  int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = MakeAddr(host, port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ThrowErrno("net: bind " + host + ":" + std::to_string(port));
  }
  if (::listen(sock.fd(), 64) != 0) {
    ThrowErrno("net: listen");
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      ThrowErrno("net: getsockname");
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return sock;
}

Socket TcpAccept(const Socket& listener) {
  int fd = ::accept(listener.fd(), nullptr, nullptr);
  return Socket(fd);  // invalid (-1) on failure; caller loops or exits
}

Socket TcpConnect(const std::string& host, int port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    ThrowErrno("net: socket");
  }
  sockaddr_in addr = MakeAddr(host, port);
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ThrowErrno("net: connect " + host + ":" + std::to_string(port));
  }
  int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

void SetRecvTimeout(const Socket& socket, int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void WriteAll(const Socket& socket, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::send(socket.fd(), data.data() + written, data.size() - written,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ThrowErrno("net: send");
    }
    written += static_cast<size_t>(n);
  }
}

bool LineReader::ReadLine(std::string* line) {
  while (true) {
    size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      *line = buffer_.substr(0, pos);
      buffer_.erase(0, pos + 1);
      if (!line->empty() && line->back() == '\r') {
        line->pop_back();
      }
      return true;
    }
    if (eof_) {
      return false;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      eof_ = true;
      return false;  // timeout, error, or orderly shutdown all end the stream
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

bool LineReader::ReadExact(size_t n, std::string* out) {
  while (buffer_.size() < n) {
    if (eof_) {
      return false;
    }
    char chunk[4096];
    ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got < 0 && errno == EINTR) {
      continue;
    }
    if (got <= 0) {
      eof_ = true;
      return false;
    }
    buffer_.append(chunk, static_cast<size_t>(got));
  }
  out->append(buffer_, 0, n);
  buffer_.erase(0, n);
  return true;
}

}  // namespace dx

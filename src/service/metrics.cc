#include "src/service/metrics.h"

#include <cmath>
#include <cstdio>

namespace dx {
namespace {

void AppendEscaped(const std::string& value, std::string* out) {
  for (char c : value) {
    switch (c) {
      case '\\': *out += "\\\\"; break;
      case '"': *out += "\\\""; break;
      case '\n': *out += "\\n"; break;
      default: out->push_back(c);
    }
  }
}

void AppendValue(double value, std::string* out) {
  char buf[32];
  if (std::isnan(value)) {
    std::snprintf(buf, sizeof(buf), "NaN");
  } else if (std::isinf(value)) {
    std::snprintf(buf, sizeof(buf), value > 0 ? "+Inf" : "-Inf");
  } else if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", value);
  }
  *out += buf;
}

}  // namespace

void PrometheusWriter::Family(const std::string& name, const std::string& help,
                              const std::string& type) {
  text_ += "# HELP " + name + " " + help + "\n";
  text_ += "# TYPE " + name + " " + type + "\n";
}

void PrometheusWriter::Sample(const std::string& name, const Labels& labels,
                              double value) {
  text_ += name;
  if (!labels.empty()) {
    text_.push_back('{');
    bool first = true;
    for (const auto& [key, label_value] : labels) {
      if (!first) text_.push_back(',');
      first = false;
      text_ += key;
      text_ += "=\"";
      AppendEscaped(label_value, &text_);
      text_.push_back('"');
    }
    text_.push_back('}');
  }
  text_.push_back(' ');
  AppendValue(value, &text_);
  text_.push_back('\n');
}

}  // namespace dx

#ifndef DX_SERVICE_METRICS_H_
#define DX_SERVICE_METRICS_H_

#include <string>
#include <utility>
#include <vector>

namespace dx {

// Emits the Prometheus text exposition format (version 0.0.4): one
// `# HELP` / `# TYPE` pair per family, then `name{labels} value` samples.
// Families must be opened before their samples; label values are escaped
// per the spec (backslash, double-quote, newline).
class PrometheusWriter {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  void Family(const std::string& name, const std::string& help,
              const std::string& type);
  void Sample(const std::string& name, const Labels& labels, double value);

  const std::string& text() const { return text_; }

 private:
  std::string text_;
};

}  // namespace dx

#endif  // DX_SERVICE_METRICS_H_

#ifndef DX_SERVICE_HTTP_H_
#define DX_SERVICE_HTTP_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "src/service/net.h"

namespace dx {

// Minimal embedded HTTP/1.0-style listener for the introspection plane
// (/health, /metrics). One accept thread, one request per connection,
// connection closed after the response — scrapers and curl both cope, and
// it keeps the server free of keep-alive state.
class HttpServer {
 public:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  // Handler receives the request path (with query string stripped).
  using Handler = std::function<Response(const std::string& path)>;

  HttpServer() = default;
  ~HttpServer() { Stop(); }
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds and starts the accept thread. Throws on bind failure.
  void Start(const std::string& host, int port, Handler handler);
  void Stop();

  int port() const { return port_; }

 private:
  void Serve();

  Socket listener_;
  Handler handler_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  int port_ = 0;
};

}  // namespace dx

#endif  // DX_SERVICE_HTTP_H_

#include "src/service/http.h"

#include <sstream>

namespace dx {
namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

}  // namespace

void HttpServer::Start(const std::string& host, int port, Handler handler) {
  handler_ = std::move(handler);
  listener_ = TcpListen(host, port, &port_);
  stopping_.store(false);
  thread_ = std::thread([this] { Serve(); });
}

void HttpServer::Stop() {
  if (!thread_.joinable()) {
    return;
  }
  stopping_.store(true);
  // Connecting to ourselves unblocks the accept() so the thread can observe
  // stopping_ — portable, no signalfd/pipe plumbing needed.
  try {
    Socket poke = TcpConnect("127.0.0.1", port_);
  } catch (const std::exception&) {
    // Listener already gone; the thread will notice on its own.
  }
  thread_.join();
  listener_.Close();
}

void HttpServer::Serve() {
  while (!stopping_.load()) {
    Socket conn = TcpAccept(listener_);
    if (!conn.valid()) {
      if (stopping_.load()) {
        return;
      }
      continue;
    }
    if (stopping_.load()) {
      return;
    }
    SetRecvTimeout(conn, 2000);  // a stalled client must not wedge the plane
    LineReader reader(conn);
    std::string request_line;
    if (!reader.ReadLine(&request_line)) {
      continue;
    }
    // "GET /path HTTP/1.1" — method and version are ignored beyond parsing.
    std::istringstream parts(request_line);
    std::string method, target, version;
    parts >> method >> target >> version;
    // Drain headers so well-behaved clients see a clean close.
    std::string header;
    while (reader.ReadLine(&header) && !header.empty()) {
    }
    Response response;
    if (method != "GET") {
      response.status = 400;
      response.body = "only GET is supported\n";
    } else {
      const size_t query = target.find('?');
      if (query != std::string::npos) {
        target.resize(query);
      }
      try {
        response = handler_(target);
      } catch (const std::exception& e) {
        response.status = 500;
        response.body = std::string("internal error: ") + e.what() + "\n";
      }
    }
    std::ostringstream out;
    out << "HTTP/1.0 " << response.status << " " << StatusText(response.status)
        << "\r\nContent-Type: " << response.content_type
        << "\r\nContent-Length: " << response.body.size()
        << "\r\nConnection: close\r\n\r\n"
        << response.body;
    try {
      WriteAll(conn, out.str());
    } catch (const std::exception&) {
      // Peer vanished mid-response; nothing to do.
    }
  }
}

}  // namespace dx

#ifndef DX_SERVICE_NET_H_
#define DX_SERVICE_NET_H_

#include <string>

namespace dx {

// Thin RAII + helper layer over POSIX loopback TCP sockets. Everything the
// service needs — listen, accept, connect, line-framed reads, full writes —
// and nothing else; no external networking dependency.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();
  // Releases ownership without closing (for handing the fd to a thread).
  int Release();

 private:
  int fd_ = -1;
};

// Binds + listens on host:port (port 0 picks an ephemeral port). Throws
// std::runtime_error with errno text on failure. *bound_port receives the
// actual port (useful with port 0).
Socket TcpListen(const std::string& host, int port, int* bound_port);

// Accepts one connection; returns an invalid Socket on transient failure
// (EINTR / listener closed) instead of throwing.
Socket TcpAccept(const Socket& listener);

// Connects to host:port; throws std::runtime_error on failure.
Socket TcpConnect(const std::string& host, int port);

// Optional per-socket receive timeout; 0 disables.
void SetRecvTimeout(const Socket& socket, int millis);

// Writes the whole buffer, throwing on error (EPIPE included — callers treat
// a vanished peer as a dropped request).
void WriteAll(const Socket& socket, const std::string& data);

// Buffered reader that frames a byte stream into '\n'-terminated lines.
class LineReader {
 public:
  explicit LineReader(const Socket& socket) : fd_(socket.fd()) {}

  // Reads the next line (without the trailing newline; a trailing '\r' is
  // stripped for telnet/HTTP friendliness). Returns false on EOF or timeout.
  bool ReadLine(std::string* line);

  // Reads exactly n bytes into *out (appending); false on premature EOF.
  bool ReadExact(size_t n, std::string* out);

 private:
  int fd_;
  std::string buffer_;
  bool eof_ = false;
};

}  // namespace dx

#endif  // DX_SERVICE_NET_H_

#include "src/service/daemon.h"

#include <chrono>
#include <cstring>

#include "src/service/metrics.h"
#include "src/tensor/simd.h"

namespace dx {
namespace {

// FNV-1a over the tensor's float bytes: a stable input digest so `results`
// responses can be diffed across daemon and standalone runs without shipping
// whole tensors over the wire.
uint64_t TensorDigest(const Tensor& t) {
  uint64_t hash = 1469598103934665603ull;
  const float* data = t.data();
  const unsigned char* bytes = reinterpret_cast<const unsigned char*>(data);
  const size_t n = static_cast<size_t>(t.numel()) * sizeof(float);
  for (size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

Json Error(const std::string& message) {
  Json response = Json::Object();
  response["ok"] = Json(false);
  response["error"] = Json(message);
  return response;
}

Json Ok() {
  Json response = Json::Object();
  response["ok"] = Json(true);
  return response;
}

Json StatusJson(const CampaignStatus& status) {
  Json j = Json::Object();
  j["id"] = Json(status.id);
  j["state"] = Json(CampaignStateName(status.state));
  j["domain"] = Json(status.domain);
  j["constraint"] = Json(status.constraint);
  j["corpus_dir"] = Json(status.corpus_dir);
  if (!status.error.empty()) {
    j["error"] = Json(status.error);
  }
  j["batches"] = Json(status.progress.batches);
  j["seeds_tried"] = Json(status.progress.seeds_tried);
  j["seeds_skipped"] = Json(status.progress.seeds_skipped);
  j["tests_found"] = Json(status.progress.tests_found);
  j["total_iterations"] = Json(status.progress.total_iterations);
  j["forward_passes"] = Json(status.progress.forward_passes);
  j["mean_coverage"] = Json(static_cast<double>(status.progress.mean_coverage));
  j["seconds"] = Json(status.progress.seconds);
  j["tests_per_second"] = Json(status.tests_per_second);
  return j;
}

CampaignSpec SpecFromRequest(const Json& request) {
  CampaignSpec spec;
  spec.domain = request.GetString("domain", "");
  spec.constraint = request.GetString("constraint", "");
  spec.metric = request.GetString("metric", spec.metric);
  spec.objective = request.GetString("objective", spec.objective);
  spec.scheduler = request.GetString("scheduler", spec.scheduler);
  spec.seeds = static_cast<int>(request.GetInt("seeds", spec.seeds));
  spec.max_tests = static_cast<int>(request.GetInt("max_tests", spec.max_tests));
  spec.max_seed_passes =
      static_cast<int>(request.GetInt("max_seed_passes", spec.max_seed_passes));
  spec.coverage_goal = static_cast<float>(
      request.GetNumber("coverage_goal", static_cast<double>(spec.coverage_goal)));
  spec.max_iterations_per_seed = static_cast<int>(
      request.GetInt("max_iterations_per_seed", spec.max_iterations_per_seed));
  spec.rng_seed = static_cast<uint64_t>(request.GetInt("rng_seed", 1234));
  spec.batch_size = static_cast<int>(request.GetInt("batch_size", spec.batch_size));
  spec.sync_interval =
      static_cast<int>(request.GetInt("sync_interval", spec.sync_interval));
  spec.corpus_dir = request.GetString("corpus_dir", "");
  spec.resume = request.GetBool("resume", false);
  return spec;
}

}  // namespace

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {
  manager_ = std::make_unique<CampaignManager>(options_.manager);
}

Daemon::~Daemon() { Stop(); }

void Daemon::Start() {
  ctl_listener_ = TcpListen(options_.host, options_.port, &port_);
  http_server_.Start(options_.host, options_.http_port,
                     [this](const std::string& path) { return HandleHttp(path); });
  stopping_.store(false);
  ctl_thread_ = std::thread([this] { ServeCtl(); });
  uptime_.Reset();
  started_ = true;
}

void Daemon::Stop() {
  if (!started_) {
    return;
  }
  started_ = false;
  stopping_.store(true);
  try {
    Socket poke = TcpConnect(options_.host, port_);
  } catch (const std::exception&) {
  }
  ctl_thread_.join();
  ctl_listener_.Close();
  http_server_.Stop();
  manager_.reset();  // joins campaign workers (campaigns keep checkpoints)
}

void Daemon::WaitForShutdown() {
  while (!drain_requested_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  manager_->Drain();
}

void Daemon::ServeCtl() {
  while (!stopping_.load()) {
    Socket conn = TcpAccept(ctl_listener_);
    if (!conn.valid() || stopping_.load()) {
      if (stopping_.load()) {
        return;
      }
      continue;
    }
    SetRecvTimeout(conn, 5000);
    LineReader reader(conn);
    std::string line;
    if (!reader.ReadLine(&line)) {
      continue;
    }
    requests_total_.fetch_add(1);
    Json response;
    try {
      response = Handle(Json::Parse(line));
    } catch (const std::exception& e) {
      response = Error(e.what());
    }
    try {
      WriteAll(conn, response.Dump() + "\n");
    } catch (const std::exception&) {
      // Client vanished; drop the response.
    }
  }
}

Json Daemon::Handle(const Json& request) {
  if (!request.is_object()) {
    return Error("request must be a JSON object");
  }
  const std::string cmd = request.GetString("cmd", "");
  if (cmd.empty()) {
    return Error("missing \"cmd\"");
  }
  try {
    if (cmd == "ping") {
      Json response = Ok();
      response["pong"] = Json(true);
      return response;
    }
    if (cmd == "submit") {
      const uint64_t id = manager_->Submit(SpecFromRequest(request));
      Json response = Ok();
      response["id"] = Json(id);
      return response;
    }
    if (cmd == "status") {
      const uint64_t id = static_cast<uint64_t>(request.At("id").AsInt());
      Json response = Ok();
      response["campaign"] = StatusJson(manager_->Status(id));
      return response;
    }
    if (cmd == "list") {
      Json campaigns = Json::Array();
      for (const CampaignStatus& status : manager_->List()) {
        campaigns.Append(StatusJson(status));
      }
      Json response = Ok();
      response["campaigns"] = std::move(campaigns);
      return response;
    }
    if (cmd == "pause" || cmd == "resume" || cmd == "cancel") {
      const uint64_t id = static_cast<uint64_t>(request.At("id").AsInt());
      bool applied = false;
      if (cmd == "pause") {
        applied = manager_->Pause(id);
      } else if (cmd == "resume") {
        applied = manager_->Resume(id);
      } else {
        applied = manager_->Cancel(id);
      }
      Json response = Ok();
      response["applied"] = Json(applied);
      response["campaign"] = StatusJson(manager_->Status(id));
      return response;
    }
    if (cmd == "results") {
      const uint64_t id = static_cast<uint64_t>(request.At("id").AsInt());
      const RunStats stats = manager_->Results(id);
      Json response = Ok();
      response["seeds_tried"] = Json(stats.seeds_tried);
      response["seeds_skipped"] = Json(stats.seeds_skipped);
      response["total_iterations"] = Json(stats.total_iterations);
      response["forward_passes"] = Json(stats.forward_passes);
      response["mean_coverage"] = Json(static_cast<double>(stats.mean_coverage));
      response["seconds"] = Json(stats.seconds);
      Json tests = Json::Array();
      for (const GeneratedTest& test : stats.tests) {
        Json t = Json::Object();
        t["seed_index"] = Json(test.seed_index);
        t["iterations"] = Json(test.iterations);
        t["deviating_model"] = Json(test.deviating_model);
        t["task_ordinal"] = Json(test.task_ordinal);
        t["input_digest"] = Json(std::to_string(TensorDigest(test.input)));
        Json labels = Json::Array();
        for (int label : test.labels) {
          labels.Append(Json(label));
        }
        t["labels"] = std::move(labels);
        Json outputs = Json::Array();
        for (float output : test.outputs) {
          outputs.Append(Json(static_cast<double>(output)));
        }
        t["outputs"] = std::move(outputs);
        tests.Append(std::move(t));
      }
      response["tests"] = std::move(tests);
      return response;
    }
    if (cmd == "compact") {
      const uint64_t id = static_cast<uint64_t>(request.At("id").AsInt());
      CompactOptions opts;
      opts.out_dir = request.GetString("out_dir", "");
      opts.distill = request.GetBool("distill", opts.distill);
      opts.dedup = request.GetBool("dedup", opts.dedup);
      opts.minimize = request.GetBool("minimize", opts.minimize);
      opts.deduper = request.GetString("deduper", opts.deduper);
      opts.threshold = static_cast<float>(
          request.GetNumber("threshold", static_cast<double>(opts.threshold)));
      const CompactResult result = manager_->Compact(id, opts);
      Json response = Ok();
      response["out_dir"] = Json(result.out_dir);
      response["entries_before"] = Json(result.entries_before);
      response["entries_after"] = Json(result.entries_after);
      response["verified"] = Json(result.verified);
      response["resumed"] = Json(result.resumed);
      response["seconds"] = Json(result.seconds);
      Json reports = Json::Array();
      for (const MaintenanceReport& report : result.reports) {
        Json r = Json::Object();
        r["transform"] = Json(report.transform);
        r["input_entries"] = Json(static_cast<uint64_t>(report.input_entries));
        r["retained_entries"] = Json(static_cast<uint64_t>(report.retained_entries));
        r["modified_entries"] = Json(static_cast<uint64_t>(report.modified_entries));
        r["reverted_values"] = Json(static_cast<uint64_t>(report.reverted_values));
        r["seconds"] = Json(report.seconds);
        reports.Append(std::move(r));
      }
      response["reports"] = std::move(reports);
      return response;
    }
    if (cmd == "drain") {
      RequestDrain();
      Json response = Ok();
      response["draining"] = Json(true);
      return response;
    }
    return Error("unknown cmd \"" + cmd + "\"");
  } catch (const std::exception& e) {
    return Error(e.what());
  }
}

Json Daemon::HealthJson() {
  Json health = Json::Object();
  health["status"] = Json("ok");
  health["uptime_seconds"] = Json(uptime_.ElapsedSeconds());
  health["draining"] = Json(manager_->draining() || drain_requested_.load());
  int running = 0;
  const std::vector<CampaignStatus> campaigns = manager_->List();
  for (const CampaignStatus& c : campaigns) {
    if (c.state == CampaignState::kRunning) {
      ++running;
    }
  }
  health["campaigns"] = Json(static_cast<int64_t>(campaigns.size()));
  health["running"] = Json(running);
  return health;
}

std::string Daemon::MetricsText() {
  const std::vector<CampaignStatus> campaigns = manager_->List();
  PrometheusWriter writer;

  writer.Family("dxplored_uptime_seconds", "Daemon uptime.", "gauge");
  writer.Sample("dxplored_uptime_seconds", {}, uptime_.ElapsedSeconds());
  // Build provenance: which SIMD backend the layer kernels were compiled
  // for (info-style gauge, value is the lane width).
  writer.Family("dxplored_simd_lanes",
                "Float lanes of the compiled SIMD backend (labelled by "
                "backend name).",
                "gauge");
  writer.Sample("dxplored_simd_lanes", {{"backend", SimdBackendName()}},
                static_cast<double>(SimdLanes()));
  writer.Family("dxplored_ctl_requests_total",
                "Ctl socket requests received.", "counter");
  writer.Sample("dxplored_ctl_requests_total", {},
                static_cast<double>(requests_total_.load()));
  writer.Family("dxplored_campaigns_submitted_total",
                "Campaigns ever submitted.", "counter");
  writer.Sample("dxplored_campaigns_submitted_total", {},
                static_cast<double>(manager_->submitted_total()));

  writer.Family("dxplored_campaigns", "Campaigns by lifecycle state.", "gauge");
  static const CampaignState kStates[] = {
      CampaignState::kPending, CampaignState::kRunning, CampaignState::kPaused,
      CampaignState::kDone,    CampaignState::kFailed,  CampaignState::kCancelled,
  };
  for (CampaignState state : kStates) {
    int count = 0;
    for (const CampaignStatus& c : campaigns) {
      if (c.state == state) {
        ++count;
      }
    }
    writer.Sample("dxplored_campaigns", {{"state", CampaignStateName(state)}},
                  count);
  }

  int64_t tests_total = 0;
  for (const CampaignStatus& c : campaigns) {
    tests_total += c.progress.tests_found;
  }
  writer.Family("dxplored_tests_total",
                "Difference-inducing inputs found across all campaigns.",
                "counter");
  writer.Sample("dxplored_tests_total", {}, static_cast<double>(tests_total));

  writer.Family("dxplored_campaign_tests_total",
                "Difference-inducing inputs found by one campaign.", "counter");
  writer.Family("dxplored_campaign_seeds_tried_total",
                "Seeds attempted by one campaign.", "counter");
  writer.Family("dxplored_campaign_batches_total",
                "Sync batches completed by one campaign.", "counter");
  writer.Family("dxplored_campaign_forward_passes_total",
                "Model forward passes spent by one campaign.", "counter");
  writer.Family("dxplored_campaign_coverage_ratio",
                "Mean neuron coverage of one campaign (0-1).", "gauge");
  writer.Family("dxplored_campaign_tests_per_second",
                "Difference-inducing inputs per active second.", "gauge");
  writer.Family("dxplored_campaign_active_seconds",
                "Active (not paused) stepping wall time.", "counter");
  for (const CampaignStatus& c : campaigns) {
    const PrometheusWriter::Labels labels = {
        {"campaign", std::to_string(c.id)},
        {"domain", c.domain},
        {"state", CampaignStateName(c.state)},
    };
    writer.Sample("dxplored_campaign_tests_total", labels,
                  c.progress.tests_found);
    writer.Sample("dxplored_campaign_seeds_tried_total", labels,
                  c.progress.seeds_tried);
    writer.Sample("dxplored_campaign_batches_total", labels,
                  static_cast<double>(c.progress.batches));
    writer.Sample("dxplored_campaign_forward_passes_total", labels,
                  static_cast<double>(c.progress.forward_passes));
    writer.Sample("dxplored_campaign_coverage_ratio", labels,
                  static_cast<double>(c.progress.mean_coverage));
    writer.Sample("dxplored_campaign_tests_per_second", labels,
                  c.tests_per_second);
    writer.Sample("dxplored_campaign_active_seconds", labels,
                  c.progress.seconds);
  }

  writer.Family("dxplored_executor_phase_seconds",
                "Batched-executor wall time by phase (ExecutorProfile).",
                "counter");
  for (const CampaignStatus& c : campaigns) {
    const std::pair<const char*, double> phases[] = {
        {"stack", c.profile.stack_seconds},
        {"forward", c.profile.forward_seconds},
        {"backward_layers", c.profile.backward_layers_seconds},
        {"objective_accumulate", c.profile.objective_accumulate_seconds},
        {"constraint", c.profile.constraint_seconds},
        {"coverage", c.profile.coverage_seconds},
    };
    for (const auto& [phase, seconds] : phases) {
      writer.Sample("dxplored_executor_phase_seconds",
                    {{"campaign", std::to_string(c.id)}, {"phase", phase}},
                    seconds);
    }
  }

  // Corpus plane: on-disk shape of each durable campaign's corpus (cached at
  // slice boundaries) and the compaction counters.
  writer.Family("dxplored_corpus_entries",
                "Recorded difference-inducing entries in a campaign's corpus.",
                "gauge");
  writer.Family("dxplored_corpus_bytes",
                "On-disk corpus footprint in bytes.", "gauge");
  writer.Family("dxplored_corpus_checkpoint_records",
                "Checkpoint chain records by kind (snapshot/delta).", "gauge");
  for (const CampaignStatus& c : campaigns) {
    if (!c.has_corpus_stats) {
      continue;
    }
    const PrometheusWriter::Labels labels = {
        {"campaign", std::to_string(c.id)},
        {"domain", c.domain},
    };
    writer.Sample("dxplored_corpus_entries", labels,
                  static_cast<double>(c.corpus_stats.num_entries));
    writer.Sample("dxplored_corpus_bytes", labels,
                  static_cast<double>(c.corpus_stats.total_bytes));
    writer.Sample("dxplored_corpus_checkpoint_records",
                  {{"campaign", std::to_string(c.id)}, {"kind", "snapshot"}},
                  static_cast<double>(c.corpus_stats.chain_snapshots));
    writer.Sample("dxplored_corpus_checkpoint_records",
                  {{"campaign", std::to_string(c.id)}, {"kind", "delta"}},
                  static_cast<double>(c.corpus_stats.chain_deltas));
  }

  writer.Family("dxplored_compactions_total",
                "Corpus compactions served via the compact ctl command.",
                "counter");
  writer.Sample("dxplored_compactions_total", {},
                static_cast<double>(manager_->compactions_total()));
  CompactResult last;
  if (manager_->LastCompaction(&last)) {
    writer.Family("dxplored_compaction_entries",
                  "Corpus entries in/out of the last compaction.", "gauge");
    writer.Sample("dxplored_compaction_entries", {{"stage", "input"}},
                  static_cast<double>(last.entries_before));
    writer.Sample("dxplored_compaction_entries", {{"stage", "output"}},
                  static_cast<double>(last.entries_after));
    writer.Family("dxplored_compaction_seconds",
                  "Wall time of the last compaction.", "gauge");
    writer.Sample("dxplored_compaction_seconds", {}, last.seconds);
  }
  return writer.text();
}

HttpServer::Response Daemon::HandleHttp(const std::string& path) {
  HttpServer::Response response;
  if (path == "/health") {
    response.content_type = "application/json";
    response.body = HealthJson().Dump() + "\n";
  } else if (path == "/metrics") {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = MetricsText();
  } else {
    response.status = 404;
    response.body = "not found; try /health or /metrics\n";
  }
  return response;
}

}  // namespace dx

#ifndef DX_SERVICE_CLIENT_H_
#define DX_SERVICE_CLIENT_H_

#include <string>

#include "src/util/json.h"

namespace dx {

// One ctl round-trip: connect, send the request as a single JSON line, read
// the single JSON response line. Throws std::runtime_error on transport or
// parse failure.
Json CtlRequest(const std::string& host, int port, const Json& request);

// Plain HTTP GET returning the response body (status line checked for 200;
// throws otherwise). Used for /health and /metrics so the smoke tooling
// needs no external HTTP client.
std::string HttpGet(const std::string& host, int port, const std::string& path);

// The dxplorectl command driver (shared by the dxplorectl binary and the
// CLI's `ctl` subcommand). argv holds the arguments after the program name:
//   [--host H] [--port P] [--http-port P] COMMAND [ARGS...]
// Commands: ping, submit, status ID, list, pause ID, resume ID, cancel ID,
// results ID, wait ID [--timeout-seconds S], drain, get PATH.
// Prints the JSON response (or HTTP body) to stdout. Returns 0 on success,
// 1 when the daemon reports an error or `wait` ends non-DONE, 2 on usage
// errors, 3 on transport failure.
int CtlMain(int argc, char** argv);

}  // namespace dx

#endif  // DX_SERVICE_CLIENT_H_

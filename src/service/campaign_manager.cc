#include "src/service/campaign_manager.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "src/core/domain.h"
#include "src/corpus/dedup.h"
#include "src/corpus/distill.h"
#include "src/corpus/minimize.h"
#include "src/models/zoo.h"
#include "src/util/timer.h"

namespace dx {

const char* CampaignStateName(CampaignState state) {
  switch (state) {
    case CampaignState::kPending: return "PENDING";
    case CampaignState::kRunning: return "RUNNING";
    case CampaignState::kPaused: return "PAUSED";
    case CampaignState::kDone: return "DONE";
    case CampaignState::kFailed: return "FAILED";
    case CampaignState::kCancelled: return "CANCELLED";
  }
  return "UNKNOWN";
}

CampaignManager::CampaignManager(ManagerOptions options) : options_(options) {
  if (options_.campaign_workers < 1) {
    options_.campaign_workers = 1;
  }
  if (options_.slice_batches < 1) {
    options_.slice_batches = 1;
  }
  int threads = options_.compute_threads;
  if (threads <= 0) {
    threads = std::max(1, static_cast<int>(std::thread::hardware_concurrency()) - 1);
  }
  compute_pool_ = std::make_unique<ThreadPool>(threads);
  workers_.reserve(static_cast<size_t>(options_.campaign_workers));
  for (int i = 0; i < options_.campaign_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

CampaignManager::~CampaignManager() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

uint64_t CampaignManager::Submit(CampaignSpec spec) {
  if (spec.resume) {
    if (spec.corpus_dir.empty()) {
      throw std::invalid_argument("submit: resume requires corpus_dir");
    }
    Corpus probe(spec.corpus_dir);
    if (!probe.initialized()) {
      throw std::invalid_argument("submit: " + spec.corpus_dir +
                                  " holds no recorded campaign to resume");
    }
    const CorpusMeta& meta = probe.meta();
    const std::string* domain = meta.FindMetadata("domain");
    const std::string* constraint = meta.FindMetadata("constraint");
    if (domain == nullptr || constraint == nullptr) {
      throw std::invalid_argument("submit: " + spec.corpus_dir +
                                  " manifest lacks domain/constraint metadata");
    }
    // The manifest is the source of truth; reflect it into the spec so
    // status/list report the real campaign parameters.
    spec.domain = *domain;
    spec.constraint = *constraint;
    spec.metric = meta.metric;
    spec.objective = meta.objective;
    spec.scheduler = meta.scheduler;
    spec.max_tests = meta.max_tests;
    spec.max_seed_passes = meta.max_seed_passes;
    spec.coverage_goal = meta.coverage_goal;
    spec.sync_interval = meta.sync_interval;
    spec.seeds = static_cast<int>(meta.seeds.size());
  } else {
    if (spec.seeds < 1) {
      throw std::invalid_argument("submit: seeds must be >= 1");
    }
    if (spec.sync_interval < 1) {
      throw std::invalid_argument(
          "submit: the service requires sync batches (sync_interval >= 1)");
    }
  }
  bool fresh_dir_initialized = false;
  if (!spec.resume && !spec.corpus_dir.empty()) {
    Corpus probe(spec.corpus_dir);
    fresh_dir_initialized = probe.initialized();
  }
  // Resolve through the registry now so an unknown domain/constraint fails
  // the submit, not the worker an arbitrary time later.
  const DomainSpec& domain = GetDomain(spec.domain);
  ResolveDomainConstraint(domain, spec.constraint);

  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_ || draining_) {
    throw std::invalid_argument("submit: manager is draining");
  }
  if (!spec.corpus_dir.empty()) {
    for (const auto& [other_id, other] : campaigns_) {
      const bool live = other->state == CampaignState::kPending ||
                        other->state == CampaignState::kRunning ||
                        other->state == CampaignState::kPaused;
      if (live && other->spec.corpus_dir == spec.corpus_dir) {
        throw std::invalid_argument("submit: corpus dir " + spec.corpus_dir +
                                    " is already in use by campaign " +
                                    std::to_string(other_id));
      }
    }
    if (fresh_dir_initialized) {
      throw std::invalid_argument(
          "submit: " + spec.corpus_dir +
          " already holds a campaign; submit with resume to continue it");
    }
  }
  const uint64_t id = next_id_++;
  auto campaign = std::make_unique<Campaign>();
  campaign->id = id;
  campaign->spec = std::move(spec);
  campaigns_.emplace(id, std::move(campaign));
  ++submitted_total_;
  Enqueue(id);
  return id;
}

CampaignStatus CampaignManager::Status(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = campaigns_.find(id);
  if (it == campaigns_.end()) {
    throw std::out_of_range("unknown campaign " + std::to_string(id));
  }
  const Campaign& c = *it->second;
  CampaignStatus status;
  status.id = c.id;
  status.state = c.state;
  status.domain = c.spec.domain;
  status.constraint = c.spec.constraint;
  status.corpus_dir = c.spec.corpus_dir;
  status.error = c.error;
  status.progress = c.progress;
  status.profile = c.profile;
  status.tests_per_second =
      c.progress.seconds > 0.0 ? c.progress.tests_found / c.progress.seconds : 0.0;
  status.has_corpus_stats = c.has_corpus_stats;
  status.corpus_stats = c.corpus_stats;
  return status;
}

std::vector<CampaignStatus> CampaignManager::List() const {
  std::vector<uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, c] : campaigns_) {
      ids.push_back(id);
    }
  }
  std::vector<CampaignStatus> all;
  all.reserve(ids.size());
  for (uint64_t id : ids) {
    all.push_back(Status(id));
  }
  return all;
}

bool CampaignManager::Pause(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = campaigns_.find(id);
  if (it == campaigns_.end()) {
    throw std::out_of_range("unknown campaign " + std::to_string(id));
  }
  Campaign& c = *it->second;
  if (c.state != CampaignState::kPending && c.state != CampaignState::kRunning) {
    return false;
  }
  c.pause_requested.store(true);
  return true;
}

bool CampaignManager::Resume(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = campaigns_.find(id);
  if (it == campaigns_.end()) {
    throw std::out_of_range("unknown campaign " + std::to_string(id));
  }
  Campaign& c = *it->second;
  if (draining_ || stopping_) {
    return false;
  }
  if (c.state == CampaignState::kPending || c.state == CampaignState::kRunning) {
    // Un-pause a not-yet-honored pause request instead of failing.
    bool had_request = c.pause_requested.exchange(false);
    return had_request;
  }
  if (c.state != CampaignState::kPaused) {
    return false;
  }
  c.pause_requested.store(false);
  c.state = c.run == nullptr ? CampaignState::kPending : CampaignState::kRunning;
  Enqueue(id);
  return true;
}

bool CampaignManager::Cancel(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = campaigns_.find(id);
  if (it == campaigns_.end()) {
    throw std::out_of_range("unknown campaign " + std::to_string(id));
  }
  Campaign& c = *it->second;
  if (c.state == CampaignState::kDone || c.state == CampaignState::kFailed ||
      c.state == CampaignState::kCancelled) {
    return false;
  }
  c.cancel_requested.store(true);
  if (c.state == CampaignState::kPaused) {
    // No worker will visit it; requeue so one performs the cancellation
    // (and frees the execution state).
    c.state = CampaignState::kRunning;
    Enqueue(id);
  }
  return true;
}

RunStats CampaignManager::Results(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = campaigns_.find(id);
  if (it == campaigns_.end()) {
    throw std::out_of_range("unknown campaign " + std::to_string(id));
  }
  const Campaign& c = *it->second;
  if (c.state != CampaignState::kDone || c.final_stats == nullptr) {
    throw std::runtime_error("campaign " + std::to_string(id) +
                             " is not DONE (state " +
                             CampaignStateName(c.state) + ")");
  }
  return *c.final_stats;
}

CompactResult CampaignManager::Compact(uint64_t id, const CompactOptions& options) {
  if (options.out_dir.empty()) {
    throw std::invalid_argument("compact: out_dir must be set");
  }
  if (!options.distill && !options.dedup && !options.minimize) {
    throw std::invalid_argument("compact: select at least one pass");
  }
  std::string corpus_dir;
  bool was_active = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = campaigns_.find(id);
    if (it == campaigns_.end()) {
      throw std::out_of_range("unknown campaign " + std::to_string(id));
    }
    Campaign& c = *it->second;
    corpus_dir = c.spec.corpus_dir;
    if (corpus_dir.empty()) {
      throw std::invalid_argument("compact: campaign " + std::to_string(id) +
                                  " records no durable corpus");
    }
    if (c.state == CampaignState::kPending || c.state == CampaignState::kRunning) {
      // The corpus is only touched between slices; ask for the next
      // sync-batch boundary and wait for it below.
      was_active = true;
      c.pause_requested.store(true);
    }
  }
  if (was_active) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (true) {
      CampaignState state;
      {
        std::lock_guard<std::mutex> lock(mu_);
        state = campaigns_.at(id)->state;
      }
      if (state != CampaignState::kPending && state != CampaignState::kRunning) {
        break;
      }
      if (std::chrono::steady_clock::now() > deadline) {
        throw std::runtime_error(
            "compact: timed out waiting for campaign " + std::to_string(id) +
            " to reach a sync-batch boundary");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  CompactResult result;
  result.out_dir = options.out_dir;
  Timer timer;
  try {
    // A fresh read handle on the corpus: the paused campaign keeps its own
    // open handle, but no worker writes until it is requeued, and the
    // maintenance passes never modify the source directory.
    Corpus source(corpus_dir);
    if (!source.initialized() || !source.has_checkpoint()) {
      throw std::invalid_argument("compact: " + corpus_dir +
                                  " holds no recorded campaign yet");
    }
    const CorpusMeta& meta = source.meta();
    const std::string* domain_key = meta.FindMetadata("domain");
    const std::string* constraint_key = meta.FindMetadata("constraint");
    if (domain_key == nullptr || constraint_key == nullptr) {
      throw std::invalid_argument("compact: " + corpus_dir +
                                  " manifest lacks domain/constraint metadata");
    }
    const DomainSpec& domain = GetDomain(*domain_key);
    std::unique_ptr<Constraint> constraint = MakeDomainConstraint(
        domain, ResolveDomainConstraint(domain, *constraint_key));
    std::vector<Model> models = LoadModels(domain.key);
    std::vector<Model*> ptrs;
    ptrs.reserve(models.size());
    for (Model& m : models) {
      ptrs.push_back(&m);
    }
    SessionConfig config;
    config.engine = meta.engine;
    config.metric = meta.metric;
    config.objective = meta.objective;
    config.scheduler = meta.scheduler;
    config.sync_interval = meta.sync_interval;
    config.profile_from_seeds = meta.profile_from_seeds;
    config.workers = 1;
    Session session(ptrs, constraint.get(), config);
    session.SetWorkerPool(compute_pool_.get());

    std::vector<std::string> passes;
    if (options.distill) passes.push_back("distill");
    if (options.dedup) passes.push_back("dedup");
    if (options.minimize) passes.push_back("minimize");
    result.entries_before = source.entries().size();
    std::unique_ptr<Corpus> current = std::make_unique<Corpus>(corpus_dir);
    std::vector<std::string> intermediates;
    for (size_t p = 0; p < passes.size(); ++p) {
      const bool last = p + 1 == passes.size();
      const std::string dst =
          last ? options.out_dir : options.out_dir + ".stage-" + passes[p];
      if (!last) {
        intermediates.push_back(dst);
      }
      MaintenanceReport report;
      if (passes[p] == "distill") {
        DistillOptions pass;
        pass.out_dir = dst;
        report = DistillCorpus(session, *current, pass);
      } else if (passes[p] == "dedup") {
        DedupOptions pass;
        pass.out_dir = dst;
        pass.deduper = options.deduper;
        pass.threshold = options.threshold;
        report = DedupCorpus(session, *current, pass);
      } else {
        MinimizeOptions pass;
        pass.out_dir = dst;
        report = MinimizeCorpus(session, *current, pass);
      }
      result.reports.push_back(std::move(report));
      current = std::make_unique<Corpus>(dst);
    }
    result.entries_after = current->entries().size();

    const ReplayResult verify = session.Replay(*current);
    result.verified = verify.ok;
    if (!verify.ok) {
      throw std::runtime_error("compact: verification of " + current->dir() +
                               " failed: " + verify.mismatch);
    }
    for (const std::string& dir : intermediates) {
      std::filesystem::remove_all(dir);
    }
  } catch (...) {
    if (was_active) {
      Resume(id);
    }
    throw;
  }
  result.seconds = timer.ElapsedSeconds();
  if (was_active) {
    result.resumed = Resume(id);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++compactions_total_;
    last_compaction_ = result;
    has_compaction_ = true;
  }
  return result;
}

uint64_t CampaignManager::compactions_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return compactions_total_;
}

bool CampaignManager::LastCompaction(CompactResult* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!has_compaction_) {
    return false;
  }
  *out = last_compaction_;
  return true;
}

void CampaignManager::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  for (auto& [id, c] : campaigns_) {
    if (c->state == CampaignState::kPending || c->state == CampaignState::kRunning) {
      c->pause_requested.store(true);
    }
  }
  queue_cv_.notify_all();
  // Workers drain the queue by marking every popped campaign paused; wait
  // until the queue is empty and no slice is executing — at that point every
  // durable campaign has a checkpoint at its last completed batch.
  idle_cv_.wait(lock, [this] { return queue_.empty() && executing_count_ == 0; });
}

bool CampaignManager::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

uint64_t CampaignManager::submitted_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_total_;
}

void CampaignManager::Enqueue(uint64_t id) {
  Campaign& c = *campaigns_.at(id);
  if (!c.queued) {
    c.queued = true;
    queue_.push_back(id);
    queue_cv_.notify_one();
  }
}

void CampaignManager::WorkerLoop() {
  while (true) {
    uint64_t id = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) {
        return;
      }
      id = queue_.front();
      queue_.pop_front();
    }
    RunSlice(id);
  }
}

std::vector<Model> CampaignManager::LoadModels(const std::string& domain_key) {
  std::unique_lock<std::mutex> lock(zoo_mu_);
  auto it = zoo_blobs_.find(domain_key);
  if (it == zoo_blobs_.end()) {
    // First campaign of this domain: train/load through the zoo's (non
    // thread-safe) disk cache under the lock, then keep serialized copies
    // so every later campaign deserializes instead of retraining.
    std::vector<Model> trained = ModelZoo::TrainedDomain(domain_key);
    std::vector<std::string> blobs;
    blobs.reserve(trained.size());
    for (const Model& m : trained) {
      blobs.push_back(m.Serialize());
    }
    zoo_blobs_.emplace(domain_key, std::move(blobs));
    return trained;
  }
  const std::vector<std::string> blobs = it->second;
  lock.unlock();
  std::vector<Model> models;
  models.reserve(blobs.size());
  for (const std::string& blob : blobs) {
    models.push_back(Model::Deserialize(blob));
  }
  return models;
}

void CampaignManager::InitializeLocked(Campaign& c) {
  const CampaignSpec& spec = c.spec;
  const DomainSpec& domain = GetDomain(spec.domain);
  const std::string constraint_key = ResolveDomainConstraint(domain, spec.constraint);
  c.constraint = MakeDomainConstraint(domain, constraint_key);
  c.models = LoadModels(domain.key);
  std::vector<Model*> ptrs;
  ptrs.reserve(c.models.size());
  for (Model& m : c.models) {
    ptrs.push_back(&m);
  }

  if (!spec.corpus_dir.empty()) {
    c.corpus = std::make_unique<Corpus>(spec.corpus_dir);
  }

  SessionConfig config;
  RunOptions opts;
  if (spec.resume) {
    // The recorded manifest decides everything result-affecting, exactly as
    // the CLI's --resume does.
    const CorpusMeta& meta = c.corpus->meta();
    config.engine = meta.engine;
    config.sync_interval = meta.sync_interval;
    config.profile_from_seeds = meta.profile_from_seeds;
    c.seed_pool = meta.seeds;
    opts.max_tests = meta.max_tests;
    opts.max_seed_passes = meta.max_seed_passes;
    opts.coverage_goal = meta.coverage_goal;
  } else {
    config.engine = domain.engine_defaults;
    config.engine.rng_seed = spec.rng_seed;
    if (spec.max_iterations_per_seed > 0) {
      config.engine.max_iterations_per_seed = spec.max_iterations_per_seed;
    }
    config.sync_interval = spec.sync_interval;
    {
      // The shared datasets are built lazily per process; serialize first
      // touch the same way model training is.
      std::lock_guard<std::mutex> zoo_lock(zoo_mu_);
      const Dataset& test = ModelZoo::TestSet(domain.key);
      for (int i = 0; i < spec.seeds; ++i) {
        c.seed_pool.push_back(test.inputs[static_cast<size_t>(i) % test.size()]);
      }
    }
    opts.max_tests = spec.max_tests;
    opts.max_seed_passes = spec.max_seed_passes;
    opts.coverage_goal = spec.coverage_goal;
  }
  config.metric = spec.metric;
  config.objective = spec.objective;
  config.scheduler = spec.scheduler;
  config.batch_size = spec.batch_size;
  config.workers = 1;  // parallelism comes from the shared pool below
  config.profile_phases = true;

  c.session = std::make_unique<Session>(ptrs, c.constraint.get(), config);
  c.session->SetWorkerPool(compute_pool_.get());

  if (c.corpus != nullptr && !c.corpus->initialized()) {
    // Registry keys into the manifest so resume/replay (daemon or CLI)
    // rebuild the exact domain + constraint.
    c.corpus->SetMetadata("domain", domain.key);
    c.corpus->SetMetadata("constraint", constraint_key);
  }

  Campaign* campaign = &c;
  opts.on_batch = [this, campaign](const RunProgress& progress) {
    std::lock_guard<std::mutex> lock(mu_);
    campaign->progress = progress;
  };
  c.run = c.session->BeginRun(c.seed_pool, opts, c.corpus.get());
}

void CampaignManager::RunSlice(uint64_t id) {
  Campaign* c = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = campaigns_.find(id);
    if (it == campaigns_.end()) {
      return;
    }
    c = it->second.get();
    c->queued = false;
    if (c->state == CampaignState::kDone || c->state == CampaignState::kFailed ||
        c->state == CampaignState::kCancelled) {
      idle_cv_.notify_all();
      return;
    }
    if (c->cancel_requested.load()) {
      c->state = CampaignState::kCancelled;
      idle_cv_.notify_all();
      return;
    }
    if (c->pause_requested.load()) {
      c->pause_requested.store(false);
      c->state = CampaignState::kPaused;
      idle_cv_.notify_all();
      return;
    }
    c->state = CampaignState::kRunning;
    c->executing = true;
    ++executing_count_;
  }

  // Execution happens without the manager lock: only this worker touches the
  // campaign's exec state (the queue discipline guarantees exclusivity).
  std::string error;
  bool failed = false;
  try {
    if (c->session == nullptr) {
      InitializeLocked(*c);
    }
    for (int i = 0; i < options_.slice_batches; ++i) {
      if (c->pause_requested.load() || c->cancel_requested.load()) {
        break;
      }
      if (!c->run->Step()) {
        break;
      }
    }
  } catch (const std::exception& e) {
    failed = true;
    error = e.what();
  }

  RunProgress progress;
  ExecutorProfile profile;
  std::unique_ptr<RunStats> final_stats;
  bool done = false;
  bool have_corpus_stats = false;
  CorpusStats corpus_stats;
  if (!failed && c->run != nullptr) {
    progress = c->run->Progress();
    profile = c->session->ExecutorPhases();
    done = c->run->done();
    if (done) {
      final_stats = std::make_unique<RunStats>(c->run->Snapshot());
    }
    if (c->corpus != nullptr && c->corpus->initialized()) {
      // Cheap in-memory summary, cached for /metrics (which must never touch
      // a campaign's exec state).
      corpus_stats = c->corpus->Stats();
      have_corpus_stats = true;
    }
  }

  bool release_exec = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    c->executing = false;
    --executing_count_;
    if (failed) {
      c->state = CampaignState::kFailed;
      c->error = error;
      release_exec = true;
    } else {
      c->progress = progress;
      c->profile = profile;
      if (have_corpus_stats) {
        c->corpus_stats = corpus_stats;
        c->has_corpus_stats = true;
      }
      if (done) {
        c->state = CampaignState::kDone;
        c->final_stats = std::move(final_stats);
        release_exec = true;
      } else if (c->cancel_requested.load()) {
        c->state = CampaignState::kCancelled;
        release_exec = true;
      } else if (c->pause_requested.load() || draining_) {
        c->pause_requested.store(false);
        c->state = CampaignState::kPaused;
      } else {
        Enqueue(id);
      }
    }
    idle_cv_.notify_all();
  }

  if (release_exec) {
    // Terminal states are never requeued, so no other worker can reach this
    // exec state; free the heavyweight pieces (models, session, corpus).
    c->run.reset();
    c->session.reset();
    c->corpus.reset();
    c->constraint.reset();
    c->models.clear();
    c->seed_pool.clear();
  }
}

}  // namespace dx

#include "src/service/client.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "src/service/net.h"
#include "src/util/timer.h"

namespace dx {
namespace {

constexpr const char* kUsage = R"(usage: dxplorectl [options] COMMAND [args]

options:
  --host H            daemon host                     (default: 127.0.0.1)
  --port P            ctl socket port                 (default: 7077)
  --http-port P       introspection (HTTP) port       (default: 7078)

commands:
  ping                          liveness check
  submit KEY=VALUE...           submit a campaign; keys mirror the CLI flags:
                                domain, constraint, metric, objective,
                                scheduler, seeds, max_tests, max_seed_passes,
                                coverage_goal, max_iterations_per_seed,
                                rng_seed, batch_size, sync_interval,
                                corpus_dir, resume (true/false)
  status ID                     one campaign's status
  list                          all campaigns
  pause ID                      pause at the next batch boundary
  resume ID                     requeue a paused campaign
  cancel ID                     cancel at the next batch boundary
  results ID                    final stats + test digests of a DONE campaign
  compact ID KEY=VALUE...       run corpus maintenance over a durable
                                campaign's corpus (pauses a live campaign at
                                its next batch boundary, resumes it after).
                                Keys: out_dir (required), distill, dedup,
                                minimize (true/false; default distill+dedup),
                                deduper (auto|ssim|l2|feature-box), threshold
  wait ID [--timeout-seconds S] poll until the campaign is terminal
                                (exit 0 iff DONE; default timeout 300)
  drain                         graceful daemon shutdown (checkpoints all)
  get PATH                      HTTP GET on the introspection port
                                (e.g. get /health, get /metrics)
)";

// Integer-valued submit keys (everything else is a string except the
// explicitly typed ones below).
bool IsIntKey(const std::string& key) {
  static const char* kIntKeys[] = {
      "seeds",         "max_tests",  "max_seed_passes", "max_iterations_per_seed",
      "rng_seed",      "batch_size", "sync_interval",   "id",
  };
  for (const char* k : kIntKeys) {
    if (key == k) {
      return true;
    }
  }
  return false;
}

Json ParseSubmitArgs(const std::vector<std::string>& args, size_t start) {
  Json request = Json::Object();
  request["cmd"] = Json("submit");
  for (size_t i = start; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("submit arguments are KEY=VALUE; got \"" + arg + "\"");
    }
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    if (key == "resume") {
      request[key] = Json(value == "true" || value == "1");
    } else if (key == "coverage_goal") {
      request[key] = Json(std::strtod(value.c_str(), nullptr));
    } else if (IsIntKey(key)) {
      request[key] = Json(static_cast<int64_t>(std::strtoll(value.c_str(), nullptr, 10)));
    } else {
      request[key] = Json(value);
    }
  }
  return request;
}

}  // namespace

Json CtlRequest(const std::string& host, int port, const Json& request) {
  Socket conn = TcpConnect(host, port);
  SetRecvTimeout(conn, 30000);
  WriteAll(conn, request.Dump() + "\n");
  LineReader reader(conn);
  std::string line;
  if (!reader.ReadLine(&line)) {
    throw std::runtime_error("ctl: connection closed before response");
  }
  return Json::Parse(line);
}

std::string HttpGet(const std::string& host, int port, const std::string& path) {
  Socket conn = TcpConnect(host, port);
  SetRecvTimeout(conn, 30000);
  WriteAll(conn, "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n");
  LineReader reader(conn);
  std::string status_line;
  if (!reader.ReadLine(&status_line)) {
    throw std::runtime_error("http: no response");
  }
  // "HTTP/1.0 200 OK"
  std::istringstream parts(status_line);
  std::string version, status;
  parts >> version >> status;
  if (status != "200") {
    throw std::runtime_error("http: " + path + " -> " + status_line);
  }
  size_t content_length = std::string::npos;
  std::string header;
  while (reader.ReadLine(&header) && !header.empty()) {
    const std::string kPrefix = "Content-Length:";
    if (header.compare(0, kPrefix.size(), kPrefix) == 0) {
      content_length =
          static_cast<size_t>(std::strtoull(header.c_str() + kPrefix.size(), nullptr, 10));
    }
  }
  std::string body;
  if (content_length != std::string::npos) {
    reader.ReadExact(content_length, &body);
  } else {
    // No length header: read until close.
    std::string line;
    while (reader.ReadLine(&line)) {
      body += line;
      body += "\n";
    }
  }
  return body;
}

int CtlMain(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 7077;
  int http_port = 7078;
  std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) {
    args.emplace_back(argv[i]);
  }
  size_t pos = 0;
  while (pos < args.size() && args[pos].rfind("--", 0) == 0) {
    const std::string& flag = args[pos];
    if (flag == "--help" || flag == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (pos + 1 >= args.size()) {
      std::cerr << flag << " needs a value\n" << kUsage;
      return 2;
    }
    const std::string value = args[pos + 1];
    if (flag == "--host") {
      host = value;
    } else if (flag == "--port") {
      port = std::atoi(value.c_str());
    } else if (flag == "--http-port") {
      http_port = std::atoi(value.c_str());
    } else {
      std::cerr << "unknown option " << flag << "\n" << kUsage;
      return 2;
    }
    pos += 2;
  }
  if (pos >= args.size()) {
    std::cerr << kUsage;
    return 2;
  }
  const std::string command = args[pos];

  try {
    if (command == "get") {
      if (pos + 1 >= args.size()) {
        std::cerr << "get needs a PATH\n";
        return 2;
      }
      std::cout << HttpGet(host, http_port, args[pos + 1]);
      return 0;
    }

    Json request = Json::Object();
    if (command == "ping" || command == "list" || command == "drain") {
      request["cmd"] = Json(command);
    } else if (command == "submit") {
      request = ParseSubmitArgs(args, pos + 1);
    } else if (command == "compact") {
      if (pos + 1 >= args.size()) {
        std::cerr << "compact needs a campaign ID\n";
        return 2;
      }
      request["cmd"] = Json("compact");
      request["id"] =
          Json(static_cast<int64_t>(std::strtoll(args[pos + 1].c_str(), nullptr, 10)));
      for (size_t i = pos + 2; i < args.size(); ++i) {
        const std::string& arg = args[i];
        const size_t eq = arg.find('=');
        if (eq == std::string::npos) {
          throw std::runtime_error("compact arguments are KEY=VALUE; got \"" +
                                   arg + "\"");
        }
        const std::string key = arg.substr(0, eq);
        const std::string value = arg.substr(eq + 1);
        if (key == "distill" || key == "dedup" || key == "minimize") {
          request[key] = Json(value == "true" || value == "1");
        } else if (key == "threshold") {
          request[key] = Json(std::strtod(value.c_str(), nullptr));
        } else {
          request[key] = Json(value);
        }
      }
    } else if (command == "status" || command == "pause" || command == "resume" ||
               command == "cancel" || command == "results") {
      if (pos + 1 >= args.size()) {
        std::cerr << command << " needs a campaign ID\n";
        return 2;
      }
      request["cmd"] = Json(command);
      request["id"] =
          Json(static_cast<int64_t>(std::strtoll(args[pos + 1].c_str(), nullptr, 10)));
    } else if (command == "wait") {
      if (pos + 1 >= args.size()) {
        std::cerr << "wait needs a campaign ID\n";
        return 2;
      }
      const int64_t id = std::strtoll(args[pos + 1].c_str(), nullptr, 10);
      double timeout_seconds = 300.0;
      if (pos + 3 < args.size() && args[pos + 2] == "--timeout-seconds") {
        timeout_seconds = std::strtod(args[pos + 3].c_str(), nullptr);
      }
      Json status_request = Json::Object();
      status_request["cmd"] = Json("status");
      status_request["id"] = Json(id);
      Timer timer;
      while (true) {
        Json response = CtlRequest(host, port, status_request);
        if (!response.GetBool("ok", false)) {
          std::cout << response.Dump() << "\n";
          return 1;
        }
        const std::string state = response.At("campaign").GetString("state", "");
        if (state == "DONE" || state == "FAILED" || state == "CANCELLED") {
          std::cout << response.Dump() << "\n";
          return state == "DONE" ? 0 : 1;
        }
        if (timer.ElapsedSeconds() > timeout_seconds) {
          std::cerr << "wait: campaign " << id << " still " << state << " after "
                    << timeout_seconds << "s\n";
          return 1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
      }
    } else {
      std::cerr << "unknown command \"" << command << "\"\n" << kUsage;
      return 2;
    }

    Json response = CtlRequest(host, port, request);
    std::cout << response.Dump() << "\n";
    return response.GetBool("ok", false) ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "dxplorectl: " << e.what() << "\n";
    return 3;
  }
}

}  // namespace dx

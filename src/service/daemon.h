#ifndef DX_SERVICE_DAEMON_H_
#define DX_SERVICE_DAEMON_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "src/service/campaign_manager.h"
#include "src/service/http.h"
#include "src/service/net.h"
#include "src/util/json.h"
#include "src/util/timer.h"

namespace dx {

struct DaemonOptions {
  std::string host = "127.0.0.1";
  int port = 7077;       // ctl socket (newline-delimited JSON); 0 = ephemeral
  int http_port = 7078;  // /health + /metrics; 0 = ephemeral
  ManagerOptions manager;
};

// The dxplored service: a CampaignManager fronted by two loopback listeners —
// a line-oriented JSON ctl socket (submit/status/pause/resume/cancel/list/
// results/drain) and an HTTP introspection plane (/health, /metrics in
// Prometheus text format). Each ctl connection carries exactly one request
// line and one response line; clients reconnect per request.
class Daemon {
 public:
  explicit Daemon(DaemonOptions options = {});
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // Binds both listeners and starts serving. Throws on bind failure.
  void Start();
  // Stops listeners and the manager's workers. Campaigns keep their last
  // checkpoint; call manager().Drain() first for a graceful shutdown.
  void Stop();

  int port() const { return port_; }
  int http_port() const { return http_server_.port(); }

  CampaignManager& manager() { return *manager_; }

  // Blocks until a `drain` request (or RequestDrain) arrives, then drains
  // the manager and returns. The caller should then Stop() and exit 0.
  void WaitForShutdown();
  // Signal-safe shutdown trigger (sets an atomic flag WaitForShutdown polls).
  void RequestDrain() { drain_requested_.store(true); }

  // Exposed for tests (the HTTP handlers serve exactly these).
  std::string MetricsText();
  Json HealthJson();

  // Handles one parsed ctl request (exposed for tests).
  Json Handle(const Json& request);

 private:
  void ServeCtl();
  HttpServer::Response HandleHttp(const std::string& path);

  DaemonOptions options_;
  std::unique_ptr<CampaignManager> manager_;
  Socket ctl_listener_;
  std::thread ctl_thread_;
  HttpServer http_server_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> drain_requested_{false};
  std::atomic<uint64_t> requests_total_{0};
  Timer uptime_;
  int port_ = 0;
  bool started_ = false;
};

}  // namespace dx

#endif  // DX_SERVICE_DAEMON_H_

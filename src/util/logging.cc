#include "src/util/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace dx {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_io_mutex;

LogLevel LevelFromEnv() {
  const char* env = std::getenv("DEEPXPLORE_LOG_LEVEL");
  if (env == nullptr) {
    return LogLevel::kInfo;
  }
  const std::string v(env);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

struct EnvInit {
  EnvInit() { g_level.store(LevelFromEnv()); }
};
EnvInit g_env_init;

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_io_mutex);
  std::cerr << stream_.str() << "\n";
}

void CheckFailure(const char* cond, const char* file, int line) {
  {
    LogMessage msg(LogLevel::kError, file, line);
    msg.stream() << "DX_CHECK failed: " << cond;
  }
  std::abort();
}

}  // namespace internal
}  // namespace dx

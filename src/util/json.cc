#include "src/util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dx {
namespace {

[[noreturn]] void TypeError(const char* want, Json::Type got) {
  static const char* kNames[] = {"null", "bool", "number", "string", "array",
                                 "object"};
  throw std::runtime_error(std::string("json: expected ") + want + ", got " +
                           kNames[static_cast<int>(got)]);
}

void EscapeTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json ParseDocument() {
    Json value = ParseValue();
    SkipSpace();
    if (pos_ != text_.size()) {
      Fail("trailing content after document");
    }
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool Consume(const char* literal) {
    size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json ParseValue() {
    SkipSpace();
    char c = Peek();
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return Json(ParseString());
      case 't':
        if (Consume("true")) return Json(true);
        Fail("invalid literal");
      case 'f':
        if (Consume("false")) return Json(false);
        Fail("invalid literal");
      case 'n':
        if (Consume("null")) return Json(nullptr);
        Fail("invalid literal");
      default: return ParseNumber();
    }
  }

  Json ParseObject() {
    Expect('{');
    Json obj = Json::Object();
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      SkipSpace();
      std::string key = ParseString();
      SkipSpace();
      Expect(':');
      obj[key] = ParseValue();
      SkipSpace();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      Fail("expected ',' or '}' in object");
    }
  }

  Json ParseArray() {
    Expect('[');
    Json arr = Json::Array();
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.Append(ParseValue());
      SkipSpace();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      Fail("expected ',' or ']' in array");
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        Fail("unterminated string");
      }
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        Fail("unterminated escape");
      }
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("invalid hex digit in \\u escape");
            }
          }
          // UTF-8 encode the code point (BMP only; surrogate pairs are not
          // needed by the wire protocol and decode as-is).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: Fail("invalid escape character");
      }
    }
  }

  Json ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("invalid value");
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      Fail("invalid number");
    }
    return Json(value);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void DumpTo(const Json& j, std::string* out) {
  switch (j.type()) {
    case Json::Type::kNull:
      *out += "null";
      break;
    case Json::Type::kBool:
      *out += j.AsBool() ? "true" : "false";
      break;
    case Json::Type::kNumber: {
      double v = j.AsNumber();
      char buf[32];
      if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
      } else if (std::isfinite(v)) {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
      } else {
        // JSON has no Inf/NaN; emit null like most encoders.
        std::snprintf(buf, sizeof(buf), "null");
      }
      *out += buf;
      break;
    }
    case Json::Type::kString:
      EscapeTo(j.AsString(), out);
      break;
    case Json::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& item : j.AsArray()) {
        if (!first) out->push_back(',');
        first = false;
        DumpTo(item, out);
      }
      out->push_back(']');
      break;
    }
    case Json::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : j.AsObject()) {
        if (!first) out->push_back(',');
        first = false;
        EscapeTo(key, out);
        out->push_back(':');
        DumpTo(value, out);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

bool Json::AsBool() const {
  if (type_ != Type::kBool) TypeError("bool", type_);
  return bool_;
}

double Json::AsNumber() const {
  if (type_ != Type::kNumber) TypeError("number", type_);
  return number_;
}

int64_t Json::AsInt() const { return static_cast<int64_t>(AsNumber()); }

const std::string& Json::AsString() const {
  if (type_ != Type::kString) TypeError("string", type_);
  return string_;
}

const std::vector<Json>& Json::AsArray() const {
  if (type_ != Type::kArray) TypeError("array", type_);
  return array_;
}

const std::map<std::string, Json>& Json::AsObject() const {
  if (type_ != Type::kObject) TypeError("object", type_);
  return object_;
}

bool Json::Has(const std::string& key) const {
  return type_ == Type::kObject && object_.count(key) > 0;
}

const Json& Json::At(const std::string& key) const {
  const auto& obj = AsObject();
  auto it = obj.find(key);
  if (it == obj.end()) {
    throw std::runtime_error("json: missing key \"" + key + "\"");
  }
  return it->second;
}

bool Json::GetBool(const std::string& key, bool fallback) const {
  return Has(key) ? At(key).AsBool() : fallback;
}

double Json::GetNumber(const std::string& key, double fallback) const {
  return Has(key) ? At(key).AsNumber() : fallback;
}

int64_t Json::GetInt(const std::string& key, int64_t fallback) const {
  return Has(key) ? At(key).AsInt() : fallback;
}

std::string Json::GetString(const std::string& key,
                            const std::string& fallback) const {
  return Has(key) ? At(key).AsString() : fallback;
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) {
    type_ = Type::kObject;
  }
  if (type_ != Type::kObject) TypeError("object", type_);
  return object_[key];
}

void Json::Append(Json value) {
  if (type_ == Type::kNull) {
    type_ = Type::kArray;
  }
  if (type_ != Type::kArray) TypeError("array", type_);
  array_.push_back(std::move(value));
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(*this, &out);
  return out;
}

Json Json::Parse(const std::string& text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace dx

#ifndef DX_UTIL_JSON_H_
#define DX_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace dx {

// Minimal JSON document model for the service wire protocol. Objects keep
// their keys sorted (std::map) so Dump() output is deterministic, which the
// bit-identity tests rely on when diffing daemon responses.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(double value) : type_(Type::kNumber), number_(value) {}
  Json(int value) : type_(Type::kNumber), number_(value) {}
  Json(int64_t value) : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  Json(uint64_t value) : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}

  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors throw std::runtime_error on type mismatch: the daemon
  // turns that into a malformed-request error reply.
  bool AsBool() const;
  double AsNumber() const;
  int64_t AsInt() const;
  const std::string& AsString() const;
  const std::vector<Json>& AsArray() const;
  const std::map<std::string, Json>& AsObject() const;

  // Object helpers.
  bool Has(const std::string& key) const;
  const Json& At(const std::string& key) const;  // throws if absent
  // Lookup with fallback for optional request fields.
  bool GetBool(const std::string& key, bool fallback) const;
  double GetNumber(const std::string& key, double fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  std::string GetString(const std::string& key, const std::string& fallback) const;

  Json& operator[](const std::string& key);  // object insert/lookup
  void Append(Json value);                   // array push_back

  // Compact single-line serialization (no whitespace). Numbers that hold an
  // exact integer print without a decimal point; others use max precision so
  // round-tripped doubles are bit-exact.
  std::string Dump() const;

  // Throws std::runtime_error (with position) on malformed input. Trailing
  // content after the document is an error.
  static Json Parse(const std::string& text);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

}  // namespace dx

#endif  // DX_UTIL_JSON_H_

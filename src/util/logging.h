// Minimal leveled logging to stderr.
//
// Usage: DX_LOG(Info) << "trained " << n << " models";
// Level is controlled globally (default Info) or via DEEPXPLORE_LOG_LEVEL
// (debug|info|warn|error|off).
#ifndef DX_SRC_UTIL_LOGGING_H_
#define DX_SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace dx {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dx

#define DX_LOG(severity)                                                                     \
  if (::dx::LogLevel::k##severity >= ::dx::GetLogLevel())                                    \
  ::dx::internal::LogMessage(::dx::LogLevel::k##severity, __FILE__, __LINE__).stream()

// Precondition check that aborts with a message; active in all build types.
#define DX_CHECK(cond)                                                                       \
  if (!(cond)) ::dx::internal::CheckFailure(#cond, __FILE__, __LINE__)

namespace dx::internal {
[[noreturn]] void CheckFailure(const char* cond, const char* file, int line);
}  // namespace dx::internal

#endif  // DX_SRC_UTIL_LOGGING_H_

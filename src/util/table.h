// ASCII table rendering for the per-table benchmark harnesses.
//
// Every bench binary reproduces one table/figure from the paper; TablePrinter
// renders rows with aligned columns so the output can be diffed against the
// paper's reported values.
#ifndef DX_SRC_UTIL_TABLE_H_
#define DX_SRC_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace dx {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Appends a data row; it may have fewer cells than headers (padded empty).
  void AddRow(std::vector<std::string> row);

  // Renders the table with a header separator.
  std::string ToString() const;

  // Formats a double with the given precision, trimming trailing zeros.
  static std::string Num(double value, int precision = 2);
  // Formats a ratio as a percentage string, e.g. 0.327 -> "32.7%".
  static std::string Percent(double ratio, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dx

#endif  // DX_SRC_UTIL_TABLE_H_

// A small fixed-size thread pool with a blocking, allocation-free ParallelFor.
//
// Used to parallelize batch forward/backward passes over CPU cores and for
// intra-op parallelism inside large layer kernels. Re-entrant use is safe:
// a task that calls ParallelFor on the pool it is already running inside
// degrades to a serial loop on the calling thread instead of deadlocking.
// Independent ParallelFor calls from different threads may share one pool
// concurrently (the campaign daemon relies on this).
//
// ParallelFor performs no heap allocation: chunk descriptors live on the
// calling thread's stack and the callable is passed by non-owning reference,
// so layer kernels may call it from the zero-allocation executor hot path.
#ifndef DX_SRC_UTIL_THREAD_POOL_H_
#define DX_SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace dx {

// Non-owning reference to a callable taking an int64_t index. The referenced
// callable must outlive the FunctionRef; ParallelFor blocks until all work is
// done, so passing a temporary lambda at the call site is safe.
class IndexFnRef {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, IndexFnRef>>>
  IndexFnRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, int64_t i) {
          (*static_cast<std::remove_reference_t<F>*>(obj))(i);
        }) {}

  void operator()(int64_t i) const { call_(obj_, i); }

 private:
  void* obj_;
  void (*call_)(void*, int64_t);
};

class ThreadPool {
 public:
  // num_threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Runs fn(i) for i in [0, n), partitioned into contiguous chunks across the
  // pool's workers plus the calling thread. Blocks until all work is done.
  // Exceptions thrown by fn propagate (the first one) to the caller.
  //
  // Safe to call from inside a task already running on this pool: such
  // re-entrant calls are detected per-thread and run serially on the calling
  // thread (they cannot wait on workers that may themselves be blocked).
  void ParallelFor(int64_t n, IndexFnRef fn);

  // True iff the calling thread is currently executing inside a ParallelFor
  // region of ANY pool (as a worker task or as the caller's own chunk). Used
  // to gate intra-op parallelism so nested kernels do not oversubscribe.
  static bool InParallelRegion();

  // Process-wide shared pool (created on first use; size from
  // DEEPXPLORE_THREADS or hardware concurrency).
  static ThreadPool& Global();

 private:
  struct LoopCtx;   // Per-ParallelFor shared state, on the caller's stack.
  struct ChunkTask; // Intrusive queue node, on the caller's stack.

  void WorkerLoop();
  // Pops and runs queued chunks belonging to ctx until none remain queued.
  void HelpWithLoop(LoopCtx* ctx);
  static void RunChunk(ChunkTask* task);

  std::vector<std::thread> workers_;
  ChunkTask* queue_head_ = nullptr;  // Intrusive FIFO of pending chunks.
  ChunkTask* queue_tail_ = nullptr;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Convenience wrapper over ThreadPool::Global().ParallelFor.
void ParallelFor(int64_t n, IndexFnRef fn);

// True when a layer kernel may profitably fan work out to the global pool:
// the pool has at least two workers and the calling thread is not already
// inside a ParallelFor region (in which case fanning out would oversubscribe
// the cores the outer region already occupies).
bool IntraOpParallelismAvailable();

}  // namespace dx

#endif  // DX_SRC_UTIL_THREAD_POOL_H_

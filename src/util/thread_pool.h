// A small fixed-size thread pool with a blocking ParallelFor.
//
// Used to parallelize batch forward/backward passes over CPU cores. The pool
// is deliberately simple: tasks may not spawn nested ParallelFor calls on the
// same pool (they would deadlock); callers needing nesting should run serial.
#ifndef DX_SRC_UTIL_THREAD_POOL_H_
#define DX_SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dx {

class ThreadPool {
 public:
  // num_threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Runs fn(i) for i in [0, n), partitioned into contiguous chunks across the
  // pool's workers plus the calling thread. Blocks until all work is done.
  // Exceptions thrown by fn propagate (the first one) to the caller.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  // Process-wide shared pool (created on first use; size from
  // DEEPXPLORE_THREADS or hardware concurrency).
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Convenience wrapper over ThreadPool::Global().ParallelFor.
void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

}  // namespace dx

#endif  // DX_SRC_UTIL_THREAD_POOL_H_

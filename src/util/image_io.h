// Portable anymap (PGM/PPM) output and ASCII-art rendering of float images.
//
// Images are float buffers in [0, 1], HWC layout (height, width, channels with
// channels == 1 or 3). Used by the Figure 8 gallery bench and the examples to
// dump generated difference-inducing inputs.
#ifndef DX_SRC_UTIL_IMAGE_IO_H_
#define DX_SRC_UTIL_IMAGE_IO_H_

#include <string>
#include <vector>

namespace dx {

// Writes a binary PGM (channels == 1) or PPM (channels == 3). Values are
// clamped to [0, 1] and quantized to 8 bits. Throws std::runtime_error on IO
// failure and std::invalid_argument on bad dimensions.
void WriteImage(const std::string& path, const std::vector<float>& pixels, int height,
                int width, int channels);

// Reads a binary PGM/PPM written by WriteImage. Returns pixels in [0, 1].
std::vector<float> ReadImage(const std::string& path, int* height, int* width,
                             int* channels);

// Renders a grayscale (or channel-averaged) image as ASCII art, one character
// per pixel column (downsampled to at most max_width columns).
std::string AsciiArt(const std::vector<float>& pixels, int height, int width, int channels,
                     int max_width = 56);

}  // namespace dx

#endif  // DX_SRC_UTIL_IMAGE_IO_H_

#include "src/util/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dx {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

float Rng::NextFloat() { return static_cast<float>(NextDouble()); }

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo > hi) {
    throw std::invalid_argument("Rng::UniformInt: lo > hi");
  }
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(NextU64());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t r;
  do {
    r = NextU64();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % range);
}

double Rng::Normal() {
  // Box-Muller; avoid log(0).
  double u1 = NextDouble();
  while (u1 <= 0.0) {
    u1 = NextDouble();
  }
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  if (k > n || k < 0) {
    throw std::invalid_argument("Rng::SampleWithoutReplacement: need 0 <= k <= n");
  }
  std::vector<int> all(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    all[static_cast<size_t>(i)] = i;
  }
  Shuffle(all);
  all.resize(static_cast<size_t>(k));
  return all;
}

}  // namespace dx

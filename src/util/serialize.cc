#include "src/util/serialize.h"

namespace dx {

namespace {
constexpr uint64_t kMaxReasonableLength = 1ULL << 32;
}  // namespace

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinaryWriter::WriteFloats(const std::vector<float>& v) {
  WriteU64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(float)));
}

void BinaryWriter::WriteInts(const std::vector<int>& v) {
  WriteU64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(int)));
}

std::string BinaryReader::ReadString() {
  const uint64_t n = ReadU64();
  if (n > kMaxReasonableLength) {
    throw std::runtime_error("BinaryReader: corrupt string length");
  }
  std::string s(n, '\0');
  in_.read(s.data(), static_cast<std::streamsize>(n));
  if (!in_) {
    throw std::runtime_error("BinaryReader: truncated string");
  }
  return s;
}

std::vector<float> BinaryReader::ReadFloats() {
  const uint64_t n = ReadU64();
  if (n > kMaxReasonableLength) {
    throw std::runtime_error("BinaryReader: corrupt float array length");
  }
  std::vector<float> v(n);
  in_.read(reinterpret_cast<char*>(v.data()),
           static_cast<std::streamsize>(n * sizeof(float)));
  if (!in_) {
    throw std::runtime_error("BinaryReader: truncated float array");
  }
  return v;
}

std::vector<int> BinaryReader::ReadInts() {
  const uint64_t n = ReadU64();
  if (n > kMaxReasonableLength) {
    throw std::runtime_error("BinaryReader: corrupt int array length");
  }
  std::vector<int> v(n);
  in_.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n * sizeof(int)));
  if (!in_) {
    throw std::runtime_error("BinaryReader: truncated int array");
  }
  return v;
}

}  // namespace dx

#include "src/util/serialize.h"

#include "src/tensor/tensor.h"

namespace dx {

namespace {
constexpr uint64_t kMaxReasonableLength = 1ULL << 32;
}  // namespace

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinaryWriter::WriteFloats(const std::vector<float>& v) {
  WriteU64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(float)));
}

void BinaryWriter::WriteInts(const std::vector<int>& v) {
  WriteU64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(int)));
}

void BinaryWriter::WriteBools(const std::vector<bool>& v) {
  WriteU64(v.size());
  // One buffered write: this runs on the per-batch checkpoint path, where a
  // per-element ostream call would dominate.
  std::string bytes(v.size(), '\0');
  for (size_t i = 0; i < v.size(); ++i) {
    bytes[i] = v[i] ? 1 : 0;
  }
  out_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void BinaryWriter::WriteTensor(const Tensor& t) {
  WriteInts(t.shape());
  WriteFloats(t.values());
}

std::string BinaryReader::ReadString() {
  const uint64_t n = ReadU64();
  if (n > kMaxReasonableLength) {
    throw std::runtime_error("BinaryReader: corrupt string length");
  }
  std::string s(n, '\0');
  in_.read(s.data(), static_cast<std::streamsize>(n));
  if (!in_) {
    throw std::runtime_error("BinaryReader: truncated string");
  }
  return s;
}

std::vector<float> BinaryReader::ReadFloats() {
  const uint64_t n = ReadU64();
  if (n > kMaxReasonableLength) {
    throw std::runtime_error("BinaryReader: corrupt float array length");
  }
  std::vector<float> v(n);
  in_.read(reinterpret_cast<char*>(v.data()),
           static_cast<std::streamsize>(n * sizeof(float)));
  if (!in_) {
    throw std::runtime_error("BinaryReader: truncated float array");
  }
  return v;
}

std::vector<int> BinaryReader::ReadInts() {
  const uint64_t n = ReadU64();
  if (n > kMaxReasonableLength) {
    throw std::runtime_error("BinaryReader: corrupt int array length");
  }
  std::vector<int> v(n);
  in_.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n * sizeof(int)));
  if (!in_) {
    throw std::runtime_error("BinaryReader: truncated int array");
  }
  return v;
}

std::vector<bool> BinaryReader::ReadBools() {
  const uint64_t n = ReadU64();
  if (n > kMaxReasonableLength) {
    throw std::runtime_error("BinaryReader: corrupt bool array length");
  }
  std::string bytes(n, '\0');
  in_.read(bytes.data(), static_cast<std::streamsize>(n));
  if (!in_) {
    throw std::runtime_error("BinaryReader: truncated bool array");
  }
  std::vector<bool> v(n);
  for (uint64_t i = 0; i < n; ++i) {
    v[i] = bytes[i] != 0;
  }
  return v;
}

Tensor BinaryReader::ReadTensor() {
  const Shape shape = ReadInts();
  std::vector<float> values = ReadFloats();
  if (shape.empty() && values.empty()) {
    return Tensor();  // Default-constructed (0-element) tensor.
  }
  if (static_cast<int64_t>(values.size()) != NumElements(shape)) {
    throw std::runtime_error("BinaryReader: tensor shape/value mismatch");
  }
  return Tensor(shape, std::move(values));
}

}  // namespace dx

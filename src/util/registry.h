// Thread-safe string-keyed plug-in registry, shared by the coverage-metric,
// objective, and seed-scheduler factories so the Register/Make/Names
// boilerplate (and its locking discipline) lives in exactly one place.
#ifndef DX_SRC_UTIL_REGISTRY_H_
#define DX_SRC_UTIL_REGISTRY_H_

#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace dx {

template <typename Factory>
class NamedRegistry {
 public:
  explicit NamedRegistry(std::map<std::string, Factory> builtins)
      : map_(std::move(builtins)) {}

  // Registers (or replaces) `factory` under `name`.
  void Register(const std::string& name, Factory factory) {
    std::lock_guard<std::mutex> lock(mutex_);
    map_[name] = std::move(factory);
  }

  // True when a factory is registered under `name`.
  bool Contains(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.find(name) != map_.end();
  }

  // Factory registered under `name`; throws std::invalid_argument
  // ("unknown <what>: <name>") otherwise.
  Factory Get(const std::string& name, const char* what) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(name);
    if (it == map_.end()) {
      throw std::invalid_argument(std::string("unknown ") + what + ": " + name);
    }
    return it->second;
  }

  // Registered names, sorted (std::map order).
  std::vector<std::string> Names() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(map_.size());
    for (const auto& [name, factory] : map_) {
      names.push_back(name);
    }
    return names;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Factory> map_;
};

}  // namespace dx

#endif  // DX_SRC_UTIL_REGISTRY_H_

// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in this repository takes an explicit seed; the
// generator is xoshiro256** (Blackman & Vigna) seeded via SplitMix64, which
// gives high-quality, platform-independent streams without the libstdc++
// distribution portability pitfalls of <random>.
#ifndef DX_SRC_UTIL_RNG_H_
#define DX_SRC_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dx {

// A small, fast, deterministic PRNG. Not cryptographically secure.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Raw 64 random bits.
  uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();
  float NextFloat();

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller (deterministic, no cached spare).
  double Normal();
  double Normal(double mean, double stddev);

  // Bernoulli trial with probability p of true.
  bool Bernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Derive an independent child stream (for parallel determinism).
  Rng Fork();

  // Sample k distinct indices from [0, n). Requires k <= n.
  std::vector<int> SampleWithoutReplacement(int n, int k);

 private:
  uint64_t s_[4];
};

}  // namespace dx

#endif  // DX_SRC_UTIL_RNG_H_

// Content-addressed file cache for trained model weights.
//
// Training the 15-model zoo from scratch takes tens of seconds; tests and the
// 16 bench binaries share trained weights through this cache so each model is
// trained exactly once per machine. Keys are caller-provided strings hashed
// with FNV-1a; values are opaque byte blobs.
#ifndef DX_SRC_UTIL_CACHE_H_
#define DX_SRC_UTIL_CACHE_H_

#include <cstdint>
#include <optional>
#include <string>

namespace dx {

// 64-bit FNV-1a. Stable across platforms; used for cache keys only.
uint64_t Fnv1a64(const std::string& data);

class FileCache {
 public:
  // Directory from DEEPXPLORE_CACHE_DIR, default /tmp/deepxplore_model_cache.
  // The directory is created on demand.
  static FileCache& Global();

  explicit FileCache(std::string dir);

  // Returns the blob for `key` if present.
  std::optional<std::string> Get(const std::string& key) const;

  // Stores `blob` under `key` (atomic rename within the cache dir).
  void Put(const std::string& key, const std::string& blob) const;

  const std::string& dir() const { return dir_; }

 private:
  std::string PathFor(const std::string& key) const;

  std::string dir_;
};

}  // namespace dx

#endif  // DX_SRC_UTIL_CACHE_H_

// Tiny binary (de)serialization used for model weight caching and the
// on-disk test corpus (src/corpus/).
//
// Format: little-endian POD writes. Not portable across endianness — the
// artifacts are per-machine, never shipped.
#ifndef DX_SRC_UTIL_SERIALIZE_H_
#define DX_SRC_UTIL_SERIALIZE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace dx {

class Tensor;

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  void WriteU32(uint32_t v) { WritePod(v); }
  void WriteU64(uint64_t v) { WritePod(v); }
  void WriteI64(int64_t v) { WritePod(v); }
  void WriteF32(float v) { WritePod(v); }
  void WriteF64(double v) { WritePod(v); }
  void WriteString(const std::string& s);
  void WriteFloats(const std::vector<float>& v);
  void WriteInts(const std::vector<int>& v);
  // One byte per element (bit-packing is not worth it at coverage-state sizes).
  void WriteBools(const std::vector<bool>& v);
  // Shape extents + flat values; round-trips through ReadTensor.
  void WriteTensor(const Tensor& t);

 private:
  template <typename T>
  void WritePod(const T& v) {
    out_.write(reinterpret_cast<const char*>(&v), sizeof(T));
  }
  std::ostream& out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  uint32_t ReadU32() { return ReadPod<uint32_t>(); }
  uint64_t ReadU64() { return ReadPod<uint64_t>(); }
  int64_t ReadI64() { return ReadPod<int64_t>(); }
  float ReadF32() { return ReadPod<float>(); }
  double ReadF64() { return ReadPod<double>(); }
  std::string ReadString();
  std::vector<float> ReadFloats();
  std::vector<int> ReadInts();
  std::vector<bool> ReadBools();
  Tensor ReadTensor();

 private:
  template <typename T>
  T ReadPod() {
    T v{};
    in_.read(reinterpret_cast<char*>(&v), sizeof(T));
    if (!in_) {
      throw std::runtime_error("BinaryReader: truncated stream");
    }
    return v;
  }
  std::istream& in_;
};

}  // namespace dx

#endif  // DX_SRC_UTIL_SERIALIZE_H_

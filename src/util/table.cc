#include "src/util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace dx {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      out << " " << std::left << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    }
    out << "\n";
  };
  emit_row(headers_);
  out << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string TablePrinter::Num(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  std::string s = out.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') {
      s.pop_back();
    }
    if (!s.empty() && s.back() == '.') {
      s.pop_back();
    }
  }
  return s;
}

std::string TablePrinter::Percent(double ratio, int precision) {
  return Num(ratio * 100.0, precision) + "%";
}

}  // namespace dx

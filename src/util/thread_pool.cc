#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

namespace dx {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) {
      num_threads = 1;
    }
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int64_t n, const std::function<void(int64_t)>& fn) {
  if (n <= 0) {
    return;
  }
  const int threads = num_threads();
  // Even a 1-thread pool gives 2-way parallelism (worker + calling thread);
  // only a threadless pool degenerates to the serial loop.
  if (n == 1 || threads < 1) {
    for (int64_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  const int chunks = static_cast<int>(std::min<int64_t>(n, threads + 1));
  const int64_t per_chunk = (n + chunks - 1) / chunks;

  std::atomic<int> remaining{chunks - 1};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto run_chunk = [&](int64_t begin, int64_t end) {
    try {
      for (int64_t i = begin; i < end; ++i) {
        fn(i);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  };

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int c = 1; c < chunks; ++c) {
      const int64_t begin = static_cast<int64_t>(c) * per_chunk;
      const int64_t end = std::min<int64_t>(n, begin + per_chunk);
      tasks_.push([&, begin, end] {
        run_chunk(begin, end);
        if (remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> done_lock(done_mutex);
          done_cv.notify_one();
        }
      });
    }
  }
  cv_.notify_all();

  // The calling thread takes the first chunk.
  run_chunk(0, std::min<int64_t>(n, per_chunk));

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });

  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = [] {
    int threads = 0;
    if (const char* env = std::getenv("DEEPXPLORE_THREADS")) {
      threads = std::atoi(env);
    }
    return new ThreadPool(threads);
  }();
  return *pool;
}

void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn) {
  ThreadPool::Global().ParallelFor(n, fn);
}

}  // namespace dx

#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

namespace dx {

// Shared state for one ParallelFor call. Lives on the calling thread's stack;
// ParallelFor does not return until remaining == 0, so worker references to it
// never dangle.
struct ThreadPool::LoopCtx {
  IndexFnRef fn;
  std::atomic<int> remaining;  // Chunks not yet finished (including chunk 0).
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::exception_ptr first_error;
  std::mutex error_mutex;

  LoopCtx(IndexFnRef f, int chunks) : fn(f), remaining(chunks) {}
};

// One contiguous chunk [begin, end) of a loop. Array-allocated on the calling
// thread's stack and linked into the pool's intrusive queue; never touched by
// the queue again once popped.
struct ThreadPool::ChunkTask {
  LoopCtx* ctx = nullptr;
  int64_t begin = 0;
  int64_t end = 0;
  ChunkTask* next = nullptr;
};

namespace {

// Innermost-first chain of ParallelFor frames live on this thread. A frame is
// pushed around every chunk execution (worker task or the caller's own chunk),
// so a kernel can ask both "am I inside pool P?" (re-entry → run serial) and
// "am I inside any region at all?" (gate for intra-op fan-out).
struct PoolFrame {
  const ThreadPool* pool;
  PoolFrame* prev;
};

thread_local PoolFrame* t_pool_frames = nullptr;

class ScopedPoolFrame {
 public:
  explicit ScopedPoolFrame(const ThreadPool* pool)
      : frame_{pool, t_pool_frames} {
    t_pool_frames = &frame_;
  }
  ~ScopedPoolFrame() { t_pool_frames = frame_.prev; }

  ScopedPoolFrame(const ScopedPoolFrame&) = delete;
  ScopedPoolFrame& operator=(const ScopedPoolFrame&) = delete;

 private:
  PoolFrame frame_;
};

bool InsidePool(const ThreadPool* pool) {
  for (const PoolFrame* f = t_pool_frames; f != nullptr; f = f->prev) {
    if (f->pool == pool) {
      return true;
    }
  }
  return false;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) {
      num_threads = 1;
    }
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::RunChunk(ChunkTask* task) {
  LoopCtx* ctx = task->ctx;
  try {
    for (int64_t i = task->begin; i < task->end; ++i) {
      ctx->fn(i);
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(ctx->error_mutex);
    if (!ctx->first_error) {
      ctx->first_error = std::current_exception();
    }
  }
  if (ctx->remaining.fetch_sub(1) == 1) {
    std::lock_guard<std::mutex> done_lock(ctx->done_mutex);
    ctx->done_cv.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    ChunkTask* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || queue_head_ != nullptr; });
      if (stop_ && queue_head_ == nullptr) {
        return;
      }
      task = queue_head_;
      queue_head_ = task->next;
      if (queue_head_ == nullptr) {
        queue_tail_ = nullptr;
      }
    }
    ScopedPoolFrame frame(this);
    RunChunk(task);
  }
}

void ThreadPool::HelpWithLoop(LoopCtx* ctx) {
  for (;;) {
    ChunkTask* task = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ChunkTask** link = &queue_head_;
      while (*link != nullptr && (*link)->ctx != ctx) {
        link = &(*link)->next;
      }
      if (*link == nullptr) {
        return;  // No chunks of this loop left in the queue.
      }
      task = *link;
      *link = task->next;
      if (queue_tail_ == task) {
        if (queue_head_ == nullptr) {
          queue_tail_ = nullptr;
        } else {
          ChunkTask* t = queue_head_;
          while (t->next != nullptr) {
            t = t->next;
          }
          queue_tail_ = t;
        }
      }
    }
    RunChunk(task);
  }
}

void ThreadPool::ParallelFor(int64_t n, IndexFnRef fn) {
  if (n <= 0) {
    return;
  }
  const int threads = num_threads();
  // Even a 1-thread pool gives 2-way parallelism (worker + calling thread);
  // a threadless pool degenerates to the serial loop, and so does a
  // re-entrant call from a task already running inside this pool — its
  // sibling chunks may be blocked waiting for us, so queuing more work for
  // them to pick up could deadlock.
  if (n == 1 || threads < 1 || InsidePool(this)) {
    for (int64_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  // Keep the chunk array small and on the stack: beyond ~32-way splitting the
  // extra chunks add queue traffic without improving balance for the
  // contiguous loops we run.
  constexpr int kMaxChunks = 32;
  const int chunks =
      static_cast<int>(std::min<int64_t>(n, std::min(threads + 1, kMaxChunks)));
  const int64_t per_chunk = (n + chunks - 1) / chunks;

  LoopCtx ctx(fn, chunks);
  ChunkTask tasks[kMaxChunks];
  for (int c = 0; c < chunks; ++c) {
    tasks[c].ctx = &ctx;
    tasks[c].begin = static_cast<int64_t>(c) * per_chunk;
    tasks[c].end = std::min<int64_t>(n, tasks[c].begin + per_chunk);
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int c = 1; c < chunks; ++c) {
      tasks[c].next = nullptr;
      if (queue_tail_ == nullptr) {
        queue_head_ = queue_tail_ = &tasks[c];
      } else {
        queue_tail_->next = &tasks[c];
        queue_tail_ = &tasks[c];
      }
    }
  }
  cv_.notify_all();

  {
    // The calling thread takes the first chunk, then helps drain any of its
    // own chunks still queued (workers may be busy with other callers'
    // loops — the daemon shares one pool across campaigns).
    ScopedPoolFrame frame(this);
    RunChunk(&tasks[0]);
    HelpWithLoop(&ctx);
  }

  std::unique_lock<std::mutex> lock(ctx.done_mutex);
  ctx.done_cv.wait(lock, [&] { return ctx.remaining.load() == 0; });

  if (ctx.first_error) {
    std::rethrow_exception(ctx.first_error);
  }
}

bool ThreadPool::InParallelRegion() { return t_pool_frames != nullptr; }

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = [] {
    int threads = 0;
    if (const char* env = std::getenv("DEEPXPLORE_THREADS")) {
      threads = std::atoi(env);
    }
    return new ThreadPool(threads);
  }();
  return *pool;
}

void ParallelFor(int64_t n, IndexFnRef fn) {
  ThreadPool::Global().ParallelFor(n, fn);
}

bool IntraOpParallelismAvailable() {
  return ThreadPool::Global().num_threads() >= 2 &&
         !ThreadPool::InParallelRegion();
}

}  // namespace dx

#include "src/util/image_io.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dx {
namespace {

uint8_t QuantizePixel(float v) {
  const float clamped = std::clamp(v, 0.0f, 1.0f);
  return static_cast<uint8_t>(std::lround(clamped * 255.0f));
}

void ValidateDims(size_t actual, int height, int width, int channels) {
  if (height <= 0 || width <= 0 || (channels != 1 && channels != 3)) {
    throw std::invalid_argument("image dims must be positive with 1 or 3 channels");
  }
  const size_t expected =
      static_cast<size_t>(height) * static_cast<size_t>(width) * static_cast<size_t>(channels);
  if (actual != expected) {
    throw std::invalid_argument("pixel buffer size does not match dimensions");
  }
}

}  // namespace

void WriteImage(const std::string& path, const std::vector<float>& pixels, int height,
                int width, int channels) {
  ValidateDims(pixels.size(), height, width, channels);
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot open for writing: " + path);
  }
  out << (channels == 1 ? "P5" : "P6") << "\n" << width << " " << height << "\n255\n";
  std::vector<uint8_t> bytes(pixels.size());
  for (size_t i = 0; i < pixels.size(); ++i) {
    bytes[i] = QuantizePixel(pixels[i]);
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    throw std::runtime_error("short write: " + path);
  }
}

std::vector<float> ReadImage(const std::string& path, int* height, int* width,
                             int* channels) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open for reading: " + path);
  }
  std::string magic;
  int w = 0;
  int h = 0;
  int maxval = 0;
  in >> magic >> w >> h >> maxval;
  if ((magic != "P5" && magic != "P6") || w <= 0 || h <= 0 || maxval != 255) {
    throw std::runtime_error("unsupported PNM header in " + path);
  }
  in.get();  // Single whitespace after the header.
  const int c = magic == "P5" ? 1 : 3;
  const size_t n = static_cast<size_t>(w) * static_cast<size_t>(h) * static_cast<size_t>(c);
  std::vector<uint8_t> bytes(n);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(n));
  if (static_cast<size_t>(in.gcount()) != n) {
    throw std::runtime_error("truncated PNM payload in " + path);
  }
  std::vector<float> pixels(n);
  for (size_t i = 0; i < n; ++i) {
    pixels[i] = static_cast<float>(bytes[i]) / 255.0f;
  }
  *height = h;
  *width = w;
  *channels = c;
  return pixels;
}

std::string AsciiArt(const std::vector<float>& pixels, int height, int width, int channels,
                     int max_width) {
  ValidateDims(pixels.size(), height, width, channels);
  static const char kRamp[] = " .:-=+*#%@";
  const int ramp_max = static_cast<int>(sizeof(kRamp)) - 2;
  const int step = std::max(1, (width + max_width - 1) / max_width);
  std::ostringstream out;
  for (int y = 0; y < height; y += step) {
    for (int x = 0; x < width; x += step) {
      float sum = 0.0f;
      int count = 0;
      for (int dy = 0; dy < step && y + dy < height; ++dy) {
        for (int dx = 0; dx < step && x + dx < width; ++dx) {
          for (int ch = 0; ch < channels; ++ch) {
            sum += pixels[(static_cast<size_t>(y + dy) * width + (x + dx)) * channels + ch];
            ++count;
          }
        }
      }
      const float v = std::clamp(sum / static_cast<float>(count), 0.0f, 1.0f);
      out << kRamp[static_cast<int>(std::lround(v * ramp_max))];
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace dx

#include "src/util/cache.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/util/logging.h"

namespace dx {

uint64_t Fnv1a64(const std::string& data) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

FileCache& FileCache::Global() {
  static FileCache* cache = [] {
    const char* env = std::getenv("DEEPXPLORE_CACHE_DIR");
    return new FileCache(env != nullptr ? env : "/tmp/deepxplore_model_cache");
  }();
  return *cache;
}

FileCache::FileCache(std::string dir) : dir_(std::move(dir)) {}

std::string FileCache::PathFor(const std::string& key) const {
  std::ostringstream name;
  name << std::hex << Fnv1a64(key) << ".bin";
  return dir_ + "/" + name.str();
}

std::optional<std::string> FileCache::Get(const std::string& key) const {
  std::ifstream in(PathFor(key), std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void FileCache::Put(const std::string& key, const std::string& blob) const {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    DX_LOG(Warn) << "cannot create cache dir " << dir_ << ": " << ec.message();
    return;
  }
  const std::string final_path = PathFor(key);
  const std::string tmp_path = final_path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp_path, std::ios::binary);
    if (!out) {
      DX_LOG(Warn) << "cannot write cache entry " << tmp_path;
      return;
    }
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    DX_LOG(Warn) << "cache rename failed: " << ec.message();
    std::filesystem::remove(tmp_path, ec);
  }
}

}  // namespace dx

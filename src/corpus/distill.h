// Corpus distillation: a coverage-replay pass that drops entries whose
// coverage contribution is subsumed by the retained set.
//
// Entries are scanned in corpus order; an entry is retained iff merging its
// footprint into the accumulated retained coverage covers at least one new
// item on any model. Greedy-in-order is exact for the subsumption invariant:
// an entry is only dropped when everything it covers is already covered by
// earlier retained entries, so the merged coverage of the retained set
// always equals the merged coverage of the full corpus (pinned by
// tests/corpus_maintenance_test.cc). Scanning in corpus order also keeps the
// result deterministic and biases retention toward the campaign's earliest
// discoveries — the entries the provenance chain anchors on.
#ifndef DX_SRC_CORPUS_DISTILL_H_
#define DX_SRC_CORPUS_DISTILL_H_

#include <string>

#include "src/corpus/maintenance.h"

namespace dx {

struct DistillOptions {
  // Where the compacted corpus is written (must not hold a corpus yet).
  std::string out_dir;
};

// Runs the distillation pass of `corpus` through `session` (which must be
// built with the corpus' config — models, metric, coverage options) and
// writes the compacted corpus to options.out_dir. Resets the session's
// coverage state. Returns the distillation report.
MaintenanceReport DistillCorpus(Session& session, const Corpus& corpus,
                                const DistillOptions& options);

}  // namespace dx

#endif  // DX_SRC_CORPUS_DISTILL_H_

#include "src/corpus/distill.h"

#include <stdexcept>

#include "src/util/timer.h"

namespace dx {

MaintenanceReport DistillCorpus(Session& session, const Corpus& corpus,
                                const DistillOptions& options) {
  if (options.out_dir.empty()) {
    throw std::invalid_argument("DistillCorpus: out_dir must be set");
  }
  Timer timer;
  const CorpusMeta& meta = corpus.meta();
  session.ResetRunState();
  if (meta.profile_from_seeds) {
    session.ProfileSeeds(meta.seeds);
  }

  const std::vector<GeneratedTest>& entries = corpus.entries();
  std::vector<const Tensor*> inputs;
  inputs.reserve(entries.size());
  for (const GeneratedTest& entry : entries) {
    inputs.push_back(&entry.input);
  }
  std::vector<CoverageFootprint> footprints = ComputeFootprints(session, inputs);

  // Greedy subsumption scan: retained coverage grows monotonically; an entry
  // whose footprint adds nothing is — by monotonicity — subsumed forever.
  CoverageFootprint retained_cov;
  for (int k = 0; k < session.num_models(); ++k) {
    retained_cov.push_back(session.metric(k).Clone());  // Empty but calibrated.
  }
  CoverageFootprint original_cov = CloneFootprint(retained_cov);
  std::vector<GeneratedTest> retained;
  for (size_t i = 0; i < entries.size(); ++i) {
    MergeFootprint(original_cov, footprints[i]);
    if (AddsCoverage(retained_cov, footprints[i])) {
      MergeFootprint(retained_cov, footprints[i]);
      retained.push_back(entries[i]);
    }
  }

  MaintenanceReport report;
  report.transform = "distill";
  report.input_entries = entries.size();
  report.retained_entries = retained.size();
  for (int k = 0; k < session.num_models(); ++k) {
    ModelCoverageDelta delta;
    delta.model = session.model(k).name();
    delta.covered_before = original_cov[static_cast<size_t>(k)]->covered_items();
    delta.covered_after = retained_cov[static_cast<size_t>(k)]->covered_items();
    delta.total_items = retained_cov[static_cast<size_t>(k)]->total_items();
    report.coverage.push_back(delta);
  }

  WriteDerivedCorpus(corpus, "distill", retained, retained_cov, options.out_dir);
  report.seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace dx

// Corpus: the durable on-disk store behind long-running test campaigns.
//
// A corpus directory owns everything needed to reproduce, resume, or audit a
// Session campaign:
//
//   manifest.bin    campaign identity, written once at Initialize: the
//                   result-affecting session wiring (metric/objective/
//                   scheduler names, full EngineConfig incl. rng_seed,
//                   sync_interval), the campaign bounds (max_tests,
//                   max_seed_passes, coverage_goal), the model names, the
//                   full seed pool, and free-form metadata (domain,
//                   constraint, ...).
//   entries.bin     append-only stream of difference-inducing inputs with
//                   provenance (seed index, iteration count, deviating
//                   model, per-model labels/outputs, task ordinal — which
//                   pins the task's RNG stream given the engine rng_seed).
//   journal.bin     append-only scheduler journal: per sync batch, the
//                   scheduled seed indices and the (found, coverage-gain)
//                   outcomes reported back. Replaying this stream through a
//                   freshly Reset scheduler reconstructs its exact state
//                   without requiring schedulers to be serializable.
//   checkpoint.bin  latest resume point, atomically replaced at every sync
//                   batch: RunStats counters, entry/journal high-water
//                   marks, and the serialized per-model coverage state
//                   (CoverageMetric::Serialize).
//
// Crash safety (process level): entries and journal batches are appended
// and flushed BEFORE the checkpoint that covers them is renamed into place,
// so a killed process leaves at most a trailing suffix not covered by the
// checkpoint; Open() trims both files back to the checkpoint's high-water
// marks (and a corpus with no checkpoint is treated as empty). Resumption
// therefore always restarts at a sync-batch boundary, which is exactly the
// granularity at which Session results are deterministic. The files are NOT
// fsync'd, so a power loss / kernel crash can reorder the append and the
// rename on disk and leave a corpus that fails to open (a clean
// std::runtime_error, never silent divergence) — acceptable for a
// per-machine campaign artifact.
//
// The files use the util/serialize little-endian POD format: a per-machine
// artifact, not an interchange format.
#ifndef DX_SRC_CORPUS_CORPUS_H_
#define DX_SRC_CORPUS_CORPUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/core/session.h"

namespace dx {

inline constexpr uint32_t kCorpusFormatVersion = 1;

// The campaign identity stored in manifest.bin. Everything here either
// affects results bit-for-bit (config, engine, bounds, seeds) or documents
// the campaign (model names, metadata). Deliberately absent: batch_size and
// workers — Session results are invariant to both, so a campaign may be
// recorded serially and resumed on many workers (or vice versa).
struct CorpusMeta {
  std::string metric;
  std::string objective;
  std::string scheduler;
  // Constraint::name() of the recording session — validated on resume (a
  // different input-rewriting rule would silently diverge the campaign).
  std::string constraint;
  EngineConfig engine;
  int sync_interval = 0;
  bool profile_from_seeds = true;
  // Campaign bounds (the result-affecting subset of RunOptions; max_seconds
  // and max_sync_batches are per-leg knobs and deliberately not stored).
  int max_tests = 0;
  int max_seed_passes = 0;
  float coverage_goal = 1.1f;
  std::vector<std::string> model_names;
  // Free-form campaign annotations ("domain", "constraint", ...).
  std::vector<std::pair<std::string, std::string>> metadata;
  // The full seed pool, making the corpus self-contained for replay.
  std::vector<Tensor> seeds;

  const std::string* FindMetadata(const std::string& key) const;
};

struct CorpusCheckpoint {
  struct JournalRecord {
    int seed_index = 0;
    bool found = false;
    float gain = 0.0f;
  };

  // True once the campaign hit a terminal condition (scheduler exhausted,
  // max_tests, or coverage goal) — resuming a complete corpus is a no-op
  // that returns the recorded stats.
  bool complete = false;
  uint64_t task_counter = 0;
  int seeds_tried = 0;
  int seeds_skipped = 0;
  int64_t total_iterations = 0;
  int64_t forward_passes = 0;
  uint64_t num_tests = 0;       // High-water mark into entries.bin.
  uint64_t num_batches = 0;     // High-water mark into journal.bin.
  float mean_coverage = 0.0f;
  // One CoverageMetric::Serialize blob per model, session order.
  std::vector<std::string> metric_blobs;
};

class Corpus {
 public:
  // Opens (creating the directory if needed) a corpus rooted at `dir`. An
  // existing manifest is loaded along with the checkpoint, entries, and
  // journal — trimmed back to the checkpoint's high-water marks (see the
  // crash-safety note above). Throws std::runtime_error on corrupt or
  // version-mismatched files.
  explicit Corpus(std::string dir);

  const std::string& dir() const { return dir_; }

  // True once a manifest exists (Initialize has run here or in a previous
  // process).
  bool initialized() const { return initialized_; }

  // Annotations folded into the manifest at Initialize time (no-op after —
  // the manifest is immutable). Call before the first Session::Run.
  void SetMetadata(const std::string& key, const std::string& value);

  // Writes the manifest. Called by Session::Run on first recording; throws
  // std::logic_error when already initialized.
  void Initialize(CorpusMeta meta);
  const CorpusMeta& meta() const;

  // Appends one difference-inducing test (provenance included) to
  // entries.bin.
  void AppendEntry(const GeneratedTest& test);
  const std::vector<GeneratedTest>& entries() const { return entries_; }

  // Appends one sync batch's scheduler journal to journal.bin.
  void AppendJournalBatch(const std::vector<CorpusCheckpoint::JournalRecord>& batch);
  const std::vector<std::vector<CorpusCheckpoint::JournalRecord>>& journal() const {
    return journal_;
  }

  // Atomically replaces checkpoint.bin (write temp + rename). The
  // checkpoint's high-water marks must match the entries/journal already
  // appended.
  void WriteCheckpoint(const CorpusCheckpoint& checkpoint);
  bool has_checkpoint() const { return has_checkpoint_; }
  const CorpusCheckpoint& checkpoint() const;

 private:
  void Load();
  void RewriteEntries();
  void RewriteJournal();
  std::string ManifestPath() const;
  std::string EntriesPath() const;
  std::string JournalPath() const;
  std::string CheckpointPath() const;

  std::string dir_;
  bool initialized_ = false;
  bool has_checkpoint_ = false;
  CorpusMeta meta_;
  CorpusCheckpoint checkpoint_;
  std::vector<GeneratedTest> entries_;
  std::vector<std::vector<CorpusCheckpoint::JournalRecord>> journal_;
  std::vector<std::pair<std::string, std::string>> pending_metadata_;
};

}  // namespace dx

#endif  // DX_SRC_CORPUS_CORPUS_H_

// Corpus: the durable on-disk store behind long-running test campaigns.
//
// A corpus directory owns everything needed to reproduce, resume, or audit a
// Session campaign:
//
//   manifest.bin    campaign identity, written once at Initialize: the
//                   result-affecting session wiring (metric/objective/
//                   scheduler names, full EngineConfig incl. rng_seed,
//                   sync_interval), the campaign bounds (max_tests,
//                   max_seed_passes, coverage_goal), the model names, the
//                   full seed pool, and free-form metadata (domain,
//                   constraint, ...).
//   entries.bin     append-only stream of difference-inducing inputs with
//                   provenance (seed index, iteration count, deviating
//                   model, per-model labels/outputs, task ordinal — which
//                   pins the task's RNG stream given the engine rng_seed).
//   journal.bin     append-only scheduler journal: per sync batch, the
//                   scheduled seed indices and the (found, coverage-gain)
//                   outcomes reported back. Replaying this stream through a
//                   freshly Reset scheduler reconstructs its exact state
//                   without requiring schedulers to be serializable.
//   checkpoints.bin segmented checkpoint chain (the default since format
//                   version 2): an append-only sequence of framed records —
//                   periodic FULL snapshots (RunStats counters, entry/journal
//                   high-water marks, serialized per-model coverage state via
//                   CoverageMetric::Serialize, and an optional scheduler
//                   state blob) interleaved with cheap DELTA records that
//                   carry only the scalar counters. Writing a snapshot
//                   atomically rewrites the chain down to that single
//                   snapshot (tmp + rename), so the chain never grows past
//                   one snapshot + snapshot_interval deltas. Per-batch
//                   checkpoint I/O is therefore O(counters), not O(coverage
//                   state), and resume cost is O(delta since the last
//                   snapshot) — the resumed run re-executes at most
//                   snapshot_interval batches deterministically.
//   checkpoint.bin  the legacy (format v1) monolithic resume point,
//                   atomically replaced at every sync batch. Still read
//                   (old corpora open fine) and still written when
//                   SetCheckpointFormat(kMonolithic) is selected; a corpus
//                   upgraded to the segmented chain deletes it on the first
//                   snapshot write.
//
// Crash safety (process level): entries and journal batches are appended
// and flushed BEFORE the checkpoint record that covers them is written, so
// a killed process leaves at most a trailing suffix not covered by a
// restorable checkpoint; Open() trims both files back to the restorable
// checkpoint's high-water marks (and a corpus with no checkpoint is treated
// as empty). For the segmented chain the restorable checkpoint is the last
// fully-valid SNAPSHOT record: a chain truncated mid-record is cut back to
// its last valid snapshot on open (deltas carry no coverage state, so they
// are progress/stats records, never resume points), and the dropped batches
// are re-executed deterministically on resume. Resumption therefore always
// restarts at a sync-batch boundary, which is exactly the granularity at
// which Session results are deterministic. The files are NOT fsync'd, so a
// power loss / kernel crash can reorder appends and renames on disk and
// leave a corpus that fails to open (a clean std::runtime_error, never
// silent divergence) — acceptable for a per-machine campaign artifact.
//
// The files use the util/serialize little-endian POD format: a per-machine
// artifact, not an interchange format.
#ifndef DX_SRC_CORPUS_CORPUS_H_
#define DX_SRC_CORPUS_CORPUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/core/session.h"

namespace dx {

inline constexpr uint32_t kCorpusFormatVersion = 1;

// The campaign identity stored in manifest.bin. Everything here either
// affects results bit-for-bit (config, engine, bounds, seeds) or documents
// the campaign (model names, metadata). Deliberately absent: batch_size and
// workers — Session results are invariant to both, so a campaign may be
// recorded serially and resumed on many workers (or vice versa).
struct CorpusMeta {
  std::string metric;
  std::string objective;
  std::string scheduler;
  // Constraint::name() of the recording session — validated on resume (a
  // different input-rewriting rule would silently diverge the campaign).
  std::string constraint;
  EngineConfig engine;
  int sync_interval = 0;
  bool profile_from_seeds = true;
  // Campaign bounds (the result-affecting subset of RunOptions; max_seconds
  // and max_sync_batches are per-leg knobs and deliberately not stored).
  int max_tests = 0;
  int max_seed_passes = 0;
  float coverage_goal = 1.1f;
  std::vector<std::string> model_names;
  // Free-form campaign annotations ("domain", "constraint", ...).
  std::vector<std::pair<std::string, std::string>> metadata;
  // The full seed pool, making the corpus self-contained for replay.
  std::vector<Tensor> seeds;

  const std::string* FindMetadata(const std::string& key) const;
};

struct CorpusCheckpoint {
  struct JournalRecord {
    int seed_index = 0;
    bool found = false;
    float gain = 0.0f;
  };

  // True once the campaign hit a terminal condition (scheduler exhausted,
  // max_tests, or coverage goal) — resuming a complete corpus is a no-op
  // that returns the recorded stats.
  bool complete = false;
  uint64_t task_counter = 0;
  int seeds_tried = 0;
  int seeds_skipped = 0;
  int64_t total_iterations = 0;
  int64_t forward_passes = 0;
  uint64_t num_tests = 0;       // High-water mark into entries.bin.
  uint64_t num_batches = 0;     // High-water mark into journal.bin.
  float mean_coverage = 0.0f;
  // One CoverageMetric::Serialize blob per model, session order.
  std::vector<std::string> metric_blobs;
  // SeedScheduler::SaveState blob (empty when the scheduler doesn't support
  // snapshots — resume then falls back to replaying the journal). Stored in
  // segmented-chain snapshots only; the v1 monolithic file never carries it.
  std::string scheduler_blob;
};

// How Corpus::WriteCheckpoint persists resume points.
enum class CheckpointFormat {
  kMonolithic,  // Format v1: rewrite checkpoint.bin in full every time.
  kSegmented,   // Format v2 chain: periodic snapshots + cheap deltas.
};

// A read-only summary of a corpus directory (see Corpus::Stats). The
// breakdown keys (domain, objective, ...) come from the manifest, so stats
// from many corpora can be aggregated per domain / per objective.
struct CorpusStats {
  std::string domain;  // "" when the manifest carries no domain annotation.
  std::string objective;
  std::string metric;
  std::string scheduler;
  uint64_t num_entries = 0;
  uint64_t num_seeds = 0;
  uint64_t journal_batches = 0;
  // Difference-inducing entries attributed to each model (deviating_model),
  // indexed like meta().model_names.
  std::vector<uint64_t> entries_per_model;
  // On-disk footprint, bytes.
  uint64_t manifest_bytes = 0;
  uint64_t entries_bytes = 0;
  uint64_t journal_bytes = 0;
  uint64_t checkpoint_bytes = 0;  // checkpoint.bin + checkpoints.bin.
  uint64_t total_bytes = 0;
  // Checkpoint chain shape: snapshots is 0 or 1 (a snapshot write compacts
  // the chain), deltas counts records appended since. Monolithic corpora
  // report snapshots=1, deltas=0 when checkpoint.bin exists.
  bool segmented = false;
  uint64_t chain_snapshots = 0;
  uint64_t chain_deltas = 0;
  bool complete = false;
  float mean_coverage = 0.0f;
};

class Corpus {
 public:
  // Opens (creating the directory if needed) a corpus rooted at `dir`. An
  // existing manifest is loaded along with the checkpoint, entries, and
  // journal — trimmed back to the checkpoint's high-water marks (see the
  // crash-safety note above). Throws std::runtime_error on corrupt or
  // version-mismatched files.
  explicit Corpus(std::string dir);

  const std::string& dir() const { return dir_; }

  // True once a manifest exists (Initialize has run here or in a previous
  // process).
  bool initialized() const { return initialized_; }

  // Annotations folded into the manifest at Initialize time (no-op after —
  // the manifest is immutable). Call before the first Session::Run.
  void SetMetadata(const std::string& key, const std::string& value);

  // Writes the manifest. Called by Session::Run on first recording; throws
  // std::logic_error when already initialized.
  void Initialize(CorpusMeta meta);
  const CorpusMeta& meta() const;

  // Appends one difference-inducing test (provenance included) to
  // entries.bin.
  void AppendEntry(const GeneratedTest& test);
  const std::vector<GeneratedTest>& entries() const { return entries_; }

  // Appends one sync batch's scheduler journal to journal.bin.
  void AppendJournalBatch(const std::vector<CorpusCheckpoint::JournalRecord>& batch);
  const std::vector<std::vector<CorpusCheckpoint::JournalRecord>>& journal() const {
    return journal_;
  }

  // Persists a resume point. The checkpoint's high-water marks must match
  // the entries/journal already appended. In kSegmented mode (the default)
  // this writes a full snapshot when the checkpoint is complete, when the
  // chain has no snapshot yet, or every snapshot_interval-th call — and a
  // cheap counters-only delta otherwise. In kMonolithic mode it atomically
  // replaces checkpoint.bin (the v1 format) every time. The in-memory
  // checkpoint() always reflects the full `checkpoint` passed here,
  // regardless of what was thinned on disk.
  void WriteCheckpoint(const CorpusCheckpoint& checkpoint);
  bool has_checkpoint() const { return has_checkpoint_; }
  const CorpusCheckpoint& checkpoint() const;

  // Forces the current checkpoint state to be durable as a full snapshot
  // (no-op when there is no checkpoint, in monolithic mode, or when the
  // chain is already exactly at the latest checkpoint). Sessions call this
  // at the end of every run leg so a clean shutdown never loses batches to
  // the delta window.
  void Sync();

  // Selects the on-disk checkpoint format for subsequent WriteCheckpoint
  // calls (default kSegmented). Switching to kSegmented on a corpus with a
  // legacy checkpoint.bin upgrades it at the next snapshot write.
  void SetCheckpointFormat(CheckpointFormat format) { format_ = format; }
  CheckpointFormat checkpoint_format() const { return format_; }

  // Every how-many WriteCheckpoint calls a segmented chain takes a full
  // snapshot (default 8; min 1 = snapshot every time).
  void SetSnapshotInterval(int every);

  // Summarizes the corpus (entry counts, on-disk bytes, checkpoint chain
  // shape, manifest breakdown keys). Purely observational — reads file
  // sizes, never loads models.
  CorpusStats Stats() const;

 private:
  void Load();
  void LoadChain();
  void RewriteEntries();
  void RewriteJournal();
  void WriteSnapshot(const CorpusCheckpoint& checkpoint);
  void AppendDelta(const CorpusCheckpoint& checkpoint);
  std::string ManifestPath() const;
  std::string EntriesPath() const;
  std::string JournalPath() const;
  std::string CheckpointPath() const;
  std::string ChainPath() const;

  std::string dir_;
  bool initialized_ = false;
  bool has_checkpoint_ = false;
  CorpusMeta meta_;
  CorpusCheckpoint checkpoint_;
  std::vector<GeneratedTest> entries_;
  std::vector<std::vector<CorpusCheckpoint::JournalRecord>> journal_;
  std::vector<std::pair<std::string, std::string>> pending_metadata_;

  CheckpointFormat format_ = CheckpointFormat::kSegmented;
  int snapshot_interval_ = 8;
  bool chain_has_snapshot_ = false;  // checkpoints.bin holds a snapshot.
  uint64_t chain_deltas_ = 0;        // Delta records since that snapshot.
  // True when the durable chain state lags the in-memory checkpoint_ (the
  // latest WriteCheckpoint only produced a delta); Sync() then snapshots.
  bool chain_dirty_ = false;
};

}  // namespace dx

#endif  // DX_SRC_CORPUS_CORPUS_H_

// Near-duplicate detection over corpus entries: campaigns keep finding
// perceptually identical difference-inducers around the same seed, and a
// million-entry corpus must not store them all.
//
// The similarity notion is a pluggable, registry-keyed axis like every
// other engine axis (RegisterCorpusDeduper / MakeCorpusDeduper). Built-ins:
//
//   "ssim"         perceptual: mean SSIM (src/analysis/ssim.h) >= threshold
//                  (default 0.97). For image-shaped inputs (ndim >= 2).
//   "l2"           RMS distance: ||a - b||_2 / sqrt(numel) <= threshold
//                  (default 0.02). Shape-agnostic.
//   "feature-box"  per-dimension: max_i |a_i - b_i| / range_i <= threshold
//                  (default 0.05), ranges profiled from the manifest seed
//                  pool — the natural notion for tabular/speech domains
//                  whose features live on wildly different scales.
//
// "auto" (the default) resolves per corpus: "ssim" when the seed inputs are
// image-shaped (ndim >= 2), "feature-box" otherwise.
//
// The pass scans entries in corpus order and compares each candidate only
// against already-retained entries with the same disagreement signature
// (per-model labels, or the deviating model for regression) — two inputs
// that expose different disagreements are never duplicates of each other. A
// near-duplicate is still retained when it covers coverage items no
// retained entry covers (preserve_coverage, default on), which keeps the
// merged coverage of the output exactly equal to the input's. Everything is
// order-based and threshold-based: deterministic for a fixed corpus.
#ifndef DX_SRC_CORPUS_DEDUP_H_
#define DX_SRC_CORPUS_DEDUP_H_

#include <functional>
#include <memory>
#include <string>

#include "src/corpus/maintenance.h"

namespace dx {

// What a deduper may consult at construction time.
struct DeduperContext {
  const CorpusMeta* meta = nullptr;
  // < 0 selects the deduper's default threshold.
  float threshold = -1.0f;
};

class CorpusDeduper {
 public:
  virtual ~CorpusDeduper() = default;
  virtual std::string name() const = 0;
  // True when `candidate` is a near-duplicate of the retained `kept`.
  virtual bool NearDuplicate(const Tensor& candidate, const Tensor& kept) const = 0;
};

using CorpusDeduperFactory =
    std::function<std::unique_ptr<CorpusDeduper>(const DeduperContext&)>;

// Registers (or replaces) a deduper under `name` for MakeCorpusDeduper.
void RegisterCorpusDeduper(const std::string& name, CorpusDeduperFactory factory);

// Builds the deduper registered under `name` ("auto" resolves from the
// context's seed shape); throws std::invalid_argument for unknown names.
std::unique_ptr<CorpusDeduper> MakeCorpusDeduper(const std::string& name,
                                                 const DeduperContext& context);

// Registered deduper names, sorted ("auto" included).
std::vector<std::string> CorpusDeduperNames();

struct DedupOptions {
  std::string out_dir;
  std::string deduper = "auto";
  float threshold = -1.0f;  // < 0: the deduper's default.
  // Keep a near-duplicate anyway when it covers something no retained entry
  // covers (preserves the merged-coverage invariant).
  bool preserve_coverage = true;
};

// Runs the near-duplicate pass of `corpus` through `session` and writes the
// deduplicated corpus to options.out_dir. Resets the session's coverage
// state. Returns the report.
MaintenanceReport DedupCorpus(Session& session, const Corpus& corpus,
                              const DedupOptions& options);

}  // namespace dx

#endif  // DX_SRC_CORPUS_DEDUP_H_

#include "src/corpus/dedup.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "src/analysis/ssim.h"
#include "src/util/registry.h"
#include "src/util/timer.h"

namespace dx {

namespace {

class SsimDeduper : public CorpusDeduper {
 public:
  explicit SsimDeduper(float threshold)
      : threshold_(threshold < 0 ? 0.97f : threshold) {}
  std::string name() const override { return "ssim"; }
  bool NearDuplicate(const Tensor& candidate, const Tensor& kept) const override {
    return Ssim(candidate, kept) >= threshold_;
  }

 private:
  float threshold_;
};

class L2Deduper : public CorpusDeduper {
 public:
  explicit L2Deduper(float threshold)
      : threshold_(threshold < 0 ? 0.02f : threshold) {}
  std::string name() const override { return "l2"; }
  bool NearDuplicate(const Tensor& candidate, const Tensor& kept) const override {
    if (candidate.shape() != kept.shape() || candidate.numel() == 0) {
      return false;
    }
    double sum = 0.0;
    for (int64_t i = 0; i < candidate.numel(); ++i) {
      const double d = static_cast<double>(candidate[i]) - static_cast<double>(kept[i]);
      sum += d * d;
    }
    const double rms = std::sqrt(sum / static_cast<double>(candidate.numel()));
    return rms <= static_cast<double>(threshold_);
  }

 private:
  float threshold_;
};

// Per-dimension relative distance under ranges profiled from the manifest
// seed pool: the box geometry tabular domains already constrain in.
class FeatureBoxDeduper : public CorpusDeduper {
 public:
  FeatureBoxDeduper(const DeduperContext& context, float threshold)
      : threshold_(threshold < 0 ? 0.05f : threshold) {
    if (context.meta == nullptr || context.meta->seeds.empty()) {
      throw std::invalid_argument(
          "feature-box deduper needs a corpus manifest with a seed pool to "
          "profile feature ranges");
    }
    const std::vector<Tensor>& seeds = context.meta->seeds;
    const int64_t n = seeds[0].numel();
    std::vector<float> lo(seeds[0].values());
    std::vector<float> hi(seeds[0].values());
    for (const Tensor& seed : seeds) {
      if (seed.numel() != n) {
        throw std::invalid_argument("feature-box deduper: seed shapes disagree");
      }
      for (int64_t i = 0; i < n; ++i) {
        lo[static_cast<size_t>(i)] = std::min(lo[static_cast<size_t>(i)], seed[i]);
        hi[static_cast<size_t>(i)] = std::max(hi[static_cast<size_t>(i)], seed[i]);
      }
    }
    range_.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      // A constant feature has no scale of its own; fall back to an absolute
      // epsilon so equal values still compare as duplicates.
      range_[static_cast<size_t>(i)] =
          std::max(hi[static_cast<size_t>(i)] - lo[static_cast<size_t>(i)], 1e-6f);
    }
  }
  std::string name() const override { return "feature-box"; }
  bool NearDuplicate(const Tensor& candidate, const Tensor& kept) const override {
    if (candidate.numel() != static_cast<int64_t>(range_.size()) ||
        kept.numel() != candidate.numel()) {
      return false;
    }
    for (int64_t i = 0; i < candidate.numel(); ++i) {
      const float d = std::abs(candidate[i] - kept[i]) / range_[static_cast<size_t>(i)];
      if (d > threshold_) {
        return false;
      }
    }
    return true;
  }

 private:
  float threshold_;
  std::vector<float> range_;
};

NamedRegistry<CorpusDeduperFactory>& DeduperRegistry() {
  static auto* registry = new NamedRegistry<CorpusDeduperFactory>({
      {"ssim",
       [](const DeduperContext& ctx) -> std::unique_ptr<CorpusDeduper> {
         return std::make_unique<SsimDeduper>(ctx.threshold);
       }},
      {"l2",
       [](const DeduperContext& ctx) -> std::unique_ptr<CorpusDeduper> {
         return std::make_unique<L2Deduper>(ctx.threshold);
       }},
      {"feature-box",
       [](const DeduperContext& ctx) -> std::unique_ptr<CorpusDeduper> {
         return std::make_unique<FeatureBoxDeduper>(ctx, ctx.threshold);
       }},
  });
  return *registry;
}

// The disagreement signature: inputs exposing different disagreements are
// never duplicates, so candidates only compare within their signature class.
std::string Signature(const GeneratedTest& entry, bool regression) {
  std::ostringstream key;
  if (regression) {
    key << "dev:" << entry.deviating_model;
  } else {
    for (int label : entry.labels) {
      key << label << ',';
    }
  }
  return key.str();
}

}  // namespace

void RegisterCorpusDeduper(const std::string& name, CorpusDeduperFactory factory) {
  DeduperRegistry().Register(name, std::move(factory));
}

std::unique_ptr<CorpusDeduper> MakeCorpusDeduper(const std::string& name,
                                                 const DeduperContext& context) {
  std::string key = name;
  if (!DeduperRegistry().Contains(key) && name == "auto") {
    // Perceptual similarity for image-shaped inputs, seed-profiled feature
    // boxes for flat (tabular / speech) inputs.
    const bool image_shaped = context.meta != nullptr &&
                              !context.meta->seeds.empty() &&
                              context.meta->seeds[0].ndim() >= 2;
    key = image_shaped ? "ssim" : "feature-box";
  }
  return DeduperRegistry().Get(key, "corpus deduper")(context);
}

std::vector<std::string> CorpusDeduperNames() {
  std::vector<std::string> names = DeduperRegistry().Names();
  if (!DeduperRegistry().Contains("auto")) {
    names.insert(names.begin(), "auto");
  }
  return names;
}

MaintenanceReport DedupCorpus(Session& session, const Corpus& corpus,
                              const DedupOptions& options) {
  if (options.out_dir.empty()) {
    throw std::invalid_argument("DedupCorpus: out_dir must be set");
  }
  Timer timer;
  const CorpusMeta& meta = corpus.meta();
  DeduperContext context;
  context.meta = &meta;
  context.threshold = options.threshold;
  const std::unique_ptr<CorpusDeduper> deduper =
      MakeCorpusDeduper(options.deduper, context);

  session.ResetRunState();
  if (meta.profile_from_seeds) {
    session.ProfileSeeds(meta.seeds);
  }
  const std::vector<GeneratedTest>& entries = corpus.entries();
  std::vector<const Tensor*> inputs;
  inputs.reserve(entries.size());
  for (const GeneratedTest& entry : entries) {
    inputs.push_back(&entry.input);
  }
  std::vector<CoverageFootprint> footprints;
  if (options.preserve_coverage) {
    footprints = ComputeFootprints(session, inputs);
  }

  CoverageFootprint retained_cov;
  for (int k = 0; k < session.num_models(); ++k) {
    retained_cov.push_back(session.metric(k).Clone());
  }
  std::vector<GeneratedTest> retained;
  std::vector<size_t> retained_index;  // Indices into `entries`.
  const bool regression = session.regression();
  for (size_t i = 0; i < entries.size(); ++i) {
    const std::string sig = Signature(entries[i], regression);
    bool duplicate = false;
    for (size_t r : retained_index) {
      if (Signature(entries[r], regression) == sig &&
          deduper->NearDuplicate(entries[i].input, entries[r].input)) {
        duplicate = true;
        break;
      }
    }
    if (duplicate && options.preserve_coverage &&
        AddsCoverage(retained_cov, footprints[i])) {
      // A "duplicate" that still covers something new is not redundant.
      duplicate = false;
    }
    if (!duplicate) {
      if (options.preserve_coverage) {
        MergeFootprint(retained_cov, footprints[i]);
      }
      retained_index.push_back(i);
      retained.push_back(entries[i]);
    }
  }
  if (!options.preserve_coverage) {
    // The checkpoint must still describe the retained set's coverage.
    std::vector<const Tensor*> kept_inputs;
    kept_inputs.reserve(retained.size());
    for (const GeneratedTest& entry : retained) {
      kept_inputs.push_back(&entry.input);
    }
    for (CoverageFootprint& fp : ComputeFootprints(session, kept_inputs)) {
      MergeFootprint(retained_cov, fp);
    }
  }

  MaintenanceReport report;
  report.transform = "dedup";
  report.input_entries = entries.size();
  report.retained_entries = retained.size();
  for (int k = 0; k < session.num_models(); ++k) {
    ModelCoverageDelta delta;
    delta.model = session.model(k).name();
    delta.covered_after = retained_cov[static_cast<size_t>(k)]->covered_items();
    delta.total_items = retained_cov[static_cast<size_t>(k)]->total_items();
    if (options.preserve_coverage) {
      auto all = retained_cov[static_cast<size_t>(k)]->Clone();
      for (const CoverageFootprint& fp : footprints) {
        all->Merge(*fp[static_cast<size_t>(k)]);
      }
      delta.covered_before = all->covered_items();
    } else {
      delta.covered_before = delta.covered_after;
    }
    report.coverage.push_back(delta);
  }

  WriteDerivedCorpus(corpus, "dedup", retained, retained_cov, options.out_dir);
  report.seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace dx

// Corpus minimization: greedy per-entry input reduction. A difference-inducing
// input found by gradient ascent usually carries far more perturbation than
// the disagreement needs; this pass walks each entry back toward its seed,
// region by region, keeping a revert only while the entry still earns its
// place in the corpus.
//
// Per entry, the flat value space is split into `regions` contiguous blocks.
// Each round builds one candidate per block (that block's values reverted to
// the seed), evaluates every candidate in one batched forward per model
// through the compiled ExecutionPlan, and accepts the reverts that preserve:
//
//   1. the disagreement — re-predicted labels equal the stored labels
//      (classification), or the output spread still exceeds steering_eps
//      (regression, with the entry's stored outputs rewritten to match);
//   2. the coverage delta — for every model, the items covered by
//      (already-minimized prefix ⊕ untouched suffix ⊕ candidate) equal the
//      items that set covered with the original entry in place.
//
// Individually-passing blocks are first tried as one combined revert (a
// single extra forward); if the combination breaks either invariant the pass
// falls back to accepting them one at a time. Rounds repeat until a fixpoint
// or max_rounds, whichever first.
//
// Criterion 2 is what makes the pass safe at corpus scale: by induction over
// entries, (merged minimized prefix ⊕ merged original suffix) covers exactly
// what the whole original corpus covers, so after the last entry the merged
// coverage of the minimized corpus equals the original's (pinned by
// tests/corpus_maintenance_test.cc). The suffix footprints are materialized
// up front — O(entries x coverage state) memory — which is the price of
// exactness; distill first when that is too much.
#ifndef DX_SRC_CORPUS_MINIMIZE_H_
#define DX_SRC_CORPUS_MINIMIZE_H_

#include <string>

#include "src/corpus/maintenance.h"

namespace dx {

struct MinimizeOptions {
  // Where the minimized corpus is written (must not hold a corpus yet).
  std::string out_dir;
  // Contiguous blocks the flat value space is split into per entry. More
  // regions revert at finer grain but cost more forwards per round.
  int regions = 16;
  // Revert rounds per entry; the loop also stops at the first round that
  // accepts nothing.
  int max_rounds = 4;
};

// Runs the minimization pass of `corpus` through `session` (built with the
// corpus' config) and writes the minimized corpus to options.out_dir. Every
// entry is retained; only inputs (and regression outputs) change. Resets the
// session's coverage state. Returns the report — modified_entries and
// reverted_values say how much perturbation the pass clawed back.
MaintenanceReport MinimizeCorpus(Session& session, const Corpus& corpus,
                                 const MinimizeOptions& options);

}  // namespace dx

#endif  // DX_SRC_CORPUS_MINIMIZE_H_

#include "src/corpus/corpus.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/util/serialize.h"

namespace dx {
namespace {

constexpr uint32_t kManifestMagic = 0x44584d46;    // "DXMF"
constexpr uint32_t kEntryMagic = 0x44584554;       // "DXET"
constexpr uint32_t kCheckpointMagic = 0x44584350;  // "DXCP"

// Segmented checkpoint chain (checkpoints.bin).
constexpr uint32_t kChainMagic = 0x44584343;   // "DXCC"
constexpr uint32_t kChainVersion = 1;
constexpr uint32_t kRecordMagic = 0x44584352;  // "DXCR"
constexpr uint32_t kRecordEndMagic = 0x44584345;  // "DXCE"
constexpr uint32_t kRecordSnapshot = 1;
constexpr uint32_t kRecordDelta = 2;

// The scalar counters shared by snapshot and delta records.
void WriteCheckpointCounters(BinaryWriter& w, const CorpusCheckpoint& cp) {
  w.WriteU32(cp.complete ? 1 : 0);
  w.WriteU64(cp.task_counter);
  w.WriteI64(cp.seeds_tried);
  w.WriteI64(cp.seeds_skipped);
  w.WriteI64(cp.total_iterations);
  w.WriteI64(cp.forward_passes);
  w.WriteU64(cp.num_tests);
  w.WriteU64(cp.num_batches);
  w.WriteF32(cp.mean_coverage);
}

void ReadCheckpointCounters(BinaryReader& r, CorpusCheckpoint& cp) {
  cp.complete = r.ReadU32() != 0;
  cp.task_counter = r.ReadU64();
  cp.seeds_tried = static_cast<int>(r.ReadI64());
  cp.seeds_skipped = static_cast<int>(r.ReadI64());
  cp.total_iterations = r.ReadI64();
  cp.forward_passes = r.ReadI64();
  cp.num_tests = r.ReadU64();
  cp.num_batches = r.ReadU64();
  cp.mean_coverage = r.ReadF32();
}

void WriteEngine(BinaryWriter& w, const EngineConfig& e) {
  w.WriteF32(e.lambda1);
  w.WriteF32(e.lambda2);
  w.WriteF32(e.step);
  w.WriteF32(e.coverage.threshold);
  w.WriteU32(e.coverage.scale_per_layer ? 1 : 0);
  w.WriteU32(e.coverage.exclude_dense ? 1 : 0);
  w.WriteU32(e.coverage.exclude_output_layer ? 1 : 0);
  w.WriteU32(static_cast<uint32_t>(e.coverage.kmc_sections));
  w.WriteU32(static_cast<uint32_t>(e.coverage.top_k));
  w.WriteI64(e.max_iterations_per_seed);
  w.WriteF32(e.steering_eps);
  w.WriteU32(e.normalize_gradient ? 1 : 0);
  w.WriteI64(e.forced_target_model);
  w.WriteU64(e.rng_seed);
}

EngineConfig ReadEngine(BinaryReader& r) {
  EngineConfig e;
  e.lambda1 = r.ReadF32();
  e.lambda2 = r.ReadF32();
  e.step = r.ReadF32();
  e.coverage.threshold = r.ReadF32();
  e.coverage.scale_per_layer = r.ReadU32() != 0;
  e.coverage.exclude_dense = r.ReadU32() != 0;
  e.coverage.exclude_output_layer = r.ReadU32() != 0;
  e.coverage.kmc_sections = static_cast<int>(r.ReadU32());
  e.coverage.top_k = static_cast<int>(r.ReadU32());
  e.max_iterations_per_seed = static_cast<int>(r.ReadI64());
  e.steering_eps = r.ReadF32();
  e.normalize_gradient = r.ReadU32() != 0;
  e.forced_target_model = static_cast<int>(r.ReadI64());
  e.rng_seed = r.ReadU64();
  return e;
}

void WriteEntry(BinaryWriter& w, const GeneratedTest& t) {
  w.WriteU32(kEntryMagic);
  w.WriteI64(t.seed_index);
  w.WriteI64(t.iterations);
  w.WriteI64(t.deviating_model);
  w.WriteU64(t.task_ordinal);
  w.WriteF64(t.seconds);
  w.WriteInts(t.labels);
  w.WriteFloats(t.outputs);
  w.WriteTensor(t.input);
}

GeneratedTest ReadEntry(BinaryReader& r) {
  if (r.ReadU32() != kEntryMagic) {
    throw std::runtime_error("Corpus: corrupt entry record");
  }
  GeneratedTest t;
  t.seed_index = static_cast<int>(r.ReadI64());
  t.iterations = static_cast<int>(r.ReadI64());
  t.deviating_model = static_cast<int>(r.ReadI64());
  t.task_ordinal = r.ReadU64();
  t.seconds = r.ReadF64();
  t.labels = r.ReadInts();
  t.outputs = r.ReadFloats();
  t.input = r.ReadTensor();
  return t;
}

}  // namespace

const std::string* CorpusMeta::FindMetadata(const std::string& key) const {
  for (const auto& [k, v] : metadata) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

Corpus::Corpus(std::string dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
  if (std::filesystem::exists(ManifestPath())) {
    Load();
  }
}

std::string Corpus::ManifestPath() const { return dir_ + "/manifest.bin"; }
std::string Corpus::EntriesPath() const { return dir_ + "/entries.bin"; }
std::string Corpus::JournalPath() const { return dir_ + "/journal.bin"; }
std::string Corpus::CheckpointPath() const { return dir_ + "/checkpoint.bin"; }
std::string Corpus::ChainPath() const { return dir_ + "/checkpoints.bin"; }

void Corpus::SetSnapshotInterval(int every) {
  if (every < 1) {
    throw std::invalid_argument("Corpus: snapshot interval must be >= 1");
  }
  snapshot_interval_ = every;
}

void Corpus::SetMetadata(const std::string& key, const std::string& value) {
  if (initialized_) {
    return;  // Manifest is immutable once written.
  }
  for (auto& [k, v] : pending_metadata_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  pending_metadata_.emplace_back(key, value);
}

void Corpus::Initialize(CorpusMeta meta) {
  if (initialized_) {
    throw std::logic_error("Corpus: already initialized: " + dir_);
  }
  for (auto& kv : pending_metadata_) {
    meta.metadata.push_back(std::move(kv));
  }
  pending_metadata_.clear();
  std::ofstream out(ManifestPath(), std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("Corpus: cannot write " + ManifestPath());
  }
  BinaryWriter w(out);
  w.WriteU32(kManifestMagic);
  w.WriteU32(kCorpusFormatVersion);
  w.WriteString(meta.metric);
  w.WriteString(meta.objective);
  w.WriteString(meta.scheduler);
  w.WriteString(meta.constraint);
  WriteEngine(w, meta.engine);
  w.WriteI64(meta.sync_interval);
  w.WriteU32(meta.profile_from_seeds ? 1 : 0);
  w.WriteI64(meta.max_tests);
  w.WriteI64(meta.max_seed_passes);
  w.WriteF32(meta.coverage_goal);
  w.WriteU64(meta.model_names.size());
  for (const std::string& name : meta.model_names) {
    w.WriteString(name);
  }
  w.WriteU64(meta.metadata.size());
  for (const auto& [k, v] : meta.metadata) {
    w.WriteString(k);
    w.WriteString(v);
  }
  w.WriteU64(meta.seeds.size());
  for (const Tensor& seed : meta.seeds) {
    w.WriteTensor(seed);
  }
  out.close();
  if (!out) {
    throw std::runtime_error("Corpus: failed writing " + ManifestPath());
  }
  meta_ = std::move(meta);
  initialized_ = true;
}

const CorpusMeta& Corpus::meta() const {
  if (!initialized_) {
    throw std::logic_error("Corpus: not initialized: " + dir_);
  }
  return meta_;
}

void Corpus::Load() {
  {
    std::ifstream in(ManifestPath(), std::ios::binary);
    BinaryReader r(in);
    if (r.ReadU32() != kManifestMagic) {
      throw std::runtime_error("Corpus: bad manifest magic in " + ManifestPath());
    }
    const uint32_t version = r.ReadU32();
    if (version != kCorpusFormatVersion) {
      throw std::runtime_error("Corpus: unsupported format version " +
                               std::to_string(version) + " in " + ManifestPath());
    }
    meta_.metric = r.ReadString();
    meta_.objective = r.ReadString();
    meta_.scheduler = r.ReadString();
    meta_.constraint = r.ReadString();
    meta_.engine = ReadEngine(r);
    meta_.sync_interval = static_cast<int>(r.ReadI64());
    meta_.profile_from_seeds = r.ReadU32() != 0;
    meta_.max_tests = static_cast<int>(r.ReadI64());
    meta_.max_seed_passes = static_cast<int>(r.ReadI64());
    meta_.coverage_goal = r.ReadF32();
    const uint64_t num_models = r.ReadU64();
    meta_.model_names.clear();
    for (uint64_t i = 0; i < num_models; ++i) {
      meta_.model_names.push_back(r.ReadString());
    }
    const uint64_t num_metadata = r.ReadU64();
    meta_.metadata.clear();
    for (uint64_t i = 0; i < num_metadata; ++i) {
      std::string key = r.ReadString();
      std::string value = r.ReadString();
      meta_.metadata.emplace_back(std::move(key), std::move(value));
    }
    const uint64_t num_seeds = r.ReadU64();
    meta_.seeds.clear();
    for (uint64_t i = 0; i < num_seeds; ++i) {
      meta_.seeds.push_back(r.ReadTensor());
    }
    initialized_ = true;
  }

  // The segmented chain is authoritative when it holds a valid snapshot
  // (a crash between "rename chain" and "delete legacy checkpoint.bin" can
  // leave both; the chain is the newer state). A chain without any valid
  // snapshot restores nothing and is discarded.
  if (std::filesystem::exists(ChainPath())) {
    LoadChain();
  }
  if (!has_checkpoint_ && std::filesystem::exists(CheckpointPath())) {
    std::ifstream in(CheckpointPath(), std::ios::binary);
    BinaryReader r(in);
    if (r.ReadU32() != kCheckpointMagic) {
      throw std::runtime_error("Corpus: bad checkpoint magic in " + CheckpointPath());
    }
    ReadCheckpointCounters(r, checkpoint_);
    const uint64_t num_blobs = r.ReadU64();
    checkpoint_.metric_blobs.clear();
    for (uint64_t i = 0; i < num_blobs; ++i) {
      checkpoint_.metric_blobs.push_back(r.ReadString());
    }
    checkpoint_.scheduler_blob.clear();  // v1 never carries scheduler state.
    has_checkpoint_ = true;
  }

  // Entries and journal are only meaningful up to the checkpoint's
  // high-water marks; anything beyond is an uncovered suffix from an
  // interrupted batch and is dropped (the resumed run regenerates it).
  const uint64_t keep_entries = has_checkpoint_ ? checkpoint_.num_tests : 0;
  const uint64_t keep_batches = has_checkpoint_ ? checkpoint_.num_batches : 0;

  entries_.clear();
  if (std::filesystem::exists(EntriesPath())) {
    std::ifstream in(EntriesPath(), std::ios::binary);
    BinaryReader r(in);
    while (entries_.size() < keep_entries) {
      entries_.push_back(ReadEntry(r));
    }
    const bool trailing = in.peek() != std::ifstream::traits_type::eof();
    in.close();
    if (trailing || entries_.size() != keep_entries) {
      RewriteEntries();
    }
  } else if (keep_entries > 0) {
    throw std::runtime_error("Corpus: checkpoint expects " +
                             std::to_string(keep_entries) + " entries but " +
                             EntriesPath() + " is missing");
  }

  journal_.clear();
  if (std::filesystem::exists(JournalPath())) {
    std::ifstream in(JournalPath(), std::ios::binary);
    BinaryReader r(in);
    while (journal_.size() < keep_batches) {
      const uint64_t count = r.ReadU64();
      if (count > (1ULL << 32)) {
        throw std::runtime_error("Corpus: corrupt journal batch length in " +
                                 JournalPath());
      }
      std::vector<CorpusCheckpoint::JournalRecord> batch(count);
      for (uint64_t i = 0; i < count; ++i) {
        batch[i].seed_index = static_cast<int>(r.ReadI64());
        batch[i].found = r.ReadU32() != 0;
        batch[i].gain = r.ReadF32();
      }
      journal_.push_back(std::move(batch));
    }
    const bool trailing = in.peek() != std::ifstream::traits_type::eof();
    in.close();
    if (trailing || journal_.size() != keep_batches) {
      RewriteJournal();
    }
  } else if (keep_batches > 0) {
    throw std::runtime_error("Corpus: checkpoint expects " +
                             std::to_string(keep_batches) + " journal batches but " +
                             JournalPath() + " is missing");
  }
}

void Corpus::RewriteEntries() {
  std::ofstream out(EntriesPath(), std::ios::binary | std::ios::trunc);
  BinaryWriter w(out);
  for (const GeneratedTest& t : entries_) {
    WriteEntry(w, t);
  }
  if (!out) {
    throw std::runtime_error("Corpus: failed rewriting " + EntriesPath());
  }
}

void Corpus::RewriteJournal() {
  std::ofstream out(JournalPath(), std::ios::binary | std::ios::trunc);
  BinaryWriter w(out);
  for (const auto& batch : journal_) {
    w.WriteU64(batch.size());
    for (const auto& record : batch) {
      w.WriteI64(record.seed_index);
      w.WriteU32(record.found ? 1 : 0);
      w.WriteF32(record.gain);
    }
  }
  if (!out) {
    throw std::runtime_error("Corpus: failed rewriting " + JournalPath());
  }
}

void Corpus::AppendEntry(const GeneratedTest& test) {
  std::ofstream out(EntriesPath(), std::ios::binary | std::ios::app);
  BinaryWriter w(out);
  WriteEntry(w, test);
  if (!out) {
    throw std::runtime_error("Corpus: failed appending to " + EntriesPath());
  }
  entries_.push_back(test);
}

void Corpus::AppendJournalBatch(
    const std::vector<CorpusCheckpoint::JournalRecord>& batch) {
  std::ofstream out(JournalPath(), std::ios::binary | std::ios::app);
  BinaryWriter w(out);
  w.WriteU64(batch.size());
  for (const auto& record : batch) {
    w.WriteI64(record.seed_index);
    w.WriteU32(record.found ? 1 : 0);
    w.WriteF32(record.gain);
  }
  if (!out) {
    throw std::runtime_error("Corpus: failed appending to " + JournalPath());
  }
  journal_.push_back(batch);
}

void Corpus::LoadChain() {
  // Read the whole chain (one snapshot + a handful of deltas by
  // construction) and stop at the first truncated or corrupt record: the
  // valid prefix is the durable state, anything past it is a crash artifact.
  std::ifstream in(ChainPath(), std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();
  size_t pos = 0;
  auto read_u32 = [&](uint32_t* out) {
    if (pos + sizeof(uint32_t) > data.size()) return false;
    std::memcpy(out, data.data() + pos, sizeof(uint32_t));
    pos += sizeof(uint32_t);
    return true;
  };
  auto read_u64 = [&](uint64_t* out) {
    if (pos + sizeof(uint64_t) > data.size()) return false;
    std::memcpy(out, data.data() + pos, sizeof(uint64_t));
    pos += sizeof(uint64_t);
    return true;
  };

  uint32_t magic = 0, version = 0;
  if (!read_u32(&magic) || magic != kChainMagic || !read_u32(&version)) {
    throw std::runtime_error("Corpus: bad chain header in " + ChainPath());
  }
  if (version != kChainVersion) {
    throw std::runtime_error("Corpus: unsupported chain version " +
                             std::to_string(version) + " in " + ChainPath());
  }

  bool have_snapshot = false;
  CorpusCheckpoint snapshot;
  uint64_t records_past_snapshot = 0;
  bool trailing_garbage = false;
  while (pos < data.size()) {
    uint32_t rec_magic = 0, kind = 0, end_magic = 0;
    uint64_t payload_len = 0;
    if (!read_u32(&rec_magic) || rec_magic != kRecordMagic ||
        !read_u32(&kind) || !read_u64(&payload_len) ||
        payload_len > data.size() - pos) {
      trailing_garbage = true;
      break;
    }
    const size_t payload_pos = pos;
    pos += payload_len;
    if (!read_u32(&end_magic) || end_magic != kRecordEndMagic) {
      trailing_garbage = true;
      break;
    }
    if (kind == kRecordSnapshot) {
      std::istringstream payload(
          data.substr(payload_pos, static_cast<size_t>(payload_len)));
      BinaryReader r(payload);
      CorpusCheckpoint cp;
      ReadCheckpointCounters(r, cp);
      const uint64_t num_blobs = r.ReadU64();
      for (uint64_t i = 0; i < num_blobs; ++i) {
        cp.metric_blobs.push_back(r.ReadString());
      }
      cp.scheduler_blob = r.ReadString();
      snapshot = std::move(cp);
      have_snapshot = true;
      records_past_snapshot = 0;
    } else if (kind == kRecordDelta) {
      // Deltas carry no coverage state, so they are never resume points —
      // they only exist to make per-batch durability cheap. Count them so
      // the chain gets compacted below.
      ++records_past_snapshot;
    } else {
      trailing_garbage = true;
      break;
    }
  }

  if (!have_snapshot) {
    // Nothing restorable (e.g. first snapshot write was interrupted). The
    // legacy checkpoint.bin — if any — becomes the fallback in Load().
    std::filesystem::remove(ChainPath());
    return;
  }
  checkpoint_ = snapshot;
  has_checkpoint_ = true;
  chain_has_snapshot_ = true;
  chain_deltas_ = 0;
  chain_dirty_ = false;
  if (records_past_snapshot > 0 || trailing_garbage) {
    // Trim the chain back to its last valid snapshot so the on-disk state
    // matches what we restored (the entries/journal trim below uses the
    // snapshot's high-water marks).
    WriteSnapshot(snapshot);
  }
}

void Corpus::WriteSnapshot(const CorpusCheckpoint& checkpoint) {
  const std::string tmp = ChainPath() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    BinaryWriter w(out);
    w.WriteU32(kChainMagic);
    w.WriteU32(kChainVersion);
    std::ostringstream payload;
    {
      BinaryWriter pw(payload);
      WriteCheckpointCounters(pw, checkpoint);
      pw.WriteU64(checkpoint.metric_blobs.size());
      for (const std::string& blob : checkpoint.metric_blobs) {
        pw.WriteString(blob);
      }
      pw.WriteString(checkpoint.scheduler_blob);
    }
    const std::string bytes = payload.str();
    w.WriteU32(kRecordMagic);
    w.WriteU32(kRecordSnapshot);
    w.WriteU64(bytes.size());
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    w.WriteU32(kRecordEndMagic);
    if (!out) {
      throw std::runtime_error("Corpus: failed writing " + tmp);
    }
  }
  std::filesystem::rename(tmp, ChainPath());
  // The chain supersedes the legacy monolithic file (upgrade path).
  std::filesystem::remove(CheckpointPath());
  chain_has_snapshot_ = true;
  chain_deltas_ = 0;
  chain_dirty_ = false;
}

void Corpus::AppendDelta(const CorpusCheckpoint& checkpoint) {
  std::ostringstream payload;
  {
    BinaryWriter pw(payload);
    WriteCheckpointCounters(pw, checkpoint);
  }
  const std::string bytes = payload.str();
  std::ofstream out(ChainPath(), std::ios::binary | std::ios::app);
  BinaryWriter w(out);
  w.WriteU32(kRecordMagic);
  w.WriteU32(kRecordDelta);
  w.WriteU64(bytes.size());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  w.WriteU32(kRecordEndMagic);
  if (!out) {
    throw std::runtime_error("Corpus: failed appending to " + ChainPath());
  }
  ++chain_deltas_;
  chain_dirty_ = true;
}

void Corpus::WriteCheckpoint(const CorpusCheckpoint& checkpoint) {
  if (checkpoint.num_tests != entries_.size() ||
      checkpoint.num_batches != journal_.size()) {
    throw std::logic_error("Corpus: checkpoint high-water marks disagree with appends");
  }
  if (format_ == CheckpointFormat::kMonolithic) {
    const std::string tmp = CheckpointPath() + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      BinaryWriter w(out);
      w.WriteU32(kCheckpointMagic);
      WriteCheckpointCounters(w, checkpoint);
      w.WriteU64(checkpoint.metric_blobs.size());
      for (const std::string& blob : checkpoint.metric_blobs) {
        w.WriteString(blob);
      }
      // The v1 layout ends here: scheduler_blob is a segmented-chain-only
      // field, so monolithic corpora always resume via journal replay.
      if (!out) {
        throw std::runtime_error("Corpus: failed writing " + tmp);
      }
    }
    std::filesystem::rename(tmp, CheckpointPath());
    // A monolithic write supersedes any segmented chain left by a previous
    // format choice — a stale chain would win on the next open.
    std::filesystem::remove(ChainPath());
    chain_has_snapshot_ = false;
    chain_deltas_ = 0;
    chain_dirty_ = false;
  } else {
    const bool snapshot = checkpoint.complete || !chain_has_snapshot_ ||
                          chain_deltas_ + 1 >=
                              static_cast<uint64_t>(snapshot_interval_);
    if (snapshot) {
      WriteSnapshot(checkpoint);
    } else {
      AppendDelta(checkpoint);
    }
  }
  checkpoint_ = checkpoint;
  has_checkpoint_ = true;
}

void Corpus::Sync() {
  if (!has_checkpoint_ || format_ == CheckpointFormat::kMonolithic ||
      !chain_dirty_) {
    return;
  }
  WriteSnapshot(checkpoint_);
}

const CorpusCheckpoint& Corpus::checkpoint() const {
  if (!has_checkpoint_) {
    throw std::logic_error("Corpus: no checkpoint in " + dir_);
  }
  return checkpoint_;
}

CorpusStats Corpus::Stats() const {
  CorpusStats s;
  if (initialized_) {
    if (const std::string* domain = meta_.FindMetadata("domain")) {
      s.domain = *domain;
    }
    s.objective = meta_.objective;
    s.metric = meta_.metric;
    s.scheduler = meta_.scheduler;
    s.num_seeds = meta_.seeds.size();
    s.entries_per_model.assign(meta_.model_names.size(), 0);
  }
  s.num_entries = entries_.size();
  s.journal_batches = journal_.size();
  for (const GeneratedTest& t : entries_) {
    if (t.deviating_model >= 0 &&
        static_cast<size_t>(t.deviating_model) < s.entries_per_model.size()) {
      ++s.entries_per_model[static_cast<size_t>(t.deviating_model)];
    }
  }
  auto size_of = [](const std::string& path) -> uint64_t {
    std::error_code ec;
    const auto bytes = std::filesystem::file_size(path, ec);
    return ec ? 0 : static_cast<uint64_t>(bytes);
  };
  s.manifest_bytes = size_of(ManifestPath());
  s.entries_bytes = size_of(EntriesPath());
  s.journal_bytes = size_of(JournalPath());
  s.checkpoint_bytes = size_of(CheckpointPath()) + size_of(ChainPath());
  s.total_bytes =
      s.manifest_bytes + s.entries_bytes + s.journal_bytes + s.checkpoint_bytes;
  s.segmented = chain_has_snapshot_;
  if (chain_has_snapshot_) {
    s.chain_snapshots = 1;
    s.chain_deltas = chain_deltas_;
  } else if (has_checkpoint_) {
    s.chain_snapshots = 1;  // Monolithic checkpoint.bin counts as one.
  }
  if (has_checkpoint_) {
    s.complete = checkpoint_.complete;
    s.mean_coverage = checkpoint_.mean_coverage;
  }
  return s;
}

}  // namespace dx

#include "src/corpus/corpus.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/util/serialize.h"

namespace dx {
namespace {

constexpr uint32_t kManifestMagic = 0x44584d46;    // "DXMF"
constexpr uint32_t kEntryMagic = 0x44584554;       // "DXET"
constexpr uint32_t kCheckpointMagic = 0x44584350;  // "DXCP"

void WriteEngine(BinaryWriter& w, const EngineConfig& e) {
  w.WriteF32(e.lambda1);
  w.WriteF32(e.lambda2);
  w.WriteF32(e.step);
  w.WriteF32(e.coverage.threshold);
  w.WriteU32(e.coverage.scale_per_layer ? 1 : 0);
  w.WriteU32(e.coverage.exclude_dense ? 1 : 0);
  w.WriteU32(e.coverage.exclude_output_layer ? 1 : 0);
  w.WriteU32(static_cast<uint32_t>(e.coverage.kmc_sections));
  w.WriteU32(static_cast<uint32_t>(e.coverage.top_k));
  w.WriteI64(e.max_iterations_per_seed);
  w.WriteF32(e.steering_eps);
  w.WriteU32(e.normalize_gradient ? 1 : 0);
  w.WriteI64(e.forced_target_model);
  w.WriteU64(e.rng_seed);
}

EngineConfig ReadEngine(BinaryReader& r) {
  EngineConfig e;
  e.lambda1 = r.ReadF32();
  e.lambda2 = r.ReadF32();
  e.step = r.ReadF32();
  e.coverage.threshold = r.ReadF32();
  e.coverage.scale_per_layer = r.ReadU32() != 0;
  e.coverage.exclude_dense = r.ReadU32() != 0;
  e.coverage.exclude_output_layer = r.ReadU32() != 0;
  e.coverage.kmc_sections = static_cast<int>(r.ReadU32());
  e.coverage.top_k = static_cast<int>(r.ReadU32());
  e.max_iterations_per_seed = static_cast<int>(r.ReadI64());
  e.steering_eps = r.ReadF32();
  e.normalize_gradient = r.ReadU32() != 0;
  e.forced_target_model = static_cast<int>(r.ReadI64());
  e.rng_seed = r.ReadU64();
  return e;
}

void WriteEntry(BinaryWriter& w, const GeneratedTest& t) {
  w.WriteU32(kEntryMagic);
  w.WriteI64(t.seed_index);
  w.WriteI64(t.iterations);
  w.WriteI64(t.deviating_model);
  w.WriteU64(t.task_ordinal);
  w.WriteF64(t.seconds);
  w.WriteInts(t.labels);
  w.WriteFloats(t.outputs);
  w.WriteTensor(t.input);
}

GeneratedTest ReadEntry(BinaryReader& r) {
  if (r.ReadU32() != kEntryMagic) {
    throw std::runtime_error("Corpus: corrupt entry record");
  }
  GeneratedTest t;
  t.seed_index = static_cast<int>(r.ReadI64());
  t.iterations = static_cast<int>(r.ReadI64());
  t.deviating_model = static_cast<int>(r.ReadI64());
  t.task_ordinal = r.ReadU64();
  t.seconds = r.ReadF64();
  t.labels = r.ReadInts();
  t.outputs = r.ReadFloats();
  t.input = r.ReadTensor();
  return t;
}

}  // namespace

const std::string* CorpusMeta::FindMetadata(const std::string& key) const {
  for (const auto& [k, v] : metadata) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

Corpus::Corpus(std::string dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
  if (std::filesystem::exists(ManifestPath())) {
    Load();
  }
}

std::string Corpus::ManifestPath() const { return dir_ + "/manifest.bin"; }
std::string Corpus::EntriesPath() const { return dir_ + "/entries.bin"; }
std::string Corpus::JournalPath() const { return dir_ + "/journal.bin"; }
std::string Corpus::CheckpointPath() const { return dir_ + "/checkpoint.bin"; }

void Corpus::SetMetadata(const std::string& key, const std::string& value) {
  if (initialized_) {
    return;  // Manifest is immutable once written.
  }
  for (auto& [k, v] : pending_metadata_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  pending_metadata_.emplace_back(key, value);
}

void Corpus::Initialize(CorpusMeta meta) {
  if (initialized_) {
    throw std::logic_error("Corpus: already initialized: " + dir_);
  }
  for (auto& kv : pending_metadata_) {
    meta.metadata.push_back(std::move(kv));
  }
  pending_metadata_.clear();
  std::ofstream out(ManifestPath(), std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("Corpus: cannot write " + ManifestPath());
  }
  BinaryWriter w(out);
  w.WriteU32(kManifestMagic);
  w.WriteU32(kCorpusFormatVersion);
  w.WriteString(meta.metric);
  w.WriteString(meta.objective);
  w.WriteString(meta.scheduler);
  w.WriteString(meta.constraint);
  WriteEngine(w, meta.engine);
  w.WriteI64(meta.sync_interval);
  w.WriteU32(meta.profile_from_seeds ? 1 : 0);
  w.WriteI64(meta.max_tests);
  w.WriteI64(meta.max_seed_passes);
  w.WriteF32(meta.coverage_goal);
  w.WriteU64(meta.model_names.size());
  for (const std::string& name : meta.model_names) {
    w.WriteString(name);
  }
  w.WriteU64(meta.metadata.size());
  for (const auto& [k, v] : meta.metadata) {
    w.WriteString(k);
    w.WriteString(v);
  }
  w.WriteU64(meta.seeds.size());
  for (const Tensor& seed : meta.seeds) {
    w.WriteTensor(seed);
  }
  out.close();
  if (!out) {
    throw std::runtime_error("Corpus: failed writing " + ManifestPath());
  }
  meta_ = std::move(meta);
  initialized_ = true;
}

const CorpusMeta& Corpus::meta() const {
  if (!initialized_) {
    throw std::logic_error("Corpus: not initialized: " + dir_);
  }
  return meta_;
}

void Corpus::Load() {
  {
    std::ifstream in(ManifestPath(), std::ios::binary);
    BinaryReader r(in);
    if (r.ReadU32() != kManifestMagic) {
      throw std::runtime_error("Corpus: bad manifest magic in " + ManifestPath());
    }
    const uint32_t version = r.ReadU32();
    if (version != kCorpusFormatVersion) {
      throw std::runtime_error("Corpus: unsupported format version " +
                               std::to_string(version) + " in " + ManifestPath());
    }
    meta_.metric = r.ReadString();
    meta_.objective = r.ReadString();
    meta_.scheduler = r.ReadString();
    meta_.constraint = r.ReadString();
    meta_.engine = ReadEngine(r);
    meta_.sync_interval = static_cast<int>(r.ReadI64());
    meta_.profile_from_seeds = r.ReadU32() != 0;
    meta_.max_tests = static_cast<int>(r.ReadI64());
    meta_.max_seed_passes = static_cast<int>(r.ReadI64());
    meta_.coverage_goal = r.ReadF32();
    const uint64_t num_models = r.ReadU64();
    meta_.model_names.clear();
    for (uint64_t i = 0; i < num_models; ++i) {
      meta_.model_names.push_back(r.ReadString());
    }
    const uint64_t num_metadata = r.ReadU64();
    meta_.metadata.clear();
    for (uint64_t i = 0; i < num_metadata; ++i) {
      std::string key = r.ReadString();
      std::string value = r.ReadString();
      meta_.metadata.emplace_back(std::move(key), std::move(value));
    }
    const uint64_t num_seeds = r.ReadU64();
    meta_.seeds.clear();
    for (uint64_t i = 0; i < num_seeds; ++i) {
      meta_.seeds.push_back(r.ReadTensor());
    }
    initialized_ = true;
  }

  if (std::filesystem::exists(CheckpointPath())) {
    std::ifstream in(CheckpointPath(), std::ios::binary);
    BinaryReader r(in);
    if (r.ReadU32() != kCheckpointMagic) {
      throw std::runtime_error("Corpus: bad checkpoint magic in " + CheckpointPath());
    }
    checkpoint_.complete = r.ReadU32() != 0;
    checkpoint_.task_counter = r.ReadU64();
    checkpoint_.seeds_tried = static_cast<int>(r.ReadI64());
    checkpoint_.seeds_skipped = static_cast<int>(r.ReadI64());
    checkpoint_.total_iterations = r.ReadI64();
    checkpoint_.forward_passes = r.ReadI64();
    checkpoint_.num_tests = r.ReadU64();
    checkpoint_.num_batches = r.ReadU64();
    checkpoint_.mean_coverage = r.ReadF32();
    const uint64_t num_blobs = r.ReadU64();
    checkpoint_.metric_blobs.clear();
    for (uint64_t i = 0; i < num_blobs; ++i) {
      checkpoint_.metric_blobs.push_back(r.ReadString());
    }
    has_checkpoint_ = true;
  }

  // Entries and journal are only meaningful up to the checkpoint's
  // high-water marks; anything beyond is an uncovered suffix from an
  // interrupted batch and is dropped (the resumed run regenerates it).
  const uint64_t keep_entries = has_checkpoint_ ? checkpoint_.num_tests : 0;
  const uint64_t keep_batches = has_checkpoint_ ? checkpoint_.num_batches : 0;

  entries_.clear();
  if (std::filesystem::exists(EntriesPath())) {
    std::ifstream in(EntriesPath(), std::ios::binary);
    BinaryReader r(in);
    while (entries_.size() < keep_entries) {
      entries_.push_back(ReadEntry(r));
    }
    const bool trailing = in.peek() != std::ifstream::traits_type::eof();
    in.close();
    if (trailing || entries_.size() != keep_entries) {
      RewriteEntries();
    }
  } else if (keep_entries > 0) {
    throw std::runtime_error("Corpus: checkpoint expects " +
                             std::to_string(keep_entries) + " entries but " +
                             EntriesPath() + " is missing");
  }

  journal_.clear();
  if (std::filesystem::exists(JournalPath())) {
    std::ifstream in(JournalPath(), std::ios::binary);
    BinaryReader r(in);
    while (journal_.size() < keep_batches) {
      const uint64_t count = r.ReadU64();
      if (count > (1ULL << 32)) {
        throw std::runtime_error("Corpus: corrupt journal batch length in " +
                                 JournalPath());
      }
      std::vector<CorpusCheckpoint::JournalRecord> batch(count);
      for (uint64_t i = 0; i < count; ++i) {
        batch[i].seed_index = static_cast<int>(r.ReadI64());
        batch[i].found = r.ReadU32() != 0;
        batch[i].gain = r.ReadF32();
      }
      journal_.push_back(std::move(batch));
    }
    const bool trailing = in.peek() != std::ifstream::traits_type::eof();
    in.close();
    if (trailing || journal_.size() != keep_batches) {
      RewriteJournal();
    }
  } else if (keep_batches > 0) {
    throw std::runtime_error("Corpus: checkpoint expects " +
                             std::to_string(keep_batches) + " journal batches but " +
                             JournalPath() + " is missing");
  }
}

void Corpus::RewriteEntries() {
  std::ofstream out(EntriesPath(), std::ios::binary | std::ios::trunc);
  BinaryWriter w(out);
  for (const GeneratedTest& t : entries_) {
    WriteEntry(w, t);
  }
  if (!out) {
    throw std::runtime_error("Corpus: failed rewriting " + EntriesPath());
  }
}

void Corpus::RewriteJournal() {
  std::ofstream out(JournalPath(), std::ios::binary | std::ios::trunc);
  BinaryWriter w(out);
  for (const auto& batch : journal_) {
    w.WriteU64(batch.size());
    for (const auto& record : batch) {
      w.WriteI64(record.seed_index);
      w.WriteU32(record.found ? 1 : 0);
      w.WriteF32(record.gain);
    }
  }
  if (!out) {
    throw std::runtime_error("Corpus: failed rewriting " + JournalPath());
  }
}

void Corpus::AppendEntry(const GeneratedTest& test) {
  std::ofstream out(EntriesPath(), std::ios::binary | std::ios::app);
  BinaryWriter w(out);
  WriteEntry(w, test);
  if (!out) {
    throw std::runtime_error("Corpus: failed appending to " + EntriesPath());
  }
  entries_.push_back(test);
}

void Corpus::AppendJournalBatch(
    const std::vector<CorpusCheckpoint::JournalRecord>& batch) {
  std::ofstream out(JournalPath(), std::ios::binary | std::ios::app);
  BinaryWriter w(out);
  w.WriteU64(batch.size());
  for (const auto& record : batch) {
    w.WriteI64(record.seed_index);
    w.WriteU32(record.found ? 1 : 0);
    w.WriteF32(record.gain);
  }
  if (!out) {
    throw std::runtime_error("Corpus: failed appending to " + JournalPath());
  }
  journal_.push_back(batch);
}

void Corpus::WriteCheckpoint(const CorpusCheckpoint& checkpoint) {
  if (checkpoint.num_tests != entries_.size() ||
      checkpoint.num_batches != journal_.size()) {
    throw std::logic_error("Corpus: checkpoint high-water marks disagree with appends");
  }
  const std::string tmp = CheckpointPath() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    BinaryWriter w(out);
    w.WriteU32(kCheckpointMagic);
    w.WriteU32(checkpoint.complete ? 1 : 0);
    w.WriteU64(checkpoint.task_counter);
    w.WriteI64(checkpoint.seeds_tried);
    w.WriteI64(checkpoint.seeds_skipped);
    w.WriteI64(checkpoint.total_iterations);
    w.WriteI64(checkpoint.forward_passes);
    w.WriteU64(checkpoint.num_tests);
    w.WriteU64(checkpoint.num_batches);
    w.WriteF32(checkpoint.mean_coverage);
    w.WriteU64(checkpoint.metric_blobs.size());
    for (const std::string& blob : checkpoint.metric_blobs) {
      w.WriteString(blob);
    }
    if (!out) {
      throw std::runtime_error("Corpus: failed writing " + tmp);
    }
  }
  std::filesystem::rename(tmp, CheckpointPath());
  checkpoint_ = checkpoint;
  has_checkpoint_ = true;
}

const CorpusCheckpoint& Corpus::checkpoint() const {
  if (!has_checkpoint_) {
    throw std::logic_error("Corpus: no checkpoint in " + dir_);
  }
  return checkpoint_;
}

}  // namespace dx

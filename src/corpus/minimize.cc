#include "src/corpus/minimize.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/nn/execution_plan.h"
#include "src/tensor/ops.h"
#include "src/util/timer.h"

namespace dx {

namespace {

// One candidate's forward results: per-model predictions plus its coverage
// footprint (calibrated-empty clones updated with the candidate's trace).
struct CandidateEval {
  std::vector<int> labels;     // Per model (classification).
  std::vector<float> outputs;  // Per model (regression).
  CoverageFootprint fp;
};

// Batch-evaluates all candidates through the per-model plans. `plans[k]` must
// have capacity >= `width`.
std::vector<CandidateEval> EvaluateCandidates(
    Session& session, std::vector<ExecutionPlan>& plans, size_t width,
    const std::vector<const Tensor*>& candidates) {
  std::vector<CandidateEval> evals(candidates.size());
  for (CandidateEval& e : evals) {
    e.fp.reserve(static_cast<size_t>(session.num_models()));
    for (int k = 0; k < session.num_models(); ++k) {
      e.fp.push_back(session.metric(k).Clone());
    }
  }
  const bool regression = session.regression();
  for (int k = 0; k < session.num_models(); ++k) {
    const Model& model = session.model(k);
    const int last = model.num_layers() - 1;
    for (size_t begin = 0; begin < candidates.size(); begin += width) {
      const size_t end = std::min(candidates.size(), begin + width);
      std::vector<const Tensor*> chunk(
          candidates.begin() + static_cast<ptrdiff_t>(begin),
          candidates.begin() + static_cast<ptrdiff_t>(end));
      const BatchTrace& trace = plans[static_cast<size_t>(k)].ForwardBatch(
          StackSamples(chunk), static_cast<int>(end - begin));
      for (size_t b = begin; b < end; ++b) {
        const int pos = static_cast<int>(b - begin);
        const Tensor out = trace.SampleOutput(last, pos);
        if (regression) {
          evals[b].outputs.push_back(out[0]);
        } else {
          evals[b].labels.push_back(static_cast<int>(out.Argmax()));
        }
        evals[b].fp[static_cast<size_t>(k)]->Update(model, trace.Sample(pos));
      }
    }
  }
  return evals;
}

// Both invariants the pass must preserve: the entry's disagreement, and —
// per model — covered(base ⊕ candidate) == target, where target was computed
// with the original entry in place. Equality (not >=) so the minimized
// corpus' merged coverage lands exactly on the original's.
bool Accepted(const CandidateEval& eval, const GeneratedTest& entry,
              bool regression, float eps, const CoverageFootprint& base,
              const std::vector<int64_t>& targets) {
  if (regression) {
    const auto [lo, hi] = std::minmax_element(eval.outputs.begin(), eval.outputs.end());
    if (*hi - *lo <= eps) {
      return false;
    }
  } else if (eval.labels != entry.labels) {
    return false;
  }
  for (size_t k = 0; k < base.size(); ++k) {
    auto probe = base[k]->Clone();
    probe->Merge(*eval.fp[k]);
    if (probe->covered_items() != targets[k]) {
      return false;
    }
  }
  return true;
}

void RevertBlock(Tensor& input, const Tensor& seed, int64_t begin, int64_t end) {
  for (int64_t j = begin; j < end; ++j) {
    input.values()[static_cast<size_t>(j)] = seed[j];
  }
}

int64_t PerturbedValues(const Tensor& input, const Tensor& seed) {
  int64_t count = 0;
  for (int64_t j = 0; j < input.numel(); ++j) {
    if (input[j] != seed[j]) {
      ++count;
    }
  }
  return count;
}

}  // namespace

MaintenanceReport MinimizeCorpus(Session& session, const Corpus& corpus,
                                 const MinimizeOptions& options) {
  if (options.out_dir.empty()) {
    throw std::invalid_argument("MinimizeCorpus: out_dir must be set");
  }
  if (options.regions < 1) {
    throw std::invalid_argument("MinimizeCorpus: regions must be >= 1");
  }
  if (options.max_rounds < 1) {
    throw std::invalid_argument("MinimizeCorpus: max_rounds must be >= 1");
  }
  Timer timer;
  const CorpusMeta& meta = corpus.meta();
  session.ResetRunState();
  if (meta.profile_from_seeds) {
    session.ProfileSeeds(meta.seeds);
  }

  const std::vector<GeneratedTest>& entries = corpus.entries();
  std::vector<const Tensor*> inputs;
  inputs.reserve(entries.size());
  for (const GeneratedTest& entry : entries) {
    if (entry.seed_index < 0 ||
        static_cast<size_t>(entry.seed_index) >= meta.seeds.size()) {
      throw std::invalid_argument(
          "MinimizeCorpus: entry references seed " +
          std::to_string(entry.seed_index) + " outside the manifest pool");
    }
    inputs.push_back(&entry.input);
  }
  std::vector<CoverageFootprint> footprints = ComputeFootprints(session, inputs);

  // suffix[i] = merged original footprints of entries i..n-1; suffix[n] is
  // empty. base_i = minimized-prefix ⊕ suffix[i+1] is everything covered
  // around entry i while it is being reduced.
  const size_t n = entries.size();
  std::vector<CoverageFootprint> suffix(n + 1);
  for (int k = 0; k < session.num_models(); ++k) {
    suffix[n].push_back(session.metric(k).Clone());
  }
  for (size_t i = n; i-- > 0;) {
    suffix[i] = CloneFootprint(suffix[i + 1]);
    MergeFootprint(suffix[i], footprints[i]);
  }
  CoverageFootprint acc = CloneFootprint(suffix[n]);

  const size_t width = static_cast<size_t>(std::max(1, session.config().batch_size));
  std::vector<ExecutionPlan> plans;
  plans.reserve(static_cast<size_t>(session.num_models()));
  for (int k = 0; k < session.num_models(); ++k) {
    plans.push_back(session.model(k).Compile(static_cast<int>(width)));
  }

  const bool regression = session.regression();
  const float eps = session.config().engine.steering_eps;
  MaintenanceReport report;
  report.transform = "minimize";
  report.input_entries = n;
  report.retained_entries = n;

  std::vector<GeneratedTest> minimized;
  minimized.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const GeneratedTest& entry = entries[i];
    const Tensor& seed = meta.seeds[static_cast<size_t>(entry.seed_index)];
    GeneratedTest out = entry;

    CoverageFootprint base = CloneFootprint(acc);
    MergeFootprint(base, suffix[i + 1]);
    std::vector<int64_t> targets(base.size());
    for (size_t k = 0; k < base.size(); ++k) {
      auto probe = base[k]->Clone();
      probe->Merge(*footprints[i][k]);
      targets[k] = probe->covered_items();
    }
    // The entry's own footprint travels into `acc` unless a revert replaces it.
    CoverageFootprint final_fp = std::move(footprints[i]);

    const int64_t numel = entry.input.numel();
    if (seed.shape() != entry.input.shape() || numel == 0) {
      // Defensive: nothing to walk back against; keep the entry as recorded.
      MergeFootprint(acc, final_fp);
      minimized.push_back(std::move(out));
      continue;
    }
    const int64_t num_blocks =
        std::min<int64_t>(static_cast<int64_t>(options.regions), numel);
    const auto block_begin = [&](int64_t b) { return b * numel / num_blocks; };

    Tensor current = entry.input;
    bool changed = false;
    for (int round = 0; round < options.max_rounds; ++round) {
      // One candidate per block that still differs from the seed.
      std::vector<int64_t> block_ids;
      std::vector<Tensor> candidates;
      for (int64_t b = 0; b < num_blocks; ++b) {
        const int64_t lo = block_begin(b);
        const int64_t hi = block_begin(b + 1);
        bool differs = false;
        for (int64_t j = lo; j < hi && !differs; ++j) {
          differs = current[j] != seed[j];
        }
        if (!differs) {
          continue;
        }
        Tensor cand = current;
        RevertBlock(cand, seed, lo, hi);
        block_ids.push_back(b);
        candidates.push_back(std::move(cand));
      }
      if (candidates.empty()) {
        break;
      }
      std::vector<const Tensor*> cand_ptrs;
      cand_ptrs.reserve(candidates.size());
      for (const Tensor& cand : candidates) {
        cand_ptrs.push_back(&cand);
      }
      std::vector<CandidateEval> evals =
          EvaluateCandidates(session, plans, width, cand_ptrs);
      std::vector<size_t> passing;
      for (size_t j = 0; j < evals.size(); ++j) {
        if (Accepted(evals[j], entry, regression, eps, base, targets)) {
          passing.push_back(j);
        }
      }
      if (passing.empty()) {
        break;
      }
      bool progressed = false;
      if (passing.size() == 1) {
        const size_t j = passing[0];
        current = std::move(candidates[j]);
        if (regression) {
          out.outputs = evals[j].outputs;
        }
        final_fp = std::move(evals[j].fp);
        progressed = changed = true;
      } else {
        // All individually-safe reverts at once: one extra forward, and the
        // common case when the blocks' effects are independent.
        Tensor combined = current;
        for (size_t j : passing) {
          RevertBlock(combined, seed, block_begin(block_ids[j]),
                      block_begin(block_ids[j] + 1));
        }
        std::vector<CandidateEval> combo =
            EvaluateCandidates(session, plans, width, {&combined});
        if (Accepted(combo[0], entry, regression, eps, base, targets)) {
          current = std::move(combined);
          if (regression) {
            out.outputs = combo[0].outputs;
          }
          final_fp = std::move(combo[0].fp);
          progressed = changed = true;
        } else {
          // The reverts interact; take them one at a time, re-validating
          // against the evolving input.
          for (size_t j : passing) {
            Tensor cand = current;
            RevertBlock(cand, seed, block_begin(block_ids[j]),
                        block_begin(block_ids[j] + 1));
            std::vector<CandidateEval> one =
                EvaluateCandidates(session, plans, width, {&cand});
            if (Accepted(one[0], entry, regression, eps, base, targets)) {
              current = std::move(cand);
              if (regression) {
                out.outputs = one[0].outputs;
              }
              final_fp = std::move(one[0].fp);
              progressed = changed = true;
            }
          }
        }
      }
      if (!progressed) {
        break;
      }
    }

    if (changed) {
      ++report.modified_entries;
      report.reverted_values += PerturbedValues(entry.input, seed) -
                                PerturbedValues(current, seed);
      out.input = std::move(current);
    }
    MergeFootprint(acc, final_fp);
    minimized.push_back(std::move(out));
  }

  for (int k = 0; k < session.num_models(); ++k) {
    ModelCoverageDelta delta;
    delta.model = session.model(k).name();
    delta.covered_before = suffix[0][static_cast<size_t>(k)]->covered_items();
    delta.covered_after = acc[static_cast<size_t>(k)]->covered_items();
    delta.total_items = acc[static_cast<size_t>(k)]->total_items();
    report.coverage.push_back(delta);
  }

  WriteDerivedCorpus(corpus, "minimize", minimized, acc, options.out_dir);
  report.seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace dx

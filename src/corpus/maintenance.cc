#include "src/corpus/maintenance.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "src/nn/execution_plan.h"
#include "src/tensor/ops.h"
#include "src/util/serialize.h"
#include "src/util/timer.h"

namespace dx {

namespace {

// Stacks inputs [begin, end) into one batched tensor.
Tensor StackRange(const std::vector<const Tensor*>& inputs, size_t begin, size_t end) {
  std::vector<const Tensor*> chunk(inputs.begin() + static_cast<ptrdiff_t>(begin),
                                   inputs.begin() + static_cast<ptrdiff_t>(end));
  return StackSamples(chunk);
}

}  // namespace

std::string MaintenanceReport::ToString() const {
  std::ostringstream out;
  out << transform << ": " << input_entries << " -> " << retained_entries
      << " entries";
  if (modified_entries > 0 || transform == "minimize") {
    out << ", " << modified_entries << " minimized (" << reverted_values
        << " values reverted to seed)";
  }
  out << " in " << seconds << "s\n";
  for (const ModelCoverageDelta& d : coverage) {
    out << "  " << d.model << ": covered " << d.covered_before << " -> "
        << d.covered_after << " of " << d.total_items << " items\n";
  }
  return out.str();
}

std::vector<CoverageFootprint> ComputeFootprints(
    Session& session, const std::vector<const Tensor*>& inputs) {
  std::vector<CoverageFootprint> footprints(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    footprints[i].reserve(static_cast<size_t>(session.num_models()));
    for (int k = 0; k < session.num_models(); ++k) {
      footprints[i].push_back(session.metric(k).Clone());
    }
  }
  if (inputs.empty()) {
    return footprints;
  }
  const size_t width = static_cast<size_t>(std::max(1, session.config().batch_size));
  for (int k = 0; k < session.num_models(); ++k) {
    const Model& model = session.model(k);
    ExecutionPlan plan = model.Compile(static_cast<int>(std::min(width, inputs.size())));
    for (size_t begin = 0; begin < inputs.size(); begin += width) {
      const size_t end = std::min(inputs.size(), begin + width);
      const BatchTrace& trace =
          plan.ForwardBatch(StackRange(inputs, begin, end), static_cast<int>(end - begin));
      for (size_t b = begin; b < end; ++b) {
        footprints[b][static_cast<size_t>(k)]->Update(
            model, trace.Sample(static_cast<int>(b - begin)));
      }
    }
  }
  return footprints;
}

CoverageFootprint CloneFootprint(const CoverageFootprint& fp) {
  CoverageFootprint clone;
  clone.reserve(fp.size());
  for (const auto& metric : fp) {
    clone.push_back(metric->Clone());
  }
  return clone;
}

void MergeFootprint(CoverageFootprint& acc, const CoverageFootprint& fp) {
  if (acc.size() != fp.size()) {
    throw std::invalid_argument("MergeFootprint: model count mismatch");
  }
  for (size_t k = 0; k < acc.size(); ++k) {
    acc[k]->Merge(*fp[k]);
  }
}

int64_t CoveredItems(const CoverageFootprint& fp) {
  int64_t covered = 0;
  for (const auto& metric : fp) {
    covered += metric->covered_items();
  }
  return covered;
}

bool AddsCoverage(const CoverageFootprint& acc, const CoverageFootprint& fp) {
  for (size_t k = 0; k < acc.size(); ++k) {
    auto probe = acc[k]->Clone();
    probe->Merge(*fp[k]);
    if (probe->covered_items() > acc[k]->covered_items()) {
      return true;
    }
  }
  return false;
}

float MeanFootprintCoverage(const CoverageFootprint& fp) {
  double sum = 0.0;
  for (const auto& metric : fp) {
    sum += metric->Coverage();
  }
  return static_cast<float>(sum / static_cast<double>(fp.size()));
}

void WriteDerivedCorpus(const Corpus& source, const std::string& transform,
                        const std::vector<GeneratedTest>& entries,
                        const CoverageFootprint& merged, const std::string& out_dir) {
  if (!source.initialized() || !source.has_checkpoint()) {
    throw std::invalid_argument(
        "WriteDerivedCorpus: source corpus has no recorded campaign");
  }
  if (out_dir == source.dir()) {
    throw std::invalid_argument(
        "WriteDerivedCorpus: output must be a new directory (source is never "
        "rewritten in place)");
  }
  CorpusMeta meta = source.meta();
  const auto set_meta = [&meta](const std::string& key, const std::string& value) {
    for (auto& [k, v] : meta.metadata) {
      if (k == key) {
        v = value;
        return;
      }
    }
    meta.metadata.emplace_back(key, value);
  };
  // Transform chains compose left to right: "distill+dedup+minimize".
  const std::string* prior = meta.FindMetadata("transform");
  set_meta("transform", prior != nullptr ? *prior + "+" + transform : transform);
  set_meta("derived_from", source.dir());

  Corpus out(out_dir);
  if (out.initialized()) {
    throw std::invalid_argument("WriteDerivedCorpus: " + out_dir +
                                " already holds a corpus");
  }
  out.Initialize(std::move(meta));
  for (const GeneratedTest& entry : entries) {
    out.AppendEntry(entry);
  }

  CorpusCheckpoint cp;
  // Run counters travel as provenance of the generating campaign; the
  // entry/journal marks describe THIS corpus.
  const CorpusCheckpoint& src = source.checkpoint();
  cp.complete = true;
  cp.task_counter = src.task_counter;
  cp.seeds_tried = src.seeds_tried;
  cp.seeds_skipped = src.seeds_skipped;
  cp.total_iterations = src.total_iterations;
  cp.forward_passes = src.forward_passes;
  cp.num_tests = entries.size();
  cp.num_batches = 0;
  cp.mean_coverage = MeanFootprintCoverage(merged);
  for (const auto& metric : merged) {
    std::ostringstream blob;
    BinaryWriter writer(blob);
    metric->Serialize(writer);
    cp.metric_blobs.push_back(blob.str());
  }
  out.WriteCheckpoint(cp);
}

ReplayResult VerifyDerivedCorpus(Session& session, const Corpus& corpus) {
  Timer timer;
  ReplayResult result;
  const auto fail = [&result](const std::string& what) {
    result.ok = false;
    if (result.mismatch.empty()) {
      result.mismatch = what;
    }
  };
  const CorpusMeta& meta = corpus.meta();
  if (meta.model_names.size() != static_cast<size_t>(session.num_models())) {
    throw std::invalid_argument("VerifyDerivedCorpus: corpus records " +
                                std::to_string(meta.model_names.size()) +
                                " models, session has " +
                                std::to_string(session.num_models()));
  }
  for (int k = 0; k < session.num_models(); ++k) {
    if (meta.model_names[static_cast<size_t>(k)] != session.model(k).name()) {
      throw std::invalid_argument("VerifyDerivedCorpus: model " + std::to_string(k) +
                                  " is " + session.model(k).name() +
                                  ", corpus recorded " +
                                  meta.model_names[static_cast<size_t>(k)]);
    }
  }
  if (meta.metric != session.config().metric) {
    throw std::invalid_argument("VerifyDerivedCorpus: corpus metric " + meta.metric +
                                " != session metric " + session.config().metric);
  }

  // Re-derive coverage from scratch: fresh trackers, seed calibration, then
  // one Update per (entry, model) in entry order — exactly what the
  // maintenance pass serialized into the checkpoint.
  session.ResetRunState();
  if (meta.profile_from_seeds) {
    session.ProfileSeeds(meta.seeds);
  }

  const std::vector<GeneratedTest>& entries = corpus.entries();
  const bool regression = session.regression();
  const float eps = session.config().engine.steering_eps;
  std::vector<std::vector<int>> labels(entries.size());
  std::vector<std::vector<float>> outputs(entries.size());
  if (!entries.empty()) {
    std::vector<const Tensor*> inputs;
    inputs.reserve(entries.size());
    for (const GeneratedTest& entry : entries) {
      inputs.push_back(&entry.input);
    }
    const size_t width =
        static_cast<size_t>(std::max(1, session.config().batch_size));
    for (int k = 0; k < session.num_models(); ++k) {
      const Model& model = session.model(k);
      ExecutionPlan plan =
          model.Compile(static_cast<int>(std::min(width, inputs.size())));
      const int last = model.num_layers() - 1;
      for (size_t begin = 0; begin < inputs.size(); begin += width) {
        const size_t end = std::min(inputs.size(), begin + width);
        const BatchTrace& trace = plan.ForwardBatch(StackRange(inputs, begin, end),
                                                    static_cast<int>(end - begin));
        for (size_t b = begin; b < end; ++b) {
          const Tensor out = trace.SampleOutput(last, static_cast<int>(b - begin));
          if (regression) {
            outputs[b].push_back(out[0]);
          } else {
            labels[b].push_back(static_cast<int>(out.Argmax()));
          }
          session.metric(k).Update(model, trace.Sample(static_cast<int>(b - begin)));
        }
      }
    }
  }

  for (size_t i = 0; i < entries.size() && result.ok; ++i) {
    const GeneratedTest& entry = entries[i];
    const std::string at = "entry " + std::to_string(i) + ": ";
    if (regression) {
      if (outputs[i] != entry.outputs) {
        fail(at + "re-predicted outputs diverge from the stored provenance");
      } else {
        const auto [lo, hi] = std::minmax_element(outputs[i].begin(), outputs[i].end());
        if (*hi - *lo <= eps) {
          fail(at + "input is no longer difference-inducing (spread <= steering_eps)");
        }
      }
    } else {
      if (labels[i] != entry.labels) {
        fail(at + "re-predicted labels diverge from the stored provenance");
      } else if (std::all_of(labels[i].begin(), labels[i].end(),
                             [&](int l) { return l == labels[i][0]; })) {
        fail(at + "input is no longer difference-inducing (models agree)");
      }
    }
  }

  const CorpusCheckpoint& cp = corpus.checkpoint();
  if (result.ok && cp.num_tests != entries.size()) {
    fail("checkpoint records " + std::to_string(cp.num_tests) + " tests, corpus holds " +
         std::to_string(entries.size()));
  }
  if (result.ok && cp.metric_blobs.size() != static_cast<size_t>(session.num_models())) {
    fail("checkpoint holds " + std::to_string(cp.metric_blobs.size()) +
         " coverage snapshots for " + std::to_string(session.num_models()) + " models");
  }
  if (result.ok) {
    for (int k = 0; k < session.num_models() && result.ok; ++k) {
      std::ostringstream blob;
      BinaryWriter writer(blob);
      session.metric(k).Serialize(writer);
      if (blob.str() != cp.metric_blobs[static_cast<size_t>(k)]) {
        fail("model " + session.model(k).name() +
             ": re-derived coverage state differs from the checkpoint snapshot");
      }
    }
  }
  if (result.ok && session.MeanCoverage() != cp.mean_coverage) {
    fail("re-derived mean coverage differs from the checkpoint");
  }

  result.stats.tests = entries;
  result.stats.seeds_tried = cp.seeds_tried;
  result.stats.seeds_skipped = cp.seeds_skipped;
  result.stats.total_iterations = cp.total_iterations;
  result.stats.forward_passes = cp.forward_passes;
  result.stats.mean_coverage = session.MeanCoverage();
  result.stats.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace dx

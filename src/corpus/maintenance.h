// Shared machinery of the corpus maintenance subsystem (distill / dedup /
// minimize — see the sibling headers).
//
// Every maintenance pass follows the same shape: compute per-entry coverage
// footprints (what each stored input contributes to each model's coverage
// tracker, batched through a compiled ExecutionPlan), transform the entry
// set under an invariant on the merged footprint, and write the result as a
// NEW derived corpus — the source is never mutated. A derived corpus copies
// the source manifest (so the exact session wiring travels with it), tags
// itself with `transform` / `derived_from` metadata, keeps every retained
// entry's original provenance, has an EMPTY journal (the generating
// campaign's schedule no longer describes it), and checkpoints the merged
// coverage of the retained set as its complete, final state.
//
// Because there is no journal, a derived corpus cannot resume — but it can
// be VERIFIED: Session::Replay dispatches corpora with a `transform` tag to
// VerifyDerivedCorpus below, which re-predicts every entry, re-derives the
// coverage state from scratch, and compares both byte-for-byte against the
// checkpoint.
#ifndef DX_SRC_CORPUS_MAINTENANCE_H_
#define DX_SRC_CORPUS_MAINTENANCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/session.h"
#include "src/corpus/corpus.h"
#include "src/coverage/coverage_metric.h"

namespace dx {

// One input's coverage contribution: per-model CoverageMetric clones
// (session model order) that observed exactly that input.
using CoverageFootprint = std::vector<std::unique_ptr<CoverageMetric>>;

// Per-model before/after covered-item counts of a maintenance pass.
struct ModelCoverageDelta {
  std::string model;
  int covered_before = 0;
  int covered_after = 0;
  int total_items = 0;
};

// What a maintenance pass did — printed by the CLI verbs and exported by
// the daemon's /metrics after a `compact` request.
struct MaintenanceReport {
  std::string transform;  // "distill", "dedup", "minimize" or a "+"-chain.
  uint64_t input_entries = 0;
  uint64_t retained_entries = 0;
  uint64_t modified_entries = 0;  // minimize: entries whose input changed.
  uint64_t reverted_values = 0;   // minimize: values reverted to the seed.
  std::vector<ModelCoverageDelta> coverage;
  double seconds = 0.0;

  std::string ToString() const;
};

// Computes one footprint per input: each starts from Clone()s of the
// session's CURRENT per-model metrics (call Session::ResetRunState +
// ProfileSeeds first so they are empty but calibrated) and observes exactly
// one input. Forward passes are batched per model through
// Model::Compile(batch_size).
std::vector<CoverageFootprint> ComputeFootprints(
    Session& session, const std::vector<const Tensor*>& inputs);

// Deep-copies a footprint.
CoverageFootprint CloneFootprint(const CoverageFootprint& fp);

// Merges `fp` into `acc` model-by-model (Merge is commutative/idempotent).
void MergeFootprint(CoverageFootprint& acc, const CoverageFootprint& fp);

// Sum over models of covered_items().
int64_t CoveredItems(const CoverageFootprint& fp);

// Would merging `fp` into `acc` cover anything new? (Counts on a throwaway
// clone; neither argument is mutated.)
bool AddsCoverage(const CoverageFootprint& acc, const CoverageFootprint& fp);

// Mean Coverage() across a footprint's models (what a checkpoint stamps as
// mean_coverage).
float MeanFootprintCoverage(const CoverageFootprint& fp);

// Writes `entries` as a new derived corpus at `out_dir`: the source
// manifest with `transform` appended to any existing transform chain and
// `derived_from` set to the source directory, the retained entries with
// their original provenance, an empty journal, and a complete checkpoint
// whose metric blobs serialize `merged` (the merged retained footprints) —
// counters are carried from the source checkpoint as provenance. Throws if
// `out_dir` already holds an initialized corpus.
void WriteDerivedCorpus(const Corpus& source, const std::string& transform,
                        const std::vector<GeneratedTest>& entries,
                        const CoverageFootprint& merged, const std::string& out_dir);

// Verification backend of Session::Replay for derived corpora: re-predicts
// every entry (labels/outputs must match the stored provenance), asserts
// each is still difference-inducing, re-derives the coverage state from
// scratch, and requires the serialized result to equal the checkpoint's
// metric blobs byte-for-byte. The session must be built with the corpus'
// config; its coverage state is reset.
ReplayResult VerifyDerivedCorpus(Session& session, const Corpus& corpus);

}  // namespace dx

#endif  // DX_SRC_CORPUS_MAINTENANCE_H_

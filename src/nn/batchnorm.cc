#include "src/nn/batchnorm.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "src/tensor/simd.h"

namespace dx {
namespace {

using simd::VecF;

// One sample's gradient pass; shared by the scalar and batched backward so
// parameter-gradient accumulation order matches a sequential sample loop.
// When the caller discards BOTH parameter gradients (the gradient-ascent hot
// loop), the per-channel reductions are skipped entirely and the remaining
// pure elementwise scale vectorizes — one IEEE multiply per element, the
// exact operation of the scalar loop, so results are bit-identical at every
// SIMD width.
void BatchNormBackwardKernel(const float* px, const float* pg, float* pgi,
                             const float* gamma, const float* mu, const float* var,
                             float eps, int channels, int64_t plane, float* g_gamma,
                             float* g_beta) {
  for (int c = 0; c < channels; ++c) {
    const float inv_std = 1.0f / std::sqrt(var[c] + eps);
    const float scale = gamma[c] * inv_std;
    const float* g_row = pg + static_cast<size_t>(c) * plane;
    float* gi_row = pgi + static_cast<size_t>(c) * plane;
    if (g_gamma == nullptr && g_beta == nullptr) {
      const VecF vscale = VecF::Broadcast(scale);
      int64_t i = 0;
      for (; i + simd::kLanes <= plane; i += simd::kLanes) {
        VecF::Mul(VecF::Load(g_row + i), vscale).Store(gi_row + i);
      }
      for (; i < plane; ++i) {
        gi_row[i] = g_row[i] * scale;
      }
      continue;
    }
    const float* x_row = px + static_cast<size_t>(c) * plane;
    double acc_gamma = 0.0;
    double acc_beta = 0.0;
    for (int64_t i = 0; i < plane; ++i) {
      gi_row[i] = g_row[i] * scale;
      acc_gamma += static_cast<double>(g_row[i]) * (x_row[i] - mu[c]) * inv_std;
      acc_beta += g_row[i];
    }
    if (g_gamma != nullptr) {
      g_gamma[c] += static_cast<float>(acc_gamma);
    }
    if (g_beta != nullptr) {
      g_beta[c] += static_cast<float>(acc_beta);
    }
  }
}

}  // namespace

BatchNorm::BatchNorm(int num_features, float eps)
    : num_features_(num_features),
      eps_(eps),
      gamma_({num_features}, 1.0f),
      beta_({num_features}),
      mu_({num_features}),
      var_({num_features}, 1.0f) {
  if (num_features <= 0) {
    throw std::invalid_argument("BatchNorm: num_features must be positive");
  }
}

void BatchNorm::SetStatistics(const std::vector<float>& mean,
                              const std::vector<float>& variance) {
  if (static_cast<int>(mean.size()) != num_features_ ||
      static_cast<int>(variance.size()) != num_features_) {
    throw std::invalid_argument("BatchNorm::SetStatistics: wrong feature count");
  }
  mu_ = Tensor({num_features_}, mean);
  var_ = Tensor({num_features_}, variance);
  calibrated_ = true;
}

std::string BatchNorm::Describe() const {
  std::ostringstream out;
  out << "batchnorm " << num_features_ << (calibrated_ ? " (calibrated)" : "");
  return out.str();
}

Shape BatchNorm::OutputShape(const Shape& input_shape) const {
  const bool chw = input_shape.size() == 3 && input_shape[0] == num_features_;
  const bool flat = input_shape.size() == 1 && input_shape[0] == num_features_;
  if (!chw && !flat) {
    throw std::invalid_argument("BatchNorm: input " + ShapeToString(input_shape) +
                                " incompatible with " + std::to_string(num_features_) +
                                " features");
  }
  return input_shape;
}

void BatchNorm::PlaneGeometry(const Tensor& input, int* channels, int64_t* plane) const {
  *channels = num_features_;
  *plane = input.numel() / num_features_;
}

Tensor BatchNorm::Forward(const Tensor& input, bool /*training*/, Rng* /*rng*/,
                          Tensor* /*aux*/) const {
  OutputShape(input.shape());
  int channels = 0;
  int64_t plane = 0;
  PlaneGeometry(input, &channels, &plane);
  Tensor out = input;
  float* p = out.data();
  for (int c = 0; c < channels; ++c) {
    const float scale = gamma_[c] / std::sqrt(var_[c] + eps_);
    const float shift = beta_[c] - mu_[c] * scale;
    float* row = p + static_cast<size_t>(c) * plane;
    for (int64_t i = 0; i < plane; ++i) {
      row[i] = row[i] * scale + shift;
    }
  }
  return out;
}

Tensor BatchNorm::ForwardBatch(const Tensor& input, int batch, bool /*training*/,
                               Rng* /*rng*/, Tensor* /*aux*/) const {
  const Shape sample_shape = Shape(input.shape().begin() + 1, input.shape().end());
  OutputShape(sample_shape);
  const int64_t sample = input.numel() / batch;
  const int64_t plane = sample / num_features_;
  Tensor out = input;
  float* p = out.data();
  for (int c = 0; c < num_features_; ++c) {
    const float scale = gamma_[c] / std::sqrt(var_[c] + eps_);
    const float shift = beta_[c] - mu_[c] * scale;
    for (int b = 0; b < batch; ++b) {
      float* row = p + static_cast<size_t>(b) * sample + static_cast<size_t>(c) * plane;
      for (int64_t i = 0; i < plane; ++i) {
        row[i] = row[i] * scale + shift;
      }
    }
  }
  return out;
}

void BatchNorm::ForwardBatchInto(const Tensor& input, int batch, bool /*training*/,
                                 Rng* /*rng*/, Tensor* output, Tensor* /*aux*/,
                                 Workspace* /*ws*/) const {
  // Plane geometry by arithmetic — no Shape construction per call.
  const int64_t sample = input.numel() / batch;
  if (sample % num_features_ != 0) {
    throw std::invalid_argument("BatchNorm::ForwardBatchInto: feature-count mismatch");
  }
  const int64_t plane = sample / num_features_;
  std::copy(input.data(), input.data() + input.numel(), output->data());
  float* p = output->data();
  for (int c = 0; c < num_features_; ++c) {
    const float scale = gamma_[c] / std::sqrt(var_[c] + eps_);
    const float shift = beta_[c] - mu_[c] * scale;
    for (int b = 0; b < batch; ++b) {
      float* row = p + static_cast<size_t>(b) * sample + static_cast<size_t>(c) * plane;
      for (int64_t i = 0; i < plane; ++i) {
        row[i] = row[i] * scale + shift;
      }
    }
  }
}

void BatchNorm::BackwardBatchInto(const Tensor& input, const Tensor& /*output*/,
                                  const Tensor& grad_output, const Tensor& /*aux*/,
                                  int batch, Tensor* grad_input, Workspace* /*ws*/,
                                  std::vector<Tensor>* param_grads) const {
  const int64_t sample = input.numel() / batch;
  const int64_t plane = sample / num_features_;
  CheckParamGrads(param_grads, "BatchNorm::BackwardBatchInto");
  float* g_gamma = GradData(param_grads, 0);
  float* g_beta = GradData(param_grads, 1);
  // mu/var grads (entries 2, 3) stay zero: statistics are frozen.
  for (int b = 0; b < batch; ++b) {
    const size_t offset = static_cast<size_t>(b) * sample;
    BatchNormBackwardKernel(input.data() + offset, grad_output.data() + offset,
                            grad_input->data() + offset, gamma_.data(), mu_.data(),
                            var_.data(), eps_, num_features_, plane, g_gamma, g_beta);
  }
}

Tensor BatchNorm::Backward(const Tensor& input, const Tensor& /*output*/,
                           const Tensor& grad_output, const Tensor& /*aux*/,
                           std::vector<Tensor>* param_grads) const {
  int channels = 0;
  int64_t plane = 0;
  PlaneGeometry(input, &channels, &plane);
  Tensor grad_in(input.shape());
  const float* pg = grad_output.data();
  const float* px = input.data();
  float* pgi = grad_in.data();

  CheckParamGrads(param_grads, "BatchNorm::Backward");
  // mu/var grads (entries 2, 3) stay zero: statistics are frozen.
  BatchNormBackwardKernel(px, pg, pgi, gamma_.data(), mu_.data(), var_.data(), eps_,
                          channels, plane, GradData(param_grads, 0),
                          GradData(param_grads, 1));
  return grad_in;
}

Tensor BatchNorm::BackwardBatch(const Tensor& input, const Tensor& /*output*/,
                                const Tensor& grad_output, const Tensor& /*aux*/, int batch,
                                std::vector<Tensor>* param_grads) const {
  const int64_t sample = input.numel() / batch;
  const int64_t plane = sample / num_features_;
  Tensor grad_in(input.shape());
  CheckParamGrads(param_grads, "BatchNorm::BackwardBatch");
  float* g_gamma = GradData(param_grads, 0);
  float* g_beta = GradData(param_grads, 1);
  for (int b = 0; b < batch; ++b) {
    const size_t offset = static_cast<size_t>(b) * sample;
    BatchNormBackwardKernel(input.data() + offset, grad_output.data() + offset,
                            grad_in.data() + offset, gamma_.data(), mu_.data(),
                            var_.data(), eps_, num_features_, plane, g_gamma, g_beta);
  }
  return grad_in;
}

void BatchNorm::SerializeConfig(BinaryWriter& writer) const {
  writer.WriteI64(num_features_);
  writer.WriteF32(eps_);
  writer.WriteI64(calibrated_ ? 1 : 0);
}

}  // namespace dx

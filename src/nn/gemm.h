// Tiled float32 GEMM microkernel + im2col/col2im, the shared compute core of
// the Conv2D and Dense ExecutionPlan forward AND backward paths.
//
// Forward:  y = GemmBias(W, Im2Col(x), bias).
// Backward: grad-input is the transposed-weight GEMM — dense writes
// GemmBias(grad_pre, W) straight into the gradient buffer; conv GEMMs
// W^T · grad_pre into a column matrix and Col2Im scatter-accumulates it back
// into image geometry. Grad-weight (when a caller asks for parameter
// gradients) is the GEMM of grad_pre against the im2col patches.
//
// Numerics contract: every output element is computed as
//
//   C[m,n] = fma(A[m,K-1], B[K-1,n], ... fma(A[m,1], B[1,n],
//                fma(A[m,0], B[0,n], bias[m])) ...)
//
// i.e. a fused multiply-add chain over ascending k starting from the bias.
// The microkernel vectorizes over n (independent output columns) and unrolls
// over m (independent output rows) but NEVER splits or reorders the k
// accumulation, and intra-op threading partitions only over m — so results
// are bit-identical at any SIMD width (src/tensor/simd.h), any thread count,
// and any n (callers may grow or shrink the batch dimension freely). They are
// NOT bit-identical to the by-value scalar kernels, which accumulate in a
// different order; tests compare the two within ULP/abs tolerances.
#ifndef DX_SRC_NN_GEMM_H_
#define DX_SRC_NN_GEMM_H_

#include <cstdint>

namespace dx {

// C[m, n] = bias[m] + sum_k A[m, k] * B[k, n] for m in [0, M), n in [0, N).
// A is [M, K] with row stride lda, B is [K, N] with row stride ldb, C is
// [M, N] with row stride ldc. bias may be null (treated as zeros). When the
// product is large and the calling thread is not already inside a
// ParallelFor region, row blocks are fanned out over the global ThreadPool;
// the call performs no heap allocation either way.
void GemmBias(int M, int N, int K, const float* A, int lda, const float* B,
              int ldb, const float* bias, float* C, int ldc);

// Unpacks one CHW sample into the [channels * kernel_h * kernel_w,
// out_h * out_w] patch matrix GemmBias consumes as B: row (c, ky, kx),
// column (oy, ox) holds x[c, oy*stride - padding + ky, ox*stride - padding
// + kx], or 0 where the index falls in the zero-padding border. `col` must
// have room for the full matrix.
void Im2Col(const float* x, int channels, int in_h, int in_w, int kernel_h,
            int kernel_w, int stride, int padding, int out_h, int out_w,
            float* col);

// The adjoint of Im2Col: zero-fills the CHW image `x` (channels * in_h *
// in_w floats) and scatter-accumulates the [channels * kernel_h * kernel_w,
// out_h * out_w] column matrix back into it — col row (c, ky, kx), column
// (oy, ox) adds into x[c, oy*stride - padding + ky, ox*stride - padding +
// kx]; contributions that fall in the padding border are dropped. Each image
// element accumulates its (possibly overlapping) patch contributions in the
// fixed ascending (c, ky, kx, oy, ox) order, so the result is deterministic
// and independent of SIMD backend, batch width, and thread count (callers
// parallelize only across samples, never inside one Col2Im).
void Col2Im(const float* col, int channels, int in_h, int in_w, int kernel_h,
            int kernel_w, int stride, int padding, int out_h, int out_w,
            float* x);

// out[j, i] = in[i, j] for a row-major [rows, cols] matrix (pure data
// movement — bit-exact by construction). Shared scratch step of the
// backward GEMMs: W^T for conv grad-input, grad_pre^T / im2col^T for the
// grad-weight reductions.
void TransposeMatrix(const float* in, int rows, int cols, float* out);

}  // namespace dx

#endif  // DX_SRC_NN_GEMM_H_

// Fully connected layer: y = act(W x + b), x of shape [in], y of shape [out].
#ifndef DX_SRC_NN_DENSE_H_
#define DX_SRC_NN_DENSE_H_

#include <string>
#include <vector>

#include "src/nn/activation.h"
#include "src/nn/layer.h"

namespace dx {

// Weight initialization schemes; kNormalized mirrors the paper's
// DAVE-norminit variant (normalized random gaussian init).
enum class WeightInit : int { kGlorotUniform = 0, kHeNormal = 1, kNormalized = 2 };

class Dense : public Layer {
 public:
  Dense(int in_features, int out_features, Activation act = Activation::kNone);

  void InitParams(Rng& rng, WeightInit init = WeightInit::kGlorotUniform);

  std::string Kind() const override { return "dense"; }
  std::string Describe() const override;
  Shape OutputShape(const Shape& input_shape) const override;
  Tensor Forward(const Tensor& input, bool training, Rng* rng, Tensor* aux) const override;
  Tensor Backward(const Tensor& input, const Tensor& output, const Tensor& grad_output,
                  const Tensor& aux, std::vector<Tensor>* param_grads) const override;
  // Batch kernel: streams each weight row once for all samples and
  // accumulates batch-inner (vectorizable, no serial dependency chain),
  // keeping every sample's i-ascending double reduction — bit-identical to
  // the per-sample matvec.
  Tensor ForwardBatch(const Tensor& input, int batch, bool training, Rng* rng,
                      Tensor* aux) const override;
  Tensor BackwardBatch(const Tensor& input, const Tensor& output, const Tensor& grad_output,
                       const Tensor& aux, int batch,
                       std::vector<Tensor>* param_grads) const override;
  // Zero-allocation variants: same kernels, arena-backed transpose/scratch.
  void ForwardBatchInto(const Tensor& input, int batch, bool training, Rng* rng,
                        Tensor* output, Tensor* aux, Workspace* ws) const override;
  void BackwardBatchInto(const Tensor& input, const Tensor& output,
                         const Tensor& grad_output, const Tensor& aux, int batch,
                         Tensor* grad_input, Workspace* ws,
                         std::vector<Tensor>* param_grads) const override;
  std::vector<Tensor*> MutableParams() override { return {&weight_, &bias_}; }
  std::vector<const Tensor*> Params() const override { return {&weight_, &bias_}; }
  int NumNeurons() const override { return out_features_; }
  float NeuronValue(const Tensor& output, int index) const override;
  void AddNeuronSeed(Tensor* seed, int index, float weight) const override;
  void SerializeConfig(BinaryWriter& writer) const override;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  Activation activation() const { return act_; }
  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }

 private:
  int in_features_;
  int out_features_;
  Activation act_;
  Tensor weight_;  // [out, in]
  Tensor bias_;    // [out]
};

}  // namespace dx

#endif  // DX_SRC_NN_DENSE_H_

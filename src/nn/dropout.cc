#include "src/nn/dropout.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "src/tensor/workspace.h"
#include "src/util/rng.h"

namespace dx {

Dropout::Dropout(float rate) : rate_(rate) {
  if (rate < 0.0f || rate >= 1.0f) {
    throw std::invalid_argument("Dropout: rate must be in [0, 1)");
  }
}

std::string Dropout::Describe() const {
  std::ostringstream out;
  out << "dropout " << rate_;
  return out.str();
}

Tensor Dropout::Forward(const Tensor& input, bool training, Rng* rng, Tensor* aux) const {
  if (!training || rate_ == 0.0f) {
    return input;
  }
  if (rng == nullptr) {
    throw std::invalid_argument("Dropout::Forward: training mode requires an Rng");
  }
  Tensor mask(input.shape());
  const float keep_scale = 1.0f / (1.0f - rate_);
  for (int64_t i = 0; i < mask.numel(); ++i) {
    mask[i] = rng->Bernoulli(rate_) ? 0.0f : keep_scale;
  }
  Tensor out = input;
  out.MulInPlace(mask);
  if (aux != nullptr) {
    *aux = std::move(mask);
  }
  return out;
}

Tensor Dropout::Backward(const Tensor& /*input*/, const Tensor& /*output*/,
                         const Tensor& grad_output, const Tensor& aux,
                         std::vector<Tensor>* /*param_grads*/) const {
  if (aux.empty()) {
    // Inference-mode trace: identity.
    return grad_output;
  }
  Tensor grad_in = grad_output;
  grad_in.MulInPlace(aux);
  return grad_in;
}

void Dropout::ForwardBatchInto(const Tensor& input, int batch, bool training, Rng* rng,
                               Tensor* output, Tensor* aux, Workspace* /*ws*/) const {
  (void)batch;
  if (!training || rate_ == 0.0f) {
    std::copy(input.data(), input.data() + input.numel(), output->data());
    return;
  }
  if (rng == nullptr) {
    throw std::invalid_argument("Dropout::ForwardBatchInto: training mode requires an Rng");
  }
  if (aux->shape() != input.shape()) {  // Steady state: shapes match, no-op.
    aux->ResizeInPlace(input.shape());
  }
  const float keep_scale = 1.0f / (1.0f - rate_);
  float* mask = aux->data();
  const float* px = input.data();
  float* py = output->data();
  for (int64_t i = 0; i < input.numel(); ++i) {
    mask[i] = rng->Bernoulli(rate_) ? 0.0f : keep_scale;
    py[i] = px[i] * mask[i];
  }
}

void Dropout::BackwardBatchInto(const Tensor& /*input*/, const Tensor& /*output*/,
                                const Tensor& grad_output, const Tensor& aux,
                                int /*batch*/, Tensor* grad_input, Workspace* /*ws*/,
                                std::vector<Tensor>* /*param_grads*/) const {
  const float* pg = grad_output.data();
  float* pgi = grad_input->data();
  if (aux.empty()) {
    // Inference-mode trace: identity.
    std::copy(pg, pg + grad_output.numel(), pgi);
    return;
  }
  const float* mask = aux.data();
  for (int64_t i = 0; i < grad_output.numel(); ++i) {
    pgi[i] = pg[i] * mask[i];
  }
}

void Dropout::SerializeConfig(BinaryWriter& writer) const { writer.WriteF32(rate_); }

}  // namespace dx

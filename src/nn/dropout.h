// Inverted dropout: active only in training mode; identity at inference.
#ifndef DX_SRC_NN_DROPOUT_H_
#define DX_SRC_NN_DROPOUT_H_

#include <string>
#include <vector>

#include "src/nn/layer.h"

namespace dx {

class Dropout : public Layer {
 public:
  explicit Dropout(float rate);

  std::string Kind() const override { return "dropout"; }
  std::string Describe() const override;
  Shape OutputShape(const Shape& input_shape) const override { return input_shape; }
  Tensor Forward(const Tensor& input, bool training, Rng* rng, Tensor* aux) const override;
  Tensor Backward(const Tensor& input, const Tensor& output, const Tensor& grad_output,
                  const Tensor& aux, std::vector<Tensor>* param_grads) const override;
  // Zero-allocation variants (inference = copy; training masks into *aux
  // with the same per-element Bernoulli draw order as Forward).
  void ForwardBatchInto(const Tensor& input, int batch, bool training, Rng* rng,
                        Tensor* output, Tensor* aux, Workspace* ws) const override;
  void BackwardBatchInto(const Tensor& input, const Tensor& output,
                         const Tensor& grad_output, const Tensor& aux, int batch,
                         Tensor* grad_input, Workspace* ws,
                         std::vector<Tensor>* param_grads) const override;
  void SerializeConfig(BinaryWriter& writer) const override;

  float rate() const { return rate_; }

 private:
  float rate_;
};

}  // namespace dx

#endif  // DX_SRC_NN_DROPOUT_H_

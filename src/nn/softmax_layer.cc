#include "src/nn/softmax_layer.h"

#include <algorithm>
#include <stdexcept>

#include "src/tensor/ops.h"

namespace dx {

Shape SoftmaxLayer::OutputShape(const Shape& input_shape) const {
  if (input_shape.size() != 1) {
    throw std::invalid_argument("SoftmaxLayer: expected 1-D logits");
  }
  return input_shape;
}

Tensor SoftmaxLayer::Forward(const Tensor& input, bool /*training*/, Rng* /*rng*/,
                             Tensor* /*aux*/) const {
  return Softmax(input);
}

namespace {

// g_in = y * (g_out - <g_out, y>) for one row; shared by the scalar and
// batched backward (by-value AND *Into), so every path computes the exact
// same JVP. The dot product runs kJvpLanes fixed double partial sums — lane
// j accumulates indices ≡ j (mod kJvpLanes) in ascending order and the lanes
// combine in one fixed sequence. The lane count is a source-level constant
// (NOT simd::kLanes), so the operation sequence — and therefore every bit of
// the result — is identical across SIMD backends and build flags; the
// compiler is free to vectorize the lane-parallel inner loop.
constexpr int kJvpLanes = 8;

void SoftmaxBackwardRow(const float* py, const float* pg, float* pgi, int64_t n) {
  double acc[kJvpLanes] = {};
  int64_t i = 0;
  for (; i + kJvpLanes <= n; i += kJvpLanes) {
    for (int j = 0; j < kJvpLanes; ++j) {
      acc[j] += static_cast<double>(pg[i + j]) * py[i + j];
    }
  }
  for (int j = 0; i < n; ++i, ++j) {
    acc[j] += static_cast<double>(pg[i]) * py[i];
  }
  double dot = 0.0;
  for (int j = 0; j < kJvpLanes; ++j) {
    dot += acc[j];
  }
  const float dotf = static_cast<float>(dot);
  for (i = 0; i < n; ++i) {
    pgi[i] = py[i] * (pg[i] - dotf);
  }
}

}  // namespace

Tensor SoftmaxLayer::Backward(const Tensor& /*input*/, const Tensor& output,
                              const Tensor& grad_output, const Tensor& /*aux*/,
                              std::vector<Tensor>* /*param_grads*/) const {
  Tensor grad_in(output.shape());
  SoftmaxBackwardRow(output.data(), grad_output.data(), grad_in.data(), output.numel());
  return grad_in;
}

Tensor SoftmaxLayer::ForwardBatch(const Tensor& input, int batch, bool /*training*/,
                                  Rng* /*rng*/, Tensor* /*aux*/) const {
  if (input.ndim() != 2 || input.dim(0) != batch) {
    throw std::invalid_argument("SoftmaxLayer::ForwardBatch: expected [B, C] logits");
  }
  return Softmax(input);  // Row-wise: identical to per-sample softmax.
}

Tensor SoftmaxLayer::BackwardBatch(const Tensor& /*input*/, const Tensor& output,
                                   const Tensor& grad_output, const Tensor& /*aux*/,
                                   int batch, std::vector<Tensor>* /*param_grads*/) const {
  Tensor grad_in(output.shape());
  const int64_t cols = output.numel() / batch;
  for (int b = 0; b < batch; ++b) {
    const size_t offset = static_cast<size_t>(b) * cols;
    SoftmaxBackwardRow(output.data() + offset, grad_output.data() + offset,
                       grad_in.data() + offset, cols);
  }
  return grad_in;
}

void SoftmaxLayer::ForwardBatchInto(const Tensor& input, int batch, bool /*training*/,
                                    Rng* /*rng*/, Tensor* output, Tensor* /*aux*/,
                                    Workspace* /*ws*/) const {
  if (input.ndim() != 2 || input.dim(0) != batch) {
    throw std::invalid_argument("SoftmaxLayer::ForwardBatchInto: expected [B, C] logits");
  }
  std::copy(input.data(), input.data() + input.numel(), output->data());
  SoftmaxRowsInPlace(output->data(), batch, input.dim(1));
}

void SoftmaxLayer::BackwardBatchInto(const Tensor& /*input*/, const Tensor& output,
                                     const Tensor& grad_output, const Tensor& /*aux*/,
                                     int batch, Tensor* grad_input, Workspace* /*ws*/,
                                     std::vector<Tensor>* /*param_grads*/) const {
  const int64_t cols = output.numel() / batch;
  for (int b = 0; b < batch; ++b) {
    const size_t offset = static_cast<size_t>(b) * cols;
    SoftmaxBackwardRow(output.data() + offset, grad_output.data() + offset,
                       grad_input->data() + offset, cols);
  }
}

}  // namespace dx

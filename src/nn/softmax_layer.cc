#include "src/nn/softmax_layer.h"

#include <stdexcept>

#include "src/tensor/ops.h"

namespace dx {

Shape SoftmaxLayer::OutputShape(const Shape& input_shape) const {
  if (input_shape.size() != 1) {
    throw std::invalid_argument("SoftmaxLayer: expected 1-D logits");
  }
  return input_shape;
}

Tensor SoftmaxLayer::Forward(const Tensor& input, bool /*training*/, Rng* /*rng*/,
                             Tensor* /*aux*/) const {
  return Softmax(input);
}

Tensor SoftmaxLayer::Backward(const Tensor& /*input*/, const Tensor& output,
                              const Tensor& grad_output, const Tensor& /*aux*/,
                              std::vector<Tensor>* /*param_grads*/) const {
  double dot = 0.0;
  for (int64_t i = 0; i < output.numel(); ++i) {
    dot += static_cast<double>(grad_output[i]) * output[i];
  }
  Tensor grad_in(output.shape());
  for (int64_t i = 0; i < output.numel(); ++i) {
    grad_in[i] = output[i] * (grad_output[i] - static_cast<float>(dot));
  }
  return grad_in;
}

}  // namespace dx

#include "src/nn/pool2d.h"

#include <limits>
#include <sstream>
#include <stdexcept>

namespace dx {
namespace {

struct PoolGeom {
  int channels, in_h, in_w, out_h, out_w, kernel, stride;
  int64_t in_size() const { return static_cast<int64_t>(channels) * in_h * in_w; }
  int64_t out_size() const { return static_cast<int64_t>(channels) * out_h * out_w; }
};

// One sample's pooling pass; paux (max mode) receives sample-relative flat
// input offsets. Shared by the scalar and batched paths.
void PoolForwardKernel(const PoolGeom& g, PoolMode mode, const float* px, float* py,
                       float* paux) {
  for (int c = 0; c < g.channels; ++c) {
    const float* in_plane = px + static_cast<size_t>(c) * g.in_h * g.in_w;
    for (int oy = 0; oy < g.out_h; ++oy) {
      for (int ox = 0; ox < g.out_w; ++ox) {
        const int iy0 = oy * g.stride;
        const int ix0 = ox * g.stride;
        const int64_t out_idx = (static_cast<int64_t>(c) * g.out_h + oy) * g.out_w + ox;
        if (mode == PoolMode::kMax) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = 0;
          for (int ky = 0; ky < g.kernel; ++ky) {
            for (int kx = 0; kx < g.kernel; ++kx) {
              const int64_t idx = static_cast<int64_t>(iy0 + ky) * g.in_w + (ix0 + kx);
              const float v = in_plane[idx];
              if (v > best) {
                best = v;
                best_idx = static_cast<int64_t>(c) * g.in_h * g.in_w + idx;
              }
            }
          }
          py[out_idx] = best;
          paux[out_idx] = static_cast<float>(best_idx);
        } else {
          double acc = 0.0;
          for (int ky = 0; ky < g.kernel; ++ky) {
            for (int kx = 0; kx < g.kernel; ++kx) {
              acc += in_plane[static_cast<size_t>(iy0 + ky) * g.in_w + (ix0 + kx)];
            }
          }
          py[out_idx] = static_cast<float>(acc / (g.kernel * g.kernel));
        }
      }
    }
  }
}

// Routes max-pool gradients through the argmax offsets cached in the forward
// aux slab — no window re-scan in the backward. Requires pgi pre-zeroed.
void PoolBackwardKernel(const PoolGeom& g, PoolMode mode, const float* pg,
                        const float* paux, float* pgi) {
  if (mode == PoolMode::kMax) {
    for (int64_t i = 0; i < g.out_size(); ++i) {
      pgi[static_cast<int64_t>(paux[i])] += pg[i];
    }
    return;
  }
  const float scale = 1.0f / static_cast<float>(g.kernel * g.kernel);
  // Non-overlapping windows (stride >= kernel, the common pooling config):
  // each input cell belongs to at most one window, so the scatter-add
  // degenerates to a direct store. Bit-identical to accumulating into the
  // pre-zeroed buffer (+0 and -0 compare equal everywhere we care), but the
  // compiler can emit wide stores with no read-modify-write dependency.
  const bool disjoint = g.stride >= g.kernel;
  for (int c = 0; c < g.channels; ++c) {
    float* gi_plane = pgi + static_cast<size_t>(c) * g.in_h * g.in_w;
    const float* go_plane = pg + static_cast<size_t>(c) * g.out_h * g.out_w;
    for (int oy = 0; oy < g.out_h; ++oy) {
      for (int ox = 0; ox < g.out_w; ++ox) {
        const float gv = go_plane[static_cast<size_t>(oy) * g.out_w + ox] * scale;
        for (int ky = 0; ky < g.kernel; ++ky) {
          float* gi_row =
              gi_plane + static_cast<size_t>(oy * g.stride + ky) * g.in_w + ox * g.stride;
          if (disjoint) {
            for (int kx = 0; kx < g.kernel; ++kx) {
              gi_row[kx] = gv;
            }
          } else {
            for (int kx = 0; kx < g.kernel; ++kx) {
              gi_row[kx] += gv;
            }
          }
        }
      }
    }
  }
}

}  // namespace

Pool2D::Pool2D(PoolMode mode, int kernel, int stride)
    : mode_(mode), kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  if (kernel <= 0 || stride_ <= 0) {
    throw std::invalid_argument("Pool2D: kernel and stride must be positive");
  }
}

std::string Pool2D::Describe() const {
  std::ostringstream out;
  out << (mode_ == PoolMode::kMax ? "maxpool" : "avgpool") << " k" << kernel_ << " s"
      << stride_;
  return out.str();
}

Shape Pool2D::OutputShape(const Shape& input_shape) const {
  if (input_shape.size() != 3) {
    throw std::invalid_argument("Pool2D: expected CHW input, got " +
                                ShapeToString(input_shape));
  }
  if (input_shape[1] < kernel_ || input_shape[2] < kernel_) {
    throw std::invalid_argument("Pool2D: kernel larger than input");
  }
  const int out_h = (input_shape[1] - kernel_) / stride_ + 1;
  const int out_w = (input_shape[2] - kernel_) / stride_ + 1;
  return {input_shape[0], out_h, out_w};
}

Tensor Pool2D::Forward(const Tensor& input, bool /*training*/, Rng* /*rng*/,
                       Tensor* aux) const {
  const Shape out_shape = OutputShape(input.shape());
  const PoolGeom g{out_shape[0], input.dim(1), input.dim(2),
                   out_shape[1], out_shape[2], kernel_,      stride_};
  Tensor out(out_shape);
  Tensor argmax;
  if (mode_ == PoolMode::kMax) {
    argmax = Tensor(out_shape);  // Flat input offsets of winners, stored as float.
  }
  PoolForwardKernel(g, mode_, input.data(), out.data(),
                    mode_ == PoolMode::kMax ? argmax.data() : nullptr);
  if (aux != nullptr && mode_ == PoolMode::kMax) {
    *aux = std::move(argmax);
  }
  return out;
}

Tensor Pool2D::ForwardBatch(const Tensor& input, int batch, bool /*training*/,
                            Rng* /*rng*/, Tensor* aux) const {
  if (input.ndim() != 4 || input.dim(0) != batch) {
    throw std::invalid_argument("Pool2D::ForwardBatch: expected [B, C, H, W] input");
  }
  const Shape sample_shape = {input.dim(1), input.dim(2), input.dim(3)};
  const Shape out_shape = OutputShape(sample_shape);
  const PoolGeom g{out_shape[0], input.dim(2), input.dim(3),
                   out_shape[1], out_shape[2], kernel_,      stride_};
  Tensor out({batch, out_shape[0], out_shape[1], out_shape[2]});
  Tensor argmax;
  if (mode_ == PoolMode::kMax) {
    argmax = Tensor(out.shape());
  }
  for (int b = 0; b < batch; ++b) {
    PoolForwardKernel(
        g, mode_, input.data() + static_cast<size_t>(b) * g.in_size(),
        out.data() + static_cast<size_t>(b) * g.out_size(),
        mode_ == PoolMode::kMax ? argmax.data() + static_cast<size_t>(b) * g.out_size()
                                : nullptr);
  }
  if (aux != nullptr && mode_ == PoolMode::kMax) {
    *aux = std::move(argmax);
  }
  return out;
}

void Pool2D::ForwardBatchInto(const Tensor& input, int batch, bool /*training*/,
                              Rng* /*rng*/, Tensor* output, Tensor* aux,
                              Workspace* /*ws*/) const {
  if (input.ndim() != 4 || input.dim(0) != batch || output->ndim() != 4) {
    throw std::invalid_argument("Pool2D::ForwardBatchInto: expected [B, C, H, W] tensors");
  }
  // Geometry from the caller-sized tensors — no Shape construction per call.
  const PoolGeom g{output->dim(1), input.dim(2),   input.dim(3),
                   output->dim(2), output->dim(3), kernel_,      stride_};
  float* paux = nullptr;
  if (mode_ == PoolMode::kMax) {
    if (aux->shape() != output->shape()) {  // Steady state: shapes match, no-op.
      aux->ResizeInPlace(output->shape());
    }
    paux = aux->data();
  }
  for (int b = 0; b < batch; ++b) {
    PoolForwardKernel(g, mode_, input.data() + static_cast<size_t>(b) * g.in_size(),
                      output->data() + static_cast<size_t>(b) * g.out_size(),
                      paux != nullptr ? paux + static_cast<size_t>(b) * g.out_size()
                                      : nullptr);
  }
}

Tensor Pool2D::Backward(const Tensor& input, const Tensor& output, const Tensor& grad_output,
                        const Tensor& aux, std::vector<Tensor>* /*param_grads*/) const {
  Tensor grad_in(input.shape());
  if (mode_ == PoolMode::kMax && aux.numel() != output.numel()) {
    throw std::invalid_argument("Pool2D::Backward: missing argmax aux tensor");
  }
  const PoolGeom g{input.dim(0), input.dim(1), input.dim(2),
                   output.dim(1), output.dim(2), kernel_,    stride_};
  PoolBackwardKernel(g, mode_, grad_output.data(), aux.data(), grad_in.data());
  return grad_in;
}

Tensor Pool2D::BackwardBatch(const Tensor& input, const Tensor& output,
                             const Tensor& grad_output, const Tensor& aux, int batch,
                             std::vector<Tensor>* /*param_grads*/) const {
  Tensor grad_in(input.shape());
  if (mode_ == PoolMode::kMax && aux.numel() != output.numel()) {
    throw std::invalid_argument("Pool2D::BackwardBatch: missing argmax aux tensor");
  }
  const PoolGeom g{input.dim(1), input.dim(2), input.dim(3),
                   output.dim(2), output.dim(3), kernel_,    stride_};
  for (int b = 0; b < batch; ++b) {
    PoolBackwardKernel(
        g, mode_, grad_output.data() + static_cast<size_t>(b) * g.out_size(),
        mode_ == PoolMode::kMax ? aux.data() + static_cast<size_t>(b) * g.out_size()
                                : nullptr,
        grad_in.data() + static_cast<size_t>(b) * g.in_size());
  }
  return grad_in;
}

void Pool2D::BackwardBatchInto(const Tensor& input, const Tensor& output,
                               const Tensor& grad_output, const Tensor& aux, int batch,
                               Tensor* grad_input, Workspace* /*ws*/,
                               std::vector<Tensor>* /*param_grads*/) const {
  if (mode_ == PoolMode::kMax && aux.numel() != output.numel()) {
    throw std::invalid_argument("Pool2D::BackwardBatchInto: missing argmax aux tensor");
  }
  const PoolGeom g{input.dim(1), input.dim(2), input.dim(3),
                   output.dim(2), output.dim(3), kernel_,    stride_};
  std::fill(grad_input->data(), grad_input->data() + grad_input->numel(), 0.0f);
  for (int b = 0; b < batch; ++b) {
    PoolBackwardKernel(
        g, mode_, grad_output.data() + static_cast<size_t>(b) * g.out_size(),
        mode_ == PoolMode::kMax ? aux.data() + static_cast<size_t>(b) * g.out_size()
                                : nullptr,
        grad_input->data() + static_cast<size_t>(b) * g.in_size());
  }
}

void Pool2D::SerializeConfig(BinaryWriter& writer) const {
  writer.WriteI64(static_cast<int64_t>(mode_));
  writer.WriteI64(kernel_);
  writer.WriteI64(stride_);
}

}  // namespace dx

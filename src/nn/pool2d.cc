#include "src/nn/pool2d.h"

#include <limits>
#include <sstream>
#include <stdexcept>

namespace dx {

Pool2D::Pool2D(PoolMode mode, int kernel, int stride)
    : mode_(mode), kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  if (kernel <= 0 || stride_ <= 0) {
    throw std::invalid_argument("Pool2D: kernel and stride must be positive");
  }
}

std::string Pool2D::Describe() const {
  std::ostringstream out;
  out << (mode_ == PoolMode::kMax ? "maxpool" : "avgpool") << " k" << kernel_ << " s"
      << stride_;
  return out.str();
}

Shape Pool2D::OutputShape(const Shape& input_shape) const {
  if (input_shape.size() != 3) {
    throw std::invalid_argument("Pool2D: expected CHW input, got " +
                                ShapeToString(input_shape));
  }
  if (input_shape[1] < kernel_ || input_shape[2] < kernel_) {
    throw std::invalid_argument("Pool2D: kernel larger than input");
  }
  const int out_h = (input_shape[1] - kernel_) / stride_ + 1;
  const int out_w = (input_shape[2] - kernel_) / stride_ + 1;
  return {input_shape[0], out_h, out_w};
}

Tensor Pool2D::Forward(const Tensor& input, bool /*training*/, Rng* /*rng*/,
                       Tensor* aux) const {
  const Shape out_shape = OutputShape(input.shape());
  const int channels = out_shape[0];
  const int out_h = out_shape[1];
  const int out_w = out_shape[2];
  const int in_h = input.dim(1);
  const int in_w = input.dim(2);
  Tensor out(out_shape);
  Tensor argmax;
  if (mode_ == PoolMode::kMax) {
    argmax = Tensor(out_shape);  // Flat input offsets of winners, stored as float.
  }

  const float* px = input.data();
  float* py = out.data();
  for (int c = 0; c < channels; ++c) {
    const float* in_plane = px + static_cast<size_t>(c) * in_h * in_w;
    for (int oy = 0; oy < out_h; ++oy) {
      for (int ox = 0; ox < out_w; ++ox) {
        const int iy0 = oy * stride_;
        const int ix0 = ox * stride_;
        const int64_t out_idx =
            (static_cast<int64_t>(c) * out_h + oy) * out_w + ox;
        if (mode_ == PoolMode::kMax) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = 0;
          for (int ky = 0; ky < kernel_; ++ky) {
            for (int kx = 0; kx < kernel_; ++kx) {
              const int64_t idx = static_cast<int64_t>(iy0 + ky) * in_w + (ix0 + kx);
              const float v = in_plane[idx];
              if (v > best) {
                best = v;
                best_idx = static_cast<int64_t>(c) * in_h * in_w + idx;
              }
            }
          }
          py[out_idx] = best;
          argmax[out_idx] = static_cast<float>(best_idx);
        } else {
          double acc = 0.0;
          for (int ky = 0; ky < kernel_; ++ky) {
            for (int kx = 0; kx < kernel_; ++kx) {
              acc += in_plane[static_cast<size_t>(iy0 + ky) * in_w + (ix0 + kx)];
            }
          }
          py[out_idx] = static_cast<float>(acc / (kernel_ * kernel_));
        }
      }
    }
  }
  if (aux != nullptr && mode_ == PoolMode::kMax) {
    *aux = std::move(argmax);
  }
  return out;
}

Tensor Pool2D::Backward(const Tensor& input, const Tensor& output, const Tensor& grad_output,
                        const Tensor& aux, std::vector<Tensor>* /*param_grads*/) const {
  Tensor grad_in(input.shape());
  const int64_t n_out = output.numel();
  if (mode_ == PoolMode::kMax) {
    if (aux.numel() != n_out) {
      throw std::invalid_argument("Pool2D::Backward: missing argmax aux tensor");
    }
    for (int64_t i = 0; i < n_out; ++i) {
      grad_in[static_cast<int64_t>(aux[i])] += grad_output[i];
    }
  } else {
    const int in_h = input.dim(1);
    const int in_w = input.dim(2);
    const int out_h = output.dim(1);
    const int out_w = output.dim(2);
    const int channels = input.dim(0);
    const float scale = 1.0f / static_cast<float>(kernel_ * kernel_);
    for (int c = 0; c < channels; ++c) {
      float* gi_plane = grad_in.data() + static_cast<size_t>(c) * in_h * in_w;
      const float* go_plane = grad_output.data() + static_cast<size_t>(c) * out_h * out_w;
      for (int oy = 0; oy < out_h; ++oy) {
        for (int ox = 0; ox < out_w; ++ox) {
          const float g = go_plane[static_cast<size_t>(oy) * out_w + ox] * scale;
          for (int ky = 0; ky < kernel_; ++ky) {
            for (int kx = 0; kx < kernel_; ++kx) {
              gi_plane[static_cast<size_t>(oy * stride_ + ky) * in_w + (ox * stride_ + kx)] +=
                  g;
            }
          }
        }
      }
    }
  }
  return grad_in;
}

void Pool2D::SerializeConfig(BinaryWriter& writer) const {
  writer.WriteI64(static_cast<int64_t>(mode_));
  writer.WriteI64(kernel_);
  writer.WriteI64(stride_);
}

}  // namespace dx

// Normalization layer with dataset-calibrated statistics.
//
// y = gamma * (x - mu) / sqrt(var + eps) + beta, per channel (CHW input) or
// per feature (1-D input). mu/var are *frozen running statistics* calibrated
// once from training data (Trainer::CalibrateNormLayers) rather than batch
// statistics — our training loop is per-example, so true batch statistics do
// not exist. gamma/beta remain trainable. This preserves what the paper's
// experiments need from DAVE-orig's leading BatchNormalization layer: an
// input-normalizing, input-differentiable affine stage that architecturally
// distinguishes DAVE-orig from DAVE-norminit.
#ifndef DX_SRC_NN_BATCHNORM_H_
#define DX_SRC_NN_BATCHNORM_H_

#include <string>
#include <vector>

#include "src/nn/layer.h"

namespace dx {

class BatchNorm : public Layer {
 public:
  // num_features: channel count (CHW input) or feature count (1-D input).
  explicit BatchNorm(int num_features, float eps = 1e-5f);

  // Sets mu/var from accumulated per-channel moments.
  void SetStatistics(const std::vector<float>& mean, const std::vector<float>& variance);
  bool calibrated() const { return calibrated_; }

  std::string Kind() const override { return "batchnorm"; }
  std::string Describe() const override;
  Shape OutputShape(const Shape& input_shape) const override;
  Tensor Forward(const Tensor& input, bool training, Rng* rng, Tensor* aux) const override;
  Tensor Backward(const Tensor& input, const Tensor& output, const Tensor& grad_output,
                  const Tensor& aux, std::vector<Tensor>* param_grads) const override;
  // Batch kernels: the frozen-statistics affine is applied per sample slice
  // with per-channel scale/shift hoisted across the batch.
  Tensor ForwardBatch(const Tensor& input, int batch, bool training, Rng* rng,
                      Tensor* aux) const override;
  Tensor BackwardBatch(const Tensor& input, const Tensor& output, const Tensor& grad_output,
                       const Tensor& aux, int batch,
                       std::vector<Tensor>* param_grads) const override;
  // Zero-allocation variants of the frozen-statistics affine and its grad.
  void ForwardBatchInto(const Tensor& input, int batch, bool training, Rng* rng,
                        Tensor* output, Tensor* aux, Workspace* ws) const override;
  void BackwardBatchInto(const Tensor& input, const Tensor& output,
                         const Tensor& grad_output, const Tensor& aux, int batch,
                         Tensor* grad_input, Workspace* ws,
                         std::vector<Tensor>* param_grads) const override;
  // gamma, beta, mu, var are all persisted; only gamma/beta are trainable but
  // mu/var ride along in MutableParams for serialization simplicity — the
  // optimizer must skip them, so they are exposed separately.
  std::vector<Tensor*> MutableParams() override { return {&gamma_, &beta_, &mu_, &var_}; }
  std::vector<const Tensor*> Params() const override { return {&gamma_, &beta_, &mu_, &var_}; }
  // Indices into MutableParams() that the optimizer may update.
  static constexpr int kNumTrainableParams = 2;
  void SerializeConfig(BinaryWriter& writer) const override;

  int num_features() const { return num_features_; }

 private:
  // Channel extent and per-channel plane size for the given input.
  void PlaneGeometry(const Tensor& input, int* channels, int64_t* plane) const;

  int num_features_;
  float eps_;
  bool calibrated_ = false;
  Tensor gamma_;  // [features]
  Tensor beta_;   // [features]
  Tensor mu_;     // [features]
  Tensor var_;    // [features]
};

}  // namespace dx

#endif  // DX_SRC_NN_BATCHNORM_H_

#include "src/nn/optimizer.h"

#include <cmath>
#include <stdexcept>

namespace dx {
namespace {

void CheckAligned(const std::vector<Tensor*>& params, const std::vector<Tensor>& grads) {
  if (params.size() != grads.size()) {
    throw std::invalid_argument("optimizer: params/grads size mismatch");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (params[i]->shape() != grads[i].shape()) {
      throw std::invalid_argument("optimizer: grad shape mismatch at param " +
                                  std::to_string(i));
    }
  }
}

}  // namespace

Sgd::Sgd(float learning_rate, float momentum) : lr_(learning_rate), momentum_(momentum) {}

void Sgd::Step(const std::vector<Tensor*>& params, const std::vector<Tensor>& grads) {
  CheckAligned(params, grads);
  if (momentum_ == 0.0f) {
    for (size_t i = 0; i < params.size(); ++i) {
      params[i]->Axpy(-lr_, grads[i]);
    }
    return;
  }
  if (velocity_.empty()) {
    for (const Tensor* p : params) {
      velocity_.emplace_back(p->shape());
    }
  }
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& vel = velocity_[i];
    vel.Scale(momentum_).Axpy(1.0f, grads[i]);
    params[i]->Axpy(-lr_, vel);
  }
}

Adam::Adam(float learning_rate, float beta1, float beta2, float eps)
    : lr_(learning_rate), beta1_(beta1), beta2_(beta2), eps_(eps) {}

void Adam::Step(const std::vector<Tensor*>& params, const std::vector<Tensor>& grads) {
  CheckAligned(params, grads);
  if (m_.empty()) {
    for (const Tensor* p : params) {
      m_.emplace_back(p->shape());
      v_.emplace_back(p->shape());
    }
  }
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    Tensor& p = *params[i];
    const Tensor& g = grads[i];
    for (int64_t k = 0; k < p.numel(); ++k) {
      m[k] = beta1_ * m[k] + (1.0f - beta1_) * g[k];
      v[k] = beta2_ * v[k] + (1.0f - beta2_) * g[k] * g[k];
      const float m_hat = m[k] / bias1;
      const float v_hat = v[k] / bias2;
      p[k] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace dx

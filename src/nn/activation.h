// Pointwise activation functions applied inside Dense / Conv2D layers.
//
// Derivatives are expressed in terms of the *post-activation* value y so that
// layers never need to store pre-activation tensors.
#ifndef DX_SRC_NN_ACTIVATION_H_
#define DX_SRC_NN_ACTIVATION_H_

#include <string>

#include "src/tensor/tensor.h"

namespace dx {

enum class Activation : int { kNone = 0, kRelu = 1, kTanh = 2, kSigmoid = 3 };

// Applies the activation elementwise in place.
void ApplyActivation(Activation act, Tensor* t);

// Multiplies grad elementwise by act'(x) computed from y = act(x).
void ApplyActivationGrad(Activation act, const Tensor& y, Tensor* grad);

std::string ActivationName(Activation act);
Activation ActivationFromName(const std::string& name);

}  // namespace dx

#endif  // DX_SRC_NN_ACTIVATION_H_

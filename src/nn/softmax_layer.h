// Softmax output layer. Kept separate from Dense so training can seed
// backprop at the logits (numerically stable fused softmax+cross-entropy)
// while DeepXplore's obj1 seeds one-hot gradients at the probabilities.
#ifndef DX_SRC_NN_SOFTMAX_LAYER_H_
#define DX_SRC_NN_SOFTMAX_LAYER_H_

#include <string>
#include <vector>

#include "src/nn/layer.h"

namespace dx {

class SoftmaxLayer : public Layer {
 public:
  SoftmaxLayer() = default;

  std::string Kind() const override { return "softmax"; }
  std::string Describe() const override { return "softmax"; }
  Shape OutputShape(const Shape& input_shape) const override;
  Tensor Forward(const Tensor& input, bool training, Rng* rng, Tensor* aux) const override;
  // Jacobian-vector product: g_in = y * (g_out - <g_out, y>).
  Tensor Backward(const Tensor& input, const Tensor& output, const Tensor& grad_output,
                  const Tensor& aux, std::vector<Tensor>* param_grads) const override;
  // Row-wise over [B, C]: each row runs the identical stable softmax / JVP.
  Tensor ForwardBatch(const Tensor& input, int batch, bool training, Rng* rng,
                      Tensor* aux) const override;
  Tensor BackwardBatch(const Tensor& input, const Tensor& output, const Tensor& grad_output,
                       const Tensor& aux, int batch,
                       std::vector<Tensor>* param_grads) const override;
  // Zero-allocation variants: stable row softmax / JVP over caller storage.
  void ForwardBatchInto(const Tensor& input, int batch, bool training, Rng* rng,
                        Tensor* output, Tensor* aux, Workspace* ws) const override;
  void BackwardBatchInto(const Tensor& input, const Tensor& output,
                         const Tensor& grad_output, const Tensor& aux, int batch,
                         Tensor* grad_input, Workspace* ws,
                         std::vector<Tensor>* param_grads) const override;
  void SerializeConfig(BinaryWriter& /*writer*/) const override {}
};

}  // namespace dx

#endif  // DX_SRC_NN_SOFTMAX_LAYER_H_

// Layer: the building block of sequential models.
//
// Layers are stateless with respect to execution: Forward takes an input and
// returns an output (plus an optional auxiliary tensor such as a dropout mask
// or pooling argmax map), and Backward recomputes gradients from the recorded
// (input, output, aux) triple. This design makes reverse-mode differentiation
// from *any* internal layer straightforward — which is exactly what
// DeepXplore's neuron-coverage objective needs.
//
// Coverage neurons: following the DeepXplore reference implementation, a
// "neuron" is one output unit of a Dense layer or one output channel of a
// Conv2D layer (its activation value is the spatial mean). Other layers
// expose zero neurons.
#ifndef DX_SRC_NN_LAYER_H_
#define DX_SRC_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/tensor/tensor.h"
#include "src/util/serialize.h"

namespace dx {

class Rng;
class Workspace;

class Layer {
 public:
  virtual ~Layer() = default;

  // Stable type tag used by serialization ("dense", "conv2d", ...).
  virtual std::string Kind() const = 0;
  // Short human-readable description, e.g. "conv2d 6x(5x5) relu".
  virtual std::string Describe() const = 0;

  // Output shape for a given input shape; throws on incompatible input.
  virtual Shape OutputShape(const Shape& input_shape) const = 0;

  // Computes the layer output. `training` toggles dropout; `rng` is required
  // only when training with stochastic layers. If the layer needs state for
  // its backward pass beyond (input, output), it stores it in `*aux`.
  virtual Tensor Forward(const Tensor& input, bool training, Rng* rng, Tensor* aux) const = 0;

  // Given dLoss/dOutput in `grad_output`, returns dLoss/dInput. If
  // `param_grads` is non-null it must hold one zero-or-accumulating tensor per
  // parameter (same order as Params()); parameter gradients are added into it.
  // An individual EMPTY tensor in the vector means "this parameter's gradient
  // is discarded — skip its work" (see CheckParamGrads), so callers that only
  // need a subset never pay for the rest. Null means input-gradient only.
  virtual Tensor Backward(const Tensor& input, const Tensor& output,
                          const Tensor& grad_output, const Tensor& aux,
                          std::vector<Tensor>* param_grads) const = 0;

  // Batched forward: `input` is [batch, ...sample_shape]; returns
  // [batch, ...output_shape], with `*aux` batched the same way (or left
  // empty when the per-sample pass records no aux). Every sample's result is
  // bit-identical to Forward on that sample alone — batching amortizes
  // per-layer overhead, it never reorders a per-scalar reduction. The base
  // implementation loops Forward over sample slices; hot layers override it
  // with a single-allocation batch kernel.
  virtual Tensor ForwardBatch(const Tensor& input, int batch, bool training, Rng* rng,
                              Tensor* aux) const;

  // Batched counterpart of Backward over [batch, ...] tensors. Parameter
  // gradients (when requested) accumulate across samples in batch order,
  // matching a sequential per-sample loop.
  virtual Tensor BackwardBatch(const Tensor& input, const Tensor& output,
                               const Tensor& grad_output, const Tensor& aux, int batch,
                               std::vector<Tensor>* param_grads) const;

  // ---- In-place batch kernels (zero-allocation execution path) ----------------------------
  //
  // The `*Into` variants write into caller-provided storage instead of
  // returning fresh tensors; they are the currency of ExecutionPlan
  // (src/nn/execution_plan.h), whose slabs are reused across gradient-ascent
  // iterations. Contract:
  //   * Numerics: the by-value API is the scalar reference oracle. BOTH
  //     directions of the hot layers (Dense, Conv2D) run the im2col/GEMM +
  //     SIMD path (src/nn/gemm.h, src/tensor/simd.h), which accumulates in a
  //     different order than the oracle — forward results match within the
  //     kernel forward tolerance of tests/test_util.h and backward results
  //     (grad-input via transposed-weight GEMM + Col2Im, grad-weight via
  //     GEMM-against-im2col) within the kernel backward tolerance, not
  //     bit-for-bit. They ARE bit-identical across SIMD backends, batch
  //     widths, and thread counts (ascending-k FMA per output element at
  //     every width; threading partitions only over independent output rows
  //     / samples). All other layers' kernels remain bit-identical to the
  //     by-value path.
  //   * `ws` supplies scratch buffers (never null on the plan path; see
  //     src/tensor/workspace.h). Acquire in a deterministic order so the
  //     arena reaches a stable slot layout.
  //   * The default adapters below call the by-value API and move the result
  //     into the destination tensors — correct for any out-of-tree layer,
  //     but allocating. Built-in layers override both with kernels that only
  //     touch pre-existing storage.

  // `output` is pre-shaped to [batch, ...OutputShape]; every element is
  // overwritten. When the layer records aux state it ResizeInPlace's `*aux`
  // to the batched aux shape and fills it (allocation-free once the tensor
  // has seen that capacity); layers without aux leave `*aux` untouched, so
  // callers should pass a tensor whose emptiness reflects "no aux recorded".
  virtual void ForwardBatchInto(const Tensor& input, int batch, bool training, Rng* rng,
                                Tensor* output, Tensor* aux, Workspace* ws) const;

  // Writes dLoss/dInput into `grad_input`, which holds batch * |input
  // sample| elements; implementations treat it (and `grad_output`, which
  // only promises numel == output.numel()) as flat storage — geometry comes
  // from `input`/`output`. This shape looseness lets a plan run a batch-1
  // backward whose seed and final gradient are per-sample-shaped. Every
  // element of `grad_input` is overwritten; param grads accumulate exactly
  // as in BackwardBatch.
  virtual void BackwardBatchInto(const Tensor& input, const Tensor& output,
                                 const Tensor& grad_output, const Tensor& aux, int batch,
                                 Tensor* grad_input, Workspace* ws,
                                 std::vector<Tensor>* param_grads) const;

  // Trainable parameters (empty for parameterless layers).
  virtual std::vector<Tensor*> MutableParams() { return {}; }
  virtual std::vector<const Tensor*> Params() const { return {}; }

 protected:
  // Shared validation for the optional `param_grads` argument of the
  // backward entry points: null requests input-gradient only; otherwise the
  // vector must hold exactly Params().size() accumulators (throws
  // std::invalid_argument naming `who` if not). Individual empty tensors are
  // allowed and mean "skip this parameter's gradient".
  void CheckParamGrads(const std::vector<Tensor>* param_grads, const char* who) const;

  // Accumulator data pointer for parameter `i`, or nullptr when the caller
  // passed no vector or left that entry empty (gradient discarded).
  static float* GradData(std::vector<Tensor>* param_grads, size_t i) {
    return param_grads != nullptr && !(*param_grads)[i].empty()
               ? (*param_grads)[i].data()
               : nullptr;
  }

 public:

  // Number of coverage neurons this layer contributes.
  virtual int NumNeurons() const { return 0; }
  // Scalar activation of neuron `index` given this layer's output.
  virtual float NeuronValue(const Tensor& output, int index) const;
  // Adds `weight * d(neuron_index)/d(output)` into `seed` (shaped like the
  // layer output); used to seed backprop for the coverage objective.
  virtual void AddNeuronSeed(Tensor* seed, int index, float weight) const;

  // Serializes constructor configuration (not parameters).
  virtual void SerializeConfig(BinaryWriter& writer) const = 0;
};

// One recorded forward pass through a Model. outputs[l] and aux[l] correspond
// to layer l; the input of layer l is outputs[l-1] (or `input` for l == 0).
struct ForwardTrace {
  Tensor input;
  std::vector<Tensor> outputs;
  std::vector<Tensor> aux;

  const Tensor& LayerInput(int layer) const {
    return layer == 0 ? input : outputs[static_cast<size_t>(layer) - 1];
  }
  const Tensor& Output() const { return outputs.back(); }
};

// One recorded *batched* forward pass: every tensor carries a leading batch
// dimension, so outputs[l] holds layer l's activations for all `batch`
// inputs of one Model::ForwardBatch call. This is the currency of the
// batched execution path: computed once per (input batch, model) and shared
// by the objective gradient, the difference check, and the coverage update.
struct BatchTrace {
  int batch = 0;
  Tensor input;                 // [batch, ...model_input_shape]
  std::vector<Tensor> outputs;  // outputs[l]: [batch, ...layer_l_output_shape]
  std::vector<Tensor> aux;      // aux[l]: [batch, ...] or empty

  const Tensor& LayerInput(int layer) const {
    return layer == 0 ? input : outputs[static_cast<size_t>(layer) - 1];
  }
  const Tensor& Output() const { return outputs.back(); }

  // Copies sample `index` out as a per-sample ForwardTrace (scalar-path
  // bridge: objectives and metrics written against ForwardTrace consume the
  // shared batch activations through this instead of re-forwarding).
  ForwardTrace Sample(int index) const;
  // Copies the selected samples into a smaller BatchTrace.
  BatchTrace Select(const std::vector<int>& indices) const;
  // Copy of sample `index` of layer `layer`'s output.
  Tensor SampleOutput(int layer, int index) const;
};

}  // namespace dx

#endif  // DX_SRC_NN_LAYER_H_

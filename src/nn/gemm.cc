#include "src/nn/gemm.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/simd.h"
#include "src/util/thread_pool.h"

namespace dx {
namespace {

using simd::VecF;

// Register-blocking factors. kMR independent rows give the FMA units
// independent dependency chains (the k-loop of a single row is serial by
// contract); kNR = 2 vectors of columns amortizes each A broadcast over two
// FMAs. With AVX2 (8 lanes) this is the classic 4x16 microkernel holding 8
// accumulator registers.
constexpr int kMR = 4;
constexpr int kNR = 2 * simd::kLanes;

// Work (in FMAs) below which fanning a GEMM out to the pool costs more in
// wake-up latency than it saves; roughly a few hundred microseconds of
// scalar work.
constexpr int64_t kIntraOpMinWork = int64_t{1} << 20;

// Full kMR x kNR tile.
void MicroKernel(int K, const float* A, int lda, const float* B, int ldb,
                 const float* bias, float* C, int ldc) {
  VecF acc[kMR][2];
  for (int m = 0; m < kMR; ++m) {
    const float b = bias != nullptr ? bias[m] : 0.0f;
    acc[m][0] = VecF::Broadcast(b);
    acc[m][1] = VecF::Broadcast(b);
  }
  for (int k = 0; k < K; ++k) {
    const float* b_row = B + static_cast<size_t>(k) * ldb;
    const VecF b0 = VecF::Load(b_row);
    const VecF b1 = VecF::Load(b_row + simd::kLanes);
    for (int m = 0; m < kMR; ++m) {
      const VecF a = VecF::Broadcast(A[static_cast<size_t>(m) * lda + k]);
      acc[m][0] = VecF::Fma(a, b0, acc[m][0]);
      acc[m][1] = VecF::Fma(a, b1, acc[m][1]);
    }
  }
  for (int m = 0; m < kMR; ++m) {
    float* c_row = C + static_cast<size_t>(m) * ldc;
    acc[m][0].Store(c_row);
    acc[m][1].Store(c_row + simd::kLanes);
  }
}

// Any mr x nr remainder (mr <= kMR). Runs whole vectors while they fit,
// then single columns — every path is the same ascending-k FMA chain per
// element, so tile shape never changes a result. The rows' chains are
// interleaved inside one k-loop: each chain is serial by contract, but the
// (up to kMR) chains are independent, which keeps the FMA unit fed and
// shares each B load across rows. This matters most for the N == 1 GEMV
// case (dense forward at batch 1), which never sees the full microkernel.
void EdgeKernel(int mr, int nr, int K, const float* A, int lda, const float* B,
                int ldb, const float* bias, float* C, int ldc) {
  int n = 0;
  for (; n + simd::kLanes <= nr; n += simd::kLanes) {
    VecF acc[kMR];
    for (int m = 0; m < mr; ++m) {
      acc[m] = VecF::Broadcast(bias != nullptr ? bias[m] : 0.0f);
    }
    for (int k = 0; k < K; ++k) {
      const VecF b = VecF::Load(B + static_cast<size_t>(k) * ldb + n);
      for (int m = 0; m < mr; ++m) {
        acc[m] = VecF::Fma(VecF::Broadcast(A[static_cast<size_t>(m) * lda + k]),
                           b, acc[m]);
      }
    }
    for (int m = 0; m < mr; ++m) {
      acc[m].Store(C + static_cast<size_t>(m) * ldc + n);
    }
  }
  for (; n < nr; ++n) {
    float acc[kMR];
    for (int m = 0; m < mr; ++m) {
      acc[m] = bias != nullptr ? bias[m] : 0.0f;
    }
    const float* b_col = B + n;
    for (int k = 0; k < K; ++k) {
      const float b = b_col[static_cast<size_t>(k) * ldb];
      for (int m = 0; m < mr; ++m) {
        acc[m] = std::fma(A[static_cast<size_t>(m) * lda + k], b, acc[m]);
      }
    }
    for (int m = 0; m < mr; ++m) {
      C[static_cast<size_t>(m) * ldc + n] = acc[m];
    }
  }
}

// M == 1 (GEMV): the blocked kernels would walk B column-block by
// column-block — strided loads that waste half of every cache line. With k
// outermost, B streams row-major and the single C row stays hot in L1.
// Interchanging the loops does not touch the numerics: element C[n] still
// receives bias + an ascending-k chain of Fma(A[k], B[k][n], ·), the exact
// chain the blocked kernels produce. When C starts at +0 (bias == nullptr),
// rows with A[k] == 0 are skipped: a ±0 product added to +0 or to a nonzero
// running value cannot change it (and an exact nonzero cancellation rounds
// to +0 in round-to-nearest, so the accumulator is never -0), making the
// skip bit-invisible — on ReLU-masked gradient rows it drops about half the
// work. This is the dense grad-input shape at batch 1, i.e. the per-sample
// gradient-ascent inner loop.
void Gemv(int N, int K, const float* A, const float* B, int ldb,
          const float* bias, float* C) {
  const float b0 = bias != nullptr ? bias[0] : 0.0f;
  const bool skip_zeros = bias == nullptr;
  std::fill(C, C + N, b0);
  for (int k = 0; k < K; ++k) {
    const float a = A[k];
    if (skip_zeros && a == 0.0f) {
      continue;
    }
    const float* b_row = B + static_cast<size_t>(k) * ldb;
    const VecF av = VecF::Broadcast(a);
    int n = 0;
    for (; n + simd::kLanes <= N; n += simd::kLanes) {
      VecF::Fma(av, VecF::Load(b_row + n), VecF::Load(C + n)).Store(C + n);
    }
    for (; n < N; ++n) {
      C[n] = std::fma(a, b_row[n], C[n]);
    }
  }
}

void GemmRows(int m_begin, int m_end, int N, int K, const float* A, int lda,
              const float* B, int ldb, const float* bias, float* C, int ldc) {
  for (int m0 = m_begin; m0 < m_end; m0 += kMR) {
    const int mr = std::min(kMR, m_end - m0);
    const float* a_blk = A + static_cast<size_t>(m0) * lda;
    const float* bias_blk = bias != nullptr ? bias + m0 : nullptr;
    float* c_blk = C + static_cast<size_t>(m0) * ldc;
    int n0 = 0;
    if (mr == kMR) {
      for (; n0 + kNR <= N; n0 += kNR) {
        MicroKernel(K, a_blk, lda, B + n0, ldb, bias_blk, c_blk + n0, ldc);
      }
    }
    if (n0 < N) {
      EdgeKernel(mr, N - n0, K, a_blk, lda, B + n0, ldb, bias_blk, c_blk + n0,
                 ldc);
    }
  }
}

}  // namespace

void GemmBias(int M, int N, int K, const float* A, int lda, const float* B,
              int ldb, const float* bias, float* C, int ldc) {
  if (M <= 0 || N <= 0) {
    return;
  }
  if (M == 1) {
    Gemv(N, K, A, B, ldb, bias, C);
    return;
  }
  const int64_t work = static_cast<int64_t>(M) * N * K;
  if (work >= kIntraOpMinWork && M >= 2 * kMR && IntraOpParallelismAvailable()) {
    // Partition over row blocks only: each output element is still produced
    // by exactly one ascending-k chain, so the thread count cannot change a
    // bit of the result.
    const int threads = ThreadPool::Global().num_threads() + 1;
    const int max_blocks = (M + kMR - 1) / kMR;
    const int blocks = std::min(max_blocks, threads);
    const int rows_per_block = ((M + blocks - 1) / blocks + kMR - 1) / kMR * kMR;
    const int actual_blocks = (M + rows_per_block - 1) / rows_per_block;
    ParallelFor(actual_blocks, [&](int64_t blk) {
      const int m_begin = static_cast<int>(blk) * rows_per_block;
      const int m_end = std::min(M, m_begin + rows_per_block);
      GemmRows(m_begin, m_end, N, K, A, lda, B, ldb, bias, C, ldc);
    });
  } else {
    GemmRows(0, M, N, K, A, lda, B, ldb, bias, C, ldc);
  }
}

void Im2Col(const float* x, int channels, int in_h, int in_w, int kernel_h,
            int kernel_w, int stride, int padding, int out_h, int out_w,
            float* col) {
  const size_t n = static_cast<size_t>(out_h) * out_w;
  float* dst = col;  // Row (c, ky, kx) of the [C*KH*KW, OH*OW] matrix.
  for (int c = 0; c < channels; ++c) {
    const float* plane = x + static_cast<size_t>(c) * in_h * in_w;
    for (int ky = 0; ky < kernel_h; ++ky) {
      for (int kx = 0; kx < kernel_w; ++kx, dst += n) {
        for (int oy = 0; oy < out_h; ++oy) {
          float* out_row = dst + static_cast<size_t>(oy) * out_w;
          const int iy = oy * stride - padding + ky;
          if (iy < 0 || iy >= in_h) {
            std::fill(out_row, out_row + out_w, 0.0f);
            continue;
          }
          const float* in_row = plane + static_cast<size_t>(iy) * in_w;
          const int ix0 = kx - padding;
          if (stride == 1) {
            // Contiguous copy with zero borders where ix = ox + ix0 runs
            // outside [0, in_w).
            const int lo = std::min(out_w, std::max(0, -ix0));
            const int hi = std::max(lo, std::min(out_w, in_w - ix0));
            std::fill(out_row, out_row + lo, 0.0f);
            std::copy(in_row + ix0 + lo, in_row + ix0 + hi, out_row + lo);
            std::fill(out_row + hi, out_row + out_w, 0.0f);
          } else {
            for (int ox = 0; ox < out_w; ++ox) {
              const int ix = ox * stride + ix0;
              out_row[ox] = (ix >= 0 && ix < in_w) ? in_row[ix] : 0.0f;
            }
          }
        }
      }
    }
  }
}

void Col2Im(const float* col, int channels, int in_h, int in_w, int kernel_h,
            int kernel_w, int stride, int padding, int out_h, int out_w,
            float* x) {
  std::fill(x, x + static_cast<size_t>(channels) * in_h * in_w, 0.0f);
  const size_t n = static_cast<size_t>(out_h) * out_w;
  const float* src = col;  // Row (c, ky, kx) of the [C*KH*KW, OH*OW] matrix.
  for (int c = 0; c < channels; ++c) {
    float* plane = x + static_cast<size_t>(c) * in_h * in_w;
    for (int ky = 0; ky < kernel_h; ++ky) {
      for (int kx = 0; kx < kernel_w; ++kx, src += n) {
        for (int oy = 0; oy < out_h; ++oy) {
          const int iy = oy * stride - padding + ky;
          if (iy < 0 || iy >= in_h) {
            continue;  // The whole row landed in the padding border.
          }
          const float* col_row = src + static_cast<size_t>(oy) * out_w;
          float* in_row = plane + static_cast<size_t>(iy) * in_w;
          const int ix0 = kx - padding;
          if (stride == 1) {
            // Contiguous accumulate over the in-bounds span, mirroring the
            // Im2Col fast path: ix = ox + ix0 must stay inside [0, in_w).
            const int lo = std::min(out_w, std::max(0, -ix0));
            const int hi = std::max(lo, std::min(out_w, in_w - ix0));
            for (int ox = lo; ox < hi; ++ox) {
              in_row[ox + ix0] += col_row[ox];
            }
          } else {
            for (int ox = 0; ox < out_w; ++ox) {
              const int ix = ox * stride + ix0;
              if (ix >= 0 && ix < in_w) {
                in_row[ix] += col_row[ox];
              }
            }
          }
        }
      }
    }
  }
}

void TransposeMatrix(const float* in, int rows, int cols, float* out) {
  for (int i = 0; i < rows; ++i) {
    const float* in_row = in + static_cast<size_t>(i) * cols;
    for (int j = 0; j < cols; ++j) {
      out[static_cast<size_t>(j) * rows + i] = in_row[j];
    }
  }
}

}  // namespace dx

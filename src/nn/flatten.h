// Flatten: reshapes any input to 1-D. No parameters, no neurons.
#ifndef DX_SRC_NN_FLATTEN_H_
#define DX_SRC_NN_FLATTEN_H_

#include <algorithm>
#include <string>
#include <vector>

#include "src/nn/layer.h"

namespace dx {

class Flatten : public Layer {
 public:
  Flatten() = default;

  std::string Kind() const override { return "flatten"; }
  std::string Describe() const override { return "flatten"; }
  Shape OutputShape(const Shape& input_shape) const override {
    return {static_cast<int>(NumElements(input_shape))};
  }
  Tensor Forward(const Tensor& input, bool /*training*/, Rng* /*rng*/,
                 Tensor* /*aux*/) const override {
    return input.Reshape({static_cast<int>(input.numel())});
  }
  Tensor Backward(const Tensor& input, const Tensor& /*output*/, const Tensor& grad_output,
                  const Tensor& /*aux*/, std::vector<Tensor>* /*param_grads*/) const override {
    return grad_output.Reshape(input.shape());
  }
  // Flattening a batch is a pure reshape: [B, ...] -> [B, prod(...)].
  Tensor ForwardBatch(const Tensor& input, int batch, bool /*training*/, Rng* /*rng*/,
                      Tensor* /*aux*/) const override {
    return input.Reshape({batch, static_cast<int>(input.numel() / batch)});
  }
  Tensor BackwardBatch(const Tensor& input, const Tensor& /*output*/,
                       const Tensor& grad_output, const Tensor& /*aux*/, int /*batch*/,
                       std::vector<Tensor>* /*param_grads*/) const override {
    return grad_output.Reshape(input.shape());
  }
  // Zero-allocation variants: a flatten between distinct slabs is a memcpy
  // (the by-value path's reshape must deep-copy anyway).
  void ForwardBatchInto(const Tensor& input, int /*batch*/, bool /*training*/,
                        Rng* /*rng*/, Tensor* output, Tensor* /*aux*/,
                        Workspace* /*ws*/) const override {
    std::copy(input.data(), input.data() + input.numel(), output->data());
  }
  void BackwardBatchInto(const Tensor& /*input*/, const Tensor& /*output*/,
                         const Tensor& grad_output, const Tensor& /*aux*/, int /*batch*/,
                         Tensor* grad_input, Workspace* /*ws*/,
                         std::vector<Tensor>* /*param_grads*/) const override {
    std::copy(grad_output.data(), grad_output.data() + grad_output.numel(),
              grad_input->data());
  }
  void SerializeConfig(BinaryWriter& /*writer*/) const override {}
};

}  // namespace dx

#endif  // DX_SRC_NN_FLATTEN_H_

#include "src/nn/activation.h"

#include <cmath>
#include <stdexcept>

#include "src/tensor/simd.h"

namespace dx {
namespace {

using simd::VecF;

// The elementwise activation transforms below are vectorized with the
// lane-parallel ops of src/tensor/simd.h. Each lane performs the exact
// operation sequence of the old scalar loop (one correctly-rounded IEEE op
// per step, no reassociation), so results are bit-identical to the scalar
// code at every SIMD width — these helpers are shared by the by-value
// oracle and the ExecutionPlan kernels without forking numerics. The
// transcendental activations (tanh, sigmoid forward) stay scalar: libm has
// no vector counterpart here and their cost is dominated by the exp/tanh
// call, not the loop.

void ReluInPlace(float* p, int64_t n) {
  int64_t i = 0;
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    VecF::Relu(VecF::Load(p + i)).Store(p + i);
  }
  for (; i < n; ++i) {
    p[i] = p[i] > 0.0f ? p[i] : 0.0f;
  }
}

// pg[i] = y[i] > 0 ? pg[i] : 0 (NaN y keeps pg — see simd.h ReluGrad).
void ReluGradInPlace(const float* py, float* pg, int64_t n) {
  int64_t i = 0;
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    VecF::ReluGrad(VecF::Load(py + i), VecF::Load(pg + i)).Store(pg + i);
  }
  for (; i < n; ++i) {
    if (py[i] <= 0.0f) {
      pg[i] = 0.0f;
    }
  }
}

// pg[i] *= 1 - y[i]^2, associated exactly as the scalar loop: mul, sub, mul.
void TanhGradInPlace(const float* py, float* pg, int64_t n) {
  const VecF one = VecF::Broadcast(1.0f);
  int64_t i = 0;
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    const VecF y = VecF::Load(py + i);
    VecF::Mul(VecF::Load(pg + i), VecF::Sub(one, VecF::Mul(y, y))).Store(pg + i);
  }
  for (; i < n; ++i) {
    pg[i] *= 1.0f - py[i] * py[i];
  }
}

// pg[i] *= y[i] * (1 - y[i]), associated exactly as the scalar loop.
void SigmoidGradInPlace(const float* py, float* pg, int64_t n) {
  const VecF one = VecF::Broadcast(1.0f);
  int64_t i = 0;
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    const VecF y = VecF::Load(py + i);
    VecF::Mul(VecF::Load(pg + i), VecF::Mul(y, VecF::Sub(one, y))).Store(pg + i);
  }
  for (; i < n; ++i) {
    pg[i] *= py[i] * (1.0f - py[i]);
  }
}

}  // namespace

void ApplyActivation(Activation act, Tensor* t) {
  float* p = t->data();
  const int64_t n = t->numel();
  switch (act) {
    case Activation::kNone:
      return;
    case Activation::kRelu:
      ReluInPlace(p, n);
      return;
    case Activation::kTanh:
      for (int64_t i = 0; i < n; ++i) {
        p[i] = std::tanh(p[i]);
      }
      return;
    case Activation::kSigmoid:
      for (int64_t i = 0; i < n; ++i) {
        p[i] = 1.0f / (1.0f + std::exp(-p[i]));
      }
      return;
  }
  throw std::invalid_argument("unknown activation");
}

void ApplyActivationGrad(Activation act, const Tensor& y, Tensor* grad) {
  if (y.shape() != grad->shape()) {
    throw std::invalid_argument("ApplyActivationGrad shape mismatch");
  }
  const float* py = y.data();
  float* pg = grad->data();
  const int64_t n = y.numel();
  switch (act) {
    case Activation::kNone:
      return;
    case Activation::kRelu:
      ReluGradInPlace(py, pg, n);
      return;
    case Activation::kTanh:
      TanhGradInPlace(py, pg, n);
      return;
    case Activation::kSigmoid:
      SigmoidGradInPlace(py, pg, n);
      return;
  }
  throw std::invalid_argument("unknown activation");
}

std::string ActivationName(Activation act) {
  switch (act) {
    case Activation::kNone:
      return "none";
    case Activation::kRelu:
      return "relu";
    case Activation::kTanh:
      return "tanh";
    case Activation::kSigmoid:
      return "sigmoid";
  }
  return "none";
}

Activation ActivationFromName(const std::string& name) {
  if (name == "none") return Activation::kNone;
  if (name == "relu") return Activation::kRelu;
  if (name == "tanh") return Activation::kTanh;
  if (name == "sigmoid") return Activation::kSigmoid;
  throw std::invalid_argument("unknown activation name: " + name);
}

}  // namespace dx

#include "src/nn/activation.h"

#include <cmath>
#include <stdexcept>

namespace dx {

void ApplyActivation(Activation act, Tensor* t) {
  float* p = t->data();
  const int64_t n = t->numel();
  switch (act) {
    case Activation::kNone:
      return;
    case Activation::kRelu:
      for (int64_t i = 0; i < n; ++i) {
        p[i] = p[i] > 0.0f ? p[i] : 0.0f;
      }
      return;
    case Activation::kTanh:
      for (int64_t i = 0; i < n; ++i) {
        p[i] = std::tanh(p[i]);
      }
      return;
    case Activation::kSigmoid:
      for (int64_t i = 0; i < n; ++i) {
        p[i] = 1.0f / (1.0f + std::exp(-p[i]));
      }
      return;
  }
  throw std::invalid_argument("unknown activation");
}

void ApplyActivationGrad(Activation act, const Tensor& y, Tensor* grad) {
  if (y.shape() != grad->shape()) {
    throw std::invalid_argument("ApplyActivationGrad shape mismatch");
  }
  const float* py = y.data();
  float* pg = grad->data();
  const int64_t n = y.numel();
  switch (act) {
    case Activation::kNone:
      return;
    case Activation::kRelu:
      for (int64_t i = 0; i < n; ++i) {
        if (py[i] <= 0.0f) {
          pg[i] = 0.0f;
        }
      }
      return;
    case Activation::kTanh:
      for (int64_t i = 0; i < n; ++i) {
        pg[i] *= 1.0f - py[i] * py[i];
      }
      return;
    case Activation::kSigmoid:
      for (int64_t i = 0; i < n; ++i) {
        pg[i] *= py[i] * (1.0f - py[i]);
      }
      return;
  }
  throw std::invalid_argument("unknown activation");
}

std::string ActivationName(Activation act) {
  switch (act) {
    case Activation::kNone:
      return "none";
    case Activation::kRelu:
      return "relu";
    case Activation::kTanh:
      return "tanh";
    case Activation::kSigmoid:
      return "sigmoid";
  }
  return "none";
}

Activation ActivationFromName(const std::string& name) {
  if (name == "none") return Activation::kNone;
  if (name == "relu") return Activation::kRelu;
  if (name == "tanh") return Activation::kTanh;
  if (name == "sigmoid") return Activation::kSigmoid;
  throw std::invalid_argument("unknown activation name: " + name);
}

}  // namespace dx

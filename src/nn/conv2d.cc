#include "src/nn/conv2d.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "src/nn/gemm.h"
#include "src/tensor/workspace.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace dx {
namespace {

int ConvOutExtent(int in, int kernel, int stride, int padding) {
  const int padded = in + 2 * padding - kernel;
  if (padded < 0) {
    throw std::invalid_argument("Conv2D: kernel larger than padded input");
  }
  return padded / stride + 1;
}

// Per-sample geometry shared by the scalar and batched kernels.
struct ConvGeom {
  int in_channels, out_channels, kernel_h, kernel_w, stride, padding;
  int in_h, in_w, out_h, out_w;
  int64_t in_size() const { return static_cast<int64_t>(in_channels) * in_h * in_w; }
  int64_t out_size() const { return static_cast<int64_t>(out_channels) * out_h * out_w; }
};

// The convolution proper for one sample (pre-activation). Both Forward and
// ForwardBatch run exactly this code, so batching cannot change a result.
void ConvForwardKernel(const ConvGeom& g, const float* px, const float* pw,
                       const float* pb, float* py) {
  for (int oc = 0; oc < g.out_channels; ++oc) {
    float* out_plane = py + static_cast<size_t>(oc) * g.out_h * g.out_w;
    const float* w_filter =
        pw + static_cast<size_t>(oc) * g.in_channels * g.kernel_h * g.kernel_w;
    const float b = pb[oc];
    for (int oy = 0; oy < g.out_h; ++oy) {
      for (int ox = 0; ox < g.out_w; ++ox) {
        out_plane[oy * g.out_w + ox] = b;
      }
    }
    for (int ic = 0; ic < g.in_channels; ++ic) {
      const float* in_plane = px + static_cast<size_t>(ic) * g.in_h * g.in_w;
      const float* w_plane = w_filter + static_cast<size_t>(ic) * g.kernel_h * g.kernel_w;
      for (int oy = 0; oy < g.out_h; ++oy) {
        const int iy0 = oy * g.stride - g.padding;
        for (int ky = 0; ky < g.kernel_h; ++ky) {
          const int iy = iy0 + ky;
          if (iy < 0 || iy >= g.in_h) {
            continue;
          }
          const float* in_row = in_plane + static_cast<size_t>(iy) * g.in_w;
          const float* w_row = w_plane + static_cast<size_t>(ky) * g.kernel_w;
          float* out_row = out_plane + static_cast<size_t>(oy) * g.out_w;
          for (int ox = 0; ox < g.out_w; ++ox) {
            const int ix0 = ox * g.stride - g.padding;
            float acc = 0.0f;
            for (int kx = 0; kx < g.kernel_w; ++kx) {
              const int ix = ix0 + kx;
              if (ix >= 0 && ix < g.in_w) {
                acc += w_row[kx] * in_row[ix];
              }
            }
            out_row[ox] += acc;
          }
        }
      }
    }
  }
}

// Per-sample gradient kernel (post-activation grad already folded into pg).
void ConvBackwardKernel(const ConvGeom& g, const float* px, const float* pw,
                        const float* pg, float* pgi, float* gw_base, float* gb) {
  for (int oc = 0; oc < g.out_channels; ++oc) {
    const float* g_plane = pg + static_cast<size_t>(oc) * g.out_h * g.out_w;
    const float* w_filter =
        pw + static_cast<size_t>(oc) * g.in_channels * g.kernel_h * g.kernel_w;
    float* gw_filter =
        gw_base != nullptr
            ? gw_base + static_cast<size_t>(oc) * g.in_channels * g.kernel_h * g.kernel_w
            : nullptr;
    if (gb != nullptr) {
      double acc = 0.0;
      for (int i = 0; i < g.out_h * g.out_w; ++i) {
        acc += g_plane[i];
      }
      gb[oc] += static_cast<float>(acc);
    }
    for (int ic = 0; ic < g.in_channels; ++ic) {
      const float* in_plane = px + static_cast<size_t>(ic) * g.in_h * g.in_w;
      const float* w_plane = w_filter + static_cast<size_t>(ic) * g.kernel_h * g.kernel_w;
      float* gi_plane = pgi + static_cast<size_t>(ic) * g.in_h * g.in_w;
      float* gw_plane =
          gw_filter != nullptr ? gw_filter + static_cast<size_t>(ic) * g.kernel_h * g.kernel_w
                               : nullptr;
      for (int oy = 0; oy < g.out_h; ++oy) {
        const int iy0 = oy * g.stride - g.padding;
        const float* g_row = g_plane + static_cast<size_t>(oy) * g.out_w;
        for (int ky = 0; ky < g.kernel_h; ++ky) {
          const int iy = iy0 + ky;
          if (iy < 0 || iy >= g.in_h) {
            continue;
          }
          const float* in_row = in_plane + static_cast<size_t>(iy) * g.in_w;
          float* gi_row = gi_plane + static_cast<size_t>(iy) * g.in_w;
          const float* w_row = w_plane + static_cast<size_t>(ky) * g.kernel_w;
          float* gw_row =
              gw_plane != nullptr ? gw_plane + static_cast<size_t>(ky) * g.kernel_w : nullptr;
          for (int ox = 0; ox < g.out_w; ++ox) {
            const float gv = g_row[ox];
            if (gv == 0.0f) {
              continue;
            }
            const int ix0 = ox * g.stride - g.padding;
            for (int kx = 0; kx < g.kernel_w; ++kx) {
              const int ix = ix0 + kx;
              if (ix < 0 || ix >= g.in_w) {
                continue;
              }
              gi_row[ix] += gv * w_row[kx];
              if (gw_row != nullptr) {
                gw_row[kx] += gv * in_row[ix];
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace

Conv2D::Conv2D(int in_channels, int out_channels, int kernel_h, int kernel_w, int stride,
               int padding, Activation act)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_h_(kernel_h),
      kernel_w_(kernel_w),
      stride_(stride),
      padding_(padding),
      act_(act),
      weight_({out_channels, in_channels, kernel_h, kernel_w}),
      bias_({out_channels}) {
  if (in_channels <= 0 || out_channels <= 0 || kernel_h <= 0 || kernel_w <= 0 ||
      stride <= 0 || padding < 0) {
    throw std::invalid_argument("Conv2D: bad constructor arguments");
  }
}

void Conv2D::InitParams(Rng& rng, WeightInit init) {
  const float fan_in = static_cast<float>(in_channels_ * kernel_h_ * kernel_w_);
  const float fan_out = static_cast<float>(out_channels_ * kernel_h_ * kernel_w_);
  switch (init) {
    case WeightInit::kGlorotUniform: {
      const float limit = std::sqrt(6.0f / (fan_in + fan_out));
      weight_ = Tensor::RandUniform(weight_.shape(), rng, -limit, limit);
      break;
    }
    case WeightInit::kHeNormal:
      weight_ = Tensor::Randn(weight_.shape(), rng, std::sqrt(2.0f / fan_in));
      break;
    case WeightInit::kNormalized: {
      weight_ = Tensor::Randn(weight_.shape(), rng, 1.0f);
      const int64_t per_filter = static_cast<int64_t>(in_channels_) * kernel_h_ * kernel_w_;
      for (int o = 0; o < out_channels_; ++o) {
        float* f = weight_.data() + o * per_filter;
        double norm = 0.0;
        for (int64_t i = 0; i < per_filter; ++i) {
          norm += static_cast<double>(f[i]) * f[i];
        }
        const float inv = static_cast<float>(1.0 / std::max(1e-12, std::sqrt(norm)));
        for (int64_t i = 0; i < per_filter; ++i) {
          f[i] *= inv;
        }
      }
      break;
    }
  }
  bias_.Fill(0.0f);
}

std::string Conv2D::Describe() const {
  std::ostringstream out;
  out << "conv2d " << in_channels_ << "->" << out_channels_ << " k" << kernel_h_ << "x"
      << kernel_w_ << " s" << stride_ << " p" << padding_ << " " << ActivationName(act_);
  return out.str();
}

Shape Conv2D::OutputShape(const Shape& input_shape) const {
  if (input_shape.size() != 3 || input_shape[0] != in_channels_) {
    throw std::invalid_argument("Conv2D: expected CHW input with " +
                                std::to_string(in_channels_) + " channels, got " +
                                ShapeToString(input_shape));
  }
  return {out_channels_, ConvOutExtent(input_shape[1], kernel_h_, stride_, padding_),
          ConvOutExtent(input_shape[2], kernel_w_, stride_, padding_)};
}

Tensor Conv2D::Forward(const Tensor& input, bool /*training*/, Rng* /*rng*/,
                       Tensor* /*aux*/) const {
  const Shape out_shape = OutputShape(input.shape());
  const ConvGeom g{in_channels_, out_channels_, kernel_h_,    kernel_w_,
                   stride_,      padding_,      input.dim(1), input.dim(2),
                   out_shape[1], out_shape[2]};
  Tensor out(out_shape);
  ConvForwardKernel(g, input.data(), weight_.data(), bias_.data(), out.data());
  ApplyActivation(act_, &out);
  return out;
}

Tensor Conv2D::ForwardBatch(const Tensor& input, int batch, bool /*training*/,
                            Rng* /*rng*/, Tensor* /*aux*/) const {
  if (input.ndim() != 4 || input.dim(0) != batch) {
    throw std::invalid_argument("Conv2D::ForwardBatch: expected [B, C, H, W] input");
  }
  const Shape sample_shape = {input.dim(1), input.dim(2), input.dim(3)};
  const Shape out_shape = OutputShape(sample_shape);
  const ConvGeom g{in_channels_, out_channels_, kernel_h_,    kernel_w_,
                   stride_,      padding_,      input.dim(2), input.dim(3),
                   out_shape[1], out_shape[2]};
  Tensor out({batch, out_shape[0], out_shape[1], out_shape[2]});
  for (int b = 0; b < batch; ++b) {
    ConvForwardKernel(g, input.data() + static_cast<size_t>(b) * g.in_size(),
                      weight_.data(), bias_.data(),
                      out.data() + static_cast<size_t>(b) * g.out_size());
  }
  ApplyActivation(act_, &out);
  return out;
}

void Conv2D::ForwardBatchInto(const Tensor& input, int batch, bool /*training*/,
                              Rng* /*rng*/, Tensor* output, Tensor* /*aux*/,
                              Workspace* ws) const {
  if (input.ndim() != 4 || input.dim(0) != batch || output->ndim() != 4) {
    throw std::invalid_argument("Conv2D::ForwardBatchInto: expected [B, C, H, W] tensors");
  }
  // Geometry comes from the caller-sized tensors directly — constructing
  // Shape objects here would allocate on every hot-loop call.
  const ConvGeom g{in_channels_,    out_channels_,   kernel_h_,    kernel_w_,
                   stride_,         padding_,        input.dim(2), input.dim(3),
                   output->dim(2),  output->dim(3)};
  if (ws == nullptr) {
    // No arena for the im2col patch matrix (out-of-tree caller): run the
    // scalar reference kernel rather than allocate in what may be a hot loop.
    for (int b = 0; b < batch; ++b) {
      ConvForwardKernel(g, input.data() + static_cast<size_t>(b) * g.in_size(),
                        weight_.data(), bias_.data(),
                        output->data() + static_cast<size_t>(b) * g.out_size());
    }
    ApplyActivation(act_, output);
    return;
  }
  // im2col + GEMM: weights [OC, IC*KH*KW] are already the A matrix row-major;
  // each sample's patches unpack into B = [IC*KH*KW, OH*OW] in the arena.
  // The GEMM contract (ascending-k FMA per element, partitioning only over
  // rows/samples) keeps results invariant to batch width, SIMD width, and
  // thread count; they differ from the scalar oracle only by accumulation
  // order, within test tolerances.
  const int64_t patch_k = static_cast<int64_t>(g.in_channels) * g.kernel_h * g.kernel_w;
  const int64_t patch_n = static_cast<int64_t>(g.out_h) * g.out_w;
  float* col = ws->AcquireFlat(patch_k * patch_n * batch)->data();
  const auto run_sample = [&](int64_t b) {
    float* col_b = col + static_cast<size_t>(b) * patch_k * patch_n;
    Im2Col(input.data() + static_cast<size_t>(b) * g.in_size(), g.in_channels, g.in_h,
           g.in_w, g.kernel_h, g.kernel_w, g.stride, g.padding, g.out_h, g.out_w, col_b);
    GemmBias(g.out_channels, static_cast<int>(patch_n), static_cast<int>(patch_k),
             weight_.data(), static_cast<int>(patch_k), col_b, static_cast<int>(patch_n),
             bias_.data(), output->data() + static_cast<size_t>(b) * g.out_size(),
             static_cast<int>(patch_n));
  };
  const int64_t work_per_sample = static_cast<int64_t>(g.out_channels) * patch_k * patch_n;
  if (batch > 1 && work_per_sample * batch >= (int64_t{1} << 20) &&
      IntraOpParallelismAvailable()) {
    // Samples are independent; nested GemmBias calls see InParallelRegion()
    // and stay serial, so parallelism never exceeds the pool size.
    ParallelFor(batch, run_sample);
  } else {
    for (int b = 0; b < batch; ++b) {
      run_sample(b);
    }
  }
  ApplyActivation(act_, output);
}

Tensor Conv2D::Backward(const Tensor& input, const Tensor& output, const Tensor& grad_output,
                        const Tensor& /*aux*/, std::vector<Tensor>* param_grads) const {
  Tensor grad_pre = grad_output;
  ApplyActivationGrad(act_, output, &grad_pre);
  const ConvGeom g{in_channels_, out_channels_, kernel_h_,     kernel_w_,
                   stride_,      padding_,      input.dim(1),  input.dim(2),
                   output.dim(1), output.dim(2)};
  Tensor grad_in(input.shape());
  CheckParamGrads(param_grads, "Conv2D::Backward");
  ConvBackwardKernel(g, input.data(), weight_.data(), grad_pre.data(), grad_in.data(),
                     GradData(param_grads, 0), GradData(param_grads, 1));
  return grad_in;
}

Tensor Conv2D::BackwardBatch(const Tensor& input, const Tensor& output,
                             const Tensor& grad_output, const Tensor& /*aux*/, int batch,
                             std::vector<Tensor>* param_grads) const {
  Tensor grad_pre = grad_output;  // [B, C, H, W]
  ApplyActivationGrad(act_, output, &grad_pre);
  const ConvGeom g{in_channels_, out_channels_, kernel_h_,     kernel_w_,
                   stride_,      padding_,      input.dim(2),  input.dim(3),
                   output.dim(2), output.dim(3)};
  Tensor grad_in(input.shape());
  CheckParamGrads(param_grads, "Conv2D::BackwardBatch");
  for (int b = 0; b < batch; ++b) {
    ConvBackwardKernel(g, input.data() + static_cast<size_t>(b) * g.in_size(),
                       weight_.data(),
                       grad_pre.data() + static_cast<size_t>(b) * g.out_size(),
                       grad_in.data() + static_cast<size_t>(b) * g.in_size(),
                       GradData(param_grads, 0), GradData(param_grads, 1));
  }
  return grad_in;
}

void Conv2D::BackwardBatchInto(const Tensor& input, const Tensor& output,
                               const Tensor& grad_output, const Tensor& /*aux*/, int batch,
                               Tensor* grad_input, Workspace* ws,
                               std::vector<Tensor>* param_grads) const {
  CheckParamGrads(param_grads, "Conv2D::BackwardBatchInto");
  const ConvGeom g{in_channels_, out_channels_, kernel_h_,     kernel_w_,
                   stride_,      padding_,      input.dim(2),  input.dim(3),
                   output.dim(2), output.dim(3)};
  Tensor* grad_pre = ws->Acquire(output.shape());
  std::copy(grad_output.data(), grad_output.data() + grad_output.numel(),
            grad_pre->data());
  ApplyActivationGrad(act_, output, grad_pre);
  // Grad-input through the kernel layer, mirroring the forward im2col+GEMM:
  // per sample, gcol = W^T · grad_pre (one ascending-oc FMA chain per patch
  // element), then Col2Im scatter-accumulates the column matrix back into
  // image geometry in a fixed order. Per-sample results never depend on the
  // batch, and threading (below) partitions only over samples, so gradients
  // are bit-identical across batch widths, SIMD backends, and thread counts.
  const int64_t patch_k = static_cast<int64_t>(g.in_channels) * g.kernel_h * g.kernel_w;
  const int64_t patch_n = static_cast<int64_t>(g.out_h) * g.out_w;
  float* wt = ws->AcquireFlat(patch_k * g.out_channels)->data();
  TransposeMatrix(weight_.data(), g.out_channels, static_cast<int>(patch_k), wt);
  float* gcol = ws->AcquireFlat(patch_k * patch_n * batch)->data();
  const auto run_sample = [&](int64_t b) {
    float* gcol_b = gcol + static_cast<size_t>(b) * patch_k * patch_n;
    GemmBias(static_cast<int>(patch_k), static_cast<int>(patch_n), g.out_channels, wt,
             g.out_channels, grad_pre->data() + static_cast<size_t>(b) * g.out_size(),
             static_cast<int>(patch_n), /*bias=*/nullptr, gcol_b,
             static_cast<int>(patch_n));
    Col2Im(gcol_b, g.in_channels, g.in_h, g.in_w, g.kernel_h, g.kernel_w, g.stride,
           g.padding, g.out_h, g.out_w,
           grad_input->data() + static_cast<size_t>(b) * g.in_size());
  };
  const int64_t work_per_sample = static_cast<int64_t>(g.out_channels) * patch_k * patch_n;
  if (batch > 1 && work_per_sample * batch >= (int64_t{1} << 20) &&
      IntraOpParallelismAvailable()) {
    // Samples write disjoint grad_input regions; nested GemmBias calls see
    // InParallelRegion() and stay serial, exactly like the forward path.
    ParallelFor(batch, run_sample);
  } else {
    for (int b = 0; b < batch; ++b) {
      run_sample(b);
    }
  }
  float* gw = GradData(param_grads, 0);
  float* gb = GradData(param_grads, 1);
  if (gw == nullptr && gb == nullptr) {
    return;  // Input-only gradient mode: all dW/db work skipped.
  }
  if (gw != nullptr) {
    // dW = Σ_b grad_pre_b · Im2Col(x_b)^T, one GEMM per sample into scratch,
    // accumulated in batch order (param grads add into the caller's running
    // sum; the cross-sample reduction is why this stage stays serial).
    float* colx = ws->AcquireFlat(patch_k * patch_n)->data();
    float* colxt = ws->AcquireFlat(patch_n * patch_k)->data();
    float* gw_scratch = ws->AcquireFlat(static_cast<int64_t>(g.out_channels) * patch_k)->data();
    const int64_t n = static_cast<int64_t>(g.out_channels) * patch_k;
    for (int b = 0; b < batch; ++b) {
      Im2Col(input.data() + static_cast<size_t>(b) * g.in_size(), g.in_channels, g.in_h,
             g.in_w, g.kernel_h, g.kernel_w, g.stride, g.padding, g.out_h, g.out_w, colx);
      TransposeMatrix(colx, static_cast<int>(patch_k), static_cast<int>(patch_n), colxt);
      GemmBias(g.out_channels, static_cast<int>(patch_k), static_cast<int>(patch_n),
               grad_pre->data() + static_cast<size_t>(b) * g.out_size(),
               static_cast<int>(patch_n), colxt, static_cast<int>(patch_k),
               /*bias=*/nullptr, gw_scratch, static_cast<int>(patch_k));
      for (int64_t i = 0; i < n; ++i) {
        gw[i] += gw_scratch[i];
      }
    }
  }
  if (gb != nullptr) {
    // db[oc] = Σ_b Σ_plane grad_pre: per-sample double plane sums in batch
    // order — the exact reduction of the by-value oracle, so the bias
    // gradient stays bit-identical to it.
    for (int b = 0; b < batch; ++b) {
      const float* pre_b = grad_pre->data() + static_cast<size_t>(b) * g.out_size();
      for (int oc = 0; oc < g.out_channels; ++oc) {
        const float* plane = pre_b + static_cast<size_t>(oc) * patch_n;
        double acc = 0.0;
        for (int64_t i = 0; i < patch_n; ++i) {
          acc += plane[i];
        }
        gb[oc] += static_cast<float>(acc);
      }
    }
  }
}

float Conv2D::NeuronValue(const Tensor& output, int index) const {
  if (index < 0 || index >= out_channels_) {
    throw std::out_of_range("Conv2D::NeuronValue: bad neuron index");
  }
  const int plane = output.dim(1) * output.dim(2);
  const float* p = output.data() + static_cast<size_t>(index) * plane;
  double acc = 0.0;
  for (int i = 0; i < plane; ++i) {
    acc += p[i];
  }
  return static_cast<float>(acc / plane);
}

void Conv2D::AddNeuronSeed(Tensor* seed, int index, float weight) const {
  if (index < 0 || index >= out_channels_) {
    throw std::out_of_range("Conv2D::AddNeuronSeed: bad neuron index");
  }
  const int plane = seed->dim(1) * seed->dim(2);
  float* p = seed->data() + static_cast<size_t>(index) * plane;
  const float w = weight / static_cast<float>(plane);
  for (int i = 0; i < plane; ++i) {
    p[i] += w;
  }
}

void Conv2D::SerializeConfig(BinaryWriter& writer) const {
  writer.WriteI64(in_channels_);
  writer.WriteI64(out_channels_);
  writer.WriteI64(kernel_h_);
  writer.WriteI64(kernel_w_);
  writer.WriteI64(stride_);
  writer.WriteI64(padding_);
  writer.WriteString(ActivationName(act_));
}

}  // namespace dx

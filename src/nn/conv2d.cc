#include "src/nn/conv2d.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "src/util/rng.h"

namespace dx {
namespace {

int ConvOutExtent(int in, int kernel, int stride, int padding) {
  const int padded = in + 2 * padding - kernel;
  if (padded < 0) {
    throw std::invalid_argument("Conv2D: kernel larger than padded input");
  }
  return padded / stride + 1;
}

}  // namespace

Conv2D::Conv2D(int in_channels, int out_channels, int kernel_h, int kernel_w, int stride,
               int padding, Activation act)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_h_(kernel_h),
      kernel_w_(kernel_w),
      stride_(stride),
      padding_(padding),
      act_(act),
      weight_({out_channels, in_channels, kernel_h, kernel_w}),
      bias_({out_channels}) {
  if (in_channels <= 0 || out_channels <= 0 || kernel_h <= 0 || kernel_w <= 0 ||
      stride <= 0 || padding < 0) {
    throw std::invalid_argument("Conv2D: bad constructor arguments");
  }
}

void Conv2D::InitParams(Rng& rng, WeightInit init) {
  const float fan_in = static_cast<float>(in_channels_ * kernel_h_ * kernel_w_);
  const float fan_out = static_cast<float>(out_channels_ * kernel_h_ * kernel_w_);
  switch (init) {
    case WeightInit::kGlorotUniform: {
      const float limit = std::sqrt(6.0f / (fan_in + fan_out));
      weight_ = Tensor::RandUniform(weight_.shape(), rng, -limit, limit);
      break;
    }
    case WeightInit::kHeNormal:
      weight_ = Tensor::Randn(weight_.shape(), rng, std::sqrt(2.0f / fan_in));
      break;
    case WeightInit::kNormalized: {
      weight_ = Tensor::Randn(weight_.shape(), rng, 1.0f);
      const int64_t per_filter = static_cast<int64_t>(in_channels_) * kernel_h_ * kernel_w_;
      for (int o = 0; o < out_channels_; ++o) {
        float* f = weight_.data() + o * per_filter;
        double norm = 0.0;
        for (int64_t i = 0; i < per_filter; ++i) {
          norm += static_cast<double>(f[i]) * f[i];
        }
        const float inv = static_cast<float>(1.0 / std::max(1e-12, std::sqrt(norm)));
        for (int64_t i = 0; i < per_filter; ++i) {
          f[i] *= inv;
        }
      }
      break;
    }
  }
  bias_.Fill(0.0f);
}

std::string Conv2D::Describe() const {
  std::ostringstream out;
  out << "conv2d " << in_channels_ << "->" << out_channels_ << " k" << kernel_h_ << "x"
      << kernel_w_ << " s" << stride_ << " p" << padding_ << " " << ActivationName(act_);
  return out.str();
}

Shape Conv2D::OutputShape(const Shape& input_shape) const {
  if (input_shape.size() != 3 || input_shape[0] != in_channels_) {
    throw std::invalid_argument("Conv2D: expected CHW input with " +
                                std::to_string(in_channels_) + " channels, got " +
                                ShapeToString(input_shape));
  }
  return {out_channels_, ConvOutExtent(input_shape[1], kernel_h_, stride_, padding_),
          ConvOutExtent(input_shape[2], kernel_w_, stride_, padding_)};
}

Tensor Conv2D::Forward(const Tensor& input, bool /*training*/, Rng* /*rng*/,
                       Tensor* /*aux*/) const {
  const Shape out_shape = OutputShape(input.shape());
  const int in_h = input.dim(1);
  const int in_w = input.dim(2);
  const int out_h = out_shape[1];
  const int out_w = out_shape[2];
  Tensor out(out_shape);

  const float* px = input.data();
  const float* pw = weight_.data();
  float* py = out.data();

  for (int oc = 0; oc < out_channels_; ++oc) {
    float* out_plane = py + static_cast<size_t>(oc) * out_h * out_w;
    const float* w_filter =
        pw + static_cast<size_t>(oc) * in_channels_ * kernel_h_ * kernel_w_;
    const float b = bias_[oc];
    for (int oy = 0; oy < out_h; ++oy) {
      for (int ox = 0; ox < out_w; ++ox) {
        out_plane[oy * out_w + ox] = b;
      }
    }
    for (int ic = 0; ic < in_channels_; ++ic) {
      const float* in_plane = px + static_cast<size_t>(ic) * in_h * in_w;
      const float* w_plane = w_filter + static_cast<size_t>(ic) * kernel_h_ * kernel_w_;
      for (int oy = 0; oy < out_h; ++oy) {
        const int iy0 = oy * stride_ - padding_;
        for (int ky = 0; ky < kernel_h_; ++ky) {
          const int iy = iy0 + ky;
          if (iy < 0 || iy >= in_h) {
            continue;
          }
          const float* in_row = in_plane + static_cast<size_t>(iy) * in_w;
          const float* w_row = w_plane + static_cast<size_t>(ky) * kernel_w_;
          float* out_row = out_plane + static_cast<size_t>(oy) * out_w;
          for (int ox = 0; ox < out_w; ++ox) {
            const int ix0 = ox * stride_ - padding_;
            float acc = 0.0f;
            for (int kx = 0; kx < kernel_w_; ++kx) {
              const int ix = ix0 + kx;
              if (ix >= 0 && ix < in_w) {
                acc += w_row[kx] * in_row[ix];
              }
            }
            out_row[ox] += acc;
          }
        }
      }
    }
  }
  ApplyActivation(act_, &out);
  return out;
}

Tensor Conv2D::Backward(const Tensor& input, const Tensor& output, const Tensor& grad_output,
                        const Tensor& /*aux*/, std::vector<Tensor>* param_grads) const {
  Tensor grad_pre = grad_output;
  ApplyActivationGrad(act_, output, &grad_pre);

  const int in_h = input.dim(1);
  const int in_w = input.dim(2);
  const int out_h = output.dim(1);
  const int out_w = output.dim(2);

  Tensor grad_in(input.shape());
  const float* px = input.data();
  const float* pw = weight_.data();
  const float* pg = grad_pre.data();
  float* pgi = grad_in.data();

  Tensor* gw = nullptr;
  Tensor* gb = nullptr;
  if (param_grads != nullptr) {
    if (param_grads->size() != 2) {
      throw std::invalid_argument("Conv2D::Backward: expected 2 param grad tensors");
    }
    gw = &(*param_grads)[0];
    gb = &(*param_grads)[1];
  }

  for (int oc = 0; oc < out_channels_; ++oc) {
    const float* g_plane = pg + static_cast<size_t>(oc) * out_h * out_w;
    const float* w_filter =
        pw + static_cast<size_t>(oc) * in_channels_ * kernel_h_ * kernel_w_;
    float* gw_filter = gw != nullptr
                           ? gw->data() + static_cast<size_t>(oc) * in_channels_ * kernel_h_ *
                                              kernel_w_
                           : nullptr;
    if (gb != nullptr) {
      double acc = 0.0;
      for (int i = 0; i < out_h * out_w; ++i) {
        acc += g_plane[i];
      }
      (*gb)[oc] += static_cast<float>(acc);
    }
    for (int ic = 0; ic < in_channels_; ++ic) {
      const float* in_plane = px + static_cast<size_t>(ic) * in_h * in_w;
      const float* w_plane = w_filter + static_cast<size_t>(ic) * kernel_h_ * kernel_w_;
      float* gi_plane = pgi + static_cast<size_t>(ic) * in_h * in_w;
      float* gw_plane =
          gw_filter != nullptr ? gw_filter + static_cast<size_t>(ic) * kernel_h_ * kernel_w_
                               : nullptr;
      for (int oy = 0; oy < out_h; ++oy) {
        const int iy0 = oy * stride_ - padding_;
        const float* g_row = g_plane + static_cast<size_t>(oy) * out_w;
        for (int ky = 0; ky < kernel_h_; ++ky) {
          const int iy = iy0 + ky;
          if (iy < 0 || iy >= in_h) {
            continue;
          }
          const float* in_row = in_plane + static_cast<size_t>(iy) * in_w;
          float* gi_row = gi_plane + static_cast<size_t>(iy) * in_w;
          const float* w_row = w_plane + static_cast<size_t>(ky) * kernel_w_;
          float* gw_row =
              gw_plane != nullptr ? gw_plane + static_cast<size_t>(ky) * kernel_w_ : nullptr;
          for (int ox = 0; ox < out_w; ++ox) {
            const float g = g_row[ox];
            if (g == 0.0f) {
              continue;
            }
            const int ix0 = ox * stride_ - padding_;
            for (int kx = 0; kx < kernel_w_; ++kx) {
              const int ix = ix0 + kx;
              if (ix < 0 || ix >= in_w) {
                continue;
              }
              gi_row[ix] += g * w_row[kx];
              if (gw_row != nullptr) {
                gw_row[kx] += g * in_row[ix];
              }
            }
          }
        }
      }
    }
  }
  return grad_in;
}

float Conv2D::NeuronValue(const Tensor& output, int index) const {
  if (index < 0 || index >= out_channels_) {
    throw std::out_of_range("Conv2D::NeuronValue: bad neuron index");
  }
  const int plane = output.dim(1) * output.dim(2);
  const float* p = output.data() + static_cast<size_t>(index) * plane;
  double acc = 0.0;
  for (int i = 0; i < plane; ++i) {
    acc += p[i];
  }
  return static_cast<float>(acc / plane);
}

void Conv2D::AddNeuronSeed(Tensor* seed, int index, float weight) const {
  if (index < 0 || index >= out_channels_) {
    throw std::out_of_range("Conv2D::AddNeuronSeed: bad neuron index");
  }
  const int plane = seed->dim(1) * seed->dim(2);
  float* p = seed->data() + static_cast<size_t>(index) * plane;
  const float w = weight / static_cast<float>(plane);
  for (int i = 0; i < plane; ++i) {
    p[i] += w;
  }
}

void Conv2D::SerializeConfig(BinaryWriter& writer) const {
  writer.WriteI64(in_channels_);
  writer.WriteI64(out_channels_);
  writer.WriteI64(kernel_h_);
  writer.WriteI64(kernel_w_);
  writer.WriteI64(stride_);
  writer.WriteI64(padding_);
  writer.WriteString(ActivationName(act_));
}

}  // namespace dx

#include "src/nn/execution_plan.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/tensor/ops.h"
#include "src/util/timer.h"

namespace dx {

ExecutionPlan::ExecutionPlan(const Model& model, int max_batch)
    : model_(&model), capacity_(max_batch) {
  if (max_batch < 1) {
    throw std::invalid_argument("ExecutionPlan: max_batch must be >= 1");
  }
  const int num_layers = model.num_layers();
  if (num_layers == 0) {
    throw std::invalid_argument("ExecutionPlan: model has no layers");
  }
  input_numel_ = NumElements(model.input_shape());

  // Full-capacity slabs up front: later width changes only shrink/grow the
  // leading dimension within this storage (SetBatchDim — allocation-free).
  trace_.batch = 0;
  trace_.input = Tensor(BatchedShape(max_batch, model.input_shape()));
  trace_.outputs.reserve(static_cast<size_t>(num_layers));
  trace_.aux.resize(static_cast<size_t>(num_layers));
  sample_.batch = 1;
  sample_.input = Tensor(BatchedShape(1, model.input_shape()));
  sample_.outputs.reserve(static_cast<size_t>(num_layers));
  sample_.aux.resize(static_cast<size_t>(num_layers));
  bw_.resize(static_cast<size_t>(num_layers));
  fwd_ws_.resize(static_cast<size_t>(num_layers));
  bwd_ws_.resize(static_cast<size_t>(num_layers));
  seeds_.reserve(static_cast<size_t>(num_layers));
  out_numel_.reserve(static_cast<size_t>(num_layers));
  for (int l = 0; l < num_layers; ++l) {
    const Shape& out_shape = model.layer_output_shape(l);
    out_numel_.push_back(NumElements(out_shape));
    trace_.outputs.emplace_back(BatchedShape(max_batch, out_shape));
    sample_.outputs.emplace_back(BatchedShape(1, out_shape));
    seeds_.emplace_back(out_shape);
    if (l >= 1) {
      // Gradient wrt layer l's input == layer l-1's output.
      bw_[static_cast<size_t>(l)] =
          Tensor(BatchedShape(max_batch, model.layer_output_shape(l - 1)));
    }
  }
  bw_input_batch_ = Tensor(BatchedShape(max_batch, model.input_shape()));
  bw_input_sample_ = Tensor(model.input_shape());
  param_slices_ = model.ParamSlices();
  total_param_grads_ = model.Params().size();
}

const BatchTrace& ExecutionPlan::ForwardBatch(const Tensor& input, int width) {
  if (width < 1 || width > capacity_) {
    throw std::invalid_argument("ExecutionPlan::ForwardBatch: width " +
                                std::to_string(width) + " outside [1, " +
                                std::to_string(capacity_) + "]");
  }
  if (input.numel() != input_numel_ * width) {
    throw std::invalid_argument("ExecutionPlan::ForwardBatch: bad input size");
  }
  width_ = width;
  sample_pos_ = -1;
  trace_.batch = width;
  trace_.input.SetBatchDim(width);
  std::copy(input.data(), input.data() + input.numel(), trace_.input.data());
  const Tensor* cur = &trace_.input;
  for (int l = 0; l < model_->num_layers(); ++l) {
    Tensor& out = trace_.outputs[static_cast<size_t>(l)];
    out.SetBatchDim(width);
    Workspace& ws = fwd_ws_[static_cast<size_t>(l)];
    ws.Rewind();
    model_->layer(l).ForwardBatchInto(*cur, width, /*training=*/false, /*rng=*/nullptr,
                                      &out, &trace_.aux[static_cast<size_t>(l)], &ws);
    cur = &out;
  }
  model_->CountForwardPasses(width);
  return trace_;
}

const Tensor& ExecutionPlan::BackwardInputBatch(int from_layer, const Tensor& seed,
                                                std::vector<Tensor>* param_grads) {
  if (width_ == 0) {
    throw std::logic_error("ExecutionPlan::BackwardInputBatch: no trace (run ForwardBatch)");
  }
  if (from_layer < 0 || from_layer >= model_->num_layers()) {
    throw std::out_of_range("ExecutionPlan::BackwardInputBatch: bad from_layer");
  }
  if (seed.numel() != out_numel_[static_cast<size_t>(from_layer)] * width_) {
    throw std::invalid_argument("ExecutionPlan::BackwardInputBatch: seed size mismatch");
  }
  if (param_grads != nullptr && param_grads->size() != total_param_grads_) {
    throw std::invalid_argument("ExecutionPlan::BackwardInputBatch: expected " +
                                std::to_string(total_param_grads_) +
                                " param grad tensors, got " +
                                std::to_string(param_grads->size()));
  }
  Timer timer;
  const Tensor* grad = &seed;
  for (int l = from_layer; l >= 0; --l) {
    Tensor* gi;
    if (l >= 1) {
      gi = &bw_[static_cast<size_t>(l)];
    } else {
      gi = &bw_input_batch_;
    }
    gi->SetBatchDim(width_);
    Workspace& ws = bwd_ws_[static_cast<size_t>(l)];
    ws.Rewind();
    // Input-only mode (param_grads == nullptr, the hot loop) passes nullptr
    // straight through — no view vector, no allocation. The param-grads mode
    // moves each layer's slice of the flat vector out, hands it to the
    // layer, and moves it back (Model::BackwardParams' view pattern).
    std::vector<Tensor> view;
    std::vector<Tensor>* layer_grads = nullptr;
    if (param_grads != nullptr && param_slices_[static_cast<size_t>(l)].second > 0) {
      const auto [offset, count] = param_slices_[static_cast<size_t>(l)];
      view.reserve(static_cast<size_t>(count));
      for (int i = 0; i < count; ++i) {
        view.push_back(std::move((*param_grads)[static_cast<size_t>(offset + i)]));
      }
      layer_grads = &view;
    }
    model_->layer(l).BackwardBatchInto(trace_.LayerInput(l),
                                       trace_.outputs[static_cast<size_t>(l)], *grad,
                                       trace_.aux[static_cast<size_t>(l)], width_, gi,
                                       &ws, layer_grads);
    if (layer_grads != nullptr) {
      const auto [offset, count] = param_slices_[static_cast<size_t>(l)];
      for (int i = 0; i < count; ++i) {
        (*param_grads)[static_cast<size_t>(offset + i)] =
            std::move(view[static_cast<size_t>(i)]);
      }
    }
    grad = gi;
  }
  if (profiling_) {
    backward_seconds_ += timer.ElapsedSeconds();
  }
  return bw_input_batch_;
}

Tensor& ExecutionPlan::AcquireSeed(int layer) {
  if (layer < 0 || layer >= model_->num_layers()) {
    throw std::out_of_range("ExecutionPlan::AcquireSeed: bad layer");
  }
  Tensor& seed = seeds_[static_cast<size_t>(layer)];
  seed.Fill(0.0f);
  return seed;
}

void ExecutionPlan::EnsureSample(int pos) {
  if (pos < 0 || pos >= width_) {
    throw std::out_of_range("ExecutionPlan: sample position out of range");
  }
  if (sample_pos_ == pos) {
    return;
  }
  const float* in = trace_.input.data() + static_cast<size_t>(pos) * input_numel_;
  std::copy(in, in + input_numel_, sample_.input.data());
  for (int l = 0; l < model_->num_layers(); ++l) {
    const int64_t stride = out_numel_[static_cast<size_t>(l)];
    const float* src =
        trace_.outputs[static_cast<size_t>(l)].data() + static_cast<size_t>(pos) * stride;
    std::copy(src, src + stride, sample_.outputs[static_cast<size_t>(l)].data());
    const Tensor& aux = trace_.aux[static_cast<size_t>(l)];
    Tensor& sample_aux = sample_.aux[static_cast<size_t>(l)];
    if (aux.empty()) {
      if (!sample_aux.empty()) {
        sample_aux = Tensor();
      }
      continue;
    }
    const int64_t aux_stride = aux.numel() / width_;
    if (sample_aux.numel() != aux_stride) {  // Warm-up / width change only.
      sample_aux.ResizeInPlace(BatchedShape(1, SampleShape(aux.shape())));
    }
    const float* asrc = aux.data() + static_cast<size_t>(pos) * aux_stride;
    std::copy(asrc, asrc + aux_stride, sample_aux.data());
  }
  sample_pos_ = pos;
}

const Tensor& ExecutionPlan::BackwardSample(int pos, int from_layer, const Tensor& seed) {
  if (width_ == 0) {
    throw std::logic_error("ExecutionPlan::BackwardSample: no trace (run ForwardBatch)");
  }
  if (from_layer < 0 || from_layer >= model_->num_layers()) {
    throw std::out_of_range("ExecutionPlan::BackwardSample: bad from_layer");
  }
  if (seed.numel() != out_numel_[static_cast<size_t>(from_layer)]) {
    throw std::invalid_argument("ExecutionPlan::BackwardSample: seed size mismatch");
  }
  EnsureSample(pos);
  Timer timer;
  const Tensor* grad = &seed;
  for (int l = from_layer; l >= 1; --l) {
    Tensor& gi = bw_[static_cast<size_t>(l)];
    gi.SetBatchDim(1);
    Workspace& ws = bwd_ws_[static_cast<size_t>(l)];
    ws.Rewind();
    model_->layer(l).BackwardBatchInto(sample_.LayerInput(l),
                                       sample_.outputs[static_cast<size_t>(l)], *grad,
                                       sample_.aux[static_cast<size_t>(l)], 1, &gi, &ws,
                                       nullptr);
    grad = &gi;
  }
  bwd_ws_[0].Rewind();
  model_->layer(0).BackwardBatchInto(sample_.input, sample_.outputs[0], *grad,
                                     sample_.aux[0], 1, &bw_input_sample_, &bwd_ws_[0],
                                     nullptr);
  if (profiling_) {
    backward_seconds_ += timer.ElapsedSeconds();
  }
  return bw_input_sample_;
}

const BatchTrace& ExecutionPlan::SampleTrace(int pos) {
  if (width_ == 0) {
    throw std::logic_error("ExecutionPlan::SampleTrace: no trace (run ForwardBatch)");
  }
  EnsureSample(pos);
  return sample_;
}

// ---- Model integration -------------------------------------------------------------------

ExecutionPlan Model::Compile(int max_batch) const {
  return ExecutionPlan(*this, max_batch);
}

const BatchTrace& Model::ForwardBatch(const Tensor& input, ExecutionPlan& plan) const {
  if (&plan.model() != this) {
    throw std::invalid_argument("Model::ForwardBatch: plan compiled for another model");
  }
  if (input.ndim() < 1) {
    throw std::invalid_argument("Model::ForwardBatch: input has no batch dimension");
  }
  return plan.ForwardBatch(input, input.dim(0));
}

const Tensor& Model::BackwardInputBatch(ExecutionPlan& plan, int from_layer,
                                        const Tensor& seed,
                                        std::vector<Tensor>* param_grads) const {
  if (&plan.model() != this) {
    throw std::invalid_argument(
        "Model::BackwardInputBatch: plan compiled for another model");
  }
  return plan.BackwardInputBatch(from_layer, seed, param_grads);
}

}  // namespace dx

// First-order optimizers operating on a model's flat parameter list.
//
// State (momentum / Adam moments) is allocated lazily on the first Step and
// keyed by position, so an optimizer instance is bound to one model.
#ifndef DX_SRC_NN_OPTIMIZER_H_
#define DX_SRC_NN_OPTIMIZER_H_

#include <vector>

#include "src/tensor/tensor.h"

namespace dx {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  // Applies one update; `grads` must align with `params`.
  virtual void Step(const std::vector<Tensor*>& params, const std::vector<Tensor>& grads) = 0;
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(float learning_rate, float momentum = 0.0f);
  void Step(const std::vector<Tensor*>& params, const std::vector<Tensor>& grads) override;

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  explicit Adam(float learning_rate = 1e-3f, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f);
  void Step(const std::vector<Tensor*>& params, const std::vector<Tensor>& grads) override;

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace dx

#endif  // DX_SRC_NN_OPTIMIZER_H_

#include "src/nn/model.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "src/nn/batchnorm.h"
#include "src/nn/conv2d.h"
#include "src/nn/dense.h"
#include "src/nn/dropout.h"
#include "src/nn/flatten.h"
#include "src/nn/pool2d.h"
#include "src/nn/residual.h"
#include "src/nn/softmax_layer.h"
#include "src/tensor/ops.h"
#include "src/util/serialize.h"

namespace dx {

// ---- Layer base defaults -----------------------------------------------------------------

float Layer::NeuronValue(const Tensor& /*output*/, int /*index*/) const {
  throw std::logic_error("layer '" + Kind() + "' has no coverage neurons");
}

void Layer::AddNeuronSeed(Tensor* /*seed*/, int /*index*/, float /*weight*/) const {
  throw std::logic_error("layer '" + Kind() + "' has no coverage neurons");
}

void Layer::CheckParamGrads(const std::vector<Tensor>* param_grads,
                            const char* who) const {
  if (param_grads == nullptr) {
    return;  // Input-gradient only: every parameter's work is skipped.
  }
  const size_t expected = Params().size();
  if (param_grads->size() != expected) {
    throw std::invalid_argument(std::string(who) + ": expected " +
                                std::to_string(expected) +
                                " param grad tensors, got " +
                                std::to_string(param_grads->size()));
  }
}

Tensor Layer::ForwardBatch(const Tensor& input, int batch, bool training, Rng* rng,
                           Tensor* aux) const {
  // Generic fallback: per-sample Forward over slices. Bit-identical to the
  // scalar path by construction; overriding layers must preserve that.
  Tensor out;
  Tensor batched_aux;
  for (int b = 0; b < batch; ++b) {
    Tensor sample_aux;
    const Tensor sample_out = Forward(SliceSample(input, b), training, rng, &sample_aux);
    if (b == 0) {
      out = Tensor(BatchedShape(batch, sample_out.shape()));
      if (!sample_aux.empty()) {
        batched_aux = Tensor(BatchedShape(batch, sample_aux.shape()));
      }
    }
    CopySampleInto(&out, b, sample_out);
    if (!batched_aux.empty()) {
      CopySampleInto(&batched_aux, b, sample_aux);
    }
  }
  if (aux != nullptr && !batched_aux.empty()) {
    *aux = std::move(batched_aux);
  }
  return out;
}

Tensor Layer::BackwardBatch(const Tensor& input, const Tensor& output,
                            const Tensor& grad_output, const Tensor& aux, int batch,
                            std::vector<Tensor>* param_grads) const {
  Tensor grad_in(input.shape());
  for (int b = 0; b < batch; ++b) {
    const Tensor aux_b = aux.empty() ? Tensor() : SliceSample(aux, b);
    CopySampleInto(&grad_in, b,
                   Backward(SliceSample(input, b), SliceSample(output, b),
                            SliceSample(grad_output, b), aux_b, param_grads));
  }
  return grad_in;
}

void Layer::ForwardBatchInto(const Tensor& input, int batch, bool training, Rng* rng,
                             Tensor* output, Tensor* aux, Workspace* /*ws*/) const {
  // Compatibility adapter: by-value kernel, then move into the caller's
  // slots. Out-of-tree layers keep working (at the old allocation cost);
  // built-in layers override with storage-reusing kernels.
  Tensor batched_aux;
  *output = ForwardBatch(input, batch, training, rng, &batched_aux);
  if (!batched_aux.empty()) {
    *aux = std::move(batched_aux);
  }
}

void Layer::BackwardBatchInto(const Tensor& input, const Tensor& output,
                              const Tensor& grad_output, const Tensor& aux, int batch,
                              Tensor* grad_input, Workspace* /*ws*/,
                              std::vector<Tensor>* param_grads) const {
  // grad_output only promises numel: restore the batched shape before
  // handing it to the shape-checking by-value kernel.
  Tensor reshaped;
  const Tensor* go = &grad_output;
  if (grad_output.shape() != output.shape()) {
    reshaped = grad_output.Reshape(output.shape());
    go = &reshaped;
  }
  const Tensor g = BackwardBatch(input, output, *go, aux, batch, param_grads);
  std::copy(g.data(), g.data() + g.numel(), grad_input->data());
}

// ---- BatchTrace --------------------------------------------------------------------------

ForwardTrace BatchTrace::Sample(int index) const {
  ForwardTrace trace;
  trace.input = SliceSample(input, index);
  trace.outputs.reserve(outputs.size());
  trace.aux.resize(outputs.size());
  for (size_t l = 0; l < outputs.size(); ++l) {
    trace.outputs.push_back(SliceSample(outputs[l], index));
    if (!aux[l].empty()) {
      trace.aux[l] = SliceSample(aux[l], index);
    }
  }
  return trace;
}

BatchTrace BatchTrace::Select(const std::vector<int>& indices) const {
  const int n = static_cast<int>(indices.size());
  BatchTrace trace;
  trace.batch = n;
  trace.input = Tensor(BatchedShape(n, SampleShape(input.shape())));
  for (int i = 0; i < n; ++i) {
    CopySampleInto(&trace.input, i, SliceSample(input, indices[static_cast<size_t>(i)]));
  }
  trace.outputs.reserve(outputs.size());
  trace.aux.resize(outputs.size());
  for (size_t l = 0; l < outputs.size(); ++l) {
    Tensor out(BatchedShape(n, SampleShape(outputs[l].shape())));
    for (int i = 0; i < n; ++i) {
      CopySampleInto(&out, i, SliceSample(outputs[l], indices[static_cast<size_t>(i)]));
    }
    trace.outputs.push_back(std::move(out));
    if (!aux[l].empty()) {
      Tensor a(BatchedShape(n, SampleShape(aux[l].shape())));
      for (int i = 0; i < n; ++i) {
        CopySampleInto(&a, i, SliceSample(aux[l], indices[static_cast<size_t>(i)]));
      }
      trace.aux[l] = std::move(a);
    }
  }
  return trace;
}

Tensor BatchTrace::SampleOutput(int layer, int index) const {
  return SliceSample(outputs[static_cast<size_t>(layer)], index);
}

// ---- Model -------------------------------------------------------------------------------

Model::Model(std::string name, Shape input_shape)
    : name_(std::move(name)), input_shape_(std::move(input_shape)) {
  if (NumElements(input_shape_) <= 0) {
    throw std::invalid_argument("Model: input shape must have elements");
  }
}

Model::Model(Model&& other) noexcept
    : name_(std::move(other.name_)),
      input_shape_(std::move(other.input_shape_)),
      layers_(std::move(other.layers_)),
      layer_shapes_(std::move(other.layer_shapes_)),
      forward_passes_(other.forward_passes_.load(std::memory_order_relaxed)) {}

Model& Model::operator=(Model&& other) noexcept {
  if (this != &other) {
    name_ = std::move(other.name_);
    input_shape_ = std::move(other.input_shape_);
    layers_ = std::move(other.layers_);
    layer_shapes_ = std::move(other.layer_shapes_);
    forward_passes_.store(other.forward_passes_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  return *this;
}

void Model::Add(std::unique_ptr<Layer> layer) {
  const Shape& in = layers_.empty() ? input_shape_ : layer_shapes_.back();
  layer_shapes_.push_back(layer->OutputShape(in));  // Throws on incompatibility.
  layers_.push_back(std::move(layer));
}

const Shape& Model::output_shape() const {
  if (layer_shapes_.empty()) {
    throw std::logic_error("Model::output_shape: model has no layers");
  }
  return layer_shapes_.back();
}

ForwardTrace Model::Forward(const Tensor& input, bool training, Rng* rng) const {
  if (input.shape() != input_shape_) {
    throw std::invalid_argument("Model::Forward: input shape " +
                                ShapeToString(input.shape()) + " != expected " +
                                ShapeToString(input_shape_));
  }
  ForwardTrace trace;
  trace.input = input;
  trace.outputs.reserve(layers_.size());
  trace.aux.resize(layers_.size());
  const Tensor* cur = &trace.input;
  for (size_t l = 0; l < layers_.size(); ++l) {
    trace.outputs.push_back(layers_[l]->Forward(*cur, training, rng, &trace.aux[l]));
    cur = &trace.outputs.back();
  }
  forward_passes_.fetch_add(1, std::memory_order_relaxed);
  return trace;
}

BatchTrace Model::ForwardBatch(const Tensor& input, bool training, Rng* rng) const {
  if (input.ndim() != static_cast<int>(input_shape_.size()) + 1 ||
      SampleShape(input.shape()) != input_shape_) {
    throw std::invalid_argument("Model::ForwardBatch: input shape " +
                                ShapeToString(input.shape()) + " != batched " +
                                ShapeToString(input_shape_));
  }
  const int batch = input.dim(0);
  BatchTrace trace;
  trace.batch = batch;
  trace.input = input;
  trace.outputs.reserve(layers_.size());
  trace.aux.resize(layers_.size());
  const Tensor* cur = &trace.input;
  for (size_t l = 0; l < layers_.size(); ++l) {
    trace.outputs.push_back(layers_[l]->ForwardBatch(*cur, batch, training, rng, &trace.aux[l]));
    cur = &trace.outputs.back();
  }
  forward_passes_.fetch_add(batch, std::memory_order_relaxed);
  return trace;
}

Tensor Model::Predict(const Tensor& input) const { return Forward(input).Output(); }

int Model::PredictClass(const Tensor& input) const {
  return static_cast<int>(Predict(input).Argmax());
}

float Model::PredictScalar(const Tensor& input) const { return Predict(input)[0]; }

Tensor Model::BackwardInput(const ForwardTrace& trace, int from_layer, Tensor seed) const {
  return BackwardParams(trace, from_layer, std::move(seed), nullptr);
}

Tensor Model::BackwardInputBatch(const BatchTrace& trace, int from_layer, Tensor seed) const {
  if (from_layer < 0 || from_layer >= num_layers()) {
    throw std::out_of_range("Model::BackwardInputBatch: bad from_layer");
  }
  if (seed.shape() != trace.outputs[static_cast<size_t>(from_layer)].shape()) {
    throw std::invalid_argument("Model::BackwardInputBatch: seed shape mismatch at layer " +
                                std::to_string(from_layer));
  }
  Tensor grad = std::move(seed);
  for (int l = from_layer; l >= 0; --l) {
    grad = layers_[static_cast<size_t>(l)]->BackwardBatch(
        trace.LayerInput(l), trace.outputs[static_cast<size_t>(l)], grad,
        trace.aux[static_cast<size_t>(l)], trace.batch, nullptr);
  }
  return grad;
}

Tensor Model::BackwardParams(const ForwardTrace& trace, int from_layer, Tensor seed,
                             std::vector<Tensor>* param_grads) const {
  if (from_layer < 0 || from_layer >= num_layers()) {
    throw std::out_of_range("Model::BackwardParams: bad from_layer");
  }
  if (seed.shape() != trace.outputs[static_cast<size_t>(from_layer)].shape()) {
    throw std::invalid_argument("Model::BackwardParams: seed shape mismatch at layer " +
                                std::to_string(from_layer));
  }
  const auto slices = param_grads != nullptr ? ParamSlices() : std::vector<std::pair<int, int>>{};
  Tensor grad = std::move(seed);
  for (int l = from_layer; l >= 0; --l) {
    std::vector<Tensor>* layer_grads = nullptr;
    std::vector<Tensor> view;
    if (param_grads != nullptr && slices[static_cast<size_t>(l)].second > 0) {
      // Move the layer's grad tensors out of the flat vector, hand them to the
      // layer, then move them back (avoids copies; tensors are value types).
      const auto [offset, count] = slices[static_cast<size_t>(l)];
      view.reserve(static_cast<size_t>(count));
      for (int i = 0; i < count; ++i) {
        view.push_back(std::move((*param_grads)[static_cast<size_t>(offset + i)]));
      }
      layer_grads = &view;
    }
    grad = layers_[static_cast<size_t>(l)]->Backward(
        trace.LayerInput(l), trace.outputs[static_cast<size_t>(l)], grad,
        trace.aux[static_cast<size_t>(l)], layer_grads);
    if (layer_grads != nullptr) {
      const auto [offset, count] = slices[static_cast<size_t>(l)];
      for (int i = 0; i < count; ++i) {
        (*param_grads)[static_cast<size_t>(offset + i)] = std::move(view[static_cast<size_t>(i)]);
      }
    }
  }
  return grad;
}

std::vector<Tensor*> Model::MutableParams() {
  std::vector<Tensor*> params;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->MutableParams()) {
      params.push_back(p);
    }
  }
  return params;
}

std::vector<const Tensor*> Model::Params() const {
  std::vector<const Tensor*> params;
  for (const auto& layer : layers_) {
    for (const Tensor* p : layer->Params()) {
      params.push_back(p);
    }
  }
  return params;
}

int64_t Model::NumParams() const {
  int64_t n = 0;
  for (const Tensor* p : Params()) {
    n += p->numel();
  }
  return n;
}

std::vector<Tensor> Model::InitParamGrads() const {
  std::vector<Tensor> grads;
  for (const Tensor* p : Params()) {
    grads.emplace_back(p->shape());
  }
  return grads;
}

std::vector<std::pair<int, int>> Model::ParamSlices() const {
  std::vector<std::pair<int, int>> slices;
  slices.reserve(layers_.size());
  int offset = 0;
  for (const auto& layer : layers_) {
    const int count = static_cast<int>(layer->Params().size());
    slices.emplace_back(offset, count);
    offset += count;
  }
  return slices;
}

int Model::TotalNeurons() const {
  int n = 0;
  for (const auto& layer : layers_) {
    n += layer->NumNeurons();
  }
  return n;
}

std::string Model::Summary() const {
  std::ostringstream out;
  out << "Model '" << name_ << "' input " << ShapeToString(input_shape_) << ", "
      << NumParams() << " params, " << TotalNeurons() << " neurons\n";
  for (size_t l = 0; l < layers_.size(); ++l) {
    out << "  [" << l << "] " << layers_[l]->Describe() << " -> "
        << ShapeToString(layer_shapes_[l]) << "\n";
  }
  return out.str();
}

// ---- Serialization -----------------------------------------------------------------------

namespace {

constexpr uint32_t kModelMagic = 0x44585031;  // "DXP1"

std::unique_ptr<Layer> MakeLayer(const std::string& kind, BinaryReader& reader) {
  if (kind == "dense") {
    const int in = static_cast<int>(reader.ReadI64());
    const int out = static_cast<int>(reader.ReadI64());
    const Activation act = ActivationFromName(reader.ReadString());
    return std::make_unique<Dense>(in, out, act);
  }
  if (kind == "conv2d") {
    const int in_ch = static_cast<int>(reader.ReadI64());
    const int out_ch = static_cast<int>(reader.ReadI64());
    const int kh = static_cast<int>(reader.ReadI64());
    const int kw = static_cast<int>(reader.ReadI64());
    const int stride = static_cast<int>(reader.ReadI64());
    const int padding = static_cast<int>(reader.ReadI64());
    const Activation act = ActivationFromName(reader.ReadString());
    return std::make_unique<Conv2D>(in_ch, out_ch, kh, kw, stride, padding, act);
  }
  if (kind == "pool2d") {
    const PoolMode mode = static_cast<PoolMode>(reader.ReadI64());
    const int kernel = static_cast<int>(reader.ReadI64());
    const int stride = static_cast<int>(reader.ReadI64());
    return std::make_unique<Pool2D>(mode, kernel, stride);
  }
  if (kind == "batchnorm") {
    const int features = static_cast<int>(reader.ReadI64());
    const float eps = reader.ReadF32();
    const bool calibrated = reader.ReadI64() != 0;
    auto bn = std::make_unique<BatchNorm>(features, eps);
    if (calibrated) {
      // Statistics arrive with the parameter payload; mark as calibrated via
      // SetStatistics with placeholders that the payload then overwrites.
      bn->SetStatistics(std::vector<float>(static_cast<size_t>(features), 0.0f),
                        std::vector<float>(static_cast<size_t>(features), 1.0f));
    }
    return bn;
  }
  if (kind == "residual") {
    const int in_ch = static_cast<int>(reader.ReadI64());
    const int out_ch = static_cast<int>(reader.ReadI64());
    const int stride = static_cast<int>(reader.ReadI64());
    return std::make_unique<ResidualBlock>(in_ch, out_ch, stride);
  }
  if (kind == "dropout") {
    return std::make_unique<Dropout>(reader.ReadF32());
  }
  if (kind == "flatten") {
    return std::make_unique<Flatten>();
  }
  if (kind == "softmax") {
    return std::make_unique<SoftmaxLayer>();
  }
  throw std::runtime_error("Model::Deserialize: unknown layer kind '" + kind + "'");
}

}  // namespace

std::string Model::Serialize() const {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out);
  writer.WriteU32(kModelMagic);
  writer.WriteString(name_);
  writer.WriteInts(input_shape_);
  writer.WriteU64(layers_.size());
  for (const auto& layer : layers_) {
    writer.WriteString(layer->Kind());
    layer->SerializeConfig(writer);
    const auto params = layer->Params();
    writer.WriteU64(params.size());
    for (const Tensor* p : params) {
      writer.WriteInts(p->shape());
      writer.WriteFloats(p->values());
    }
  }
  return out.str();
}

Model Model::Deserialize(const std::string& blob) {
  std::istringstream in(blob, std::ios::binary);
  BinaryReader reader(in);
  if (reader.ReadU32() != kModelMagic) {
    throw std::runtime_error("Model::Deserialize: bad magic");
  }
  const std::string name = reader.ReadString();
  const std::vector<int> input_shape = reader.ReadInts();
  Model model(name, input_shape);
  const uint64_t num_layers = reader.ReadU64();
  for (uint64_t l = 0; l < num_layers; ++l) {
    const std::string kind = reader.ReadString();
    auto layer = MakeLayer(kind, reader);
    const uint64_t num_params = reader.ReadU64();
    auto params = layer->MutableParams();
    if (num_params != params.size()) {
      throw std::runtime_error("Model::Deserialize: param count mismatch for " + kind);
    }
    for (Tensor* p : params) {
      const std::vector<int> shape = reader.ReadInts();
      std::vector<float> values = reader.ReadFloats();
      *p = Tensor(shape, std::move(values));
    }
    model.Add(std::move(layer));
  }
  return model;
}

}  // namespace dx

#include "src/nn/flatten.h"

// ExecutionPlan: a compiled, pre-sized execution context for one
// (model, max batch) pair — the zero-allocation counterpart of
// Model::ForwardBatch / BackwardInputBatch.
//
// Model::Compile(max_batch) sizes every buffer the batched forward and
// backward passes will ever touch up front:
//
//   * one output slab per layer (the plan-owned BatchTrace),
//   * a width-1 sample trace for per-sample objective backprop and
//     coverage updates,
//   * the backward gradient chain (one buffer per layer boundary) plus
//     batched and per-sample final input-gradient buffers,
//   * per-layer seed buffers for objective gradients, and
//   * a Workspace arena (src/tensor/workspace.h) for layer-kernel scratch
//     (dense transpose, activation-grad intermediates, residual recompute).
//
// After the plan has executed once at a given width ("warm-up"), every
// subsequent ForwardBatch / BackwardSample / SampleTrace call performs ZERO
// heap allocations: slabs are resized in place within reserved capacity and
// the arena reuses its slots. One caveat: the batched BackwardInputBatch and
// the per-sample BackwardSample share the per-layer backward scratch arenas,
// so *alternating* between them each iteration flips the scratch shapes
// between [width, ...] and [1, ...] and re-allocates Shape storage per flip —
// steady-state zero-allocation holds for a stable call pattern (the executor
// hot loop uses BackwardSample only; tests/alloc_test.cc enforces that
// path).
//
// Numerics: the plan runs the Layer::*Into kernels, whose hot paths (Dense,
// Conv2D) use im2col/GEMM + SIMD (src/nn/gemm.h, src/tensor/simd.h) in BOTH
// directions — the backward runs grad-input as a transposed-weight GEMM
// (conv scatters the column gradient back through Col2Im) and grad-weight as
// a GEMM against the im2col patch matrix. Plan results therefore match the
// by-value scalar oracle within the kernel ULP/abs tolerances of
// tests/test_util.h (forward tolerance forward, backward tolerance backward)
// rather than bit-for-bit. Plan results ARE bit-identical across SIMD
// backends, batch widths, worker counts, and intra-op thread counts — every
// output element is one fixed-order FMA chain and threading only partitions
// independent output rows (or samples), so the batch/worker determinism
// guarantee is unchanged.
//
// Lifetime & invalidation: the plan borrows the model. Weight *values* may
// change between calls (kernels read them live), but structural changes
// (adding layers) invalidate the plan — recompile. Width may vary per call
// in [1, capacity]; compiling a larger batch later means a new plan.
//
// Not thread-safe: one plan per execution context (the batched executor
// pools one plan set per concurrent chunk).
#ifndef DX_SRC_NN_EXECUTION_PLAN_H_
#define DX_SRC_NN_EXECUTION_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/nn/layer.h"
#include "src/nn/model.h"
#include "src/tensor/tensor.h"
#include "src/tensor/workspace.h"

namespace dx {

class ExecutionPlan {
 public:
  // Prefer Model::Compile(max_batch).
  ExecutionPlan(const Model& model, int max_batch);

  ExecutionPlan(ExecutionPlan&&) = default;
  ExecutionPlan& operator=(ExecutionPlan&&) = default;

  const Model& model() const { return *model_; }
  int capacity() const { return capacity_; }
  // Width of the current trace (0 before the first forward).
  int width() const { return width_; }

  // Runs the model over `input` ([width, ...input_shape] data; only numel is
  // inspected) into the plan-owned trace and returns it. Counts `width`
  // forward passes on the model, exactly like Model::ForwardBatch.
  const BatchTrace& ForwardBatch(const Tensor& input, int width);
  // The current trace (valid after ForwardBatch; width() samples wide).
  const BatchTrace& trace() const { return trace_; }

  // Batched backward through the current trace: d(seed·out_from)/d(input),
  // seed shaped like trace().outputs[from_layer]. Returns a reused
  // [width, ...input_shape] buffer matching Model::BackwardInputBatch within
  // the kernel backward tolerance (see the numerics note above).
  //
  // `param_grads` selects the gradient mode. The default (nullptr) is
  // INPUT-ONLY: no parameter gradient is computed or allocated anywhere in
  // the chain — the mode the gradient-ascent hot loop runs in, and the only
  // mode with the steady-state zero-allocation guarantee. Passing a vector
  // aligned with Model::MutableParams() (see InitParamGrads) additionally
  // accumulates dL/dW into it, layer by layer; an EMPTY tensor entry skips
  // that parameter (its gradient is neither computed nor touched). The
  // vector's size must match exactly — anything else throws.
  const Tensor& BackwardInputBatch(int from_layer, const Tensor& seed,
                                   std::vector<Tensor>* param_grads = nullptr);

  // ---- Per-sample entry points (the objective-gradient hot loop) ---------

  // A reusable zero-filled seed buffer shaped like layer `layer`'s
  // per-sample output. Valid until the next AcquireSeed(layer) call.
  Tensor& AcquireSeed(int layer);

  // d(seed·out_from of sample `pos`)/d(input): backpropagates through a
  // width-1 copy of sample `pos` of the current trace (cached across calls
  // for the same pos). `seed` needs out-numel elements (shape free, e.g. an
  // AcquireSeed buffer). Returns a reused input-shaped buffer matching
  // Model::BackwardInput on trace().Sample(pos) within the kernel backward
  // tolerance — and bit-identical to BackwardInputBatch's slice for this
  // sample at any width.
  const Tensor& BackwardSample(int pos, int from_layer, const Tensor& seed);

  // Width-1 trace holding sample `pos` of the current trace — the reused
  // replacement for trace().Select({pos}) (feeds CoverageMetric::UpdateBatch
  // without allocating).
  const BatchTrace& SampleTrace(int pos);

  // ---- Profiling ---------------------------------------------------------

  // When enabled, the plan accumulates wall time spent inside the backward
  // layer chain (BackwardInputBatch + BackwardSample bodies). Off by
  // default; the cost when off is two steady-clock reads per backward call,
  // noise next to a single layer's GEMM.
  void set_profiling(bool on) { profiling_ = on; }
  // Returns the accumulated backward-layer seconds and resets the counter.
  double ConsumeBackwardSeconds() {
    const double s = backward_seconds_;
    backward_seconds_ = 0.0;
    return s;
  }

 private:
  // Copies sample `pos` into sample_ unless it is already there.
  void EnsureSample(int pos);

  const Model* model_;
  int capacity_;
  int width_ = 0;
  int64_t input_numel_;            // Per-sample input elements.
  std::vector<int64_t> out_numel_; // Per-layer per-sample output elements.
  // (offset, count) of each layer's slice of the flat param-grad vector,
  // cached at compile time for the optional param-grads backward mode.
  std::vector<std::pair<int, int>> param_slices_;
  size_t total_param_grads_ = 0;
  bool profiling_ = false;
  double backward_seconds_ = 0.0;

  BatchTrace trace_;    // Slabs at the current width.
  BatchTrace sample_;   // Width-1 sample trace.
  int sample_pos_ = -1; // Which sample sample_ holds (-1: stale).

  std::vector<Tensor> bw_;   // bw_[l] (l >= 1): grad wrt layer l's input.
  Tensor bw_input_batch_;    // Final input grad, [width, ...input_shape].
  Tensor bw_input_sample_;   // Final input grad, per-sample shape.
  std::vector<Tensor> seeds_;  // Per-layer per-sample seed buffers.
  // One scratch arena per (layer, direction): each arena then sees a single
  // deterministic acquisition sequence, so its slots keep stable shapes and
  // every warm Acquire is a no-op (a shared arena would flip slot shapes
  // between layers and re-allocate Shape storage each flip).
  std::vector<Workspace> fwd_ws_;
  std::vector<Workspace> bwd_ws_;
};

}  // namespace dx

#endif  // DX_SRC_NN_EXECUTION_PLAN_H_

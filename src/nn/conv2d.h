// 2-D convolution over CHW inputs with stride and symmetric zero padding.
//
// One coverage neuron per output channel; the neuron's activation is the
// spatial mean of that channel (matching the DeepXplore reference treatment
// of convolutional layers).
#ifndef DX_SRC_NN_CONV2D_H_
#define DX_SRC_NN_CONV2D_H_

#include <string>
#include <vector>

#include "src/nn/activation.h"
#include "src/nn/dense.h"  // WeightInit
#include "src/nn/layer.h"

namespace dx {

class Conv2D : public Layer {
 public:
  Conv2D(int in_channels, int out_channels, int kernel_h, int kernel_w, int stride = 1,
         int padding = 0, Activation act = Activation::kNone);

  void InitParams(Rng& rng, WeightInit init = WeightInit::kGlorotUniform);

  std::string Kind() const override { return "conv2d"; }
  std::string Describe() const override;
  Shape OutputShape(const Shape& input_shape) const override;
  Tensor Forward(const Tensor& input, bool training, Rng* rng, Tensor* aux) const override;
  Tensor Backward(const Tensor& input, const Tensor& output, const Tensor& grad_output,
                  const Tensor& aux, std::vector<Tensor>* param_grads) const override;
  // Batch kernels: run the per-sample convolution over contiguous slices of
  // one [B, C, H, W] allocation (no per-sample tensors or shape checks).
  Tensor ForwardBatch(const Tensor& input, int batch, bool training, Rng* rng,
                      Tensor* aux) const override;
  Tensor BackwardBatch(const Tensor& input, const Tensor& output, const Tensor& grad_output,
                       const Tensor& aux, int batch,
                       std::vector<Tensor>* param_grads) const override;
  // Zero-allocation variants: same per-sample kernels over caller slabs.
  void ForwardBatchInto(const Tensor& input, int batch, bool training, Rng* rng,
                        Tensor* output, Tensor* aux, Workspace* ws) const override;
  void BackwardBatchInto(const Tensor& input, const Tensor& output,
                         const Tensor& grad_output, const Tensor& aux, int batch,
                         Tensor* grad_input, Workspace* ws,
                         std::vector<Tensor>* param_grads) const override;
  std::vector<Tensor*> MutableParams() override { return {&weight_, &bias_}; }
  std::vector<const Tensor*> Params() const override { return {&weight_, &bias_}; }
  int NumNeurons() const override { return out_channels_; }
  float NeuronValue(const Tensor& output, int index) const override;
  void AddNeuronSeed(Tensor* seed, int index, float weight) const override;
  void SerializeConfig(BinaryWriter& writer) const override;

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  int stride() const { return stride_; }
  int padding() const { return padding_; }
  Tensor& weight() { return weight_; }

 private:
  int in_channels_;
  int out_channels_;
  int kernel_h_;
  int kernel_w_;
  int stride_;
  int padding_;
  Activation act_;
  Tensor weight_;  // [out_ch, in_ch, kh, kw]
  Tensor bias_;    // [out_ch]
};

}  // namespace dx

#endif  // DX_SRC_NN_CONV2D_H_

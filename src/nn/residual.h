// Residual block (He et al. 2016): out = relu(conv2(relu(conv1(x))) + skip(x))
// where skip is the identity, or a 1x1 strided projection when the block
// changes resolution or channel count.
//
// Implemented as a composite Layer so sequential Model can host ResNet-style
// topologies. Intermediate activations are recomputed during Backward (one
// extra forward per block) to keep the trace structure uniform.
//
// Coverage neurons: the block contributes its *output* channels (spatial
// mean of the post-addition ReLU output).
#ifndef DX_SRC_NN_RESIDUAL_H_
#define DX_SRC_NN_RESIDUAL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nn/conv2d.h"
#include "src/nn/layer.h"

namespace dx {

class ResidualBlock : public Layer {
 public:
  // stride > 1 (or in_channels != out_channels) adds a 1x1 projection skip.
  ResidualBlock(int in_channels, int out_channels, int stride = 1);

  void InitParams(Rng& rng, WeightInit init = WeightInit::kHeNormal);

  std::string Kind() const override { return "residual"; }
  std::string Describe() const override;
  Shape OutputShape(const Shape& input_shape) const override;
  Tensor Forward(const Tensor& input, bool training, Rng* rng, Tensor* aux) const override;
  Tensor Backward(const Tensor& input, const Tensor& output, const Tensor& grad_output,
                  const Tensor& aux, std::vector<Tensor>* param_grads) const override;
  // Composes the sub-convolutions' batch kernels (the backward keeps the
  // base per-sample loop: it recomputes intermediates either way).
  Tensor ForwardBatch(const Tensor& input, int batch, bool training, Rng* rng,
                      Tensor* aux) const override;
  // Zero-allocation variants: sub-convolution Into kernels with arena-backed
  // intermediates. The input-grad-only backward (param_grads == nullptr)
  // runs batched; with param grads it defers to the per-sample adapter so
  // accumulation order matches BackwardBatch.
  void ForwardBatchInto(const Tensor& input, int batch, bool training, Rng* rng,
                        Tensor* output, Tensor* aux, Workspace* ws) const override;
  void BackwardBatchInto(const Tensor& input, const Tensor& output,
                         const Tensor& grad_output, const Tensor& aux, int batch,
                         Tensor* grad_input, Workspace* ws,
                         std::vector<Tensor>* param_grads) const override;
  std::vector<Tensor*> MutableParams() override;
  std::vector<const Tensor*> Params() const override;
  int NumNeurons() const override { return out_channels_; }
  float NeuronValue(const Tensor& output, int index) const override;
  void AddNeuronSeed(Tensor* seed, int index, float weight) const override;
  void SerializeConfig(BinaryWriter& writer) const override;

  bool has_projection() const { return proj_ != nullptr; }

 private:
  int in_channels_;
  int out_channels_;
  int stride_;
  Conv2D conv1_;
  Conv2D conv2_;
  std::unique_ptr<Conv2D> proj_;
};

}  // namespace dx

#endif  // DX_SRC_NN_RESIDUAL_H_

#include "src/nn/dense.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "src/nn/gemm.h"
#include "src/tensor/workspace.h"
#include "src/util/rng.h"

namespace dx {
namespace {

// One sample's pre-activation matvec: py = W px + b, each output a double
// accumulation in ascending i. Shared by Forward and ForwardBatch tails.
void DenseForwardSample(const float* px, float* py, const float* pw, const float* pb,
                        int in_features, int out_features) {
  for (int o = 0; o < out_features; ++o) {
    const float* row = pw + static_cast<size_t>(o) * in_features;
    double acc = pb[o];
    for (int i = 0; i < in_features; ++i) {
      acc += static_cast<double>(row[i]) * px[i];
    }
    py[o] = static_cast<float>(acc);
  }
}

// Shared gradient kernel: dL/dinput (and parameter grads) for one sample.
// Used by both the per-sample and the batched backward so the two paths run
// the exact same float operations.
void DenseBackwardKernel(const float* pg, const float* pw, const float* px, float* pgi,
                         float* gw, float* gb, int in_features, int out_features) {
  for (int o = 0; o < out_features; ++o) {
    const float g = pg[o];
    if (g == 0.0f) {
      continue;
    }
    const float* row = pw + static_cast<size_t>(o) * in_features;
    for (int i = 0; i < in_features; ++i) {
      pgi[i] += g * row[i];
    }
  }
  if (gb != nullptr) {
    for (int o = 0; o < out_features; ++o) {
      gb[o] += pg[o];
    }
  }
  if (gw != nullptr) {
    for (int o = 0; o < out_features; ++o) {
      const float g = pg[o];
      if (g == 0.0f) {
        continue;
      }
      float* grow = gw + static_cast<size_t>(o) * in_features;
      for (int i = 0; i < in_features; ++i) {
        grow[i] += g * px[i];
      }
    }
  }
}

// Pre-activation batch matvec shared by ForwardBatch and ForwardBatchInto.
// Full blocks of kLanes samples run a transposed kernel with fixed-size
// accumulator arrays: the compiler keeps the lanes in registers, each weight
// row is read once for the whole block, and the matvec's serial double-add
// chain becomes kLanes independent chains. Each lane still computes
// bias + Σ_i w[i]·x[i] in ascending i — the scalar kernel's exact operation
// sequence — so results are bit-identical; leftover samples just run the
// scalar kernel. `xt` is scratch for the [in, batch] transpose, required
// (and only read) when batch >= kLanes.
constexpr int kDenseLanes = 8;

void DenseForwardBatchKernel(const float* px, float* py, const float* pw, const float* pb,
                             int in_features, int out_features, int batch, float* xt) {
  int b0 = 0;
  if (batch >= kDenseLanes) {
    // Transpose to [in, batch] for contiguous batch-inner loads.
    for (int b = 0; b < batch; ++b) {
      const float* x_row = px + static_cast<size_t>(b) * in_features;
      for (int i = 0; i < in_features; ++i) {
        xt[static_cast<size_t>(i) * batch + b] = x_row[i];
      }
    }
    for (; b0 + kDenseLanes <= batch; b0 += kDenseLanes) {
      double acc[kDenseLanes];
      for (int o = 0; o < out_features; ++o) {
        const float* row = pw + static_cast<size_t>(o) * in_features;
        const double bias = pb[o];
        for (int j = 0; j < kDenseLanes; ++j) {
          acc[j] = bias;
        }
        for (int i = 0; i < in_features; ++i) {
          const double w = row[i];
          const float* x_col = xt + static_cast<size_t>(i) * batch + b0;
          for (int j = 0; j < kDenseLanes; ++j) {
            acc[j] += w * static_cast<double>(x_col[j]);
          }
        }
        for (int j = 0; j < kDenseLanes; ++j) {
          py[static_cast<size_t>(b0 + j) * out_features + o] = static_cast<float>(acc[j]);
        }
      }
    }
  }
  for (; b0 < batch; ++b0) {
    DenseForwardSample(px + static_cast<size_t>(b0) * in_features,
                       py + static_cast<size_t>(b0) * out_features, pw, pb, in_features,
                       out_features);
  }
}

}  // namespace

Dense::Dense(int in_features, int out_features, Activation act)
    : in_features_(in_features),
      out_features_(out_features),
      act_(act),
      weight_({out_features, in_features}),
      bias_({out_features}) {
  if (in_features <= 0 || out_features <= 0) {
    throw std::invalid_argument("Dense: feature counts must be positive");
  }
}

void Dense::InitParams(Rng& rng, WeightInit init) {
  const float fan_in = static_cast<float>(in_features_);
  const float fan_out = static_cast<float>(out_features_);
  switch (init) {
    case WeightInit::kGlorotUniform: {
      const float limit = std::sqrt(6.0f / (fan_in + fan_out));
      weight_ = Tensor::RandUniform(weight_.shape(), rng, -limit, limit);
      break;
    }
    case WeightInit::kHeNormal:
      weight_ = Tensor::Randn(weight_.shape(), rng, std::sqrt(2.0f / fan_in));
      break;
    case WeightInit::kNormalized: {
      // Gaussian init normalized so each output unit's weight row has unit L2
      // norm (the DAVE-norminit scheme).
      weight_ = Tensor::Randn(weight_.shape(), rng, 1.0f);
      for (int o = 0; o < out_features_; ++o) {
        double norm = 0.0;
        float* row = weight_.data() + static_cast<size_t>(o) * in_features_;
        for (int i = 0; i < in_features_; ++i) {
          norm += static_cast<double>(row[i]) * row[i];
        }
        const float inv = static_cast<float>(1.0 / std::max(1e-12, std::sqrt(norm)));
        for (int i = 0; i < in_features_; ++i) {
          row[i] *= inv;
        }
      }
      break;
    }
  }
  bias_.Fill(0.0f);
}

std::string Dense::Describe() const {
  std::ostringstream out;
  out << "dense " << in_features_ << "->" << out_features_ << " " << ActivationName(act_);
  return out.str();
}

Shape Dense::OutputShape(const Shape& input_shape) const {
  if (NumElements(input_shape) != in_features_) {
    throw std::invalid_argument("Dense: input shape " + ShapeToString(input_shape) +
                                " incompatible with in_features " +
                                std::to_string(in_features_));
  }
  return {out_features_};
}

Tensor Dense::Forward(const Tensor& input, bool /*training*/, Rng* /*rng*/,
                      Tensor* /*aux*/) const {
  if (input.numel() != in_features_) {
    throw std::invalid_argument("Dense::Forward: bad input size");
  }
  Tensor out({out_features_});
  DenseForwardSample(input.data(), out.data(), weight_.data(), bias_.data(), in_features_,
                     out_features_);
  ApplyActivation(act_, &out);
  return out;
}

Tensor Dense::Backward(const Tensor& input, const Tensor& output, const Tensor& grad_output,
                       const Tensor& /*aux*/, std::vector<Tensor>* param_grads) const {
  Tensor grad_pre = grad_output;  // dL/d(pre-activation)
  ApplyActivationGrad(act_, output, &grad_pre);

  Tensor grad_in({in_features_});
  CheckParamGrads(param_grads, "Dense::Backward");
  DenseBackwardKernel(grad_pre.data(), weight_.data(), input.data(), grad_in.data(),
                      GradData(param_grads, 0), GradData(param_grads, 1),
                      in_features_, out_features_);
  return grad_in;
}

Tensor Dense::ForwardBatch(const Tensor& input, int batch, bool /*training*/, Rng* /*rng*/,
                           Tensor* /*aux*/) const {
  if (input.numel() != static_cast<int64_t>(batch) * in_features_) {
    throw std::invalid_argument("Dense::ForwardBatch: bad input size");
  }
  Tensor out({batch, out_features_});
  std::vector<float> xt;
  if (batch >= kDenseLanes) {
    xt.resize(static_cast<size_t>(batch) * in_features_);
  }
  DenseForwardBatchKernel(input.data(), out.data(), weight_.data(), bias_.data(),
                          in_features_, out_features_, batch, xt.data());
  ApplyActivation(act_, &out);
  return out;
}

void Dense::ForwardBatchInto(const Tensor& input, int batch, bool /*training*/,
                             Rng* /*rng*/, Tensor* output, Tensor* /*aux*/,
                             Workspace* ws) const {
  if (input.numel() != static_cast<int64_t>(batch) * in_features_) {
    throw std::invalid_argument("Dense::ForwardBatchInto: bad input size");
  }
  // GEMM path (shared with Conv2D's im2col): C[o, b] = bias[o] +
  // Σ_i W[o, i]·xt[i, b], an ascending-i FMA chain per element, so results
  // are invariant to batch width, SIMD width, and thread count. They differ
  // from the by-value oracle (double accumulation) only within tolerance.
  if (batch == 1) {
    // [in, 1] needs no transpose and C == the output row directly.
    GemmBias(out_features_, 1, in_features_, weight_.data(), in_features_,
             input.data(), 1, bias_.data(), output->data(), 1);
  } else if (ws == nullptr) {
    // No arena for the transpose scratch (out-of-tree caller): scalar path.
    for (int b = 0; b < batch; ++b) {
      DenseForwardSample(input.data() + static_cast<size_t>(b) * in_features_,
                         output->data() + static_cast<size_t>(b) * out_features_,
                         weight_.data(), bias_.data(), in_features_, out_features_);
    }
  } else {
    // Transpose x to [in, batch] for contiguous column loads, GEMM into
    // [out, batch] scratch, transpose back into the [batch, out] output.
    float* xt = ws->AcquireFlat(static_cast<int64_t>(in_features_) * batch)->data();
    float* ct = ws->AcquireFlat(static_cast<int64_t>(out_features_) * batch)->data();
    for (int b = 0; b < batch; ++b) {
      const float* x_row = input.data() + static_cast<size_t>(b) * in_features_;
      for (int i = 0; i < in_features_; ++i) {
        xt[static_cast<size_t>(i) * batch + b] = x_row[i];
      }
    }
    GemmBias(out_features_, batch, in_features_, weight_.data(), in_features_, xt,
             batch, bias_.data(), ct, batch);
    for (int b = 0; b < batch; ++b) {
      float* y_row = output->data() + static_cast<size_t>(b) * out_features_;
      for (int o = 0; o < out_features_; ++o) {
        y_row[o] = ct[static_cast<size_t>(o) * batch + b];
      }
    }
  }
  ApplyActivation(act_, output);
}

Tensor Dense::BackwardBatch(const Tensor& input, const Tensor& output,
                            const Tensor& grad_output, const Tensor& /*aux*/, int batch,
                            std::vector<Tensor>* param_grads) const {
  Tensor grad_pre = grad_output;  // [batch, out]
  ApplyActivationGrad(act_, output, &grad_pre);
  Tensor grad_in({batch, in_features_});
  CheckParamGrads(param_grads, "Dense::BackwardBatch");
  for (int b = 0; b < batch; ++b) {
    DenseBackwardKernel(grad_pre.data() + static_cast<size_t>(b) * out_features_,
                        weight_.data(),
                        input.data() + static_cast<size_t>(b) * in_features_,
                        grad_in.data() + static_cast<size_t>(b) * in_features_,
                        GradData(param_grads, 0), GradData(param_grads, 1),
                        in_features_, out_features_);
  }
  return grad_in;
}

void Dense::BackwardBatchInto(const Tensor& input, const Tensor& output,
                              const Tensor& grad_output, const Tensor& /*aux*/, int batch,
                              Tensor* grad_input, Workspace* ws,
                              std::vector<Tensor>* param_grads) const {
  CheckParamGrads(param_grads, "Dense::BackwardBatchInto");
  // dL/d(pre-activation) in arena scratch instead of a fresh tensor.
  Tensor* grad_pre = ws->Acquire(output.shape());
  std::copy(grad_output.data(), grad_output.data() + grad_output.numel(),
            grad_pre->data());
  ApplyActivationGrad(act_, output, grad_pre);
  // Grad-input as a transposed-weight GEMM (no transpose needed: W is
  // already [out, in] row-major, exactly the B matrix of gi[b, i] =
  // Σ_o gpre[b, o] · W[o, i]). Each gradient element is one ascending-o FMA
  // chain and threading partitions over rows (= samples), so results are
  // invariant to batch width, SIMD width, and thread count, and the batch-1
  // BackwardSample hot loop (M == 1) vectorizes over in_features in the edge
  // kernel. GemmBias overwrites C, so no zero-fill is needed.
  GemmBias(batch, in_features_, out_features_, grad_pre->data(), out_features_,
           weight_.data(), in_features_, /*bias=*/nullptr, grad_input->data(),
           in_features_);
  float* gw = GradData(param_grads, 0);
  float* gb = GradData(param_grads, 1);
  if (gw == nullptr && gb == nullptr) {
    return;  // Input-only gradient mode: all dW/db work skipped.
  }
  // gt = grad_pre^T [out, batch]: row o is sample-major, giving both the
  // grad-weight GEMM its A matrix and the bias reduction contiguous reads.
  float* gt = ws->AcquireFlat(static_cast<int64_t>(out_features_) * batch)->data();
  TransposeMatrix(grad_pre->data(), batch, out_features_, gt);
  if (gw != nullptr) {
    // dW[o, i] = Σ_b gpre[b, o] · x[b, i]: GEMM against the input batch into
    // scratch, then one accumulate pass (param grads add into the caller's
    // running sum, so the GEMM cannot write them directly).
    float* gw_scratch =
        ws->AcquireFlat(static_cast<int64_t>(out_features_) * in_features_)->data();
    GemmBias(out_features_, in_features_, batch, gt, batch, input.data(), in_features_,
             /*bias=*/nullptr, gw_scratch, in_features_);
    const int64_t n = static_cast<int64_t>(out_features_) * in_features_;
    for (int64_t i = 0; i < n; ++i) {
      gw[i] += gw_scratch[i];
    }
  }
  if (gb != nullptr) {
    // db[o] = Σ_b gpre[b, o], accumulated in batch order — the exact adds of
    // the by-value oracle, so the bias gradient stays bit-identical to it.
    for (int o = 0; o < out_features_; ++o) {
      const float* row = gt + static_cast<size_t>(o) * batch;
      for (int b = 0; b < batch; ++b) {
        gb[o] += row[b];
      }
    }
  }
}

float Dense::NeuronValue(const Tensor& output, int index) const {
  return output.at(static_cast<int64_t>(index));
}

void Dense::AddNeuronSeed(Tensor* seed, int index, float weight) const {
  seed->at(static_cast<int64_t>(index)) += weight;
}

void Dense::SerializeConfig(BinaryWriter& writer) const {
  writer.WriteI64(in_features_);
  writer.WriteI64(out_features_);
  writer.WriteString(ActivationName(act_));
}

}  // namespace dx

#include "src/nn/dense.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "src/util/rng.h"

namespace dx {

Dense::Dense(int in_features, int out_features, Activation act)
    : in_features_(in_features),
      out_features_(out_features),
      act_(act),
      weight_({out_features, in_features}),
      bias_({out_features}) {
  if (in_features <= 0 || out_features <= 0) {
    throw std::invalid_argument("Dense: feature counts must be positive");
  }
}

void Dense::InitParams(Rng& rng, WeightInit init) {
  const float fan_in = static_cast<float>(in_features_);
  const float fan_out = static_cast<float>(out_features_);
  switch (init) {
    case WeightInit::kGlorotUniform: {
      const float limit = std::sqrt(6.0f / (fan_in + fan_out));
      weight_ = Tensor::RandUniform(weight_.shape(), rng, -limit, limit);
      break;
    }
    case WeightInit::kHeNormal:
      weight_ = Tensor::Randn(weight_.shape(), rng, std::sqrt(2.0f / fan_in));
      break;
    case WeightInit::kNormalized: {
      // Gaussian init normalized so each output unit's weight row has unit L2
      // norm (the DAVE-norminit scheme).
      weight_ = Tensor::Randn(weight_.shape(), rng, 1.0f);
      for (int o = 0; o < out_features_; ++o) {
        double norm = 0.0;
        float* row = weight_.data() + static_cast<size_t>(o) * in_features_;
        for (int i = 0; i < in_features_; ++i) {
          norm += static_cast<double>(row[i]) * row[i];
        }
        const float inv = static_cast<float>(1.0 / std::max(1e-12, std::sqrt(norm)));
        for (int i = 0; i < in_features_; ++i) {
          row[i] *= inv;
        }
      }
      break;
    }
  }
  bias_.Fill(0.0f);
}

std::string Dense::Describe() const {
  std::ostringstream out;
  out << "dense " << in_features_ << "->" << out_features_ << " " << ActivationName(act_);
  return out.str();
}

Shape Dense::OutputShape(const Shape& input_shape) const {
  if (NumElements(input_shape) != in_features_) {
    throw std::invalid_argument("Dense: input shape " + ShapeToString(input_shape) +
                                " incompatible with in_features " +
                                std::to_string(in_features_));
  }
  return {out_features_};
}

Tensor Dense::Forward(const Tensor& input, bool /*training*/, Rng* /*rng*/,
                      Tensor* /*aux*/) const {
  if (input.numel() != in_features_) {
    throw std::invalid_argument("Dense::Forward: bad input size");
  }
  Tensor out({out_features_});
  const float* px = input.data();
  const float* pw = weight_.data();
  float* py = out.data();
  for (int o = 0; o < out_features_; ++o) {
    const float* row = pw + static_cast<size_t>(o) * in_features_;
    double acc = bias_[o];
    for (int i = 0; i < in_features_; ++i) {
      acc += static_cast<double>(row[i]) * px[i];
    }
    py[o] = static_cast<float>(acc);
  }
  ApplyActivation(act_, &out);
  return out;
}

Tensor Dense::Backward(const Tensor& input, const Tensor& output, const Tensor& grad_output,
                       const Tensor& /*aux*/, std::vector<Tensor>* param_grads) const {
  Tensor grad_pre = grad_output;  // dL/d(pre-activation)
  ApplyActivationGrad(act_, output, &grad_pre);

  Tensor grad_in({in_features_});
  const float* pg = grad_pre.data();
  const float* pw = weight_.data();
  float* pgi = grad_in.data();
  for (int o = 0; o < out_features_; ++o) {
    const float g = pg[o];
    if (g == 0.0f) {
      continue;
    }
    const float* row = pw + static_cast<size_t>(o) * in_features_;
    for (int i = 0; i < in_features_; ++i) {
      pgi[i] += g * row[i];
    }
  }

  if (param_grads != nullptr) {
    if (param_grads->size() != 2) {
      throw std::invalid_argument("Dense::Backward: expected 2 param grad tensors");
    }
    Tensor& gw = (*param_grads)[0];
    Tensor& gb = (*param_grads)[1];
    const float* px = input.data();
    for (int o = 0; o < out_features_; ++o) {
      const float g = pg[o];
      gb[o] += g;
      if (g == 0.0f) {
        continue;
      }
      float* grow = gw.data() + static_cast<size_t>(o) * in_features_;
      for (int i = 0; i < in_features_; ++i) {
        grow[i] += g * px[i];
      }
    }
  }
  return grad_in;
}

float Dense::NeuronValue(const Tensor& output, int index) const {
  return output.at(static_cast<int64_t>(index));
}

void Dense::AddNeuronSeed(Tensor* seed, int index, float weight) const {
  seed->at(static_cast<int64_t>(index)) += weight;
}

void Dense::SerializeConfig(BinaryWriter& writer) const {
  writer.WriteI64(in_features_);
  writer.WriteI64(out_features_);
  writer.WriteString(ActivationName(act_));
}

}  // namespace dx

// Max and average 2-D pooling over CHW inputs.
//
// MaxPool records the argmax offsets in its aux tensor so Backward routes
// gradients exactly to the winning elements; AvgPool spreads gradients
// uniformly.
#ifndef DX_SRC_NN_POOL2D_H_
#define DX_SRC_NN_POOL2D_H_

#include <string>
#include <vector>

#include "src/nn/layer.h"

namespace dx {

enum class PoolMode : int { kMax = 0, kAvg = 1 };

class Pool2D : public Layer {
 public:
  Pool2D(PoolMode mode, int kernel, int stride = 0);  // stride 0 means == kernel

  std::string Kind() const override { return "pool2d"; }
  std::string Describe() const override;
  Shape OutputShape(const Shape& input_shape) const override;
  Tensor Forward(const Tensor& input, bool training, Rng* rng, Tensor* aux) const override;
  Tensor Backward(const Tensor& input, const Tensor& output, const Tensor& grad_output,
                  const Tensor& aux, std::vector<Tensor>* param_grads) const override;
  // Batch kernels over [B, C, H, W] slices; argmax aux offsets stay
  // sample-relative, exactly as in the per-sample pass.
  Tensor ForwardBatch(const Tensor& input, int batch, bool training, Rng* rng,
                      Tensor* aux) const override;
  Tensor BackwardBatch(const Tensor& input, const Tensor& output, const Tensor& grad_output,
                       const Tensor& aux, int batch,
                       std::vector<Tensor>* param_grads) const override;
  // Zero-allocation variants; max mode resizes *aux in place for its argmax map.
  void ForwardBatchInto(const Tensor& input, int batch, bool training, Rng* rng,
                        Tensor* output, Tensor* aux, Workspace* ws) const override;
  void BackwardBatchInto(const Tensor& input, const Tensor& output,
                         const Tensor& grad_output, const Tensor& aux, int batch,
                         Tensor* grad_input, Workspace* ws,
                         std::vector<Tensor>* param_grads) const override;
  void SerializeConfig(BinaryWriter& writer) const override;

  PoolMode mode() const { return mode_; }

 private:
  PoolMode mode_;
  int kernel_;
  int stride_;
};

}  // namespace dx

#endif  // DX_SRC_NN_POOL2D_H_

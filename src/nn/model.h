// Sequential model: an ordered list of layers with a fixed input shape.
//
// Key capability for DeepXplore: reverse-mode differentiation can start at
// *any* layer's output with an arbitrary seed gradient (BackwardInput), which
// implements ∂(neuron or class probability)/∂(input) — Algorithm 1 line 11.
#ifndef DX_SRC_NN_MODEL_H_
#define DX_SRC_NN_MODEL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/nn/layer.h"
#include "src/tensor/tensor.h"

namespace dx {

class ExecutionPlan;
class Rng;

class Model {
 public:
  Model() = default;
  Model(std::string name, Shape input_shape);

  // Moves carry the forward-pass counter value (std::atomic is not movable,
  // so these cannot be defaulted).
  Model(Model&& other) noexcept;
  Model& operator=(Model&& other) noexcept;
  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  // Appends a layer; validates shape compatibility eagerly.
  void Add(std::unique_ptr<Layer> layer);
  template <typename L, typename... Args>
  L& Emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    Add(std::move(layer));
    return ref;
  }

  const std::string& name() const { return name_; }
  const Shape& input_shape() const { return input_shape_; }
  const Shape& output_shape() const;
  int num_layers() const { return static_cast<int>(layers_.size()); }
  Layer& layer(int index) { return *layers_[static_cast<size_t>(index)]; }
  const Layer& layer(int index) const { return *layers_[static_cast<size_t>(index)]; }
  // Output shape of layer `index` (precomputed at Add time).
  const Shape& layer_output_shape(int index) const {
    return layer_shapes_[static_cast<size_t>(index)];
  }

  // Runs the network, recording every layer's output (and aux state).
  ForwardTrace Forward(const Tensor& input, bool training = false, Rng* rng = nullptr) const;

  // Batched forward: `input` is [B, ...input_shape] (B >= 1); records every
  // layer's batched output in one pass. Each sample's activations are
  // bit-identical to a per-sample Forward, so one BatchTrace can serve the
  // objective gradient, the difference check, and the coverage update for
  // all B inputs without re-forwarding any of them.
  BatchTrace ForwardBatch(const Tensor& input, bool training = false,
                          Rng* rng = nullptr) const;

  // Counts per-sample forward passes through this model (Forward adds 1,
  // ForwardBatch adds B). Thread-safe; used by tests and RunStats to assert
  // the single-pass guarantee of the batched execution path.
  int64_t forward_passes() const { return forward_passes_.load(std::memory_order_relaxed); }
  void ResetForwardPasses() const { forward_passes_.store(0, std::memory_order_relaxed); }
  // Adds `n` passes to the counter — for execution engines (ExecutionPlan)
  // whose layer loops bypass Model::ForwardBatch but must keep the
  // single-pass accounting exact.
  void CountForwardPasses(int64_t n) const {
    forward_passes_.fetch_add(n, std::memory_order_relaxed);
  }

  // Compiles a zero-allocation execution context for batches of up to
  // `max_batch` samples: pre-sized layer slabs, backward scratch, and trace
  // storage reused across iterations (src/nn/execution_plan.h). The plan
  // borrows this model and is invalidated by structural changes (Add).
  ExecutionPlan Compile(int max_batch) const;

  // Plan-backed overloads: same math as the by-value ForwardBatch /
  // BackwardInputBatch (within the kernel tolerances — see
  // execution_plan.h's numerics note) but reusing the plan's buffers (the
  // returned references live in the plan and are overwritten by its next
  // call). `param_grads` defaults to input-only gradients; pass a vector
  // aligned with MutableParams() to also accumulate parameter gradients
  // (see ExecutionPlan::BackwardInputBatch).
  const BatchTrace& ForwardBatch(const Tensor& input, ExecutionPlan& plan) const;
  const Tensor& BackwardInputBatch(ExecutionPlan& plan, int from_layer, const Tensor& seed,
                                   std::vector<Tensor>* param_grads = nullptr) const;

  // Convenience: final output tensor for an input (inference mode).
  Tensor Predict(const Tensor& input) const;
  // Argmax of the final output (classifiers).
  int PredictClass(const Tensor& input) const;
  // First output component (regression models, e.g. steering angle).
  float PredictScalar(const Tensor& input) const;

  // Backpropagates `seed` (shaped like layer `from_layer`'s output) down to
  // the model input and returns d<seed·output_{from_layer}>/d(input).
  Tensor BackwardInput(const ForwardTrace& trace, int from_layer, Tensor seed) const;

  // Batched counterpart: `seed` is [B, ...layer_output_shape] with one seed
  // gradient per sample of `trace`; returns [B, ...input_shape]. Sample b's
  // result is bit-identical to BackwardInput on trace.Sample(b).
  Tensor BackwardInputBatch(const BatchTrace& trace, int from_layer, Tensor seed) const;

  // Same, but also accumulates parameter gradients into `param_grads`, which
  // must be aligned with MutableParams() (see InitParamGrads).
  Tensor BackwardParams(const ForwardTrace& trace, int from_layer, Tensor seed,
                        std::vector<Tensor>* param_grads) const;

  // All trainable parameters in layer order.
  std::vector<Tensor*> MutableParams();
  std::vector<const Tensor*> Params() const;
  int64_t NumParams() const;

  // Zero tensors shaped like MutableParams(), for gradient accumulation.
  std::vector<Tensor> InitParamGrads() const;

  // Total coverage neurons across layers.
  int TotalNeurons() const;

  // Multi-line architecture summary.
  std::string Summary() const;

  // Whole-model (config + weights) byte-string round trip.
  std::string Serialize() const;
  static Model Deserialize(const std::string& blob);

  // Maps the flat param-grad vector (MutableParams/InitParamGrads order) to
  // each layer's slice. Public so execution engines (ExecutionPlan) can
  // route per-layer parameter-gradient views without duplicating the layout.
  std::vector<std::pair<int, int>> ParamSlices() const;  // (offset, count) per layer

 private:
  std::string name_;
  Shape input_shape_;
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<Shape> layer_shapes_;
  // Per-sample forward-pass counter (mutable: Forward is logically const).
  mutable std::atomic<int64_t> forward_passes_{0};
};

}  // namespace dx

#endif  // DX_SRC_NN_MODEL_H_

#include "src/nn/residual.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "src/tensor/ops.h"
#include "src/tensor/workspace.h"
#include "src/util/rng.h"

namespace dx {

ResidualBlock::ResidualBlock(int in_channels, int out_channels, int stride)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      stride_(stride),
      conv1_(in_channels, out_channels, 3, 3, stride, 1, Activation::kRelu),
      conv2_(out_channels, out_channels, 3, 3, 1, 1, Activation::kNone) {
  if (stride != 1 || in_channels != out_channels) {
    proj_ = std::make_unique<Conv2D>(in_channels, out_channels, 1, 1, stride, 0,
                                     Activation::kNone);
  }
}

void ResidualBlock::InitParams(Rng& rng, WeightInit init) {
  conv1_.InitParams(rng, init);
  conv2_.InitParams(rng, init);
  if (proj_ != nullptr) {
    proj_->InitParams(rng, init);
  }
}

std::string ResidualBlock::Describe() const {
  std::ostringstream out;
  out << "residual " << in_channels_ << "->" << out_channels_ << " s" << stride_
      << (proj_ != nullptr ? " (proj)" : " (identity)");
  return out.str();
}

Shape ResidualBlock::OutputShape(const Shape& input_shape) const {
  const Shape main_shape = conv2_.OutputShape(conv1_.OutputShape(input_shape));
  if (proj_ == nullptr && main_shape != input_shape) {
    throw std::invalid_argument("ResidualBlock: identity skip requires matching shapes");
  }
  return main_shape;
}

Tensor ResidualBlock::Forward(const Tensor& input, bool /*training*/, Rng* /*rng*/,
                              Tensor* /*aux*/) const {
  const Tensor y1 = conv1_.Forward(input, false, nullptr, nullptr);
  Tensor y2 = conv2_.Forward(y1, false, nullptr, nullptr);
  const Tensor skip =
      proj_ != nullptr ? proj_->Forward(input, false, nullptr, nullptr) : input;
  y2.AddInPlace(skip);
  ApplyActivation(Activation::kRelu, &y2);
  return y2;
}

Tensor ResidualBlock::ForwardBatch(const Tensor& input, int batch, bool /*training*/,
                                   Rng* /*rng*/, Tensor* /*aux*/) const {
  const Tensor y1 = conv1_.ForwardBatch(input, batch, false, nullptr, nullptr);
  Tensor y2 = conv2_.ForwardBatch(y1, batch, false, nullptr, nullptr);
  const Tensor skip =
      proj_ != nullptr ? proj_->ForwardBatch(input, batch, false, nullptr, nullptr) : input;
  y2.AddInPlace(skip);
  ApplyActivation(Activation::kRelu, &y2);
  return y2;
}

void ResidualBlock::ForwardBatchInto(const Tensor& input, int batch, bool /*training*/,
                                     Rng* /*rng*/, Tensor* output, Tensor* /*aux*/,
                                     Workspace* ws) const {
  // conv2 is 3x3 stride-1 pad-1 with out_channels filters, so conv1's output
  // (y1) has exactly the block's output shape — borrow it instead of
  // constructing a Shape (which would allocate on every hot-loop call).
  Tensor* y1 = ws->Acquire(output->shape());
  conv1_.ForwardBatchInto(input, batch, false, nullptr, y1, nullptr, ws);
  conv2_.ForwardBatchInto(*y1, batch, false, nullptr, output, nullptr, ws);
  if (proj_ != nullptr) {
    Tensor* skip = ws->Acquire(output->shape());
    proj_->ForwardBatchInto(input, batch, false, nullptr, skip, nullptr, ws);
    output->AddInPlace(*skip);
  } else {
    output->AddInPlace(input);
  }
  ApplyActivation(Activation::kRelu, output);
}

void ResidualBlock::BackwardBatchInto(const Tensor& input, const Tensor& output,
                                      const Tensor& grad_output, const Tensor& aux,
                                      int batch, Tensor* grad_input, Workspace* ws,
                                      std::vector<Tensor>* param_grads) const {
  if (param_grads != nullptr) {
    // Parameter gradients must accumulate in the per-sample order of the
    // inherited BackwardBatch (sample-major, not layer-major); the adapter
    // preserves that. The zero-allocation path below is input-grad only —
    // which is all the gradient-ascent hot loop asks for.
    Layer::BackwardBatchInto(input, output, grad_output, aux, batch, grad_input, ws,
                             param_grads);
    return;
  }
  // Recompute the intermediates batched (same per-sample conv kernels as the
  // scalar recompute, so gradients stay bit-identical). y1 shares the block
  // output's shape — see ForwardBatchInto.
  Tensor* y1 = ws->Acquire(output.shape());
  conv1_.ForwardBatchInto(input, batch, false, nullptr, y1, nullptr, ws);
  Tensor* y2 = ws->Acquire(output.shape());
  conv2_.ForwardBatchInto(*y1, batch, false, nullptr, y2, nullptr, ws);

  // Through the output ReLU: relu'(out) in terms of the post-activation value.
  Tensor* g_sum = ws->Acquire(output.shape());
  std::copy(grad_output.data(), grad_output.data() + grad_output.numel(), g_sum->data());
  ApplyActivationGrad(Activation::kRelu, output, g_sum);

  // Main path.
  Tensor* g_y1 = ws->Acquire(output.shape());
  conv2_.BackwardBatchInto(*y1, *y2, *g_sum, Tensor(), batch, g_y1, ws, nullptr);
  conv1_.BackwardBatchInto(input, *y1, *g_y1, Tensor(), batch, grad_input, ws, nullptr);

  // Skip path (flat adds: grad_input may be per-sample-shaped).
  float* gi = grad_input->data();
  if (proj_ != nullptr) {
    Tensor* skip = ws->Acquire(output.shape());
    proj_->ForwardBatchInto(input, batch, false, nullptr, skip, nullptr, ws);
    Tensor* g_skip = ws->Acquire(input.shape());
    proj_->BackwardBatchInto(input, *skip, *g_sum, Tensor(), batch, g_skip, ws, nullptr);
    const float* gs = g_skip->data();
    for (int64_t i = 0; i < grad_input->numel(); ++i) {
      gi[i] += gs[i];
    }
  } else {
    const float* gs = g_sum->data();
    for (int64_t i = 0; i < grad_input->numel(); ++i) {
      gi[i] += gs[i];
    }
  }
}

Tensor ResidualBlock::Backward(const Tensor& input, const Tensor& output,
                               const Tensor& grad_output, const Tensor& /*aux*/,
                               std::vector<Tensor>* param_grads) const {
  // Recompute the intermediates (cheaper than widening the trace format).
  const Tensor y1 = conv1_.Forward(input, false, nullptr, nullptr);
  const Tensor y2 = conv2_.Forward(y1, false, nullptr, nullptr);

  // Through the output ReLU: relu'(out) in terms of the post-activation value.
  Tensor g_sum = grad_output;
  ApplyActivationGrad(Activation::kRelu, output, &g_sum);

  std::vector<Tensor>* g_conv1 = nullptr;
  std::vector<Tensor>* g_conv2 = nullptr;
  std::vector<Tensor>* g_proj = nullptr;
  std::vector<Tensor> slice1;
  std::vector<Tensor> slice2;
  std::vector<Tensor> slice3;
  CheckParamGrads(param_grads, "ResidualBlock::Backward");
  if (param_grads != nullptr) {
    slice1.push_back(std::move((*param_grads)[0]));
    slice1.push_back(std::move((*param_grads)[1]));
    slice2.push_back(std::move((*param_grads)[2]));
    slice2.push_back(std::move((*param_grads)[3]));
    g_conv1 = &slice1;
    g_conv2 = &slice2;
    if (proj_ != nullptr) {
      slice3.push_back(std::move((*param_grads)[4]));
      slice3.push_back(std::move((*param_grads)[5]));
      g_proj = &slice3;
    }
  }

  // Main path.
  const Tensor g_y1 = conv2_.Backward(y1, y2, g_sum, Tensor(), g_conv2);
  Tensor g_in = conv1_.Backward(input, y1, g_y1, Tensor(), g_conv1);

  // Skip path.
  if (proj_ != nullptr) {
    const Tensor skip = proj_->Forward(input, false, nullptr, nullptr);
    g_in.AddInPlace(proj_->Backward(input, skip, g_sum, Tensor(), g_proj));
  } else {
    g_in.AddInPlace(g_sum);
  }

  if (param_grads != nullptr) {
    (*param_grads)[0] = std::move(slice1[0]);
    (*param_grads)[1] = std::move(slice1[1]);
    (*param_grads)[2] = std::move(slice2[0]);
    (*param_grads)[3] = std::move(slice2[1]);
    if (proj_ != nullptr) {
      (*param_grads)[4] = std::move(slice3[0]);
      (*param_grads)[5] = std::move(slice3[1]);
    }
  }
  return g_in;
}

std::vector<Tensor*> ResidualBlock::MutableParams() {
  std::vector<Tensor*> params = conv1_.MutableParams();
  for (Tensor* p : conv2_.MutableParams()) {
    params.push_back(p);
  }
  if (proj_ != nullptr) {
    for (Tensor* p : proj_->MutableParams()) {
      params.push_back(p);
    }
  }
  return params;
}

std::vector<const Tensor*> ResidualBlock::Params() const {
  std::vector<const Tensor*> params = conv1_.Params();
  for (const Tensor* p : conv2_.Params()) {
    params.push_back(p);
  }
  if (proj_ != nullptr) {
    for (const Tensor* p : proj_->Params()) {
      params.push_back(p);
    }
  }
  return params;
}

float ResidualBlock::NeuronValue(const Tensor& output, int index) const {
  return conv2_.NeuronValue(output, index);
}

void ResidualBlock::AddNeuronSeed(Tensor* seed, int index, float weight) const {
  conv2_.AddNeuronSeed(seed, index, weight);
}

void ResidualBlock::SerializeConfig(BinaryWriter& writer) const {
  writer.WriteI64(in_channels_);
  writer.WriteI64(out_channels_);
  writer.WriteI64(stride_);
}

}  // namespace dx

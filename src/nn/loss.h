// Training losses. Each loss returns the scalar loss plus the gradient seed
// and the layer index at which backprop should start — this lets softmax
// cross-entropy use the numerically stable fused form (gradient y − t seeded
// at the *logits* layer, skipping the softmax Jacobian).
#ifndef DX_SRC_NN_LOSS_H_
#define DX_SRC_NN_LOSS_H_

#include "src/nn/model.h"
#include "src/tensor/tensor.h"

namespace dx {

struct LossResult {
  float loss = 0.0f;
  Tensor grad;         // dLoss/d(output of seed_layer)
  int seed_layer = 0;  // layer index to start backprop from
};

class Loss {
 public:
  virtual ~Loss() = default;
  // `target`: one-hot class vector for classification, value tensor for
  // regression; must match the relevant output shape.
  virtual LossResult Compute(const Model& model, const ForwardTrace& trace,
                             const Tensor& target) const = 0;
};

// Requires the model's final layer to be SoftmaxLayer.
class SoftmaxCrossEntropy : public Loss {
 public:
  LossResult Compute(const Model& model, const ForwardTrace& trace,
                     const Tensor& target) const override;
};

class MeanSquaredError : public Loss {
 public:
  LossResult Compute(const Model& model, const ForwardTrace& trace,
                     const Tensor& target) const override;
};

}  // namespace dx

#endif  // DX_SRC_NN_LOSS_H_

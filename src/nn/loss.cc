#include "src/nn/loss.h"

#include <cmath>
#include <stdexcept>

namespace dx {

LossResult SoftmaxCrossEntropy::Compute(const Model& model, const ForwardTrace& trace,
                                        const Tensor& target) const {
  const int last = model.num_layers() - 1;
  if (last < 1 || model.layer(last).Kind() != "softmax") {
    throw std::invalid_argument("SoftmaxCrossEntropy requires a final softmax layer");
  }
  const Tensor& probs = trace.outputs[static_cast<size_t>(last)];
  if (probs.shape() != target.shape()) {
    throw std::invalid_argument("SoftmaxCrossEntropy: target shape mismatch");
  }
  LossResult result;
  double loss = 0.0;
  for (int64_t i = 0; i < probs.numel(); ++i) {
    if (target[i] > 0.0f) {
      loss -= target[i] * std::log(std::max(probs[i], 1e-12f));
    }
  }
  result.loss = static_cast<float>(loss);
  // Fused gradient at the logits: y - t.
  result.grad = probs;
  result.grad.SubInPlace(target);
  result.seed_layer = last - 1;
  return result;
}

LossResult MeanSquaredError::Compute(const Model& model, const ForwardTrace& trace,
                                     const Tensor& target) const {
  const int last = model.num_layers() - 1;
  const Tensor& out = trace.outputs[static_cast<size_t>(last)];
  if (out.shape() != target.shape()) {
    throw std::invalid_argument("MeanSquaredError: target shape mismatch");
  }
  LossResult result;
  const float inv_n = 1.0f / static_cast<float>(out.numel());
  result.grad = Tensor(out.shape());
  double loss = 0.0;
  for (int64_t i = 0; i < out.numel(); ++i) {
    const float diff = out[i] - target[i];
    loss += static_cast<double>(diff) * diff;
    result.grad[i] = 2.0f * diff * inv_n;
  }
  result.loss = static_cast<float>(loss * inv_n);
  result.seed_layer = last;
  return result;
}

}  // namespace dx

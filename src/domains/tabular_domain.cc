// The "tabular" domain: card-fraud detection over flat feature vectors —
// the second out-of-paper workload, registered purely through the DomainSpec
// registry (src/core/domain.h). Its default constraint is a per-feature box
// (src/constraints/tabular_constraints.h) parameterized from the feature
// table: transaction descriptors may move inside their bounds, account
// identity/history features are frozen.
#include <memory>
#include <string>
#include <vector>

#include "src/constraints/constraint.h"
#include "src/constraints/tabular_constraints.h"
#include "src/core/domain.h"
#include "src/data/tabular_fraud.h"
#include "src/nn/dense.h"
#include "src/nn/softmax_layer.h"
#include "src/util/rng.h"

namespace dx::domains {
namespace {

Model BuildTabularMlp(const std::string& name, const std::vector<int>& hidden,
                      uint64_t seed) {
  Rng rng(seed);
  Model m(name, {kTabularFeatureCount});
  int in = kTabularFeatureCount;
  for (const int h : hidden) {
    m.Emplace<Dense>(in, h, Activation::kRelu).InitParams(rng);
    in = h;
  }
  m.Emplace<Dense>(in, 2).InitParams(rng);
  m.Emplace<SoftmaxLayer>();
  return m;
}

// One FeatureBox per feature, from the dataset's feature table: frozen
// features cannot move, the rest stay inside their normalized [0, 1] box.
std::unique_ptr<Constraint> MakeTabularBox() {
  std::vector<FeatureBox> boxes;
  boxes.reserve(TabularFeatureSpecs().size());
  for (const TabularFeatureSpec& spec : TabularFeatureSpecs()) {
    boxes.push_back({0.0f, 1.0f, !spec.modifiable});
  }
  return std::make_unique<FeatureBoxConstraint>(std::move(boxes), "tabular-box");
}

}  // namespace

void RegisterTabularDomain() {
  DomainSpec spec;
  spec.key = "tabular";
  spec.display_name = "Tabular";
  spec.description = "card-fraud detection (synthetic transactions); dense stacks";
  spec.make_dataset = [](int n, uint64_t seed) { return MakeSyntheticTabular(n, seed); };
  spec.training = {2500, 800, 8, 1e-3f, 707, /*fast_train=*/4, /*fast_test=*/4};
  spec.models = {
      {"TAB_C1", "<64, 64>", "2x64 MLP",
       [](uint64_t s) { return BuildTabularMlp("TAB_C1", {64, 64}, s); }},
      {"TAB_C2", "<32, 32, 32>", "3x32 MLP",
       [](uint64_t s) { return BuildTabularMlp("TAB_C2", {32, 32, 32}, s); }},
      {"TAB_C3", "<128, 16>", "128-16 MLP",
       [](uint64_t s) { return BuildTabularMlp("TAB_C3", {128, 16}, s); }},
  };
  spec.constraints = {
      {"box", MakeTabularBox},
      {"none", [] { return std::make_unique<UnconstrainedImage>(); }},
  };
  spec.default_constraint = "box";
  spec.engine_defaults.coverage.scale_per_layer = false;
  spec.engine_defaults.lambda1 = 2.0f;
  spec.engine_defaults.step = 0.05f;
  RegisterDomain(std::move(spec));
}

}  // namespace dx::domains

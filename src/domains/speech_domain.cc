// The "speech" domain: 1-D conv keyword spotting — the first out-of-paper
// workload, registered purely through the DomainSpec registry
// (src/core/domain.h). Nothing in the engine knows it exists: the batched
// executor, ExecutionPlan, corpus/replay, golden scenario matrix, and the
// conformance suite all pick it up from the registry.
//
// Waveforms are {1, 1, T} height-1 images (src/data/speech_commands.h), so
// Conv2D with 1xk kernels is a true 1-D convolution and the generic image
// constraints apply: "gain" moves every sample uniformly (volume change),
// "segment" perturbs one contiguous time window (transient noise burst).
#include <memory>
#include <string>

#include "src/constraints/constraint.h"
#include "src/constraints/image_constraints.h"
#include "src/core/domain.h"
#include "src/data/speech_commands.h"
#include "src/nn/conv2d.h"
#include "src/nn/dense.h"
#include "src/nn/flatten.h"
#include "src/nn/softmax_layer.h"
#include "src/util/rng.h"

namespace dx::domains {
namespace {

// Three architecturally distinct conv1d stacks (strided 1xk kernels
// downsample time; no pooling needed at height 1).
Model BuildSpeechConv(const std::string& name, int variant, uint64_t seed) {
  Rng rng(seed);
  Model m(name, {1, 1, kSpeechWaveformLength});
  if (variant == 1) {
    // Small two-stage stack: 128 -> 62 -> 29 frames.
    m.Emplace<Conv2D>(1, 8, 1, 5, 2, 0, Activation::kRelu).InitParams(rng);
    m.Emplace<Conv2D>(8, 16, 1, 5, 2, 0, Activation::kRelu).InitParams(rng);
    m.Emplace<Flatten>();
    m.Emplace<Dense>(16 * 29, 32, Activation::kRelu).InitParams(rng);
    m.Emplace<Dense>(32, kSpeechKeywords).InitParams(rng);
  } else if (variant == 2) {
    // Deeper three-stage stack: 128 -> 61 -> 29 -> 14 frames.
    m.Emplace<Conv2D>(1, 8, 1, 7, 2, 0, Activation::kRelu).InitParams(rng);
    m.Emplace<Conv2D>(8, 16, 1, 5, 2, 0, Activation::kRelu).InitParams(rng);
    m.Emplace<Conv2D>(16, 24, 1, 3, 2, 0, Activation::kRelu).InitParams(rng);
    m.Emplace<Flatten>();
    m.Emplace<Dense>(24 * 14, 48, Activation::kRelu).InitParams(rng);
    m.Emplace<Dense>(48, kSpeechKeywords).InitParams(rng);
  } else {
    // Wide coarse-stride stack: 128 -> 40 -> 18 frames.
    m.Emplace<Conv2D>(1, 12, 1, 9, 3, 0, Activation::kRelu).InitParams(rng);
    m.Emplace<Conv2D>(12, 20, 1, 5, 2, 0, Activation::kRelu).InitParams(rng);
    m.Emplace<Flatten>();
    m.Emplace<Dense>(20 * 18, 64, Activation::kRelu).InitParams(rng);
    m.Emplace<Dense>(64, kSpeechKeywords).InitParams(rng);
  }
  m.Emplace<SoftmaxLayer>();
  return m;
}

}  // namespace

void RegisterSpeechDomain() {
  DomainSpec spec;
  spec.key = "speech";
  spec.display_name = "Speech";
  spec.description = "1-D keyword spotting (synthetic waveforms); conv1d stacks";
  spec.make_dataset = [](int n, uint64_t seed) { return MakeSyntheticSpeech(n, seed); };
  spec.training = {1500, 500, 6, 3e-3f, 606, /*fast_train=*/4, /*fast_test=*/4};
  spec.models = {
      {"SPC_C1", "Conv1D-S", "2x conv1d + MLP head",
       [](uint64_t s) { return BuildSpeechConv("SPC_C1", 1, s); }},
      {"SPC_C2", "Conv1D-D", "3x conv1d + MLP head",
       [](uint64_t s) { return BuildSpeechConv("SPC_C2", 2, s); }},
      {"SPC_C3", "Conv1D-W", "wide conv1d + MLP head",
       [](uint64_t s) { return BuildSpeechConv("SPC_C3", 3, s); }},
  };
  spec.constraints = {
      // Uniform gain change: every sample moves by the same signed amount.
      {"gain", [] { return std::make_unique<LightingConstraint>(); }},
      // One contiguous 16-frame window (a transient burst), placed where the
      // gradient mass is largest — OcclusionConstraint at height 1 is a 1-D
      // window constraint.
      {"segment", [] { return std::make_unique<OcclusionConstraint>(1, 16); }},
      {"none", [] { return std::make_unique<UnconstrainedImage>(); }},
  };
  spec.default_constraint = "gain";
  spec.engine_defaults.coverage.scale_per_layer = false;
  spec.engine_defaults.lambda1 = 1.0f;
  spec.engine_defaults.step = 10.0f / 255.0f;
  RegisterDomain(std::move(spec));
}

}  // namespace dx::domains

#include "src/coverage/coverage_metric.h"

#include <algorithm>
#include <stdexcept>

#include "src/coverage/kmultisection_coverage.h"
#include "src/coverage/neuron_coverage.h"
#include "src/coverage/topk_coverage.h"
#include "src/util/registry.h"

namespace dx {

void CoverageMetric::ProfileSeed(const Model& model, const ForwardTrace& trace) {
  (void)model;
  (void)trace;
}

void CoverageMetric::UpdateBatch(const Model& model, const BatchTrace& trace) {
  for (int b = 0; b < trace.batch; ++b) {
    Update(model, trace.Sample(b));
  }
}

void CoverageMetric::Serialize(BinaryWriter& writer) const {
  (void)writer;
  throw std::logic_error("CoverageMetric '" + name() + "' does not support Serialize");
}

void CoverageMetric::Deserialize(BinaryReader& reader) {
  (void)reader;
  throw std::logic_error("CoverageMetric '" + name() + "' does not support Deserialize");
}

NeuronValueMetric::NeuronValueMetric(const Model& model, CoverageOptions options)
    : options_(options) {
  layer_offset_.assign(static_cast<size_t>(model.num_layers()), -1);
  int last_neuron_layer = -1;
  for (int l = 0; l < model.num_layers(); ++l) {
    if (model.layer(l).NumNeurons() > 0) {
      last_neuron_layer = l;
    }
  }
  for (int l = 0; l < model.num_layers(); ++l) {
    const Layer& layer = model.layer(l);
    const int n = layer.NumNeurons();
    if (n == 0) {
      continue;
    }
    if (options_.exclude_dense && layer.Kind() == "dense") {
      continue;
    }
    if (options_.exclude_output_layer && l == last_neuron_layer) {
      continue;
    }
    layer_offset_[static_cast<size_t>(l)] = total_;
    for (int i = 0; i < n; ++i) {
      neurons_.push_back({l, i});
    }
    total_ += n;
  }
}

std::vector<float> NeuronValueMetric::NeuronValues(const Model& model,
                                                   const ForwardTrace& trace) const {
  std::vector<float> values(static_cast<size_t>(total_), 0.0f);
  for (int l = 0; l < model.num_layers(); ++l) {
    const int offset = layer_offset_[static_cast<size_t>(l)];
    if (offset < 0) {
      continue;
    }
    const Layer& layer = model.layer(l);
    const int n = layer.NumNeurons();
    const Tensor& out = trace.outputs[static_cast<size_t>(l)];
    float lo = 0.0f;
    float hi = 0.0f;
    for (int i = 0; i < n; ++i) {
      const float v = layer.NeuronValue(out, i);
      values[static_cast<size_t>(offset + i)] = v;
      if (i == 0 || v < lo) {
        lo = v;
      }
      if (i == 0 || v > hi) {
        hi = v;
      }
    }
    if (options_.scale_per_layer) {
      const float span = hi - lo;
      for (int i = 0; i < n; ++i) {
        float& v = values[static_cast<size_t>(offset + i)];
        v = span > 0.0f ? (v - lo) / span : 0.0f;
      }
    }
  }
  return values;
}

int NeuronValueMetric::FlatIndex(const NeuronId& id) const {
  if (id.layer < 0 || id.layer >= static_cast<int>(layer_offset_.size()) ||
      layer_offset_[static_cast<size_t>(id.layer)] < 0) {
    throw std::out_of_range("NeuronValueMetric: layer not tracked");
  }
  const int flat = layer_offset_[static_cast<size_t>(id.layer)] + id.index;
  if (id.index < 0 || flat >= total_ ||
      neurons_[static_cast<size_t>(flat)].layer != id.layer) {
    throw std::out_of_range("NeuronValueMetric: neuron index out of range");
  }
  return flat;
}

void NeuronValueMetric::CheckMergeCompatible(const NeuronValueMetric& other) const {
  if (other.total_ != total_ || other.neurons_ != neurons_) {
    throw std::invalid_argument("CoverageMetric::Merge: trackers cover different neurons");
  }
}

void NeuronValueMetric::SerializeHeader(BinaryWriter& writer, uint32_t version) const {
  writer.WriteString(name());
  writer.WriteU32(version);
  writer.WriteU32(static_cast<uint32_t>(total_));
}

void NeuronValueMetric::DeserializeHeader(BinaryReader& reader, uint32_t version) const {
  const std::string stored_name = reader.ReadString();
  const uint32_t stored_version = reader.ReadU32();
  const uint32_t stored_total = reader.ReadU32();
  if (stored_name != name() || stored_version != version ||
      stored_total != static_cast<uint32_t>(total_)) {
    throw std::runtime_error("CoverageMetric::Deserialize: snapshot is for metric '" +
                             stored_name + "', this tracker is '" + name() +
                             "' (or neuron count / version mismatch)");
  }
}

// ---- Factory -----------------------------------------------------------------------------

namespace {

NamedRegistry<CoverageMetricFactory>& Registry() {
  static auto* registry = new NamedRegistry<CoverageMetricFactory>({
      {"neuron",
       [](const Model& m, const CoverageOptions& o) -> std::unique_ptr<CoverageMetric> {
         return std::make_unique<NeuronCoverageTracker>(m, o);
       }},
      {"kmultisection",
       [](const Model& m, const CoverageOptions& o) -> std::unique_ptr<CoverageMetric> {
         return std::make_unique<KMultisectionCoverage>(m, o);
       }},
      {"topk",
       [](const Model& m, const CoverageOptions& o) -> std::unique_ptr<CoverageMetric> {
         return std::make_unique<TopKNeuronCoverage>(m, o);
       }},
  });
  return *registry;
}

}  // namespace

void RegisterCoverageMetric(const std::string& name, CoverageMetricFactory factory) {
  Registry().Register(name, std::move(factory));
}

std::unique_ptr<CoverageMetric> MakeCoverageMetric(const std::string& name,
                                                   const Model& model,
                                                   const CoverageOptions& options) {
  return Registry().Get(name, "coverage metric")(model, options);
}

std::vector<std::string> CoverageMetricNames() { return Registry().Names(); }

}  // namespace dx

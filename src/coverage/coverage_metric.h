// CoverageMetric: the pluggable coverage-criterion interface of the engine.
//
// A metric observes forward traces (`Update`), reports a saturation fraction
// (`Coverage`), and feeds the coverage objective by nominating an uncovered
// neuron to push (`PickUncovered`). Parallel workers run on `Clone()`d
// metrics that are `Merge()`d back at sync points; Merge is commutative and
// idempotent, so merged results are independent of worker count and order.
//
// Implementations are selected by name through a string-keyed factory
// (`MakeCoverageMetric`); built-ins:
//   "neuron"        threshold neuron coverage (paper §4.1)
//   "kmultisection" k-multisection coverage: each neuron's activation range
//                   (profiled from the seed corpus via ProfileSeed) split
//                   into k buckets, a bucket covered when hit
//   "topk"          top-k neuron coverage: covered when among the k
//                   most-activated neurons of its layer
#ifndef DX_SRC_COVERAGE_COVERAGE_METRIC_H_
#define DX_SRC_COVERAGE_COVERAGE_METRIC_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/nn/model.h"
#include "src/util/serialize.h"

namespace dx {

class Rng;

struct NeuronId {
  int layer = 0;
  int index = 0;

  bool operator==(const NeuronId&) const = default;
};

struct CoverageOptions {
  float threshold = 0.0f;
  // Min-max scale neuron values within each layer before thresholding.
  bool scale_per_layer = true;
  // Drop Dense-layer neurons (paper's Table 8 excludes fully-connected
  // layers on the vision domains since their neurons are very hard to
  // activate).
  bool exclude_dense = false;
  // Drop the final classification layer's neurons (its "neurons" are the
  // model's output logits).
  bool exclude_output_layer = true;
  // "kmultisection": buckets per neuron (DeepGauge-style k-multisection).
  int kmc_sections = 10;
  // "topk": how many most-activated neurons per layer count as covered.
  int top_k = 2;
};

class CoverageMetric {
 public:
  virtual ~CoverageMetric() = default;

  // Factory key of this metric ("neuron", "kmultisection", ...).
  virtual std::string name() const = 0;

  // Observes one forward trace; coverage grows monotonically.
  virtual void Update(const Model& model, const ForwardTrace& trace) = 0;

  // Batch-profiling entry point: observes every sample of one batched
  // forward pass. Default-implemented via the scalar path (one Update per
  // sample, in batch order); metrics may override it to scan the batched
  // activations directly.
  virtual void UpdateBatch(const Model& model, const BatchTrace& trace);

  // Covered fraction in [0, 1] of this metric's coverage items.
  virtual float Coverage() const = 0;
  // Denominator/numerator of Coverage(); "items" are metric-specific
  // (neurons, neuron-buckets, ...).
  virtual int total_items() const = 0;
  virtual int covered_items() const = 0;

  // Uniformly random neuron that still has uncovered items, for the
  // coverage-objective gradient; false when fully saturated.
  virtual bool PickUncovered(Rng& rng, NeuronId* id) const = 0;

  // Folds another tracker's covered set into this one. `other` must be a
  // Clone() of this metric (same type, model, and options); throws
  // std::invalid_argument otherwise. Commutative and idempotent.
  virtual void Merge(const CoverageMetric& other) = 0;

  // Deep copy, used to give each parallel worker task its own tracker.
  virtual std::unique_ptr<CoverageMetric> Clone() const = 0;

  // Observes one seed-corpus trace for calibration (k-multisection profiles
  // per-neuron activation ranges here). Default: no-op.
  virtual void ProfileSeed(const Model& model, const ForwardTrace& trace);
  // True when the metric needs a ProfileSeed pass over the seed corpus
  // before Update calls are meaningful (lets the session skip the profiling
  // forward passes for metrics that don't).
  virtual bool WantsSeedProfile() const { return false; }

  // Writes the full coverage state (covered set plus any calibration, e.g.
  // k-multisection ranges) so a campaign can checkpoint and resume. The
  // counterpart Deserialize restores the state into a metric built for the
  // SAME model and options — the neuron enumeration is not stored, only
  // validated — and throws std::runtime_error on a mismatched or corrupt
  // stream. Defaults throw std::logic_error: plug-in metrics must override
  // both to participate in durable corpora (src/corpus/).
  virtual void Serialize(BinaryWriter& writer) const;
  virtual void Deserialize(BinaryReader& reader);
};

// Base for metrics defined over per-neuron activation values: owns the
// neuron enumeration (Dense units / Conv channels, minus the configured
// exclusions) and the per-layer value extraction + optional min-max scaling.
class NeuronValueMetric : public CoverageMetric {
 public:
  NeuronValueMetric(const Model& model, CoverageOptions options);

  int total_neurons() const { return total_; }

  // Neuron values of one trace, scaled per options (exposed for analysis).
  // Each entry parallels TrackedNeurons().
  std::vector<float> NeuronValues(const Model& model, const ForwardTrace& trace) const;
  // All tracked neuron ids in canonical order.
  const std::vector<NeuronId>& TrackedNeurons() const { return neurons_; }

  const CoverageOptions& options() const { return options_; }

 protected:
  // Flat position of `id` in TrackedNeurons(); throws std::out_of_range for
  // untracked layers or bad indices.
  int FlatIndex(const NeuronId& id) const;
  // Throws std::invalid_argument unless `other` tracks the same neurons with
  // the same options.
  void CheckMergeCompatible(const NeuronValueMetric& other) const;
  // Serialize/Deserialize building blocks: a header identifying the metric
  // (factory name, per-metric version, tracked-neuron count) that the reader
  // validates against this instance before subclass state follows.
  void SerializeHeader(BinaryWriter& writer, uint32_t version) const;
  void DeserializeHeader(BinaryReader& reader, uint32_t version) const;

  CoverageOptions options_;
  std::vector<NeuronId> neurons_;
  // Maps layer -> offset into neurons_ (-1 when not tracked).
  std::vector<int> layer_offset_;
  int total_ = 0;
};

// ---- Factory -----------------------------------------------------------------------------

using CoverageMetricFactory =
    std::function<std::unique_ptr<CoverageMetric>(const Model&, const CoverageOptions&)>;

// Registers (or replaces) a metric under `name` for MakeCoverageMetric.
void RegisterCoverageMetric(const std::string& name, CoverageMetricFactory factory);

// Builds the metric registered under `name`; throws std::invalid_argument
// for unknown names.
std::unique_ptr<CoverageMetric> MakeCoverageMetric(const std::string& name,
                                                   const Model& model,
                                                   const CoverageOptions& options);

// Registered metric names, sorted (for --help text and validation).
std::vector<std::string> CoverageMetricNames();

}  // namespace dx

#endif  // DX_SRC_COVERAGE_COVERAGE_METRIC_H_

// Neuron coverage (paper §4.1): the fraction of neurons whose scaled output
// exceeded threshold t for at least one test input.
//
// Neuron values follow the reference implementation: one neuron per Dense
// unit, one per Conv2D/Residual output channel (spatial mean). Per §7.1,
// neuron outputs are min-max scaled to [0, 1] *within each layer* before
// thresholding (scaling can be disabled for raw-activation experiments such
// as Table 2's t = 0 runs).
#ifndef DX_SRC_COVERAGE_NEURON_COVERAGE_H_
#define DX_SRC_COVERAGE_NEURON_COVERAGE_H_

#include <string>
#include <vector>

#include "src/nn/model.h"

namespace dx {

class Rng;

struct NeuronId {
  int layer = 0;
  int index = 0;

  bool operator==(const NeuronId&) const = default;
};

struct CoverageOptions {
  float threshold = 0.0f;
  // Min-max scale neuron values within each layer before thresholding.
  bool scale_per_layer = true;
  // Drop Dense-layer neurons (paper's Table 8 excludes fully-connected
  // layers on the vision domains since their neurons are very hard to
  // activate).
  bool exclude_dense = false;
  // Drop the final classification layer's neurons (its "neurons" are the
  // model's output logits).
  bool exclude_output_layer = true;
};

class NeuronCoverageTracker {
 public:
  NeuronCoverageTracker(const Model& model, CoverageOptions options);

  // Marks every neuron activated by this trace.
  void Update(const Model& model, const ForwardTrace& trace);

  int total_neurons() const { return total_; }
  int covered_neurons() const;
  float Coverage() const;
  bool IsCovered(const NeuronId& id) const;

  // Uniformly random uncovered neuron; false when fully covered.
  bool PickUncovered(Rng& rng, NeuronId* id) const;

  // Neuron values of one trace, scaled per options (exposed for analysis).
  // Each entry parallels TrackedNeurons().
  std::vector<float> NeuronValues(const Model& model, const ForwardTrace& trace) const;
  // Activated neuron ids for a single trace (used by the Table 7 overlap
  // experiment).
  std::vector<NeuronId> Activated(const Model& model, const ForwardTrace& trace) const;
  // All tracked neuron ids in canonical order.
  const std::vector<NeuronId>& TrackedNeurons() const { return neurons_; }

  const CoverageOptions& options() const { return options_; }

 private:
  int FlatIndex(const NeuronId& id) const;

  CoverageOptions options_;
  std::vector<NeuronId> neurons_;
  // Maps layer -> offset into neurons_/covered_ (-1 when not tracked).
  std::vector<int> layer_offset_;
  std::vector<bool> covered_;
  int total_ = 0;
};

}  // namespace dx

#endif  // DX_SRC_COVERAGE_NEURON_COVERAGE_H_

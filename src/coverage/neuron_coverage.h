// Neuron coverage (paper §4.1): the fraction of neurons whose scaled output
// exceeded threshold t for at least one test input.
//
// Neuron values follow the reference implementation: one neuron per Dense
// unit, one per Conv2D/Residual output channel (spatial mean). Per §7.1,
// neuron outputs are min-max scaled to [0, 1] *within each layer* before
// thresholding (scaling can be disabled for raw-activation experiments such
// as Table 2's t = 0 runs).
//
// This is the "neuron" implementation of the CoverageMetric interface (see
// coverage_metric.h for the contract and the factory).
#ifndef DX_SRC_COVERAGE_NEURON_COVERAGE_H_
#define DX_SRC_COVERAGE_NEURON_COVERAGE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/coverage/coverage_metric.h"
#include "src/nn/model.h"

namespace dx {

class Rng;

class NeuronCoverageTracker : public NeuronValueMetric {
 public:
  NeuronCoverageTracker(const Model& model, CoverageOptions options);

  std::string name() const override { return "neuron"; }

  // Marks every neuron activated by this trace.
  void Update(const Model& model, const ForwardTrace& trace) override;

  int covered_neurons() const;
  int total_items() const override { return total_neurons(); }
  int covered_items() const override { return covered_neurons(); }
  float Coverage() const override;
  bool IsCovered(const NeuronId& id) const;

  // Uniformly random uncovered neuron; false when fully covered.
  bool PickUncovered(Rng& rng, NeuronId* id) const override;

  void Merge(const CoverageMetric& other) override;
  std::unique_ptr<CoverageMetric> Clone() const override;

  void Serialize(BinaryWriter& writer) const override;
  void Deserialize(BinaryReader& reader) override;

  // Activated neuron ids for a single trace (used by the Table 7 overlap
  // experiment).
  std::vector<NeuronId> Activated(const Model& model, const ForwardTrace& trace) const;

 private:
  std::vector<bool> covered_;
};

}  // namespace dx

#endif  // DX_SRC_COVERAGE_NEURON_COVERAGE_H_

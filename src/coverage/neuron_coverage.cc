#include "src/coverage/neuron_coverage.h"

#include <algorithm>
#include <stdexcept>

#include "src/util/rng.h"

namespace dx {

NeuronCoverageTracker::NeuronCoverageTracker(const Model& model, CoverageOptions options)
    : options_(options) {
  layer_offset_.assign(static_cast<size_t>(model.num_layers()), -1);
  int last_neuron_layer = -1;
  for (int l = 0; l < model.num_layers(); ++l) {
    if (model.layer(l).NumNeurons() > 0) {
      last_neuron_layer = l;
    }
  }
  for (int l = 0; l < model.num_layers(); ++l) {
    const Layer& layer = model.layer(l);
    const int n = layer.NumNeurons();
    if (n == 0) {
      continue;
    }
    if (options_.exclude_dense && layer.Kind() == "dense") {
      continue;
    }
    if (options_.exclude_output_layer && l == last_neuron_layer) {
      continue;
    }
    layer_offset_[static_cast<size_t>(l)] = total_;
    for (int i = 0; i < n; ++i) {
      neurons_.push_back({l, i});
    }
    total_ += n;
  }
  covered_.assign(static_cast<size_t>(total_), false);
}

std::vector<float> NeuronCoverageTracker::NeuronValues(const Model& model,
                                                       const ForwardTrace& trace) const {
  std::vector<float> values(static_cast<size_t>(total_), 0.0f);
  for (int l = 0; l < model.num_layers(); ++l) {
    const int offset = layer_offset_[static_cast<size_t>(l)];
    if (offset < 0) {
      continue;
    }
    const Layer& layer = model.layer(l);
    const int n = layer.NumNeurons();
    const Tensor& out = trace.outputs[static_cast<size_t>(l)];
    float lo = 0.0f;
    float hi = 0.0f;
    for (int i = 0; i < n; ++i) {
      const float v = layer.NeuronValue(out, i);
      values[static_cast<size_t>(offset + i)] = v;
      if (i == 0 || v < lo) {
        lo = v;
      }
      if (i == 0 || v > hi) {
        hi = v;
      }
    }
    if (options_.scale_per_layer) {
      const float span = hi - lo;
      for (int i = 0; i < n; ++i) {
        float& v = values[static_cast<size_t>(offset + i)];
        v = span > 0.0f ? (v - lo) / span : 0.0f;
      }
    }
  }
  return values;
}

void NeuronCoverageTracker::Update(const Model& model, const ForwardTrace& trace) {
  const std::vector<float> values = NeuronValues(model, trace);
  for (int i = 0; i < total_; ++i) {
    if (values[static_cast<size_t>(i)] > options_.threshold) {
      covered_[static_cast<size_t>(i)] = true;
    }
  }
}

int NeuronCoverageTracker::covered_neurons() const {
  return static_cast<int>(std::count(covered_.begin(), covered_.end(), true));
}

float NeuronCoverageTracker::Coverage() const {
  return total_ > 0 ? static_cast<float>(covered_neurons()) / static_cast<float>(total_)
                    : 0.0f;
}

int NeuronCoverageTracker::FlatIndex(const NeuronId& id) const {
  if (id.layer < 0 || id.layer >= static_cast<int>(layer_offset_.size()) ||
      layer_offset_[static_cast<size_t>(id.layer)] < 0) {
    throw std::out_of_range("NeuronCoverageTracker: layer not tracked");
  }
  const int flat = layer_offset_[static_cast<size_t>(id.layer)] + id.index;
  if (id.index < 0 || flat >= total_ ||
      (id.layer + 1 < static_cast<int>(layer_offset_.size()) &&
       neurons_[static_cast<size_t>(flat)].layer != id.layer)) {
    throw std::out_of_range("NeuronCoverageTracker: neuron index out of range");
  }
  return flat;
}

bool NeuronCoverageTracker::IsCovered(const NeuronId& id) const {
  return covered_[static_cast<size_t>(FlatIndex(id))];
}

bool NeuronCoverageTracker::PickUncovered(Rng& rng, NeuronId* id) const {
  std::vector<int> uncovered;
  uncovered.reserve(static_cast<size_t>(total_));
  for (int i = 0; i < total_; ++i) {
    if (!covered_[static_cast<size_t>(i)]) {
      uncovered.push_back(i);
    }
  }
  if (uncovered.empty()) {
    return false;
  }
  const int pick = uncovered[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(uncovered.size()) - 1))];
  *id = neurons_[static_cast<size_t>(pick)];
  return true;
}

std::vector<NeuronId> NeuronCoverageTracker::Activated(const Model& model,
                                                       const ForwardTrace& trace) const {
  const std::vector<float> values = NeuronValues(model, trace);
  std::vector<NeuronId> activated;
  for (int i = 0; i < total_; ++i) {
    if (values[static_cast<size_t>(i)] > options_.threshold) {
      activated.push_back(neurons_[static_cast<size_t>(i)]);
    }
  }
  return activated;
}

}  // namespace dx

#include "src/coverage/neuron_coverage.h"

#include <algorithm>
#include <stdexcept>

#include "src/util/rng.h"

namespace dx {

NeuronCoverageTracker::NeuronCoverageTracker(const Model& model, CoverageOptions options)
    : NeuronValueMetric(model, options) {
  covered_.assign(static_cast<size_t>(total_), false);
}

void NeuronCoverageTracker::Update(const Model& model, const ForwardTrace& trace) {
  const std::vector<float> values = NeuronValues(model, trace);
  for (int i = 0; i < total_; ++i) {
    if (values[static_cast<size_t>(i)] > options_.threshold) {
      covered_[static_cast<size_t>(i)] = true;
    }
  }
}

int NeuronCoverageTracker::covered_neurons() const {
  return static_cast<int>(std::count(covered_.begin(), covered_.end(), true));
}

float NeuronCoverageTracker::Coverage() const {
  return total_ > 0 ? static_cast<float>(covered_neurons()) / static_cast<float>(total_)
                    : 0.0f;
}

bool NeuronCoverageTracker::IsCovered(const NeuronId& id) const {
  return covered_[static_cast<size_t>(FlatIndex(id))];
}

bool NeuronCoverageTracker::PickUncovered(Rng& rng, NeuronId* id) const {
  // Count-then-select keeps this allocation-free (it runs per gradient
  // iteration in the executor hot loop). The single UniformInt draw and the
  // selected neuron (the r-th uncovered, ascending) are identical to the
  // old build-a-candidate-list implementation.
  int64_t count = 0;
  for (int i = 0; i < total_; ++i) {
    count += covered_[static_cast<size_t>(i)] ? 0 : 1;
  }
  if (count == 0) {
    return false;
  }
  const int64_t r = rng.UniformInt(0, count - 1);
  int64_t seen = 0;
  for (int i = 0; i < total_; ++i) {
    if (!covered_[static_cast<size_t>(i)] && seen++ == r) {
      *id = neurons_[static_cast<size_t>(i)];
      return true;
    }
  }
  return false;  // Unreachable.
}

void NeuronCoverageTracker::Merge(const CoverageMetric& other) {
  const auto* o = dynamic_cast<const NeuronCoverageTracker*>(&other);
  if (o == nullptr) {
    throw std::invalid_argument("NeuronCoverageTracker::Merge: metric type mismatch");
  }
  CheckMergeCompatible(*o);
  for (int i = 0; i < total_; ++i) {
    if (o->covered_[static_cast<size_t>(i)]) {
      covered_[static_cast<size_t>(i)] = true;
    }
  }
}

std::unique_ptr<CoverageMetric> NeuronCoverageTracker::Clone() const {
  return std::make_unique<NeuronCoverageTracker>(*this);
}

void NeuronCoverageTracker::Serialize(BinaryWriter& writer) const {
  SerializeHeader(writer, /*version=*/1);
  writer.WriteBools(covered_);
}

void NeuronCoverageTracker::Deserialize(BinaryReader& reader) {
  DeserializeHeader(reader, /*version=*/1);
  std::vector<bool> covered = reader.ReadBools();
  if (covered.size() != static_cast<size_t>(total_)) {
    throw std::runtime_error("NeuronCoverageTracker::Deserialize: covered-set size mismatch");
  }
  covered_ = std::move(covered);
}

std::vector<NeuronId> NeuronCoverageTracker::Activated(const Model& model,
                                                       const ForwardTrace& trace) const {
  const std::vector<float> values = NeuronValues(model, trace);
  std::vector<NeuronId> activated;
  for (int i = 0; i < total_; ++i) {
    if (values[static_cast<size_t>(i)] > options_.threshold) {
      activated.push_back(neurons_[static_cast<size_t>(i)]);
    }
  }
  return activated;
}

}  // namespace dx

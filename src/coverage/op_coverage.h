// "Code coverage" analog for Table 6.
//
// The paper measures Python line coverage of the DNN inference code and shows
// that a single input already executes 100% of it. Our inference interpreter
// is the Layer::Forward chain; OpCoverage assigns each layer a fixed set of
// statement sites (proportional to the complexity of its forward routine) and
// marks a layer's sites executed whenever an input flows through it —
// faithfully reproducing the phenomenon that code coverage saturates
// immediately while neuron coverage does not.
#ifndef DX_SRC_COVERAGE_OP_COVERAGE_H_
#define DX_SRC_COVERAGE_OP_COVERAGE_H_

#include <vector>

#include "src/nn/model.h"

namespace dx {

class OpCoverage {
 public:
  explicit OpCoverage(const Model& model);

  // Marks all statement sites executed by running `input` through the model.
  void RecordForward(const Model& model, const Tensor& input);

  int total_sites() const { return total_; }
  int covered_sites() const;
  float Coverage() const;

 private:
  static int SitesForKind(const std::string& kind);

  std::vector<int> layer_sites_;
  std::vector<bool> covered_;
  int total_ = 0;
};

}  // namespace dx

#endif  // DX_SRC_COVERAGE_OP_COVERAGE_H_

// Top-k neuron coverage (DeepGauge, Ma et al., ASE'18): a neuron is covered
// once it has been among the k most-activated neurons of its layer for some
// test input. Coverage is the fraction of neurons ever in a layer top-k.
//
// Ties at the k-th value are inclusive: every neuron whose activation equals
// the k-th largest counts as top-k (so a layer of identical activations is
// fully covered by one input). Layers with <= k neurons are fully covered by
// any input. Per-layer min-max scaling does not change activation order, so
// the metric is insensitive to `scale_per_layer`.
#ifndef DX_SRC_COVERAGE_TOPK_COVERAGE_H_
#define DX_SRC_COVERAGE_TOPK_COVERAGE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/coverage/coverage_metric.h"

namespace dx {

class TopKNeuronCoverage : public NeuronValueMetric {
 public:
  // Uses options.top_k as k (must be >= 1).
  TopKNeuronCoverage(const Model& model, CoverageOptions options);

  std::string name() const override { return "topk"; }
  int k() const { return k_; }

  void Update(const Model& model, const ForwardTrace& trace) override;

  float Coverage() const override;
  int total_items() const override { return total_neurons(); }
  int covered_items() const override;
  bool IsCovered(const NeuronId& id) const;

  bool PickUncovered(Rng& rng, NeuronId* id) const override;
  void Merge(const CoverageMetric& other) override;
  std::unique_ptr<CoverageMetric> Clone() const override;

  void Serialize(BinaryWriter& writer) const override;
  void Deserialize(BinaryReader& reader) override;

 private:
  int k_;
  std::vector<bool> covered_;
};

}  // namespace dx

#endif  // DX_SRC_COVERAGE_TOPK_COVERAGE_H_

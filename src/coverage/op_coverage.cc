#include "src/coverage/op_coverage.h"

#include <algorithm>

namespace dx {

int OpCoverage::SitesForKind(const std::string& kind) {
  // Rough statement counts of each layer's forward routine.
  if (kind == "conv2d") return 18;
  if (kind == "residual") return 24;
  if (kind == "dense") return 10;
  if (kind == "pool2d") return 14;
  if (kind == "batchnorm") return 8;
  if (kind == "dropout") return 6;
  if (kind == "softmax") return 7;
  if (kind == "flatten") return 2;
  return 4;
}

OpCoverage::OpCoverage(const Model& model) {
  layer_sites_.reserve(static_cast<size_t>(model.num_layers()));
  for (int l = 0; l < model.num_layers(); ++l) {
    const int sites = SitesForKind(model.layer(l).Kind());
    layer_sites_.push_back(sites);
    total_ += sites;
  }
  // Model-level driver statements (input validation, trace bookkeeping).
  total_ += 6;
  covered_.assign(static_cast<size_t>(total_), false);
}

void OpCoverage::RecordForward(const Model& model, const Tensor& input) {
  model.Forward(input);  // The input actually flows through every layer.
  int offset = 0;
  for (const int sites : layer_sites_) {
    for (int s = 0; s < sites; ++s) {
      covered_[static_cast<size_t>(offset + s)] = true;
    }
    offset += sites;
  }
  for (int s = 0; s < 6; ++s) {
    covered_[static_cast<size_t>(offset + s)] = true;
  }
}

int OpCoverage::covered_sites() const {
  return static_cast<int>(std::count(covered_.begin(), covered_.end(), true));
}

float OpCoverage::Coverage() const {
  return total_ > 0 ? static_cast<float>(covered_sites()) / static_cast<float>(total_)
                    : 0.0f;
}

}  // namespace dx

// k-multisection neuron coverage (DeepGauge, Ma et al., ASE'18): each
// neuron's activation range [low, high] — profiled from the seed corpus via
// ProfileSeed — is split into k equal sections; a section is covered when
// some test input lands a neuron value inside it. Coverage is the covered
// fraction of the k * num_neurons sections.
//
// Values outside the profiled range fall into the nearest boundary section
// (the corner-case regions DeepGauge tracks separately are folded into
// sections 0 and k-1 here). Unprofiled neurons cover nothing.
//
// Profiling uses raw (unscaled) activations: per-trace min-max scaling would
// collapse every range to [0, 1] and erase the per-neuron structure the
// metric measures, so `scale_per_layer` is forced off.
#ifndef DX_SRC_COVERAGE_KMULTISECTION_COVERAGE_H_
#define DX_SRC_COVERAGE_KMULTISECTION_COVERAGE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/coverage/coverage_metric.h"

namespace dx {

class KMultisectionCoverage : public NeuronValueMetric {
 public:
  // Uses options.kmc_sections as k (must be >= 1).
  KMultisectionCoverage(const Model& model, CoverageOptions options);

  std::string name() const override { return "kmultisection"; }
  int sections() const { return k_; }

  // Records [min, max] per neuron over the seed corpus.
  void ProfileSeed(const Model& model, const ForwardTrace& trace) override;
  bool WantsSeedProfile() const override { return true; }
  // True once at least one seed has been profiled.
  bool profiled() const { return profiled_; }

  void Update(const Model& model, const ForwardTrace& trace) override;

  float Coverage() const override;
  int total_items() const override { return total_ * k_; }
  int covered_items() const override;

  // Section index (0..k-1) the value of neuron `id` would fall into; -1 when
  // the neuron is unprofiled (exposed for tests).
  int SectionOf(const NeuronId& id, float value) const;
  // True when section `section` of neuron `id` has been hit.
  bool IsSectionCovered(const NeuronId& id, int section) const;

  bool PickUncovered(Rng& rng, NeuronId* id) const override;
  void Merge(const CoverageMetric& other) override;
  std::unique_ptr<CoverageMetric> Clone() const override;

  // Persists the covered sections AND the profiled [low, high] ranges, so a
  // resumed campaign needs no re-profiling pass.
  void Serialize(BinaryWriter& writer) const override;
  void Deserialize(BinaryReader& reader) override;

 private:
  int k_;
  bool profiled_ = false;
  std::vector<float> low_;   // Per-neuron profiled minimum.
  std::vector<float> high_;  // Per-neuron profiled maximum.
  std::vector<bool> covered_;  // total_ * k_ sections, neuron-major.
};

}  // namespace dx

#endif  // DX_SRC_COVERAGE_KMULTISECTION_COVERAGE_H_

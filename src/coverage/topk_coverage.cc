#include "src/coverage/topk_coverage.h"

#include <algorithm>
#include <stdexcept>

#include "src/util/rng.h"

namespace dx {

TopKNeuronCoverage::TopKNeuronCoverage(const Model& model, CoverageOptions options)
    : NeuronValueMetric(model, options), k_(options.top_k) {
  if (k_ < 1) {
    throw std::invalid_argument("TopKNeuronCoverage: top_k must be >= 1");
  }
  covered_.assign(static_cast<size_t>(total_), false);
}

void TopKNeuronCoverage::Update(const Model& model, const ForwardTrace& trace) {
  const std::vector<float> values = NeuronValues(model, trace);
  // Walk the per-layer slices of the canonical neuron order.
  for (int begin = 0; begin < total_;) {
    const int layer = neurons_[static_cast<size_t>(begin)].layer;
    int end = begin;
    while (end < total_ && neurons_[static_cast<size_t>(end)].layer == layer) {
      ++end;
    }
    const int n = end - begin;
    if (n <= k_) {
      for (int i = begin; i < end; ++i) {
        covered_[static_cast<size_t>(i)] = true;
      }
    } else {
      // k-th largest value of the layer; ties at that value are inclusive.
      std::vector<float> slice(values.begin() + begin, values.begin() + end);
      std::nth_element(slice.begin(), slice.begin() + (k_ - 1), slice.end(),
                       std::greater<float>());
      const float kth = slice[static_cast<size_t>(k_ - 1)];
      for (int i = begin; i < end; ++i) {
        if (values[static_cast<size_t>(i)] >= kth) {
          covered_[static_cast<size_t>(i)] = true;
        }
      }
    }
    begin = end;
  }
}

int TopKNeuronCoverage::covered_items() const {
  return static_cast<int>(std::count(covered_.begin(), covered_.end(), true));
}

float TopKNeuronCoverage::Coverage() const {
  return total_ > 0 ? static_cast<float>(covered_items()) / static_cast<float>(total_)
                    : 0.0f;
}

bool TopKNeuronCoverage::IsCovered(const NeuronId& id) const {
  return covered_[static_cast<size_t>(FlatIndex(id))];
}

bool TopKNeuronCoverage::PickUncovered(Rng& rng, NeuronId* id) const {
  // Allocation-free count-then-select (hot loop); draw and pick are
  // identical to the old candidate-list implementation.
  int64_t count = 0;
  for (int i = 0; i < total_; ++i) {
    count += covered_[static_cast<size_t>(i)] ? 0 : 1;
  }
  if (count == 0) {
    return false;
  }
  const int64_t r = rng.UniformInt(0, count - 1);
  int64_t seen = 0;
  for (int i = 0; i < total_; ++i) {
    if (!covered_[static_cast<size_t>(i)] && seen++ == r) {
      *id = neurons_[static_cast<size_t>(i)];
      return true;
    }
  }
  return false;  // Unreachable.
}

void TopKNeuronCoverage::Merge(const CoverageMetric& other) {
  const auto* o = dynamic_cast<const TopKNeuronCoverage*>(&other);
  if (o == nullptr || o->k_ != k_) {
    throw std::invalid_argument("TopKNeuronCoverage::Merge: metric mismatch");
  }
  CheckMergeCompatible(*o);
  for (int i = 0; i < total_; ++i) {
    if (o->covered_[static_cast<size_t>(i)]) {
      covered_[static_cast<size_t>(i)] = true;
    }
  }
}

std::unique_ptr<CoverageMetric> TopKNeuronCoverage::Clone() const {
  return std::make_unique<TopKNeuronCoverage>(*this);
}

void TopKNeuronCoverage::Serialize(BinaryWriter& writer) const {
  SerializeHeader(writer, /*version=*/1);
  writer.WriteU32(static_cast<uint32_t>(k_));
  writer.WriteBools(covered_);
}

void TopKNeuronCoverage::Deserialize(BinaryReader& reader) {
  DeserializeHeader(reader, /*version=*/1);
  const uint32_t k = reader.ReadU32();
  std::vector<bool> covered = reader.ReadBools();
  if (k != static_cast<uint32_t>(k_) || covered.size() != static_cast<size_t>(total_)) {
    throw std::runtime_error("TopKNeuronCoverage::Deserialize: state size mismatch");
  }
  covered_ = std::move(covered);
}

}  // namespace dx

#include "src/coverage/kmultisection_coverage.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/util/rng.h"

namespace dx {

KMultisectionCoverage::KMultisectionCoverage(const Model& model, CoverageOptions options)
    : NeuronValueMetric(model, [&options] {
        CoverageOptions o = options;
        o.scale_per_layer = false;
        return o;
      }()),
      k_(options.kmc_sections) {
  if (k_ < 1) {
    throw std::invalid_argument("KMultisectionCoverage: kmc_sections must be >= 1");
  }
  low_.assign(static_cast<size_t>(total_), std::numeric_limits<float>::infinity());
  high_.assign(static_cast<size_t>(total_), -std::numeric_limits<float>::infinity());
  covered_.assign(static_cast<size_t>(total_) * static_cast<size_t>(k_), false);
}

void KMultisectionCoverage::ProfileSeed(const Model& model, const ForwardTrace& trace) {
  const std::vector<float> values = NeuronValues(model, trace);
  for (int i = 0; i < total_; ++i) {
    const float v = values[static_cast<size_t>(i)];
    low_[static_cast<size_t>(i)] = std::min(low_[static_cast<size_t>(i)], v);
    high_[static_cast<size_t>(i)] = std::max(high_[static_cast<size_t>(i)], v);
  }
  profiled_ = true;
}

int KMultisectionCoverage::SectionOf(const NeuronId& id, float value) const {
  const int flat = FlatIndex(id);
  const float lo = low_[static_cast<size_t>(flat)];
  const float hi = high_[static_cast<size_t>(flat)];
  if (!(lo <= hi)) {
    return -1;  // Unprofiled neuron.
  }
  if (value <= lo) {
    return 0;
  }
  if (value >= hi) {
    return k_ - 1;
  }
  // lo < value < hi implies hi > lo, so the span is positive.
  const int section = static_cast<int>(static_cast<float>(k_) * (value - lo) / (hi - lo));
  return std::clamp(section, 0, k_ - 1);
}

void KMultisectionCoverage::Update(const Model& model, const ForwardTrace& trace) {
  if (!profiled_) {
    return;  // No ranges yet: nothing can be bucketed.
  }
  const std::vector<float> values = NeuronValues(model, trace);
  for (int i = 0; i < total_; ++i) {
    const int section =
        SectionOf(neurons_[static_cast<size_t>(i)], values[static_cast<size_t>(i)]);
    if (section >= 0) {
      covered_[static_cast<size_t>(i) * static_cast<size_t>(k_) +
               static_cast<size_t>(section)] = true;
    }
  }
}

int KMultisectionCoverage::covered_items() const {
  return static_cast<int>(std::count(covered_.begin(), covered_.end(), true));
}

float KMultisectionCoverage::Coverage() const {
  const int total = total_items();
  return total > 0 ? static_cast<float>(covered_items()) / static_cast<float>(total) : 0.0f;
}

bool KMultisectionCoverage::IsSectionCovered(const NeuronId& id, int section) const {
  if (section < 0 || section >= k_) {
    throw std::out_of_range("KMultisectionCoverage: section out of range");
  }
  return covered_[static_cast<size_t>(FlatIndex(id)) * static_cast<size_t>(k_) +
                  static_cast<size_t>(section)];
}

bool KMultisectionCoverage::PickUncovered(Rng& rng, NeuronId* id) const {
  // Allocation-free count-then-select (hot loop); draw and pick are
  // identical to the old candidate-list implementation.
  const auto has_uncovered_bucket = [&](int i) {
    const auto begin = covered_.begin() + static_cast<int64_t>(i) * k_;
    return std::find(begin, begin + k_, false) != begin + k_;
  };
  int64_t count = 0;
  for (int i = 0; i < total_; ++i) {
    count += has_uncovered_bucket(i) ? 1 : 0;
  }
  if (count == 0) {
    return false;
  }
  const int64_t r = rng.UniformInt(0, count - 1);
  int64_t seen = 0;
  for (int i = 0; i < total_; ++i) {
    if (has_uncovered_bucket(i) && seen++ == r) {
      *id = neurons_[static_cast<size_t>(i)];
      return true;
    }
  }
  return false;  // Unreachable.
}

void KMultisectionCoverage::Merge(const CoverageMetric& other) {
  const auto* o = dynamic_cast<const KMultisectionCoverage*>(&other);
  if (o == nullptr || o->k_ != k_) {
    throw std::invalid_argument("KMultisectionCoverage::Merge: metric mismatch");
  }
  CheckMergeCompatible(*o);
  if (o->low_ != low_ || o->high_ != high_) {
    throw std::invalid_argument(
        "KMultisectionCoverage::Merge: trackers profiled different ranges");
  }
  for (size_t i = 0; i < covered_.size(); ++i) {
    if (o->covered_[i]) {
      covered_[i] = true;
    }
  }
}

std::unique_ptr<CoverageMetric> KMultisectionCoverage::Clone() const {
  return std::make_unique<KMultisectionCoverage>(*this);
}

void KMultisectionCoverage::Serialize(BinaryWriter& writer) const {
  SerializeHeader(writer, /*version=*/1);
  writer.WriteU32(static_cast<uint32_t>(k_));
  writer.WriteU32(profiled_ ? 1 : 0);
  writer.WriteFloats(low_);
  writer.WriteFloats(high_);
  writer.WriteBools(covered_);
}

void KMultisectionCoverage::Deserialize(BinaryReader& reader) {
  DeserializeHeader(reader, /*version=*/1);
  const uint32_t k = reader.ReadU32();
  const bool profiled = reader.ReadU32() != 0;
  std::vector<float> low = reader.ReadFloats();
  std::vector<float> high = reader.ReadFloats();
  std::vector<bool> covered = reader.ReadBools();
  if (k != static_cast<uint32_t>(k_) || low.size() != static_cast<size_t>(total_) ||
      high.size() != low.size() ||
      covered.size() != static_cast<size_t>(total_) * static_cast<size_t>(k_)) {
    throw std::runtime_error("KMultisectionCoverage::Deserialize: state size mismatch");
  }
  profiled_ = profiled;
  low_ = std::move(low);
  high_ = std::move(high);
  covered_ = std::move(covered);
}

}  // namespace dx

// Corpus maintenance subsystem: distill / dedup / minimize must produce
// derived corpora that verify under Session::Replay with merged retained
// coverage exactly equal to the source's, dedup must be deterministic,
// minimized entries must still be difference-inducing, and the segmented
// checkpoint chain must resume bit-identically to the monolithic format —
// including after a crash that truncates the chain mid-record.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/constraints/image_constraints.h"
#include "src/core/session.h"
#include "src/corpus/corpus.h"
#include "src/corpus/dedup.h"
#include "src/corpus/distill.h"
#include "src/corpus/maintenance.h"
#include "src/corpus/minimize.h"
#include "src/coverage/coverage_metric.h"
#include "src/data/dataset.h"
#include "src/models/trainer.h"
#include "src/nn/dense.h"
#include "src/nn/model.h"
#include "src/nn/softmax_layer.h"
#include "src/util/rng.h"
#include "src/util/serialize.h"

namespace dx {
namespace {

Dataset MakeToyTask(int n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds{"toy", {2}, 2, {}, {}};
  while (ds.size() < n) {
    Tensor x({2});
    x[0] = rng.NextFloat();
    x[1] = rng.NextFloat();
    if (std::abs(x[0] - x[1]) < 0.08f) {
      continue;
    }
    const float label = x[0] > x[1] ? 0.0f : 1.0f;  // Before the move.
    ds.Add(std::move(x), label);
  }
  return ds;
}

Model MakeToyClassifier(const std::string& name, int hidden, uint64_t seed) {
  Rng rng(seed);
  Model m(name, {2});
  m.Emplace<Dense>(2, hidden, Activation::kRelu).InitParams(rng);
  m.Emplace<Dense>(hidden, 2).InitParams(rng);
  m.Emplace<SoftmaxLayer>();
  return m;
}

class MaintenanceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Dataset train = MakeToyTask(500, 2);
    models_ = new std::vector<Model>();
    models_->push_back(MakeToyClassifier("mt_a", 16, 41));
    models_->push_back(MakeToyClassifier("mt_b", 24, 42));
    models_->push_back(MakeToyClassifier("mt_c", 12, 43));
    for (Model& m : *models_) {
      TrainConfig cfg;
      cfg.epochs = 8;
      cfg.learning_rate = 5e-3f;
      cfg.seed = 7;
      Trainer::Fit(&m, train, cfg);
      ASSERT_GT(Trainer::Accuracy(m, train), 0.9f);
    }
    seeds_ = new std::vector<Tensor>();
    Rng rng(44);
    while (seeds_->size() < 30) {
      Tensor x({2});
      x[0] = rng.NextFloat();
      x[1] = rng.NextFloat();
      const float margin = std::abs(x[0] - x[1]);
      if (margin > 0.1f && margin < 0.3f) {
        seeds_->push_back(std::move(x));
      }
    }
  }
  static void TearDownTestSuite() {
    delete seeds_;
    delete models_;
    seeds_ = nullptr;
    models_ = nullptr;
  }

  static std::vector<Model*> ModelPtrs() {
    std::vector<Model*> ptrs;
    for (Model& m : *models_) {
      ptrs.push_back(&m);
    }
    return ptrs;
  }

  // Small sync batches so a 30-seed pass spans several checkpoints.
  static SessionConfig BaseConfig(const std::string& metric = "neuron") {
    SessionConfig config;
    config.engine.lambda1 = 2.5f;
    config.engine.step = 0.05f;
    config.engine.max_iterations_per_seed = 120;
    config.engine.rng_seed = 19;
    config.metric = metric;
    config.sync_interval = 8;
    return config;
  }

  static RunOptions Bounds() {
    RunOptions options;
    options.max_seed_passes = 2;
    return options;
  }

  std::string TempCorpusDir(const std::string& name) {
    const std::string dir =
        ::testing::TempDir() + "corpus_maintenance_test_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() + "_" + name;
    std::filesystem::remove_all(dir);
    return dir;
  }

  // Records a full toy campaign into `dir` and returns its stats.
  RunStats Record(const std::string& dir) {
    UnconstrainedImage constraint;
    Session session(ModelPtrs(), &constraint, BaseConfig());
    Corpus corpus(dir);
    return session.Run(*seeds_, Bounds(), &corpus);
  }

  // Per-model covered_items() of the merged coverage footprint over ALL of
  // the corpus' stored entries — the quantity every maintenance pass must
  // preserve exactly.
  static std::vector<int> MergedEntryCoverage(Session& session, const Corpus& corpus) {
    session.ResetRunState();
    session.ProfileSeeds(corpus.meta().seeds);
    std::vector<const Tensor*> inputs;
    for (const GeneratedTest& entry : corpus.entries()) {
      inputs.push_back(&entry.input);
    }
    std::vector<CoverageFootprint> footprints = ComputeFootprints(session, inputs);
    if (footprints.empty()) {
      return {};
    }
    CoverageFootprint acc = CloneFootprint(footprints[0]);
    for (size_t i = 1; i < footprints.size(); ++i) {
      MergeFootprint(acc, footprints[i]);
    }
    std::vector<int> covered;
    for (const auto& metric : acc) {
      covered.push_back(metric->covered_items());
    }
    return covered;
  }

  // Per-model covered_items() restored from a corpus checkpoint's metric
  // blobs (what a derived corpus stamps as its final coverage state).
  static std::vector<int> CheckpointCoverage(const Corpus& corpus) {
    std::vector<int> covered;
    const CorpusCheckpoint& cp = corpus.checkpoint();
    for (size_t k = 0; k < cp.metric_blobs.size(); ++k) {
      auto metric = MakeCoverageMetric(corpus.meta().metric, (*models_)[k],
                                       corpus.meta().engine.coverage);
      std::istringstream in(cp.metric_blobs[k]);
      BinaryReader reader(in);
      metric->Deserialize(reader);
      covered.push_back(metric->covered_items());
    }
    return covered;
  }

  static void ExpectSameResults(const RunStats& a, const RunStats& b) {
    ASSERT_EQ(a.tests.size(), b.tests.size());
    EXPECT_EQ(a.seeds_tried, b.seeds_tried);
    EXPECT_EQ(a.seeds_skipped, b.seeds_skipped);
    EXPECT_EQ(a.total_iterations, b.total_iterations);
    EXPECT_EQ(a.forward_passes, b.forward_passes);
    EXPECT_FLOAT_EQ(a.mean_coverage, b.mean_coverage);
    for (size_t i = 0; i < a.tests.size(); ++i) {
      EXPECT_EQ(a.tests[i].input.values(), b.tests[i].input.values()) << "test " << i;
      EXPECT_EQ(a.tests[i].seed_index, b.tests[i].seed_index) << "test " << i;
      EXPECT_EQ(a.tests[i].iterations, b.tests[i].iterations) << "test " << i;
      EXPECT_EQ(a.tests[i].deviating_model, b.tests[i].deviating_model) << "test " << i;
      EXPECT_EQ(a.tests[i].task_ordinal, b.tests[i].task_ordinal) << "test " << i;
      EXPECT_EQ(a.tests[i].labels, b.tests[i].labels) << "test " << i;
    }
  }

  static std::vector<Model>* models_;
  static std::vector<Tensor>* seeds_;
};

std::vector<Model>* MaintenanceTest::models_ = nullptr;
std::vector<Tensor>* MaintenanceTest::seeds_ = nullptr;

// ---- Distill + dedup + minimize round trip -----------------------------------------------

TEST_F(MaintenanceTest, RoundTripVerifiesAndPreservesMergedCoverage) {
  const std::string dir = TempCorpusDir("src");
  const RunStats recorded = Record(dir);
  ASSERT_GT(recorded.tests.size(), 3u);

  UnconstrainedImage constraint;
  Session session(ModelPtrs(), &constraint, BaseConfig());
  Corpus source(dir);
  const std::vector<int> original = MergedEntryCoverage(session, source);
  ASSERT_EQ(original.size(), 3u);

  // Distill: retained coverage must equal the full corpus' — greedy-in-order
  // only drops entries whose footprint is already covered.
  DistillOptions distill;
  distill.out_dir = TempCorpusDir("distilled");
  const MaintenanceReport r1 = DistillCorpus(session, source, distill);
  EXPECT_EQ(r1.transform, "distill");
  EXPECT_EQ(r1.input_entries, source.entries().size());
  EXPECT_LE(r1.retained_entries, r1.input_entries);
  Corpus distilled(distill.out_dir);
  EXPECT_EQ(CheckpointCoverage(distilled), original);

  // Dedup: preserve_coverage (default) keeps the merged coverage exact.
  DedupOptions dedup;
  dedup.out_dir = TempCorpusDir("deduped");
  const MaintenanceReport r2 = DedupCorpus(session, distilled, dedup);
  EXPECT_EQ(r2.transform, "dedup");
  EXPECT_EQ(r2.input_entries, distilled.entries().size());
  EXPECT_LE(r2.retained_entries, r2.input_entries);
  Corpus deduped(dedup.out_dir);
  EXPECT_EQ(CheckpointCoverage(deduped), original);

  // Minimize: never drops entries, only reverts values toward the seed, and
  // only while the per-model merged coverage stays exactly on target.
  MinimizeOptions minimize;
  minimize.out_dir = TempCorpusDir("minimized");
  const MaintenanceReport r3 = MinimizeCorpus(session, deduped, minimize);
  EXPECT_EQ(r3.transform, "minimize");
  EXPECT_EQ(r3.input_entries, deduped.entries().size());
  EXPECT_EQ(r3.retained_entries, r3.input_entries);

  Corpus minimized(minimize.out_dir);
  EXPECT_EQ(CheckpointCoverage(minimized), original);
  EXPECT_TRUE(minimized.journal().empty());
  EXPECT_TRUE(minimized.checkpoint().complete);
  const std::string* transform = minimized.meta().FindMetadata("transform");
  ASSERT_NE(transform, nullptr);
  EXPECT_EQ(*transform, "distill+dedup+minimize");
  const std::string* derived_from = minimized.meta().FindMetadata("derived_from");
  ASSERT_NE(derived_from, nullptr);
  EXPECT_EQ(*derived_from, dedup.out_dir);

  // Every derived stage verifies under Session::Replay (re-predict entries,
  // re-derive coverage, compare byte-for-byte against the checkpoint).
  for (const Corpus* corpus : {&distilled, &deduped, &minimized}) {
    const ReplayResult result = session.Replay(*corpus);
    EXPECT_TRUE(result.ok) << corpus->dir() << ": " << result.mismatch;
  }

  // Minimized entries are still difference-inducing with their stored
  // per-model labels.
  for (const GeneratedTest& entry : minimized.entries()) {
    EXPECT_TRUE(session.IsDifference(entry.input));
    EXPECT_EQ(session.PredictLabels(entry.input), entry.labels);
  }

  // A derived corpus has no journal, so it can be verified but never
  // resumed as a campaign.
  Session fresh(ModelPtrs(), &constraint, BaseConfig());
  Corpus reopened(minimize.out_dir);
  EXPECT_THROW(fresh.Run(reopened.meta().seeds, Bounds(), &reopened),
               std::invalid_argument);
}

TEST_F(MaintenanceTest, DedupIsDeterministic) {
  const std::string dir = TempCorpusDir("src");
  ASSERT_GT(Record(dir).tests.size(), 0u);

  UnconstrainedImage constraint;
  Session session(ModelPtrs(), &constraint, BaseConfig());
  Corpus source(dir);
  DedupOptions a;
  a.out_dir = TempCorpusDir("a");
  DedupOptions b;
  b.out_dir = TempCorpusDir("b");
  const MaintenanceReport ra = DedupCorpus(session, source, a);
  const MaintenanceReport rb = DedupCorpus(session, source, b);
  EXPECT_EQ(ra.retained_entries, rb.retained_entries);

  Corpus ca(a.out_dir);
  Corpus cb(b.out_dir);
  ASSERT_EQ(ca.entries().size(), cb.entries().size());
  for (size_t i = 0; i < ca.entries().size(); ++i) {
    EXPECT_EQ(ca.entries()[i].input.values(), cb.entries()[i].input.values()) << i;
    EXPECT_EQ(ca.entries()[i].seed_index, cb.entries()[i].seed_index) << i;
    EXPECT_EQ(ca.entries()[i].task_ordinal, cb.entries()[i].task_ordinal) << i;
    EXPECT_EQ(ca.entries()[i].labels, cb.entries()[i].labels) << i;
  }
  // Identical retained sets merge to byte-identical coverage state.
  EXPECT_EQ(ca.checkpoint().metric_blobs, cb.checkpoint().metric_blobs);
}

// ---- Deduper registry --------------------------------------------------------------------

TEST(CorpusDeduperRegistry, AutoResolvesByShapeAndRejectsUnknownNames) {
  const std::vector<std::string> names = CorpusDeduperNames();
  for (const char* expected : {"auto", "feature-box", "l2", "ssim"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end()) << expected;
  }

  // Flat (1-D) seed inputs: "auto" is the per-dimension feature-box notion.
  CorpusMeta flat;
  flat.seeds.push_back(Tensor({4}, {0.0f, 1.0f, -2.0f, 3.0f}));
  flat.seeds.push_back(Tensor({4}, {1.0f, 0.0f, 2.0f, -3.0f}));
  DeduperContext flat_ctx;
  flat_ctx.meta = &flat;
  EXPECT_EQ(MakeCorpusDeduper("auto", flat_ctx)->name(), "feature-box");

  // Image-shaped (ndim >= 2) seed inputs: "auto" is perceptual SSIM.
  CorpusMeta image;
  image.seeds.push_back(Tensor({3, 3}, 0.5f));
  DeduperContext image_ctx;
  image_ctx.meta = &image;
  EXPECT_EQ(MakeCorpusDeduper("auto", image_ctx)->name(), "ssim");

  EXPECT_THROW(MakeCorpusDeduper("no-such-deduper", flat_ctx), std::invalid_argument);
}

TEST(CorpusDeduperRegistry, L2AndFeatureBoxClassifyNearAndFarInputs) {
  CorpusMeta meta;
  meta.seeds.push_back(Tensor({4}, {0.0f, 10.0f, 0.0f, 10.0f}));
  meta.seeds.push_back(Tensor({4}, {10.0f, 0.0f, 10.0f, 0.0f}));
  DeduperContext ctx;
  ctx.meta = &meta;

  const Tensor base({4}, {1.0f, 2.0f, 3.0f, 4.0f});
  Tensor near = base;
  near[0] += 0.01f;
  Tensor far = base;
  far[0] += 5.0f;

  for (const char* name : {"l2", "feature-box"}) {
    auto deduper = MakeCorpusDeduper(name, ctx);
    EXPECT_TRUE(deduper->NearDuplicate(base, base)) << name;
    EXPECT_TRUE(deduper->NearDuplicate(near, base)) << name;
    EXPECT_FALSE(deduper->NearDuplicate(far, base)) << name;
  }
}

// ---- Segmented checkpoints ---------------------------------------------------------------

TEST_F(MaintenanceTest, SegmentedResumeBitIdenticalToMonolithic) {
  RunStats reference;
  {
    UnconstrainedImage constraint;
    Session session(ModelPtrs(), &constraint, BaseConfig());
    reference = session.Run(*seeds_, Bounds());
    ASSERT_GT(reference.tests.size(), 0u);
  }

  // Interrupt after every sync batch in BOTH formats, resuming each leg with
  // a different worker count and batch size.
  auto run_legs = [&](const std::string& dir, CheckpointFormat format) {
    RunStats final_stats;
    for (int legs = 0;; ++legs) {
      EXPECT_LT(legs, 64) << "campaign did not converge";
      SessionConfig config = BaseConfig();
      config.workers = (legs % 2 == 0) ? 1 : 4;
      config.batch_size = (legs % 3) + 1;
      UnconstrainedImage constraint;
      Session session(ModelPtrs(), &constraint, config);
      Corpus corpus(dir);
      corpus.SetCheckpointFormat(format);
      corpus.SetSnapshotInterval(2);
      RunOptions options = Bounds();
      options.max_sync_batches = 1;
      final_stats = session.Run(*seeds_, options, &corpus);
      if (corpus.checkpoint().complete) {
        return final_stats;
      }
    }
  };

  const std::string mono_dir = TempCorpusDir("mono");
  const std::string seg_dir = TempCorpusDir("seg");
  const RunStats mono = run_legs(mono_dir, CheckpointFormat::kMonolithic);
  const RunStats seg = run_legs(seg_dir, CheckpointFormat::kSegmented);
  ExpectSameResults(mono, reference);
  ExpectSameResults(seg, reference);

  // The v1 monolithic corpus (legacy format) still opens and reports its
  // checkpoint as a single pseudo-snapshot; the segmented chain holds one
  // compacted snapshot after the final Sync.
  const CorpusStats mono_stats = Corpus(mono_dir).Stats();
  EXPECT_FALSE(mono_stats.segmented);
  EXPECT_EQ(mono_stats.chain_snapshots, 1u);
  EXPECT_TRUE(mono_stats.complete);
  const CorpusStats seg_stats = Corpus(seg_dir).Stats();
  EXPECT_TRUE(seg_stats.segmented);
  EXPECT_EQ(seg_stats.chain_snapshots, 1u);
  EXPECT_EQ(seg_stats.chain_deltas, 0u);
  EXPECT_TRUE(seg_stats.complete);
  EXPECT_EQ(mono_stats.num_entries, seg_stats.num_entries);
}

TEST_F(MaintenanceTest, TruncatedChainTrimsToLastSnapshotAndResumesBitIdentically) {
  RunStats reference;
  {
    UnconstrainedImage constraint;
    Session session(ModelPtrs(), &constraint, BaseConfig());
    reference = session.Run(*seeds_, Bounds());
    ASSERT_GT(reference.tests.size(), 0u);
  }

  // Record with a sparse snapshot cadence and capture the chain file as it
  // exists mid-campaign — a snapshot plus trailing delta records (the final
  // Sync would otherwise compact the chain to a single snapshot).
  const std::string dir = TempCorpusDir("crash");
  const std::string chain_path = dir + "/checkpoints.bin";
  std::string mid_chain;
  {
    UnconstrainedImage constraint;
    Session session(ModelPtrs(), &constraint, BaseConfig());
    Corpus corpus(dir);
    corpus.SetSnapshotInterval(3);
    RunOptions options = Bounds();
    options.on_batch = [&](const RunProgress& progress) {
      if (progress.batches == 5) {
        std::ifstream in(chain_path, std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        mid_chain = buffer.str();
      }
    };
    session.Run(*seeds_, options, &corpus);
  }
  ASSERT_FALSE(mid_chain.empty()) << "campaign too short for the crash window";

  // Simulate a crash that cut the last record short: restore the mid-run
  // chain with its tail truncated mid-record. entries.bin / journal.bin
  // still hold the full campaign — exactly the append-ahead crash model.
  {
    std::ofstream out(chain_path, std::ios::binary | std::ios::trunc);
    ASSERT_GT(mid_chain.size(), 3u);
    out.write(mid_chain.data(), static_cast<std::streamsize>(mid_chain.size() - 3));
  }

  Corpus reopened(dir);
  ASSERT_TRUE(reopened.has_checkpoint());
  EXPECT_FALSE(reopened.checkpoint().complete);
  const uint64_t resume_batch = reopened.checkpoint().num_batches;
  EXPECT_GE(resume_batch, 1u);
  EXPECT_LT(resume_batch, 5u);  // Trimmed back to the last valid snapshot.
  // Entries and journal are trimmed to the snapshot's high-water marks.
  EXPECT_EQ(reopened.journal().size(), resume_batch);
  EXPECT_EQ(reopened.entries().size(), reopened.checkpoint().num_tests);

  // Resume with a different worker count / batch size: the dropped batches
  // re-execute deterministically and the campaign lands bit-identical.
  UnconstrainedImage constraint;
  SessionConfig config = BaseConfig();
  config.workers = 2;
  config.batch_size = 3;
  Session session(ModelPtrs(), &constraint, config);
  const RunStats resumed = session.Run(*seeds_, Bounds(), &reopened);
  EXPECT_TRUE(reopened.checkpoint().complete);
  ExpectSameResults(resumed, reference);
}

TEST_F(MaintenanceTest, ChainTruncatedThroughTheSnapshotOpensEmpty) {
  const std::string dir = TempCorpusDir("headless");
  ASSERT_GT(Record(dir).tests.size(), 0u);

  // Cut into the (single, post-Sync) snapshot record itself: no restorable
  // checkpoint remains, so the corpus opens cleanly as a fresh campaign.
  const std::string chain_path = dir + "/checkpoints.bin";
  const auto size = std::filesystem::file_size(chain_path);
  ASSERT_GT(size, 16u);
  std::filesystem::resize_file(chain_path, 16);

  Corpus reopened(dir);
  EXPECT_TRUE(reopened.initialized());
  EXPECT_FALSE(reopened.has_checkpoint());
  EXPECT_TRUE(reopened.entries().empty());
  EXPECT_TRUE(reopened.journal().empty());
}

// ---- Stats -------------------------------------------------------------------------------

TEST_F(MaintenanceTest, StatsSummarizeEntriesChainAndManifest) {
  const std::string dir = TempCorpusDir("stats");
  RunStats recorded;
  {
    UnconstrainedImage constraint;
    Session session(ModelPtrs(), &constraint, BaseConfig());
    Corpus corpus(dir);
    corpus.SetMetadata("domain", "toy-domain");
    recorded = session.Run(*seeds_, Bounds(), &corpus);
    ASSERT_GT(recorded.tests.size(), 0u);
  }

  const Corpus corpus(dir);
  const CorpusStats stats = corpus.Stats();
  EXPECT_EQ(stats.domain, "toy-domain");
  EXPECT_EQ(stats.metric, "neuron");
  EXPECT_EQ(stats.objective, "joint");
  EXPECT_EQ(stats.scheduler, "roundrobin");
  EXPECT_EQ(stats.num_entries, recorded.tests.size());
  EXPECT_EQ(stats.num_seeds, seeds_->size());
  EXPECT_EQ(stats.journal_batches, corpus.journal().size());
  EXPECT_TRUE(stats.segmented);
  EXPECT_TRUE(stats.complete);
  EXPECT_FLOAT_EQ(stats.mean_coverage, recorded.mean_coverage);
  ASSERT_EQ(stats.entries_per_model.size(), 3u);
  uint64_t attributed = 0;
  for (const uint64_t n : stats.entries_per_model) {
    attributed += n;
  }
  EXPECT_EQ(attributed, stats.num_entries);
  EXPECT_GT(stats.manifest_bytes, 0u);
  EXPECT_GT(stats.entries_bytes, 0u);
  EXPECT_GT(stats.journal_bytes, 0u);
  EXPECT_GT(stats.checkpoint_bytes, 0u);
  EXPECT_EQ(stats.total_bytes, stats.manifest_bytes + stats.entries_bytes +
                                   stats.journal_bytes + stats.checkpoint_bytes);
}

}  // namespace
}  // namespace dx

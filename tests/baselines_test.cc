// Baseline generators: FGSM adversarial inputs and random test selection.
#include <gtest/gtest.h>

#include <cmath>

#include "src/baselines/adversarial.h"
#include "src/baselines/random_testing.h"
#include "src/data/synthetic_digits.h"
#include "src/models/trainer.h"
#include "src/models/zoo.h"
#include "src/nn/loss.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace dx {
namespace {

class AdversarialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new Dataset(MakeSyntheticDigits(300, 31));
    model_ = new Model(ModelZoo::Build("MNI_C1", 3));
    TrainConfig cfg;
    cfg.epochs = 6;
    cfg.learning_rate = 3e-3f;
    cfg.seed = 32;
    Trainer::Fit(model_, *data_, cfg);
    ASSERT_GT(Trainer::Accuracy(*model_, *data_), 0.85f);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete data_;
    model_ = nullptr;
    data_ = nullptr;
  }

  static Dataset* data_;
  static Model* model_;
};

Dataset* AdversarialTest::data_ = nullptr;
Model* AdversarialTest::model_ = nullptr;

TEST_F(AdversarialTest, PerturbationBoundedByEpsilonInfinityNorm) {
  const float eps = 0.1f;
  const Tensor& x = data_->inputs[0];
  const Tensor adv = Fgsm(*model_, x, data_->Label(0), 0.0f, eps);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_LE(std::abs(adv[i] - x[i]), eps + 1e-6f);
  }
  EXPECT_GE(adv.Min(), 0.0f);
  EXPECT_LE(adv.Max(), 1.0f);
}

TEST_F(AdversarialTest, IncreasesTrueClassLoss) {
  SoftmaxCrossEntropy ce;
  int increased = 0;
  const int trials = 20;
  for (int i = 0; i < trials; ++i) {
    const Tensor& x = data_->inputs[static_cast<size_t>(i)];
    const int label = data_->Label(i);
    const Tensor adv = Fgsm(*model_, x, label, 0.0f, 0.15f);
    const float before = ce.Compute(*model_, model_->Forward(x), OneHot(label, 10)).loss;
    const float after = ce.Compute(*model_, model_->Forward(adv), OneHot(label, 10)).loss;
    increased += after > before ? 1 : 0;
  }
  EXPECT_GE(increased, trials * 3 / 4);  // FGSM ascends the loss surface.
}

TEST_F(AdversarialTest, SomeAdversarialInputsFlipPredictions) {
  int flips = 0;
  for (int i = 0; i < 60; ++i) {
    const Tensor& x = data_->inputs[static_cast<size_t>(i)];
    const int pred = model_->PredictClass(x);
    const Tensor adv = Fgsm(*model_, x, data_->Label(i), 0.0f, 0.25f);
    flips += model_->PredictClass(adv) != pred ? 1 : 0;
  }
  EXPECT_GT(flips, 0);
}

TEST_F(AdversarialTest, BatchGeneratorShapesAndBounds) {
  Rng rng(33);
  const auto advs = AdversarialInputs(*model_, *data_, 10, 0.1f, rng);
  EXPECT_EQ(advs.size(), 10u);
  for (const Tensor& t : advs) {
    EXPECT_EQ(t.shape(), data_->input_shape);
  }
  EXPECT_THROW(AdversarialInputs(*model_, *data_, data_->size() + 1, 0.1f, rng),
               std::invalid_argument);
}

TEST(RandomTestingTest, SelectsDistinctDatasetMembers) {
  const Dataset data = MakeSyntheticDigits(50, 34);
  Rng rng(35);
  const auto picks = RandomInputs(data, 20, rng);
  EXPECT_EQ(picks.size(), 20u);
  // Every pick is an actual dataset member.
  for (const Tensor& p : picks) {
    bool found = false;
    for (const Tensor& x : data.inputs) {
      if (L1Distance(p, x) == 0.0f) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
  EXPECT_THROW(RandomInputs(data, 51, rng), std::invalid_argument);
}

TEST(RandomTestingTest, DeterministicGivenSeed) {
  const Dataset data = MakeSyntheticDigits(30, 36);
  Rng a(37);
  Rng b(37);
  const auto pa = RandomInputs(data, 5, a);
  const auto pb = RandomInputs(data, 5, b);
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_FLOAT_EQ(L1Distance(pa[i], pb[i]), 0.0f);
  }
}

}  // namespace
}  // namespace dx

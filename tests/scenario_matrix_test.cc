// Golden scenario-matrix regression harness: every registry combination of
// dataset x coverage metric x objective x seed scheduler runs a short
// fixed-seed Session and must reproduce the checked-in golden results
// (difference counts, iteration/forward-pass counters, per-model covered
// coverage items) bit for bit — at every batch size / worker count combo in
// {1, 8} x {1, 4}, extending the batch/worker invariance guarantee to the
// full configuration space.
//
// Goldens live in tests/goldens/scenario_matrix_<domain>.json. Integer
// metrics (test/seed/iteration/forward-pass counts, covered items) are
// compared exactly; float metrics are compared under the per-metric ULP/abs
// tolerances recorded in each golden file's "tolerances" header, so a
// toolchain change that shifts float bits within tolerance does NOT require
// a re-record. After an intentional engine change — or a float shift large
// enough to move the integer metrics — re-record with
// tools/record_goldens.sh and review the diff. Recording mode is selected by
// the DX_RECORD_GOLDENS=1 environment variable.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/constraints/constraint.h"
#include "src/core/domain.h"
#include "src/core/objective.h"
#include "src/core/seed_scheduler.h"
#include "src/core/session.h"
#include "src/coverage/coverage_metric.h"
#include "src/models/zoo.h"
#include "tests/test_util.h"

namespace dx {
namespace {

// Must run before any zoo access: shrink datasets/epochs for CI-speed runs.
struct FastModeEnv {
  FastModeEnv() { ::setenv("DEEPXPLORE_FAST", "1", 1); }
};
const FastModeEnv fast_mode_env;

// Scenario-matrix run shape: small enough that the full domains x metrics x
// objectives x schedulers cross product at four batch/worker combos stays
// CI-sized, large enough that schedulers recycle seeds (two passes) and
// coverage accumulates.
constexpr int kSeeds = 6;
constexpr int kIters = 6;
constexpr int kPasses = 2;
constexpr uint64_t kRngSeed = 77;

struct ScenarioResult {
  std::string key;  // "metric/objective/scheduler"
  int tests = 0;
  int tried = 0;
  int skipped = 0;
  int64_t iterations = 0;
  int64_t forward_passes = 0;
  float mean_coverage = 0.0f;  // Float metric: golden-compared under tolerance.
  std::vector<int> covered;    // Per model, session order.
  std::vector<int> total;
};

// Per-metric golden tolerances: metric name -> ULP/abs bound. Metrics absent
// from the map are exact (integers always are). The defaults here are also
// what WriteGoldens records into the file header, so the tolerance that a
// golden was recorded under travels with the golden.
using ToleranceMap = std::map<std::string, testing::FloatTolerance>;

ToleranceMap DefaultTolerances() {
  // mean_coverage is a ratio of integer counts; any drift within one part in
  // ~1e-4 means the counts themselves moved, which the exact integer metrics
  // catch first. The ULP term absorbs pure summation-order / libm drift.
  return {{"mean_coverage", testing::FloatTolerance{64, 1e-4f}}};
}

// Display names are free-form (third-party domains may use spaces or
// slashes); keep file names and gtest identifiers to [A-Za-z0-9_].
std::string SanitizedName(const DomainSpec& spec) {
  return testing::SanitizeTestName(spec.display_name);
}

std::string GoldenPath(const DomainSpec& spec) {
  return std::string(DX_SOURCE_DIR) + "/tests/goldens/scenario_matrix_" +
         SanitizedName(spec) + ".json";
}

// The domain's Table 2-flavored hyperparameters, scaled to the short run.
EngineConfig DomainEngine(const DomainSpec& spec) {
  EngineConfig config = spec.engine_defaults;
  config.max_iterations_per_seed = kIters;
  config.rng_seed = kRngSeed;
  return config;
}

ScenarioResult RunScenario(std::vector<Model*> models, const Constraint* constraint,
                           const DomainSpec& spec, const std::string& metric,
                           const std::string& objective, const std::string& scheduler,
                           int batch_size, int workers) {
  SessionConfig config;
  config.engine = DomainEngine(spec);
  config.metric = metric;
  config.objective = objective;
  config.scheduler = scheduler;
  config.batch_size = batch_size;
  config.workers = workers;
  Session session(models, constraint, config);
  RunOptions options;
  options.max_seed_passes = kPasses;
  const Dataset& test = ModelZoo::TestSet(spec.key);
  std::vector<Tensor> seeds;
  for (int i = 0; i < kSeeds; ++i) {
    seeds.push_back(test.inputs[static_cast<size_t>(i % test.size())]);
  }
  const RunStats stats = session.Run(seeds, options);

  ScenarioResult result;
  result.key = metric + "/" + objective + "/" + scheduler;
  result.tests = static_cast<int>(stats.tests.size());
  result.tried = stats.seeds_tried;
  result.skipped = stats.seeds_skipped;
  result.iterations = stats.total_iterations;
  result.forward_passes = stats.forward_passes;
  result.mean_coverage = stats.mean_coverage;
  for (int k = 0; k < session.num_models(); ++k) {
    result.covered.push_back(session.metric(k).covered_items());
    result.total.push_back(session.metric(k).total_items());
  }
  return result;
}

// ---- Golden JSON (one scenario object per line, parsed with string ops) ------------------

std::string IntListToJson(const std::vector<int>& v) {
  std::string out = "[";
  for (size_t i = 0; i < v.size(); ++i) {
    out += (i ? ", " : "") + std::to_string(v[i]);
  }
  return out + "]";
}

// Round-trip float formatting: max_digits10 significant digits guarantee the
// parsed value is bit-identical to the recorded one, so a 0-ULP tolerance on
// an unchanged toolchain still passes.
std::string FloatToJson(float f) {
  std::ostringstream out;
  out << std::setprecision(std::numeric_limits<float>::max_digits10) << f;
  return out.str();
}

void WriteGoldens(const DomainSpec& spec, const std::vector<ScenarioResult>& results) {
  std::ofstream out(GoldenPath(spec));
  ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath(spec);
  const ToleranceMap tolerances = DefaultTolerances();
  out << "{\n";
  out << "  \"domain\": \"" << spec.display_name << "\",\n";
  out << "  \"config\": {\"seeds\": " << kSeeds << ", \"iters\": " << kIters
      << ", \"passes\": " << kPasses << ", \"rng_seed\": " << kRngSeed << "},\n";
  out << "  \"tolerances\": {";
  size_t t = 0;
  for (const auto& [metric, tol] : tolerances) {
    out << (t++ ? ", " : "") << "\"" << metric << "\": {\"ulp\": " << tol.max_ulp
        << ", \"abs\": " << FloatToJson(tol.max_abs) << "}";
  }
  out << "},\n";
  out << "  \"scenarios\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    out << "    {\"key\": \"" << r.key << "\", \"tests\": " << r.tests
        << ", \"tried\": " << r.tried << ", \"skipped\": " << r.skipped
        << ", \"iterations\": " << r.iterations
        << ", \"forward_passes\": " << r.forward_passes
        << ", \"mean_coverage\": " << FloatToJson(r.mean_coverage)
        << ", \"covered\": " << IntListToJson(r.covered)
        << ", \"total\": " << IntListToJson(r.total) << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

bool ExtractString(const std::string& line, const std::string& field, std::string* out) {
  const std::string needle = "\"" + field + "\": \"";
  const size_t begin = line.find(needle);
  if (begin == std::string::npos) {
    return false;
  }
  const size_t end = line.find('"', begin + needle.size());
  if (end == std::string::npos) {
    return false;
  }
  *out = line.substr(begin + needle.size(), end - begin - needle.size());
  return true;
}

bool ExtractInt(const std::string& line, const std::string& field, int64_t* out) {
  const std::string needle = "\"" + field + "\": ";
  const size_t begin = line.find(needle);
  if (begin == std::string::npos) {
    return false;
  }
  *out = std::strtoll(line.c_str() + begin + needle.size(), nullptr, 10);
  return true;
}

bool ExtractFloat(const std::string& line, const std::string& field, float* out) {
  const std::string needle = "\"" + field + "\": ";
  const size_t begin = line.find(needle);
  if (begin == std::string::npos) {
    return false;
  }
  *out = std::strtof(line.c_str() + begin + needle.size(), nullptr);
  return true;
}

// Parses the "tolerances" header line: {"metric": {"ulp": N, "abs": X}, ...}.
// Files recorded before the tolerance header existed simply yield an empty
// map, which means every metric is compared exactly.
ToleranceMap ExtractTolerances(const std::string& line) {
  ToleranceMap tolerances;
  size_t pos = 0;
  while (true) {
    const size_t name_begin = line.find('"', pos);
    if (name_begin == std::string::npos) {
      break;
    }
    const size_t name_end = line.find('"', name_begin + 1);
    if (name_end == std::string::npos) {
      break;
    }
    const std::string name = line.substr(name_begin + 1, name_end - name_begin - 1);
    pos = name_end + 1;
    if (name == "tolerances" || name == "ulp" || name == "abs") {
      continue;
    }
    testing::FloatTolerance tol;
    const std::string entry = line.substr(pos, line.find('}', pos) - pos);
    int64_t ulp = 0;
    float abs = 0.0f;
    if (ExtractInt(entry, "ulp", &ulp)) {
      tol.max_ulp = ulp;
    }
    if (ExtractFloat(entry, "abs", &abs)) {
      tol.max_abs = abs;
    }
    tolerances[name] = tol;
    pos = line.find('}', pos);
    if (pos == std::string::npos) {
      break;
    }
  }
  return tolerances;
}

bool ExtractIntList(const std::string& line, const std::string& field,
                    std::vector<int>* out) {
  const std::string needle = "\"" + field + "\": [";
  const size_t begin = line.find(needle);
  if (begin == std::string::npos) {
    return false;
  }
  const size_t end = line.find(']', begin);
  if (end == std::string::npos) {
    return false;
  }
  out->clear();
  std::istringstream items(line.substr(begin + needle.size(), end - begin - needle.size()));
  std::string item;
  while (std::getline(items, item, ',')) {
    out->push_back(std::atoi(item.c_str()));
  }
  return true;
}

struct GoldenFile {
  std::map<std::string, ScenarioResult> scenarios;
  ToleranceMap tolerances;  // Empty (all-exact) for pre-tolerance files.
};

GoldenFile LoadGoldens(const DomainSpec& spec) {
  GoldenFile golden;
  std::ifstream in(GoldenPath(spec));
  EXPECT_TRUE(in.good()) << "missing golden file " << GoldenPath(spec)
                         << " — record it with tools/record_goldens.sh";
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"tolerances\"") != std::string::npos) {
      golden.tolerances = ExtractTolerances(line);
      continue;
    }
    ScenarioResult r;
    if (!ExtractString(line, "key", &r.key)) {
      continue;  // Header / structural line.
    }
    int64_t value = 0;
    EXPECT_TRUE(ExtractInt(line, "tests", &value)) << line;
    r.tests = static_cast<int>(value);
    EXPECT_TRUE(ExtractInt(line, "tried", &value)) << line;
    r.tried = static_cast<int>(value);
    EXPECT_TRUE(ExtractInt(line, "skipped", &value)) << line;
    r.skipped = static_cast<int>(value);
    EXPECT_TRUE(ExtractInt(line, "iterations", &r.iterations)) << line;
    EXPECT_TRUE(ExtractInt(line, "forward_passes", &r.forward_passes)) << line;
    EXPECT_TRUE(ExtractFloat(line, "mean_coverage", &r.mean_coverage)) << line;
    EXPECT_TRUE(ExtractIntList(line, "covered", &r.covered)) << line;
    EXPECT_TRUE(ExtractIntList(line, "total", &r.total)) << line;
    golden.scenarios[r.key] = r;
  }
  return golden;
}

// Looks up `metric` in the tolerance map; absent metrics are exact.
testing::FloatTolerance MetricTolerance(const ToleranceMap& tolerances,
                                        const std::string& metric) {
  const auto it = tolerances.find(metric);
  return it == tolerances.end() ? testing::kExactTolerance : it->second;
}

void ExpectFloatMetricNear(float got, float want, const testing::FloatTolerance& tol,
                           const std::string& context) {
  if (std::abs(got - want) <= tol.max_abs) {
    return;
  }
  const int64_t ulp = testing::UlpDistance(got, want);
  EXPECT_LE(ulp, tol.max_ulp) << context << ": got " << FloatToJson(got) << " want "
                              << FloatToJson(want) << " (tolerance " << tol.max_ulp
                              << " ULP / " << FloatToJson(tol.max_abs) << " abs)";
}

// Integer metrics compare exactly; float metrics under the per-metric
// tolerance (pass an empty map for the all-exact comparison used by the
// batch/worker invariance sweep, where bit-identity is the contract).
void ExpectSameScenario(const ScenarioResult& got, const ScenarioResult& want,
                        const ToleranceMap& tolerances, const std::string& context) {
  EXPECT_EQ(got.tests, want.tests) << context;
  EXPECT_EQ(got.tried, want.tried) << context;
  EXPECT_EQ(got.skipped, want.skipped) << context;
  EXPECT_EQ(got.iterations, want.iterations) << context;
  EXPECT_EQ(got.forward_passes, want.forward_passes) << context;
  ExpectFloatMetricNear(got.mean_coverage, want.mean_coverage,
                        MetricTolerance(tolerances, "mean_coverage"),
                        context + " mean_coverage");
  EXPECT_EQ(got.covered, want.covered) << context;
  EXPECT_EQ(got.total, want.total) << context;
}

// ---- The matrix --------------------------------------------------------------------------

class ScenarioMatrixTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioMatrixTest, FullRegistryCrossProductMatchesGoldens) {
  const DomainSpec& spec = GetDomain(GetParam());
  const bool recording = std::getenv("DX_RECORD_GOLDENS") != nullptr;
  std::vector<Model> models = ModelZoo::TrainedDomain(spec.key);
  std::vector<Model*> ptrs;
  for (Model& m : models) {
    ptrs.push_back(&m);
  }
  const auto constraint = MakeDomainConstraint(spec, "default");

  std::vector<ScenarioResult> results;
  for (const std::string& metric : CoverageMetricNames()) {
    for (const std::string& objective : ObjectiveNames()) {
      for (const std::string& scheduler : SeedSchedulerNames()) {
        const ScenarioResult canonical = RunScenario(
            ptrs, constraint.get(), spec, metric, objective, scheduler,
            /*batch_size=*/1, /*workers=*/1);
        // Batch/worker invariance across the whole configuration space: all
        // four combos must reproduce the canonical result exactly.
        for (const int batch_size : {1, 8}) {
          for (const int workers : {1, 4}) {
            if (batch_size == 1 && workers == 1) {
              continue;
            }
            const ScenarioResult variant =
                RunScenario(ptrs, constraint.get(), spec, metric, objective, scheduler,
                            batch_size, workers);
            // Bit-identity contract: no tolerance across batch/worker combos.
            ExpectSameScenario(variant, canonical, ToleranceMap{},
                               spec.display_name + "/" + canonical.key + " batch=" +
                                   std::to_string(batch_size) + " workers=" +
                                   std::to_string(workers));
          }
        }
        results.push_back(canonical);
      }
    }
  }

  if (recording) {
    WriteGoldens(spec, results);
    return;
  }
  const GoldenFile golden = LoadGoldens(spec);
  EXPECT_EQ(golden.scenarios.size(), results.size())
      << "golden file and registry cross-product disagree — re-record with "
         "tools/record_goldens.sh";
  for (const ScenarioResult& result : results) {
    const auto it = golden.scenarios.find(result.key);
    if (it == golden.scenarios.end()) {
      ADD_FAILURE() << spec.display_name << "/" << result.key
                    << " has no golden — re-record with tools/record_goldens.sh";
      continue;
    }
    ExpectSameScenario(result, it->second, golden.tolerances,
                       spec.display_name + "/" + result.key);
  }
}

std::string DomainTestName(const ::testing::TestParamInfo<std::string>& info) {
  return SanitizedName(GetDomain(info.param));
}

// Every registered domain — the five paper domains plus any registered
// out-of-paper domain — is pinned by the golden matrix automatically.
INSTANTIATE_TEST_SUITE_P(AllDomains, ScenarioMatrixTest,
                         ::testing::ValuesIn(DomainKeys()), DomainTestName);

}  // namespace
}  // namespace dx

// Golden scenario-matrix regression harness: every registry combination of
// dataset x coverage metric x objective x seed scheduler runs a short
// fixed-seed Session and must reproduce the checked-in golden results
// (difference counts, iteration/forward-pass counters, per-model covered
// coverage items) bit for bit — at every batch size / worker count combo in
// {1, 8} x {1, 4}, extending the batch/worker invariance guarantee to the
// full configuration space.
//
// Goldens live in tests/goldens/scenario_matrix_<domain>.json. They are a
// per-toolchain artifact (bit-exact floating point): after an intentional
// engine change — or a compiler change that shifts float bits — re-record
// them with tools/record_goldens.sh and review the diff. Recording mode is
// selected by the DX_RECORD_GOLDENS=1 environment variable.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/constraints/constraint.h"
#include "src/core/domain.h"
#include "src/core/objective.h"
#include "src/core/seed_scheduler.h"
#include "src/core/session.h"
#include "src/coverage/coverage_metric.h"
#include "src/models/zoo.h"
#include "tests/test_util.h"

namespace dx {
namespace {

// Must run before any zoo access: shrink datasets/epochs for CI-speed runs.
struct FastModeEnv {
  FastModeEnv() { ::setenv("DEEPXPLORE_FAST", "1", 1); }
};
const FastModeEnv fast_mode_env;

// Scenario-matrix run shape: small enough that the full domains x metrics x
// objectives x schedulers cross product at four batch/worker combos stays
// CI-sized, large enough that schedulers recycle seeds (two passes) and
// coverage accumulates.
constexpr int kSeeds = 6;
constexpr int kIters = 6;
constexpr int kPasses = 2;
constexpr uint64_t kRngSeed = 77;

struct ScenarioResult {
  std::string key;  // "metric/objective/scheduler"
  int tests = 0;
  int tried = 0;
  int skipped = 0;
  int64_t iterations = 0;
  int64_t forward_passes = 0;
  std::vector<int> covered;  // Per model, session order.
  std::vector<int> total;
};

// Display names are free-form (third-party domains may use spaces or
// slashes); keep file names and gtest identifiers to [A-Za-z0-9_].
std::string SanitizedName(const DomainSpec& spec) {
  return testing::SanitizeTestName(spec.display_name);
}

std::string GoldenPath(const DomainSpec& spec) {
  return std::string(DX_SOURCE_DIR) + "/tests/goldens/scenario_matrix_" +
         SanitizedName(spec) + ".json";
}

// The domain's Table 2-flavored hyperparameters, scaled to the short run.
EngineConfig DomainEngine(const DomainSpec& spec) {
  EngineConfig config = spec.engine_defaults;
  config.max_iterations_per_seed = kIters;
  config.rng_seed = kRngSeed;
  return config;
}

ScenarioResult RunScenario(std::vector<Model*> models, const Constraint* constraint,
                           const DomainSpec& spec, const std::string& metric,
                           const std::string& objective, const std::string& scheduler,
                           int batch_size, int workers) {
  SessionConfig config;
  config.engine = DomainEngine(spec);
  config.metric = metric;
  config.objective = objective;
  config.scheduler = scheduler;
  config.batch_size = batch_size;
  config.workers = workers;
  Session session(models, constraint, config);
  RunOptions options;
  options.max_seed_passes = kPasses;
  const Dataset& test = ModelZoo::TestSet(spec.key);
  std::vector<Tensor> seeds;
  for (int i = 0; i < kSeeds; ++i) {
    seeds.push_back(test.inputs[static_cast<size_t>(i % test.size())]);
  }
  const RunStats stats = session.Run(seeds, options);

  ScenarioResult result;
  result.key = metric + "/" + objective + "/" + scheduler;
  result.tests = static_cast<int>(stats.tests.size());
  result.tried = stats.seeds_tried;
  result.skipped = stats.seeds_skipped;
  result.iterations = stats.total_iterations;
  result.forward_passes = stats.forward_passes;
  for (int k = 0; k < session.num_models(); ++k) {
    result.covered.push_back(session.metric(k).covered_items());
    result.total.push_back(session.metric(k).total_items());
  }
  return result;
}

// ---- Golden JSON (one scenario object per line, parsed with string ops) ------------------

std::string IntListToJson(const std::vector<int>& v) {
  std::string out = "[";
  for (size_t i = 0; i < v.size(); ++i) {
    out += (i ? ", " : "") + std::to_string(v[i]);
  }
  return out + "]";
}

void WriteGoldens(const DomainSpec& spec, const std::vector<ScenarioResult>& results) {
  std::ofstream out(GoldenPath(spec));
  ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath(spec);
  out << "{\n";
  out << "  \"domain\": \"" << spec.display_name << "\",\n";
  out << "  \"config\": {\"seeds\": " << kSeeds << ", \"iters\": " << kIters
      << ", \"passes\": " << kPasses << ", \"rng_seed\": " << kRngSeed << "},\n";
  out << "  \"scenarios\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    out << "    {\"key\": \"" << r.key << "\", \"tests\": " << r.tests
        << ", \"tried\": " << r.tried << ", \"skipped\": " << r.skipped
        << ", \"iterations\": " << r.iterations
        << ", \"forward_passes\": " << r.forward_passes
        << ", \"covered\": " << IntListToJson(r.covered)
        << ", \"total\": " << IntListToJson(r.total) << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

bool ExtractString(const std::string& line, const std::string& field, std::string* out) {
  const std::string needle = "\"" + field + "\": \"";
  const size_t begin = line.find(needle);
  if (begin == std::string::npos) {
    return false;
  }
  const size_t end = line.find('"', begin + needle.size());
  if (end == std::string::npos) {
    return false;
  }
  *out = line.substr(begin + needle.size(), end - begin - needle.size());
  return true;
}

bool ExtractInt(const std::string& line, const std::string& field, int64_t* out) {
  const std::string needle = "\"" + field + "\": ";
  const size_t begin = line.find(needle);
  if (begin == std::string::npos) {
    return false;
  }
  *out = std::strtoll(line.c_str() + begin + needle.size(), nullptr, 10);
  return true;
}

bool ExtractIntList(const std::string& line, const std::string& field,
                    std::vector<int>* out) {
  const std::string needle = "\"" + field + "\": [";
  const size_t begin = line.find(needle);
  if (begin == std::string::npos) {
    return false;
  }
  const size_t end = line.find(']', begin);
  if (end == std::string::npos) {
    return false;
  }
  out->clear();
  std::istringstream items(line.substr(begin + needle.size(), end - begin - needle.size()));
  std::string item;
  while (std::getline(items, item, ',')) {
    out->push_back(std::atoi(item.c_str()));
  }
  return true;
}

std::map<std::string, ScenarioResult> LoadGoldens(const DomainSpec& spec) {
  std::map<std::string, ScenarioResult> goldens;
  std::ifstream in(GoldenPath(spec));
  EXPECT_TRUE(in.good()) << "missing golden file " << GoldenPath(spec)
                         << " — record it with tools/record_goldens.sh";
  std::string line;
  while (std::getline(in, line)) {
    ScenarioResult r;
    if (!ExtractString(line, "key", &r.key)) {
      continue;  // Header / structural line.
    }
    int64_t value = 0;
    EXPECT_TRUE(ExtractInt(line, "tests", &value)) << line;
    r.tests = static_cast<int>(value);
    EXPECT_TRUE(ExtractInt(line, "tried", &value)) << line;
    r.tried = static_cast<int>(value);
    EXPECT_TRUE(ExtractInt(line, "skipped", &value)) << line;
    r.skipped = static_cast<int>(value);
    EXPECT_TRUE(ExtractInt(line, "iterations", &r.iterations)) << line;
    EXPECT_TRUE(ExtractInt(line, "forward_passes", &r.forward_passes)) << line;
    EXPECT_TRUE(ExtractIntList(line, "covered", &r.covered)) << line;
    EXPECT_TRUE(ExtractIntList(line, "total", &r.total)) << line;
    goldens[r.key] = r;
  }
  return goldens;
}

void ExpectSameScenario(const ScenarioResult& got, const ScenarioResult& want,
                        const std::string& context) {
  EXPECT_EQ(got.tests, want.tests) << context;
  EXPECT_EQ(got.tried, want.tried) << context;
  EXPECT_EQ(got.skipped, want.skipped) << context;
  EXPECT_EQ(got.iterations, want.iterations) << context;
  EXPECT_EQ(got.forward_passes, want.forward_passes) << context;
  EXPECT_EQ(got.covered, want.covered) << context;
  EXPECT_EQ(got.total, want.total) << context;
}

// ---- The matrix --------------------------------------------------------------------------

class ScenarioMatrixTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioMatrixTest, FullRegistryCrossProductMatchesGoldens) {
  const DomainSpec& spec = GetDomain(GetParam());
  const bool recording = std::getenv("DX_RECORD_GOLDENS") != nullptr;
  std::vector<Model> models = ModelZoo::TrainedDomain(spec.key);
  std::vector<Model*> ptrs;
  for (Model& m : models) {
    ptrs.push_back(&m);
  }
  const auto constraint = MakeDomainConstraint(spec, "default");

  std::vector<ScenarioResult> results;
  for (const std::string& metric : CoverageMetricNames()) {
    for (const std::string& objective : ObjectiveNames()) {
      for (const std::string& scheduler : SeedSchedulerNames()) {
        const ScenarioResult canonical = RunScenario(
            ptrs, constraint.get(), spec, metric, objective, scheduler,
            /*batch_size=*/1, /*workers=*/1);
        // Batch/worker invariance across the whole configuration space: all
        // four combos must reproduce the canonical result exactly.
        for (const int batch_size : {1, 8}) {
          for (const int workers : {1, 4}) {
            if (batch_size == 1 && workers == 1) {
              continue;
            }
            const ScenarioResult variant =
                RunScenario(ptrs, constraint.get(), spec, metric, objective, scheduler,
                            batch_size, workers);
            ExpectSameScenario(variant, canonical,
                               spec.display_name + "/" + canonical.key + " batch=" +
                                   std::to_string(batch_size) + " workers=" +
                                   std::to_string(workers));
          }
        }
        results.push_back(canonical);
      }
    }
  }

  if (recording) {
    WriteGoldens(spec, results);
    return;
  }
  const std::map<std::string, ScenarioResult> goldens = LoadGoldens(spec);
  EXPECT_EQ(goldens.size(), results.size())
      << "golden file and registry cross-product disagree — re-record with "
         "tools/record_goldens.sh";
  for (const ScenarioResult& result : results) {
    const auto it = goldens.find(result.key);
    if (it == goldens.end()) {
      ADD_FAILURE() << spec.display_name << "/" << result.key
                    << " has no golden — re-record with tools/record_goldens.sh";
      continue;
    }
    ExpectSameScenario(result, it->second, spec.display_name + "/" + result.key);
  }
}

std::string DomainTestName(const ::testing::TestParamInfo<std::string>& info) {
  return SanitizedName(GetDomain(info.param));
}

// Every registered domain — the five paper domains plus any registered
// out-of-paper domain — is pinned by the golden matrix automatically.
INSTANTIATE_TEST_SUITE_P(AllDomains, ScenarioMatrixTest,
                         ::testing::ValuesIn(DomainKeys()), DomainTestName);

}  // namespace
}  // namespace dx

// Architecture sweep: for every one of the 15 zoo models (untrained,
// randomly initialized), the input gradient of an output unit computed by
// BackwardInput must match central differences. This guards the exact
// primitive DeepXplore relies on across every layer combination the zoo uses
// (conv stacks, residual blocks, batch-norm, dropout-at-inference, softmax
// and regression heads).
//
// Full-input numeric differencing would need thousands of forwards per
// model; instead a fixed random subset of input coordinates is checked.
#include <gtest/gtest.h>

#include <cmath>

#include "src/models/zoo.h"
#include "src/util/rng.h"

namespace dx {
namespace {

class ZooGradientTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooGradientTest, OutputGradientMatchesNumericOnSampledCoordinates) {
  const std::string name = GetParam();
  Model model = ModelZoo::Build(name, /*seed=*/2718);
  Rng rng(314);
  // Positive-leaning inputs keep ReLU pre-activations mostly off their kinks.
  Tensor x = Tensor::RandUniform(model.input_shape(), rng, 0.05f, 0.95f);

  const ForwardTrace trace = model.Forward(x);
  const int last = model.num_layers() - 1;
  Tensor seed(model.output_shape());
  seed[0] = 1.0f;  // d(output[0]) / d(input).
  const Tensor analytic = model.BackwardInput(trace, last, seed);

  const auto output0 = [&](const Tensor& xx) {
    return static_cast<double>(model.Predict(xx)[0]);
  };

  const int checks = 24;
  const float eps = 5e-3f;
  int kink_skips = 0;
  for (int c = 0; c < checks; ++c) {
    const int64_t i = rng.UniformInt(0, x.numel() - 1);
    const float orig = x[i];
    x[i] = orig + eps;
    const double plus = output0(x);
    x[i] = orig - eps;
    const double minus = output0(x);
    x[i] = orig;
    const float numeric = static_cast<float>((plus - minus) / (2.0 * eps));
    const float denom = std::max({1.0f, std::abs(numeric), std::abs(analytic[i])});
    const float rel_err = std::abs(numeric - analytic[i]) / denom;
    if (rel_err > 3e-2f && ++kink_skips <= 2) {
      continue;  // Tolerate at most two ReLU/maxpool kink crossings.
    }
    EXPECT_LT(rel_err, 3e-2f) << name << " coordinate " << i;
  }
}

std::string NameOf(const ::testing::TestParamInfo<std::string>& info) {
  return info.param;
}

std::vector<std::string> AllZooNames() {
  std::vector<std::string> names;
  for (const ModelInfo& info : ZooModels()) {
    names.push_back(info.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooGradientTest, ::testing::ValuesIn(AllZooNames()),
                         NameOf);

}  // namespace
}  // namespace dx

// ExecutionPlan equivalence: the compiled zero-allocation path must match
// the by-value Model API — forward traces (outputs AND aux), batched input
// gradients, per-sample objective backprop, and the width-1 sample trace —
// across layer types, widths, and width changes (the plan's buffers are
// reused in place between calls).
//
// Since the SIMD/GEMM kernel rewrite the plan path runs conv2d and dense
// forward through im2col + GemmBias (src/nn/gemm.h), which accumulates in a
// different order than the by-value scalar kernels — the reference oracle.
// Comparisons against the oracle are therefore tolerance-checked (ULP + abs
// floor, tests/test_util.h); layers without SIMD kernels stay bit-exact.
// The plan path remains bit-identical to ITSELF at any batch width, worker
// count, and SIMD backend — those invariants are pinned elsewhere
// (tests/batch_exec_test.cc, tests/gemm_kernel_test.cc).
#include "src/nn/execution_plan.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/nn/batchnorm.h"
#include "src/nn/conv2d.h"
#include "src/nn/dense.h"
#include "src/nn/dropout.h"
#include "src/nn/flatten.h"
#include "src/nn/model.h"
#include "src/nn/pool2d.h"
#include "src/nn/residual.h"
#include "src/nn/softmax_layer.h"
#include "src/tensor/ops.h"
#include "src/tensor/workspace.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace dx {
namespace {

using testing::ExpectTensorsNear;
using testing::FloatTolerance;
using testing::kExactTolerance;
using testing::kKernelBackwardTolerance;
using testing::kKernelForwardTolerance;

Model MakeConvModel(uint64_t seed) {
  Model m("conv", {1, 10, 10});
  Rng rng(seed);
  auto& c1 = m.Emplace<Conv2D>(1, 4, 3, 3, 1, 0, Activation::kRelu);
  c1.InitParams(rng);
  m.Emplace<Pool2D>(PoolMode::kMax, 2);
  m.Emplace<Flatten>();
  auto& d1 = m.Emplace<Dense>(4 * 4 * 4, 6, Activation::kTanh);
  d1.InitParams(rng);
  m.Emplace<SoftmaxLayer>();
  return m;
}

Model MakeResidualModel(uint64_t seed) {
  Model m("residual", {2, 8, 8});
  Rng rng(seed);
  auto& c1 = m.Emplace<Conv2D>(2, 4, 3, 3, 1, 1, Activation::kRelu);
  c1.InitParams(rng);
  auto& r1 = m.Emplace<ResidualBlock>(4, 8, 2);
  r1.InitParams(rng);
  auto& bn = m.Emplace<BatchNorm>(8);
  bn.SetStatistics(std::vector<float>(8, 0.1f), std::vector<float>(8, 1.5f));
  m.Emplace<Pool2D>(PoolMode::kAvg, 2);
  m.Emplace<Dropout>(0.25f);
  m.Emplace<Flatten>();
  auto& d1 = m.Emplace<Dense>(8 * 2 * 2, 5);
  d1.InitParams(rng);
  m.Emplace<SoftmaxLayer>();
  return m;
}

Tensor RandomBatch(const Model& model, int width, uint64_t seed) {
  Rng rng(seed);
  return Tensor::RandUniform(BatchedShape(width, model.input_shape()), rng);
}

void ExpectTracesNear(const BatchTrace& got, const BatchTrace& want,
                      const FloatTolerance& tol, const std::string& what) {
  ASSERT_EQ(got.batch, want.batch) << what;
  ASSERT_EQ(got.outputs.size(), want.outputs.size()) << what;
  for (size_t l = 0; l < want.outputs.size(); ++l) {
    EXPECT_EQ(got.outputs[l].shape(), want.outputs[l].shape()) << what << " layer " << l;
    ExpectTensorsNear(got.outputs[l], want.outputs[l], tol,
                      what + " layer " + std::to_string(l));
    ExpectTensorsNear(got.aux[l], want.aux[l], tol, what + " aux " + std::to_string(l));
  }
}

TEST(ExecutionPlanTest, ForwardMatchesByValueAcrossWidths) {
  for (const auto& model : {MakeConvModel(7), MakeResidualModel(8)}) {
    ExecutionPlan plan = model.Compile(8);
    // Widths vary across calls: slabs shrink and grow in place.
    int round = 0;
    for (const int width : {8, 3, 1, 8, 5}) {
      const Tensor input = RandomBatch(model, width, 100 + static_cast<uint64_t>(round));
      const BatchTrace want = model.ForwardBatch(input);
      const BatchTrace& got = model.ForwardBatch(input, plan);
      ExpectTracesNear(got, want, kKernelForwardTolerance,
                       model.name() + " width " + std::to_string(width));
      EXPECT_EQ(SliceSample(got.input, width - 1).values(),
                SliceSample(input, width - 1).values());
      ++round;
    }
  }
}

TEST(ExecutionPlanTest, ForwardCountsForwardPasses) {
  const Model model = MakeConvModel(7);
  ExecutionPlan plan = model.Compile(4);
  model.ResetForwardPasses();
  model.ForwardBatch(RandomBatch(model, 3, 1), plan);
  EXPECT_EQ(model.forward_passes(), 3);
}

// The plan path must be bit-identical to ITSELF across batch widths: each
// sample's forward depends only on that sample (GEMM accumulates each output
// element over a fixed ascending-k chain regardless of the batch dimension).
// This is the invariant that keeps Session results independent of batch size
// and worker count now that the plan path is no longer bit-equal to the
// by-value oracle.
TEST(ExecutionPlanTest, ForwardBitIdenticalAcrossWidths) {
  for (const auto& model : {MakeConvModel(21), MakeResidualModel(22)}) {
    ExecutionPlan plan = model.Compile(8);
    const Tensor input = RandomBatch(model, 8, 300);
    // Forward the full batch, snapshot every layer output.
    const BatchTrace& full = model.ForwardBatch(input, plan);
    std::vector<std::vector<float>> full_outputs;
    for (const Tensor& out : full.outputs) {
      full_outputs.push_back(out.values());
    }
    const std::vector<int64_t> strides = [&] {
      std::vector<int64_t> s;
      for (const Tensor& out : full.outputs) {
        s.push_back(out.numel() / 8);
      }
      return s;
    }();
    // Forward a narrower prefix: every element must match the full batch bit
    // for bit.
    ExecutionPlan plan2 = model.Compile(8);
    for (const int width : {1, 3, 5}) {
      Tensor prefix(BatchedShape(width, model.input_shape()));
      std::copy(input.data(), input.data() + prefix.numel(), prefix.data());
      const BatchTrace& got = model.ForwardBatch(prefix, plan2);
      for (size_t l = 0; l < got.outputs.size(); ++l) {
        const std::vector<float> got_vals = got.outputs[l].values();
        for (size_t i = 0; i < got_vals.size(); ++i) {
          ASSERT_EQ(got_vals[i], full_outputs[l][i])
              << model.name() << " width " << width << " layer " << l
              << " element " << i;
        }
      }
    }
  }
}

TEST(ExecutionPlanTest, BackwardInputBatchMatchesByValue) {
  for (const auto& model : {MakeConvModel(9), MakeResidualModel(10)}) {
    ExecutionPlan plan = model.Compile(6);
    for (const int width : {6, 2, 6}) {
      const Tensor input = RandomBatch(model, width, 55 + static_cast<uint64_t>(width));
      const BatchTrace want_trace = model.ForwardBatch(input);
      model.ForwardBatch(input, plan);
      for (const int from : {model.num_layers() - 1, 0}) {
        Rng rng(17);
        const Tensor seed = Tensor::RandUniform(
            want_trace.outputs[static_cast<size_t>(from)].shape(), rng, -1.0f, 1.0f);
        const Tensor want = model.BackwardInputBatch(want_trace, from, seed);
        const Tensor& got = model.BackwardInputBatch(plan, from, seed);
        EXPECT_EQ(got.shape(), want.shape()) << model.name();
        ExpectTensorsNear(got, want, kKernelBackwardTolerance,
                          model.name() + " width " + std::to_string(width) +
                              " from " + std::to_string(from));
      }
    }
  }
}

TEST(ExecutionPlanTest, BackwardSampleMatchesScalarBackward) {
  for (const auto& model : {MakeConvModel(11), MakeResidualModel(12)}) {
    ExecutionPlan plan = model.Compile(4);
    const Tensor input = RandomBatch(model, 4, 99);
    const BatchTrace batch_trace = model.ForwardBatch(input);
    model.ForwardBatch(input, plan);
    // Seed from the last layer (differential objective) and from an interior
    // layer (coverage objective picks arbitrary layers).
    for (const int from : {model.num_layers() - 1, 1, 0}) {
      for (int pos = 0; pos < 4; ++pos) {
        Rng rng(200 + static_cast<uint64_t>(from * 4 + pos));
        const ForwardTrace sample = batch_trace.Sample(pos);
        const Tensor scalar_seed = Tensor::RandUniform(
            sample.outputs[static_cast<size_t>(from)].shape(), rng, -1.0f, 1.0f);
        const Tensor want = model.BackwardInput(sample, from, scalar_seed);
        // The plan's seed buffer is per-sample-shaped; copy the values in.
        Tensor& seed = plan.AcquireSeed(from);
        std::copy(scalar_seed.data(), scalar_seed.data() + scalar_seed.numel(),
                  seed.data());
        const Tensor& got = plan.BackwardSample(pos, from, seed);
        EXPECT_EQ(got.shape(), want.shape());
        ExpectTensorsNear(got, want, kKernelBackwardTolerance,
                          model.name() + " pos " + std::to_string(pos) +
                              " from " + std::to_string(from));
      }
    }
  }
}

TEST(ExecutionPlanTest, SampleTraceMatchesSelect) {
  const Model model = MakeResidualModel(13);
  ExecutionPlan plan = model.Compile(3);
  const Tensor input = RandomBatch(model, 3, 42);
  const BatchTrace want_trace = model.ForwardBatch(input);
  model.ForwardBatch(input, plan);
  for (int pos = 0; pos < 3; ++pos) {
    const BatchTrace want = want_trace.Select({pos});
    const BatchTrace& got = plan.SampleTrace(pos);
    ExpectTracesNear(got, want, kKernelForwardTolerance,
                     "sample " + std::to_string(pos));
    EXPECT_EQ(got.input.values(), want.input.values());
  }
}

TEST(ExecutionPlanTest, AcquireSeedIsZeroed) {
  const Model model = MakeConvModel(14);
  ExecutionPlan plan = model.Compile(1);
  Tensor& seed = plan.AcquireSeed(model.num_layers() - 1);
  seed.Fill(3.0f);
  const Tensor& again = plan.AcquireSeed(model.num_layers() - 1);
  for (int64_t i = 0; i < again.numel(); ++i) {
    EXPECT_EQ(again[i], 0.0f);
  }
}

// Per-layer: the *Into kernels must match the by-value kernels — bit for bit
// for layers without SIMD kernels (tol == kExactTolerance), within ULP/abs
// tolerance for conv2d/dense/residual, whose Into path runs im2col + GEMM.
void ExpectIntoMatchesByValue(const Layer& layer, const Shape& in_shape, int batch,
                              uint64_t seed,
                              const FloatTolerance& fwd_tol = kExactTolerance,
                              const FloatTolerance& bwd_tol = kExactTolerance) {
  Rng rng(seed);
  const Tensor input = Tensor::RandUniform(BatchedShape(batch, in_shape), rng, -1.0f, 1.0f);
  Tensor want_aux;
  const Tensor want_out = layer.ForwardBatch(input, batch, false, nullptr, &want_aux);

  Workspace ws;
  Tensor got_out(want_out.shape());
  Tensor got_aux;
  layer.ForwardBatchInto(input, batch, false, nullptr, &got_out, &got_aux, &ws);
  ExpectTensorsNear(got_out, want_out, fwd_tol, layer.Describe() + " forward");
  ExpectTensorsNear(got_aux, want_aux, fwd_tol, layer.Describe() + " aux");

  const Tensor grad_out =
      Tensor::RandUniform(want_out.shape(), rng, -1.0f, 1.0f);
  const size_t num_params = layer.Params().size();
  std::vector<Tensor> want_pg;
  std::vector<Tensor> got_pg;
  for (const Tensor* p : layer.Params()) {
    want_pg.emplace_back(p->shape());
    got_pg.emplace_back(p->shape());
  }
  const Tensor want_gin = layer.BackwardBatch(input, want_out, grad_out, want_aux, batch,
                                              num_params > 0 ? &want_pg : nullptr);
  Tensor got_gin(input.shape());
  layer.BackwardBatchInto(input, got_out, grad_out, got_aux, batch, &got_gin, &ws,
                          num_params > 0 ? &got_pg : nullptr);
  ExpectTensorsNear(got_gin, want_gin, bwd_tol, layer.Describe() + " backward");
  for (size_t p = 0; p < num_params; ++p) {
    ExpectTensorsNear(got_pg[p], want_pg[p], bwd_tol,
                      layer.Describe() + " param grad " + std::to_string(p));
  }
}

TEST(LayerIntoTest, AllLayersMatchByValueKernels) {
  Rng rng(31);
  for (const int batch : {1, 3, 8, 9}) {
    {
      Dense dense(10, 7, Activation::kRelu);
      dense.InitParams(rng);
      ExpectIntoMatchesByValue(dense, {10}, batch, 1000 + static_cast<uint64_t>(batch),
                               kKernelForwardTolerance, kKernelBackwardTolerance);
    }
    {
      Conv2D conv(2, 3, 3, 3, 1, 1, Activation::kTanh);
      conv.InitParams(rng);
      ExpectIntoMatchesByValue(conv, {2, 6, 6}, batch, 2000 + static_cast<uint64_t>(batch),
                               kKernelForwardTolerance, kKernelBackwardTolerance);
    }
    ExpectIntoMatchesByValue(Pool2D(PoolMode::kMax, 2), {3, 6, 6}, batch,
                             3000 + static_cast<uint64_t>(batch));
    ExpectIntoMatchesByValue(Pool2D(PoolMode::kAvg, 2), {3, 6, 6}, batch,
                             4000 + static_cast<uint64_t>(batch));
    ExpectIntoMatchesByValue(Flatten(), {2, 4, 4}, batch,
                             5000 + static_cast<uint64_t>(batch));
    ExpectIntoMatchesByValue(SoftmaxLayer(), {9}, batch,
                             6000 + static_cast<uint64_t>(batch));
    {
      BatchNorm bn(5);
      bn.SetStatistics(std::vector<float>(5, 0.2f), std::vector<float>(5, 2.0f));
      ExpectIntoMatchesByValue(bn, {5, 4, 4}, batch, 7000 + static_cast<uint64_t>(batch));
    }
    ExpectIntoMatchesByValue(Dropout(0.4f), {12}, batch,
                             8000 + static_cast<uint64_t>(batch));
    {
      // Input-grad-only path (param_grads == nullptr) is the batched one;
      // exercised via the model-level tests above. Here: full adapter path.
      ResidualBlock res(3, 6, 2);
      Rng r2(77);
      res.InitParams(r2);
      ExpectIntoMatchesByValue(res, {3, 8, 8}, batch, 9000 + static_cast<uint64_t>(batch),
                               kKernelForwardTolerance, kKernelBackwardTolerance);
    }
  }
}

// Tolerance-checked SIMD-vs-scalar sweep over every conv2d and dense shape
// the zoo and the domain registry exercise (plus degenerate extremes): the
// GEMM path must stay within kernel tolerance of the scalar oracle at every
// geometry, not just the ones the model-level tests happen to compose.
TEST(LayerIntoTest, SimdVsScalarSweepAllLayerShapes) {
  struct ConvCase {
    int in_c, out_c, kh, kw, stride, padding, in_h, in_w;
  };
  const ConvCase conv_cases[] = {
      {1, 4, 5, 5, 1, 0, 28, 28},   // MNIST LeNet c1
      {4, 12, 5, 5, 1, 0, 12, 12},  // MNIST LeNet c2
      {3, 8, 3, 3, 1, 1, 32, 32},   // CIFAR-style same-pad
      {8, 16, 3, 3, 2, 1, 16, 16},  // strided downsample
      {1, 2, 1, 8, 1, 0, 1, 64},    // speech 1-D conv (kernel_h == 1)
      {2, 4, 1, 1, 1, 0, 9, 9},     // 1x1 pointwise
      {3, 5, 7, 7, 3, 2, 11, 13},   // odd stride, asymmetric input
      {2, 3, 6, 6, 1, 3, 4, 4},     // kernel > input, padding rescues it
      {16, 4, 3, 3, 1, 0, 5, 5},    // channel-heavy, tiny spatial
  };
  Rng rng(4242);
  for (const auto& c : conv_cases) {
    for (const int batch : {1, 8}) {
      for (const Activation act : {Activation::kRelu, Activation::kNone}) {
        Conv2D conv(c.in_c, c.out_c, c.kh, c.kw, c.stride, c.padding, act);
        conv.InitParams(rng);
        ExpectIntoMatchesByValue(conv, {c.in_c, c.in_h, c.in_w}, batch, rng.NextU64(),
                                 kKernelForwardTolerance, kKernelBackwardTolerance);
      }
    }
  }
  struct DenseCase {
    int in, out;
  };
  const DenseCase dense_cases[] = {
      {784, 128},  // MNIST MLP hidden
      {128, 10},   // classifier head
      {1, 1},      // degenerate
      {3, 257},    // wide output, narrow input
      {1352, 10},  // LeNet flatten -> logits (longest reduction in the zoo)
      {135, 64},   // tabular fraud MLP
  };
  for (const auto& d : dense_cases) {
    for (const int batch : {1, 8}) {
      Dense dense(d.in, d.out, Activation::kRelu);
      dense.InitParams(rng);
      ExpectIntoMatchesByValue(dense, {d.in}, batch, rng.NextU64(),
                               kKernelForwardTolerance, kKernelBackwardTolerance);
    }
  }
}

}  // namespace
}  // namespace dx

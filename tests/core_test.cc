// DeepXplore engine tests on small, quickly trained models: objective
// gradients, Algorithm 1's inner loop, difference predicates, coverage
// updates, and the Run driver.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/constraints/constraint.h"
#include "src/core/deepxplore.h"
#include "src/data/dataset.h"
#include "src/models/trainer.h"
#include "src/nn/dense.h"
#include "src/nn/model.h"
#include "src/nn/softmax_layer.h"
#include "src/util/rng.h"

namespace dx {
namespace {

// 2-D, 2-class toy task: class = (x0 > x1), with a margin band removed.
Dataset MakeToyTask(int n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds{"toy", {2}, 2, {}, {}};
  while (ds.size() < n) {
    Tensor x({2});
    x[0] = rng.NextFloat();
    x[1] = rng.NextFloat();
    if (std::abs(x[0] - x[1]) < 0.08f) {
      continue;  // Margin keeps the task cleanly separable.
    }
    const float label = x[0] > x[1] ? 0.0f : 1.0f;  // Before the move.
    ds.Add(std::move(x), label);
  }
  return ds;
}

Model MakeToyClassifier(const std::string& name, int hidden, uint64_t seed) {
  Rng rng(seed);
  Model m(name, {2});
  m.Emplace<Dense>(2, hidden, Activation::kRelu).InitParams(rng);
  m.Emplace<Dense>(hidden, hidden, Activation::kRelu).InitParams(rng);
  m.Emplace<Dense>(hidden, 2).InitParams(rng);
  m.Emplace<SoftmaxLayer>();
  return m;
}

class DeepXploreToyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    train_ = new Dataset(MakeToyTask(600, 1));
    models_ = new std::vector<Model>();
    // Three architecturally different classifiers, independently seeded.
    models_->push_back(MakeToyClassifier("toy_a", 16, 11));
    models_->push_back(MakeToyClassifier("toy_b", 24, 22));
    models_->push_back(MakeToyClassifier("toy_c", 12, 33));
    for (Model& m : *models_) {
      TrainConfig cfg;
      cfg.epochs = 8;
      cfg.learning_rate = 5e-3f;
      cfg.seed = 7;
      Trainer::Fit(&m, *train_, cfg);
      ASSERT_GT(Trainer::Accuracy(m, *train_), 0.95f);
    }
  }
  static void TearDownTestSuite() {
    delete models_;
    delete train_;
    models_ = nullptr;
    train_ = nullptr;
  }

  std::vector<Model*> ModelPtrs() {
    std::vector<Model*> ptrs;
    for (Model& m : *models_) {
      ptrs.push_back(&m);
    }
    return ptrs;
  }

  static Dataset* train_;
  static std::vector<Model>* models_;
  UnconstrainedImage constraint_;
};

Dataset* DeepXploreToyTest::train_ = nullptr;
std::vector<Model>* DeepXploreToyTest::models_ = nullptr;

TEST_F(DeepXploreToyTest, ConstructorValidation) {
  DeepXploreConfig cfg;
  auto ptrs = ModelPtrs();
  EXPECT_THROW(DeepXplore({ptrs[0]}, &constraint_, cfg), std::invalid_argument);
  EXPECT_THROW(DeepXplore(ptrs, nullptr, cfg), std::invalid_argument);
  Model other("odd", {3});
  Rng rng(1);
  other.Emplace<Dense>(3, 2).InitParams(rng);
  other.Emplace<SoftmaxLayer>();
  EXPECT_THROW(DeepXplore({ptrs[0], &other}, &constraint_, cfg), std::invalid_argument);
}

TEST_F(DeepXploreToyTest, ClassifiersAreNotRegression) {
  DeepXplore engine(ModelPtrs(), &constraint_, DeepXploreConfig{});
  EXPECT_FALSE(engine.regression());
  EXPECT_EQ(engine.num_models(), 3);
}

TEST_F(DeepXploreToyTest, PredictionsAndDifferencePredicate) {
  DeepXplore engine(ModelPtrs(), &constraint_, DeepXploreConfig{});
  // A point deep inside class 0 territory: everyone agrees.
  Tensor easy({2}, std::vector<float>{0.9f, 0.1f});
  const auto labels = engine.PredictLabels(easy);
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], 0);
  EXPECT_FALSE(engine.IsDifference(easy));
}

TEST_F(DeepXploreToyTest, JointGradientIncreasesObjective) {
  DeepXploreConfig cfg;
  cfg.lambda2 = 0.0f;  // Isolate obj1.
  DeepXplore engine(ModelPtrs(), &constraint_, cfg);
  Tensor x({2}, std::vector<float>{0.7f, 0.3f});
  const int c = (*models_)[0].PredictClass(x);
  const int j = 1;

  const auto obj1 = [&](const Tensor& xx) {
    double v = 0.0;
    for (size_t k = 0; k < models_->size(); ++k) {
      const float conf = (*models_)[k].Predict(xx)[c];
      v += static_cast<int>(k) == j ? -cfg.lambda1 * conf : conf;
    }
    return v;
  };

  const double before = obj1(x);
  Tensor grad = engine.JointGradient(x, j, c);
  ASSERT_GT(grad.L2Norm(), 0.0f);
  Tensor stepped = x;
  stepped.Axpy(0.01f / grad.L2Norm(), grad);
  EXPECT_GT(obj1(stepped), before);
}

TEST_F(DeepXploreToyTest, GenerateFromSeedFindsDifference) {
  DeepXploreConfig cfg;
  // In 2-D with three near-identical decision boundaries, the keep-consensus
  // terms of Equation 2 dominate at lambda1 = 1 (they outnumber the push
  // term 2:1), so the toy setting needs lambda1 > n - 1; the paper likewise
  // tunes lambda1 per dataset (Table 10).
  cfg.lambda1 = 2.5f;
  cfg.step = 0.05f;
  cfg.lambda2 = 0.1f;
  cfg.max_iterations_per_seed = 200;
  cfg.rng_seed = 5;
  DeepXplore engine(ModelPtrs(), &constraint_, cfg);
  // A seed near the decision boundary but with consensus.
  Tensor seed({2}, std::vector<float>{0.60f, 0.40f});
  ASSERT_FALSE(engine.IsDifference(seed));
  const auto test = engine.GenerateFromSeed(seed, 0);
  ASSERT_TRUE(test.has_value());
  EXPECT_TRUE(engine.IsDifference(test->input));
  EXPECT_GE(test->iterations, 1);
  EXPECT_EQ(test->labels.size(), 3u);
  // Deviating model really is in the minority.
  int agree = 0;
  for (const int l : test->labels) {
    agree += l == test->labels[static_cast<size_t>(test->deviating_model)] ? 1 : 0;
  }
  EXPECT_EQ(agree, 1);
  // Inputs stay in the valid domain.
  EXPECT_GE(test->input.Min(), 0.0f);
  EXPECT_LE(test->input.Max(), 1.0f);
  // Coverage updated.
  EXPECT_GT(engine.MeanCoverage(), 0.0f);
}

TEST_F(DeepXploreToyTest, RunGeneratesManyTestsAndRespectsBudget) {
  DeepXploreConfig cfg;
  cfg.lambda1 = 2.5f;
  cfg.step = 0.05f;
  cfg.max_iterations_per_seed = 150;
  cfg.rng_seed = 9;
  DeepXplore engine(ModelPtrs(), &constraint_, cfg);

  // Seeds near (but not on) the shared decision boundary, where gradient
  // ascent has room to separate the three models.
  Rng rng(10);
  std::vector<Tensor> seeds;
  while (seeds.size() < 40) {
    Tensor x({2});
    x[0] = rng.NextFloat();
    x[1] = rng.NextFloat();
    const float margin = std::abs(x[0] - x[1]);
    if (margin > 0.1f && margin < 0.3f) {
      seeds.push_back(std::move(x));
    }
  }
  RunOptions opts;
  opts.max_tests = 5;
  const RunStats stats = engine.Run(seeds, opts);
  EXPECT_EQ(static_cast<int>(stats.tests.size()), 5);
  EXPECT_GT(stats.total_iterations, 0);
  EXPECT_LE(stats.seeds_tried, 40);
  for (const GeneratedTest& t : stats.tests) {
    EXPECT_TRUE(engine.IsDifference(t.input));
  }
}

TEST_F(DeepXploreToyTest, LambdaTwoZeroDisablesCoverageObjective) {
  DeepXploreConfig cfg;
  cfg.lambda2 = 0.0f;
  cfg.step = 0.05f;
  cfg.rng_seed = 3;
  DeepXplore engine(ModelPtrs(), &constraint_, cfg);
  // Gradient must be identical on repeated calls (no stochastic neuron pick).
  Tensor x({2}, std::vector<float>{0.55f, 0.45f});
  const Tensor g1 = engine.JointGradient(x, 0, 0);
  const Tensor g2 = engine.JointGradient(x, 0, 0);
  for (int64_t i = 0; i < g1.numel(); ++i) {
    EXPECT_FLOAT_EQ(g1[i], g2[i]);
  }
}

// ---- Regression (driving-style) engine ---------------------------------------------------

Model MakeToyRegressor(const std::string& name, int hidden, uint64_t seed) {
  Rng rng(seed);
  Model m(name, {2});
  m.Emplace<Dense>(2, hidden, Activation::kTanh).InitParams(rng);
  m.Emplace<Dense>(hidden, 1, Activation::kTanh).InitParams(rng);
  return m;
}

TEST(DeepXploreRegressionTest, FindsSteeringDisagreements) {
  // Target: y = x0 - x1 (in [-1,1]); two regressors trained differently.
  Dataset train{"reg", {2}, 0, {}, {}};
  Rng data_rng(20);
  for (int i = 0; i < 500; ++i) {
    Tensor x({2});
    x[0] = data_rng.NextFloat();
    x[1] = data_rng.NextFloat();
    const float y = x[0] - x[1];
    train.Add(std::move(x), y);
  }
  std::vector<Model> models;
  models.push_back(MakeToyRegressor("reg_a", 8, 1));
  models.push_back(MakeToyRegressor("reg_b", 16, 2));
  {
    TrainConfig cfg;
    cfg.epochs = 6;
    cfg.learning_rate = 5e-3f;
    Trainer::Fit(&models[0], train, cfg);
    ASSERT_LT(Trainer::MseOf(models[0], train), 0.02f);
  }
  {
    // The second regressor is deliberately undertrained (small subset, few
    // epochs) so the pair has real disagreement regions to discover — the
    // paper's Table 12 shows DeepXplore times out on near-identical models.
    Rng sample_rng(3);
    const Dataset small = train.Sample(80, sample_rng);
    TrainConfig cfg;
    cfg.epochs = 2;
    cfg.learning_rate = 5e-3f;
    Trainer::Fit(&models[1], small, cfg);
  }

  UnconstrainedImage constraint;
  DeepXploreConfig cfg;
  cfg.step = 0.03f;
  cfg.steering_eps = 0.1f;
  cfg.max_iterations_per_seed = 300;
  cfg.rng_seed = 21;
  DeepXplore engine({&models[0], &models[1]}, &constraint, cfg);
  EXPECT_TRUE(engine.regression());

  int found = 0;
  for (int i = 0; i < 20 && found == 0; ++i) {
    const auto test = engine.GenerateFromSeed(train.inputs[static_cast<size_t>(i)], i);
    if (test.has_value()) {
      ++found;
      ASSERT_EQ(test->outputs.size(), 2u);
      EXPECT_GT(std::abs(test->outputs[0] - test->outputs[1]), cfg.steering_eps);
    }
  }
  EXPECT_GT(found, 0) << "no steering disagreement found in 20 seeds";
}

}  // namespace
}  // namespace dx

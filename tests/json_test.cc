// Minimal JSON layer used by the campaign service wire protocol: parse /
// dump round-trips, escaping, typed accessors, and malformed-input errors
// (the daemon turns these into error replies, so they must throw reliably).
#include <gtest/gtest.h>

#include "src/util/json.h"

namespace dx {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(Json::Parse("null").is_null());
  EXPECT_TRUE(Json::Parse("true").AsBool());
  EXPECT_FALSE(Json::Parse("false").AsBool());
  EXPECT_DOUBLE_EQ(Json::Parse("3.5").AsNumber(), 3.5);
  EXPECT_EQ(Json::Parse("-17").AsInt(), -17);
  EXPECT_EQ(Json::Parse("\"hi\"").AsString(), "hi");
  EXPECT_DOUBLE_EQ(Json::Parse("1e3").AsNumber(), 1000.0);
}

TEST(JsonTest, ParsesNestedStructure) {
  const Json doc = Json::Parse(
      R"({"cmd":"submit","spec":{"seeds":12,"resume":false},"tags":["a","b"]})");
  EXPECT_EQ(doc.At("cmd").AsString(), "submit");
  EXPECT_EQ(doc.At("spec").At("seeds").AsInt(), 12);
  EXPECT_FALSE(doc.At("spec").At("resume").AsBool());
  ASSERT_EQ(doc.At("tags").AsArray().size(), 2u);
  EXPECT_EQ(doc.At("tags").AsArray()[1].AsString(), "b");
}

TEST(JsonTest, DumpParseRoundTrip) {
  Json doc = Json::Object();
  doc["id"] = Json(int64_t{42});
  doc["coverage"] = Json(0.12345678901234567);
  doc["name"] = Json("a \"quoted\" name\nwith newline");
  Json arr = Json::Array();
  arr.Append(Json(1));
  arr.Append(Json(true));
  arr.Append(Json(nullptr));
  doc["items"] = std::move(arr);

  const Json back = Json::Parse(doc.Dump());
  EXPECT_EQ(back.At("id").AsInt(), 42);
  EXPECT_DOUBLE_EQ(back.At("coverage").AsNumber(), 0.12345678901234567);
  EXPECT_EQ(back.At("name").AsString(), "a \"quoted\" name\nwith newline");
  EXPECT_EQ(back.At("items").AsArray().size(), 3u);
  EXPECT_TRUE(back.At("items").AsArray()[2].is_null());
}

TEST(JsonTest, DumpIsDeterministicAndCompact) {
  Json doc = Json::Object();
  doc["b"] = Json(2);
  doc["a"] = Json(1);
  // Keys are sorted and integers print without a decimal point.
  EXPECT_EQ(doc.Dump(), R"({"a":1,"b":2})");
}

TEST(JsonTest, UnicodeEscapes) {
  EXPECT_EQ(Json::Parse(R"("Aé")").AsString(), "A\xc3\xa9");
  EXPECT_EQ(Json::Parse(R"("tab\there")").AsString(), "tab\there");
}

TEST(JsonTest, MalformedInputThrows) {
  EXPECT_THROW(Json::Parse(""), std::runtime_error);
  EXPECT_THROW(Json::Parse("{"), std::runtime_error);
  EXPECT_THROW(Json::Parse("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(Json::Parse("[1,2"), std::runtime_error);
  EXPECT_THROW(Json::Parse("tru"), std::runtime_error);
  EXPECT_THROW(Json::Parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(Json::Parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(Json::Parse("not json at all"), std::runtime_error);
}

TEST(JsonTest, TypeMismatchThrows) {
  const Json doc = Json::Parse(R"({"n":5})");
  EXPECT_THROW(doc.At("n").AsString(), std::runtime_error);
  EXPECT_THROW(doc.At("missing"), std::runtime_error);
  EXPECT_THROW(Json::Parse("[1]").AsObject(), std::runtime_error);
}

TEST(JsonTest, OptionalLookupsFallBack) {
  const Json doc = Json::Parse(R"({"present":7,"flag":true})");
  EXPECT_EQ(doc.GetInt("present", 0), 7);
  EXPECT_EQ(doc.GetInt("absent", 123), 123);
  EXPECT_TRUE(doc.GetBool("flag", false));
  EXPECT_EQ(doc.GetString("absent", "dflt"), "dflt");
}

}  // namespace
}  // namespace dx

// Dataset container + all five synthetic generators: shapes, determinism,
// label balance, value ranges, and domain-specific structure.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/data/dataset.h"
#include "src/data/drebin.h"
#include "src/data/pdf.h"
#include "src/data/road.h"
#include "src/data/synthetic_digits.h"
#include "src/data/tiny_images.h"
#include "src/util/rng.h"

namespace dx {
namespace {

// ---- Dataset container -------------------------------------------------------------------

TEST(DatasetTest, AddValidatesShape) {
  Dataset ds{"d", {2}, 2, {}, {}};
  ds.Add(Tensor({2}), 1.0f);
  EXPECT_EQ(ds.size(), 1);
  EXPECT_THROW(ds.Add(Tensor({3}), 0.0f), std::invalid_argument);
}

TEST(DatasetTest, LabelOnRegressionThrows) {
  Dataset ds{"r", {2}, 0, {}, {}};
  ds.Add(Tensor({2}), 0.5f);
  EXPECT_THROW(ds.Label(0), std::logic_error);
  EXPECT_FLOAT_EQ(ds.Target(0), 0.5f);
}

TEST(DatasetTest, SplitPartitionsAllSamples) {
  Dataset ds{"s", {1}, 2, {}, {}};
  for (int i = 0; i < 100; ++i) {
    ds.Add(Tensor({1}, static_cast<float>(i)), static_cast<float>(i % 2));
  }
  Rng rng(1);
  const auto [train, test] = ds.Split(0.7, rng);
  EXPECT_EQ(train.size(), 70);
  EXPECT_EQ(test.size(), 30);
  // No sample lost or duplicated.
  std::set<float> seen;
  for (const auto& t : train.inputs) {
    seen.insert(t[0]);
  }
  for (const auto& t : test.inputs) {
    seen.insert(t[0]);
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_THROW(ds.Split(1.5, rng), std::invalid_argument);
}

TEST(DatasetTest, SampleDrawsDistinct) {
  Dataset ds{"s", {1}, 2, {}, {}};
  for (int i = 0; i < 50; ++i) {
    ds.Add(Tensor({1}, static_cast<float>(i)), 0.0f);
  }
  Rng rng(2);
  const Dataset sub = ds.Sample(10, rng);
  EXPECT_EQ(sub.size(), 10);
  std::set<float> seen;
  for (const auto& t : sub.inputs) {
    seen.insert(t[0]);
  }
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_THROW(ds.Sample(51, rng), std::invalid_argument);
}

TEST(DatasetTest, PolluteLabelsFlipsRequestedFraction) {
  Dataset ds{"p", {1}, 10, {}, {}};
  for (int i = 0; i < 200; ++i) {
    ds.Add(Tensor({1}), static_cast<float>(i % 10));
  }
  Rng rng(3);
  const auto polluted = PolluteLabels(&ds, 9, 1, 0.3, rng);
  EXPECT_EQ(polluted.size(), 6u);  // 30% of the 20 nines.
  for (const int i : polluted) {
    EXPECT_EQ(ds.Label(i), 1);
  }
  int nines = 0;
  for (int i = 0; i < ds.size(); ++i) {
    nines += ds.Label(i) == 9 ? 1 : 0;
  }
  EXPECT_EQ(nines, 14);
}

TEST(DatasetTest, CheckConsistencyDetectsBadLabel) {
  Dataset ds{"c", {1}, 2, {}, {}};
  ds.Add(Tensor({1}), 1.0f);
  ds.CheckConsistency();
  ds.targets[0] = 5.0f;
  EXPECT_THROW(ds.CheckConsistency(), std::logic_error);
}

// ---- Generators: shared properties -------------------------------------------------------

struct GeneratorCase {
  const char* name;
  Dataset (*make)(int, uint64_t);
  Shape shape;
  int classes;
};

Dataset MakeDrebinDefault(int n, uint64_t seed) { return MakeSyntheticDrebin(n, seed); }
Dataset MakePdfDefault(int n, uint64_t seed) { return MakeSyntheticPdf(n, seed); }

class GeneratorTest : public ::testing::TestWithParam<GeneratorCase> {};

TEST_P(GeneratorTest, ShapeRangeAndDeterminism) {
  const GeneratorCase& c = GetParam();
  const Dataset a = c.make(60, 7);
  const Dataset b = c.make(60, 7);
  const Dataset other = c.make(60, 8);
  EXPECT_EQ(a.size(), 60);
  EXPECT_EQ(a.input_shape, c.shape);
  EXPECT_EQ(a.num_classes, c.classes);
  a.CheckConsistency();
  // Deterministic for equal seeds.
  for (int i = 0; i < a.size(); ++i) {
    for (int64_t k = 0; k < a.inputs[static_cast<size_t>(i)].numel(); ++k) {
      ASSERT_FLOAT_EQ(a.inputs[static_cast<size_t>(i)][k], b.inputs[static_cast<size_t>(i)][k]);
    }
  }
  // Different for different seeds.
  bool any_diff = false;
  for (int i = 0; i < a.size() && !any_diff; ++i) {
    for (int64_t k = 0; k < a.inputs[static_cast<size_t>(i)].numel(); ++k) {
      if (a.inputs[static_cast<size_t>(i)][k] != other.inputs[static_cast<size_t>(i)][k]) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
  // Values in [0, 1] for every domain.
  for (const Tensor& t : a.inputs) {
    EXPECT_GE(t.Min(), 0.0f);
    EXPECT_LE(t.Max(), 1.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorTest,
    ::testing::Values(
        GeneratorCase{"digits", &MakeSyntheticDigits, {1, 28, 28}, 10},
        GeneratorCase{"tiny", &MakeSyntheticTinyImages, {3, 32, 32}, 10},
        GeneratorCase{"road", &MakeSyntheticRoad, {3, 32, 64}, 0},
        GeneratorCase{"drebin", &MakeDrebinDefault, {512}, 2},
        GeneratorCase{"pdf", &MakePdfDefault, {135}, 2}),
    [](const ::testing::TestParamInfo<GeneratorCase>& info) { return info.param.name; });

// ---- Digits ------------------------------------------------------------------------------

TEST(DigitsTest, BalancedLabels) {
  const Dataset ds = MakeSyntheticDigits(100, 1);
  std::array<int, 10> counts{};
  for (int i = 0; i < ds.size(); ++i) {
    counts[static_cast<size_t>(ds.Label(i))]++;
  }
  for (const int c : counts) {
    EXPECT_EQ(c, 10);
  }
}

TEST(DigitsTest, DigitsHaveInk) {
  Rng rng(4);
  for (int d = 0; d <= 9; ++d) {
    const Tensor img = RenderDigit(d, rng);
    EXPECT_GT(img.Sum(), 5.0f) << "digit " << d << " nearly empty";
    EXPECT_LT(img.Mean(), 0.5f) << "digit " << d << " mostly ink";
  }
  EXPECT_THROW(RenderDigit(10, rng), std::invalid_argument);
}

TEST(DigitsTest, DistinctClassesRenderDistinctImages) {
  Rng rng(5);
  const Tensor a = RenderDigit(1, rng);
  Rng rng2(5);
  const Tensor b = RenderDigit(8, rng2);
  // Same jitter stream, different strokes: images must differ a lot.
  float diff = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    diff += std::abs(a[i] - b[i]);
  }
  EXPECT_GT(diff, 20.0f);
}

// ---- Tiny images -------------------------------------------------------------------------

TEST(TinyImagesTest, ClassNamesResolve) {
  EXPECT_EQ(TinyImageClassName(0), "h-stripes");
  EXPECT_EQ(TinyImageClassName(9), "blobs");
  EXPECT_THROW(TinyImageClassName(10), std::out_of_range);
}

TEST(TinyImagesTest, RenderRejectsBadLabel) {
  Rng rng(6);
  EXPECT_THROW(RenderTinyImage(-1, rng), std::out_of_range);
}

// ---- Road --------------------------------------------------------------------------------

TEST(RoadTest, SteeringWithinBounds) {
  const Dataset ds = MakeSyntheticRoad(200, 9);
  for (int i = 0; i < ds.size(); ++i) {
    EXPECT_GE(ds.Target(i), -1.0f);
    EXPECT_LE(ds.Target(i), 1.0f);
  }
  // Targets should use a good part of the range.
  float lo = 1.0f;
  float hi = -1.0f;
  for (int i = 0; i < ds.size(); ++i) {
    lo = std::min(lo, ds.Target(i));
    hi = std::max(hi, ds.Target(i));
  }
  EXPECT_LT(lo, -0.4f);
  EXPECT_GT(hi, 0.4f);
}

TEST(RoadTest, CurvatureCorrelatesWithSteering) {
  // Scenes are brighter on the road; just check the renderer produces both
  // strongly-left and strongly-right steering scenes deterministically.
  Rng rng(10);
  int lefts = 0;
  int rights = 0;
  for (int i = 0; i < 100; ++i) {
    float angle = 0.0f;
    RenderRoadScene(rng, &angle);
    lefts += angle < -0.3f ? 1 : 0;
    rights += angle > 0.3f ? 1 : 0;
  }
  EXPECT_GT(lefts, 10);
  EXPECT_GT(rights, 10);
}

// ---- Drebin ------------------------------------------------------------------------------

TEST(DrebinTest, FeaturesAreBinary) {
  const Dataset ds = MakeSyntheticDrebin(100, 11);
  for (const Tensor& x : ds.inputs) {
    for (int64_t i = 0; i < x.numel(); ++i) {
      EXPECT_TRUE(x[i] == 0.0f || x[i] == 1.0f);
    }
  }
}

TEST(DrebinTest, ManifestBoundaryAndNames) {
  EXPECT_TRUE(DrebinIsManifestFeature(0));
  EXPECT_TRUE(DrebinIsManifestFeature(kDrebinManifestFeatures - 1));
  EXPECT_FALSE(DrebinIsManifestFeature(kDrebinManifestFeatures));
  EXPECT_THROW(DrebinIsManifestFeature(-1), std::out_of_range);
  EXPECT_EQ(DrebinFeatureName(4), "permission::CALL_PHONE");
  EXPECT_THROW(DrebinFeatureName(kDrebinFeatureCount), std::out_of_range);
  // Code features carry code prefixes.
  const std::string& code_name = DrebinFeatureName(kDrebinManifestFeatures);
  EXPECT_TRUE(code_name.find("api_call::") == 0 || code_name.find("url::") == 0);
}

TEST(DrebinTest, MalwareFractionRoughlyRespected) {
  const Dataset ds = MakeSyntheticDrebin(1000, 12, 0.3);
  int malware = 0;
  for (int i = 0; i < ds.size(); ++i) {
    malware += ds.Label(i) == kDrebinMalwareClass ? 1 : 0;
  }
  EXPECT_NEAR(malware, 300, 50);
}

TEST(DrebinTest, ClassesAreStatisticallySeparable) {
  // Malware should activate more code-indicator features on average.
  const Dataset ds = MakeSyntheticDrebin(600, 13, 0.5);
  double benign_code = 0.0;
  double malware_code = 0.0;
  int nb = 0;
  int nm = 0;
  for (int i = 0; i < ds.size(); ++i) {
    double code = 0.0;
    for (int f = kDrebinManifestFeatures; f < kDrebinManifestFeatures + 48; ++f) {
      code += ds.inputs[static_cast<size_t>(i)][f];
    }
    if (ds.Label(i) == kDrebinMalwareClass) {
      malware_code += code;
      ++nm;
    } else {
      benign_code += code;
      ++nb;
    }
  }
  EXPECT_GT(malware_code / nm, benign_code / nb + 3.0);
}

// ---- PDF ---------------------------------------------------------------------------------

TEST(PdfTest, SpecTableWellFormed) {
  const auto& specs = PdfFeatureSpecs();
  ASSERT_EQ(specs.size(), static_cast<size_t>(kPdfFeatureCount));
  std::set<std::string> names;
  for (const auto& s : specs) {
    EXPECT_LT(s.min_value, s.max_value) << s.name;
    names.insert(s.name);
  }
  EXPECT_EQ(names.size(), specs.size());  // Unique names.
  EXPECT_EQ(specs[0].name, "size");
  EXPECT_EQ(specs[4].name, "author_num");
}

TEST(PdfTest, NormalizeRoundTrip) {
  for (const int f : {0, 1, 4, 50, 134}) {
    const float raw = PdfRawValue(f, 0.5f);
    const float norm = PdfNormalize(f, raw);
    EXPECT_NEAR(PdfRawValue(f, norm), raw, 1e-4f);
  }
  EXPECT_THROW(PdfNormalize(-1, 0.0f), std::out_of_range);
  EXPECT_THROW(PdfRawValue(kPdfFeatureCount, 0.0f), std::out_of_range);
}

TEST(PdfTest, RawValuesAreIntegersWithinBounds) {
  const Dataset ds = MakeSyntheticPdf(100, 14);
  const auto& specs = PdfFeatureSpecs();
  for (const Tensor& x : ds.inputs) {
    for (int f = 0; f < kPdfFeatureCount; ++f) {
      const float raw = PdfRawValue(f, x[f]);
      EXPECT_GE(raw, specs[static_cast<size_t>(f)].min_value);
      EXPECT_LE(raw, specs[static_cast<size_t>(f)].max_value);
      EXPECT_NEAR(raw, std::round(raw), 1e-4f);
    }
  }
}

TEST(PdfTest, MaliciousDocsDifferOnKeyFeatures) {
  const Dataset ds = MakeSyntheticPdf(600, 15, 0.5);
  double benign_js = 0.0;
  double malware_js = 0.0;
  double benign_size = 0.0;
  double malware_size = 0.0;
  int nb = 0;
  int nm = 0;
  for (int i = 0; i < ds.size(); ++i) {
    const Tensor& x = ds.inputs[static_cast<size_t>(i)];
    if (ds.Label(i) == kPdfMalwareClass) {
      malware_js += x[5];
      malware_size += x[0];
      ++nm;
    } else {
      benign_js += x[5];
      benign_size += x[0];
      ++nb;
    }
  }
  EXPECT_GT(malware_js / nm, benign_js / nb + 0.2);
  EXPECT_GT(benign_size / nb, malware_size / nm + 0.2);
}

}  // namespace
}  // namespace dx

// End-to-end integration: the trained zoo + constraints + engine, exercising
// the full DeepXplore pipeline per domain (in DEEPXPLORE_FAST mode so the zoo
// trains quickly; results are cached across test runs).
#include <gtest/gtest.h>

#include <cstdlib>

#include "src/constraints/image_constraints.h"
#include "src/constraints/malware_constraints.h"
#include "src/core/deepxplore.h"
#include "src/data/drebin.h"
#include "src/models/trainer.h"
#include "src/models/zoo.h"

namespace dx {
namespace {

// Must run before any zoo access: shrink datasets/epochs for CI-speed runs.
struct FastModeEnv {
  FastModeEnv() { ::setenv("DEEPXPLORE_FAST", "1", 1); }
};
const FastModeEnv fast_mode_env;

std::vector<Model*> Ptrs(std::vector<Model>& models) {
  std::vector<Model*> ptrs;
  for (Model& m : models) {
    ptrs.push_back(&m);
  }
  return ptrs;
}

std::vector<Tensor> SeedsFrom(const Dataset& data, int n) {
  std::vector<Tensor> seeds;
  for (int i = 0; i < n && i < data.size(); ++i) {
    seeds.push_back(data.inputs[static_cast<size_t>(i)]);
  }
  return seeds;
}

TEST(IntegrationTest, ZooModelsTrainToReasonableAccuracy) {
  // Fast mode shrinks data 4x; accuracies are lower than the full-run Table 1
  // numbers but must still show real learning.
  for (const Domain domain : AllDomains()) {
    const Dataset& test = ModelZoo::TestSet(domain);
    for (const std::string& name : DomainModelNames(domain)) {
      const Model m = ModelZoo::Trained(name);
      const float acc = Trainer::PaperAccuracy(m, test);
      EXPECT_GT(acc, domain == Domain::kDriving ? 0.85f : 0.55f)
          << name << " paper-accuracy " << acc;
    }
  }
}

TEST(IntegrationTest, MnistLightingFindsDifferences) {
  std::vector<Model> models = ModelZoo::TrainedDomain(Domain::kMnist);
  LightingConstraint constraint;
  DeepXploreConfig cfg;  // Table 2: λ1=1, λ2=0.1, s=10, t=0.
  cfg.rng_seed = 61;
  DeepXplore engine(Ptrs(models), &constraint, cfg);

  const auto seeds = SeedsFrom(ModelZoo::TestSet(Domain::kMnist), 40);
  RunOptions opts;
  opts.max_tests = 3;
  const RunStats stats = engine.Run(seeds, opts);
  EXPECT_GE(static_cast<int>(stats.tests.size()), 1);
  for (const GeneratedTest& t : stats.tests) {
    EXPECT_TRUE(engine.IsDifference(t.input));
    EXPECT_GE(t.input.Min(), 0.0f);
    EXPECT_LE(t.input.Max(), 1.0f);
  }
  EXPECT_GT(engine.MeanCoverage(), 0.0f);
}

TEST(IntegrationTest, DrivingOcclusionFindsSteeringDisagreement) {
  std::vector<Model> models = ModelZoo::TrainedDomain(Domain::kDriving);
  OcclusionConstraint constraint(8, 8);
  DeepXploreConfig cfg;
  cfg.step = 2.0f;
  cfg.rng_seed = 62;
  cfg.max_iterations_per_seed = 60;
  DeepXplore engine(Ptrs(models), &constraint, cfg);
  EXPECT_TRUE(engine.regression());

  const auto seeds = SeedsFrom(ModelZoo::TestSet(Domain::kDriving), 40);
  RunOptions opts;
  opts.max_tests = 2;
  const RunStats stats = engine.Run(seeds, opts);
  EXPECT_GE(static_cast<int>(stats.tests.size()), 1);
  for (const GeneratedTest& t : stats.tests) {
    ASSERT_EQ(t.outputs.size(), 3u);
    float lo = t.outputs[0];
    float hi = t.outputs[0];
    for (const float v : t.outputs) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    EXPECT_GT(hi - lo, cfg.steering_eps);
  }
}

TEST(IntegrationTest, DrebinEvasionOnlyAddsManifestFeatures) {
  std::vector<Model> models = ModelZoo::TrainedDomain(Domain::kDrebin);
  DrebinConstraint constraint;
  DeepXploreConfig cfg;  // Table 2: λ1=1, λ2=0.5, s discrete.
  cfg.lambda2 = 0.5f;
  cfg.step = 1.0f;
  cfg.max_iterations_per_seed = 150;
  cfg.rng_seed = 63;
  DeepXplore engine(Ptrs(models), &constraint, cfg);

  const Dataset& test = ModelZoo::TestSet(Domain::kDrebin);
  int checked = 0;
  for (int i = 0; i < test.size() && checked < 2; ++i) {
    const Tensor& seed = test.inputs[static_cast<size_t>(i)];
    const auto result = engine.GenerateFromSeed(seed, i);
    if (!result.has_value()) {
      continue;
    }
    ++checked;
    // Only additions, only within the manifest region.
    for (int f = 0; f < kDrebinFeatureCount; ++f) {
      EXPECT_GE(result->input[f], seed[f]);
      if (result->input[f] != seed[f]) {
        EXPECT_TRUE(DrebinIsManifestFeature(f));
        EXPECT_FLOAT_EQ(result->input[f], 1.0f);
      }
    }
  }
  EXPECT_GT(checked, 0) << "no Drebin difference-inducing input found";
}

TEST(IntegrationTest, CoverageGoalStopsRun) {
  std::vector<Model> models = ModelZoo::TrainedDomain(Domain::kPdf);
  PdfConstraint constraint;
  DeepXploreConfig cfg;
  cfg.lambda1 = 2.0f;  // Table 2 PDF hyperparameters.
  cfg.step = 0.1f;
  cfg.rng_seed = 64;
  DeepXplore engine(Ptrs(models), &constraint, cfg);

  const auto seeds = SeedsFrom(ModelZoo::TestSet(Domain::kPdf), 60);
  RunOptions opts;
  opts.coverage_goal = 0.3f;
  opts.max_seed_passes = 3;
  const RunStats stats = engine.Run(seeds, opts);
  // Either the goal was reached (and we stopped early) or we exhausted seeds.
  if (engine.MeanCoverage() >= 0.3f) {
    EXPECT_LE(stats.seeds_tried, 3 * 60);
  }
  EXPECT_GT(stats.tests.size(), 0u);
}

}  // namespace
}  // namespace dx

// Durable corpus + replay subsystem: a recorded campaign must survive
// process boundaries (reopen), replay bit-identically, resume from an
// interruption to results identical to an uninterrupted run (at any worker
// count / batch size, with no double-counted forward passes or coverage),
// and reject mismatched configs and tampered artifacts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/constraints/image_constraints.h"
#include "src/core/session.h"
#include "src/corpus/corpus.h"
#include "src/coverage/coverage_metric.h"
#include "src/data/dataset.h"
#include "src/models/trainer.h"
#include "src/nn/dense.h"
#include "src/nn/model.h"
#include "src/nn/softmax_layer.h"
#include "src/util/rng.h"

namespace dx {
namespace {

Dataset MakeToyTask(int n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds{"toy", {2}, 2, {}, {}};
  while (ds.size() < n) {
    Tensor x({2});
    x[0] = rng.NextFloat();
    x[1] = rng.NextFloat();
    if (std::abs(x[0] - x[1]) < 0.08f) {
      continue;
    }
    const float label = x[0] > x[1] ? 0.0f : 1.0f;  // Before the move.
    ds.Add(std::move(x), label);
  }
  return ds;
}

Model MakeToyClassifier(const std::string& name, int hidden, uint64_t seed) {
  Rng rng(seed);
  Model m(name, {2});
  m.Emplace<Dense>(2, hidden, Activation::kRelu).InitParams(rng);
  m.Emplace<Dense>(hidden, 2).InitParams(rng);
  m.Emplace<SoftmaxLayer>();
  return m;
}

class CorpusTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Dataset train = MakeToyTask(500, 2);
    models_ = new std::vector<Model>();
    models_->push_back(MakeToyClassifier("cp_a", 16, 41));
    models_->push_back(MakeToyClassifier("cp_b", 24, 42));
    models_->push_back(MakeToyClassifier("cp_c", 12, 43));
    for (Model& m : *models_) {
      TrainConfig cfg;
      cfg.epochs = 8;
      cfg.learning_rate = 5e-3f;
      cfg.seed = 7;
      Trainer::Fit(&m, train, cfg);
      ASSERT_GT(Trainer::Accuracy(m, train), 0.9f);
    }
    seeds_ = new std::vector<Tensor>();
    Rng rng(44);
    while (seeds_->size() < 30) {
      Tensor x({2});
      x[0] = rng.NextFloat();
      x[1] = rng.NextFloat();
      const float margin = std::abs(x[0] - x[1]);
      if (margin > 0.1f && margin < 0.3f) {
        seeds_->push_back(std::move(x));
      }
    }
  }
  static void TearDownTestSuite() {
    delete seeds_;
    delete models_;
    seeds_ = nullptr;
    models_ = nullptr;
  }

  static std::vector<Model*> ModelPtrs() {
    std::vector<Model*> ptrs;
    for (Model& m : *models_) {
      ptrs.push_back(&m);
    }
    return ptrs;
  }

  // Small sync batches so a 30-seed pass spans several checkpoints.
  static SessionConfig BaseConfig(const std::string& metric = "neuron") {
    SessionConfig config;
    config.engine.lambda1 = 2.5f;
    config.engine.step = 0.05f;
    config.engine.max_iterations_per_seed = 120;
    config.engine.rng_seed = 19;
    config.metric = metric;
    config.sync_interval = 8;
    return config;
  }

  static RunOptions Bounds() {
    RunOptions options;
    options.max_seed_passes = 2;
    return options;
  }

  // A fresh (cleared) per-test directory: corpora deliberately persist on
  // disk, so leftovers from a previous test run must be wiped.
  std::string TempCorpusDir(const std::string& name) {
    const std::string dir =
        ::testing::TempDir() + "corpus_test_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() + "_" + name;
    std::filesystem::remove_all(dir);
    return dir;
  }

  static void ExpectSameResults(const RunStats& a, const RunStats& b) {
    ASSERT_EQ(a.tests.size(), b.tests.size());
    EXPECT_EQ(a.seeds_tried, b.seeds_tried);
    EXPECT_EQ(a.seeds_skipped, b.seeds_skipped);
    EXPECT_EQ(a.total_iterations, b.total_iterations);
    EXPECT_EQ(a.forward_passes, b.forward_passes);
    EXPECT_FLOAT_EQ(a.mean_coverage, b.mean_coverage);
    for (size_t i = 0; i < a.tests.size(); ++i) {
      EXPECT_EQ(a.tests[i].input.values(), b.tests[i].input.values()) << "test " << i;
      EXPECT_EQ(a.tests[i].seed_index, b.tests[i].seed_index) << "test " << i;
      EXPECT_EQ(a.tests[i].iterations, b.tests[i].iterations) << "test " << i;
      EXPECT_EQ(a.tests[i].deviating_model, b.tests[i].deviating_model) << "test " << i;
      EXPECT_EQ(a.tests[i].task_ordinal, b.tests[i].task_ordinal) << "test " << i;
      EXPECT_EQ(a.tests[i].labels, b.tests[i].labels) << "test " << i;
    }
  }

  static std::vector<Model>* models_;
  static std::vector<Tensor>* seeds_;
};

std::vector<Model>* CorpusTest::models_ = nullptr;
std::vector<Tensor>* CorpusTest::seeds_ = nullptr;

// ---- Record + reopen ---------------------------------------------------------------------

TEST_F(CorpusTest, RecordedCampaignSurvivesReopen) {
  const std::string dir = TempCorpusDir("store");
  RunStats recorded;
  {
    UnconstrainedImage constraint;
    Session session(ModelPtrs(), &constraint, BaseConfig());
    Corpus corpus(dir);
    corpus.SetMetadata("flavor", "toy");
    recorded = session.Run(*seeds_, Bounds(), &corpus);
    ASSERT_GT(recorded.tests.size(), 0u);
  }

  Corpus reopened(dir);
  ASSERT_TRUE(reopened.initialized());
  ASSERT_TRUE(reopened.has_checkpoint());
  EXPECT_TRUE(reopened.checkpoint().complete);
  EXPECT_EQ(reopened.entries().size(), recorded.tests.size());
  EXPECT_EQ(reopened.checkpoint().forward_passes, recorded.forward_passes);
  EXPECT_EQ(reopened.meta().seeds.size(), seeds_->size());
  EXPECT_EQ(reopened.meta().model_names,
            (std::vector<std::string>{"cp_a", "cp_b", "cp_c"}));
  const std::string* flavor = reopened.meta().FindMetadata("flavor");
  ASSERT_NE(flavor, nullptr);
  EXPECT_EQ(*flavor, "toy");
  for (size_t i = 0; i < recorded.tests.size(); ++i) {
    EXPECT_EQ(reopened.entries()[i].input.values(), recorded.tests[i].input.values());
    EXPECT_EQ(reopened.entries()[i].task_ordinal, recorded.tests[i].task_ordinal);
    EXPECT_EQ(reopened.entries()[i].labels, recorded.tests[i].labels);
  }
}

// ---- Replay ------------------------------------------------------------------------------

class CorpusMetricTest : public CorpusTest,
                         public ::testing::WithParamInterface<const char*> {};

TEST_P(CorpusMetricTest, RecordedCampaignReplaysBitIdentically) {
  const std::string dir = TempCorpusDir(GetParam());
  RunStats recorded;
  {
    UnconstrainedImage constraint;
    Session session(ModelPtrs(), &constraint, BaseConfig(GetParam()));
    Corpus corpus(dir);
    recorded = session.Run(*seeds_, Bounds(), &corpus);
    ASSERT_GT(recorded.tests.size(), 0u);
  }

  // A different process would do exactly this: reopen + fresh session. The
  // replay session also uses a different batch size (results are invariant).
  Corpus corpus(dir);
  SessionConfig config = BaseConfig(GetParam());
  config.batch_size = 3;
  UnconstrainedImage constraint;
  Session session(ModelPtrs(), &constraint, config);
  const ReplayResult result = session.Replay(corpus);
  EXPECT_TRUE(result.ok) << result.mismatch;
  ExpectSameResults(result.stats, recorded);
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, CorpusMetricTest,
                         ::testing::Values("neuron", "kmultisection", "topk"));

TEST_F(CorpusTest, ReplayDetectsTamperedEntries) {
  const std::string dir = TempCorpusDir("tamper");
  {
    UnconstrainedImage constraint;
    Session session(ModelPtrs(), &constraint, BaseConfig());
    Corpus corpus(dir);
    const RunStats recorded = session.Run(*seeds_, Bounds(), &corpus);
    ASSERT_GT(recorded.tests.size(), 0u);
  }
  // Flip bits in the last entry's input tensor (the final floats of the
  // append-only entry stream).
  const std::string entries_path = dir + "/entries.bin";
  std::fstream file(entries_path,
                    std::ios::binary | std::ios::in | std::ios::out | std::ios::ate);
  ASSERT_TRUE(file.good());
  const std::streamoff size = file.tellg();
  ASSERT_GT(size, 4);
  file.seekg(size - 4);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5a);
  file.seekp(size - 4);
  file.write(&byte, 1);
  file.close();

  Corpus corpus(dir);
  UnconstrainedImage constraint;
  Session session(ModelPtrs(), &constraint, BaseConfig());
  const ReplayResult result = session.Replay(corpus);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.mismatch.empty());
}

// ---- Resume ------------------------------------------------------------------------------

TEST_F(CorpusTest, InterruptedThenResumedMatchesUninterrupted) {
  RunStats reference;
  {
    UnconstrainedImage constraint;
    Session session(ModelPtrs(), &constraint, BaseConfig());
    reference = session.Run(*seeds_, Bounds());
    ASSERT_GT(reference.tests.size(), 0u);
  }

  // Interrupt after every single sync batch, resuming each leg in a fresh
  // session with a different worker count and batch size.
  const std::string dir = TempCorpusDir("legs");
  RunStats final_stats;
  int legs = 0;
  for (;; ++legs) {
    ASSERT_LT(legs, 64) << "campaign did not converge";
    SessionConfig config = BaseConfig();
    config.workers = (legs % 2 == 0) ? 1 : 4;
    config.batch_size = (legs % 3) + 1;
    UnconstrainedImage constraint;
    Session session(ModelPtrs(), &constraint, config);
    Corpus corpus(dir);
    RunOptions options = Bounds();
    options.max_sync_batches = 1;
    final_stats = session.Run(*seeds_, options, &corpus);
    if (corpus.checkpoint().complete) {
      break;
    }
  }
  EXPECT_GT(legs, 2) << "interruption never split the campaign";
  ExpectSameResults(final_stats, reference);
}

TEST_F(CorpusTest, ResumeDoesNotDoubleCountForwardPassesOrCoverage) {
  // k-multisection profiles the seed pool at campaign start; a resume that
  // re-profiled would inflate forward_passes and could widen the ranges.
  RunStats reference;
  {
    UnconstrainedImage constraint;
    Session session(ModelPtrs(), &constraint, BaseConfig("kmultisection"));
    reference = session.Run(*seeds_, Bounds());
    ASSERT_GT(reference.tests.size(), 0u);
  }

  const std::string dir = TempCorpusDir("noprofile");
  {
    UnconstrainedImage constraint;
    Session session(ModelPtrs(), &constraint, BaseConfig("kmultisection"));
    Corpus corpus(dir);
    RunOptions options = Bounds();
    options.max_sync_batches = 2;
    session.Run(*seeds_, options, &corpus);
    ASSERT_FALSE(corpus.checkpoint().complete);
  }
  RunStats resumed;
  {
    UnconstrainedImage constraint;
    Session session(ModelPtrs(), &constraint, BaseConfig("kmultisection"));
    Corpus corpus(dir);
    resumed = session.Run(*seeds_, Bounds(), &corpus);
  }
  ExpectSameResults(resumed, reference);
}

TEST_F(CorpusTest, ResumingACompleteCampaignRunsNothing) {
  const std::string dir = TempCorpusDir("complete");
  RunStats recorded;
  {
    UnconstrainedImage constraint;
    Session session(ModelPtrs(), &constraint, BaseConfig());
    Corpus corpus(dir);
    recorded = session.Run(*seeds_, Bounds(), &corpus);
  }

  UnconstrainedImage constraint;
  Session session(ModelPtrs(), &constraint, BaseConfig());
  Corpus corpus(dir);
  std::vector<int64_t> passes_before;
  for (const Model* m : ModelPtrs()) {
    passes_before.push_back(m->forward_passes());
  }
  const RunStats resumed = session.Run(*seeds_, Bounds(), &corpus);
  size_t k = 0;
  for (const Model* m : ModelPtrs()) {
    EXPECT_EQ(m->forward_passes(), passes_before[k++]) << "resume re-executed models";
  }
  ExpectSameResults(resumed, recorded);
  // The session's restored coverage state matches the recorded end state.
  EXPECT_FLOAT_EQ(session.MeanCoverage(), recorded.mean_coverage);
}

// ---- Validation --------------------------------------------------------------------------

TEST_F(CorpusTest, MismatchedConfigIsRejected) {
  const std::string dir = TempCorpusDir("reject");
  {
    UnconstrainedImage constraint;
    Session session(ModelPtrs(), &constraint, BaseConfig());
    Corpus corpus(dir);
    session.Run(*seeds_, Bounds(), &corpus);
  }

  UnconstrainedImage constraint;
  SessionConfig other = BaseConfig();
  other.engine.rng_seed = 20;  // Different stream => different campaign.
  Session session(ModelPtrs(), &constraint, other);
  Corpus corpus(dir);
  EXPECT_THROW(session.Run(*seeds_, Bounds(), &corpus), std::invalid_argument);

  // Same config but a different seed pool is rejected too.
  Session same(ModelPtrs(), &constraint, BaseConfig());
  std::vector<Tensor> other_seeds = *seeds_;
  other_seeds.pop_back();
  EXPECT_THROW(same.Run(other_seeds, Bounds(), &corpus), std::invalid_argument);

  // A different constraint rewrites gradients differently — rejected before
  // anything executes.
  LightingConstraint lighting;
  Session diff_constraint(ModelPtrs(), &lighting, BaseConfig());
  EXPECT_THROW(diff_constraint.Run(*seeds_, Bounds(), &corpus), std::invalid_argument);
}

TEST_F(CorpusTest, LegacySerialModeCannotRecord) {
  SessionConfig config = BaseConfig();
  config.sync_interval = 0;
  UnconstrainedImage constraint;
  Session session(ModelPtrs(), &constraint, config);
  Corpus corpus(TempCorpusDir("legacy"));
  EXPECT_THROW(session.Run(*seeds_, Bounds(), &corpus), std::invalid_argument);
}

// ---- Coverage snapshot round trip --------------------------------------------------------

TEST_F(CorpusTest, CheckpointCoverageSnapshotsAreBitExact) {
  const std::string dir = TempCorpusDir("snapshot");
  UnconstrainedImage constraint;
  const SessionConfig config = BaseConfig("kmultisection");
  Session session(ModelPtrs(), &constraint, config);
  Corpus corpus(dir);
  session.Run(*seeds_, Bounds(), &corpus);

  // Deserializing a stored snapshot into a fresh tracker and re-serializing
  // it must reproduce the blob byte for byte (state, ranges, and coverage).
  const CorpusCheckpoint& cp = corpus.checkpoint();
  ASSERT_EQ(cp.metric_blobs.size(), 3u);
  for (size_t k = 0; k < cp.metric_blobs.size(); ++k) {
    auto fresh = MakeCoverageMetric("kmultisection", (*models_)[k], config.engine.coverage);
    std::istringstream in(cp.metric_blobs[k]);
    BinaryReader reader(in);
    fresh->Deserialize(reader);
    EXPECT_EQ(fresh->covered_items(), session.metric(static_cast<int>(k)).covered_items());
    std::ostringstream out;
    BinaryWriter writer(out);
    fresh->Serialize(writer);
    EXPECT_EQ(out.str(), cp.metric_blobs[k]) << "model " << k;
  }

  // A snapshot for the wrong metric type is rejected.
  auto wrong = MakeCoverageMetric("neuron", (*models_)[0], config.engine.coverage);
  std::istringstream in(cp.metric_blobs[0]);
  BinaryReader reader(in);
  EXPECT_THROW(wrong->Deserialize(reader), std::runtime_error);
}

}  // namespace
}  // namespace dx

// Randomized batch-kernel property tests: for EVERY layer type, the batched
// kernels (ForwardBatch / BackwardBatch) must be bit-identical to the
// per-sample path over random layer configurations, random input shapes, and
// random batch sizes — generalizing the hand-picked shapes of
// tests/batch_exec_test.cc. The RNG seed is fixed, so every run checks the
// same (reproducible) sample of the configuration space.
#include <gtest/gtest.h>

#include <cstdint>

#include "src/nn/activation.h"
#include "src/nn/batchnorm.h"
#include "src/nn/conv2d.h"
#include "src/nn/dense.h"
#include "src/nn/dropout.h"
#include "src/nn/flatten.h"
#include "src/nn/pool2d.h"
#include "src/nn/residual.h"
#include "src/nn/softmax_layer.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace dx {
namespace {

constexpr int kTrials = 10;

int RandInt(Rng& rng, int lo, int hi) {
  return static_cast<int>(rng.UniformInt(lo, hi));
}

Activation RandAct(Rng& rng) {
  return static_cast<Activation>(RandInt(rng, 0, 3));  // kNone..kSigmoid.
}

// Batch sizes straddle the 8-lane dense blocking: singletons, partial
// blocks, exact blocks, and blocks-plus-tail all occur across trials.
int RandBatch(Rng& rng) { return RandInt(rng, 1, 19); }

TEST(BatchPropertyTest, Dense) {
  Rng rng(0xD0);
  for (int t = 0; t < kTrials; ++t) {
    Dense layer(RandInt(rng, 1, 24), RandInt(rng, 1, 16), RandAct(rng));
    layer.InitParams(rng);
    testing::ExpectBatchMatchesScalar(layer, {layer.in_features()}, RandBatch(rng), rng.NextU64());
  }
}

TEST(BatchPropertyTest, Conv2D) {
  Rng rng(0xC0);
  for (int t = 0; t < kTrials; ++t) {
    const int in_ch = RandInt(rng, 1, 3);
    const int kh = RandInt(rng, 1, 3);
    const int kw = RandInt(rng, 1, 3);
    const int stride = RandInt(rng, 1, 2);
    const int pad = RandInt(rng, 0, 1);
    Conv2D layer(in_ch, RandInt(rng, 1, 5), kh, kw, stride, pad, RandAct(rng));
    layer.InitParams(rng);
    const Shape in_shape = {in_ch, RandInt(rng, kh + 1, 10), RandInt(rng, kw + 1, 10)};
    testing::ExpectBatchMatchesScalar(layer, in_shape, RandBatch(rng), rng.NextU64());
  }
}

TEST(BatchPropertyTest, Pool2D) {
  Rng rng(0xB0);
  for (int t = 0; t < kTrials; ++t) {
    const PoolMode mode = rng.Bernoulli(0.5) ? PoolMode::kMax : PoolMode::kAvg;
    const int kernel = RandInt(rng, 1, 3);
    const int stride = RandInt(rng, 0, 2);  // 0 means stride == kernel.
    Pool2D layer(mode, kernel, stride);
    const Shape in_shape = {RandInt(rng, 1, 3), RandInt(rng, kernel + 1, 9),
                            RandInt(rng, kernel + 1, 9)};
    testing::ExpectBatchMatchesScalar(layer, in_shape, RandBatch(rng), rng.NextU64());
  }
}

TEST(BatchPropertyTest, Flatten) {
  Rng rng(0xF0);
  for (int t = 0; t < kTrials; ++t) {
    const Shape in_shape = {RandInt(rng, 1, 3), RandInt(rng, 1, 6), RandInt(rng, 1, 6)};
    testing::ExpectBatchMatchesScalar(Flatten(), in_shape, RandBatch(rng), rng.NextU64());
  }
}

TEST(BatchPropertyTest, Softmax) {
  Rng rng(0x50);
  for (int t = 0; t < kTrials; ++t) {
    testing::ExpectBatchMatchesScalar(SoftmaxLayer(), {RandInt(rng, 2, 15)},
                                      RandBatch(rng), rng.NextU64());
  }
}

TEST(BatchPropertyTest, BatchNormFlatAndChw) {
  Rng rng(0xBF);
  for (int t = 0; t < kTrials; ++t) {
    const int features = RandInt(rng, 1, 8);
    std::vector<float> mean(static_cast<size_t>(features));
    std::vector<float> variance(static_cast<size_t>(features));
    for (int i = 0; i < features; ++i) {
      mean[static_cast<size_t>(i)] = static_cast<float>(rng.Uniform(-1.0, 1.0));
      variance[static_cast<size_t>(i)] = static_cast<float>(rng.Uniform(0.1, 2.0));
    }
    BatchNorm layer(features);
    layer.SetStatistics(mean, variance);
    const Shape in_shape = rng.Bernoulli(0.5)
                               ? Shape{features}
                               : Shape{features, RandInt(rng, 2, 6), RandInt(rng, 2, 6)};
    testing::ExpectBatchMatchesScalar(layer, in_shape, RandBatch(rng), rng.NextU64());
  }
}

TEST(BatchPropertyTest, ResidualBlock) {
  Rng rng(0xE0);
  for (int t = 0; t < kTrials; ++t) {
    const int in_ch = RandInt(rng, 1, 3);
    const int stride = RandInt(rng, 1, 2);
    ResidualBlock layer(in_ch, RandInt(rng, 1, 4), stride);
    layer.InitParams(rng);
    const Shape in_shape = {in_ch, 2 * RandInt(rng, 2, 4), 2 * RandInt(rng, 2, 4)};
    testing::ExpectBatchMatchesScalar(layer, in_shape, RandBatch(rng), rng.NextU64());
  }
}

TEST(BatchPropertyTest, DropoutInference) {
  Rng rng(0xD1);
  for (int t = 0; t < kTrials; ++t) {
    Dropout layer(static_cast<float>(rng.Uniform(0.0, 0.9)));
    testing::ExpectBatchMatchesScalar(layer, {RandInt(rng, 1, 12)}, RandBatch(rng), rng.NextU64());
  }
}

// The harness itself must exercise every batch-size regime; pin that the
// generator spans 1, sub-block, exact-block, and block-plus-tail sizes.
TEST(BatchPropertyTest, BatchSizesCoverAllLaneRegimes) {
  Rng rng(0xAB);
  bool one = false;
  bool sub = false;
  bool exact = false;
  bool tail = false;
  for (int t = 0; t < 200; ++t) {
    const int b = RandBatch(rng);
    one = one || b == 1;
    sub = sub || (b > 1 && b < 8);
    exact = exact || b % 8 == 0;
    tail = tail || (b > 8 && b % 8 != 0);
  }
  EXPECT_TRUE(one && sub && exact && tail);
}

}  // namespace
}  // namespace dx

// Layer-level unit tests: shapes, forward values, and — critically —
// numerical gradient checks of every Backward implementation, for both input
// gradients and parameter gradients. These validate the reverse-mode engine
// DeepXplore's joint optimization relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "src/nn/activation.h"
#include "src/nn/batchnorm.h"
#include "src/nn/conv2d.h"
#include "src/nn/dense.h"
#include "src/nn/dropout.h"
#include "src/nn/flatten.h"
#include "src/nn/pool2d.h"
#include "src/nn/softmax_layer.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace dx {
namespace {

using ::dx::testing::MaxRelError;
using ::dx::testing::NumericalGradient;

// Computes <probe, layer(x)> and checks Backward's input gradient against the
// numerical gradient of that scalar.
void CheckInputGradient(const Layer& layer, const Tensor& x, float tol = 2e-2f) {
  Rng rng(123);
  Tensor aux;
  const Tensor y = layer.Forward(x, /*training=*/false, nullptr, &aux);
  const Tensor probe = Tensor::Randn(y.shape(), rng);

  const Tensor analytic = layer.Backward(x, y, probe, aux, nullptr);

  const auto scalar = [&](const Tensor& xx) {
    Tensor aux2;
    const Tensor yy = layer.Forward(xx, false, nullptr, &aux2);
    double s = 0.0;
    for (int64_t i = 0; i < yy.numel(); ++i) {
      s += static_cast<double>(probe[i]) * yy[i];
    }
    return s;
  };
  const Tensor numeric = NumericalGradient(scalar, x, 1e-2f);
  EXPECT_LT(MaxRelError(analytic, numeric), tol);
}

// Checks parameter gradients of a layer with params against numeric diff.
// `max_params` limits the check to the first k parameters (BatchNorm's frozen
// mu/var intentionally receive zero analytic gradient).
void CheckParamGradients(Layer& layer, const Tensor& x, float tol = 2e-2f,
                         int max_params = -1) {
  Rng rng(321);
  Tensor aux;
  const Tensor y = layer.Forward(x, false, nullptr, &aux);
  const Tensor probe = Tensor::Randn(y.shape(), rng);

  std::vector<Tensor> grads;
  for (const Tensor* p : layer.Params()) {
    grads.emplace_back(p->shape());
  }
  layer.Backward(x, y, probe, aux, &grads);

  auto params = layer.MutableParams();
  if (max_params >= 0) {
    params.resize(static_cast<size_t>(max_params));
  }
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Tensor* param = params[pi];
    const auto scalar = [&](const Tensor& theta) {
      const Tensor saved = *param;
      *param = theta;
      Tensor aux2;
      const Tensor yy = layer.Forward(x, false, nullptr, &aux2);
      *param = saved;
      double s = 0.0;
      for (int64_t i = 0; i < yy.numel(); ++i) {
        s += static_cast<double>(probe[i]) * yy[i];
      }
      return s;
    };
    const Tensor numeric = NumericalGradient(scalar, *param, 1e-2f);
    EXPECT_LT(MaxRelError(grads[pi], numeric), tol) << "param " << pi;
  }
}

// ---- Dense -------------------------------------------------------------------------------

TEST(DenseTest, ForwardKnownValues) {
  Dense d(2, 2, Activation::kNone);
  d.weight() = Tensor({2, 2}, std::vector<float>{1, 2, 3, 4});
  d.bias() = Tensor({2}, std::vector<float>{0.5f, -0.5f});
  const Tensor y = d.Forward(Tensor({2}, std::vector<float>{1, 1}), false, nullptr, nullptr);
  EXPECT_FLOAT_EQ(y[0], 3.5f);
  EXPECT_FLOAT_EQ(y[1], 6.5f);
}

TEST(DenseTest, OutputShapeValidation) {
  Dense d(6, 3);
  EXPECT_EQ(d.OutputShape({6}), (Shape{3}));
  EXPECT_EQ(d.OutputShape({2, 3}), (Shape{3}));  // Dense flattens logically.
  EXPECT_THROW(d.OutputShape({5}), std::invalid_argument);
}

TEST(DenseTest, RejectsBadConstruction) {
  EXPECT_THROW(Dense(0, 3), std::invalid_argument);
  EXPECT_THROW(Dense(3, -1), std::invalid_argument);
}

class DenseGradTest : public ::testing::TestWithParam<Activation> {};

TEST_P(DenseGradTest, InputAndParamGradientsMatchNumeric) {
  Rng rng(7);
  Dense d(5, 4, GetParam());
  d.InitParams(rng);
  const Tensor x = Tensor::Randn({5}, rng);
  CheckInputGradient(d, x);
  CheckParamGradients(d, x);
}

INSTANTIATE_TEST_SUITE_P(AllActivations, DenseGradTest,
                         ::testing::Values(Activation::kNone, Activation::kRelu,
                                           Activation::kTanh, Activation::kSigmoid));

TEST(DenseTest, NeuronInterface) {
  Dense d(3, 4);
  EXPECT_EQ(d.NumNeurons(), 4);
  Tensor y({4}, std::vector<float>{1, 2, 3, 4});
  EXPECT_FLOAT_EQ(d.NeuronValue(y, 2), 3.0f);
  Tensor seed({4});
  d.AddNeuronSeed(&seed, 1, 2.0f);
  EXPECT_FLOAT_EQ(seed[1], 2.0f);
  EXPECT_FLOAT_EQ(seed.Sum(), 2.0f);
}

TEST(DenseTest, WeightInitSchemes) {
  Rng rng(7);
  Dense glorot(100, 50);
  glorot.InitParams(rng, WeightInit::kGlorotUniform);
  const float limit = std::sqrt(6.0f / 150.0f);
  EXPECT_LE(glorot.weight().Max(), limit);
  EXPECT_GE(glorot.weight().Min(), -limit);

  Dense normed(100, 50);
  normed.InitParams(rng, WeightInit::kNormalized);
  // Each row should have unit L2 norm.
  for (int o = 0; o < 50; ++o) {
    double norm = 0.0;
    for (int i = 0; i < 100; ++i) {
      const float w = normed.weight().at({o, i});
      norm += static_cast<double>(w) * w;
    }
    EXPECT_NEAR(norm, 1.0, 1e-4);
  }
}

// ---- Conv2D ------------------------------------------------------------------------------

TEST(Conv2DTest, OutputShapeValidStride) {
  Conv2D c(1, 4, 5, 5);
  EXPECT_EQ(c.OutputShape({1, 28, 28}), (Shape{4, 24, 24}));
  Conv2D s2(3, 8, 5, 5, 2);
  EXPECT_EQ(s2.OutputShape({3, 33, 33}), (Shape{8, 15, 15}));
  Conv2D same(3, 8, 3, 3, 1, 1);
  EXPECT_EQ(same.OutputShape({3, 16, 16}), (Shape{8, 16, 16}));
  EXPECT_THROW(c.OutputShape({2, 28, 28}), std::invalid_argument);
  EXPECT_THROW(c.OutputShape({1, 3, 3}), std::invalid_argument);
}

TEST(Conv2DTest, IdentityKernelReproducesInput) {
  Conv2D c(1, 1, 1, 1);
  c.weight() = Tensor({1, 1, 1, 1}, std::vector<float>{1.0f});
  Rng rng(3);
  const Tensor x = Tensor::Randn({1, 4, 4}, rng);
  const Tensor y = c.Forward(x, false, nullptr, nullptr);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_FLOAT_EQ(y[i], x[i]);
  }
}

TEST(Conv2DTest, BoxFilterComputesLocalSum) {
  Conv2D c(1, 1, 2, 2);
  c.weight() = Tensor({1, 1, 2, 2}, std::vector<float>{1, 1, 1, 1});
  const Tensor x({1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  const Tensor y = c.Forward(x, false, nullptr, nullptr);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 10.0f);
}

struct ConvConfig {
  int in_ch;
  int out_ch;
  int kernel;
  int stride;
  int padding;
  Activation act;
};

class ConvGradTest : public ::testing::TestWithParam<ConvConfig> {};

TEST_P(ConvGradTest, GradientsMatchNumeric) {
  const ConvConfig cfg = GetParam();
  Rng rng(11);
  Conv2D c(cfg.in_ch, cfg.out_ch, cfg.kernel, cfg.kernel, cfg.stride, cfg.padding, cfg.act);
  c.InitParams(rng);
  const Tensor x = Tensor::Randn({cfg.in_ch, 7, 7}, rng);
  CheckInputGradient(c, x);
  CheckParamGradients(c, x);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ConvGradTest,
    ::testing::Values(ConvConfig{1, 2, 3, 1, 0, Activation::kNone},
                      ConvConfig{2, 3, 3, 1, 1, Activation::kRelu},
                      ConvConfig{3, 2, 5, 2, 0, Activation::kTanh},
                      ConvConfig{2, 2, 3, 2, 1, Activation::kSigmoid},
                      // 1x1 kernels keep pre-activations near zero, so use a
                      // smooth activation to avoid numerical-diff kinks.
                      ConvConfig{1, 4, 1, 1, 0, Activation::kTanh}));

TEST(Conv2DTest, NeuronValueIsChannelMean) {
  Conv2D c(1, 2, 1, 1);
  Tensor y({2, 2, 2}, std::vector<float>{1, 2, 3, 4, 10, 20, 30, 40});
  EXPECT_FLOAT_EQ(c.NeuronValue(y, 0), 2.5f);
  EXPECT_FLOAT_EQ(c.NeuronValue(y, 1), 25.0f);
  EXPECT_THROW(c.NeuronValue(y, 2), std::out_of_range);
}

TEST(Conv2DTest, NeuronSeedMatchesNeuronValueGradient) {
  // d(NeuronValue)/d(output) must equal the seed AddNeuronSeed creates.
  Conv2D c(1, 2, 1, 1);
  Tensor seed({2, 3, 3});
  c.AddNeuronSeed(&seed, 1, 1.0f);
  // Channel 1 entries = 1/9, channel 0 = 0.
  for (int i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(seed[i], 0.0f);
    EXPECT_NEAR(seed[9 + i], 1.0f / 9.0f, 1e-6f);
  }
}

// ---- Pool2D ------------------------------------------------------------------------------

TEST(Pool2DTest, MaxPoolForward) {
  Pool2D p(PoolMode::kMax, 2);
  const Tensor x({1, 4, 4},
                 std::vector<float>{1, 2, 5, 6, 3, 4, 7, 8, 9, 10, 13, 14, 11, 12, 15, 16});
  const Tensor y = p.Forward(x, false, nullptr, nullptr);
  EXPECT_EQ(y.shape(), (Shape{1, 2, 2}));
  EXPECT_FLOAT_EQ(y[0], 4.0f);
  EXPECT_FLOAT_EQ(y[1], 8.0f);
  EXPECT_FLOAT_EQ(y[2], 12.0f);
  EXPECT_FLOAT_EQ(y[3], 16.0f);
}

TEST(Pool2DTest, AvgPoolForward) {
  Pool2D p(PoolMode::kAvg, 2);
  const Tensor x({1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  const Tensor y = p.Forward(x, false, nullptr, nullptr);
  EXPECT_FLOAT_EQ(y[0], 2.5f);
}

TEST(Pool2DTest, MaxPoolBackwardRoutesToWinner) {
  Pool2D p(PoolMode::kMax, 2);
  const Tensor x({1, 2, 2}, std::vector<float>{1, 9, 3, 4});
  Tensor aux;
  const Tensor y = p.Forward(x, false, nullptr, &aux);
  const Tensor g = p.Backward(x, y, Tensor({1, 1, 1}, std::vector<float>{5.0f}), aux, nullptr);
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 5.0f);
  EXPECT_FLOAT_EQ(g[2], 0.0f);
}

TEST(Pool2DTest, GradientsMatchNumericWithDistinctValues) {
  // Well-separated values avoid numerical kinks at pooling ties.
  Rng rng(13);
  std::vector<float> vals(2 * 6 * 6);
  for (size_t i = 0; i < vals.size(); ++i) {
    vals[i] = static_cast<float>(i) * 0.1f;
  }
  rng.Shuffle(vals);
  const Tensor x({2, 6, 6}, vals);
  Pool2D max_pool(PoolMode::kMax, 2);
  CheckInputGradient(max_pool, x);
  Pool2D avg_pool(PoolMode::kAvg, 2);
  CheckInputGradient(avg_pool, x);
  Pool2D strided(PoolMode::kMax, 3, 3);
  CheckInputGradient(strided, x);
}

TEST(Pool2DTest, RejectsBadGeometry) {
  EXPECT_THROW(Pool2D(PoolMode::kMax, 0), std::invalid_argument);
  Pool2D p(PoolMode::kMax, 5);
  EXPECT_THROW(p.OutputShape({1, 3, 3}), std::invalid_argument);
  EXPECT_THROW(p.OutputShape({3, 3}), std::invalid_argument);
}

// ---- BatchNorm ---------------------------------------------------------------------------

TEST(BatchNormTest, NormalizesWithStatistics) {
  BatchNorm bn(2);
  bn.SetStatistics({1.0f, 2.0f}, {4.0f, 9.0f});
  const Tensor x({2, 1, 2}, std::vector<float>{1, 5, 2, 11});
  const Tensor y = bn.Forward(x, false, nullptr, nullptr);
  EXPECT_NEAR(y[0], 0.0f, 1e-3f);
  EXPECT_NEAR(y[1], 2.0f, 1e-3f);
  EXPECT_NEAR(y[2], 0.0f, 1e-3f);
  EXPECT_NEAR(y[3], 3.0f, 1e-3f);
}

TEST(BatchNormTest, GradientsMatchNumeric) {
  Rng rng(17);
  BatchNorm bn(3);
  bn.SetStatistics({0.1f, -0.2f, 0.3f}, {1.5f, 0.5f, 2.0f});
  const Tensor x = Tensor::Randn({3, 4, 4}, rng);
  CheckInputGradient(bn, x);
  CheckParamGradients(bn, x, 2e-2f, BatchNorm::kNumTrainableParams);
}

TEST(BatchNormTest, FlatInputSupported) {
  BatchNorm bn(4);
  const Tensor x({4}, std::vector<float>{1, 2, 3, 4});
  const Tensor y = bn.Forward(x, false, nullptr, nullptr);
  EXPECT_EQ(y.shape(), (Shape{4}));
  EXPECT_THROW(bn.OutputShape({5}), std::invalid_argument);
}

TEST(BatchNormTest, SetStatisticsValidatesSize) {
  BatchNorm bn(2);
  EXPECT_THROW(bn.SetStatistics({1.0f}, {1.0f, 2.0f}), std::invalid_argument);
  EXPECT_FALSE(bn.calibrated());
  bn.SetStatistics({0.0f, 0.0f}, {1.0f, 1.0f});
  EXPECT_TRUE(bn.calibrated());
}

// ---- Dropout -----------------------------------------------------------------------------

TEST(DropoutTest, IdentityAtInference) {
  Dropout d(0.5f);
  Rng rng(19);
  const Tensor x = Tensor::Randn({10}, rng);
  const Tensor y = d.Forward(x, false, nullptr, nullptr);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_FLOAT_EQ(y[i], x[i]);
  }
}

TEST(DropoutTest, TrainingDropsAndRescales) {
  Dropout d(0.5f);
  Rng rng(19);
  const Tensor x({1000}, 1.0f);
  Tensor aux;
  const Tensor y = d.Forward(x, true, &rng, &aux);
  int zeros = 0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y[i], 2.0f);  // Inverted scaling 1/(1-0.5).
    }
  }
  EXPECT_NEAR(zeros, 500, 60);
}

TEST(DropoutTest, BackwardUsesMask) {
  Dropout d(0.5f);
  Rng rng(19);
  const Tensor x({8}, 1.0f);
  Tensor aux;
  const Tensor y = d.Forward(x, true, &rng, &aux);
  const Tensor g = d.Backward(x, y, Tensor({8}, 1.0f), aux, nullptr);
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(g[i], y[i]);  // Mask applied equally to value and grad.
  }
}

TEST(DropoutTest, TrainingWithoutRngThrows) {
  Dropout d(0.3f);
  EXPECT_THROW(d.Forward(Tensor({4}), true, nullptr, nullptr), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0f), std::invalid_argument);
  EXPECT_THROW(Dropout(-0.1f), std::invalid_argument);
}

// ---- Flatten -----------------------------------------------------------------------------

TEST(FlattenTest, ReshapesAndRestores) {
  Flatten f;
  Rng rng(23);
  const Tensor x = Tensor::Randn({2, 3, 4}, rng);
  const Tensor y = f.Forward(x, false, nullptr, nullptr);
  EXPECT_EQ(y.shape(), (Shape{24}));
  const Tensor g = f.Backward(x, y, y, Tensor(), nullptr);
  EXPECT_EQ(g.shape(), x.shape());
}

// ---- SoftmaxLayer ------------------------------------------------------------------------

TEST(SoftmaxLayerTest, ForwardIsNormalized) {
  SoftmaxLayer sm;
  const Tensor y =
      sm.Forward(Tensor({3}, std::vector<float>{1, 2, 3}), false, nullptr, nullptr);
  EXPECT_NEAR(y.Sum(), 1.0f, 1e-5f);
}

TEST(SoftmaxLayerTest, JacobianVectorProductMatchesNumeric) {
  Rng rng(29);
  SoftmaxLayer sm;
  const Tensor x = Tensor::Randn({6}, rng);
  CheckInputGradient(sm, x, 1e-2f);
}

}  // namespace
}  // namespace dx

// Neuron-coverage tracker and code-coverage analog.
#include <gtest/gtest.h>

#include "src/coverage/neuron_coverage.h"
#include "src/coverage/op_coverage.h"
#include "src/nn/conv2d.h"
#include "src/nn/dense.h"
#include "src/nn/flatten.h"
#include "src/nn/model.h"
#include "src/nn/softmax_layer.h"
#include "src/util/rng.h"

namespace dx {
namespace {

Model MakeNet(uint64_t seed) {
  Rng rng(seed);
  Model m("cov", {1, 8, 8});
  m.Emplace<Conv2D>(1, 4, 3, 3, 1, 0, Activation::kRelu).InitParams(rng);
  m.Emplace<Flatten>();
  m.Emplace<Dense>(4 * 6 * 6, 6, Activation::kRelu).InitParams(rng);
  m.Emplace<Dense>(6, 3).InitParams(rng);
  m.Emplace<SoftmaxLayer>();
  return m;
}

TEST(NeuronCoverageTest, CountsTrackedNeurons) {
  const Model m = MakeNet(1);
  CoverageOptions opts;
  // conv 4 + dense 6 (final dense excluded as output layer, softmax has none).
  NeuronCoverageTracker tracker(m, opts);
  EXPECT_EQ(tracker.total_neurons(), 10);

  opts.exclude_output_layer = false;
  NeuronCoverageTracker with_output(m, opts);
  EXPECT_EQ(with_output.total_neurons(), 13);

  opts.exclude_output_layer = true;
  opts.exclude_dense = true;
  NeuronCoverageTracker conv_only(m, opts);
  EXPECT_EQ(conv_only.total_neurons(), 4);
}

TEST(NeuronCoverageTest, StartsUncoveredAndGrowsMonotonically) {
  const Model m = MakeNet(2);
  CoverageOptions opts;
  opts.threshold = 0.25f;
  NeuronCoverageTracker tracker(m, opts);
  EXPECT_FLOAT_EQ(tracker.Coverage(), 0.0f);
  Rng rng(3);
  float prev = 0.0f;
  for (int i = 0; i < 20; ++i) {
    const Tensor x = Tensor::RandUniform({1, 8, 8}, rng);
    tracker.Update(m, m.Forward(x));
    const float cov = tracker.Coverage();
    EXPECT_GE(cov, prev);
    prev = cov;
  }
  EXPECT_GT(prev, 0.0f);
}

TEST(NeuronCoverageTest, ThresholdMonotonicity) {
  // Higher thresholds can only reduce coverage (Figure 9's x-axis trend).
  const Model m = MakeNet(4);
  Rng rng(5);
  std::vector<Tensor> inputs;
  for (int i = 0; i < 10; ++i) {
    inputs.push_back(Tensor::RandUniform({1, 8, 8}, rng));
  }
  float prev = 2.0f;
  for (const float t : {0.0f, 0.25f, 0.5f, 0.75f}) {
    CoverageOptions opts;
    opts.threshold = t;
    NeuronCoverageTracker tracker(m, opts);
    for (const Tensor& x : inputs) {
      tracker.Update(m, m.Forward(x));
    }
    EXPECT_LE(tracker.Coverage(), prev);
    prev = tracker.Coverage();
  }
}

TEST(NeuronCoverageTest, ScalingMapsLayerExtremesToUnitRange) {
  const Model m = MakeNet(6);
  CoverageOptions opts;
  opts.scale_per_layer = true;
  NeuronCoverageTracker tracker(m, opts);
  Rng rng(7);
  const Tensor x = Tensor::RandUniform({1, 8, 8}, rng);
  const auto values = tracker.NeuronValues(m, m.Forward(x));
  ASSERT_EQ(values.size(), 10u);
  // Within the conv layer slice (first 4) the max must be 1 and min 0.
  float lo = 2.0f;
  float hi = -1.0f;
  for (int i = 0; i < 4; ++i) {
    lo = std::min(lo, values[static_cast<size_t>(i)]);
    hi = std::max(hi, values[static_cast<size_t>(i)]);
  }
  EXPECT_FLOAT_EQ(lo, 0.0f);
  EXPECT_FLOAT_EQ(hi, 1.0f);
}

TEST(NeuronCoverageTest, PickUncoveredExhausts) {
  const Model m = MakeNet(8);
  CoverageOptions opts;
  opts.threshold = -1.0f;  // Everything activates (scaled values >= 0).
  NeuronCoverageTracker tracker(m, opts);
  Rng rng(9);
  NeuronId id;
  EXPECT_TRUE(tracker.PickUncovered(rng, &id));
  EXPECT_GE(id.layer, 0);
  tracker.Update(m, m.Forward(Tensor::RandUniform({1, 8, 8}, rng)));
  EXPECT_FLOAT_EQ(tracker.Coverage(), 1.0f);
  EXPECT_FALSE(tracker.PickUncovered(rng, &id));
}

TEST(NeuronCoverageTest, ActivatedListMatchesCoverage) {
  const Model m = MakeNet(10);
  CoverageOptions opts;
  opts.threshold = 0.5f;
  NeuronCoverageTracker tracker(m, opts);
  Rng rng(11);
  const Tensor x = Tensor::RandUniform({1, 8, 8}, rng);
  const ForwardTrace trace = m.Forward(x);
  const auto activated = tracker.Activated(m, trace);
  tracker.Update(m, trace);
  EXPECT_EQ(static_cast<int>(activated.size()), tracker.covered_neurons());
  for (const NeuronId& id : activated) {
    EXPECT_TRUE(tracker.IsCovered(id));
  }
}

TEST(NeuronCoverageTest, IsCoveredValidatesIds) {
  const Model m = MakeNet(12);
  NeuronCoverageTracker tracker(m, CoverageOptions{});
  EXPECT_THROW(tracker.IsCovered({1, 0}), std::out_of_range);  // Flatten layer.
  EXPECT_THROW(tracker.IsCovered({0, 99}), std::out_of_range);
}

// ---- OpCoverage --------------------------------------------------------------------------

TEST(OpCoverageTest, SingleInputSaturates) {
  // The paper's Table 6 claim: one input exercises all inference code.
  const Model m = MakeNet(13);
  OpCoverage cov(m);
  EXPECT_FLOAT_EQ(cov.Coverage(), 0.0f);
  EXPECT_GT(cov.total_sites(), 20);
  Rng rng(14);
  cov.RecordForward(m, Tensor::RandUniform({1, 8, 8}, rng));
  EXPECT_FLOAT_EQ(cov.Coverage(), 1.0f);
  EXPECT_EQ(cov.covered_sites(), cov.total_sites());
}

TEST(OpCoverageTest, ContrastWithNeuronCoverage) {
  // After one input: op coverage 100%, neuron coverage (t = 0.75) well below.
  const Model m = MakeNet(15);
  OpCoverage op(m);
  CoverageOptions opts;
  opts.threshold = 0.75f;
  NeuronCoverageTracker neuron(m, opts);
  Rng rng(16);
  const Tensor x = Tensor::RandUniform({1, 8, 8}, rng);
  op.RecordForward(m, x);
  neuron.Update(m, m.Forward(x));
  EXPECT_FLOAT_EQ(op.Coverage(), 1.0f);
  EXPECT_LT(neuron.Coverage(), 0.7f);
}

}  // namespace
}  // namespace dx

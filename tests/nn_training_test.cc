// Loss and optimizer tests plus end-to-end training convergence on toy
// problems — the NN substrate must actually learn before the model zoo is
// built on top of it.
#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/dense.h"
#include "src/nn/loss.h"
#include "src/nn/model.h"
#include "src/nn/optimizer.h"
#include "src/nn/softmax_layer.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace dx {
namespace {

// ---- Losses ------------------------------------------------------------------------------

TEST(LossTest, CrossEntropyValueAndGradient) {
  Rng rng(1);
  Model m("clf", {3});
  auto& d = m.Emplace<Dense>(3, 3);
  d.InitParams(rng);
  m.Emplace<SoftmaxLayer>();

  const Tensor x({3}, std::vector<float>{1, 0, -1});
  const ForwardTrace trace = m.Forward(x);
  const Tensor target = OneHot(1, 3);
  SoftmaxCrossEntropy loss;
  const LossResult r = loss.Compute(m, trace, target);

  const Tensor& probs = trace.Output();
  EXPECT_NEAR(r.loss, -std::log(probs[1]), 1e-5f);
  // Fused gradient at logits: y - t.
  EXPECT_EQ(r.seed_layer, 0);
  EXPECT_NEAR(r.grad[0], probs[0], 1e-6f);
  EXPECT_NEAR(r.grad[1], probs[1] - 1.0f, 1e-6f);
}

TEST(LossTest, CrossEntropyRequiresSoftmaxTail) {
  Rng rng(1);
  Model m("nosm", {3});
  auto& d = m.Emplace<Dense>(3, 3);
  d.InitParams(rng);
  const ForwardTrace trace = m.Forward(Tensor({3}));
  SoftmaxCrossEntropy loss;
  EXPECT_THROW(loss.Compute(m, trace, OneHot(0, 3)), std::invalid_argument);
}

TEST(LossTest, MseValueAndGradient) {
  Rng rng(2);
  Model m("reg", {2});
  auto& d = m.Emplace<Dense>(2, 2);
  d.InitParams(rng);
  const Tensor x({2}, std::vector<float>{1, 2});
  const ForwardTrace trace = m.Forward(x);
  const Tensor target({2}, std::vector<float>{0, 0});
  MeanSquaredError loss;
  const LossResult r = loss.Compute(m, trace, target);
  const Tensor& y = trace.Output();
  EXPECT_NEAR(r.loss, (y[0] * y[0] + y[1] * y[1]) / 2.0f, 1e-5f);
  EXPECT_NEAR(r.grad[0], y[0], 1e-6f);
  EXPECT_EQ(r.seed_layer, 0);
}

TEST(LossTest, TargetShapeMismatchThrows) {
  Rng rng(3);
  Model m("reg", {2});
  auto& d = m.Emplace<Dense>(2, 1);
  d.InitParams(rng);
  const ForwardTrace trace = m.Forward(Tensor({2}));
  MeanSquaredError mse;
  EXPECT_THROW(mse.Compute(m, trace, Tensor({2})), std::invalid_argument);
}

// ---- Optimizers --------------------------------------------------------------------------

TEST(OptimizerTest, SgdStepDirection) {
  Tensor p({2}, std::vector<float>{1.0f, 1.0f});
  std::vector<Tensor> g;
  g.push_back(Tensor({2}, std::vector<float>{1.0f, -1.0f}));
  Sgd sgd(0.1f);
  sgd.Step({&p}, g);
  EXPECT_FLOAT_EQ(p[0], 0.9f);
  EXPECT_FLOAT_EQ(p[1], 1.1f);
}

TEST(OptimizerTest, SgdMomentumAccumulates) {
  Tensor p({1}, std::vector<float>{0.0f});
  std::vector<Tensor> g;
  g.push_back(Tensor({1}, std::vector<float>{1.0f}));
  Sgd sgd(1.0f, 0.9f);
  sgd.Step({&p}, g);  // v=1, p=-1
  sgd.Step({&p}, g);  // v=1.9, p=-2.9
  EXPECT_NEAR(p[0], -2.9f, 1e-5f);
}

TEST(OptimizerTest, AdamFirstStepIsLearningRateSized) {
  Tensor p({1}, std::vector<float>{0.0f});
  std::vector<Tensor> g;
  g.push_back(Tensor({1}, std::vector<float>{0.5f}));
  Adam adam(0.01f);
  adam.Step({&p}, g);
  // Bias-corrected first Adam step is ~lr * sign(g).
  EXPECT_NEAR(p[0], -0.01f, 1e-4f);
}

TEST(OptimizerTest, MisalignedGradsThrow) {
  Tensor p({2});
  std::vector<Tensor> g;
  g.push_back(Tensor({3}));
  Sgd sgd(0.1f);
  EXPECT_THROW(sgd.Step({&p}, g), std::invalid_argument);
  std::vector<Tensor> empty;
  EXPECT_THROW(sgd.Step({&p}, empty), std::invalid_argument);
}

TEST(OptimizerTest, ZeroGradLeavesParamsUntouched) {
  // BatchNorm's frozen mu/var ride through the optimizer with zero grads and
  // must never move.
  Tensor p({3}, std::vector<float>{1, 2, 3});
  std::vector<Tensor> g;
  g.push_back(Tensor({3}));
  Adam adam(0.1f);
  for (int i = 0; i < 10; ++i) {
    adam.Step({&p}, g);
  }
  EXPECT_FLOAT_EQ(p[0], 1.0f);
  EXPECT_FLOAT_EQ(p[2], 3.0f);
}

// ---- End-to-end convergence --------------------------------------------------------------

// Trains a 2-layer MLP on XOR; exercises Dense backprop, fused CE loss, and
// the optimizer in one loop.
TEST(TrainingTest, LearnsXor) {
  Rng rng(42);
  Model m("xor", {2});
  auto& d1 = m.Emplace<Dense>(2, 8, Activation::kTanh);
  d1.InitParams(rng);
  auto& d2 = m.Emplace<Dense>(8, 2);
  d2.InitParams(rng);
  m.Emplace<SoftmaxLayer>();

  const std::vector<std::pair<std::vector<float>, int>> data = {
      {{0, 0}, 0}, {{0, 1}, 1}, {{1, 0}, 1}, {{1, 1}, 0}};

  SoftmaxCrossEntropy loss;
  Adam opt(0.05f);
  auto params = m.MutableParams();
  for (int epoch = 0; epoch < 300; ++epoch) {
    std::vector<Tensor> grads = m.InitParamGrads();
    for (const auto& [xv, label] : data) {
      const Tensor x({2}, std::vector<float>(xv));
      const ForwardTrace trace = m.Forward(x, true, &rng);
      const LossResult r = loss.Compute(m, trace, OneHot(label, 2));
      m.BackwardParams(trace, r.seed_layer, r.grad, &grads);
    }
    opt.Step(params, grads);
  }

  for (const auto& [xv, label] : data) {
    const Tensor x({2}, std::vector<float>(xv));
    EXPECT_EQ(m.PredictClass(x), label) << "input (" << xv[0] << "," << xv[1] << ")";
  }
}

// Linear regression with MSE must recover the generating coefficients.
TEST(TrainingTest, RecoversLinearMap) {
  Rng rng(7);
  Model m("lin", {3});
  auto& d = m.Emplace<Dense>(3, 1);
  d.InitParams(rng);

  const std::vector<float> true_w = {2.0f, -1.0f, 0.5f};
  MeanSquaredError loss;
  Sgd opt(0.02f);  // Plain SGD: per-sample momentum diverges at this scale.
  auto params = m.MutableParams();
  for (int step = 0; step < 2000; ++step) {
    std::vector<Tensor> grads = m.InitParamGrads();
    const Tensor x = Tensor::Randn({3}, rng);
    float target_v = 0.3f;
    for (int i = 0; i < 3; ++i) {
      target_v += true_w[static_cast<size_t>(i)] * x[i];
    }
    const ForwardTrace trace = m.Forward(x);
    const LossResult r = loss.Compute(m, trace, Tensor({1}, target_v));
    m.BackwardParams(trace, r.seed_layer, r.grad, &grads);
    opt.Step(params, grads);
  }
  EXPECT_NEAR(d.weight()[0], 2.0f, 0.1f);
  EXPECT_NEAR(d.weight()[1], -1.0f, 0.1f);
  EXPECT_NEAR(d.weight()[2], 0.5f, 0.1f);
  EXPECT_NEAR(d.bias()[0], 0.3f, 0.1f);
}

}  // namespace
}  // namespace dx

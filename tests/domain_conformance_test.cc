// Domain-conformance certification suite: every registered DomainSpec —
// built-in or third-party — must pass these checks to inherit the engine's
// guarantees (batched executor, ExecutionPlan, corpus/replay, golden
// scenario matrix). The suite is parameterized over the registry, so
// registering a new domain automatically certifies it:
//
//   1. dataset shape + determinism (same (n, seed) => bit-identical data,
//      inputs match the zoo models' input shape, labels in range);
//   2. every zoo model forwards + backwards on a batch (finite outputs,
//      correct shapes, softmax head for classification domains);
//   3. every constraint variant is idempotent (Apply(Apply(g)) == Apply(g)
//      under identical RNG streams) and its projection is a retraction
//      (Project(Project(x)) == Project(x));
//   4. the compiled ExecutionPlan path matches the by-value path for every
//      zoo model (forward trace and input gradient) within the kernel
//      tolerances of tests/test_util.h — the plan path runs the SIMD/GEMM
//      conv2d/dense kernels, whose accumulation order differs from the
//      by-value scalar oracle.
//
// Plus registry-level tests: lookup error messages (the CLI surfaces them
// verbatim) and the corpus-manifest hardening guarantee — a manifest whose
// domain key is no longer registered fails with a clear message, never a
// crash or a silent default.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/constraints/constraint.h"
#include "src/core/domain.h"
#include "src/corpus/corpus.h"
#include "src/data/tabular_fraud.h"
#include "src/models/zoo.h"
#include "src/nn/execution_plan.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace dx {
namespace {

// Must run before any zoo access: shrink datasets for CI-speed runs.
struct FastModeEnv {
  FastModeEnv() { ::setenv("DEEPXPLORE_FAST", "1", 1); }
};
const FastModeEnv fast_mode_env;

constexpr int kBatch = 4;

std::vector<float> Values(const Tensor& t) {
  return {t.data(), t.data() + t.numel()};
}

Tensor StackFirst(const Dataset& ds, int batch) {
  std::vector<const Tensor*> ptrs;
  for (int b = 0; b < batch; ++b) {
    ptrs.push_back(&ds.inputs[static_cast<size_t>(b % ds.size())]);
  }
  return StackSamples(ptrs);
}

class DomainConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  const DomainSpec& spec() const { return GetDomain(GetParam()); }
};

TEST_P(DomainConformanceTest, DatasetShapeAndDeterminism) {
  const Dataset a = spec().make_dataset(12, 42);
  const Dataset b = spec().make_dataset(12, 42);
  ASSERT_EQ(a.size(), 12);
  a.CheckConsistency();
  ASSERT_EQ(b.size(), a.size());
  for (int i = 0; i < a.size(); ++i) {
    const Tensor& x = a.inputs[static_cast<size_t>(i)];
    ASSERT_EQ(x.shape(), a.input_shape) << spec().key << " sample " << i;
    for (int64_t j = 0; j < x.numel(); ++j) {
      ASSERT_TRUE(std::isfinite(x[j])) << spec().key << " sample " << i;
    }
    // Bit-identical regeneration: the corpus/replay machinery depends on
    // dataset builders being pure functions of (n, seed).
    EXPECT_EQ(Values(x), Values(b.inputs[static_cast<size_t>(i)]))
        << spec().key << " sample " << i;
    EXPECT_EQ(a.targets[static_cast<size_t>(i)], b.targets[static_cast<size_t>(i)]);
    if (!a.regression()) {
      const int label = a.Label(i);
      EXPECT_GE(label, 0);
      EXPECT_LT(label, a.num_classes);
    }
  }
  // A different seed must draw different data (the train/test split relies
  // on disjoint seed streams).
  const Dataset c = spec().make_dataset(12, 43);
  bool any_difference = false;
  for (int i = 0; i < a.size() && !any_difference; ++i) {
    any_difference = Values(a.inputs[static_cast<size_t>(i)]) !=
                     Values(c.inputs[static_cast<size_t>(i)]);
  }
  EXPECT_TRUE(any_difference) << spec().key << ": seed does not affect the draw";
}

TEST_P(DomainConformanceTest, ModelsForwardAndBackwardOnABatch) {
  const Dataset ds = spec().make_dataset(kBatch, 7);
  const Tensor stacked = StackFirst(ds, kBatch);
  ASSERT_GE(spec().models.size(), 2u);
  for (const DomainModelSpec& mspec : spec().models) {
    const Model m = mspec.build(11);
    EXPECT_EQ(m.name(), mspec.name);
    EXPECT_EQ(m.input_shape(), ds.input_shape) << mspec.name;
    EXPECT_GT(m.TotalNeurons(), 0) << mspec.name;
    if (!ds.regression()) {
      ASSERT_EQ(m.output_shape(), (Shape{ds.num_classes})) << mspec.name;
      EXPECT_EQ(m.layer(m.num_layers() - 1).Kind(), "softmax") << mspec.name;
    }

    const BatchTrace trace = m.ForwardBatch(stacked);
    const Tensor& out = trace.outputs.back();
    ASSERT_EQ(out.shape(), BatchedShape(kBatch, m.output_shape())) << mspec.name;
    for (int64_t i = 0; i < out.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(out[i])) << mspec.name;
    }

    Tensor seed(out.shape());
    seed.Fill(1.0f);
    const Tensor grad = m.BackwardInputBatch(trace, m.num_layers() - 1, std::move(seed));
    ASSERT_EQ(grad.shape(), BatchedShape(kBatch, m.input_shape())) << mspec.name;
    for (int64_t i = 0; i < grad.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(grad[i])) << mspec.name;
    }
  }
}

TEST_P(DomainConformanceTest, ConstraintsAreIdempotentAndProjectionsRetract) {
  const Dataset ds = spec().make_dataset(3, 5);
  ASSERT_FALSE(DomainConstraintNames(spec()).empty());
  for (const std::string& name : DomainConstraintNames(spec())) {
    const auto constraint = MakeDomainConstraint(spec(), name);
    for (int i = 0; i < 3; ++i) {
      const Tensor& x = ds.inputs[static_cast<size_t>(i)];
      Rng grad_rng(1000 + static_cast<uint64_t>(i));
      const Tensor grad = Tensor::RandUniform(x.shape(), grad_rng, -1.0f, 1.0f);
      // Identical RNG streams for both applications: stochastic constraints
      // (e.g. random patch placement) must still be idempotent per draw.
      Rng rng_once(77);
      Rng rng_twice(77);
      const Tensor once = constraint->Apply(grad, x, rng_once);
      const Tensor twice = constraint->Apply(once, x, rng_twice);
      EXPECT_EQ(Values(twice), Values(once))
          << spec().key << "/" << name << " is not idempotent (sample " << i << ")";

      // ProjectInput is a retraction onto the valid input set, and valid
      // dataset samples stay inside it.
      Tensor projected = x;
      constraint->ProjectInput(&projected);
      Tensor reprojected = projected;
      constraint->ProjectInput(&reprojected);
      EXPECT_EQ(Values(reprojected), Values(projected))
          << spec().key << "/" << name << " projection is not a retraction";
    }
  }
}

TEST_P(DomainConformanceTest, ExecutionPlanMatchesByValuePath) {
  const Dataset ds = spec().make_dataset(kBatch, 9);
  const Tensor stacked = StackFirst(ds, kBatch);
  for (const DomainModelSpec& mspec : spec().models) {
    const Model m = mspec.build(13);
    ExecutionPlan plan = m.Compile(kBatch);

    const BatchTrace by_value = m.ForwardBatch(stacked);
    const BatchTrace& planned = m.ForwardBatch(stacked, plan);
    ASSERT_EQ(planned.outputs.size(), by_value.outputs.size()) << mspec.name;
    for (size_t l = 0; l < by_value.outputs.size(); ++l) {
      dx::testing::ExpectTensorsNear(planned.outputs[l], by_value.outputs[l],
                                     dx::testing::kKernelForwardTolerance,
                                     mspec.name + " layer " + std::to_string(l));
    }

    Tensor seed(by_value.outputs.back().shape());
    seed.Fill(0.5f);
    const Tensor grad_by_value =
        m.BackwardInputBatch(by_value, m.num_layers() - 1, seed);
    const Tensor& grad_planned =
        m.BackwardInputBatch(plan, m.num_layers() - 1, seed);
    dx::testing::ExpectTensorsNear(grad_planned, grad_by_value,
                                   dx::testing::kKernelBackwardTolerance,
                                   mspec.name);
  }
}

std::string DomainTestName(const ::testing::TestParamInfo<std::string>& info) {
  // gtest parameter names must be [A-Za-z0-9_]; display names are free-form.
  return dx::testing::SanitizeTestName(GetDomain(info.param).display_name);
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredDomains, DomainConformanceTest,
                         ::testing::ValuesIn(DomainKeys()), DomainTestName);

// ---- Registry behavior -------------------------------------------------------------------

TEST(DomainRegistryTest, SevenBuiltinDomainsRegistered) {
  const std::vector<std::string> keys = DomainKeys();
  EXPECT_GE(keys.size(), 7u);
  for (const char* key :
       {"mnist", "imagenet", "driving", "pdf", "drebin", "speech", "tabular"}) {
    EXPECT_TRUE(DomainRegistered(key)) << key;
    EXPECT_NE(FindDomain(key), nullptr) << key;
  }
  EXPECT_FALSE(DomainRegistered("martian"));
  EXPECT_EQ(FindDomain("martian"), nullptr);
}

TEST(DomainRegistryTest, UnknownDomainErrorListsRegisteredKeys) {
  try {
    GetDomain("martian");
    FAIL() << "GetDomain should throw for unknown keys";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown domain 'martian'"), std::string::npos) << what;
    EXPECT_NE(what.find("registered:"), std::string::npos) << what;
    EXPECT_NE(what.find("mnist"), std::string::npos) << what;
    EXPECT_NE(what.find("speech"), std::string::npos) << what;
  }
}

TEST(DomainRegistryTest, UnknownConstraintErrorListsValidNames) {
  const DomainSpec& pdf = GetDomain("pdf");
  EXPECT_EQ(ResolveDomainConstraint(pdf, "default"), "pdf");
  EXPECT_EQ(ResolveDomainConstraint(pdf, ""), "pdf");
  EXPECT_EQ(ResolveDomainConstraint(pdf, "none"), "none");
  try {
    MakeDomainConstraint(pdf, "blackout");  // Vision-only constraint.
    FAIL() << "MakeDomainConstraint should throw for unknown variants";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown constraint 'blackout' for domain 'pdf'"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("valid: default | pdf | none"), std::string::npos) << what;
  }
}

TEST(DomainRegistryTest, MalformedSpecsAreRejected) {
  DomainSpec no_key;
  EXPECT_THROW(RegisterDomain(std::move(no_key)), std::invalid_argument);

  DomainSpec one_model;
  one_model.key = "one-model";
  one_model.make_dataset = [](int n, uint64_t seed) { return MakeSyntheticTabular(n, seed); };
  one_model.models.push_back(
      {"ONLY", "arch", "arch", [](uint64_t s) { return ModelZoo::Build("TAB_C1", s); }});
  EXPECT_THROW(RegisterDomain(std::move(one_model)), std::invalid_argument);
}

// The corpus-manifest hardening guarantee: resume/replay resolve the stored
// domain key through the registry, so a manifest recorded against a domain
// that is no longer registered fails with the clear lookup error — the same
// path the CLI surfaces verbatim (exit 2) — never a crash or a default.
TEST(DomainRegistryTest, StaleCorpusManifestFailsWithClearError) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "dx_stale_manifest_corpus").string();
  std::filesystem::remove_all(dir);
  {
    Corpus corpus(dir);
    corpus.SetMetadata("domain", "martian");
    corpus.SetMetadata("constraint", "default");
    CorpusMeta meta;
    meta.metric = "neuron";
    meta.objective = "joint";
    meta.scheduler = "roundrobin";
    meta.constraint = "unconstrained";
    meta.sync_interval = 16;
    meta.max_tests = 1;
    meta.max_seed_passes = 1;
    meta.model_names = {"A", "B"};
    meta.seeds.push_back(Tensor({2}));
    corpus.Initialize(std::move(meta));
  }
  // A fresh process opens the corpus and resolves the stored key.
  Corpus reopened(dir);
  ASSERT_TRUE(reopened.initialized());
  const std::string* stored = reopened.meta().FindMetadata("domain");
  ASSERT_NE(stored, nullptr);
  try {
    GetDomain(*stored);
    FAIL() << "stale manifest domain key must not resolve";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown domain 'martian'"), std::string::npos) << what;
    EXPECT_NE(what.find("registered:"), std::string::npos) << what;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace dx

// ResidualBlock: shape rules, identity-vs-projection skip paths, gradient
// checks (input and parameters), neuron interface, and serialization inside a
// model — MiniResNet (IMG_C3) is built from these blocks.
#include <gtest/gtest.h>

#include "src/nn/dense.h"
#include "src/nn/flatten.h"
#include "src/nn/model.h"
#include "src/nn/residual.h"
#include "src/nn/softmax_layer.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace dx {
namespace {

using ::dx::testing::MaxRelError;
using ::dx::testing::NumericalGradient;
using ::dx::testing::RelErrorQuantile;

TEST(ResidualBlockTest, IdentitySkipWhenShapesMatch) {
  ResidualBlock block(4, 4, 1);
  EXPECT_FALSE(block.has_projection());
  EXPECT_EQ(block.OutputShape({4, 8, 8}), (Shape{4, 8, 8}));
}

TEST(ResidualBlockTest, ProjectionOnChannelOrStrideChange) {
  ResidualBlock channels(4, 8, 1);
  EXPECT_TRUE(channels.has_projection());
  ResidualBlock strided(4, 4, 2);
  EXPECT_TRUE(strided.has_projection());
  EXPECT_EQ(strided.OutputShape({4, 8, 8}), (Shape{4, 4, 4}));
}

TEST(ResidualBlockTest, ParamCountsReflectProjection) {
  ResidualBlock identity(4, 4, 1);
  EXPECT_EQ(identity.Params().size(), 4u);  // conv1 w/b + conv2 w/b.
  ResidualBlock projected(4, 8, 2);
  EXPECT_EQ(projected.Params().size(), 6u);  // + projection w/b.
}

TEST(ResidualBlockTest, OutputIsNonNegative) {
  // The block ends in ReLU.
  Rng rng(1);
  ResidualBlock block(2, 2, 1);
  block.InitParams(rng);
  const Tensor x = Tensor::Randn({2, 6, 6}, rng);
  const Tensor y = block.Forward(x, false, nullptr, nullptr);
  EXPECT_GE(y.Min(), 0.0f);
}

TEST(ResidualBlockTest, ZeroWeightsReduceToReluIdentity) {
  // With all conv weights zero, out = relu(0 + x) = relu(x).
  ResidualBlock block(2, 2, 1);
  const Tensor x({2, 4, 4}, std::vector<float>(32, 0.5f));
  const Tensor y = block.Forward(x, false, nullptr, nullptr);
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_FLOAT_EQ(y[i], 0.5f);
  }
}

class ResidualGradTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ResidualGradTest, InputGradientMatchesNumeric) {
  const auto [in_ch, out_ch, stride] = GetParam();
  Rng rng(7);
  ResidualBlock block(in_ch, out_ch, stride);
  block.InitParams(rng);
  // Positive-biased input keeps most ReLUs away from their kinks.
  Tensor x = Tensor::RandUniform({in_ch, 6, 6}, rng, 0.2f, 1.0f);

  Tensor aux;
  const Tensor y = block.Forward(x, false, nullptr, &aux);
  const Tensor probe = Tensor::RandUniform(y.shape(), rng, 0.1f, 1.0f);
  const Tensor analytic = block.Backward(x, y, probe, aux, nullptr);

  const auto scalar = [&](const Tensor& xx) {
    const Tensor yy = block.Forward(xx, false, nullptr, nullptr);
    double s = 0.0;
    for (int64_t i = 0; i < yy.numel(); ++i) {
      s += static_cast<double>(probe[i]) * yy[i];
    }
    return s;
  };
  const Tensor numeric = NumericalGradient(scalar, x, 1e-2f);
  // Three stacked ReLUs: a few elements sit on kinks where central
  // differences are wrong by construction; check the 90th percentile tightly
  // and bound the worst element loosely.
  EXPECT_LT(RelErrorQuantile(analytic, numeric, 0.9f), 3e-2f);
  EXPECT_LT(MaxRelError(analytic, numeric), 0.6f);
}

TEST_P(ResidualGradTest, ParamGradientsMatchNumeric) {
  const auto [in_ch, out_ch, stride] = GetParam();
  Rng rng(11);
  ResidualBlock block(in_ch, out_ch, stride);
  block.InitParams(rng);
  Tensor x = Tensor::RandUniform({in_ch, 6, 6}, rng, 0.2f, 1.0f);

  Tensor aux;
  const Tensor y = block.Forward(x, false, nullptr, &aux);
  const Tensor probe = Tensor::RandUniform(y.shape(), rng, 0.1f, 1.0f);
  std::vector<Tensor> grads;
  for (const Tensor* p : block.Params()) {
    grads.emplace_back(p->shape());
  }
  block.Backward(x, y, probe, aux, &grads);

  auto params = block.MutableParams();
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Tensor* param = params[pi];
    const auto scalar = [&](const Tensor& theta) {
      const Tensor saved = *param;
      *param = theta;
      const Tensor yy = block.Forward(x, false, nullptr, nullptr);
      *param = saved;
      double s = 0.0;
      for (int64_t i = 0; i < yy.numel(); ++i) {
        s += static_cast<double>(probe[i]) * yy[i];
      }
      return s;
    };
    // Small eps: a bias perturbation shifts every spatial pre-activation in
    // its channel simultaneously, so larger steps cross many ReLU kinks.
    const Tensor numeric = NumericalGradient(scalar, *param, 1e-3f);
    EXPECT_LT(RelErrorQuantile(grads[pi], numeric, 0.8f), 3e-2f) << "param " << pi;
    EXPECT_LT(MaxRelError(grads[pi], numeric), 0.6f) << "param " << pi;
  }
}

TEST(ResidualBlockTest, ExactGradientsAwayFromReluKinks) {
  // All-positive weights and inputs keep every pre-activation strictly
  // positive, so every ReLU is in its linear region and the analytic
  // gradient must match the numeric one to worst-element precision.
  Rng rng(23);
  ResidualBlock block(2, 2, 1);
  block.InitParams(rng);
  for (Tensor* p : block.MutableParams()) {
    for (int64_t i = 0; i < p->numel(); ++i) {
      (*p)[i] = std::abs((*p)[i]) + 0.01f;
    }
  }
  const Tensor x = Tensor::RandUniform({2, 5, 5}, rng, 0.2f, 1.0f);
  Tensor aux;
  const Tensor y = block.Forward(x, false, nullptr, &aux);
  ASSERT_GT(y.Min(), 0.0f);
  const Tensor probe = Tensor::RandUniform(y.shape(), rng, 0.1f, 1.0f);
  const Tensor analytic = block.Backward(x, y, probe, aux, nullptr);
  const auto scalar = [&](const Tensor& xx) {
    const Tensor yy = block.Forward(xx, false, nullptr, nullptr);
    double s = 0.0;
    for (int64_t i = 0; i < yy.numel(); ++i) {
      s += static_cast<double>(probe[i]) * yy[i];
    }
    return s;
  };
  const Tensor numeric = NumericalGradient(scalar, x, 1e-2f);
  EXPECT_LT(MaxRelError(analytic, numeric), 1e-2f);

  // Parameter gradients are exact here too (no kink is ever crossed).
  std::vector<Tensor> grads;
  for (const Tensor* p : block.Params()) {
    grads.emplace_back(p->shape());
  }
  block.Backward(x, y, probe, aux, &grads);
  auto params = block.MutableParams();
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Tensor* param = params[pi];
    const auto param_scalar = [&](const Tensor& theta) {
      const Tensor saved = *param;
      *param = theta;
      const Tensor yy = block.Forward(x, false, nullptr, nullptr);
      *param = saved;
      double s = 0.0;
      for (int64_t i = 0; i < yy.numel(); ++i) {
        s += static_cast<double>(probe[i]) * yy[i];
      }
      return s;
    };
    const Tensor numeric_p = NumericalGradient(param_scalar, *param, 1e-3f);
    EXPECT_LT(MaxRelError(grads[pi], numeric_p), 1e-2f) << "param " << pi;
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, ResidualGradTest,
                         ::testing::Values(std::make_tuple(2, 2, 1),
                                           std::make_tuple(2, 4, 1),
                                           std::make_tuple(3, 3, 2),
                                           std::make_tuple(2, 4, 2)));

TEST(ResidualBlockTest, NeuronInterfaceUsesOutputChannels) {
  ResidualBlock block(2, 4, 2);
  EXPECT_EQ(block.NumNeurons(), 4);
  Tensor y({4, 3, 3}, 2.0f);
  EXPECT_FLOAT_EQ(block.NeuronValue(y, 1), 2.0f);
  Tensor seed({4, 3, 3});
  block.AddNeuronSeed(&seed, 2, 1.0f);
  EXPECT_NEAR(seed.Sum(), 1.0f, 1e-5f);
  EXPECT_THROW(block.NeuronValue(y, 4), std::out_of_range);
}

TEST(ResidualBlockTest, SerializesInsideModel) {
  Rng rng(13);
  Model m("resnet_bit", {2, 8, 8});
  m.Emplace<ResidualBlock>(2, 4, 2).InitParams(rng);
  m.Emplace<Flatten>();
  m.Emplace<Dense>(4 * 4 * 4, 3).InitParams(rng);
  m.Emplace<SoftmaxLayer>();

  Model restored = Model::Deserialize(m.Serialize());
  const Tensor x = Tensor::RandUniform({2, 8, 8}, rng);
  const Tensor a = m.Predict(x);
  const Tensor b = restored.Predict(x);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_FLOAT_EQ(a[i], b[i]);
  }
  auto* block = dynamic_cast<ResidualBlock*>(&restored.layer(0));
  ASSERT_NE(block, nullptr);
  EXPECT_TRUE(block->has_projection());
}

TEST(ResidualBlockTest, BackwardThroughModelFromInternalNeuron) {
  // The DeepXplore primitive must also work through residual blocks.
  Rng rng(17);
  Model m("resnet_bit", {2, 8, 8});
  auto& block = m.Emplace<ResidualBlock>(2, 4, 1);
  block.InitParams(rng);
  const Tensor x = Tensor::RandUniform({2, 8, 8}, rng, 0.2f, 1.0f);
  const ForwardTrace trace = m.Forward(x);
  Tensor seed(trace.outputs[0].shape());
  block.AddNeuronSeed(&seed, 1, 1.0f);
  const Tensor analytic = m.BackwardInput(trace, 0, seed);

  const auto scalar = [&](const Tensor& xx) {
    const ForwardTrace t = m.Forward(xx);
    return static_cast<double>(block.NeuronValue(t.outputs[0], 1));
  };
  const Tensor numeric = NumericalGradient(scalar, x, 1e-2f);
  EXPECT_LT(MaxRelError(analytic, numeric), 3e-2f);
}

}  // namespace
}  // namespace dx

// Shared test helpers: numerical differentiation for gradient checking.
#ifndef DX_TESTS_TEST_UTIL_H_
#define DX_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "src/tensor/tensor.h"

namespace dx::testing {

// Central-difference numerical gradient of a scalar function of a tensor.
inline Tensor NumericalGradient(const std::function<double(const Tensor&)>& f, Tensor x,
                                float eps = 1e-3f) {
  Tensor grad(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    x[i] = orig + eps;
    const double plus = f(x);
    x[i] = orig - eps;
    const double minus = f(x);
    x[i] = orig;
    grad[i] = static_cast<float>((plus - minus) / (2.0 * eps));
  }
  return grad;
}

// Max absolute elementwise difference, normalized by max(1, |a|, |b|).
inline float MaxRelError(const Tensor& a, const Tensor& b) {
  float worst = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const float denom = std::max({1.0f, std::abs(a[i]), std::abs(b[i])});
    worst = std::max(worst, std::abs(a[i] - b[i]) / denom);
  }
  return worst;
}

// q-quantile (0 < q <= 1) of the normalized elementwise errors. Central
// differences step across ReLU kinks for a few elements of kink-dense
// networks (stacked ReLUs); the quantile ignores that handful while still
// catching systematic gradient bugs.
inline float RelErrorQuantile(const Tensor& a, const Tensor& b, float q) {
  std::vector<float> errors(static_cast<size_t>(a.numel()));
  for (int64_t i = 0; i < a.numel(); ++i) {
    const float denom = std::max({1.0f, std::abs(a[i]), std::abs(b[i])});
    errors[static_cast<size_t>(i)] = std::abs(a[i] - b[i]) / denom;
  }
  std::sort(errors.begin(), errors.end());
  const size_t index = std::min(errors.size() - 1,
                                static_cast<size_t>(q * static_cast<float>(errors.size())));
  return errors[index];
}

}  // namespace dx::testing

#endif  // DX_TESTS_TEST_UTIL_H_

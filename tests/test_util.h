// Shared test helpers: numerical differentiation for gradient checking, the
// batched-kernel vs scalar-kernel bit-identity harness, and ULP/abs float
// tolerances for comparing the SIMD/GEMM plan path against the scalar oracle.
#ifndef DX_TESTS_TEST_UTIL_H_
#define DX_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "src/nn/layer.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace dx::testing {

// Maps a free-form label (e.g. a DomainSpec display name) to [A-Za-z0-9_],
// as gtest parameterized-test names and golden file names require.
inline std::string SanitizeTestName(const std::string& label) {
  std::string out = label;
  for (char& c : out) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return out;
}

// Central-difference numerical gradient of a scalar function of a tensor.
inline Tensor NumericalGradient(const std::function<double(const Tensor&)>& f, Tensor x,
                                float eps = 1e-3f) {
  Tensor grad(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    x[i] = orig + eps;
    const double plus = f(x);
    x[i] = orig - eps;
    const double minus = f(x);
    x[i] = orig;
    grad[i] = static_cast<float>((plus - minus) / (2.0 * eps));
  }
  return grad;
}

// Maps a float onto the integers such that adjacent representable floats are
// adjacent integers (negative values below zero, -0 == +0). The difference of
// two keys is the number of representable floats between the values.
inline int64_t UlpKey(float f) {
  int32_t i;
  std::memcpy(&i, &f, sizeof(i));
  return i >= 0 ? int64_t{i} : int64_t{std::numeric_limits<int32_t>::min()} - i;
}

inline int64_t UlpDistance(float a, float b) {
  if (!(std::isfinite(a) && std::isfinite(b))) {
    const bool same = (a == b) || (std::isnan(a) && std::isnan(b));
    return same ? 0 : std::numeric_limits<int64_t>::max();
  }
  const int64_t d = UlpKey(a) - UlpKey(b);
  return d < 0 ? -d : d;
}

// An element passes if it is within max_abs absolutely OR within max_ulp
// representable floats. The ULP bound scales with magnitude (relative error);
// the abs floor absorbs catastrophic ULP counts on near-zero values, where
// the error inherited from upstream accumulation is absolutely tiny.
struct FloatTolerance {
  int64_t max_ulp = 0;
  float max_abs = 0.0f;
};

// Exact comparison expressed in tolerance form ({0 ULP, 0 abs}).
inline constexpr FloatTolerance kExactTolerance{};

// Default bound for comparing the GEMM/SIMD forward kernels (ascending-k FMA
// accumulation) against the by-value scalar oracle (per-element partial-sum
// order, double accumulation in dense). Reassociation error grows with the
// reduction length; 512 ULP ≈ 3e-5 relative covers the zoo's largest layers
// with ~10x headroom.
inline constexpr FloatTolerance kKernelForwardTolerance{512, 1e-5f};

// Gradients compound the forward divergence through the backward chain (and
// through activation-grad masks computed from slightly different outputs),
// so they get an order of magnitude more headroom.
inline constexpr FloatTolerance kKernelBackwardTolerance{8192, 1e-4f};

// Elementwise near-comparison over raw buffers; reports the worst offender.
inline void ExpectBuffersNear(const float* got, const float* want, int64_t n,
                              const FloatTolerance& tol, const std::string& what) {
  int64_t worst_i = -1;
  int64_t worst_ulp = -1;
  for (int64_t i = 0; i < n; ++i) {
    const float abs = std::abs(got[i] - want[i]);
    if (abs <= tol.max_abs) {
      continue;
    }
    const int64_t ulp = UlpDistance(got[i], want[i]);
    if (ulp <= tol.max_ulp) {
      continue;
    }
    if (ulp > worst_ulp) {
      worst_ulp = ulp;
      worst_i = i;
    }
  }
  EXPECT_EQ(worst_i, -1) << what << ": element " << worst_i << " got "
                         << (worst_i >= 0 ? got[worst_i] : 0.0f) << " want "
                         << (worst_i >= 0 ? want[worst_i] : 0.0f) << " ("
                         << worst_ulp << " ULP, tolerance " << tol.max_ulp
                         << " ULP / " << tol.max_abs << " abs)";
}

inline void ExpectTensorsNear(const Tensor& got, const Tensor& want,
                              const FloatTolerance& tol, const std::string& what) {
  ASSERT_EQ(got.shape(), want.shape()) << what;
  ExpectBuffersNear(got.data(), want.data(), want.numel(), tol, what);
}

// Max absolute elementwise difference, normalized by max(1, |a|, |b|).
inline float MaxRelError(const Tensor& a, const Tensor& b) {
  float worst = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const float denom = std::max({1.0f, std::abs(a[i]), std::abs(b[i])});
    worst = std::max(worst, std::abs(a[i] - b[i]) / denom);
  }
  return worst;
}

// q-quantile (0 < q <= 1) of the normalized elementwise errors. Central
// differences step across ReLU kinks for a few elements of kink-dense
// networks (stacked ReLUs); the quantile ignores that handful while still
// catching systematic gradient bugs.
inline float RelErrorQuantile(const Tensor& a, const Tensor& b, float q) {
  std::vector<float> errors(static_cast<size_t>(a.numel()));
  for (int64_t i = 0; i < a.numel(); ++i) {
    const float denom = std::max({1.0f, std::abs(a[i]), std::abs(b[i])});
    errors[static_cast<size_t>(i)] = std::abs(a[i] - b[i]) / denom;
  }
  std::sort(errors.begin(), errors.end());
  const size_t index = std::min(errors.size() - 1,
                                static_cast<size_t>(q * static_cast<float>(errors.size())));
  return errors[index];
}

// Runs `layer` over a random batch twice — once per sample, once batched —
// and asserts outputs, aux, input gradients, and accumulated parameter
// gradients are bit-identical. The single-pass guarantee of the batched
// executor rests on this equivalence holding for EVERY layer kernel at
// every batch size.
inline void ExpectBatchMatchesScalar(const Layer& layer, const Shape& in_shape, int batch,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> inputs;
  std::vector<const Tensor*> input_ptrs;
  for (int b = 0; b < batch; ++b) {
    inputs.push_back(Tensor::RandUniform(in_shape, rng, -1.0f, 1.0f));
  }
  for (const Tensor& t : inputs) {
    input_ptrs.push_back(&t);
  }
  const Tensor batched_in = StackSamples(input_ptrs);

  Tensor batched_aux;
  const Tensor batched_out =
      layer.ForwardBatch(batched_in, batch, false, nullptr, &batched_aux);

  std::vector<Tensor> scalar_outs;
  std::vector<Tensor> scalar_auxes;
  for (int b = 0; b < batch; ++b) {
    Tensor aux;
    scalar_outs.push_back(layer.Forward(inputs[static_cast<size_t>(b)], false, nullptr, &aux));
    scalar_auxes.push_back(std::move(aux));
  }
  ASSERT_EQ(batched_out.shape(), BatchedShape(batch, scalar_outs[0].shape()));
  for (int b = 0; b < batch; ++b) {
    EXPECT_EQ(SliceSample(batched_out, b).values(),
              scalar_outs[static_cast<size_t>(b)].values())
        << layer.Describe() << " forward sample " << b << " of " << batch;
    if (!scalar_auxes[static_cast<size_t>(b)].empty()) {
      ASSERT_FALSE(batched_aux.empty()) << layer.Describe();
      EXPECT_EQ(SliceSample(batched_aux, b).values(),
                scalar_auxes[static_cast<size_t>(b)].values())
          << layer.Describe() << " aux sample " << b << " of " << batch;
    }
  }

  // Gradients: per-sample sequential accumulation vs one batched call.
  std::vector<Tensor> grads;
  std::vector<const Tensor*> grad_ptrs;
  for (int b = 0; b < batch; ++b) {
    grads.push_back(Tensor::RandUniform(scalar_outs[0].shape(), rng, -1.0f, 1.0f));
  }
  for (const Tensor& t : grads) {
    grad_ptrs.push_back(&t);
  }
  const Tensor batched_grad_out = StackSamples(grad_ptrs);

  const size_t num_params = layer.Params().size();
  std::vector<Tensor> scalar_param_grads;
  std::vector<Tensor> batched_param_grads;
  for (const Tensor* p : layer.Params()) {
    scalar_param_grads.emplace_back(p->shape());
    batched_param_grads.emplace_back(p->shape());
  }

  const Tensor batched_grad_in = layer.BackwardBatch(
      batched_in, batched_out, batched_grad_out, batched_aux, batch,
      num_params > 0 ? &batched_param_grads : nullptr);
  for (int b = 0; b < batch; ++b) {
    const Tensor scalar_grad_in = layer.Backward(
        inputs[static_cast<size_t>(b)], scalar_outs[static_cast<size_t>(b)],
        grads[static_cast<size_t>(b)], scalar_auxes[static_cast<size_t>(b)],
        num_params > 0 ? &scalar_param_grads : nullptr);
    EXPECT_EQ(SliceSample(batched_grad_in, b).values(), scalar_grad_in.values())
        << layer.Describe() << " backward sample " << b << " of " << batch;
  }
  for (size_t p = 0; p < num_params; ++p) {
    EXPECT_EQ(batched_param_grads[p].values(), scalar_param_grads[p].values())
        << layer.Describe() << " param grad " << p;
  }
}

}  // namespace dx::testing

#endif  // DX_TESTS_TEST_UTIL_H_

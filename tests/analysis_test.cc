// Analysis utilities: SSIM, diversity, majority-vote retraining, pollution
// detection.
#include <gtest/gtest.h>

#include <cmath>

#include "src/analysis/diversity.h"
#include "src/analysis/pollution.h"
#include "src/analysis/retraining.h"
#include "src/analysis/ssim.h"
#include "src/data/synthetic_digits.h"
#include "src/models/trainer.h"
#include "src/models/zoo.h"
#include "src/nn/dense.h"
#include "src/nn/softmax_layer.h"
#include "src/util/rng.h"

namespace dx {
namespace {

// ---- SSIM --------------------------------------------------------------------------------

TEST(SsimTest, IdenticalImagesScoreOne) {
  Rng rng(1);
  const Tensor img = Tensor::RandUniform({1, 16, 16}, rng);
  EXPECT_NEAR(Ssim(img, img), 1.0f, 1e-5f);
}

TEST(SsimTest, NoiseLowersScore) {
  Rng rng(2);
  const Tensor img = Tensor::RandUniform({1, 16, 16}, rng);
  Tensor noisy = img;
  for (int64_t i = 0; i < noisy.numel(); ++i) {
    noisy[i] = std::clamp(noisy[i] + static_cast<float>(rng.Normal(0.0, 0.3)), 0.0f, 1.0f);
  }
  const float s = Ssim(img, noisy);
  EXPECT_LT(s, 0.9f);
  EXPECT_GT(s, -1.0f);
}

TEST(SsimTest, SymmetricAndRankSensible) {
  Rng rng(3);
  const Tensor a = RenderDigit(3, rng);
  Rng rng2(3);
  const Tensor a_like = RenderDigit(3, rng2);  // Same stream: identical.
  Rng rng3(99);
  const Tensor b = RenderDigit(7, rng3);
  EXPECT_FLOAT_EQ(Ssim(a, b), Ssim(b, a));
  EXPECT_GT(Ssim(a, a_like), Ssim(a, b));
}

TEST(SsimTest, ValidatesInputs) {
  EXPECT_THROW(Ssim(Tensor({1, 16, 16}), Tensor({1, 8, 8})), std::invalid_argument);
  EXPECT_THROW(Ssim(Tensor({1, 4, 4}), Tensor({1, 4, 4})), std::invalid_argument);
  EXPECT_THROW(Ssim(Tensor({16}), Tensor({16})), std::invalid_argument);
}

TEST(SsimTest, MultiChannelSupported) {
  Rng rng(4);
  const Tensor rgb = Tensor::RandUniform({3, 16, 16}, rng);
  EXPECT_NEAR(Ssim(rgb, rgb), 1.0f, 1e-5f);
}

// ---- Diversity ---------------------------------------------------------------------------

TEST(DiversityTest, AveragesSeedDistances) {
  std::vector<Tensor> seeds;
  seeds.push_back(Tensor({2}, std::vector<float>{0, 0}));
  seeds.push_back(Tensor({2}, std::vector<float>{1, 1}));
  std::vector<GeneratedTest> tests(2);
  tests[0].input = Tensor({2}, std::vector<float>{1, 0});  // L1 = 1 from seed 0.
  tests[0].seed_index = 0;
  tests[1].input = Tensor({2}, std::vector<float>{4, 1});  // L1 = 3 from seed 1.
  tests[1].seed_index = 1;
  EXPECT_FLOAT_EQ(AverageSeedL1Diversity(tests, seeds), 2.0f);
  EXPECT_FLOAT_EQ(AverageSeedL1Diversity({}, seeds), 0.0f);
  tests[1].seed_index = 9;
  EXPECT_THROW(AverageSeedL1Diversity(tests, seeds), std::out_of_range);
}

// ---- Majority vote / retraining ----------------------------------------------------------

Model ConstantClassifier(const std::string& name, int winner, uint64_t seed) {
  Rng rng(seed);
  Model m(name, {2});
  auto& d = m.Emplace<Dense>(2, 3);
  d.InitParams(rng);
  d.weight().Fill(0.0f);
  d.bias().Fill(0.0f);
  d.bias()[winner] = 10.0f;
  m.Emplace<SoftmaxLayer>();
  return m;
}

TEST(RetrainingTest, MajorityVoteTakesModalLabel) {
  Model a = ConstantClassifier("a", 1, 1);
  Model b = ConstantClassifier("b", 1, 2);
  Model c = ConstantClassifier("c", 2, 3);
  EXPECT_EQ(MajorityVoteLabel({&a, &b, &c}, Tensor({2})), 1);
  EXPECT_THROW(MajorityVoteLabel({}, Tensor({2})), std::invalid_argument);
}

TEST(RetrainingTest, AugmentAppendsVotedSamples) {
  Dataset train{"t", {2}, 3, {}, {}};
  train.Add(Tensor({2}), 0.0f);
  Model a = ConstantClassifier("a", 2, 1);
  Model b = ConstantClassifier("b", 2, 2);
  std::vector<Tensor> extra = {Tensor({2}, 0.5f)};
  const Dataset augmented = AugmentWithVotedLabels(train, extra, {&a, &b});
  EXPECT_EQ(augmented.size(), 2);
  EXPECT_EQ(augmented.Label(1), 2);
}

TEST(RetrainingTest, CurveHasEpochEntriesAndImprovesOnToyTask) {
  // An undertrained model should improve with extra epochs of retraining.
  const Dataset train = MakeSyntheticDigits(300, 41);
  const Dataset test = MakeSyntheticDigits(150, 42);
  Model m = ModelZoo::Build("MNI_C1", 6);
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.seed = 43;
  Trainer::Fit(&m, train, cfg);

  const auto curve = RetrainAccuracyCurve(&m, train, test, 3, 44, 1e-3f);
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_GT(curve.back(), curve.front());
}

// ---- Pollution detection -----------------------------------------------------------------

TEST(PollutionTest, FlagsStructurallySimilarTrainingSamples) {
  // Training set of 9s and 1s; "polluted" samples are 9s relabeled to 1.
  Rng rng(51);
  Dataset train{"digits", {1, 28, 28}, 10, {}, {}};
  for (int i = 0; i < 40; ++i) {
    train.Add(RenderDigit(1, rng), 1.0f);
  }
  std::vector<int> polluted;
  for (int i = 0; i < 10; ++i) {
    train.Add(RenderDigit(9, rng), 1.0f);  // A 9 wearing label 1.
    polluted.push_back(40 + i);
  }
  // Difference-inducing inputs in the real attack look like 9s.
  std::vector<Tensor> diffs;
  for (int i = 0; i < 5; ++i) {
    diffs.push_back(RenderDigit(9, rng));
  }
  const auto result = DetectPollutedSamples(train, 1, diffs, polluted, 3);
  EXPECT_GT(result.precision, 0.7f);
  EXPECT_GT(result.recall, 0.3f);
  for (const int idx : result.flagged) {
    EXPECT_EQ(train.Label(idx), 1);
  }
}

TEST(PollutionTest, EmptyInputsYieldEmptyResult) {
  Dataset train{"d", {1, 28, 28}, 10, {}, {}};
  Rng rng(52);
  train.Add(RenderDigit(1, rng), 1.0f);
  const auto result = DetectPollutedSamples(train, 1, {}, {0}, 3);
  EXPECT_TRUE(result.flagged.empty());
  EXPECT_FLOAT_EQ(result.precision, 0.0f);
}

}  // namespace
}  // namespace dx
